// kv_server — the STM-backed KV service under open-loop load (DESIGN.md
// §12): for each requested runtime variant, stand the service up, preload
// the keyspace, drive a paced Zipfian request mix at a fixed arrival rate,
// and report throughput plus the latency tail (p50/p99/p999, measured from
// scheduled arrival, so queueing delay is in the numbers).
//
//   ./kv_server [--variants=lsa,zl,...] [--rate=2000] [--duration-ms=1000]
//               [--workers=2] [--keys=4096] [--zipf=0.99] [--poisson]
//               [--put=0.15] [--del=0.02] [--multi=0.05] [--scan=0.01]
//               [--transfer=0.07] [--multi-fanout=16] [--queue=16384]
//               [--seed=1] [--json]
//
// `--json` writes BENCH_kv.json (scripts/bench_compare.py compatible; the
// identity of a row is system + rate + threads + the stringified knobs).
// Exit status is nonzero if any variant completes zero requests.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_json.hpp"
#include "server/kv_service.hpp"
#include "server/load_gen.hpp"

namespace {

using namespace zstm;

struct Args {
  std::vector<std::string> variants;
  int rate = 2000;
  int duration_ms = 1000;
  int workers = 2;
  std::uint64_t keys = 4096;
  double zipf = 0.99;
  server::LoadMix mix;
  std::uint32_t multi_fanout = 16;
  std::size_t queue = 1 << 14;
  bool poisson = false;
  std::uint64_t seed = 1;
  bool json = false;
};

bool parse_flag(const char* arg, const char* name, const char** value) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0) return false;
  if (arg[n] == '\0') {
    *value = nullptr;
    return true;
  }
  if (arg[n] == '=') {
    *value = arg + n + 1;
    return true;
  }
  return false;
}

std::vector<std::string> split_csv(const char* s) {
  std::vector<std::string> out;
  std::string cur;
  for (const char* p = s; *p != '\0'; ++p) {
    if (*p == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur += *p;
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

Args parse_args(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const char* v = nullptr;
    if (parse_flag(argv[i], "--variants", &v) && v != nullptr) {
      a.variants = split_csv(v);
    } else if (parse_flag(argv[i], "--rate", &v) && v != nullptr) {
      a.rate = std::atoi(v);
    } else if (parse_flag(argv[i], "--duration-ms", &v) && v != nullptr) {
      a.duration_ms = std::atoi(v);
    } else if (parse_flag(argv[i], "--workers", &v) && v != nullptr) {
      a.workers = std::atoi(v);
    } else if (parse_flag(argv[i], "--keys", &v) && v != nullptr) {
      a.keys = std::strtoull(v, nullptr, 10);
    } else if (parse_flag(argv[i], "--zipf", &v) && v != nullptr) {
      a.zipf = std::atof(v);
    } else if (parse_flag(argv[i], "--put", &v) && v != nullptr) {
      a.mix.put = std::atof(v);
    } else if (parse_flag(argv[i], "--del", &v) && v != nullptr) {
      a.mix.del = std::atof(v);
    } else if (parse_flag(argv[i], "--multi", &v) && v != nullptr) {
      a.mix.multi_get = std::atof(v);
    } else if (parse_flag(argv[i], "--scan", &v) && v != nullptr) {
      a.mix.scan = std::atof(v);
    } else if (parse_flag(argv[i], "--transfer", &v) && v != nullptr) {
      a.mix.transfer = std::atof(v);
    } else if (parse_flag(argv[i], "--multi-fanout", &v) && v != nullptr) {
      a.multi_fanout = static_cast<std::uint32_t>(std::atoi(v));
    } else if (parse_flag(argv[i], "--queue", &v) && v != nullptr) {
      a.queue = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else if (parse_flag(argv[i], "--seed", &v) && v != nullptr) {
      a.seed = std::strtoull(v, nullptr, 10);
    } else if (std::strcmp(argv[i], "--poisson") == 0) {
      a.poisson = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      a.json = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      std::exit(2);
    }
  }
  if (a.variants.empty()) {
    a.variants = api::variant_names();
  }
  return a;
}

double us(std::uint64_t ns) { return static_cast<double>(ns) / 1e3; }

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);

  std::printf(
      "kv_server: open-loop %d req/s for %d ms, %d workers, %llu keys, "
      "zipf %.2f%s\n",
      args.rate, args.duration_ms, args.workers,
      static_cast<unsigned long long>(args.keys), args.zipf,
      args.poisson ? ", poisson" : "");
  std::printf("%-8s %10s %8s %8s %8s %9s %9s %9s %7s %6s\n", "system",
              "thruput/s", "accepted", "shed", "p50us", "p99us", "p999us",
              "maxus", "serial", "trims");

  benchjson::Doc doc("kv");
  bool failed = false;

  for (const std::string& variant : args.variants) {
    server::ServiceConfig scfg;
    scfg.variant = variant;
    scfg.workers = args.workers;
    scfg.queue_capacity = args.queue;
    scfg.buckets = 256;
    scfg.stm.max_threads = args.workers + 4;  // workers + pacer/main/hk slack

    server::KvService svc(scfg);
    svc.preload(0, args.keys, 100);

    server::LoadGenConfig lcfg;
    lcfg.rate = static_cast<double>(args.rate);
    lcfg.duration = std::chrono::milliseconds(args.duration_ms);
    lcfg.keyspace = args.keys;
    lcfg.zipf_theta = args.zipf;
    lcfg.mix = args.mix;
    lcfg.multi_fanout = args.multi_fanout;
    lcfg.poisson = args.poisson;
    lcfg.seed = args.seed;

    svc.start();
    const server::LoadGenResult load = server::run_open_loop(svc, lcfg);
    svc.stop();

    server::ServiceMetrics m = svc.metrics();
    const double secs = static_cast<double>(load.elapsed_ns) / 1e9;
    const double thruput =
        secs > 0 ? static_cast<double>(m.completed) / secs : 0.0;
    if (m.completed == 0) failed = true;

    std::printf("%-8s %10.0f %8llu %8llu %8.1f %9.1f %9.1f %9.1f %7llu %6llu\n",
                variant.c_str(), thruput,
                static_cast<unsigned long long>(load.accepted),
                static_cast<unsigned long long>(load.shed),
                us(m.all.quantile(0.50)), us(m.all.quantile(0.99)),
                us(m.all.quantile(0.999)), us(m.all.max()),
                static_cast<unsigned long long>(m.progress.serial_entries),
                static_cast<unsigned long long>(m.reclaimed_total));

    auto& row = doc.row();
    row.str("system", variant)
        .num("threads", args.workers)
        .num("rate", args.rate)
        .str("zipf", std::to_string(args.zipf))
        .str("keys", std::to_string(args.keys))
        .num("offered", load.offered)
        .num("accepted", load.accepted)
        .num("shed", load.shed)
        .num("completed", m.completed)
        .num("throughput", thruput)
        .num("p50_us", us(m.all.quantile(0.50)))
        .num("p99_us", us(m.all.quantile(0.99)))
        .num("p999_us", us(m.all.quantile(0.999)))
        .num("max_us", us(m.all.max()))
        .num("get_p99_us",
             us(m.per_op[static_cast<std::size_t>(server::Op::kGet)].quantile(
                 0.99)))
        .num("put_p99_us",
             us(m.per_op[static_cast<std::size_t>(server::Op::kPut)].quantile(
                 0.99)))
        .num("scan_p99_us",
             us(m.per_op[static_cast<std::size_t>(server::Op::kScan)].quantile(
                 0.99)))
        .num("serial_entries", m.progress.serial_entries)
        .num("max_attempts",
             static_cast<std::uint64_t>(m.progress.max_attempts))
        .num("trims", m.reclaimed_total)
        .num("maintain_forced", m.maintain_forced)
        .num("desc_retained", static_cast<std::uint64_t>(m.retained_last))
        .num("desc_high_water",
             static_cast<std::uint64_t>(m.retained_high_water));
  }

  if (args.json && !doc.write()) return 1;
  if (failed) {
    std::fprintf(stderr, "kv_server: a variant completed zero requests\n");
    return 1;
  }
  return 0;
}
