// kv_server — the STM-backed KV service under open-loop load (DESIGN.md
// §12): for each requested runtime variant, stand the service up, preload
// the keyspace, drive a paced Zipfian request mix at a fixed arrival rate,
// and report throughput plus the latency tail (p50/p99/p999, measured from
// scheduled arrival, so queueing delay is in the numbers).
//
//   ./kv_server [--variants=lsa,zl,...] [--rate=2000] [--duration-ms=1000]
//               [--workers=2] [--keys=4096] [--zipf=0.99] [--poisson]
//               [--put=0.15] [--del=0.02] [--multi=0.05] [--scan=0.01]
//               [--transfer=0.07] [--multi-fanout=16] [--queue=16384]
//               [--seed=1] [--json]
//
// Networked mode (DESIGN.md §13.6) puts the epoll TCP front end between the
// load generator and the service — same schedule, same mix, one extra hop:
//
//   ./kv_server --net [--port=0] [--io-threads=2] [--conns=8] [--idle-ms=0]
//
// Saturation sweep (§13.7): `--ramp` multiplies the arrival rate by
// --ramp-step (default 2) from --rate up to --ramp-max, one --duration-ms
// step each, and records the knee — the first rate where p99 exceeds
// --knee-p99-us or anything is shed — per variant.
//
// `--json` writes BENCH_kv.json (in-process) or BENCH_kv_net.json (--net),
// scripts/bench_compare.py compatible; the identity of a row is system +
// rate + threads (+ transport/io_threads/conns/phase for net rows) + the
// stringified knobs. Exit status is nonzero if any variant completes zero
// requests.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_json.hpp"
#include "net/net_load_gen.hpp"
#include "net/tcp_server.hpp"
#include "server/kv_service.hpp"
#include "server/load_gen.hpp"

namespace {

using namespace zstm;

struct Args {
  std::vector<std::string> variants;
  int rate = 2000;
  int duration_ms = 1000;
  int workers = 2;
  std::uint64_t keys = 4096;
  double zipf = 0.99;
  server::LoadMix mix;
  std::uint32_t multi_fanout = 16;
  std::size_t queue = 1 << 14;
  bool poisson = false;
  std::uint64_t seed = 1;
  bool json = false;
  // --net
  bool net = false;
  int port = 0;
  int io_threads = 2;
  int conns = 8;
  int idle_ms = 0;
  // --ramp
  bool ramp = false;
  int ramp_max = 0;  ///< 0 = 32x the base rate
  double ramp_step = 2.0;
  double knee_p99_us = 50000.0;
};

bool parse_flag(const char* arg, const char* name, const char** value) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0) return false;
  if (arg[n] == '\0') {
    *value = nullptr;
    return true;
  }
  if (arg[n] == '=') {
    *value = arg + n + 1;
    return true;
  }
  return false;
}

std::vector<std::string> split_csv(const char* s) {
  std::vector<std::string> out;
  std::string cur;
  for (const char* p = s; *p != '\0'; ++p) {
    if (*p == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur += *p;
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

Args parse_args(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const char* v = nullptr;
    if (parse_flag(argv[i], "--variants", &v) && v != nullptr) {
      a.variants = split_csv(v);
    } else if (parse_flag(argv[i], "--rate", &v) && v != nullptr) {
      a.rate = std::atoi(v);
    } else if (parse_flag(argv[i], "--duration-ms", &v) && v != nullptr) {
      a.duration_ms = std::atoi(v);
    } else if (parse_flag(argv[i], "--workers", &v) && v != nullptr) {
      a.workers = std::atoi(v);
    } else if (parse_flag(argv[i], "--keys", &v) && v != nullptr) {
      a.keys = std::strtoull(v, nullptr, 10);
    } else if (parse_flag(argv[i], "--zipf", &v) && v != nullptr) {
      a.zipf = std::atof(v);
    } else if (parse_flag(argv[i], "--put", &v) && v != nullptr) {
      a.mix.put = std::atof(v);
    } else if (parse_flag(argv[i], "--del", &v) && v != nullptr) {
      a.mix.del = std::atof(v);
    } else if (parse_flag(argv[i], "--multi", &v) && v != nullptr) {
      a.mix.multi_get = std::atof(v);
    } else if (parse_flag(argv[i], "--scan", &v) && v != nullptr) {
      a.mix.scan = std::atof(v);
    } else if (parse_flag(argv[i], "--transfer", &v) && v != nullptr) {
      a.mix.transfer = std::atof(v);
    } else if (parse_flag(argv[i], "--multi-fanout", &v) && v != nullptr) {
      a.multi_fanout = static_cast<std::uint32_t>(std::atoi(v));
    } else if (parse_flag(argv[i], "--queue", &v) && v != nullptr) {
      a.queue = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else if (parse_flag(argv[i], "--seed", &v) && v != nullptr) {
      a.seed = std::strtoull(v, nullptr, 10);
    } else if (parse_flag(argv[i], "--port", &v) && v != nullptr) {
      a.port = std::atoi(v);
    } else if (parse_flag(argv[i], "--io-threads", &v) && v != nullptr) {
      a.io_threads = std::atoi(v);
    } else if (parse_flag(argv[i], "--conns", &v) && v != nullptr) {
      a.conns = std::atoi(v);
    } else if (parse_flag(argv[i], "--idle-ms", &v) && v != nullptr) {
      a.idle_ms = std::atoi(v);
    } else if (parse_flag(argv[i], "--ramp-max", &v) && v != nullptr) {
      a.ramp_max = std::atoi(v);
    } else if (parse_flag(argv[i], "--ramp-step", &v) && v != nullptr) {
      a.ramp_step = std::atof(v);
    } else if (parse_flag(argv[i], "--knee-p99-us", &v) && v != nullptr) {
      a.knee_p99_us = std::atof(v);
    } else if (std::strcmp(argv[i], "--poisson") == 0) {
      a.poisson = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      a.json = true;
    } else if (std::strcmp(argv[i], "--net") == 0) {
      a.net = true;
    } else if (std::strcmp(argv[i], "--ramp") == 0) {
      a.ramp = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      std::exit(2);
    }
  }
  if (a.variants.empty()) {
    a.variants = api::variant_names();
  }
  if (a.ramp_max <= 0) a.ramp_max = a.rate * 32;
  if (a.ramp_step < 1.1) a.ramp_step = 1.1;
  return a;
}

double us(std::uint64_t ns) { return static_cast<double>(ns) / 1e3; }

server::ServiceConfig service_config(const Args& args,
                                     const std::string& variant) {
  server::ServiceConfig scfg;
  scfg.variant = variant;
  scfg.workers = args.workers;
  scfg.queue_capacity = args.queue;
  scfg.buckets = 256;
  scfg.stm.max_threads = args.workers + 4;  // workers + pacer/main/hk slack
  return scfg;
}

server::LoadGenConfig load_config(const Args& args, int rate) {
  server::LoadGenConfig lcfg;
  lcfg.rate = static_cast<double>(rate);
  lcfg.duration = std::chrono::milliseconds(args.duration_ms);
  lcfg.keyspace = args.keys;
  lcfg.zipf_theta = args.zipf;
  lcfg.mix = args.mix;
  lcfg.multi_fanout = args.multi_fanout;
  lcfg.poisson = args.poisson;
  lcfg.seed = args.seed;
  return lcfg;
}

/// What ramp-knee detection needs from one (variant, rate) step.
struct StepOut {
  bool ok = false;        ///< completed at least one request
  double p99_us = 0.0;
  std::uint64_t shed = 0;  ///< all shed causes, client and server side
};

/// One in-process run. `phase` tags the row ("ramp"); nullptr keeps the
/// classic BENCH_kv row identity untouched.
StepOut run_inproc(const Args& args, const std::string& variant, int rate,
                   const char* phase, benchjson::Doc& doc) {
  server::KvService svc(service_config(args, variant));
  svc.preload(0, args.keys, 100);

  svc.start();
  const server::LoadGenResult load =
      server::run_open_loop(svc, load_config(args, rate));
  svc.stop();

  server::ServiceMetrics m = svc.metrics();
  const double secs = static_cast<double>(load.elapsed_ns) / 1e9;
  const double thruput =
      secs > 0 ? static_cast<double>(m.completed) / secs : 0.0;

  StepOut out;
  out.ok = m.completed > 0;
  out.p99_us = us(m.all.quantile(0.99));
  out.shed = load.shed;

  std::printf("%-8s %8d %10.0f %8llu %8llu %8.1f %9.1f %9.1f %9.1f %7llu %6llu\n",
              variant.c_str(), rate, thruput,
              static_cast<unsigned long long>(load.accepted),
              static_cast<unsigned long long>(load.shed),
              us(m.all.quantile(0.50)), us(m.all.quantile(0.99)),
              us(m.all.quantile(0.999)), us(m.all.max()),
              static_cast<unsigned long long>(m.progress.serial_entries),
              static_cast<unsigned long long>(m.reclaimed_total));

  auto& row = doc.row();
  row.str("system", variant)
      .num("threads", args.workers)
      .num("rate", rate)
      .str("zipf", std::to_string(args.zipf))
      .str("keys", std::to_string(args.keys));
  if (phase != nullptr) row.str("phase", phase);
  row.num("offered", load.offered)
      .num("accepted", load.accepted)
      .num("shed", load.shed)
      .num("completed", m.completed)
      .num("throughput", thruput)
      .num("p50_us", us(m.all.quantile(0.50)))
      .num("p99_us", us(m.all.quantile(0.99)))
      .num("p999_us", us(m.all.quantile(0.999)))
      .num("max_us", us(m.all.max()))
      .num("get_p99_us",
           us(m.per_op[static_cast<std::size_t>(server::Op::kGet)].quantile(
               0.99)))
      .num("put_p99_us",
           us(m.per_op[static_cast<std::size_t>(server::Op::kPut)].quantile(
               0.99)))
      .num("scan_p99_us",
           us(m.per_op[static_cast<std::size_t>(server::Op::kScan)].quantile(
               0.99)))
      .num("serial_entries", m.progress.serial_entries)
      .num("max_attempts", static_cast<std::uint64_t>(m.progress.max_attempts))
      .num("trims", m.reclaimed_total)
      .num("maintain_forced", m.maintain_forced)
      .num("desc_retained", static_cast<std::uint64_t>(m.retained_last))
      .num("desc_high_water",
           static_cast<std::uint64_t>(m.retained_high_water));
  return out;
}

/// One networked run: service + TcpServer on loopback, load over TCP.
StepOut run_net(const Args& args, const std::string& variant, int rate,
                const char* phase, benchjson::Doc& doc) {
  StepOut out;

  server::KvService svc(service_config(args, variant));
  svc.preload(0, args.keys, 100);
  svc.start();

  net::NetConfig ncfg;
  ncfg.port = static_cast<std::uint16_t>(args.port);
  ncfg.io_threads = args.io_threads;
  ncfg.idle_timeout = std::chrono::milliseconds(args.idle_ms);
  net::TcpServer ts(svc, ncfg);
  if (!ts.start()) {
    std::fprintf(stderr, "kv_server: TCP server failed to start\n");
    svc.stop();
    return out;
  }

  const net::NetLoadResult load = net::run_net_open_loop(
      "127.0.0.1", ts.port(), load_config(args, rate), args.conns);

  ts.stop();  // before the service: in-flight completions target live loops
  svc.stop();

  const net::NetStats ns = ts.stats();
  server::ServiceMetrics m = svc.metrics();
  const double secs = static_cast<double>(load.elapsed_ns) / 1e9;
  const double thruput =
      secs > 0 ? static_cast<double>(load.responses) / secs : 0.0;
  const std::uint64_t shed_total =
      load.client_shed + load.server_shed + load.unflushed;

  out.ok = load.all.count() > 0;
  out.p99_us = us(load.all.quantile(0.99));
  out.shed = shed_total;

  std::printf("%-8s %8d %10.0f %8llu %8llu %8.1f %9.1f %9.1f %9.1f %7llu %6llu\n",
              variant.c_str(), rate, thruput,
              static_cast<unsigned long long>(load.responses),
              static_cast<unsigned long long>(shed_total),
              us(load.all.quantile(0.50)), us(load.all.quantile(0.99)),
              us(load.all.quantile(0.999)), us(load.all.max()),
              static_cast<unsigned long long>(m.progress.serial_entries),
              static_cast<unsigned long long>(ns.protocol_errors));

  const auto op_p99 = [&load](net::wire::Op op) {
    return us(load.per_op[static_cast<int>(op)].quantile(0.99));
  };

  auto& row = doc.row();
  row.str("system", variant)
      .str("transport", "tcp")
      .num("threads", args.workers)
      .num("io_threads", args.io_threads)
      .num("conns", args.conns)
      .num("rate", rate)
      .str("zipf", std::to_string(args.zipf))
      .str("keys", std::to_string(args.keys))
      .str("phase", phase != nullptr ? phase : "fixed")
      .num("offered", load.offered)
      .num("sent", load.sent)
      .num("client_shed", load.client_shed)
      .num("server_shed", load.server_shed)
      .num("unflushed", load.unflushed)
      .num("io_errors", load.io_errors)
      .num("responses", load.responses)
      .num("completed", m.completed)
      .num("throughput", thruput)
      .num("p50_us", us(load.all.quantile(0.50)))
      .num("p99_us", us(load.all.quantile(0.99)))
      .num("p999_us", us(load.all.quantile(0.999)))
      .num("max_us", us(load.all.max()))
      .num("get_p99_us", op_p99(net::wire::Op::kGet))
      .num("put_p99_us", op_p99(net::wire::Op::kPut))
      .num("scan_p99_us", op_p99(net::wire::Op::kScan))
      .num("net_requests", ns.requests)
      .num("net_responses", ns.responses)
      .num("shed_backpressure", ns.shed_backpressure)
      .num("shed_service", ns.shed_service)
      .num("protocol_errors", ns.protocol_errors)
      .num("conns_accepted", ns.conns_accepted)
      .num("serial_entries", m.progress.serial_entries)
      .num("max_attempts",
           static_cast<std::uint64_t>(m.progress.max_attempts));
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);

  std::printf(
      "kv_server: open-loop %d req/s for %d ms, %d workers, %llu keys, "
      "zipf %.2f%s%s%s\n",
      args.rate, args.duration_ms, args.workers,
      static_cast<unsigned long long>(args.keys), args.zipf,
      args.poisson ? ", poisson" : "", args.net ? ", tcp loopback" : "",
      args.ramp ? ", ramp" : "");
  if (args.net) {
    std::printf("net: %d io thread(s), %d conn(s)\n", args.io_threads,
                args.conns);
  }
  std::printf("%-8s %8s %10s %8s %8s %8s %9s %9s %9s %7s %6s\n", "system",
              "rate", "thruput/s", args.net ? "resps" : "accepted", "shed",
              "p50us", "p99us", "p999us", "maxus", "serial",
              args.net ? "proterr" : "trims");

  benchjson::Doc doc(args.net ? "kv_net" : "kv");
  bool failed = false;

  const auto run_step = [&](const std::string& variant, int rate,
                            const char* phase) {
    return args.net ? run_net(args, variant, rate, phase, doc)
                    : run_inproc(args, variant, rate, phase, doc);
  };

  for (const std::string& variant : args.variants) {
    if (!args.ramp) {
      if (!run_step(variant, args.rate, nullptr).ok) failed = true;
      continue;
    }

    // Saturation sweep: geometric rate steps until the knee (or the cap).
    // The knee is the first rate where the tail blows past the bound or
    // anything at all is shed — the open-loop definition of "can't keep up".
    int knee_rate = 0;
    int last_rate = 0;
    bool any_ok = false;
    for (double r = args.rate; static_cast<int>(r) <= args.ramp_max;
         r *= args.ramp_step) {
      const int rate = static_cast<int>(r);
      last_rate = rate;
      const StepOut step = run_step(variant, rate, "ramp");
      any_ok = any_ok || step.ok;
      if (step.ok && (step.p99_us > args.knee_p99_us || step.shed > 0)) {
        knee_rate = rate;
        break;
      }
    }
    if (!any_ok) failed = true;

    std::printf("%-8s knee: %s%d req/s (p99 bound %.0f us)\n", variant.c_str(),
                knee_rate > 0 ? "" : ">", knee_rate > 0 ? knee_rate : last_rate,
                args.knee_p99_us);

    auto& row = doc.row();
    row.str("system", variant).str("phase", "knee");
    if (args.net) {
      row.str("transport", "tcp")
          .num("io_threads", args.io_threads)
          .num("conns", args.conns);
    }
    row.num("threads", args.workers)
        .num("rate", args.rate)
        .str("zipf", std::to_string(args.zipf))
        .str("keys", std::to_string(args.keys))
        .num("knee_rate", knee_rate)
        .num("knee_found", knee_rate > 0 ? 1 : 0)
        .num("max_rate_tested", last_rate)
        .num("knee_p99_bound_us", args.knee_p99_us);
  }

  if (args.json && !doc.write()) return 1;
  if (failed) {
    std::fprintf(stderr, "kv_server: a variant completed zero requests\n");
    return 1;
  }
  return 0;
}
