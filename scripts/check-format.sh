#!/usr/bin/env bash
# Non-blocking formatting check: verifies every C++ file under src/, tests/,
# bench/, and examples/ matches .clang-format. Exits 0 with a notice when
# clang-format is not installed so the hook never hard-blocks a build box.
set -u

cd "$(dirname "$0")/.."

CLANG_FORMAT="${CLANG_FORMAT:-clang-format}"
if ! command -v "$CLANG_FORMAT" >/dev/null 2>&1; then
  echo "check-format: $CLANG_FORMAT not found; skipping (install clang-format to enable)"
  exit 0
fi

status=0
while IFS= read -r file; do
  if ! "$CLANG_FORMAT" --dry-run --Werror "$file" >/dev/null 2>&1; then
    echo "needs formatting: $file"
    status=1
  fi
done < <(find src tests bench examples -name '*.cpp' -o -name '*.hpp' | sort)

if [ "$status" -ne 0 ]; then
  echo ""
  echo "Run: $CLANG_FORMAT -i \$(find src tests bench examples -name '*.cpp' -o -name '*.hpp')"
fi
exit "$status"
