#!/usr/bin/env python3
"""Diff two BENCH_<name>.json files (bench/bench_json.hpp format).

Usage: bench_compare.py BASELINE.json CURRENT.json

Rows are matched by their identity fields (every string field plus small
integer knobs like `threads` / `r` / `versions_kept`); numeric fields are
printed side by side with a percentage delta. The exit code is 0 whenever
both files parse — the comparison is informational (CI runs it non-gating;
perf deltas on shared runners are noisy), 2 on unreadable/unmatched input.
"""

import json
import sys

# String fields (e.g. `system`, `transport`, `phase`) are identity
# automatically; these small integer knobs join them.
ID_INT_FIELDS = {"threads", "r", "versions_kept", "batch", "shards", "stride",
                 "rate", "io_threads", "conns"}


def row_key(row):
    key = []
    for k, v in row.items():
        if isinstance(v, str) or k in ID_INT_FIELDS:
            key.append((k, v))
    return tuple(key)


def load(path):
    with open(path) as f:
        doc = json.load(f)
    rows = {}
    for row in doc.get("rows", []):
        rows[row_key(row)] = row
    return doc, rows


def fmt(v):
    if isinstance(v, float):
        return f"{v:.4g}"
    return str(v)


def main():
    if len(sys.argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    try:
        base_doc, base_rows = load(sys.argv[1])
        cur_doc, cur_rows = load(sys.argv[2])
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_compare: {e}", file=sys.stderr)
        return 2

    name = cur_doc.get("bench", "?")
    base_host = base_doc.get("host", {})
    cur_host = cur_doc.get("host", {})
    print(f"bench_compare: {name}  ({sys.argv[1]} -> {sys.argv[2]})")
    if base_host != cur_host:
        print(f"  note: hosts differ: {base_host} vs {cur_host}")

    # Values each identity field takes across the current rows: lets us
    # distinguish "this run dropped a row" from "the baseline knows a
    # variant this binary doesn't have" (older binaries vs a baseline that
    # gained rows for a new variant — tolerated, reported informationally).
    cur_field_values = {}
    for key in cur_rows:
        for k, v in key:
            cur_field_values.setdefault(k, set()).add(v)

    matched = 0
    for key, base in base_rows.items():
        cur = cur_rows.get(key)
        label = " ".join(f"{k}={v}" for k, v in key) or "(row)"
        if cur is None:
            unknown = [f"{k}={v}" for k, v in key
                       if k in cur_field_values and v not in cur_field_values[k]]
            if unknown:
                print(f"  {label}: baseline-only variant "
                      f"({', '.join(unknown)} absent from current run)")
            else:
                print(f"  {label}: missing from current run")
            continue
        matched += 1
        deltas = []
        for field, bv in base.items():
            if (field, bv) in key or not isinstance(bv, (int, float)):
                continue
            cv = cur.get(field)
            if not isinstance(cv, (int, float)):
                continue
            if bv:
                pct = 100.0 * (cv - bv) / bv
                deltas.append(f"{field} {fmt(bv)} -> {fmt(cv)} ({pct:+.1f}%)")
            elif cv != bv:
                deltas.append(f"{field} {fmt(bv)} -> {fmt(cv)}")
        print(f"  {label}:")
        for d in deltas:
            print(f"    {d}")
    for key in cur_rows:
        if key not in base_rows:
            label = " ".join(f"{k}={v}" for k, v in key)
            print(f"  {label}: new row (not in baseline)")

    if matched == 0:
        print("bench_compare: no rows matched between the two files",
              file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
