// Quickstart: the library's public API in one minute.
//
//   $ ./quickstart
//
// Creates a Z-STM runtime, runs short transactions from two worker
// threads, and a long transaction that snapshots everything consistently
// without ever validating a read set.
#include <cstdio>
#include <thread>
#include <vector>

#include "core/stm.hpp"

int main() {
  // 1. A runtime owns the transactional objects and all shared machinery.
  zstm::zl::Runtime rt;

  // 2. Transactional variables hold any copyable type.
  auto counter = rt.make_var<long>(0);
  auto label = rt.make_var<std::string>("start");

  // 3. Each worker thread attaches once and runs transactions. A body may
  //    be re-executed on conflict — keep it free of side effects.
  std::vector<std::thread> workers;
  for (int t = 0; t < 2; ++t) {
    workers.emplace_back([&rt, &counter, &label, t] {
      auto th = rt.attach();
      for (int i = 0; i < 10000; ++i) {
        rt.run_short(*th, [&](zstm::zl::ShortTx& tx) {
          tx.write(counter) += 1;                 // read-modify-write
          if (tx.read(counter) % 5000 == 0) {
            tx.write(label, "thread " + std::to_string(t));
          }
        });
      }
    });
  }
  for (auto& w : workers) w.join();

  // 4. Long transactions snapshot many objects consistently; Z-STM commits
  //    them with a single counter check (no read-set validation).
  auto th = rt.attach();
  long final_count = 0;
  std::string final_label;
  rt.run_long(*th, [&](zstm::zl::LongTx& tx) {
    final_count = tx.read(counter);
    final_label = tx.read(label);
  });

  std::printf("counter = %ld (expected 20000)\n", final_count);
  std::printf("label   = \"%s\"\n", final_label.c_str());
  std::printf("stats   : %s\n", rt.stats().to_string().c_str());
  return final_count == 20000 ? 0 : 1;
}
