// Quickstart: the library's public API in one minute.
//
//   $ ./quickstart [runtime]        # lsa | lsa-nors | cs-vc | cs-r | sstm | zl | tl2
//
// Everything goes through the unified façade (zstm::api): pick a runtime
// variant by name, create transactional variables, and run transactions —
// no explicit thread attachment (each thread attaches implicitly on its
// first transaction) and one TxKind enum instead of per-runtime entry
// points. The default variant is Z-STM, whose long transactions snapshot
// everything consistently without ever validating a read set.
#include <cstdio>
#include <thread>
#include <vector>

#include "api/stm_api.hpp"

int main(int argc, char** argv) {
  using zstm::api::AnyStm;
  using zstm::api::TxKind;

  // 1. One façade over every runtime in the library; "zl" is Z-STM.
  //    (Statically-typed alternative: zstm::api::Stm<zstm::zl::Runtime>.)
  AnyStm stm = AnyStm::make(argc > 1 ? argv[1] : "zl");

  // 2. Transactional variables hold any copyable type on the object-based
  //    runtimes. The word-granularity "tl2" runtime stores values in raw
  //    words, so it requires trivially copyable types (≤ 224 bytes) — this
  //    example uses a POD label so it runs on every variant.
  struct Label {
    char text[24];
  };
  auto counter = stm.make_var<long>(0);
  auto label = stm.make_var<Label>(Label{"start"});

  // 3. Worker threads just run transactions — the first one attaches the
  //    thread. A body may be re-executed on conflict, so keep it free of
  //    side effects; the TxAborted retry token must propagate out of it.
  std::vector<std::thread> workers;
  for (int t = 0; t < 2; ++t) {
    workers.emplace_back([&stm, &counter, &label, t] {
      for (int i = 0; i < 10000; ++i) {
        stm.run(TxKind::kUpdate, [&](auto& tx) {
          tx.write(counter) += 1;  // read-modify-write
          if (tx.read(counter) % 5000 == 0) {
            Label l{};
            std::snprintf(l.text, sizeof l.text, "thread %d", t);
            tx.write(label, l);
          }
        });
      }
    });
  }
  for (auto& w : workers) w.join();

  // 4. Long transactions snapshot many objects consistently; under Z-STM
  //    they commit with a single counter check (no read-set validation).
  //    On other variants TxKind::kLong runs an ordinary transaction.
  long final_count = 0;
  Label final_label{};
  const zstm::api::RunResult res = stm.run(TxKind::kLong, [&](auto& tx) {
    final_count = tx.read(counter);
    final_label = tx.read(label);
  });

  std::printf("runtime = %s\n", stm.name().c_str());
  std::printf("counter = %ld (expected 20000, %u attempt%s)\n", final_count,
              res.attempts, res.attempts == 1 ? "" : "s");
  std::printf("label   = \"%s\"\n", final_label.text);
  std::printf("stats   : %s\n", stm.stats().to_string().c_str());
  return final_count == 20000 ? 0 : 1;
}
