// Transactional set workload — now a thin client of the adt:: library
// (src/adt/tmap.hpp), which was promoted from this example's hand-rolled
// sorted list. Runs on any runtime variant through the façade.
//
//   $ ./tset [variant] [threads] [seconds] [keyrange]
//
// Mutator threads insert/remove/lookup random keys with short update
// transactions while the main thread audits the whole structure with
// TxKind::kLong transactions (a real Z-STM long transaction under "zl";
// an ordinary read-only transaction elsewhere) — the audit must always see
// sorted buckets and, at the end, a size equal to the net inserts.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "adt/tmap.hpp"
#include "api/stm_api.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using zstm::api::AnyStm;
  using zstm::api::TxKind;

  const char* variant = argc > 1 ? argv[1] : "zl";
  const int threads = argc > 2 ? std::atoi(argv[2]) : 4;
  const double seconds = argc > 3 ? std::atof(argv[3]) : 1.0;
  const std::uint64_t keyrange = argc > 4 ? std::strtoull(argv[4], nullptr, 10)
                                          : 256;

  AnyStm stm = AnyStm::make(variant);
  zstm::adt::TSet<AnyStm> set(stm, 16);
  using Scratch = zstm::adt::TSet<AnyStm>::Scratch;

  std::atomic<bool> stop{false};
  std::atomic<long> net_inserts{0};
  std::atomic<std::uint64_t> ops{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      zstm::util::Xorshift rng(static_cast<std::uint64_t>(t) + 1);
      long my_net = 0;
      std::uint64_t my_ops = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const std::uint64_t key = rng.next_below(keyrange);
        const double dice = rng.next_unit();
        if (dice < 0.4) {
          bool inserted = false;
          Scratch scratch;  // reused across retries of this insert
          stm.run(TxKind::kUpdate, [&](auto& tx) {
            inserted = set.insert(tx, key, &scratch);
          });
          my_net += inserted ? 1 : 0;
        } else if (dice < 0.8) {
          bool removed = false;
          stm.run(TxKind::kUpdate,
                  [&](auto& tx) { removed = set.erase(tx, key); });
          my_net -= removed ? 1 : 0;
        } else {
          stm.run(TxKind::kReadOnly,
                  [&](auto& tx) { (void)set.contains(tx, key); });
        }
        ++my_ops;
      }
      net_inserts.fetch_add(my_net);
      ops.fetch_add(my_ops);
    });
  }

  // Periodic long-transaction audits from the main thread while the
  // mutators run: every snapshot must be internally consistent.
  int audits = 0;
  bool always_sorted = true;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(static_cast<long>(seconds * 1000));
  while (std::chrono::steady_clock::now() < deadline) {
    zstm::adt::TSet<AnyStm>::AuditResult a;
    stm.run(TxKind::kLong, [&](auto& tx) { a = set.audit(tx); });
    always_sorted &= a.sorted;
    ++audits;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  stop.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();

  zstm::adt::TSet<AnyStm>::AuditResult final_audit;
  stm.run(TxKind::kLong, [&](auto& tx) { final_audit = set.audit(tx); });
  std::printf("tset[%s]: %llu ops, %d live audits, final size %llu\n",
              stm.name().c_str(), static_cast<unsigned long long>(ops.load()),
              audits, static_cast<unsigned long long>(final_audit.size));
  std::printf("  sortedness: %s (all audits: %s)\n",
              final_audit.sorted ? "OK" : "BROKEN",
              always_sorted ? "OK" : "BROKEN");
  std::printf("  size matches net inserts: %s (%ld)\n",
              static_cast<long>(final_audit.size) == net_inserts.load()
                  ? "OK"
                  : "BROKEN",
              net_inserts.load());
  return (final_audit.sorted && always_sorted &&
          static_cast<long>(final_audit.size) == net_inserts.load())
             ? 0
             : 1;
}
