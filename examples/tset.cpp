// Transactional sorted linked-list set — the classic STM data-structure
// workload, built on the public Var<T> API (no STM internals).
//
//   $ ./tset [threads] [seconds] [keyrange]
//
// Each node is a transactional object whose payload holds the key and a
// handle to the next node; insert/remove/contains are short transactions,
// and a Z-STM long transaction validates sortedness and recounts the set
// while mutations continue.
#include <atomic>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "core/stm.hpp"
#include "util/rng.hpp"

namespace {

struct Node;
using NodeVar = zstm::lsa::Var<Node>;

struct Node {
  long key = 0;
  NodeVar next;  // null handle = end of list
};

class TSet {
 public:
  explicit TSet(zstm::zl::Runtime& rt) : rt_(rt) {
    // Sentinel head with -inf key simplifies edge cases.
    head_ = rt_.make_var<Node>(Node{LONG_MIN, NodeVar{}});
  }

  bool insert(zstm::zl::ThreadCtx& th, long key) {
    bool inserted = false;
    rt_.run_short(th, [&](zstm::zl::ShortTx& tx) {
      inserted = false;
      NodeVar prev = head_;
      Node cur = tx.read(prev);
      while (cur.next.object() != nullptr) {
        const Node nxt = tx.read(cur.next);
        if (nxt.key >= key) break;
        prev = cur.next;
        cur = nxt;
      }
      if (cur.next.object() != nullptr && tx.read(cur.next).key == key) {
        return;  // already present
      }
      NodeVar fresh = rt_.make_var<Node>(Node{key, cur.next});
      tx.write(prev).next = fresh;
      inserted = true;
    });
    return inserted;
  }

  bool remove(zstm::zl::ThreadCtx& th, long key) {
    bool removed = false;
    rt_.run_short(th, [&](zstm::zl::ShortTx& tx) {
      removed = false;
      NodeVar prev = head_;
      Node cur = tx.read(prev);
      while (cur.next.object() != nullptr) {
        const Node nxt = tx.read(cur.next);
        if (nxt.key == key) {
          tx.write(prev).next = nxt.next;  // unlink
          removed = true;
          return;
        }
        if (nxt.key > key) return;
        prev = cur.next;
        cur = nxt;
      }
    });
    return removed;
  }

  bool contains(zstm::zl::ThreadCtx& th, long key) {
    bool found = false;
    rt_.run_short(th, [&](zstm::zl::ShortTx& tx) {
      found = false;
      Node cur = tx.read(head_);
      while (cur.next.object() != nullptr) {
        const Node nxt = tx.read(cur.next);
        if (nxt.key == key) {
          found = true;
          return;
        }
        if (nxt.key > key) return;
        cur = nxt;
      }
    });
    return found;
  }

  /// Long transaction: walk the whole list, verifying sortedness, and
  /// return the size. Consistent even while shorts keep mutating.
  long audit(zstm::zl::ThreadCtx& th, bool* sorted_out) {
    long count = 0;
    bool sorted = true;
    rt_.run_long(th, [&](zstm::zl::LongTx& tx) {
      count = 0;
      sorted = true;
      long last = LONG_MIN;
      Node cur = tx.read(head_);
      while (cur.next.object() != nullptr) {
        const Node nxt = tx.read(cur.next);
        if (nxt.key <= last) sorted = false;
        last = nxt.key;
        ++count;
        cur = nxt;
      }
    });
    *sorted_out = sorted;
    return count;
  }

 private:
  zstm::zl::Runtime& rt_;
  NodeVar head_;
};

}  // namespace

int main(int argc, char** argv) {
  const int threads = argc > 1 ? std::atoi(argv[1]) : 4;
  const double seconds = argc > 2 ? std::atof(argv[2]) : 1.0;
  const long keyrange = argc > 3 ? std::atol(argv[3]) : 256;

  zstm::zl::Runtime rt;
  TSet set(rt);

  std::atomic<bool> stop{false};
  std::atomic<long> net_inserts{0};
  std::atomic<std::uint64_t> ops{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      auto th = rt.attach();
      zstm::util::Xorshift rng(static_cast<std::uint64_t>(t) + 1);
      long my_net = 0;
      std::uint64_t my_ops = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const long key = static_cast<long>(
            rng.next_below(static_cast<std::uint64_t>(keyrange)));
        const double dice = rng.next_unit();
        if (dice < 0.4) {
          my_net += set.insert(*th, key) ? 1 : 0;
        } else if (dice < 0.8) {
          my_net -= set.remove(*th, key) ? 1 : 0;
        } else {
          (void)set.contains(*th, key);
        }
        ++my_ops;
      }
      net_inserts.fetch_add(my_net);
      ops.fetch_add(my_ops);
    });
  }

  // Periodic audits from the main thread while mutations run.
  auto th = rt.attach();
  int audits = 0;
  bool always_sorted = true;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(
                            static_cast<long>(seconds * 1000));
  while (std::chrono::steady_clock::now() < deadline) {
    bool sorted = false;
    (void)set.audit(*th, &sorted);
    always_sorted &= sorted;
    ++audits;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  stop.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();

  bool sorted = false;
  const long size = set.audit(*th, &sorted);
  std::printf("tset: %llu ops, %d live audits, final size %ld\n",
              static_cast<unsigned long long>(ops.load()), audits, size);
  std::printf("  sortedness: %s (all audits: %s)\n", sorted ? "OK" : "BROKEN",
              always_sorted ? "OK" : "BROKEN");
  std::printf("  size matches net inserts: %s (%ld)\n",
              size == net_inserts.load() ? "OK" : "BROKEN",
              net_inserts.load());
  return (sorted && always_sorted && size == net_inserts.load()) ? 0 : 1;
}
