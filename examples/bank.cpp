// The paper's bank application (§5.5) as a standalone example, now over
// the unified façade: any runtime variant by name.
//
//   $ ./bank [threads] [seconds] [stm] [update]
//     threads : worker count                               (default 4)
//     seconds : run time                                   (default 1)
//     stm     : lsa | lsa-nors | cs-vc | cs-r | sstm | zl | tl2  (default z/zl)
//     update  : ro | update  — Compute-Total               (default ro)
//
// Thread 0 mixes transfers (80%) with Compute-Total (20%); other threads
// only transfer. Prints throughput, the conserved total, and STM stats.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

#include "../bench/bank_harness.hpp"

int main(int argc, char** argv) {
  zstm::bench::BankParams p;
  p.threads = argc > 1 ? std::atoi(argv[1]) : 4;
  const double seconds = argc > 2 ? std::atof(argv[2]) : 1.0;
  p.duration = std::chrono::milliseconds(static_cast<long>(seconds * 1000));
  std::string stm = argc > 3 ? argv[3] : "zl";
  if (stm == "z") stm = "zl";            // old spelling
  if (stm == "lsa-nrs") stm = "lsa-nors";  // old spelling
  p.update_total = argc > 4 && std::strcmp(argv[4], "update") == 0;

  if (p.threads < 1 || p.threads > 32) {
    std::fprintf(stderr, "threads must be in [1, 32]\n");
    return 2;
  }

  std::printf("bank: %d threads, %.1fs, stm=%s, compute-total=%s\n",
              p.threads, seconds, stm.c_str(),
              p.update_total ? "update" : "read-only");

  zstm::bench::BankResult r;
  long conserved = 0;
  try {
    r = zstm::bench::run_named_bank(stm, p, &conserved);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }

  std::printf("  transfers      : %10.0f tx/s  (%llu commits)\n",
              r.transfer_per_s,
              static_cast<unsigned long long>(r.transfer_commits));
  std::printf("  compute-total  : %10.1f tx/s  (%llu commits, %llu failed "
              "episodes)\n",
              r.compute_total_per_s,
              static_cast<unsigned long long>(r.compute_total_commits),
              static_cast<unsigned long long>(r.compute_total_failures));
  std::printf("  conserved total: %ld (expected %ld)\n", conserved,
              1000L * p.accounts);
  return conserved == 1000L * p.accounts ? 0 : 1;
}
