// Zone anatomy demo: watch z-linearizability's "time zones" (§5, Figure 5)
// form in real time.
//
//   $ ./zone_report [seconds]
//
// An inventory of products receives a stream of short order transactions
// while a reporting thread repeatedly runs a long transaction that computes
// a full stock/revenue report. The demo prints the zone counter ZC, the
// commit counter CT, how many shorts landed in each zone, and verifies the
// recorded history against the z-linearizability checker.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <thread>
#include <vector>

#include "core/stm.hpp"
#include "util/rng.hpp"

namespace {

struct Product {
  long stock = 100;
  long sold = 0;
  long revenue = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const double seconds = argc > 1 ? std::atof(argv[1]) : 1.0;
  constexpr int kProducts = 64;
  constexpr int kOrderThreads = 3;

  zstm::zl::Config cfg;
  cfg.lsa.record_history = true;
  zstm::zl::Runtime rt(cfg);

  std::vector<zstm::lsa::Var<Product>> products;
  for (int i = 0; i < kProducts; ++i) {
    products.push_back(rt.make_var<Product>(Product{}));
  }
  auto report_sink = rt.make_var<long>(0);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> orders{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kOrderThreads; ++t) {
    workers.emplace_back([&, t] {
      auto th = rt.attach();
      zstm::util::Xorshift rng(static_cast<std::uint64_t>(t) + 42);
      std::uint64_t my = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const std::size_t p = rng.next_below(kProducts);
        const long qty = 1 + static_cast<long>(rng.next_below(3));
        const long price = 5 + static_cast<long>(rng.next_below(20));
        rt.run_short(*th, [&](zstm::zl::ShortTx& tx) {
          Product& prod = tx.write(products[p]);
          if (prod.stock >= qty) {
            prod.stock -= qty;
            prod.sold += qty;
            prod.revenue += qty * price;
          } else {
            prod.stock += 50;  // restock instead
          }
        });
        ++my;
      }
      orders.fetch_add(my);
    });
  }

  auto th = rt.attach();
  int reports = 0;
  long last_units = 0;
  bool consistent = true;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(static_cast<long>(seconds * 1000));
  while (std::chrono::steady_clock::now() < deadline) {
    long units = 0, sold = 0;
    rt.run_long(*th, [&](zstm::zl::LongTx& tx) {
      units = 0;
      sold = 0;
      long revenue = 0;
      for (auto& p : products) {
        const Product& prod = tx.read(p);
        units += prod.stock;
        sold += prod.sold;
        revenue += prod.revenue;
      }
      tx.write(report_sink, revenue);
    });
    // Invariant: every unit is either in stock or sold, and restocks only
    // add in multiples of 50 on top of the initial 100 per product.
    if ((units + sold - kProducts * 100) % 50 != 0) consistent = false;
    last_units = units;
    ++reports;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();

  const auto history = rt.collect_history();
  std::map<std::uint64_t, int> zone_sizes;
  for (const auto& t : history.txs) {
    if (t.committed && t.tx_class == zstm::runtime::TxClass::kShort) {
      ++zone_sizes[t.zone];
    }
  }
  const auto verdict = zstm::history::check_z_linearizable(history);

  std::printf("zone_report: %llu orders, %d reports, stock units now %ld\n",
              static_cast<unsigned long long>(orders.load()), reports,
              last_units);
  std::printf("  zone counter ZC = %llu, commit counter CT = %llu\n",
              static_cast<unsigned long long>(rt.zone_counter()),
              static_cast<unsigned long long>(rt.commit_time()));
  std::printf("  shorts per zone (zone: count):");
  int shown = 0;
  for (const auto& [zone, n] : zone_sizes) {
    if (shown++ == 8) {
      std::printf(" ...");
      break;
    }
    std::printf(" %llu:%d", static_cast<unsigned long long>(zone), n);
  }
  std::printf("\n  report invariant: %s\n", consistent ? "OK" : "BROKEN");
  std::printf("  z-linearizability check over %zu committed txs: %s %s\n",
              history.committed_count(), verdict.ok ? "PASS" : "FAIL",
              verdict.reason.c_str());
  return (consistent && verdict.ok) ? 0 : 1;
}
