// The paper's figures as deterministic executable scenarios.
//
// Figure 1:  linearizability (LSA) forces the long transaction TL to abort;
//            causal serializability (CS-STM) and z-linearizability (Z-STM,
//            TL as a long transaction) admit it.
// Figure 4:  short transactions crossing an active long transaction abort;
//            shorts whose objects were all already opened by the long
//            transaction proceed and commit after it.
// Figure 5:  long transactions partition shorts into zones; the recorded
//            history passes the z-linearizability checker.
//
// CTest label: `stress` — randomized multi-threaded rounds; run under TSan
// in CI (DESIGN.md §6).
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/stm.hpp"

namespace zstm {
namespace {

// --- Figure 1 ------------------------------------------------------------------

TEST(Figure1, LsaAbortsTheLongTransaction) {
  lsa::Runtime rt(lsa::Config{.max_threads = 8});
  auto o1 = rt.make_var<int>(0);
  auto o2 = rt.make_var<int>(0);
  auto o3 = rt.make_var<int>(0);
  auto o4 = rt.make_var<int>(0);
  auto p1 = rt.attach();
  auto p2 = rt.attach();
  auto pl = rt.attach();

  lsa::Tx& tl = pl->begin();
  (void)tl.read(o1);
  (void)tl.read(o2);

  rt.run(*p1, [&](lsa::Tx& tx) {  // T1: w(o1) w(o2), commits first
    tx.write(o1, 1);
    tx.write(o2, 1);
  });
  rt.run(*p2, [&](lsa::Tx& tx) {  // T2: w(o3) w(o3)
    tx.write(o3, 1);
    tx.write(o3, 2);
  });

  (void)tl.read(o3);
  tl.write(o4, 1);
  // "Linearizability imposes an ordering of T1 before T2, which prevents
  // long transaction TL from committing."
  EXPECT_THROW(pl->commit(), lsa::TxAborted);
}

TEST(Figure1, CsStmAdmitsTheLongTransaction) {
  auto rt = cs::make_vc_runtime(cs::Config{.max_threads = 8});
  auto o1 = rt->make_var<int>(0);
  auto o2 = rt->make_var<int>(0);
  auto o3 = rt->make_var<int>(0);
  auto o4 = rt->make_var<int>(0);
  auto p1 = rt->attach();
  auto p2 = rt->attach();
  auto pl = rt->attach();

  cs::VcRuntime::Tx& tl = pl->begin();
  (void)tl.read(o1);
  (void)tl.read(o2);

  rt->run(*p1, [&](cs::VcRuntime::Tx& tx) {
    tx.write(o1, 1);
    tx.write(o2, 1);
  });
  rt->run(*p2, [&](cs::VcRuntime::Tx& tx) {
    tx.write(o3, 1);
    tx.write(o3, 2);
  });

  (void)tl.read(o3);
  tl.write(o4, 1);
  // "There is a valid serialization T2 → TL → T1" — vector time sees T1 and
  // T2 as concurrent and lets TL commit.
  EXPECT_NO_THROW(pl->commit());
}

TEST(Figure1, ZStmAdmitsTheLongTransaction) {
  zl::Runtime rt;
  auto o1 = rt.make_var<int>(0);
  auto o2 = rt.make_var<int>(0);
  auto o3 = rt.make_var<int>(0);
  auto o4 = rt.make_var<int>(0);
  auto p1 = rt.attach();
  auto p2 = rt.attach();
  auto pl = rt.attach();

  zl::LongTx& tl = pl->begin_long();
  (void)tl.read(o1);
  (void)tl.read(o2);

  rt.run_short(*p1, [&](zl::ShortTx& tx) {  // T1 updates objects TL has read
    tx.write(o1, 1);
    tx.write(o2, 1);
  });
  rt.run_short(*p2, [&](zl::ShortTx& tx) {
    tx.write(o3, 1);
    tx.write(o3, 2);
  });

  (void)tl.read(o3);
  tl.write(o4, 1);
  EXPECT_NO_THROW(pl->commit_long());  // no read validation for longs
}

TEST(Figure1, SstmAlsoAdmitsTheLongTransaction) {
  // Serializability is weaker than linearizability here too: the valid
  // serialization T2 → TL → T1 is accepted.
  sstm::Runtime rt(sstm::Config{.max_threads = 8});
  auto o1 = rt.make_var<int>(0);
  auto o2 = rt.make_var<int>(0);
  auto o3 = rt.make_var<int>(0);
  auto o4 = rt.make_var<int>(0);
  auto p1 = rt.attach();
  auto p2 = rt.attach();
  auto pl = rt.attach();

  sstm::Tx& tl = pl->begin();
  (void)tl.read(o1);
  (void)tl.read(o2);
  rt.run(*p1, [&](sstm::Tx& tx) {
    tx.write(o1, 1);
    tx.write(o2, 1);
  });
  rt.run(*p2, [&](sstm::Tx& tx) {
    tx.write(o3, 1);
    tx.write(o3, 2);
  });
  (void)tl.read(o3);
  tl.write(o4, 1);
  EXPECT_NO_THROW(pl->commit());
}

// --- Figure 4 ------------------------------------------------------------------

TEST(Figure4, ShortCrossingLongAbortsShortBehindItCommits) {
  zl::Runtime rt;
  auto o1 = rt.make_var<int>(0);
  auto o2 = rt.make_var<int>(0);
  auto o3 = rt.make_var<int>(0);
  auto o4 = rt.make_var<int>(0);
  auto pl = rt.attach();
  auto ps = rt.attach();

  zl::LongTx& tl1 = pl->begin_long();  // TL1 accesses all objects, in order
  (void)tl1.read(o1);
  (void)tl1.read(o2);
  // TL1 has not reached o3/o4 yet.

  // T1-like short: spans the long transaction's frontier (o2 opened, o3
  // not): must abort.
  zl::ShortTx& t1 = ps->begin_short();
  (void)t1.read(o2);
  EXPECT_THROW((void)t1.read(o3), zl::TxAborted);

  // T5-like short: entirely behind the frontier (o1 and o2 both opened by
  // TL1): proceeds in TL1's zone and commits, updating an object the long
  // transaction already read.
  rt.run_short(*ps, [&](zl::ShortTx& tx) {
    tx.write(o1) += 7;
    tx.write(o2) += 7;
  });

  (void)tl1.read(o3);
  (void)tl1.read(o4);
  EXPECT_NO_THROW(pl->commit_long());

  // T1's retry succeeds now that TL1 is done.
  rt.run_short(*ps, [&](zl::ShortTx& tx) {
    (void)tx.read(o2);
    (void)tx.read(o3);
  });
}

TEST(Figure4, ShortEntirelyAheadOfLongCommitsBeforeIt) {
  // A short touching only objects the long transaction has NOT opened yet
  // serializes before it (zone in the past).
  zl::Runtime rt;
  auto o1 = rt.make_var<int>(0);
  auto o3 = rt.make_var<int>(5);
  auto o4 = rt.make_var<int>(5);
  auto pl = rt.attach();
  auto ps = rt.attach();

  zl::LongTx& tl = pl->begin_long();
  (void)tl.read(o1);

  rt.run_short(*ps, [&](zl::ShortTx& tx) {  // zone 0: fully ahead of TL
    tx.write(o3) += 1;
    tx.write(o4) += 1;
  });

  EXPECT_EQ(tl.read(o3), 6);  // TL sees the short's committed effects
  EXPECT_EQ(tl.read(o4), 6);
  EXPECT_NO_THROW(pl->commit_long());
}

// --- Figure 5 ------------------------------------------------------------------

TEST(Figure5, LongTransactionsPartitionShortsIntoZones) {
  zl::Config cfg;
  cfg.lsa.record_history = true;
  zl::Runtime rt(cfg);
  constexpr int kObjects = 4;
  std::vector<lsa::Var<long>> objs;
  for (int i = 0; i < kObjects; ++i) objs.push_back(rt.make_var<long>(0));
  auto pl = rt.attach();
  auto ps = rt.attach();

  auto run_zone_shorts = [&](long delta) {
    rt.run_short(*ps, [&](zl::ShortTx& tx) {
      tx.write(objs[0]) += delta;
      tx.write(objs[1]) -= delta;
    });
    rt.run_short(*ps, [&](zl::ShortTx& tx) {
      tx.write(objs[2]) += delta;
      tx.write(objs[3]) -= delta;
    });
  };

  run_zone_shorts(1);  // zone 0
  rt.run_long(*pl, [&](zl::LongTx& tx) {  // TL1: reads everything
    long sum = 0;
    for (auto& o : objs) sum += tx.read(o);
    EXPECT_EQ(sum, 0);
  });
  run_zone_shorts(2);  // zone 1
  rt.run_long(*pl, [&](zl::LongTx& tx) {  // TL2
    long sum = 0;
    for (auto& o : objs) sum += tx.read(o);
    EXPECT_EQ(sum, 0);
  });
  run_zone_shorts(3);  // zone 2

  const auto h = rt.collect_history();
  auto res = history::check_z_linearizable(h);
  EXPECT_TRUE(res) << res.reason;

  // Shorts landed in three distinct zones delimited by the two longs.
  std::set<std::uint64_t> zones;
  for (const auto& t : h.txs) {
    if (t.committed && t.tx_class == runtime::TxClass::kShort) {
      zones.insert(t.zone);
    }
  }
  EXPECT_EQ(zones.size(), 3u);
}

}  // namespace
}  // namespace zstm
