// Wire-protocol torture for the networked KV front end (DESIGN.md §13.4):
// malformed frames, truncated length prefixes, adversarially huge length
// prefixes, unknown ops, byte-at-a-time sends, mid-request disconnects,
// pipelined bursts, and seeded garbage fuzzing. The contract under attack:
// the server never crashes, never leaks a connection slot, and never
// corrupts an unrelated connection's request/response stream.
//
// CTest label: `net`.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstring>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "net/kv_client.hpp"
#include "net/tcp_server.hpp"
#include "net/wire.hpp"
#include "server/kv_service.hpp"
#include "stress_env.hpp"
#include "util/rng.hpp"

namespace zstm::net {
namespace {

server::ServiceConfig torture_config() {
  server::ServiceConfig cfg;
  cfg.variant = "lsa";
  cfg.workers = 2;
  cfg.queue_capacity = 1 << 12;
  cfg.buckets = 64;
  cfg.stm.max_threads = 8;
  return cfg;
}

struct Rig {
  server::KvService svc;
  TcpServer ts;

  explicit Rig(NetConfig ncfg = {}) : svc(torture_config()), ts(svc, ncfg) {
    svc.preload(0, 64, 100);
    svc.start();
    EXPECT_TRUE(ts.start());
  }
  ~Rig() {
    ts.stop();
    svc.stop();
  }
  KvClient client() {
    KvClient c;
    EXPECT_TRUE(c.connect("127.0.0.1", ts.port()));
    return c;
  }
};

void wait_active_conns(const TcpServer& ts, std::uint64_t want) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (ts.stats().conns_active != want &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(ts.stats().conns_active, want);
}

/// Sends `bytes` on a fresh connection and expects the server to close it
/// (protocol error) while a bystander connection keeps working.
void expect_close_on(Rig& rig, const std::vector<std::uint8_t>& bytes) {
  KvClient bystander = rig.client();
  ASSERT_TRUE(bystander.ping(1));
  const std::uint64_t errors_before = rig.ts.stats().protocol_errors;

  KvClient attacker = rig.client();
  ASSERT_TRUE(attacker.send_raw(bytes.data(), bytes.size()));
  wire::Response resp;
  EXPECT_FALSE(attacker.recv_response(&resp));  // EOF (or a garbage frame)

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (rig.ts.stats().protocol_errors == errors_before &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GT(rig.ts.stats().protocol_errors, errors_before);

  // The bystander's stream is untouched.
  EXPECT_TRUE(bystander.ping(2));
  auto v = bystander.get(7);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 100);
}

std::vector<std::uint8_t> valid_get_frame(std::uint64_t req_id,
                                          std::uint64_t key) {
  wire::Request req;
  req.op = wire::Op::kGet;
  req.req_id = req_id;
  req.key = key;
  std::uint8_t buf[wire::kReqFrame];
  wire::encode_request(req, buf);
  return std::vector<std::uint8_t>(buf, buf + wire::kReqFrame);
}

TEST(NetTorture, BadMagicClosesOnlyThatConnection) {
  Rig rig;
  std::vector<std::uint8_t> f = valid_get_frame(1, 7);
  f[wire::kLenBytes] = 0x00;  // wrong magic
  expect_close_on(rig, f);
}

TEST(NetTorture, UnknownOpCloses) {
  Rig rig;
  std::vector<std::uint8_t> f = valid_get_frame(1, 7);
  f[wire::kLenBytes + 1] = 200;  // op out of range
  expect_close_on(rig, f);
}

TEST(NetTorture, WrongLengthPrefixCloses) {
  Rig rig;
  std::vector<std::uint8_t> f = valid_get_frame(1, 7);
  wire::put_u32(f.data(), 10);  // not the one request body size
  expect_close_on(rig, f);
}

TEST(NetTorture, HugeLengthPrefixCloses) {
  // An adversarial 0xFFFFFFFF prefix must be rejected on sight — the
  // strict decoder never tries to buffer it.
  Rig rig;
  std::vector<std::uint8_t> f(wire::kLenBytes, 0xFF);
  expect_close_on(rig, f);
}

TEST(NetTorture, OversizedFanoutAnswersErrorAndStaysOpen) {
  // Decodable but unserviceable is NOT a protocol error: the connection
  // survives with a kError response.
  Rig rig;
  KvClient c = rig.client();
  const KvClient::Result r =
      c.call(wire::Op::kMultiGet, 0, 0, 0, 1u << 20);
  EXPECT_TRUE(r.transport_ok);
  EXPECT_EQ(r.status, wire::Status::kError);
  EXPECT_TRUE(c.ping(3));  // still open
  EXPECT_EQ(rig.ts.stats().protocol_errors, 0u);
}

TEST(NetTorture, TruncatedFrameWaitsForTheRest) {
  Rig rig;
  KvClient c = rig.client();
  const std::vector<std::uint8_t> f = valid_get_frame(42, 7);

  // Length prefix only, then a pause, then the body: not an error.
  ASSERT_TRUE(c.send_raw(f.data(), wire::kLenBytes));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_TRUE(c.send_raw(f.data() + wire::kLenBytes,
                         f.size() - wire::kLenBytes));
  wire::Response resp;
  ASSERT_TRUE(c.recv_response(&resp));
  EXPECT_EQ(resp.req_id, 42u);
  EXPECT_EQ(resp.status, wire::Status::kOk);
  EXPECT_EQ(resp.value, 100);
}

TEST(NetTorture, ByteAtATimeRequestStillAnswers) {
  Rig rig;
  KvClient c = rig.client();
  const std::vector<std::uint8_t> f = valid_get_frame(43, 8);
  for (const std::uint8_t b : f) {
    ASSERT_TRUE(c.send_raw(&b, 1));
  }
  wire::Response resp;
  ASSERT_TRUE(c.recv_response(&resp));
  EXPECT_EQ(resp.req_id, 43u);
  EXPECT_EQ(resp.status, wire::Status::kOk);
}

TEST(NetTorture, MidRequestDisconnectReclaims) {
  Rig rig;
  const int rounds = test_env::stress_rounds(50);
  for (int i = 0; i < rounds; ++i) {
    KvClient c = rig.client();
    const std::vector<std::uint8_t> f =
        valid_get_frame(static_cast<std::uint64_t>(i), 7);
    // Half a frame, then vanish.
    ASSERT_TRUE(c.send_raw(f.data(), f.size() / 2));
    c.close();
  }
  wait_active_conns(rig.ts, 0);
  EXPECT_EQ(rig.ts.stats().conns_accepted, rig.ts.stats().conns_closed);
  KvClient fresh = rig.client();
  EXPECT_TRUE(fresh.ping(1));
}

TEST(NetTorture, PipelinedBurstAnswersEveryRequest) {
  Rig rig;
  KvClient c = rig.client();
  const int kBurst = 200;
  std::vector<std::uint8_t> burst;
  for (int i = 1; i <= kBurst; ++i) {
    const std::vector<std::uint8_t> f = valid_get_frame(
        static_cast<std::uint64_t>(i), static_cast<std::uint64_t>(i % 64));
    burst.insert(burst.end(), f.begin(), f.end());
  }
  ASSERT_TRUE(c.send_raw(burst.data(), burst.size()));
  std::set<std::uint64_t> ids;
  for (int i = 0; i < kBurst; ++i) {
    wire::Response resp;
    ASSERT_TRUE(c.recv_response(&resp));
    EXPECT_EQ(resp.status, wire::Status::kOk);
    EXPECT_EQ(resp.value, 100);
    EXPECT_TRUE(ids.insert(resp.req_id).second);
  }
  EXPECT_EQ(ids.size(), static_cast<std::size_t>(kBurst));
  EXPECT_EQ(*ids.begin(), 1u);
  EXPECT_EQ(*ids.rbegin(), static_cast<std::uint64_t>(kBurst));
}

TEST(NetTorture, GarbageFuzzNeverKillsTheServer) {
  // Seeded random byte streams of random lengths, with a parallel honest
  // client checking its own stream stays intact throughout.
  Rig rig;
  KvClient honest = rig.client();
  util::Xorshift rng(0xF00DF00DULL);
  const int rounds = test_env::stress_rounds(100);
  for (int i = 0; i < rounds; ++i) {
    KvClient fuzz = rig.client();
    const std::size_t len = 1 + rng.next_below(200);
    std::vector<std::uint8_t> junk(len);
    for (auto& b : junk) {
      b = static_cast<std::uint8_t>(rng.next_below(256));
    }
    ASSERT_TRUE(fuzz.send_raw(junk.data(), junk.size()));
    fuzz.close();
    if (i % 10 == 0) {
      ASSERT_TRUE(honest.ping(i));
      auto v = honest.get(static_cast<std::uint64_t>(i % 64));
      ASSERT_TRUE(v.has_value());
      EXPECT_EQ(*v, 100);
    }
  }
  wait_active_conns(rig.ts, 1);  // only the honest client remains
  const KvClient::Result scan = honest.scan();
  EXPECT_TRUE(scan.ok());
  EXPECT_EQ(scan.count, 64u);
}

TEST(NetTorture, SlowConsumerIsShedThenClosed) {
  // A client that pipelines hard but never reads must first see sheds
  // accounted, then be disconnected once the out-buffer passes 4x the
  // watermark — and the server stays healthy for others.
  NetConfig ncfg;
  ncfg.write_high_watermark = 1 << 10;  // tiny, to hit the limits fast
  Rig rig(ncfg);
  KvClient c = rig.client();

  std::vector<std::uint8_t> burst;
  for (int i = 1; i <= 2000; ++i) {
    const std::vector<std::uint8_t> f = valid_get_frame(
        static_cast<std::uint64_t>(i), static_cast<std::uint64_t>(i % 64));
    burst.insert(burst.end(), f.begin(), f.end());
  }
  // Never read; keep writing until the server hangs up on us.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (c.connected() && std::chrono::steady_clock::now() < deadline) {
    if (!c.send_raw(burst.data(), burst.size())) break;
  }
  const auto stats_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (rig.ts.stats().slow_consumer_closed == 0 &&
         std::chrono::steady_clock::now() < stats_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(rig.ts.stats().slow_consumer_closed, 1u);

  KvClient fresh = rig.client();
  EXPECT_TRUE(fresh.ping(1));
}

}  // namespace
}  // namespace zstm::net
