// KV service battery (DESIGN.md §12): every runtime variant behind the
// same service, value conservation under concurrent transfers, scan
// snapshot consistency while updates race, clean shutdown with in-flight
// requests, registry-slot reclamation across service restarts (thread
// churn), failpoint chaos recovery, and the bounded-descriptor guarantee
// the sstm housekeeping exists for.
//
// CTest label: `server`.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "fault/failpoint.hpp"
#include "server/kv_service.hpp"
#include "server/load_gen.hpp"
#include "server/mpmc_queue.hpp"
#include "stress_env.hpp"

namespace zstm::server {
namespace {

ServiceConfig small_config(const std::string& variant, int workers = 2) {
  ServiceConfig cfg;
  cfg.variant = variant;
  cfg.workers = workers;
  cfg.queue_capacity = 1 << 12;
  cfg.buckets = 64;
  cfg.maintain_interval = std::chrono::milliseconds(2);
  cfg.stm.max_threads = workers + 6;
  return cfg;
}

/// Submit-and-wait helper: runs one request synchronously through the
/// service queue (so it exercises the worker path, not the store directly).
Response call(KvService& svc, Request req) {
  std::atomic<bool> done{false};
  Response out;
  req.on_done = [&](const Response& r) {
    out = r;
    done.store(true, std::memory_order_release);
  };
  EXPECT_TRUE(svc.submit(std::move(req)));
  while (!done.load(std::memory_order_acquire)) std::this_thread::yield();
  return out;
}

Request make(Op op, Key key = 0, Value value = 0, Key key2 = 0,
             std::uint32_t fanout = 0) {
  Request r;
  r.op = op;
  r.key = key;
  r.key2 = key2;
  r.value = value;
  r.fanout = fanout;
  return r;
}

TEST(KvServer, BasicOpsEveryVariant) {
  for (const std::string& variant : api::variant_names()) {
    SCOPED_TRACE(variant);
    KvService svc(small_config(variant));
    svc.preload(0, 8, 10);
    svc.start();

    Response r = call(svc, make(Op::kGet, 3));
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.value, 10);

    r = call(svc, make(Op::kGet, 99));
    EXPECT_FALSE(r.ok);  // absent key

    r = call(svc, make(Op::kPut, 99, 70));
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.count, 1u);  // fresh insert
    r = call(svc, make(Op::kPut, 99, 77));
    EXPECT_EQ(r.count, 0u);  // overwrite

    r = call(svc, make(Op::kMultiGet, 0, 0, 0, 8));
    EXPECT_EQ(r.count, 8u);
    EXPECT_EQ(r.value, 80);  // 8 keys x 10

    r = call(svc, make(Op::kTransfer, /*key=*/1, /*value=*/4, /*key2=*/2));
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(call(svc, make(Op::kGet, 1)).value, 6);
    EXPECT_EQ(call(svc, make(Op::kGet, 2)).value, 14);

    r = call(svc, make(Op::kScan));
    EXPECT_EQ(r.count, 9u);          // 8 preloaded + key 99
    EXPECT_EQ(r.value, 80 + 77);     // transfer conserved the sum

    r = call(svc, make(Op::kDel, 99));
    EXPECT_TRUE(r.ok);
    EXPECT_FALSE(call(svc, make(Op::kDel, 99)).ok);

    svc.stop();
    const ServiceMetrics m = svc.metrics();
    EXPECT_EQ(m.completed, m.accepted);
    EXPECT_GT(m.all.count(), 0u);
    const auto audit = svc.store().audit();
    EXPECT_TRUE(audit.sorted);
    EXPECT_EQ(audit.size, 8u);
  }
}

TEST(KvServer, TransferConservationAndScanSnapshots) {
  // Transfers race long scans; every scan — concurrent or final — must see
  // the preloaded sum (conservation) and the full key population (no key
  // ever vanishes mid-transfer, because the two writes are one tx).
  constexpr Key kKeys = 48;
  constexpr Value kInit = 100;
  for (const std::string& variant : {std::string("zl"), std::string("sstm"),
                                     std::string("tl2")}) {
    SCOPED_TRACE(variant);
    KvService svc(small_config(variant, 3));
    svc.preload(0, kKeys, kInit);
    svc.start();

    std::atomic<std::uint64_t> scans_checked{0};
    std::atomic<std::uint64_t> scan_violations{0};
    const int rounds = test_env::stress_rounds(400);
    util::Xorshift rng(42);
    std::atomic<std::uint64_t> pending{0};
    for (int i = 0; i < rounds; ++i) {
      if (i % 16 == 0) {
        Request scan = make(Op::kScan);
        pending.fetch_add(1);
        scan.on_done = [&](const Response& r) {
          scans_checked.fetch_add(1, std::memory_order_relaxed);
          if (r.count != kKeys ||
              r.value != static_cast<Value>(kKeys) * kInit) {
            scan_violations.fetch_add(1, std::memory_order_relaxed);
          }
          pending.fetch_sub(1, std::memory_order_release);
        };
        ASSERT_TRUE(svc.submit(std::move(scan)));
      }
      const Key from = rng.next_below(kKeys);
      Key to = rng.next_below(kKeys);
      if (to == from) to = (to + 1) % kKeys;
      ASSERT_TRUE(svc.submit(make(Op::kTransfer, from,
                                  static_cast<Value>(rng.next_below(5)), to)));
    }
    svc.stop();
    EXPECT_EQ(pending.load(), 0u);  // stop() drained every callback
    EXPECT_GT(scans_checked.load(), 0u);
    EXPECT_EQ(scan_violations.load(), 0u);

    const KvStore::ScanResult fin = svc.store().scan();
    EXPECT_EQ(fin.count, kKeys);
    EXPECT_EQ(fin.sum, static_cast<Value>(kKeys) * kInit);
  }
}

TEST(KvServer, MultiGetWindowIsOneSnapshot) {
  // Transfers confined to the window [0, 16) make the window sum an
  // invariant that only a torn (multi-transaction) read could violate.
  constexpr Key kWin = 16;
  KvService svc(small_config("lsa", 3));
  svc.preload(0, kWin, 50);
  svc.start();
  std::atomic<std::uint64_t> violations{0};
  std::atomic<std::uint64_t> pending{0};
  util::Xorshift rng(7);
  const int rounds = test_env::stress_rounds(600);
  for (int i = 0; i < rounds; ++i) {
    if (i % 8 == 0) {
      Request mg = make(Op::kMultiGet, 0, 0, 0, kWin);
      pending.fetch_add(1);
      mg.on_done = [&](const Response& r) {
        if (r.count != kWin || r.value != static_cast<Value>(kWin) * 50) {
          violations.fetch_add(1, std::memory_order_relaxed);
        }
        pending.fetch_sub(1, std::memory_order_release);
      };
      ASSERT_TRUE(svc.submit(std::move(mg)));
    }
    const Key from = rng.next_below(kWin);
    ASSERT_TRUE(svc.submit(
        make(Op::kTransfer, from, 1, (from + 1 + rng.next_below(kWin - 1)) % kWin)));
  }
  svc.stop();
  EXPECT_EQ(pending.load(), 0u);
  EXPECT_EQ(violations.load(), 0u);
}

TEST(KvServer, CleanShutdownDrainsInflightBurst) {
  // A burst far larger than the workers can instantly absorb, then an
  // immediate stop(): every ACCEPTED request must still execute (drain
  // semantics), and accepted + shed must account for every submit.
  KvService svc(small_config("cs-vc", 2));
  svc.preload(0, 32, 5);
  svc.start();
  std::atomic<std::uint64_t> callbacks{0};
  const int burst = test_env::stress_rounds(3000);
  std::uint64_t accepted = 0;
  for (int i = 0; i < burst; ++i) {
    Request r = make(Op::kPut, static_cast<Key>(i % 512),
                     static_cast<Value>(i));
    r.on_done = [&](const Response&) {
      callbacks.fetch_add(1, std::memory_order_relaxed);
    };
    if (svc.submit(std::move(r))) ++accepted;
  }
  svc.stop();
  EXPECT_EQ(svc.completed(), accepted);
  EXPECT_EQ(callbacks.load(), accepted);
  // After stop, submits shed cleanly.
  EXPECT_FALSE(svc.submit(make(Op::kGet, 0)));
}

TEST(KvServer, RestartChurnReclaimsRegistrySlots) {
  // Each start() spawns a fresh worker pool; with max_threads barely above
  // the per-run need, 12 restarts only work if thread-exit hands registry
  // slots back every round.
  ServiceConfig cfg = small_config("zl", 3);
  cfg.stm.max_threads = 6;  // 3 workers + main + housekeeping slack
  KvService svc(cfg);
  svc.preload(0, 16, 1);
  for (int round = 0; round < 12; ++round) {
    SCOPED_TRACE(round);
    svc.start();
    EXPECT_TRUE(svc.running());
    const Response r = call(svc, make(Op::kScan));
    EXPECT_EQ(r.count, 16u);
    svc.stop();
    EXPECT_FALSE(svc.running());
  }
  EXPECT_EQ(svc.store().scan().sum, 16);
}

TEST(KvServer, ChaosFailpointsRecover) {
  // Arm every abort-capable failpoint at low probability while a paced load
  // runs against lsa: the retry ladder must absorb the induced aborts and
  // the final state must still audit clean. SuppressGuard protects the
  // preload/teardown phases.
  fault::registry().disarm_all();
  fault::registry().set_seed(0x9e3779b9ULL);
  KvService svc(small_config("lsa", 2));
  {
    fault::SuppressGuard quiet;
    svc.preload(0, 64, 100);
  }
  svc.start();
  ASSERT_TRUE(fault::registry().arm(fault::Site::kLsaAcquire, 0.05));
  ASSERT_TRUE(fault::registry().arm(fault::Site::kStoreSettleCas, 0.05,
                                    /*after=*/0, fault::Effect::kCasFail));

  LoadGenConfig lcfg;
  lcfg.rate = 4000.0;
  lcfg.duration = std::chrono::milliseconds(test_env::stress_rounds(250));
  lcfg.keyspace = 64;
  lcfg.zipf_theta = 0.9;
  lcfg.mix.del = 0.0;  // keep the population stable for the final audit
  lcfg.mix.put = 0.0;  // transfers + reads only: the sum is pinned
  lcfg.seed = 3;
  const LoadGenResult load = run_open_loop(svc, lcfg);
  const std::uint64_t fired = fault::registry().triggers_total();
  fault::registry().disarm_all();  // also zeroes the counts — read first
  svc.stop();

  EXPECT_GT(load.accepted, 0u);
  EXPECT_EQ(svc.completed(), load.accepted);
  EXPECT_GT(fired, 0u)
      << "failpoints armed but never fired — chaos did not happen";
  const KvStore::ScanResult fin = svc.store().scan();
  EXPECT_EQ(fin.count, 64u);
  EXPECT_EQ(fin.sum, 64 * 100);
  fault::registry().reset_counts();
}

TEST(KvServer, SstmDescriptorCountStaysBounded) {
  // The regression the housekeeping + maintain_every plumbing exists for:
  // under sustained update load, sstm's retained descriptor count must stay
  // bounded (trims keep up) instead of growing with total commits, and a
  // stopped service holds zero.
  ServiceConfig cfg = small_config("sstm", 2);
  cfg.maintain_interval = std::chrono::milliseconds(1);
  cfg.stm.maintain_every = 64;
  KvService svc(cfg);
  svc.preload(0, 32, 10);
  svc.start();
  LoadGenConfig lcfg;
  lcfg.rate = 6000.0;
  lcfg.duration = std::chrono::milliseconds(test_env::stress_rounds(400));
  lcfg.keyspace = 32;
  lcfg.mix.put = 0.5;  // update-heavy: every commit retires a descriptor
  lcfg.mix.del = 0.0;
  lcfg.seed = 5;
  const LoadGenResult load = run_open_loop(svc, lcfg);
  svc.stop();

  const ServiceMetrics m = svc.metrics();
  EXPECT_GT(load.accepted, 100u);
  EXPECT_GT(m.reclaimed_total, 0u);
  EXPECT_EQ(m.retained_last, 0u);  // final quiescent trim got everything
  // Bounded: the high-water mark must be far below "every commit retained".
  EXPECT_LT(m.retained_high_water, m.completed)
      << "descriptor count grew with commit count — trims are not keeping up";
  EXPECT_EQ(svc.stm().maintain().retained, 0u);
}

TEST(MpmcQueue, FullSheddingAndDrainAfterClose) {
  MpmcQueue<int> q(4);  // capacity rounds to 4
  EXPECT_EQ(q.capacity(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.try_push(int(i)));
  EXPECT_FALSE(q.try_push(99));  // full: shed, never block
  q.close();
  EXPECT_FALSE(q.try_push(5));  // closed: rejected
  int v = -1;
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(q.pop(v));  // closed but not drained: still delivers
    EXPECT_EQ(v, i);        // FIFO
  }
  EXPECT_FALSE(q.pop(v));  // closed AND drained
}

TEST(MpmcQueue, ConcurrentProducersConsumersLoseNothing) {
  MpmcQueue<std::uint64_t> q(64);
  constexpr int kProducers = 3;
  constexpr int kConsumers = 3;
  const std::uint64_t per = test_env::stress_rounds(20000);
  std::atomic<std::uint64_t> consumed_sum{0};
  std::atomic<std::uint64_t> produced_sum{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      std::uint64_t v = 0;
      std::uint64_t local = 0;
      while (q.pop(v)) local += v;
      consumed_sum.fetch_add(local);
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      std::uint64_t local = 0;
      for (std::uint64_t i = 0; i < per; ++i) {
        const std::uint64_t v = p * per + i + 1;
        while (!q.try_push(std::uint64_t(v))) std::this_thread::yield();
        local += v;
      }
      produced_sum.fetch_add(local);
    });
  }
  for (auto& t : producers) t.join();
  q.close();
  for (auto& t : threads) t.join();
  EXPECT_EQ(consumed_sum.load(), produced_sum.load());
}

}  // namespace
}  // namespace zstm::server
