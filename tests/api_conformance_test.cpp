// Cross-runtime conformance suite for the unified façade (api/stm_api.hpp):
// one shared battery, TYPED_TEST'd across all six runtime variants through
// api::Stm<R>, plus AnyStm name-resolution coverage. Every variant must
// agree on the observable semantics the façade promises — atomic updates,
// consistent read-only snapshots, abort/retry visibility, budgeted-run
// failure reporting, long-transaction progress under writer churn, pool
// on/off equivalence — and on the implicit-attachment lifecycle (thread
// churn must reclaim registry slots; this extends tests/node_pool_test.cpp's
// slot-release pattern to the API layer).
//
// CTest label: `conformance` (DESIGN.md §6/§8); rounds scale with
// ZSTM_STRESS_ROUNDS and the suite runs under the TSan CI job.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "api/stm_api.hpp"
#include "stress_env.hpp"
#include "util/rng.hpp"

namespace zstm {
namespace {

using api::CommonConfig;
using api::TxKind;

template <typename S>
class ApiConformance : public ::testing::Test {
 public:
  /// Small-footprint config shared by the battery; the plausible-clock
  /// variant runs with r = 2 entries so clock aliasing is actually
  /// exercised (false conflicts allowed, inconsistencies not).
  static CommonConfig config() {
    CommonConfig cfg;
    cfg.max_threads = 12;
    if constexpr (std::is_same_v<S, api::CsRevStm>) cfg.plausible_entries = 2;
    return cfg;
  }
  static S make(CommonConfig cfg = config()) { return S(cfg); }
};

using Variants = ::testing::Types<api::LsaStm, api::CsVcStm, api::CsRevStm,
                                  api::SStm, api::ZStm, api::Tl2Stm>;
TYPED_TEST_SUITE(ApiConformance, Variants);

// --- basic semantics --------------------------------------------------------

TYPED_TEST(ApiConformance, EveryKindCommitsAndReadsBack) {
  TypeParam stm = this->make();
  auto x = stm.make_var(1L);

  api::RunResult r =
      stm.run(TxKind::kUpdate, [&](auto& tx) { tx.write(x) += 1; });
  EXPECT_TRUE(r.committed);
  EXPECT_GE(r.attempts, 1u);
  stm.run(TxKind::kLongUpdate, [&](auto& tx) { tx.write(x) += 1; });
  stm.run(TxKind::kReadOnly, [&](auto& tx) { EXPECT_EQ(tx.read(x), 3); });
  stm.run(TxKind::kLong, [&](auto& tx) { EXPECT_EQ(tx.read(x), 3); });
}

TYPED_TEST(ApiConformance, CounterRaceLosesNoIncrements) {
  constexpr int kThreads = 4;
  const int rounds = test_env::stress_rounds(400);
  TypeParam stm = this->make();
  auto counter = stm.make_var(0L);

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < rounds; ++i) {
        stm.run(TxKind::kUpdate, [&](auto& tx) { tx.write(counter) += 1; });
      }
    });
  }
  for (auto& w : workers) w.join();

  stm.run(TxKind::kReadOnly, [&](auto& tx) {
    EXPECT_EQ(tx.read(counter), static_cast<long>(kThreads) * rounds);
  });
}

TYPED_TEST(ApiConformance, ReadOnlySnapshotsSeeConservedTotal) {
  constexpr int kVars = 16;
  constexpr long kInitial = 100;
  const int rounds = test_env::stress_rounds(600);
  TypeParam stm = this->make();
  std::vector<typename TypeParam::template Var<long>> vars;
  for (int i = 0; i < kVars; ++i) vars.push_back(stm.make_var(kInitial));

  std::atomic<bool> writers_done{false};
  std::atomic<bool> torn_snapshot{false};
  std::thread writer([&] {
    util::Xorshift rng(7);
    for (int i = 0; i < rounds; ++i) {
      const std::size_t a = rng.next_below(kVars);
      std::size_t b = rng.next_below(kVars);
      if (b == a) b = (b + 1) % kVars;
      stm.run(TxKind::kUpdate, [&](auto& tx) {
        tx.write(vars[a]) -= 3;
        tx.write(vars[b]) += 3;
      });
    }
    writers_done.store(true, std::memory_order_release);
  });
  std::thread reader([&] {
    while (!writers_done.load(std::memory_order_acquire)) {
      long total = 0;
      stm.run(TxKind::kReadOnly, [&](auto& tx) {
        total = 0;
        for (auto& v : vars) total += tx.read(v);
      });
      if (total != kInitial * kVars) torn_snapshot.store(true);
      long long_total = 0;
      stm.run(TxKind::kLong, [&](auto& tx) {
        long_total = 0;
        for (auto& v : vars) long_total += tx.read(v);
      });
      if (long_total != kInitial * kVars) torn_snapshot.store(true);
    }
  });
  writer.join();
  reader.join();
  EXPECT_FALSE(torn_snapshot.load());
}

TYPED_TEST(ApiConformance, AbortedAttemptLeavesNoTraceAndRetries) {
  TypeParam stm = this->make();
  auto x = stm.make_var(0L);

  int tries = 0;
  const api::RunResult r = stm.run(TxKind::kUpdate, [&](auto& tx) {
    tx.write(x) = 99;  // visible only if this attempt commits
    if (++tries < 2) tx.abort();
    tx.write(x) = 1;
  });
  EXPECT_TRUE(r.committed);
  EXPECT_EQ(r.attempts, 2u);
  stm.run(TxKind::kReadOnly, [&](auto& tx) { EXPECT_EQ(tx.read(x), 1); });
}

TYPED_TEST(ApiConformance, BudgetedRunReportsFailureWithoutSideEffects) {
  TypeParam stm = this->make();
  auto x = stm.make_var(42L);

  const api::RunResult r = stm.run(
      TxKind::kUpdate,
      [&](auto& tx) {
        tx.write(x) = -1;
        tx.abort();
      },
      /*max_attempts=*/3);
  EXPECT_FALSE(r.committed);
  EXPECT_EQ(r.attempts, 3u);
  stm.run(TxKind::kReadOnly, [&](auto& tx) { EXPECT_EQ(tx.read(x), 42); });
}

TYPED_TEST(ApiConformance, ForeignExceptionAbandonsAttemptRecoverably) {
  // The stm_api.hpp contract: an exception other than the abort token
  // propagates to the caller, and the next run on the same thread aborts
  // the abandoned attempt first. Exercise both the short and long paths.
  TypeParam stm = this->make();
  auto x = stm.make_var(0L);

  for (const TxKind kind : {TxKind::kUpdate, TxKind::kLongUpdate}) {
    struct Boom {};
    EXPECT_THROW(stm.run(kind,
                         [&](auto& tx) {
                           tx.write(x) += 100;  // installs a locator
                           throw Boom{};
                         }),
                 Boom);
    // The abandoned write must not be visible, and the object must not be
    // wedged behind the abandoned attempt's descriptor.
    stm.run(TxKind::kUpdate, [&](auto& tx) { tx.write(x) += 1; });
  }
  stm.run(TxKind::kReadOnly, [&](auto& tx) { EXPECT_EQ(tx.read(x), 2); });
}

// --- long transactions vs writer churn -------------------------------------

TYPED_TEST(ApiConformance, LongUpdateMakesProgressUnderWriterChurn) {
  constexpr int kThreads = 3;
  constexpr int kVars = 24;
  const int rounds = test_env::stress_rounds(300);
  TypeParam stm = this->make();
  std::vector<typename TypeParam::template Var<long>> vars;
  for (int i = 0; i < kVars; ++i) vars.push_back(stm.make_var(10L));
  auto sink = stm.make_var(0L);

  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      util::Xorshift rng(static_cast<std::uint64_t>(t) * 13 + 5);
      for (int i = 0; i < rounds; ++i) {
        const std::size_t a = rng.next_below(kVars);
        std::size_t b = rng.next_below(kVars);
        if (b == a) b = (b + 1) % kVars;
        stm.run(TxKind::kUpdate, [&](auto& tx) {
          tx.write(vars[a]) -= 1;
          tx.write(vars[b]) += 1;
        });
      }
    });
  }

  // Unbounded long updates racing the (bounded) writer storm: they must
  // all commit — the writers quiesce, so even first-committer-wins
  // runtimes converge; Z-STM commits them *during* the storm.
  int long_commits = 0;
  for (int i = 0; i < 5; ++i) {
    const api::RunResult r = stm.run(TxKind::kLongUpdate, [&](auto& tx) {
      long total = 0;
      for (auto& v : vars) total += tx.read(v);
      tx.write(sink, total);
    });
    if (r.committed) ++long_commits;
  }
  for (auto& w : writers) w.join();
  EXPECT_EQ(long_commits, 5);

  stm.run(TxKind::kReadOnly, [&](auto& tx) {
    EXPECT_EQ(tx.read(sink), 10L * kVars);  // transfers conserve the total
    long total = 0;
    for (auto& v : vars) total += tx.read(v);
    EXPECT_EQ(total, 10L * kVars);
  });
}

// --- configuration lowering -------------------------------------------------

TYPED_TEST(ApiConformance, PoolDisabledVariantStillConforms) {
  CommonConfig cfg = this->config();
  cfg.use_node_pool = false;
  TypeParam stm = this->make(cfg);
  auto x = stm.make_var(0L);

  constexpr int kThreads = 2;
  const int rounds = test_env::stress_rounds(150);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < rounds; ++i) {
        stm.run(TxKind::kUpdate, [&](auto& tx) { tx.write(x) += 1; });
      }
    });
  }
  for (auto& w : workers) w.join();
  stm.run(TxKind::kLong, [&](auto& tx) {
    EXPECT_EQ(tx.read(x), static_cast<long>(kThreads) * rounds);
  });
}

// --- implicit attachment lifecycle ------------------------------------------

TYPED_TEST(ApiConformance, ThreadChurnReclaimsRegistrySlots) {
  // 8 waves x 4 short-lived threads = 32 attachments against a registry
  // with room for 6: unless each exiting thread's cached ctx releases its
  // slot (the TLS-destructor / ThreadRegistry release-listener path), a
  // later wave throws "thread registry full" and the test dies.
  CommonConfig cfg = this->config();
  cfg.max_threads = 6;
  TypeParam stm = this->make(cfg);
  auto counter = stm.make_var(0L);

  constexpr int kWaves = 8;
  constexpr int kPerWave = 4;
  for (int wave = 0; wave < kWaves; ++wave) {
    std::vector<std::thread> workers;
    for (int t = 0; t < kPerWave; ++t) {
      workers.emplace_back([&] {
        stm.run(TxKind::kUpdate, [&](auto& tx) { tx.write(counter) += 1; });
      });
    }
    for (auto& w : workers) w.join();
  }

  stm.run(TxKind::kReadOnly, [&](auto& tx) {
    EXPECT_EQ(tx.read(counter), static_cast<long>(kWaves) * kPerWave);
  });
}

TYPED_TEST(ApiConformance, DetachThreadReleasesAndReattaches) {
  CommonConfig cfg = this->config();
  cfg.max_threads = 2;  // this thread's slot + headroom of one
  TypeParam stm = this->make(cfg);
  auto x = stm.make_var(0L);

  for (int i = 0; i < 3; ++i) {
    stm.run(TxKind::kUpdate, [&](auto& tx) { tx.write(x) += 1; });
    stm.detach_thread();  // releases the slot; next run re-attaches
  }
  stm.run(TxKind::kReadOnly, [&](auto& tx) { EXPECT_EQ(tx.read(x), 3); });
}

TYPED_TEST(ApiConformance, TwoFacadeInstancesKeepSeparateState) {
  TypeParam a = this->make();
  TypeParam b = this->make();
  auto xa = a.make_var(1L);
  auto xb = b.make_var(10L);
  a.run(TxKind::kUpdate, [&](auto& tx) { tx.write(xa) += 1; });
  b.run(TxKind::kUpdate, [&](auto& tx) { tx.write(xb) += 1; });
  a.run(TxKind::kReadOnly, [&](auto& tx) { EXPECT_EQ(tx.read(xa), 2); });
  b.run(TxKind::kReadOnly, [&](auto& tx) { EXPECT_EQ(tx.read(xb), 11); });
  EXPECT_EQ(a.stats()[util::Counter::kCommits], 2u);
  EXPECT_EQ(b.stats()[util::Counter::kCommits], 2u);
}

// --- AnyStm: name resolution and erased-handle semantics --------------------

TEST(AnyStm, UnknownNameThrows) {
  EXPECT_THROW(api::AnyStm::make("tl3"), std::invalid_argument);
  EXPECT_THROW(api::AnyStm::make(""), std::invalid_argument);
}

TEST(AnyStm, Tl2NameResolves) {
  api::AnyStm stm = api::AnyStm::make("tl2");
  EXPECT_EQ(stm.name(), "tl2");
  auto x = stm.make_var(5L);
  stm.run(TxKind::kUpdate, [&](api::TxHandle& tx) { tx.write(x) += 1; });
  stm.run(TxKind::kReadOnly, [&](api::TxHandle& tx) { EXPECT_EQ(tx.read(x), 6); });
}

TEST(AnyStm, AliasNamesResolve) {
  api::AnyStm stm = api::AnyStm::make("lsa-no-readsets");
  EXPECT_EQ(stm.name(), "lsa-nors");
  EXPECT_FALSE(stm.config().track_readonly_readsets);
}

TEST(AnyStm, EveryVariantPassesTheErasedBattery) {
  const int rounds = test_env::stress_rounds(150);
  for (const std::string& name : api::AnyStm::variant_names()) {
    SCOPED_TRACE(name);
    CommonConfig cfg;
    cfg.max_threads = 8;
    api::AnyStm stm = api::AnyStm::make(name, cfg);
    auto counter = stm.make_var(0L);

    std::vector<std::thread> workers;
    for (int t = 0; t < 2; ++t) {
      workers.emplace_back([&] {
        for (int i = 0; i < rounds; ++i) {
          stm.run(TxKind::kUpdate,
                  [&](api::TxHandle& tx) { tx.write(counter) += 1; });
        }
      });
    }
    for (auto& w : workers) w.join();

    stm.run(TxKind::kLong, [&](api::TxHandle& tx) {
      EXPECT_EQ(tx.read(counter), 2L * rounds);
    });

    const api::RunResult failed = stm.run(
        TxKind::kUpdate, [&](api::TxHandle& tx) { tx.abort(); },
        /*max_attempts=*/2);
    EXPECT_FALSE(failed.committed);
    EXPECT_EQ(failed.attempts, 2u);
  }
}

}  // namespace
}  // namespace zstm
