// Functional tests for LSA-STM: snapshots, extension, validation,
// first-committer-wins, multi-versioning, contention management, the
// no-readsets read-only mode, and history recording.
//
// Deterministic interleavings are produced by attaching several ThreadCtx
// to one OS thread and stepping them explicitly — the runtime only cares
// about contexts, not OS threads.
//
// CTest label: `unit` (DESIGN.md §6).
#include <gtest/gtest.h>

#include <string>

#include "history/checkers.hpp"
#include "lsa/lsa.hpp"

namespace zstm::lsa {
namespace {

using util::Counter;

Config quiet_config() {
  Config cfg;
  cfg.max_threads = 8;
  return cfg;
}

TEST(Lsa, ReadInitialValue) {
  Runtime rt(quiet_config());
  auto x = rt.make_var<int>(41);
  auto th = rt.attach();
  int seen = 0;
  rt.run(*th, [&](Tx& tx) { seen = tx.read(x); });
  EXPECT_EQ(seen, 41);
}

TEST(Lsa, WriteBecomesVisibleAfterCommit) {
  Runtime rt(quiet_config());
  auto x = rt.make_var<int>(0);
  auto th = rt.attach();
  rt.run(*th, [&](Tx& tx) { tx.write(x, 7); });
  int seen = 0;
  rt.run(*th, [&](Tx& tx) { seen = tx.read(x); });
  EXPECT_EQ(seen, 7);
}

TEST(Lsa, ReadYourOwnWrite) {
  Runtime rt(quiet_config());
  auto x = rt.make_var<int>(1);
  auto th = rt.attach();
  rt.run(*th, [&](Tx& tx) {
    tx.write(x, 5);
    EXPECT_EQ(tx.read(x), 5);
    tx.write(x) += 1;
    EXPECT_EQ(tx.read(x), 6);
  });
  int seen = 0;
  rt.run(*th, [&](Tx& tx) { seen = tx.read(x); });
  EXPECT_EQ(seen, 6);
}

TEST(Lsa, RepeatedReadsReturnSameVersion) {
  Runtime rt(quiet_config());
  auto x = rt.make_var<int>(3);
  auto th = rt.attach();
  rt.run(*th, [&](Tx& tx) {
    const int a = tx.read(x);
    const int b = tx.read(x);
    EXPECT_EQ(a, b);
  });
}

TEST(Lsa, NonTrivialPayloadTypes) {
  Runtime rt(quiet_config());
  auto s = rt.make_var<std::string>("hello");
  auto v = rt.make_var<std::vector<int>>({1, 2, 3});
  auto th = rt.attach();
  rt.run(*th, [&](Tx& tx) {
    tx.write(s) += " world";
    tx.write(v).push_back(4);
  });
  rt.run(*th, [&](Tx& tx) {
    EXPECT_EQ(tx.read(s), "hello world");
    EXPECT_EQ(tx.read(v).size(), 4u);
  });
}

TEST(Lsa, AbortDiscardsTentativeWrites) {
  Runtime rt(quiet_config());
  auto x = rt.make_var<int>(10);
  auto th = rt.attach();
  bool first = true;
  rt.run(*th, [&](Tx& tx) {
    tx.write(x, 99);
    if (first) {
      first = false;
      tx.abort();  // retried; second attempt commits 99
    }
  });
  int seen = 0;
  rt.run(*th, [&](Tx& tx) { seen = tx.read(x); });
  EXPECT_EQ(seen, 99);
  EXPECT_GE(rt.stats()[Counter::kAborts], 1u);
}

TEST(Lsa, RunReportsAttempts) {
  Runtime rt(quiet_config());
  auto x = rt.make_var<int>(0);
  auto th = rt.attach();
  int tries = 0;
  const runtime::RunResult result = rt.run(*th, [&](Tx& tx) {
    tx.write(x, 1);
    if (++tries < 3) tx.abort();
  });
  EXPECT_EQ(result.attempts, 3u);
  EXPECT_TRUE(result.committed);
}

TEST(Lsa, FirstCommitterWinsOnReadWriteConflict) {
  // A reads x; B writes x and commits; A then tries to write y and commit —
  // A's validation fails (the rule that dooms long transactions, §1).
  Runtime rt(quiet_config());
  auto x = rt.make_var<int>(0);
  auto y = rt.make_var<int>(0);
  auto a = rt.attach();
  auto b = rt.attach();

  Tx& ta = a->begin();
  (void)ta.read(x);
  rt.run(*b, [&](Tx& tx) { tx.write(x, 1); });
  ta.write(y, 1);
  EXPECT_THROW(a->commit(), TxAborted);
  EXPECT_GE(rt.stats()[Counter::kValidationFails], 1u);
}

TEST(Lsa, ReadOnlySnapshotSurvivesConcurrentCommit) {
  // A reads y, B overwrites x and y, A then reads x: extension fails (y was
  // superseded) and A falls back to the version of x valid at its snapshot
  // — A sees a consistent pair (old x, old y) and commits read-only.
  Runtime rt(quiet_config());
  auto x = rt.make_var<int>(1);
  auto y = rt.make_var<int>(1);
  auto a = rt.attach();
  auto b = rt.attach();

  Tx& ta = a->begin();
  const int y0 = ta.read(y);
  rt.run(*b, [&](Tx& tx) {
    tx.write(x, 2);
    tx.write(y, 2);
  });
  const int x0 = ta.read(x);
  a->commit();  // read-only commit in the past
  EXPECT_EQ(x0 + y0, 2);  // both old — never a mixed snapshot
}

TEST(Lsa, UpdateTransactionCannotUseThePast) {
  // Same shape, but A writes before the stale read: reading into the past
  // is forbidden for update transactions, so A aborts immediately.
  Runtime rt(quiet_config());
  auto x = rt.make_var<int>(1);
  auto y = rt.make_var<int>(1);
  auto z = rt.make_var<int>(0);
  auto a = rt.attach();
  auto b = rt.attach();

  Tx& ta = a->begin();
  (void)ta.read(y);
  ta.write(z, 1);
  rt.run(*b, [&](Tx& tx) {
    tx.write(x, 2);
    tx.write(y, 2);
  });
  EXPECT_THROW(ta.read(x), TxAborted);
}

TEST(Lsa, SnapshotExtensionAllowsFreshRead) {
  // A begins before B's commit but has an empty read set: reading x after
  // B's commit extends the snapshot instead of aborting.
  Runtime rt(quiet_config());
  auto x = rt.make_var<int>(1);
  auto a = rt.attach();
  auto b = rt.attach();

  Tx& ta = a->begin();
  rt.run(*b, [&](Tx& tx) { tx.write(x, 2); });
  EXPECT_EQ(ta.read(x), 2);
  a->commit();
  EXPECT_GE(rt.stats()[Counter::kExtensions], 1u);
}

TEST(Lsa, WriteWriteConflictGoesToContentionManager) {
  Config cfg = quiet_config();
  cfg.cm_policy = cm::Policy::kAggressive;
  Runtime rt(cfg);
  auto x = rt.make_var<int>(0);
  auto a = rt.attach();
  auto b = rt.attach();

  Tx& ta = a->begin();
  ta.write(x, 1);
  // B's aggressive CM kills A and takes the object.
  rt.run(*b, [&](Tx& tx) { tx.write(x, 2); });
  EXPECT_THROW(a->commit(), TxAborted);  // A discovers the enemy abort
  EXPECT_GE(rt.stats()[Counter::kCmKills], 1u);

  int seen = 0;
  rt.run(*a, [&](Tx& tx) { seen = tx.read(x); });
  EXPECT_EQ(seen, 2);
}

TEST(Lsa, PoliteManagerWaitsOutShortOwnership) {
  Config cfg = quiet_config();
  cfg.cm_policy = cm::Policy::kPolite;
  Runtime rt(cfg);
  auto x = rt.make_var<int>(0);
  auto a = rt.attach();
  auto b = rt.attach();

  Tx& ta = a->begin();
  ta.write(x, 1);
  // B conflicts; Polite waits 8 episodes then kills A.
  rt.run(*b, [&](Tx& tx) { tx.write(x, 2); });
  EXPECT_GE(rt.stats()[Counter::kCmWaits], 1u);
  EXPECT_THROW(a->commit(), TxAborted);
}

TEST(Lsa, SuicidePolicyAbortsRequester) {
  Config cfg = quiet_config();
  cfg.cm_policy = cm::Policy::kSuicide;
  Runtime rt(cfg);
  auto x = rt.make_var<int>(0);
  auto a = rt.attach();
  auto b = rt.attach();

  Tx& ta = a->begin();
  ta.write(x, 1);
  Tx& tb = b->begin();
  EXPECT_THROW(tb.write(x, 2), TxAborted);  // B kills itself
  a->commit();
  int seen = 0;
  rt.run(*b, [&](Tx& tx) { seen = tx.read(x); });
  EXPECT_EQ(seen, 1);
}

TEST(Lsa, SingleVersionModeForcesRetryOfStaleReader) {
  // versions_kept = 1: the past is never available; the read-only reader
  // retries with a fresh snapshot instead of reading old versions.
  Config cfg = quiet_config();
  cfg.versions_kept = 1;
  Runtime rt(cfg);
  auto x = rt.make_var<int>(1);
  auto y = rt.make_var<int>(1);
  auto a = rt.attach();
  auto b = rt.attach();

  Tx& ta = a->begin();
  (void)ta.read(y);
  rt.run(*b, [&](Tx& tx) {
    tx.write(x, 2);
    tx.write(y, 2);
  });
  rt.run(*b, [&](Tx& tx) {
    tx.write(x, 3);
    tx.write(y, 3);
  });  // second commit prunes the version A would need
  EXPECT_THROW(ta.read(x), TxAborted);
}

TEST(Lsa, MultiVersionKeepsThePastAvailable) {
  Config cfg = quiet_config();
  cfg.versions_kept = 8;
  Runtime rt(cfg);
  auto x = rt.make_var<int>(1);
  auto y = rt.make_var<int>(1);
  auto a = rt.attach();
  auto b = rt.attach();

  Tx& ta = a->begin();
  const int y0 = ta.read(y);
  for (int i = 2; i <= 5; ++i) {
    rt.run(*b, [&](Tx& tx) {
      tx.write(x, i);
      tx.write(y, i);
    });
  }
  const int x0 = ta.read(x);  // four versions back
  a->commit();
  EXPECT_EQ(x0, 1);
  EXPECT_EQ(y0, 1);
}

TEST(Lsa, NoReadsetsModeTracksNothing) {
  Config cfg = quiet_config();
  cfg.track_readonly_readsets = false;
  Runtime rt(cfg);
  auto x = rt.make_var<int>(1);
  auto y = rt.make_var<int>(2);
  auto th = rt.attach();

  Tx& tx = th->begin(/*read_only=*/true);
  (void)tx.read(x);
  (void)tx.read(y);
  EXPECT_EQ(tx.read_set_size(), 0u);
  th->commit();
}

TEST(Lsa, NoReadsetsReaderStillSeesConsistentSnapshot) {
  Config cfg = quiet_config();
  cfg.track_readonly_readsets = false;
  Runtime rt(cfg);
  auto x = rt.make_var<int>(1);
  auto y = rt.make_var<int>(1);
  auto a = rt.attach();
  auto b = rt.attach();

  Tx& ta = a->begin(/*read_only=*/true);
  const int y0 = ta.read(y);
  rt.run(*b, [&](Tx& tx) {
    tx.write(x, 2);
    tx.write(y, 2);
  });
  const int x0 = ta.read(x);  // must come from the fixed snapshot
  a->commit();
  EXPECT_EQ(x0 + y0, 2);
}

TEST(Lsa, DeclaredReadOnlyThatWritesIsPromoted) {
  Config cfg = quiet_config();
  cfg.track_readonly_readsets = false;
  Runtime rt(cfg);
  auto x = rt.make_var<int>(0);
  auto th = rt.attach();
  const runtime::RunResult result = rt.run(
      *th, [&](Tx& tx) { tx.write(x, 1); }, /*read_only=*/true);
  EXPECT_EQ(result.attempts, 2u);  // one aborted fast-path attempt + one tracked
  int seen = 0;
  rt.run(*th, [&](Tx& tx) { seen = tx.read(x); });
  EXPECT_EQ(seen, 1);
}

TEST(Lsa, StatsCountCommitsAndOperations) {
  Runtime rt(quiet_config());
  auto x = rt.make_var<int>(0);
  auto th = rt.attach();
  for (int i = 0; i < 5; ++i) {
    rt.run(*th, [&](Tx& tx) { tx.write(x, tx.read(x) + 1); });
  }
  auto s = rt.stats();
  EXPECT_EQ(s[Counter::kCommits], 5u);
  EXPECT_EQ(s[Counter::kShortCommits], 5u);
  EXPECT_GE(s[Counter::kReads], 5u);
  EXPECT_GE(s[Counter::kWrites], 5u);
  rt.reset_stats();
  EXPECT_EQ(rt.stats()[Counter::kCommits], 0u);
}

TEST(Lsa, HistoryRecordsCommittedAndAborted) {
  Config cfg = quiet_config();
  cfg.record_history = true;
  Runtime rt(cfg);
  auto x = rt.make_var<int>(0);
  auto th = rt.attach();
  bool first = true;
  rt.run(*th, [&](Tx& tx) {
    tx.write(x, 1);
    if (first) {
      first = false;
      tx.abort();
    }
  });
  auto h = rt.collect_history();
  EXPECT_EQ(h.txs.size(), 2u);
  EXPECT_EQ(h.committed_count(), 1u);
  bool found_write = false;
  for (const auto& t : h.txs) {
    if (t.committed) {
      ASSERT_EQ(t.writes.size(), 1u);
      EXPECT_EQ(t.writes[0].parent, 0u);
      found_write = true;
    }
  }
  EXPECT_TRUE(found_write);
}

TEST(Lsa, HistoryOfSequentialRunIsStrictlySerializable) {
  Config cfg = quiet_config();
  cfg.record_history = true;
  Runtime rt(cfg);
  auto x = rt.make_var<int>(0);
  auto y = rt.make_var<int>(0);
  auto th = rt.attach();
  for (int i = 0; i < 20; ++i) {
    rt.run(*th, [&](Tx& tx) {
      tx.write(x, tx.read(x) + 1);
      tx.write(y, tx.read(y) + 1);
    });
  }
  auto res = history::check_strictly_serializable(rt.collect_history());
  EXPECT_TRUE(res) << res.reason;
}

TEST(Lsa, SyncClockTimeBaseCommitsCorrectly) {
  Config cfg = quiet_config();
  cfg.time_base = timebase::TimeBaseKind::kSyncClock;
  cfg.clock_deviation = std::chrono::nanoseconds(2000);
  Runtime rt(cfg);
  auto x = rt.make_var<int>(0);
  auto th = rt.attach();
  for (int i = 0; i < 50; ++i) {
    rt.run(*th, [&](Tx& tx) { tx.write(x, tx.read(x) + 1); });
  }
  int seen = 0;
  rt.run(*th, [&](Tx& tx) { seen = tx.read(x); });
  EXPECT_EQ(seen, 50);
}

TEST(Lsa, ManyObjectsIndependentUpdates) {
  Runtime rt(quiet_config());
  std::vector<Var<int>> vars;
  for (int i = 0; i < 100; ++i) vars.push_back(rt.make_var<int>(i));
  auto th = rt.attach();
  rt.run(*th, [&](Tx& tx) {
    for (auto& v : vars) tx.write(v) *= 2;
  });
  rt.run(*th, [&](Tx& tx) {
    for (int i = 0; i < 100; ++i) EXPECT_EQ(tx.read(vars[(std::size_t)i]), 2 * i);
  });
}

TEST(Lsa, LeakedAttemptIsAbortedOnNextBegin) {
  Runtime rt(quiet_config());
  auto x = rt.make_var<int>(0);
  auto th = rt.attach();
  Tx& t1 = th->begin();
  t1.write(x, 42);  // never committed
  Tx& t2 = th->begin();  // implicitly aborts the leaked attempt
  EXPECT_EQ(t2.read(x), 0);
  th->commit();
}

TEST(Lsa, ContextDestructionAbortsOpenAttempt) {
  Runtime rt(quiet_config());
  auto x = rt.make_var<int>(0);
  {
    auto th = rt.attach();
    Tx& t = th->begin();
    t.write(x, 9);
  }  // context destroyed mid-transaction
  auto th2 = rt.attach();
  int seen = -1;
  rt.run(*th2, [&](Tx& tx) { seen = tx.read(x); });
  EXPECT_EQ(seen, 0);
}

}  // namespace
}  // namespace zstm::lsa
