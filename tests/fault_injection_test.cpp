// The failpoint registry (src/fault/, DESIGN.md §11): site registration and
// allowed-effect masks, deterministic triggering under a fixed seed, the
// zero-cost disabled path, OOM injection surfacing as a clean abort, effect
// delivery through real runtimes, and the façade's serial-irrevocable
// fallback committing every transaction under 100% abort injection.
//
// The registry is process-global, so every test arms inside a
// disarm_all() bracket.
//
// CTest label: `fault` (DESIGN.md §11).
#include <gtest/gtest.h>

#include <atomic>
#include <new>
#include <thread>
#include <vector>

#include "api/stm_api.hpp"
#include "fault/failpoint.hpp"
#include "lsa/lsa.hpp"
#include "sstm/sstm.hpp"

namespace zstm {
namespace {

using fault::Effect;
using fault::Site;
using fault::effect_bit;
using fault::registry;

/// RAII bracket: every test starts and ends with a clean registry.
struct Clean {
  Clean() { registry().disarm_all(); }
  ~Clean() { registry().disarm_all(); }
};

lsa::Config small_lsa() { return lsa::Config{.max_threads = 4}; }

// --- registration and masks -------------------------------------------------

TEST(FaultRegistry, ArmDisarmRoundTrip) {
  Clean c;
  EXPECT_FALSE(registry().armed(Site::kLsaAcquire));
  EXPECT_TRUE(registry().arm(Site::kLsaAcquire, 0.5));
  EXPECT_TRUE(registry().armed(Site::kLsaAcquire));
  registry().disarm(Site::kLsaAcquire);
  EXPECT_FALSE(registry().armed(Site::kLsaAcquire));
}

TEST(FaultRegistry, AllowedMasksRejectCorruptingEffects) {
  Clean c;
  // Unwinding out of the middle of settle/install would leak the caller's
  // tentative version: kAbort/kExitThread are not armable there.
  EXPECT_FALSE(registry().arm(Site::kStoreSettleCas, 1.0, 0, Effect::kAbort));
  EXPECT_FALSE(
      registry().arm(Site::kStoreInstallCas, 1.0, 0, Effect::kExitThread));
  EXPECT_TRUE(registry().arm(Site::kStoreSettleCas, 1.0, 0, Effect::kCasFail));
  // Delay-only sites take no state-changing effect.
  EXPECT_FALSE(registry().arm(Site::kEbrRetire, 1.0, 0, Effect::kAbort));
  EXPECT_TRUE(registry().arm(Site::kEbrRetire, 1.0, 0, Effect::kDelay));
  // Probability outside [0,1] is rejected.
  EXPECT_FALSE(registry().arm(Site::kLsaAcquire, 1.5));
  EXPECT_FALSE(registry().arm(Site::kLsaAcquire, -0.1));
  registry().disarm_all();
  for (int i = 0; i < static_cast<int>(Site::kCount); ++i) {
    EXPECT_FALSE(registry().armed(static_cast<Site>(i)));
  }
}

TEST(FaultRegistry, SpecParsing) {
  Clean c;
  EXPECT_TRUE(registry().load_spec("lsa.acquire:0.05"));
  EXPECT_TRUE(registry().armed(Site::kLsaAcquire));
  EXPECT_TRUE(registry().load_spec("tl2.stripe_lock:0.2:100:casfail"));
  EXPECT_TRUE(registry().armed(Site::kTl2StripeLock));
  EXPECT_FALSE(registry().load_spec("no.such.site:0.5"));
  EXPECT_FALSE(registry().load_spec("lsa.acquire:banana"));
  // A disallowed effect in a spec is a parse failure, not a silent skip.
  EXPECT_FALSE(registry().load_spec("store.settle_cas:1.0:0:abort"));
}

// --- disabled path ----------------------------------------------------------

TEST(FaultRegistry, FaultDisabledCostsNothing) {
  Clean c;
  lsa::Runtime rt(small_lsa());
  auto x = rt.make_var<long>(0);
  auto th = rt.attach();
  for (int i = 0; i < 200; ++i) {
    rt.run(*th, [&](lsa::Tx& tx) { tx.write(x, tx.read(x) + 1); });
  }
  // Nothing armed: poke() returned on the fast path every time — no site
  // state was touched, no hit was counted anywhere.
  for (int i = 0; i < static_cast<int>(Site::kCount); ++i) {
    EXPECT_EQ(registry().hits(static_cast<Site>(i)), 0u);
  }
  EXPECT_EQ(registry().triggers_total(), 0u);
}

// --- determinism ------------------------------------------------------------

TEST(FaultRegistry, FixedSeedReplaysExactly) {
  Clean c;
  auto run_workload = [] {
    lsa::Runtime rt(small_lsa());
    auto x = rt.make_var<long>(0);
    auto th = rt.attach();
    for (int i = 0; i < 200; ++i) {
      rt.run(*th, [&](lsa::Tx& tx) { tx.write(x, tx.read(x) + 1); });
    }
  };

  registry().set_seed(42);
  ASSERT_TRUE(registry().arm(Site::kLsaAcquire, 0.5));
  run_workload();
  const std::uint64_t hits1 = registry().hits(Site::kLsaAcquire);
  const std::uint64_t trig1 = registry().triggers(Site::kLsaAcquire);
  // prob 0.5 over >= 200 single-threaded hits: both outcomes occur.
  EXPECT_GT(trig1, 0u);
  EXPECT_LT(trig1, hits1);

  // Same seed, same single-threaded workload: identical replay.
  registry().disarm_all();
  registry().set_seed(42);
  ASSERT_TRUE(registry().arm(Site::kLsaAcquire, 0.5));
  run_workload();
  EXPECT_EQ(registry().hits(Site::kLsaAcquire), hits1);
  EXPECT_EQ(registry().triggers(Site::kLsaAcquire), trig1);
}

TEST(FaultRegistry, AfterSkipsTheFirstHits) {
  Clean c;
  registry().set_seed(7);
  ASSERT_TRUE(registry().arm(Site::kLsaAcquire, 1.0, /*after=*/50));
  lsa::Runtime rt(small_lsa());
  auto x = rt.make_var<long>(0);
  auto th = rt.attach();
  // The first 50 pokes pass untriggered, so 50 transactions commit on
  // their first attempt; the 51st poke aborts (and keeps aborting until
  // the runtime's retry loop... which would never end — so only run 50).
  for (int i = 0; i < 50; ++i) {
    const runtime::RunResult r =
        rt.run(*th, [&](lsa::Tx& tx) { tx.write(x, tx.read(x) + 1); });
    EXPECT_EQ(r.attempts, 1u);
  }
  EXPECT_EQ(registry().triggers(Site::kLsaAcquire), 0u);
  rt.run(*th, [&](lsa::Tx& tx) { EXPECT_EQ(tx.read(x), 50); });
}

// --- effect delivery through real runtimes ----------------------------------

TEST(FaultEffects, AbortInjectionAbortsAndRecovers) {
  Clean c;
  registry().set_seed(3);
  ASSERT_TRUE(registry().arm(Site::kLsaAcquire, 0.5));
  lsa::Runtime rt(small_lsa());
  auto x = rt.make_var<long>(0);
  auto th = rt.attach();
  std::uint32_t total_attempts = 0;
  for (int i = 0; i < 100; ++i) {
    const runtime::RunResult r =
        rt.run(*th, [&](lsa::Tx& tx) { tx.write(x, tx.read(x) + 1); });
    total_attempts += r.attempts;
  }
  // Injected aborts forced retries, and every retry still converged.
  EXPECT_GT(total_attempts, 100u);
  EXPECT_GT(registry().triggers(Site::kLsaAcquire), 0u);
  rt.run(*th, [&](lsa::Tx& tx) { EXPECT_EQ(tx.read(x), 100); });
}

TEST(FaultEffects, SpuriousCasFailureIsInvisibleToSemantics) {
  Clean c;
  registry().set_seed(11);
  // 0.3, not 1.0: a CAS that spuriously fails every time livelocks the
  // settle loop by construction (that is why arm_all_abort excludes
  // CasFail-only sites).
  ASSERT_TRUE(registry().arm(Site::kStoreSettleCas, 0.3));
  ASSERT_TRUE(registry().arm(Site::kStoreInstallCas, 0.3));
  lsa::Runtime rt(small_lsa());
  auto x = rt.make_var<long>(0);
  auto th = rt.attach();
  for (int i = 0; i < 200; ++i) {
    rt.run(*th, [&](lsa::Tx& tx) { tx.write(x, tx.read(x) + 1); });
  }
  EXPECT_GT(registry().triggers_total(), 0u);
  rt.run(*th, [&](lsa::Tx& tx) { EXPECT_EQ(tx.read(x), 200); });
}

TEST(FaultEffects, OomInjectionSurfacesAsCleanBadAlloc) {
  Clean c;
  lsa::Runtime rt(small_lsa());
  auto x = rt.make_var<long>(5);
  auto th = rt.attach();
  ASSERT_TRUE(registry().arm(Site::kPoolAlloc, 1.0, 0, Effect::kOom));
  // Allocation failure propagates as std::bad_alloc with the attempt fully
  // unwound — nothing owned, nothing leaked.
  EXPECT_THROW(rt.run(*th, [&](lsa::Tx& tx) { tx.write(x, 6L); }),
               std::bad_alloc);
  registry().disarm(Site::kPoolAlloc);
  // The runtime is unharmed: the old value is intact and writable.
  rt.run(*th, [&](lsa::Tx& tx) {
    EXPECT_EQ(tx.read(x), 5);
    tx.write(x, 7L);
  });
  rt.run(*th, [&](lsa::Tx& tx) { EXPECT_EQ(tx.read(x), 7); });
}

TEST(FaultEffects, ThreadExitMidTransactionLeavesRuntimeLive) {
  Clean c;
  registry().set_seed(5);
  lsa::Runtime rt(small_lsa());
  auto x = rt.make_var<long>(1);

  ASSERT_TRUE(registry().arm(Site::kLsaAcquire, 1.0, 0, Effect::kExitThread));
  std::atomic<bool> died{false};
  std::thread victim([&] {
    auto th = rt.attach();
    try {
      rt.run(*th, [&](lsa::Tx& tx) { tx.write(x, 99L); });
    } catch (const fault::ThreadExit&) {
      died.store(true);
    }
  });
  victim.join();
  EXPECT_TRUE(died.load());
  registry().disarm_all();

  // The dead thread's unwind released everything: a fresh thread writes.
  auto th = rt.attach();
  rt.run(*th, [&](lsa::Tx& tx) {
    EXPECT_EQ(tx.read(x), 1);
    tx.write(x, 2L);
  });
  rt.run(*th, [&](lsa::Tx& tx) { EXPECT_EQ(tx.read(x), 2); });
}

TEST(FaultEffects, DelayInjectionOnlyWidensWindows) {
  Clean c;
  ASSERT_TRUE(registry().arm(Site::kEbrRetire, 1.0, 0, Effect::kDelay));
  lsa::Runtime rt(small_lsa());
  auto x = rt.make_var<long>(0);
  auto th = rt.attach();
  for (int i = 0; i < 50; ++i) {
    rt.run(*th, [&](lsa::Tx& tx) { tx.write(x, tx.read(x) + 1); });
  }
  // Every settle retires the superseded locator, so the site was hot; the
  // delay changed timing only.
  EXPECT_GT(registry().hits(Site::kEbrRetire), 0u);
  rt.run(*th, [&](lsa::Tx& tx) { EXPECT_EQ(tx.read(x), 50); });
}

// --- the façade's serial-irrevocable fallback -------------------------------

template <typename S>
class FaultSerialFallback : public ::testing::Test {};

using Variants = ::testing::Types<api::LsaStm, api::CsVcStm, api::CsRevStm,
                                  api::SStm, api::ZStm, api::Tl2Stm>;
TYPED_TEST_SUITE(FaultSerialFallback, Variants);

TYPED_TEST(FaultSerialFallback, EveryTransactionCommitsUnder100PctAborts) {
  Clean c;
  // Arm every abort-capable protocol site at probability 1: no optimistic
  // attempt can ever succeed. The façade's final rung (serial-irrevocable
  // mode, injection suppressed) must still commit every transaction.
  registry().arm_all_abort();

  api::CommonConfig cfg;
  cfg.max_threads = 4;
  cfg.retry.serial_after = 4;
  TypeParam stm(cfg);
  auto x = stm.make_var(0L);

  for (int i = 0; i < 20; ++i) {
    const api::RunResult r = stm.run(api::TxKind::kUpdate, [&](auto& tx) {
      tx.write(x) += 1;
    });
    EXPECT_TRUE(r.committed);
    EXPECT_GT(r.attempts, cfg.retry.serial_after);  // escalation was needed
  }
  registry().disarm_all();
  stm.run(api::TxKind::kReadOnly, [&](auto& tx) { EXPECT_EQ(tx.read(x), 20); });

  // The starvation watchdog saw the escalations.
  const util::ProgressTracker::Snapshot snap = stm.progress();
  EXPECT_GE(snap.serial_entries, 20u);
  EXPECT_GT(snap.max_attempts, cfg.retry.serial_after);
}

TYPED_TEST(FaultSerialFallback, ExplicitBudgetStillWinsWithoutSerialMode) {
  Clean c;
  registry().arm_all_abort();
  api::CommonConfig cfg;
  cfg.max_threads = 4;
  cfg.retry.serial_after = 0;  // serial rung disabled
  TypeParam stm(cfg);
  auto x = stm.make_var(0L);
  const api::RunResult r = stm.run(
      api::TxKind::kUpdate, [&](auto& tx) { tx.write(x) += 1; },
      /*max_attempts=*/5);
  EXPECT_FALSE(r.committed);
  EXPECT_EQ(r.attempts, 5u);
  registry().disarm_all();
  stm.run(api::TxKind::kReadOnly, [&](auto& tx) { EXPECT_EQ(tx.read(x), 0); });
}

// --- trimming under injection (cross-feature) -------------------------------

TEST(FaultEffects, SstmTrimSettlesInjectionStrandedLocators) {
  // A settle-CAS failpoint can leave a locator pointing at a finished
  // writer; trim_descriptors must settle it before freeing descriptors
  // (otherwise the store would read freed memory at teardown).
  Clean c;
  registry().set_seed(9);
  ASSERT_TRUE(registry().arm(Site::kStoreSettleCas, 0.7));
  sstm::Config cfg;
  cfg.max_threads = 4;
  sstm::Runtime rt(cfg);
  auto x = rt.make_var<long>(0);
  {
    auto th = rt.attach();
    for (int i = 0; i < 100; ++i) {
      rt.run(*th, [&](sstm::Tx& tx) { tx.write(x, tx.read(x) + 1); });
    }
  }
  registry().disarm_all();
  EXPECT_EQ(rt.trim_descriptors(), 100u);
  auto th = rt.attach();
  rt.run(*th, [&](sstm::Tx& tx) { EXPECT_EQ(tx.read(x), 100); });
}

}  // namespace
}  // namespace zstm
