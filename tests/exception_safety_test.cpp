// Exception safety of the transaction retry loops: a foreign (non-retry)
// exception escaping a transaction body must abort the attempt and release
// every ownership it holds — locators, stripe redo buffers, zone claims,
// epoch pins — before propagating. A leaked ownership would deadlock or
// livelock every later writer of the object, so each battery round proves
// the runtime still commits promptly after the throw.
//
// Covers both layers that own a retry loop: the raw Runtime::run loops of
// all five native runtimes (plus Z-STM's two transaction classes) and the
// zstm::api façade attempt path, TYPED_TEST'd across the variants with
// throws at randomized operation points.
//
// CTest label: `unit` (DESIGN.md §6).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "api/stm_api.hpp"
#include "cs/cs.hpp"
#include "lsa/lsa.hpp"
#include "sstm/sstm.hpp"
#include "tl2/tl2.hpp"
#include "util/rng.hpp"
#include "zstm/zstm.hpp"

namespace zstm {
namespace {

using api::CommonConfig;
using api::TxKind;

/// The foreign exception: deliberately unrelated to any runtime's abort
/// token so only the catch(...) unwind path can handle it.
struct Boom {};

// --- façade battery ---------------------------------------------------------

template <typename S>
class ApiExceptionSafety : public ::testing::Test {
 public:
  static CommonConfig config() {
    CommonConfig cfg;
    cfg.max_threads = 8;
    return cfg;
  }
};

using Variants = ::testing::Types<api::LsaStm, api::CsVcStm, api::CsRevStm,
                                  api::SStm, api::ZStm, api::Tl2Stm>;
TYPED_TEST_SUITE(ApiExceptionSafety, Variants);

TYPED_TEST(ApiExceptionSafety, ThrowAtRandomPointReleasesOwnership) {
  TypeParam stm(this->config());
  auto x = stm.make_var(0L);
  auto y = stm.make_var(0L);

  util::Xorshift rng(0xb00f1a6ULL);
  long expected = 0;
  constexpr TxKind kKinds[] = {TxKind::kUpdate, TxKind::kLongUpdate};
  for (int trial = 0; trial < 60; ++trial) {
    const TxKind kind = kKinds[rng.next_below(2)];
    // Throw after 0..3 of the 4 ops: exercises unwind with no state, with
    // reads only, with one locator/redo held, and with both held.
    const std::uint64_t boom_at = rng.next_below(4);
    EXPECT_THROW(stm.run(kind,
                         [&](auto& tx) {
                           std::uint64_t op = 0;
                           if (op++ == boom_at) throw Boom{};
                           (void)tx.read(x);
                           if (op++ == boom_at) throw Boom{};
                           tx.write(x) += 1;
                           if (op++ == boom_at) throw Boom{};
                           tx.write(y) += 1;
                           throw Boom{};
                         }),
                 Boom);
    // The aborted attempt's writes must be invisible, and the runtime must
    // still commit promptly — a leaked locator/stripe would starve this.
    api::RunResult r = stm.run(
        TxKind::kUpdate,
        [&](auto& tx) {
          tx.write(x) += 1;
          tx.write(y) += 1;
        },
        /*max_attempts=*/10000);
    ASSERT_TRUE(r.committed);
    ++expected;
    stm.run(TxKind::kReadOnly, [&](auto& tx) {
      EXPECT_EQ(tx.read(x), expected);
      EXPECT_EQ(tx.read(y), expected);
    });
  }
}

TYPED_TEST(ApiExceptionSafety, ConcurrentThrowersDontWedgeTheRuntime) {
  constexpr int kThreads = 4;
  constexpr int kRounds = 150;
  TypeParam stm(this->config());
  auto counter = stm.make_var(0L);

  std::atomic<long> committed{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      util::Xorshift rng(0xdeadULL + t);
      for (int i = 0; i < kRounds; ++i) {
        const bool blow_up = rng.next_below(3) == 0;
        try {
          stm.run(TxKind::kUpdate, [&](auto& tx) {
            tx.write(counter) += 1;
            if (blow_up) throw Boom{};
          });
          committed.fetch_add(1, std::memory_order_relaxed);
        } catch (const Boom&) {
        }
      }
    });
  }
  for (auto& w : workers) w.join();

  stm.run(TxKind::kReadOnly, [&](auto& tx) {
    EXPECT_EQ(tx.read(counter), committed.load());
  });
}

// --- raw runtime loops ------------------------------------------------------
//
// The façade never calls the native Runtime::run loops, so their catch(...)
// unwind is exercised separately: throw with one locator (or redo buffer)
// held, then prove a plain transaction still commits and sees the old value.

template <typename Rt, typename Ctx, typename RunFn>
void raw_round_trip(Rt& rt, Ctx& ctx, RunFn&& run) {
  auto x = rt.template make_var<long>(5);
  EXPECT_THROW(run(ctx,
                   [&](auto& tx) {
                     tx.write(x, tx.read(x) + 100);
                     throw Boom{};
                   }),
               Boom);
  run(ctx, [&](auto& tx) {
    EXPECT_EQ(tx.read(x), 5);
    tx.write(x, 6L);
  });
  run(ctx, [&](auto& tx) { EXPECT_EQ(tx.read(x), 6); });
}

TEST(RawExceptionSafety, Lsa) {
  lsa::Runtime rt(lsa::Config{.max_threads = 4});
  auto th = rt.attach();
  raw_round_trip(rt, *th, [&](auto& ctx, auto&& body) {
    return rt.run(ctx, std::forward<decltype(body)>(body));
  });
}

TEST(RawExceptionSafety, Cs) {
  cs::Config cfg;
  cfg.max_threads = 4;
  auto rt = cs::make_vc_runtime(cfg);
  auto th = rt->attach();
  raw_round_trip(*rt, *th, [&](auto& ctx, auto&& body) {
    return rt->run(ctx, std::forward<decltype(body)>(body));
  });
}

TEST(RawExceptionSafety, Sstm) {
  sstm::Config cfg;
  cfg.max_threads = 4;
  sstm::Runtime rt(cfg);
  auto th = rt.attach();
  raw_round_trip(rt, *th, [&](auto& ctx, auto&& body) {
    return rt.run(ctx, std::forward<decltype(body)>(body));
  });
  // The thrown attempt's descriptor reached a final status (aborted), so a
  // quiescent trim can reclaim it — proves the unwind didn't strand an
  // active descriptor either.
  th.reset();
  EXPECT_EQ(rt.trim_descriptors(), 3u);
}

TEST(RawExceptionSafety, ZlShort) {
  zl::Runtime rt(zl::Config{.lsa = {.max_threads = 4}});
  auto th = rt.attach();
  raw_round_trip(rt, *th, [&](auto& ctx, auto&& body) {
    return rt.run_short(ctx, std::forward<decltype(body)>(body));
  });
}

TEST(RawExceptionSafety, ZlLong) {
  zl::Runtime rt(zl::Config{.lsa = {.max_threads = 4}});
  auto th = rt.attach();
  raw_round_trip(rt, *th, [&](auto& ctx, auto&& body) {
    return rt.run_long(ctx, std::forward<decltype(body)>(body));
  });
}

TEST(RawExceptionSafety, ZlLongThenShortCrossClass) {
  // A long transaction dies mid-flight with a zone claimed and a locator
  // installed; short transactions must still get through the zone.
  zl::Runtime rt(zl::Config{.lsa = {.max_threads = 4}});
  auto th = rt.attach();
  auto x = rt.make_var<long>(1);
  EXPECT_THROW(rt.run_long(*th,
                           [&](zl::LongTx& tx) {
                             tx.write(x, 2L);
                             throw Boom{};
                           }),
               Boom);
  rt.run_short(*th, [&](zl::ShortTx& tx) {
    EXPECT_EQ(tx.read(x), 1);
    tx.write(x, 3L);
  });
  rt.run_short(*th, [&](zl::ShortTx& tx) { EXPECT_EQ(tx.read(x), 3); });
}

TEST(RawExceptionSafety, ZlDeadLongRetiresItsZone) {
  // Regression: a long transaction that dies after claiming a zone must
  // retire it (CT bump in abort_long_attempt). A short transaction that
  // first opens an *unclaimed* object (adopting an older zone) and then
  // crosses into the dead zone would otherwise livelock — the crossing is
  // only allowed once both zones are <= CT, and CT never advances past a
  // zone whose long transaction aborted.
  zl::Runtime rt(zl::Config{.lsa = {.max_threads = 4}});
  auto th = rt.attach();
  auto x = rt.make_var<long>(1);
  auto y = rt.make_var<long>(10);
  EXPECT_THROW(rt.run_long(*th,
                           [&](zl::LongTx& tx) {
                             tx.write(x, 2L);  // claims x's zone
                             throw Boom{};
                           }),
               Boom);
  // First open y (never zone-claimed), then cross into x's dead zone.
  rt.run_short(*th, [&](zl::ShortTx& tx) {
    EXPECT_EQ(tx.read(y), 10);
    EXPECT_EQ(tx.read(x), 1);
    tx.write(x, 3L);
  });
  rt.run_short(*th, [&](zl::ShortTx& tx) { EXPECT_EQ(tx.read(x), 3); });
}

TEST(RawExceptionSafety, Tl2) {
  tl2::Runtime rt(tl2::Config{.max_threads = 4});
  auto th = rt.attach();
  auto x = rt.make_var<long>(5);
  EXPECT_THROW(rt.run(*th,
                      [&](tl2::Tx& tx) {
                        tx.write(x, tx.read(x) + 100);
                        throw Boom{};
                      }),
               Boom);
  rt.run(*th, [&](tl2::Tx& tx) {
    EXPECT_EQ(tx.read(x), 5);
    tx.write(x, 6L);
  });
  rt.run(*th, [&](tl2::Tx& tx) { EXPECT_EQ(tx.read(x), 6); });
}

}  // namespace
}  // namespace zstm
