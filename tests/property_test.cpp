// Cross-backend property tests: the same workload invariants must hold on
// every STM in the library, each under its own consistency criterion.
//
//  * No lost updates: concurrent blind increments sum exactly.
//  * Money conservation: transfers never create or destroy value.
//  * Atomicity of multi-object writes: paired writes are seen together.
//
// Each property is expressed once and driven through per-backend adapters
// (the runtimes deliberately share an API shape).
//
// CTest label: `stress` — randomized multi-threaded rounds; run under TSan
// in CI (DESIGN.md §6).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/stm.hpp"
#include "stress_env.hpp"
#include "util/rng.hpp"

namespace zstm {
namespace {

// Adapter: uniform run/attach/make_var over the different runtimes.
struct LsaBackend {
  lsa::Runtime rt{lsa::Config{.max_threads = 16}};
  template <typename T>
  auto make_var(T v) {
    return rt.make_var<T>(std::move(v));
  }
  auto attach() { return rt.attach(); }
  template <typename Ctx, typename F>
  void run(Ctx& ctx, F&& f) {
    rt.run(ctx, std::forward<F>(f));
  }
};

struct CsVcBackend {
  std::unique_ptr<cs::VcRuntime> rt =
      cs::make_vc_runtime(cs::Config{.max_threads = 16});
  template <typename T>
  auto make_var(T v) {
    return rt->template make_var<T>(std::move(v));
  }
  auto attach() { return rt->attach(); }
  template <typename Ctx, typename F>
  void run(Ctx& ctx, F&& f) {
    rt->run(ctx, std::forward<F>(f));
  }
};

struct CsRevBackend {
  std::unique_ptr<cs::RevRuntime> rt =
      cs::make_rev_runtime(2, cs::Config{.max_threads = 16});
  template <typename T>
  auto make_var(T v) {
    return rt->template make_var<T>(std::move(v));
  }
  auto attach() { return rt->attach(); }
  template <typename Ctx, typename F>
  void run(Ctx& ctx, F&& f) {
    rt->run(ctx, std::forward<F>(f));
  }
};

struct SstmBackend {
  sstm::Runtime rt{sstm::Config{.max_threads = 16}};
  template <typename T>
  auto make_var(T v) {
    return rt.make_var<T>(std::move(v));
  }
  auto attach() { return rt.attach(); }
  template <typename Ctx, typename F>
  void run(Ctx& ctx, F&& f) {
    rt.run(ctx, std::forward<F>(f));
  }
};

struct ZBackend {
  zl::Runtime rt{[] {
    zl::Config c;
    c.lsa.max_threads = 16;
    return c;
  }()};
  template <typename T>
  auto make_var(T v) {
    return rt.make_var<T>(std::move(v));
  }
  auto attach() { return rt.attach(); }
  template <typename Ctx, typename F>
  void run(Ctx& ctx, F&& f) {
    rt.run_short(ctx, std::forward<F>(f));
  }
};

template <typename Backend>
class BackendProperty : public ::testing::Test {};

using Backends =
    ::testing::Types<LsaBackend, CsVcBackend, CsRevBackend, SstmBackend,
                     ZBackend>;

class BackendNames {
 public:
  template <typename T>
  static std::string GetName(int) {
    if constexpr (std::is_same_v<T, LsaBackend>) return "Lsa";
    if constexpr (std::is_same_v<T, CsVcBackend>) return "CsVc";
    if constexpr (std::is_same_v<T, CsRevBackend>) return "CsRev2";
    if constexpr (std::is_same_v<T, SstmBackend>) return "Sstm";
    if constexpr (std::is_same_v<T, ZBackend>) return "ZShort";
  }
};

TYPED_TEST_SUITE(BackendProperty, Backends, BackendNames);

TYPED_TEST(BackendProperty, NoLostIncrements) {
  TypeParam backend;
  auto counter = backend.template make_var<long>(0);
  constexpr int kThreads = 4;
  const int kIncrements = test_env::stress_rounds(1000);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      auto th = backend.attach();
      for (int i = 0; i < kIncrements; ++i) {
        backend.run(*th, [&](auto& tx) { tx.write(counter) += 1; });
      }
    });
  }
  for (auto& w : workers) w.join();
  auto th = backend.attach();
  long final_value = 0;
  backend.run(*th, [&](auto& tx) { final_value = tx.read(counter); });
  EXPECT_EQ(final_value, kThreads * kIncrements);
}

TYPED_TEST(BackendProperty, MoneyConservation) {
  TypeParam backend;
  constexpr int kAccounts = 10;
  constexpr long kInitial = 25;
  using VarT = decltype(backend.template make_var<long>(0));
  std::vector<VarT> accounts;
  for (int i = 0; i < kAccounts; ++i) {
    accounts.push_back(backend.template make_var<long>(kInitial));
  }
  constexpr int kThreads = 3;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      auto th = backend.attach();
      util::Xorshift rng(static_cast<std::uint64_t>(t) + 7);
      for (int i = 0, n = test_env::stress_rounds(800); i < n; ++i) {
        const auto from = rng.next_below(kAccounts);
        auto to = rng.next_below(kAccounts);
        if (to == from) to = (to + 1) % kAccounts;
        backend.run(*th, [&](auto& tx) {
          const long amount = 1 + static_cast<long>(rng.next_below(4));
          tx.write(accounts[from]) -= amount;
          tx.write(accounts[to]) += amount;
        });
      }
    });
  }
  for (auto& w : workers) w.join();
  auto th = backend.attach();
  long total = 0;
  backend.run(*th, [&](auto& tx) {
    total = 0;
    for (auto& a : accounts) total += tx.read(a);
  });
  EXPECT_EQ(total, kAccounts * kInitial);
}

TYPED_TEST(BackendProperty, PairedWritesAreAtomic) {
  // Writers keep a == b at all times; any reader observing a != b caught a
  // torn multi-object commit.
  TypeParam backend;
  auto a = backend.template make_var<long>(0);
  auto b = backend.template make_var<long>(0);
  std::atomic<bool> stop{false};
  std::atomic<long> violations{0};

  std::vector<std::thread> workers;
  for (int t = 0; t < 2; ++t) {
    workers.emplace_back([&, t] {
      auto th = backend.attach();
      util::Xorshift rng(static_cast<std::uint64_t>(t) + 19);
      for (int i = 0, n = test_env::stress_rounds(1500); i < n; ++i) {
        backend.run(*th, [&](auto& tx) {
          const long v = static_cast<long>(rng.next_below(1000));
          tx.write(a, v);
          tx.write(b, v);
        });
      }
      stop.store(true, std::memory_order_release);
    });
  }
  workers.emplace_back([&] {
    auto th = backend.attach();
    while (!stop.load(std::memory_order_acquire)) {
      // CS-/S-STM validate only at commit; judge the committed attempt.
      long va = 0, vb = 0;
      backend.run(*th, [&](auto& tx) {
        va = tx.read(a);
        vb = tx.read(b);
      });
      if (va != vb) violations.fetch_add(1);
    }
  });
  for (auto& w : workers) w.join();
  EXPECT_EQ(violations.load(), 0);
}

}  // namespace
}  // namespace zstm
