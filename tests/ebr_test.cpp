// Tests for epoch-based reclamation: pinning, deferral, advancement, and a
// multi-threaded use-after-free hunt.
//
// CTest label: `unit` (DESIGN.md §6).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "util/ebr.hpp"

namespace zstm::util {
namespace {

struct Tracked {
  explicit Tracked(std::atomic<int>& counter) : alive(&counter) {
    alive->fetch_add(1);
  }
  ~Tracked() { alive->fetch_sub(1); }
  std::atomic<int>* alive;
  int payload = 42;
};

TEST(Ebr, PinUnpinTogglesState) {
  ThreadRegistry reg(4);
  EpochManager ebr(reg);
  auto r = reg.attach();
  EXPECT_FALSE(ebr.pinned(r.slot()));
  {
    auto g = ebr.pin_guard(r.slot());
    EXPECT_TRUE(ebr.pinned(r.slot()));
  }
  EXPECT_FALSE(ebr.pinned(r.slot()));
}

TEST(Ebr, NestedPinsShareOneAnnouncement) {
  ThreadRegistry reg(4);
  EpochManager ebr(reg);
  auto r = reg.attach();
  auto g1 = ebr.pin_guard(r.slot());
  {
    auto g2 = ebr.pin_guard(r.slot());
    EXPECT_TRUE(ebr.pinned(r.slot()));
  }
  EXPECT_TRUE(ebr.pinned(r.slot()));  // outer guard still holds
}

TEST(Ebr, RetiredNodeNotFreedWhilePinned) {
  ThreadRegistry reg(4);
  EpochManager ebr(reg);
  auto r = reg.attach();
  std::atomic<int> alive{0};
  auto guard = ebr.pin_guard(r.slot());
  auto* node = new Tracked(alive);
  ebr.retire(r.slot(), node);
  for (int i = 0; i < 10; ++i) ebr.collect(r.slot());
  // Our own pin keeps the epoch from advancing twice.
  EXPECT_EQ(alive.load(), 1);
  EXPECT_EQ(node->payload, 42);  // still valid to dereference
}

TEST(Ebr, RetiredNodeFreedAfterQuiescence) {
  ThreadRegistry reg(4);
  EpochManager ebr(reg);
  auto r = reg.attach();
  std::atomic<int> alive{0};
  {
    auto guard = ebr.pin_guard(r.slot());
    ebr.retire(r.slot(), new Tracked(alive));
  }
  for (int i = 0; i < 4; ++i) ebr.collect(r.slot());
  EXPECT_EQ(alive.load(), 0);
}

TEST(Ebr, DrainAllFreesEverything) {
  ThreadRegistry reg(4);
  EpochManager ebr(reg);
  auto r = reg.attach();
  std::atomic<int> alive{0};
  for (int i = 0; i < 100; ++i) ebr.retire(r.slot(), new Tracked(alive));
  ebr.drain_all();
  EXPECT_EQ(alive.load(), 0);
  EXPECT_EQ(ebr.freed_count(), ebr.retired_count());
}

TEST(Ebr, EpochAdvancesWhenAllQuiescent) {
  ThreadRegistry reg(4);
  EpochManager ebr(reg);
  auto r = reg.attach();
  const std::uint64_t before = ebr.global_epoch();
  ebr.collect(r.slot());
  EXPECT_GT(ebr.global_epoch(), before);
}

TEST(Ebr, StragglerBlocksAdvancement) {
  ThreadRegistry reg(4);
  EpochManager ebr(reg);
  auto a = reg.attach();
  auto b = reg.attach();
  auto guard = ebr.pin_guard(a.slot());       // a pins the current epoch
  const std::uint64_t e0 = ebr.global_epoch();
  ebr.collect(b.slot());                      // b tries to advance: ok once
  const std::uint64_t e1 = ebr.global_epoch();
  EXPECT_LE(e1, e0 + 1);
  ebr.collect(b.slot());                      // now a's announcement is stale
  EXPECT_EQ(ebr.global_epoch(), e1);
}

TEST(Ebr, CountsAreMonotone) {
  ThreadRegistry reg(2);
  EpochManager ebr(reg);
  auto r = reg.attach();
  std::atomic<int> alive{0};
  ebr.retire(r.slot(), new Tracked(alive));
  EXPECT_EQ(ebr.retired_count(), 1u);
  EXPECT_LE(ebr.freed_count(), ebr.retired_count());
}

// Multi-threaded hunt: readers traverse a shared atomic pointer under pin
// while a writer continuously swaps and retires nodes. TSAN/ASAN builds
// turn latent bugs into hard failures; in plain builds the payload check
// catches gross use-after-free.
TEST(Ebr, ConcurrentSwapAndReadStress) {
  ThreadRegistry reg(8);
  EpochManager ebr(reg);
  std::atomic<int> alive{0};
  std::atomic<Tracked*> shared{new Tracked(alive)};
  std::atomic<bool> stop{false};

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      auto r = reg.attach();
      while (!stop.load(std::memory_order_acquire)) {
        auto g = ebr.pin_guard(r.slot());
        Tracked* node = shared.load(std::memory_order_acquire);
        ASSERT_EQ(node->payload, 42);  // must never observe freed memory
      }
    });
  }
  std::thread writer([&] {
    auto r = reg.attach();
    for (int i = 0; i < 30000; ++i) {
      auto* fresh = new Tracked(alive);
      Tracked* old = shared.exchange(fresh, std::memory_order_acq_rel);
      ebr.retire(r.slot(), old);
    }
    stop.store(true, std::memory_order_release);
  });
  writer.join();
  for (auto& th : readers) th.join();
  ebr.retire(0, shared.load());
  ebr.drain_all();
  EXPECT_EQ(alive.load(), 0);
}

}  // namespace
}  // namespace zstm::util
