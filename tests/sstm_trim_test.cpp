// S-STM descriptor trim (the carried-over retained-descriptor leak):
// Runtime::trim_descriptors() must free every finished descriptor at
// quiescence, refuse to run while an attempt is live, and preserve
// serializability by folding reader constraints into per-version stamps.
//
// CTest label: `unit` (DESIGN.md §6).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "api/stm_api.hpp"
#include "history/checkers.hpp"
#include "sstm/sstm.hpp"
#include "util/rng.hpp"

namespace zstm::sstm {
namespace {

Config quiet_config() {
  Config cfg;
  cfg.max_threads = 8;
  return cfg;
}

TEST(SstmTrim, QuiescentTrimFreesAllDescriptors) {
  Runtime rt(quiet_config());
  auto x = rt.make_var<int>(0);
  auto th = rt.attach();
  for (int i = 0; i < 100; ++i) {
    rt.run(*th, [&](Tx& tx) { tx.write(x, tx.read(x) + 1); });
  }
  EXPECT_EQ(rt.descriptor_count(), 100u);
  EXPECT_EQ(rt.trim_descriptors(), 100u);
  EXPECT_EQ(rt.descriptor_count(), 0u);
  // The runtime keeps working after a trim, and folded stamps keep the
  // post-trim transactions ordered after everything trimmed away.
  rt.run(*th, [&](Tx& tx) { EXPECT_EQ(tx.read(x), 100); });
  EXPECT_EQ(rt.descriptor_count(), 1u);
}

TEST(SstmTrim, TrimRefusesWhileAttemptIsLive) {
  Runtime rt(quiet_config());
  auto x = rt.make_var<int>(0);
  auto th = rt.attach();
  Tx& tx = th->begin();
  tx.write(x, 7);
  EXPECT_EQ(rt.trim_descriptors(), 0u);  // live attempt: safe no-op
  EXPECT_EQ(rt.descriptor_count(), 1u);
  th->commit();
  EXPECT_EQ(rt.trim_descriptors(), 1u);
}

TEST(SstmTrim, ChurnLoopStaysBounded) {
  // The leak regression proper: with periodic trims, the live descriptor
  // count stays bounded by the churn between trims instead of growing
  // linearly with the total transaction count.
  Runtime rt(quiet_config());
  auto x = rt.make_var<long>(0);
  constexpr int kRounds = 50;
  constexpr int kTxPerRound = 64;
  std::size_t max_live = 0;
  for (int round = 0; round < kRounds; ++round) {
    auto th = rt.attach();  // attach/detach churn alongside tx churn
    for (int i = 0; i < kTxPerRound; ++i) {
      rt.run(*th, [&](Tx& tx) { tx.write(x, tx.read(x) + 1); });
    }
    th.reset();
    const std::size_t live = rt.descriptor_count();
    max_live = std::max(max_live, live);
    EXPECT_EQ(rt.trim_descriptors(), live);
    EXPECT_EQ(rt.descriptor_count(), 0u);
  }
  EXPECT_LE(max_live, static_cast<std::size_t>(kTxPerRound));
  auto th = rt.attach();
  rt.run(*th, [&](Tx& tx) {
    EXPECT_EQ(tx.read(x), static_cast<long>(kRounds) * kTxPerRound);
  });
}

TEST(SstmTrim, FacadeMaintainTrims) {
  // api::Stm::maintain() is the façade spelling of trim_descriptors():
  // reclaimed/retained must mirror the raw counters, and on a runtime with
  // nothing to trim it reports an empty result.
  api::SStm stm;
  auto x = stm.make_var<int>(0);
  for (int i = 0; i < 50; ++i) {
    stm.run(api::TxKind::kUpdate, [&](auto& tx) { tx.write(x, i); });
  }
  EXPECT_EQ(stm.runtime().descriptor_count(), 50u);
  const api::MaintainResult r = stm.maintain();
  EXPECT_EQ(r.reclaimed, 50u);
  EXPECT_EQ(r.retained, 0u);

  api::LsaStm lsa;
  const api::MaintainResult empty = lsa.maintain();
  EXPECT_EQ(empty.reclaimed, 0u);
  EXPECT_EQ(empty.retained, 0u);
}

TEST(SstmTrim, MaintainEveryNCommitsKeepsCountBounded) {
  // The automatic fallback trigger (CommonConfig::maintain_every): a long
  // single-threaded run must never accumulate more than one trigger
  // period's worth of descriptors, with no maintain() call ever made by
  // the test — descriptor_count() is a read-only gauge.
  api::CommonConfig cfg;
  cfg.maintain_every = 32;
  api::SStm stm(cfg);
  auto x = stm.make_var<long>(0);
  std::size_t high_water = 0;
  for (int i = 0; i < 500; ++i) {
    stm.run(api::TxKind::kUpdate,
            [&](auto& tx) { tx.write(x, tx.read(x) + 1); });
    high_water = std::max(high_water, stm.runtime().descriptor_count());
  }
  EXPECT_LE(high_water, 32u);
  // Without the trigger the same loop retains every descriptor.
  api::SStm bare;
  auto y = bare.make_var<long>(0);
  for (int i = 0; i < 100; ++i) {
    bare.run(api::TxKind::kUpdate,
             [&](auto& tx) { tx.write(y, tx.read(y) + 1); });
  }
  EXPECT_EQ(bare.runtime().descriptor_count(), 100u);
  stm.run(api::TxKind::kReadOnly,
          [&](auto& tx) { EXPECT_EQ(tx.read(x), 500); });
}

TEST(SstmTrim, FoldedStampsPreserveSerializability) {
  // Concurrent history with trims interleaved at quiescent points between
  // rounds; the offline checker must still certify serializability — the
  // folded stamps must carry every committed reader's constraint.
  Config cfg = quiet_config();
  cfg.record_history = true;
  Runtime rt(cfg);
  constexpr int kVars = 6;
  constexpr int kThreads = 4;
  constexpr int kRounds = 8;
  constexpr int kTxPerThread = 40;
  std::vector<Var<int>> vars;
  vars.reserve(kVars);
  for (int i = 0; i < kVars; ++i) vars.push_back(rt.make_var<int>(0));

  for (int round = 0; round < kRounds; ++round) {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t, round] {
        util::Xorshift rng(0x7157ead5ULL + round * 131 + t);
        auto th = rt.attach();
        for (int i = 0; i < kTxPerThread; ++i) {
          rt.run(*th, [&](Tx& tx) {
            auto& a = vars[rng.next_below(kVars)];
            auto& b = vars[rng.next_below(kVars)];
            const int sum = tx.read(a) + tx.read(b);
            if (rng.next_below(2) == 0) tx.write(vars[rng.next_below(kVars)], sum);
          });
        }
      });
    }
    for (auto& t : threads) t.join();
    EXPECT_GT(rt.trim_descriptors(), 0u);  // quiescent between rounds
  }

  const history::History h = rt.collect_history();
  const history::CheckResult res = history::check_serializable(h);
  EXPECT_TRUE(res.ok) << res.reason;
}

}  // namespace
}  // namespace zstm::sstm
