// Functional tests for S-STM (§4.2): serializability where CS-STM is too
// weak, Figure 2 in both commit orders, visible-reader machinery, and
// machine-checked serializability of concurrent histories.
//
// CTest label: `unit` (DESIGN.md §6).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "history/checkers.hpp"
#include "sstm/sstm.hpp"
#include "util/rng.hpp"

namespace zstm::sstm {
namespace {

using util::Counter;

Config quiet_config() {
  Config cfg;
  cfg.max_threads = 8;
  return cfg;
}

TEST(Sstm, ReadWriteCommitBasics) {
  Runtime rt(quiet_config());
  auto x = rt.make_var<int>(1);
  auto th = rt.attach();
  rt.run(*th, [&](Tx& tx) {
    EXPECT_EQ(tx.read(x), 1);
    tx.write(x, 2);
    EXPECT_EQ(tx.read(x), 2);
  });
  rt.run(*th, [&](Tx& tx) { EXPECT_EQ(tx.read(x), 2); });
}

TEST(Sstm, RepeatReadsAreStable) {
  Runtime rt(quiet_config());
  auto x = rt.make_var<int>(7);
  auto a = rt.attach();
  auto b = rt.attach();
  Tx& ta = a->begin();
  const int first = ta.read(x);
  rt.run(*b, [&](Tx& tx) { tx.write(x, 8); });
  const int second = ta.read(x);  // repeat read: pinned to the same version
  EXPECT_EQ(first, second);
  a->commit();  // read-only
}

TEST(Sstm, AbortDiscardsWrites) {
  Runtime rt(quiet_config());
  auto x = rt.make_var<int>(3);
  auto th = rt.attach();
  Tx& tx = th->begin();
  tx.write(x, 4);
  EXPECT_THROW(tx.abort(), TxAborted);
  rt.run(*th, [&](Tx& t) { EXPECT_EQ(t.read(x), 3); });
}

// Verify stamp domination through behaviour: after a committed-reader
// merge, the overwriting transaction's stamp strictly dominates the
// committed reader's final stamp.
TEST(Sstm, AntiDependencyStampsAreCarried) {
  Config cfg = quiet_config();
  cfg.record_history = true;
  Runtime rt(cfg);
  auto x = rt.make_var<int>(0);
  auto y = rt.make_var<int>(0);
  auto a = rt.attach();
  auto b = rt.attach();

  rt.run(*a, [&](Tx& tx) {
    (void)tx.read(x);
    tx.write(y, 1);
  });
  rt.run(*b, [&](Tx& tx) { tx.write(x, 2); });  // overwrites a's read

  const auto h = rt.collect_history();
  // Find the two committed update transactions and check stamp order:
  // a read x@v0 and b wrote its successor, so a must precede b — S-STM
  // realizes this by forcing b's stamp strictly above a's.
  const history::TxRecord* ra = nullptr;
  const history::TxRecord* rb = nullptr;
  for (const auto& t : h.txs) {
    if (!t.committed) continue;
    if (t.thread_slot == 0) ra = &t;
    if (t.thread_slot == 1) rb = &t;
  }
  ASSERT_NE(ra, nullptr);
  ASSERT_NE(rb, nullptr);
  bool leq = true, eq = true;
  for (std::size_t k = 0; k < ra->stamp.size(); ++k) {
    if (ra->stamp[k] > rb->stamp[k]) leq = false;
    if (ra->stamp[k] != rb->stamp[k]) eq = false;
  }
  EXPECT_TRUE(leq && !eq) << "anti-dependent writer stamp must dominate";
}

/// Figure 2 in S-STM: four transactions whose full execution is causally
/// serializable but NOT serializable; whichever of TL / T3 commits first
/// must win and the other must abort.
class Figure2 : public ::testing::TestWithParam<bool> {};

TEST_P(Figure2, OnlyOneOfTlAndT3Commits) {
  const bool t3_first = GetParam();
  Runtime rt(quiet_config());
  auto o1 = rt.make_var<int>(0);
  auto o2 = rt.make_var<int>(0);
  auto o3 = rt.make_var<int>(0);
  auto o4 = rt.make_var<int>(0);
  auto p1 = rt.attach();
  auto p2 = rt.attach();
  auto p3 = rt.attach();
  auto pl = rt.attach();

  Tx& tl = pl->begin();
  (void)tl.read(o1);  // pre-T1 versions
  (void)tl.read(o2);

  Tx& t3 = p3->begin();
  (void)t3.read(o3);  // pre-T2 version

  rt.run(*p1, [&](Tx& tx) {  // T1: w(o1) w(o2)
    tx.write(o1, 1);
    tx.write(o2, 1);
  });
  rt.run(*p2, [&](Tx& tx) {  // T2: w(o3) w(o3)
    tx.write(o3, 1);
    tx.write(o3, 2);
  });

  (void)tl.read(o3);   // post-T2: TL must follow T2
  tl.write(o4, 1);
  t3.write(o2, 3);     // post-T1: T3 must follow T1

  if (t3_first) {
    EXPECT_NO_THROW(p3->commit());
    EXPECT_THROW(pl->commit(), TxAborted);
  } else {
    EXPECT_NO_THROW(pl->commit());
    EXPECT_THROW(p3->commit(), TxAborted);
  }
}

INSTANTIATE_TEST_SUITE_P(BothOrders, Figure2, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "T3CommitsFirst"
                                             : "TLCommitsFirst";
                         });

TEST(Sstm, WriteWriteConflictArbitrated) {
  Config cfg = quiet_config();
  cfg.cm_policy = cm::Policy::kAggressive;
  Runtime rt(cfg);
  auto x = rt.make_var<int>(0);
  auto a = rt.attach();
  auto b = rt.attach();
  Tx& ta = a->begin();
  ta.write(x, 1);
  rt.run(*b, [&](Tx& tx) { tx.write(x, 2); });
  EXPECT_THROW(a->commit(), TxAborted);
}

TEST(Sstm, ConcurrentHistoryIsSerializable) {
  Config cfg = quiet_config();
  cfg.max_threads = 16;
  cfg.record_history = true;
  Runtime rt(cfg);
  constexpr int kObjects = 6;
  std::vector<Var<long>> vars;
  for (int i = 0; i < kObjects; ++i) vars.push_back(rt.make_var<long>(0));

  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      auto th = rt.attach();
      util::Xorshift rng(static_cast<std::uint64_t>(t) + 29);
      for (int i = 0; i < 500; ++i) {
        const auto a = rng.next_below(kObjects);
        auto b = rng.next_below(kObjects);
        if (b == a) b = (b + 1) % kObjects;
        if (rng.chance(0.35)) {
          rt.run(*th, [&](Tx& tx) {
            (void)tx.read(vars[a]);
            (void)tx.read(vars[b]);
          });
        } else {
          rt.run(*th, [&](Tx& tx) {
            tx.write(vars[b]) += tx.read(vars[a]) + 1;
          });
        }
      }
    });
  }
  for (auto& w : workers) w.join();

  const auto h = rt.collect_history();
  ASSERT_GT(h.committed_count(), 0u);
  auto res = history::check_serializable(h);
  EXPECT_TRUE(res) << res.reason;
  // S-STM histories also satisfy the causal obligations (serializability
  // is strictly stronger).
  auto causal = history::check_causal_conditions(h);
  EXPECT_TRUE(causal) << causal.reason;
}

TEST(Sstm, BankInvariantUnderContention) {
  Config cfg = quiet_config();
  cfg.max_threads = 16;
  Runtime rt(cfg);
  constexpr int kAccounts = 12;
  constexpr long kInitial = 40;
  std::vector<Var<long>> accounts;
  for (int i = 0; i < kAccounts; ++i) accounts.push_back(rt.make_var<long>(kInitial));

  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      auto th = rt.attach();
      util::Xorshift rng(static_cast<std::uint64_t>(t) + 13);
      for (int i = 0; i < 800; ++i) {
        const auto from = rng.next_below(kAccounts);
        auto to = rng.next_below(kAccounts);
        if (to == from) to = (to + 1) % kAccounts;
        rt.run(*th, [&](Tx& tx) {
          const long amount = 1 + static_cast<long>(rng.next_below(5));
          tx.write(accounts[from]) -= amount;
          tx.write(accounts[to]) += amount;
        });
      }
    });
  }
  for (auto& w : workers) w.join();

  auto th = rt.attach();
  long total = 0;
  rt.run(*th, [&](Tx& tx) {
    total = 0;
    for (auto& a : accounts) total += tx.read(a);
  });
  EXPECT_EQ(total, kAccounts * kInitial);
}

}  // namespace
}  // namespace zstm::sstm
