// Multi-threaded stress tests for Z-STM: the paper's bank workload with
// concurrent long transactions (read-only and update Compute-Total), money
// conservation, long-transaction liveness, and machine-checked
// z-linearizability of recorded histories.
//
// CTest label: `stress` — randomized multi-threaded rounds; run under TSan
// in CI (DESIGN.md §6).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "history/checkers.hpp"
#include "stress_env.hpp"
#include "util/rng.hpp"
#include "zstm/zstm.hpp"

namespace zstm::zl {
namespace {

struct ZParam {
  int threads;
  bool update_total;  // Compute-Total writes private transactional state
  bool wait_mode;
  const char* label;
};

class ZStress : public ::testing::TestWithParam<ZParam> {};

TEST_P(ZStress, BankWithLongComputeTotal) {
  const ZParam& p = GetParam();
  Config cfg;
  cfg.lsa.max_threads = 16;
  cfg.wait_on_zone_conflict = p.wait_mode;
  Runtime rt(cfg);

  constexpr int kAccounts = 64;
  constexpr long kInitial = 100;
  constexpr long kExpected = kAccounts * kInitial;
  std::vector<lsa::Var<long>> accounts;
  for (int i = 0; i < kAccounts; ++i) accounts.push_back(rt.make_var<long>(kInitial));
  auto total_sink = rt.make_var<long>(0);

  std::atomic<long> bad_totals{0};
  std::atomic<long> long_commits{0};

  std::vector<std::thread> workers;
  for (int t = 0; t < p.threads; ++t) {
    workers.emplace_back([&, t] {
      auto th = rt.attach();
      util::Xorshift rng(static_cast<std::uint64_t>(t) * 7919 + 3);
      // Thread 0 mixes transfers (80%) and Compute-Total (20%), as in the
      // paper's §5.5 setup; other threads only transfer.
      for (int i = 0, n = test_env::stress_rounds(1200); i < n; ++i) {
        if (t == 0 && rng.chance(0.2)) {
          long observed = 0;
          rt.run_long(*th, [&](LongTx& tx) {
            observed = 0;
            for (auto& a : accounts) observed += tx.read(a);
            if (p.update_total) tx.write(total_sink, observed);
          });
          long_commits.fetch_add(1);
          if (observed != kExpected) bad_totals.fetch_add(1);
        } else {
          const auto from = rng.next_below(kAccounts);
          auto to = rng.next_below(kAccounts);
          if (to == from) to = (to + 1) % kAccounts;
          rt.run_short(*th, [&](ShortTx& tx) {
            const long amount = 1 + static_cast<long>(rng.next_below(9));
            tx.write(accounts[from]) -= amount;
            tx.write(accounts[to]) += amount;
          });
        }
      }
    });
  }
  for (auto& w : workers) w.join();

  // Every Compute-Total saw a consistent snapshot: the sum is invariant.
  EXPECT_EQ(bad_totals.load(), 0);
  EXPECT_GT(long_commits.load(), 0);

  auto th = rt.attach();
  long final_total = 0;
  rt.run_long(*th, [&](LongTx& tx) {
    final_total = 0;
    for (auto& a : accounts) final_total += tx.read(a);
  });
  EXPECT_EQ(final_total, kExpected);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ZStress,
    ::testing::Values(ZParam{2, false, false, "t2_readonly_abort"},
                      ZParam{4, false, false, "t4_readonly_abort"},
                      ZParam{4, true, false, "t4_update_abort"},
                      ZParam{4, true, true, "t4_update_wait"},
                      ZParam{8, true, false, "t8_update_abort"}),
    [](const ::testing::TestParamInfo<ZParam>& info) {
      return info.param.label;
    });

TEST(ZStressHistory, RecordedHistoryIsZLinearizable) {
  Config cfg;
  cfg.lsa.max_threads = 16;
  cfg.lsa.record_history = true;
  Runtime rt(cfg);

  constexpr int kAccounts = 12;
  constexpr long kInitial = 30;
  std::vector<lsa::Var<long>> accounts;
  for (int i = 0; i < kAccounts; ++i) accounts.push_back(rt.make_var<long>(kInitial));
  auto sink = rt.make_var<long>(0);

  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      auto th = rt.attach();
      util::Xorshift rng(static_cast<std::uint64_t>(t) + 101);
      for (int i = 0, n = test_env::stress_rounds(400); i < n; ++i) {
        if (t == 0 && rng.chance(0.15)) {
          rt.run_long(*th, [&](LongTx& tx) {
            long total = 0;
            for (auto& a : accounts) total += tx.read(a);
            tx.write(sink, total);
          });
        } else {
          const auto from = rng.next_below(kAccounts);
          auto to = rng.next_below(kAccounts);
          if (to == from) to = (to + 1) % kAccounts;
          rt.run_short(*th, [&](ShortTx& tx) {
            const long amount = 1 + static_cast<long>(rng.next_below(5));
            tx.write(accounts[from]) -= amount;
            tx.write(accounts[to]) += amount;
          });
        }
      }
    });
  }
  for (auto& w : workers) w.join();

  const auto h = rt.collect_history();
  ASSERT_GT(h.committed_count(), 0u);
  auto serial = history::check_serializable(h);
  EXPECT_TRUE(serial) << serial.reason;
  auto zlin = history::check_z_linearizable(h);
  EXPECT_TRUE(zlin) << zlin.reason;
}

TEST(ZStressHistory, ShortOnlyWorkloadIsStrictlySerializable) {
  // Without long transactions every short lands in zone 0, and clause (2)
  // demands full real-time order — i.e. Z-STM degrades to exactly LSA's
  // guarantee when no zones exist.
  Config cfg;
  cfg.lsa.max_threads = 16;
  cfg.lsa.record_history = true;
  Runtime rt(cfg);
  auto x = rt.make_var<long>(0);
  auto y = rt.make_var<long>(0);

  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      auto th = rt.attach();
      util::Xorshift rng(static_cast<std::uint64_t>(t) + 201);
      for (int i = 0, n = test_env::stress_rounds(500); i < n; ++i) {
        rt.run_short(*th, [&](ShortTx& tx) {
          if (rng.chance(0.5)) {
            tx.write(x) += 1;
          } else {
            tx.write(y) += tx.read(x);
          }
        });
      }
    });
  }
  for (auto& w : workers) w.join();

  auto strict = history::check_strictly_serializable(rt.collect_history());
  EXPECT_TRUE(strict) << strict.reason;
}

TEST(ZStress, LongUpdateNeverStarvesUnderTransferStorm) {
  // The qualitative heart of Figure 7: a long update transaction keeps
  // committing while transfer traffic hammers the accounts it reads.
  Config cfg;
  cfg.lsa.max_threads = 8;
  Runtime rt(cfg);
  constexpr int kAccounts = 48;
  std::vector<lsa::Var<long>> accounts;
  for (int i = 0; i < kAccounts; ++i) accounts.push_back(rt.make_var<long>(10));
  auto sink = rt.make_var<long>(0);

  std::atomic<bool> stop{false};
  std::vector<std::thread> hammers;
  for (int t = 0; t < 3; ++t) {
    hammers.emplace_back([&, t] {
      auto th = rt.attach();
      util::Xorshift rng(static_cast<std::uint64_t>(t) + 41);
      while (!stop.load(std::memory_order_acquire)) {
        const auto from = rng.next_below(kAccounts);
        auto to = rng.next_below(kAccounts);
        if (to == from) to = (to + 1) % kAccounts;
        rt.run_short(*th, [&](ShortTx& tx) {
          tx.write(accounts[from]) -= 1;
          tx.write(accounts[to]) += 1;
        });
      }
    });
  }

  auto th = rt.attach();
  std::uint64_t total_attempts = 0;
  for (int i = 0; i < 25; ++i) {
    total_attempts += rt.run_long(*th, [&](LongTx& tx) {
                          long total = 0;
                          for (auto& a : accounts) total += tx.read(a);
                          tx.write(sink, total);
                        }).attempts;
  }
  stop.store(true, std::memory_order_release);
  for (auto& h : hammers) h.join();

  EXPECT_EQ(rt.stats()[util::Counter::kLongCommits], 25u);
  // Liveness quality: long transactions should not need pathological retry
  // counts (LSA in this situation would essentially never commit).
  EXPECT_LT(total_attempts, 25u * 50u);
}

}  // namespace
}  // namespace zstm::zl
