// Multi-threaded stress tests for CS-STM with vector and plausible clocks.
//
// CTest label: `stress` — randomized multi-threaded rounds; run under TSan
// in CI (DESIGN.md §6).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "cs/cs.hpp"
#include "history/checkers.hpp"
#include "stress_env.hpp"
#include "util/rng.hpp"

namespace zstm::cs {
namespace {

template <typename RuntimePtr>
void run_bank(RuntimePtr& rt, int threads, int transfers_per_thread) {
  using R = typename std::remove_reference_t<decltype(*rt)>;
  constexpr int kAccounts = 16;
  constexpr long kInitial = 50;
  std::vector<typename R::template Var<long>> accounts;
  for (int i = 0; i < kAccounts; ++i) {
    accounts.push_back(rt->template make_var<long>(kInitial));
  }
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      auto th = rt->attach();
      util::Xorshift rng(static_cast<std::uint64_t>(t) + 1);
      for (int i = 0; i < transfers_per_thread; ++i) {
        const auto from = rng.next_below(kAccounts);
        auto to = rng.next_below(kAccounts);
        if (to == from) to = (to + 1) % kAccounts;
        rt->run(*th, [&](typename R::Tx& tx) {
          const long amount = 1 + static_cast<long>(rng.next_below(5));
          tx.write(accounts[from]) -= amount;
          tx.write(accounts[to]) += amount;
        });
      }
    });
  }
  for (auto& w : workers) w.join();

  auto th = rt->attach();
  long total = 0;
  rt->run(*th, [&](typename R::Tx& tx) {
    total = 0;
    for (auto& a : accounts) total += tx.read(a);
  });
  EXPECT_EQ(total, kAccounts * kInitial);
}

TEST(CsStress, BankInvariantVectorClocks) {
  auto rt = make_vc_runtime(Config{.max_threads = 16});
  run_bank(rt, 4, test_env::stress_rounds(1500));
}

TEST(CsStress, BankInvariantRevTwoEntries) {
  auto rt = make_rev_runtime(2, Config{.max_threads = 16});
  run_bank(rt, 4, test_env::stress_rounds(1500));
}

TEST(CsStress, BankInvariantRevScalar) {
  auto rt = make_rev_runtime(1, Config{.max_threads = 16});
  run_bank(rt, 4, test_env::stress_rounds(1500));
}

TEST(CsStress, BankInvariantAggressiveCm) {
  Config cfg{.max_threads = 16};
  cfg.cm_policy = cm::Policy::kAggressive;
  auto rt = make_vc_runtime(cfg);
  run_bank(rt, 4, test_env::stress_rounds(1500));
}

TEST(CsStress, SingleChainReadersNeverSeeTornState) {
  // All updates form one write chain (every transfer writes both x and y),
  // so even causal serializability forces readers into consistency.
  auto rt = make_vc_runtime(Config{.max_threads = 16});
  auto x = rt->make_var<long>(0);
  auto y = rt->make_var<long>(0);
  std::atomic<bool> stop{false};
  std::atomic<long> violations{0};

  std::vector<std::thread> workers;
  for (int t = 0; t < 2; ++t) {
    workers.emplace_back([&, t] {
      auto th = rt->attach();
      util::Xorshift rng(static_cast<std::uint64_t>(t) + 5);
      for (int i = 0, n = test_env::stress_rounds(2500); i < n; ++i) {
        rt->run(*th, [&](VcRuntime::Tx& tx) {
          const long d = 1 + static_cast<long>(rng.next_below(7));
          tx.write(x) += d;
          tx.write(y) -= d;
        });
      }
      stop.store(true, std::memory_order_release);
    });
  }
  workers.emplace_back([&] {
    auto th = rt->attach();
    while (!stop.load(std::memory_order_acquire)) {
      // CS-STM detects read/write conflicts only at commit time (§4.1), so
      // only the attempt that actually commits must be consistent.
      long observed = 0;
      rt->run(*th, [&](VcRuntime::Tx& tx) {
        observed = tx.read(x) + tx.read(y);
      });
      if (observed != 0) violations.fetch_add(1);
    }
  });
  for (auto& w : workers) w.join();
  EXPECT_EQ(violations.load(), 0);
}

TEST(CsStress, RecordedHistorySatisfiesCausalConditions) {
  Config cfg{.max_threads = 16};
  cfg.record_history = true;
  auto rt = make_vc_runtime(cfg);
  constexpr int kObjects = 6;
  std::vector<VcRuntime::Var<long>> vars;
  for (int i = 0; i < kObjects; ++i) vars.push_back(rt->make_var<long>(0));

  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      auto th = rt->attach();
      util::Xorshift rng(static_cast<std::uint64_t>(t) + 11);
      for (int i = 0, n = test_env::stress_rounds(600); i < n; ++i) {
        const auto a = rng.next_below(kObjects);
        auto b = rng.next_below(kObjects);
        if (b == a) b = (b + 1) % kObjects;
        if (rng.chance(0.4)) {
          rt->run(*th, [&](VcRuntime::Tx& tx) {
            (void)tx.read(vars[a]);
            (void)tx.read(vars[b]);
          });
        } else {
          rt->run(*th, [&](VcRuntime::Tx& tx) {
            tx.write(vars[b]) += tx.read(vars[a]) + 1;
          });
        }
      }
    });
  }
  for (auto& w : workers) w.join();

  const auto h = rt->collect_history();
  ASSERT_GT(h.committed_count(), 0u);
  auto res = history::check_causal_conditions(h);
  EXPECT_TRUE(res) << res.reason;
}

TEST(CsStress, RevHistoriesSatisfyCausalConditionsForAllR) {
  for (int r : {1, 2, 4, 8}) {
    Config cfg{.max_threads = 8};
    cfg.record_history = true;
    auto rt = make_rev_runtime(r, cfg);
    auto x = rt->make_var<long>(0);
    auto y = rt->make_var<long>(0);
    std::vector<std::thread> workers;
    for (int t = 0; t < 3; ++t) {
      workers.emplace_back([&, t] {
        auto th = rt->attach();
        util::Xorshift rng(static_cast<std::uint64_t>(t) + 3);
        for (int i = 0, n = test_env::stress_rounds(400); i < n; ++i) {
          rt->run(*th, [&](RevRuntime::Tx& tx) {
            if (rng.chance(0.5)) {
              tx.write(x) += tx.read(y);
            } else {
              tx.write(y) += 1;
            }
          });
        }
      });
    }
    for (auto& w : workers) w.join();
    auto res = history::check_causal_conditions(rt->collect_history());
    EXPECT_TRUE(res) << "r=" << r << ": " << res.reason;
  }
}

TEST(CsStress, FewerEntriesFalselyOrderMoreConcurrentCommits) {
  // §4.3's accuracy claim, measured deterministically at the clock level:
  // replay one fixed message-passing history under exact vector clocks and
  // under REV with shrinking r, and count pairs that are truly concurrent
  // but REV reports as ordered. The false-ordering count must not grow
  // with r.
  //
  // (We deliberately do NOT assert an STM-level abort-rate ordering: with
  // r = 1 a commit stamp is always fresher than everything a reader merged
  // before it, which suppresses the validation inequality in a way that
  // depends on schedule dynamics — see EXPERIMENTS.md, bench_plausible_r.)
  constexpr int kThreads = 8;
  constexpr int kObjects = 6;
  constexpr int kSteps = 500;

  struct Event {
    timebase::VcStamp exact;
    std::vector<timebase::RevStamp> rev;  // one per candidate r
  };
  const std::vector<int> rs = {1, 2, 4, 8};

  timebase::VcDomain vc_dom(kThreads);
  std::vector<timebase::RevDomain> rev_doms;
  for (int r : rs) rev_doms.emplace_back(r, kThreads);

  struct State {
    timebase::VcStamp exact;
    std::vector<timebase::RevStamp> rev;
  };
  auto zero_state = [&] {
    State s;
    s.exact = vc_dom.zero();
    for (auto& d : rev_doms) s.rev.push_back(d.zero());
    return s;
  };
  std::vector<State> threads_state(kThreads, zero_state());
  std::vector<State> objects_state(kObjects, zero_state());

  util::Xorshift rng(4242);
  std::vector<Event> events;
  for (int step = 0; step < kSteps; ++step) {
    const int t = static_cast<int>(rng.next_below(kThreads));
    const int o = static_cast<int>(rng.next_below(kObjects));
    auto& ts = threads_state[static_cast<std::size_t>(t)];
    auto& os = objects_state[static_cast<std::size_t>(o)];
    ts.exact.merge(os.exact);
    vc_dom.advance(t, ts.exact);
    for (std::size_t k = 0; k < rs.size(); ++k) {
      ts.rev[k].merge(os.rev[k]);
      rev_doms[k].advance(t, ts.rev[k]);
    }
    os = ts;
    events.push_back({ts.exact, ts.rev});
  }

  std::vector<std::uint64_t> false_orderings(rs.size(), 0);
  std::uint64_t concurrent_pairs = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    for (std::size_t j = i + 1; j < events.size(); ++j) {
      if (events[i].exact.compare(events[j].exact) !=
          timebase::Order::kConcurrent) {
        continue;
      }
      ++concurrent_pairs;
      for (std::size_t k = 0; k < rs.size(); ++k) {
        if (events[i].rev[k].compare(events[j].rev[k]) !=
            timebase::Order::kConcurrent) {
          ++false_orderings[k];
        }
      }
    }
  }
  ASSERT_GT(concurrent_pairs, 0u);
  // r = n is an exact vector clock: zero false orderings.
  EXPECT_EQ(false_orderings.back(), 0u);
  // r = 1 is a scalar clock: *every* concurrent pair is falsely ordered.
  EXPECT_EQ(false_orderings.front(), concurrent_pairs);
  // Monotone accuracy in between.
  for (std::size_t k = 1; k < rs.size(); ++k) {
    EXPECT_LE(false_orderings[k], false_orderings[k - 1])
        << "r=" << rs[k] << " vs r=" << rs[k - 1];
  }
}

}  // namespace
}  // namespace zstm::cs
