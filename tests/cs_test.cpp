// Functional tests for CS-STM (Algorithm 1): timestamp propagation,
// causal-serializability validation, the Figure 1 / Figure 3 behaviours,
// plausible-clock variants, and history conditions.
//
// CTest label: `unit` (DESIGN.md §6).
#include <gtest/gtest.h>

#include "cs/cs.hpp"
#include "history/checkers.hpp"

namespace zstm::cs {
namespace {

using util::Counter;

Config quiet_config() {
  Config cfg;
  cfg.max_threads = 8;
  return cfg;
}

TEST(Cs, ReadAndWriteBasics) {
  auto rt = make_vc_runtime(quiet_config());
  auto x = rt->make_var<int>(5);
  auto th = rt->attach();
  rt->run(*th, [&](VcRuntime::Tx& tx) {
    EXPECT_EQ(tx.read(x), 5);
    tx.write(x, 6);
    EXPECT_EQ(tx.read(x), 6);
  });
  rt->run(*th, [&](VcRuntime::Tx& tx) { EXPECT_EQ(tx.read(x), 6); });
}

TEST(Cs, CommitBumpsOwnComponentOnly) {
  auto rt = make_vc_runtime(quiet_config());
  auto x = rt->make_var<int>(0);
  auto th = rt->attach();  // slot 0
  rt->run(*th, [&](VcRuntime::Tx& tx) { tx.write(x, 1); });
  const auto& vcp = th->last_committed();
  EXPECT_EQ(vcp[0], 1u);
  for (int k = 1; k < vcp.dimension(); ++k) EXPECT_EQ(vcp[k], 0u);
}

TEST(Cs, ReadOnlyCommitDoesNotBump) {
  auto rt = make_vc_runtime(quiet_config());
  auto x = rt->make_var<int>(0);
  auto th = rt->attach();
  rt->run(*th, [&](VcRuntime::Tx& tx) { (void)tx.read(x); });
  EXPECT_EQ(th->last_committed()[0], 0u);
}

TEST(Cs, TimestampsMergeOnRead) {
  auto rt = make_vc_runtime(quiet_config());
  auto x = rt->make_var<int>(0);
  auto a = rt->attach();  // slot 0
  auto b = rt->attach();  // slot 1
  rt->run(*b, [&](VcRuntime::Tx& tx) { tx.write(x, 1); });  // b commits [0,1,..]
  VcRuntime::Tx& ta = a->begin();
  (void)ta.read(x);
  EXPECT_EQ(ta.tentative_ct()[1], 1u);  // observed b's component (line 8)
  a->commit();
}

TEST(Cs, ThreadCarriesItsLastCommittedTime) {
  auto rt = make_vc_runtime(quiet_config());
  auto x = rt->make_var<int>(0);
  auto th = rt->attach();
  rt->run(*th, [&](VcRuntime::Tx& tx) { tx.write(x, 1); });
  VcRuntime::Tx& t2 = th->begin();  // T.ct starts from VCp (line 3)
  EXPECT_EQ(t2.tentative_ct()[0], 1u);
  th->commit();
}

TEST(Cs, FigureOneLongTransactionCommits) {
  // The motivating example: under a single clock TL must abort; under
  // causal serializability T1's concurrent successor does not kill TL.
  auto rt = make_vc_runtime(quiet_config());
  auto o1 = rt->make_var<int>(0);
  auto o2 = rt->make_var<int>(0);
  auto o3 = rt->make_var<int>(0);
  auto o4 = rt->make_var<int>(0);
  auto p1 = rt->attach();
  auto p2 = rt->attach();
  auto pl = rt->attach();

  VcRuntime::Tx& tl = pl->begin();
  (void)tl.read(o1);
  (void)tl.read(o2);

  // T1 writes o1, o2 and commits — overwrites TL's read versions.
  rt->run(*p1, [&](VcRuntime::Tx& tx) {
    tx.write(o1, 1);
    tx.write(o2, 1);
  });
  // T2 writes o3 twice and commits.
  rt->run(*p2, [&](VcRuntime::Tx& tx) {
    tx.write(o3, 1);
    tx.write(o3, 2);
  });

  (void)tl.read(o3);  // merges T2's timestamp — concurrent with T1's
  tl.write(o4, 1);
  EXPECT_NO_THROW(pl->commit());  // causally serializable: TL commits
}

TEST(Cs, FigureThreeReaderOfCausallyOverwrittenVersionAborts) {
  // T1 reads o3; T2 (which causally follows what T1 will read next)
  // overwrites o3; when T1's timestamp comes to dominate T2's, validation
  // fails (Figure 3's T1).
  auto rt = make_vc_runtime(quiet_config());
  auto o1 = rt->make_var<int>(0);
  auto o3 = rt->make_var<int>(0);
  auto a = rt->attach();  // will play T1
  auto b = rt->attach();  // plays T2

  VcRuntime::Tx& t1 = a->begin();
  (void)t1.read(o3);  // reads the initial version of o3

  // T2 overwrites o3 and commits.
  rt->run(*b, [&](VcRuntime::Tx& tx) { tx.write(o3, 9); });
  // T2' (same thread b ⇒ causally after T2) writes o1.
  rt->run(*b, [&](VcRuntime::Tx& tx) { tx.write(o1, 9); });

  // T1 reads o1 — now T1.ct dominates T2.ct, so o3's successor causally
  // precedes T1: both-before-and-after ⇒ abort.
  (void)t1.read(o1);
  t1.write(o3, 1);  // make it an update so the bump applies
  EXPECT_THROW(a->commit(), TxAborted);
  EXPECT_GE(rt->stats()[Counter::kValidationFails], 1u);
}

TEST(Cs, WriteWriteConflictSingleWriterRule) {
  Config cfg = quiet_config();
  cfg.cm_policy = cm::Policy::kAggressive;
  auto rt = make_vc_runtime(cfg);
  auto x = rt->make_var<int>(0);
  auto a = rt->attach();
  auto b = rt->attach();
  VcRuntime::Tx& ta = a->begin();
  ta.write(x, 1);
  rt->run(*b, [&](VcRuntime::Tx& tx) { tx.write(x, 2); });  // kills A
  EXPECT_THROW(a->commit(), TxAborted);
}

TEST(Cs, AbortDiscardsWrites) {
  auto rt = make_vc_runtime(quiet_config());
  auto x = rt->make_var<int>(3);
  auto th = rt->attach();
  VcRuntime::Tx& tx = th->begin();
  tx.write(x, 4);
  EXPECT_THROW(tx.abort(), TxAborted);
  rt->run(*th, [&](VcRuntime::Tx& t) { EXPECT_EQ(t.read(x), 3); });
}

TEST(Cs, HistorySatisfiesCausalConditions) {
  Config cfg = quiet_config();
  cfg.record_history = true;
  auto rt = make_vc_runtime(cfg);
  auto x = rt->make_var<long>(0);
  auto y = rt->make_var<long>(0);
  auto a = rt->attach();
  auto b = rt->attach();
  for (int i = 0; i < 10; ++i) {
    rt->run(*a, [&](VcRuntime::Tx& tx) { tx.write(x, tx.read(x) + 1); });
    rt->run(*b, [&](VcRuntime::Tx& tx) { tx.write(y, tx.read(y) + 1); });
    rt->run(*a, [&](VcRuntime::Tx& tx) { (void)tx.read(y); });
  }
  auto res = history::check_causal_conditions(rt->collect_history());
  EXPECT_TRUE(res) << res.reason;
}

// --- plausible clock variants -----------------------------------------------

TEST(CsRev, BasicCommitWithSharedEntries) {
  auto rt = make_rev_runtime(2, quiet_config());
  auto x = rt->make_var<int>(0);
  auto th = rt->attach();
  for (int i = 0; i < 10; ++i) {
    rt->run(*th, [&](RevRuntime::Tx& tx) { tx.write(x, tx.read(x) + 1); });
  }
  rt->run(*th, [&](RevRuntime::Tx& tx) { EXPECT_EQ(tx.read(x), 10); });
}

TEST(CsRev, SingleEntryBehavesLikeScalarClock) {
  // r = 1: all commits totally ordered; Figure 1's TL no longer benefits
  // from causal slack — its read versions' successors *always* precede the
  // merged timestamp, so TL aborts exactly like in a single-clock TBTM.
  auto rt = make_rev_runtime(1, quiet_config());
  auto o1 = rt->make_var<int>(0);
  auto o3 = rt->make_var<int>(0);
  auto o4 = rt->make_var<int>(0);
  auto p1 = rt->attach();
  auto p2 = rt->attach();
  auto pl = rt->attach();

  RevRuntime::Tx& tl = pl->begin();
  (void)tl.read(o1);
  rt->run(*p1, [&](RevRuntime::Tx& tx) { tx.write(o1, 1); });
  rt->run(*p2, [&](RevRuntime::Tx& tx) { tx.write(o3, 1); });
  (void)tl.read(o3);  // merges a stamp that dominates o1's successor
  tl.write(o4, 1);
  EXPECT_THROW(pl->commit(), TxAborted);
}

TEST(CsRev, FullWidthRevMatchesVectorClockOutcome) {
  // r = max_threads: REV *is* a vector clock; Figure 1's TL commits.
  Config cfg = quiet_config();
  auto rt = make_rev_runtime(cfg.max_threads, cfg);
  auto o1 = rt->make_var<int>(0);
  auto o3 = rt->make_var<int>(0);
  auto o4 = rt->make_var<int>(0);
  auto p1 = rt->attach();
  auto p2 = rt->attach();
  auto pl = rt->attach();

  RevRuntime::Tx& tl = pl->begin();
  (void)tl.read(o1);
  rt->run(*p1, [&](RevRuntime::Tx& tx) { tx.write(o1, 1); });
  rt->run(*p2, [&](RevRuntime::Tx& tx) { tx.write(o3, 1); });
  (void)tl.read(o3);
  tl.write(o4, 1);
  EXPECT_NO_THROW(pl->commit());
}

TEST(CsRev, SharedEntryCausesFalseConflict) {
  // p1 and p2 share entry 0 under r = 1's modulo mapping... use r = 2 with
  // slots 0 and 2 sharing entry 0: T1 (slot 0) and T2 (slot 2) are truly
  // concurrent, but their REV stamps are ordered, so a reader merging T2's
  // stamp sees T1's version as causally overwritten — an unnecessary abort
  // (the accuracy/size trade-off of §4.3).
  Config cfg = quiet_config();
  auto rt = make_rev_runtime(2, cfg);
  auto o1 = rt->make_var<int>(0);
  auto o3 = rt->make_var<int>(0);
  auto o4 = rt->make_var<int>(0);
  auto p0 = rt->attach();  // slot 0 → entry 0
  auto p1 = rt->attach();  // slot 1 → entry 1
  auto p2 = rt->attach();  // slot 2 → entry 0 (shared with slot 0)

  RevRuntime::Tx& tl = p1->begin();
  (void)tl.read(o1);
  rt->run(*p0, [&](RevRuntime::Tx& tx) { tx.write(o1, 1); });  // entry 0
  rt->run(*p2, [&](RevRuntime::Tx& tx) { tx.write(o3, 1); });  // entry 0, later
  (void)tl.read(o3);  // REV stamp of o3 dominates o1's successor stamp
  tl.write(o4, 1);
  EXPECT_THROW(p1->commit(), TxAborted);
}

}  // namespace
}  // namespace zstm::cs
