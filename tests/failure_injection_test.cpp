// Failure injection: stalled owners, abandoned transactions, enemy-abort
// storms, and recovery of Z-STM zones after a long transaction dies.
//
// CTest label: `stress` — randomized multi-threaded rounds; run under TSan
// in CI (DESIGN.md §6).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "core/stm.hpp"
#include "stress_env.hpp"
#include "util/rng.hpp"

namespace zstm {
namespace {

TEST(FailureInjection, StalledOwnerIsEventuallyKilledByPolite) {
  // A transaction acquires write ownership and stalls (simulating a
  // descheduled or crashed thread mid-transaction). Polite waits a bounded
  // number of episodes, then kills it — the system stays live.
  lsa::Config cfg{.max_threads = 8};
  cfg.cm_policy = cm::Policy::kPolite;
  lsa::Runtime rt(cfg);
  auto x = rt.make_var<int>(0);

  auto staller = rt.attach();
  lsa::Tx& ts = staller->begin();
  ts.write(x, 99);  // owns x, never commits

  std::atomic<bool> done{false};
  std::thread worker([&] {
    auto th = rt.attach();
    rt.run(*th, [&](lsa::Tx& tx) { tx.write(x, 1); });
    done.store(true, std::memory_order_release);
  });
  worker.join();
  EXPECT_TRUE(done.load());
  EXPECT_THROW(staller->commit(), lsa::TxAborted);  // victim learns its fate
  EXPECT_GE(rt.stats()[util::Counter::kCmKills], 1u);
}

TEST(FailureInjection, AbandonedContextReleasesOwnershipOnDestruction) {
  lsa::Runtime rt(lsa::Config{.max_threads = 8});
  auto x = rt.make_var<int>(0);
  {
    auto ctx = rt.attach();
    lsa::Tx& tx = ctx->begin();
    tx.write(x, 123);
  }  // destroyed mid-transaction: ownership must be released
  auto th = rt.attach();
  // If the locator were leaked in an active state, this would deadlock or
  // spuriously conflict forever.
  rt.run(*th, [&](lsa::Tx& tx) { tx.write(x, 1); });
  int seen = 0;
  rt.run(*th, [&](lsa::Tx& tx) { seen = tx.read(x); });
  EXPECT_EQ(seen, 1);
}

TEST(FailureInjection, EnemyAbortStormPreservesCounts) {
  // Aggressive CM on a single hot object: maximal enemy-abort traffic must
  // not lose or duplicate increments.
  lsa::Config cfg{.max_threads = 8};
  cfg.cm_policy = cm::Policy::kAggressive;
  lsa::Runtime rt(cfg);
  auto x = rt.make_var<long>(0);
  constexpr int kThreads = 4;
  const int kIncrements = test_env::stress_rounds(2000);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      auto th = rt.attach();
      for (int i = 0; i < kIncrements; ++i) {
        rt.run(*th, [&](lsa::Tx& tx) { tx.write(x) += 1; });
      }
    });
  }
  for (auto& w : workers) w.join();
  auto th = rt.attach();
  long final_value = 0;
  rt.run(*th, [&](lsa::Tx& tx) { final_value = tx.read(x); });
  EXPECT_EQ(final_value, kThreads * kIncrements);
}

TEST(FailureInjection, AbortedLongRetiresItsOwnZone) {
  // A long transaction stamps objects with its zone and then dies. Before
  // PR 8 the zone stayed "active" until the *next* long commit moved CT —
  // if no long ever came, shorts crossing the dead zone livelocked forever
  // (DESIGN.md §11.2). The abort path now retires the claimed zone itself
  // (CT <- max(CT, T.zc), the empty transaction committing in zone order).
  zl::Runtime rt;
  auto o1 = rt.make_var<int>(0);
  auto o2 = rt.make_var<int>(0);
  auto pl = rt.attach();
  auto ps = rt.attach();

  zl::LongTx& dead = pl->begin_long();  // zc = 1
  (void)dead.read(o1);                  // o1.zc = 1
  EXPECT_THROW(dead.abort(), zl::TxAborted);

  // The abort already moved CT past zone 1: a crossing short sees both
  // zones in the past and commits without waiting for any future long.
  EXPECT_EQ(rt.commit_time(), 1u);
  rt.run_short(*ps, [&](zl::ShortTx& tx) {
    (void)tx.read(o1);
    (void)tx.read(o2);
  });

  // A later long transaction still advances CT past the retired zone.
  rt.run_long(*pl, [&](zl::LongTx& tx) { (void)tx.read(o2); });
  EXPECT_EQ(rt.commit_time(), 2u);
}

TEST(FailureInjection, SstmSurvivesKilledReaders) {
  // Readers registered in visible-reader lists get enemy-killed mid-flight
  // by cycle resolution or CM; the lists must never dangle (descriptors are
  // runtime-retained) and the system must stay consistent.
  sstm::Config cfg{.max_threads = 16};
  cfg.cm_policy = cm::Policy::kAggressive;
  sstm::Runtime rt(cfg);
  auto x = rt.make_var<long>(0);
  auto y = rt.make_var<long>(0);

  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      auto th = rt.attach();
      util::Xorshift rng(static_cast<std::uint64_t>(t) + 911);
      for (int i = 0, n = test_env::stress_rounds(1000); i < n; ++i) {
        rt.run(*th, [&](sstm::Tx& tx) {
          if (rng.chance(0.5)) {
            tx.write(x) += tx.read(y);
          } else {
            tx.write(y) += 1;
          }
        });
      }
    });
  }
  for (auto& w : workers) w.join();
  auto th = rt.attach();
  rt.run(*th, [&](sstm::Tx& tx) {
    EXPECT_GE(tx.read(y), 0L);
  });
}

TEST(FailureInjection, ZShortStormAroundAbortingLongs) {
  // Long transactions abort ~half the time mid-flight; shorts hammer the
  // same objects. Money must be conserved throughout.
  zl::Runtime rt{[] {
    zl::Config c;
    c.lsa.max_threads = 16;
    return c;
  }()};
  constexpr int kAccounts = 16;
  constexpr long kInitial = 20;
  std::vector<lsa::Var<long>> accounts;
  for (int i = 0; i < kAccounts; ++i) accounts.push_back(rt.make_var<long>(kInitial));

  // The long-runner must outlive every transfer thread: a short crossing a
  // dead (aborted) long's zone only unblocks when a later long commits.
  std::atomic<int> transfers_done{0};
  constexpr int kTransferThreads = 2;
  std::vector<std::thread> workers;
  for (int t = 0; t < kTransferThreads; ++t) {
    workers.emplace_back([&, t] {
      auto th = rt.attach();
      util::Xorshift rng(static_cast<std::uint64_t>(t) + 71);
      for (int i = 0, n = test_env::stress_rounds(1200); i < n; ++i) {
        const auto from = rng.next_below(kAccounts);
        auto to = rng.next_below(kAccounts);
        if (to == from) to = (to + 1) % kAccounts;
        rt.run_short(*th, [&](zl::ShortTx& tx) {
          tx.write(accounts[from]) -= 1;
          tx.write(accounts[to]) += 1;
        });
      }
      transfers_done.fetch_add(1, std::memory_order_acq_rel);
    });
  }
  workers.emplace_back([&] {
    auto th = rt.attach();
    util::Xorshift rng(1234);
    while (transfers_done.load(std::memory_order_acquire) <
           kTransferThreads) {
      zl::LongTx& tl = th->begin_long();
      try {
        long sum = 0;
        const std::size_t n = rng.chance(0.5) ? kAccounts : kAccounts / 2;
        for (std::size_t i = 0; i < n; ++i) sum += tl.read(accounts[i]);
        if (rng.chance(0.5)) {
          tl.abort();  // die mid-flight, leaving a dead zone behind
        } else {
          th->commit_long();
        }
      } catch (const zl::TxAborted&) {
        // expected half the time
      }
    }
  });
  for (auto& w : workers) w.join();

  auto th = rt.attach();
  long total = 0;
  rt.run_long(*th, [&](zl::LongTx& tx) {
    total = 0;
    for (auto& a : accounts) total += tx.read(a);
  });
  EXPECT_EQ(total, kAccounts * kInitial);
}

}  // namespace
}  // namespace zstm
