// Unit tests for the contention-manager policies (§4.1 / DSTM [4]).
//
// CTest label: `unit` (DESIGN.md §6).
#include <gtest/gtest.h>

#include <memory>

#include "cm/contention_manager.hpp"

namespace zstm::cm {
namespace {

using runtime::TxClass;
using runtime::TxDescBase;

class PlainDesc : public TxDescBase {
 public:
  using TxDescBase::TxDescBase;
};

std::unique_ptr<PlainDesc> make_desc(std::uint64_t id,
                                      std::uint64_t start = 0,
                                      std::uint64_t work = 0) {
  auto d = std::make_unique<PlainDesc>(id, 0, TxClass::kShort);
  d->set_start_ticks(start);
  d->add_work(work);
  return d;
}

TEST(Cm, FactoryProducesEveryPolicy) {
  for (Policy p : {Policy::kAggressive, Policy::kSuicide, Policy::kPolite,
                   Policy::kKarma, Policy::kTimestamp, Policy::kGreedy,
                   Policy::kPolka}) {
    auto mgr = make_manager(p);
    ASSERT_NE(mgr, nullptr);
    EXPECT_EQ(mgr->name(), policy_name(p));
  }
}

TEST(Cm, PolicyNamesAreDistinct) {
  EXPECT_STRNE(policy_name(Policy::kAggressive), policy_name(Policy::kSuicide));
  EXPECT_STRNE(policy_name(Policy::kKarma), policy_name(Policy::kTimestamp));
}

TEST(Cm, AggressiveAlwaysKillsOther) {
  auto mgr = make_manager(Policy::kAggressive);
  auto me = make_desc(1);
  auto other = make_desc(2);
  for (std::uint32_t a = 0; a < 5; ++a) {
    EXPECT_EQ(mgr->arbitrate(*me, *other, a), Decision::kAbortOther);
  }
}

TEST(Cm, SuicideAlwaysKillsSelf) {
  auto mgr = make_manager(Policy::kSuicide);
  auto me = make_desc(1);
  auto other = make_desc(2);
  EXPECT_EQ(mgr->arbitrate(*me, *other, 0), Decision::kAbortSelf);
  EXPECT_EQ(mgr->arbitrate(*me, *other, 100), Decision::kAbortSelf);
}

TEST(Cm, PoliteWaitsThenEscalates) {
  auto mgr = make_manager(Policy::kPolite);
  auto me = make_desc(1);
  auto other = make_desc(2);
  EXPECT_EQ(mgr->arbitrate(*me, *other, 0), Decision::kWait);
  EXPECT_EQ(mgr->arbitrate(*me, *other, 7), Decision::kWait);
  EXPECT_EQ(mgr->arbitrate(*me, *other, 8), Decision::kAbortOther);
  EXPECT_EQ(mgr->arbitrate(*me, *other, 100), Decision::kAbortOther);
}

TEST(Cm, KarmaRicherTransactionWinsImmediately) {
  auto mgr = make_manager(Policy::kKarma);
  auto me = make_desc(1, 0, /*work=*/50);
  auto other = make_desc(2, 0, /*work=*/10);
  EXPECT_EQ(mgr->arbitrate(*me, *other, 0), Decision::kAbortOther);
}

TEST(Cm, KarmaPoorerTransactionWaitsOutTheGap) {
  auto mgr = make_manager(Policy::kKarma);
  auto me = make_desc(1, 0, /*work=*/10);
  auto other = make_desc(2, 0, /*work=*/15);
  EXPECT_EQ(mgr->arbitrate(*me, *other, 0), Decision::kWait);
  EXPECT_EQ(mgr->arbitrate(*me, *other, 4), Decision::kWait);
  // Patience accumulated ≥ work gap: now the requester may kill.
  EXPECT_EQ(mgr->arbitrate(*me, *other, 5), Decision::kAbortOther);
}

TEST(Cm, KarmaEqualWorkFavorsRequester) {
  auto mgr = make_manager(Policy::kKarma);
  auto me = make_desc(1, 0, 10);
  auto other = make_desc(2, 0, 10);
  EXPECT_EQ(mgr->arbitrate(*me, *other, 0), Decision::kAbortOther);
}

TEST(Cm, TimestampOlderWins) {
  auto mgr = make_manager(Policy::kTimestamp);
  auto old_tx = make_desc(1, /*start=*/5);
  auto young_tx = make_desc(2, /*start=*/9);
  EXPECT_EQ(mgr->arbitrate(*old_tx, *young_tx, 0), Decision::kAbortOther);
}

TEST(Cm, TimestampYoungerWaitsThenSelfAborts) {
  auto mgr = make_manager(Policy::kTimestamp);
  auto old_tx = make_desc(1, 5);
  auto young_tx = make_desc(2, 9);
  EXPECT_EQ(mgr->arbitrate(*young_tx, *old_tx, 0), Decision::kWait);
  EXPECT_EQ(mgr->arbitrate(*young_tx, *old_tx, 15), Decision::kWait);
  EXPECT_EQ(mgr->arbitrate(*young_tx, *old_tx, 16), Decision::kAbortSelf);
}

TEST(Cm, GreedyOlderRequesterWins) {
  auto mgr = make_manager(Policy::kGreedy);
  auto old_tx = make_desc(1, /*start=*/3);
  auto young_tx = make_desc(2, /*start=*/8);
  EXPECT_EQ(mgr->arbitrate(*old_tx, *young_tx, 0), Decision::kAbortOther);
}

TEST(Cm, GreedyYoungerRequesterWaitsOnRunningOwner) {
  auto mgr = make_manager(Policy::kGreedy);
  auto old_tx = make_desc(1, 3);
  auto young_tx = make_desc(2, 8);
  // The elder is running (not waiting): the younger requester must wait,
  // however many times it re-examines the conflict.
  EXPECT_EQ(mgr->arbitrate(*young_tx, *old_tx, 0), Decision::kWait);
  EXPECT_EQ(mgr->arbitrate(*young_tx, *old_tx, 50), Decision::kWait);
}

TEST(Cm, GreedyWaitingOwnerForfeitsPriority) {
  auto mgr = make_manager(Policy::kGreedy);
  auto old_tx = make_desc(1, 3);
  auto young_tx = make_desc(2, 8);
  old_tx->set_waiting(true);  // the elder is blocked on somebody else
  EXPECT_EQ(mgr->arbitrate(*young_tx, *old_tx, 0), Decision::kAbortOther);
  old_tx->set_waiting(false);
  EXPECT_EQ(mgr->arbitrate(*young_tx, *old_tx, 0), Decision::kWait);
}

TEST(Cm, PolkaRicherTransactionWinsImmediately) {
  auto mgr = make_manager(Policy::kPolka);
  auto me = make_desc(1, 0, /*work=*/50);
  auto other = make_desc(2, 0, /*work=*/10);
  EXPECT_EQ(mgr->arbitrate(*me, *other, 0), Decision::kAbortOther);
}

TEST(Cm, PolkaPatienceGrowsExponentially) {
  auto mgr = make_manager(Policy::kPolka);
  auto me = make_desc(1, 0, /*work=*/0);
  auto other = make_desc(2, 0, /*work=*/100);
  // Patience 2^attempt must *exceed* the work gap of 100: attempts 0..6
  // wait (1, 2, ..., 64), attempt 7 kills (128 > 100).
  EXPECT_EQ(mgr->arbitrate(*me, *other, 0), Decision::kWait);
  EXPECT_EQ(mgr->arbitrate(*me, *other, 6), Decision::kWait);
  EXPECT_EQ(mgr->arbitrate(*me, *other, 7), Decision::kAbortOther);
}

TEST(Cm, DecisionNamesReadable) {
  EXPECT_STREQ(to_string(Decision::kAbortOther), "abort-other");
  EXPECT_STREQ(to_string(Decision::kAbortSelf), "abort-self");
  EXPECT_STREQ(to_string(Decision::kWait), "wait");
}

// Descriptor status-protocol tests (the commit CAS discipline every STM
// relies on).

TEST(TxDesc, EnemyAbortOnlyWhileActive) {
  PlainDesc d(1, 0, TxClass::kShort);
  EXPECT_EQ(d.status(), runtime::TxStatus::kActive);
  ASSERT_TRUE(d.begin_commit());
  EXPECT_EQ(d.status(), runtime::TxStatus::kCommitting);
  EXPECT_FALSE(d.abort_by_enemy());  // immune once committing
  d.finish_commit();
  EXPECT_EQ(d.status(), runtime::TxStatus::kCommitted);
  EXPECT_FALSE(d.abort_by_enemy());
}

TEST(TxDesc, EnemyAbortWinsOverLateCommit) {
  PlainDesc d(1, 0, TxClass::kShort);
  ASSERT_TRUE(d.abort_by_enemy());
  EXPECT_EQ(d.status(), runtime::TxStatus::kAborted);
  EXPECT_FALSE(d.begin_commit());  // victim discovers the abort
}

TEST(TxDesc, FinishAbortFromCommitting) {
  PlainDesc d(1, 0, TxClass::kShort);
  ASSERT_TRUE(d.begin_commit());
  d.finish_abort();
  EXPECT_EQ(d.status(), runtime::TxStatus::kAborted);
}

TEST(TxDesc, FinishAbortIdempotentOnFinalStates) {
  PlainDesc d(1, 0, TxClass::kShort);
  ASSERT_TRUE(d.begin_commit());
  d.finish_commit();
  d.finish_abort();  // must not demote a committed transaction
  EXPECT_EQ(d.status(), runtime::TxStatus::kCommitted);
}

TEST(TxDesc, StatusNamesReadable) {
  EXPECT_STREQ(runtime::to_string(runtime::TxStatus::kActive), "active");
  EXPECT_STREQ(runtime::to_string(runtime::TxStatus::kCommitted), "committed");
}

}  // namespace
}  // namespace zstm::cm
