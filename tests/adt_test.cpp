// adt::TMap / adt::TSet unit tests: sequential semantics over a typed
// façade and over AnyStm for every variant name, plus a small concurrent
// invariant run (the heavy service-level battery lives in
// kv_server_test.cpp).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <optional>
#include <set>
#include <thread>
#include <vector>

#include "adt/tmap.hpp"
#include "adt/tqueue.hpp"
#include "api/stm_api.hpp"
#include "util/rng.hpp"

namespace {

using zstm::api::AnyStm;
using zstm::api::CommonConfig;
using zstm::api::TxKind;

template <typename S>
void sequential_map_checks(S& stm) {
  zstm::adt::TMap<S> map(stm, 8);

  // Insert + lookup + overwrite.
  stm.run(TxKind::kUpdate, [&](auto& tx) {
    for (std::uint64_t k = 0; k < 100; ++k) {
      EXPECT_TRUE(map.put(tx, k, static_cast<std::int64_t>(k * 10)));
    }
  });
  stm.run(TxKind::kReadOnly, [&](auto& tx) {
    for (std::uint64_t k = 0; k < 100; ++k) {
      auto v = map.get(tx, k);
      ASSERT_TRUE(v.has_value());
      EXPECT_EQ(*v, static_cast<std::int64_t>(k * 10));
    }
    EXPECT_FALSE(map.get(tx, 100).has_value());
  });
  stm.run(TxKind::kUpdate, [&](auto& tx) {
    EXPECT_FALSE(map.put(tx, 7, -1));  // overwrite, not insert
  });

  // Erase half, audit the rest.
  stm.run(TxKind::kUpdate, [&](auto& tx) {
    for (std::uint64_t k = 0; k < 100; k += 2) EXPECT_TRUE(map.erase(tx, k));
    EXPECT_FALSE(map.erase(tx, 0));  // already gone
  });
  stm.run(TxKind::kLong, [&](auto& tx) {
    auto a = map.audit(tx);
    EXPECT_EQ(a.size, 50u);
    EXPECT_TRUE(a.sorted);
    std::set<std::uint64_t> seen;
    map.for_each(tx, [&](std::uint64_t k, std::int64_t v) {
      seen.insert(k);
      EXPECT_EQ(k % 2, 1u);
      EXPECT_EQ(v, k == 7 ? -1 : static_cast<std::int64_t>(k * 10));
    });
    EXPECT_EQ(seen.size(), 50u);
  });
}

TEST(Adt, SequentialMapTypedFacade) {
  zstm::api::LsaStm stm;
  sequential_map_checks(stm);
}

TEST(Adt, SequentialMapEveryVariant) {
  for (const std::string& name : zstm::api::variant_names()) {
    SCOPED_TRACE(name);
    AnyStm stm = AnyStm::make(name);
    sequential_map_checks(stm);
  }
}

TEST(Adt, InsertScratchReusedAcrossRetries) {
  // A body that deliberately aborts once must not leak one node per
  // attempt when given a scratch: the retry writes the same node.
  AnyStm stm = AnyStm::make("lsa");
  zstm::adt::TMap<AnyStm> map(stm, 4);
  zstm::adt::TMap<AnyStm>::Scratch scratch;
  int attempts = 0;
  stm.run(TxKind::kUpdate, [&](auto& tx) {
    ++attempts;
    const bool inserted = map.put(tx, 42, 1, &scratch);
    if (attempts == 1) tx.abort();
    EXPECT_TRUE(inserted);
  });
  EXPECT_GE(attempts, 2);
  EXPECT_TRUE(scratch.allocated);
  stm.run(TxKind::kReadOnly, [&](auto& tx) {
    auto v = map.get(tx, 42);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 1);
  });
}

TEST(Adt, SetSemantics) {
  AnyStm stm = AnyStm::make("zl");
  zstm::adt::TSet<AnyStm> set(stm, 4);
  stm.run(TxKind::kUpdate, [&](auto& tx) {
    EXPECT_TRUE(set.insert(tx, 3));
    EXPECT_TRUE(set.insert(tx, 1));
    EXPECT_FALSE(set.insert(tx, 3));  // duplicate
    EXPECT_TRUE(set.contains(tx, 1));
    EXPECT_FALSE(set.contains(tx, 2));
    EXPECT_TRUE(set.erase(tx, 1));
    EXPECT_FALSE(set.erase(tx, 1));
  });
  stm.run(TxKind::kLong, [&](auto& tx) {
    auto a = set.audit(tx);
    EXPECT_EQ(a.size, 1u);
    EXPECT_TRUE(a.sorted);
  });
}

TEST(Adt, ConcurrentNetInsertsMatchSize) {
  // 4 mutator threads over a small keyrange; final audited size must equal
  // the net successful inserts. Exercises bucket-level conflicts.
  AnyStm stm = AnyStm::make("lsa");
  zstm::adt::TSet<AnyStm> set(stm, 8);
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 400;
  std::atomic<long> net{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      zstm::util::Xorshift rng(static_cast<std::uint64_t>(t) + 99);
      long my_net = 0;
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::uint64_t key = rng.next_below(64);
        if (rng.chance(0.5)) {
          bool ins = false;
          zstm::adt::TSet<AnyStm>::Scratch scratch;
          stm.run(TxKind::kUpdate,
                  [&](auto& tx) { ins = set.insert(tx, key, &scratch); });
          my_net += ins ? 1 : 0;
        } else {
          bool rm = false;
          stm.run(TxKind::kUpdate,
                  [&](auto& tx) { rm = set.erase(tx, key); });
          my_net -= rm ? 1 : 0;
        }
      }
      net.fetch_add(my_net);
    });
  }
  for (auto& w : workers) w.join();
  zstm::adt::TSet<AnyStm>::AuditResult a;
  stm.run(TxKind::kLong, [&](auto& tx) { a = set.audit(tx); });
  EXPECT_TRUE(a.sorted);
  EXPECT_EQ(static_cast<long>(a.size), net.load());
}

template <typename S>
void sequential_queue_checks(S& stm) {
  zstm::adt::TQueue<S> q(stm);

  stm.run(TxKind::kReadOnly, [&](auto& tx) {
    EXPECT_TRUE(q.empty(tx));
    EXPECT_FALSE(q.front(tx).has_value());
    EXPECT_FALSE(q.dequeue(tx).has_value());
    EXPECT_EQ(q.size(tx), 0u);
  });

  // FIFO across transactions.
  for (int i = 0; i < 10; ++i) {
    stm.run(TxKind::kUpdate, [&](auto& tx) { q.enqueue(tx, i); });
  }
  stm.run(TxKind::kReadOnly, [&](auto& tx) {
    EXPECT_EQ(q.size(tx), 10u);
    auto f = q.front(tx);
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(*f, 0);
  });
  for (int i = 0; i < 10; ++i) {
    stm.run(TxKind::kUpdate, [&](auto& tx) {
      auto v = q.dequeue(tx);
      ASSERT_TRUE(v.has_value());
      EXPECT_EQ(*v, i);
    });
  }
  stm.run(TxKind::kReadOnly,
          [&](auto& tx) { EXPECT_TRUE(q.empty(tx)); });

  // FIFO within one transaction, including the drain-to-empty and
  // refill-from-empty anchor transitions.
  stm.run(TxKind::kUpdate, [&](auto& tx) {
    q.enqueue(tx, 100);
    q.enqueue(tx, 101);
    EXPECT_EQ(q.dequeue(tx).value_or(-1), 100);
    EXPECT_EQ(q.dequeue(tx).value_or(-1), 101);
    EXPECT_TRUE(q.empty(tx));
    q.enqueue(tx, 102);
    EXPECT_EQ(q.front(tx).value_or(-1), 102);
  });
  stm.run(TxKind::kLong, [&](auto& tx) {
    std::vector<std::int64_t> seen;
    q.for_each(tx, [&](std::int64_t v) { seen.push_back(v); });
    ASSERT_EQ(seen.size(), 1u);
    EXPECT_EQ(seen[0], 102);
  });
}

TEST(Adt, SequentialQueueTypedFacade) {
  zstm::api::LsaStm stm;
  sequential_queue_checks(stm);
}

TEST(Adt, SequentialQueueEveryVariant) {
  for (const std::string& name : zstm::api::variant_names()) {
    SCOPED_TRACE(name);
    AnyStm stm = AnyStm::make(name);
    sequential_queue_checks(stm);
  }
}

TEST(Adt, QueueScratchReusedAcrossRetries) {
  // Mirror of InsertScratchReusedAcrossRetries: a deliberately aborted
  // first attempt must reuse the pre-allocated node, not leak one.
  AnyStm stm = AnyStm::make("lsa");
  zstm::adt::TQueue<AnyStm> q(stm);
  zstm::adt::TQueue<AnyStm>::Scratch scratch;
  int attempts = 0;
  stm.run(TxKind::kUpdate, [&](auto& tx) {
    ++attempts;
    q.enqueue(tx, 7, &scratch);
    if (attempts == 1) tx.abort();
  });
  EXPECT_GE(attempts, 2);
  EXPECT_TRUE(scratch.allocated);
  stm.run(TxKind::kReadOnly, [&](auto& tx) {
    EXPECT_EQ(q.size(tx), 1u);
    EXPECT_EQ(q.front(tx).value_or(-1), 7);
  });
}

TEST(Adt, ConcurrentQueueMpmc) {
  // 2 producers x 2 consumers. Every enqueued value is dequeued exactly
  // once, and each consumer sees any single producer's values in
  // increasing order (per-producer FIFO is preserved under a linearizable
  // queue regardless of how consumers interleave).
  AnyStm stm = AnyStm::make("lsa");
  zstm::adt::TQueue<AnyStm> q(stm);
  constexpr int kProducers = 2;
  constexpr int kConsumers = 2;
  constexpr std::int64_t kPerProducer = 300;

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (std::int64_t i = 0; i < kPerProducer; ++i) {
        const std::int64_t v = static_cast<std::int64_t>(p) * 1000000 + i;
        zstm::adt::TQueue<AnyStm>::Scratch scratch;
        stm.run(TxKind::kUpdate,
                [&](auto& tx) { q.enqueue(tx, v, &scratch); });
      }
    });
  }

  std::atomic<std::int64_t> taken{0};
  std::vector<std::vector<std::int64_t>> got(kConsumers);
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&, c] {
      while (taken.load() < kProducers * kPerProducer) {
        std::optional<std::int64_t> v;
        stm.run(TxKind::kUpdate, [&](auto& tx) { v = q.dequeue(tx); });
        if (v.has_value()) {
          got[static_cast<std::size_t>(c)].push_back(*v);
          taken.fetch_add(1);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  std::set<std::int64_t> all;
  for (int c = 0; c < kConsumers; ++c) {
    std::int64_t last[kProducers];
    for (int p = 0; p < kProducers; ++p) last[p] = -1;
    for (const std::int64_t v : got[static_cast<std::size_t>(c)]) {
      EXPECT_TRUE(all.insert(v).second) << "value dequeued twice: " << v;
      const int p = static_cast<int>(v / 1000000);
      ASSERT_LT(p, kProducers);
      EXPECT_GT(v, last[p]) << "per-producer FIFO violated";
      last[p] = v;
    }
  }
  EXPECT_EQ(all.size(),
            static_cast<std::size_t>(kProducers * kPerProducer));
  stm.run(TxKind::kReadOnly, [&](auto& tx) { EXPECT_TRUE(q.empty(tx)); });
}

}  // namespace
