// adt::TMap / adt::TSet unit tests: sequential semantics over a typed
// façade and over AnyStm for every variant name, plus a small concurrent
// invariant run (the heavy service-level battery lives in
// kv_server_test.cpp).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <optional>
#include <set>
#include <thread>
#include <vector>

#include "adt/tmap.hpp"
#include "api/stm_api.hpp"
#include "util/rng.hpp"

namespace {

using zstm::api::AnyStm;
using zstm::api::CommonConfig;
using zstm::api::TxKind;

template <typename S>
void sequential_map_checks(S& stm) {
  zstm::adt::TMap<S> map(stm, 8);

  // Insert + lookup + overwrite.
  stm.run(TxKind::kUpdate, [&](auto& tx) {
    for (std::uint64_t k = 0; k < 100; ++k) {
      EXPECT_TRUE(map.put(tx, k, static_cast<std::int64_t>(k * 10)));
    }
  });
  stm.run(TxKind::kReadOnly, [&](auto& tx) {
    for (std::uint64_t k = 0; k < 100; ++k) {
      auto v = map.get(tx, k);
      ASSERT_TRUE(v.has_value());
      EXPECT_EQ(*v, static_cast<std::int64_t>(k * 10));
    }
    EXPECT_FALSE(map.get(tx, 100).has_value());
  });
  stm.run(TxKind::kUpdate, [&](auto& tx) {
    EXPECT_FALSE(map.put(tx, 7, -1));  // overwrite, not insert
  });

  // Erase half, audit the rest.
  stm.run(TxKind::kUpdate, [&](auto& tx) {
    for (std::uint64_t k = 0; k < 100; k += 2) EXPECT_TRUE(map.erase(tx, k));
    EXPECT_FALSE(map.erase(tx, 0));  // already gone
  });
  stm.run(TxKind::kLong, [&](auto& tx) {
    auto a = map.audit(tx);
    EXPECT_EQ(a.size, 50u);
    EXPECT_TRUE(a.sorted);
    std::set<std::uint64_t> seen;
    map.for_each(tx, [&](std::uint64_t k, std::int64_t v) {
      seen.insert(k);
      EXPECT_EQ(k % 2, 1u);
      EXPECT_EQ(v, k == 7 ? -1 : static_cast<std::int64_t>(k * 10));
    });
    EXPECT_EQ(seen.size(), 50u);
  });
}

TEST(Adt, SequentialMapTypedFacade) {
  zstm::api::LsaStm stm;
  sequential_map_checks(stm);
}

TEST(Adt, SequentialMapEveryVariant) {
  for (const std::string& name : zstm::api::variant_names()) {
    SCOPED_TRACE(name);
    AnyStm stm = AnyStm::make(name);
    sequential_map_checks(stm);
  }
}

TEST(Adt, InsertScratchReusedAcrossRetries) {
  // A body that deliberately aborts once must not leak one node per
  // attempt when given a scratch: the retry writes the same node.
  AnyStm stm = AnyStm::make("lsa");
  zstm::adt::TMap<AnyStm> map(stm, 4);
  zstm::adt::TMap<AnyStm>::Scratch scratch;
  int attempts = 0;
  stm.run(TxKind::kUpdate, [&](auto& tx) {
    ++attempts;
    const bool inserted = map.put(tx, 42, 1, &scratch);
    if (attempts == 1) tx.abort();
    EXPECT_TRUE(inserted);
  });
  EXPECT_GE(attempts, 2);
  EXPECT_TRUE(scratch.allocated);
  stm.run(TxKind::kReadOnly, [&](auto& tx) {
    auto v = map.get(tx, 42);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 1);
  });
}

TEST(Adt, SetSemantics) {
  AnyStm stm = AnyStm::make("zl");
  zstm::adt::TSet<AnyStm> set(stm, 4);
  stm.run(TxKind::kUpdate, [&](auto& tx) {
    EXPECT_TRUE(set.insert(tx, 3));
    EXPECT_TRUE(set.insert(tx, 1));
    EXPECT_FALSE(set.insert(tx, 3));  // duplicate
    EXPECT_TRUE(set.contains(tx, 1));
    EXPECT_FALSE(set.contains(tx, 2));
    EXPECT_TRUE(set.erase(tx, 1));
    EXPECT_FALSE(set.erase(tx, 1));
  });
  stm.run(TxKind::kLong, [&](auto& tx) {
    auto a = set.audit(tx);
    EXPECT_EQ(a.size, 1u);
    EXPECT_TRUE(a.sorted);
  });
}

TEST(Adt, ConcurrentNetInsertsMatchSize) {
  // 4 mutator threads over a small keyrange; final audited size must equal
  // the net successful inserts. Exercises bucket-level conflicts.
  AnyStm stm = AnyStm::make("lsa");
  zstm::adt::TSet<AnyStm> set(stm, 8);
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 400;
  std::atomic<long> net{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      zstm::util::Xorshift rng(static_cast<std::uint64_t>(t) + 99);
      long my_net = 0;
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::uint64_t key = rng.next_below(64);
        if (rng.chance(0.5)) {
          bool ins = false;
          zstm::adt::TSet<AnyStm>::Scratch scratch;
          stm.run(TxKind::kUpdate,
                  [&](auto& tx) { ins = set.insert(tx, key, &scratch); });
          my_net += ins ? 1 : 0;
        } else {
          bool rm = false;
          stm.run(TxKind::kUpdate,
                  [&](auto& tx) { rm = set.erase(tx, key); });
          my_net -= rm ? 1 : 0;
        }
      }
      net.fetch_add(my_net);
    });
  }
  for (auto& w : workers) w.join();
  zstm::adt::TSet<AnyStm>::AuditResult a;
  stm.run(TxKind::kLong, [&](auto& tx) { a = set.audit(tx); });
  EXPECT_TRUE(a.sorted);
  EXPECT_EQ(static_cast<long>(a.size), net.load());
}

}  // namespace
