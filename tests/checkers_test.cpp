// Self-tests for the offline consistency checkers on hand-built histories
// with known verdicts.
//
// CTest label: `smoke` — fast canary, gates CI before the stress suites
// (DESIGN.md §6).
#include <gtest/gtest.h>

#include "history/checkers.hpp"

namespace zstm::history {
namespace {

using runtime::TxClass;

struct Builder {
  History h;
  std::uint64_t next_tick = 1;

  Builder() { h.txs.reserve(64); }  // keep tx() references stable

  TxRecord& tx(std::uint64_t id, int slot, TxClass cls = TxClass::kShort) {
    TxRecord r;
    r.tx_id = id;
    r.thread_slot = slot;
    r.tx_class = cls;
    r.committed = true;
    r.begin_seq = next_tick++;
    r.end_seq = next_tick++;
    h.txs.push_back(r);
    return h.txs.back();
  }
};

TEST(Checkers, EmptyHistoryPassesEverything) {
  History h;
  EXPECT_TRUE(check_serializable(h));
  EXPECT_TRUE(check_strictly_serializable(h));
  EXPECT_TRUE(check_z_linearizable(h));
}

TEST(Checkers, SimpleReadsFromChainIsSerializable) {
  Builder b;
  auto& t1 = b.tx(1, 0);
  t1.writes.push_back({/*obj=*/1, /*version=*/10, /*parent=*/0});
  auto& t2 = b.tx(2, 1);
  t2.reads.push_back({1, 10});
  t2.writes.push_back({1, 20, 10});
  auto& t3 = b.tx(3, 2);
  t3.reads.push_back({1, 20});
  EXPECT_TRUE(check_serializable(b.h));
  EXPECT_TRUE(check_strictly_serializable(b.h));
}

TEST(Checkers, WriteSkewCycleIsNotSerializable) {
  // T1 reads x0 writes y1; T2 reads y0 writes x1 — rw edges both ways.
  Builder b;
  auto& t1 = b.tx(1, 0);
  t1.reads.push_back({/*x*/ 1, 0});
  t1.writes.push_back({/*y*/ 2, 21, 0});
  auto& t2 = b.tx(2, 1);
  t2.reads.push_back({2, 0});
  t2.writes.push_back({1, 11, 0});
  auto res = check_serializable(b.h);
  EXPECT_FALSE(res);
  EXPECT_NE(res.reason.find("cycle"), std::string::npos);
}

TEST(Checkers, AbortedTransactionsAreIgnored) {
  Builder b;
  auto& t1 = b.tx(1, 0);
  t1.reads.push_back({1, 0});
  t1.writes.push_back({2, 21, 0});
  auto& t2 = b.tx(2, 1);
  t2.reads.push_back({2, 0});
  t2.writes.push_back({1, 11, 0});
  t2.committed = false;  // the cycle partner never committed
  EXPECT_TRUE(check_serializable(b.h));
}

TEST(Checkers, DuplicateVersionIdsAreMalformed) {
  Builder b;
  auto& t1 = b.tx(1, 0);
  t1.writes.push_back({1, 10, 0});
  auto& t2 = b.tx(2, 1);
  t2.writes.push_back({2, 10, 0});  // same version id on another object
  EXPECT_FALSE(check_serializable(b.h));
}

TEST(Checkers, TwoCommittedChildrenOfOneVersionAreMalformed) {
  Builder b;
  auto& t0 = b.tx(1, 0);
  t0.writes.push_back({1, 10, 0});
  auto& t1 = b.tx(2, 1);
  t1.writes.push_back({1, 20, 10});
  auto& t2 = b.tx(3, 2);
  t2.writes.push_back({1, 30, 10});  // lost update: second child of v10
  EXPECT_FALSE(check_serializable(b.h));
}

TEST(Checkers, TwoInitialChildrenAreMalformed) {
  Builder b;
  auto& t1 = b.tx(1, 0);
  t1.writes.push_back({1, 10, 0});
  auto& t2 = b.tx(2, 1);
  t2.writes.push_back({1, 20, 0});  // also claims to supersede the initial
  EXPECT_FALSE(check_serializable(b.h));
}

TEST(Checkers, StaleReadIsSerializableButNotStrictly) {
  // T1 writes x1 and finishes; T2 starts strictly later yet reads x0:
  // admissible serialization T2 → T1 exists, but it violates real time.
  Builder b;
  auto& t1 = b.tx(1, 0);
  t1.writes.push_back({1, 10, 0});
  auto& t2 = b.tx(2, 1);
  t2.reads.push_back({1, 0});
  EXPECT_TRUE(check_serializable(b.h));
  auto res = check_strictly_serializable(b.h);
  EXPECT_FALSE(res);
}

TEST(Checkers, RealTimeRespectingHistoryIsStrictlySerializable) {
  Builder b;
  auto& t1 = b.tx(1, 0);
  t1.writes.push_back({1, 10, 0});
  auto& t2 = b.tx(2, 1);
  t2.reads.push_back({1, 10});
  EXPECT_TRUE(check_strictly_serializable(b.h));
}

TEST(Checkers, OverlappingTransactionsMayOrderEitherWay) {
  // T2 overlaps T1 in real time, so reading the initial version is fine.
  Builder b;
  auto& t1 = b.tx(1, 0);
  t1.writes.push_back({1, 10, 0});
  auto& t2 = b.tx(2, 1);
  t2.reads.push_back({1, 0});
  t2.begin_seq = t1.begin_seq;  // overlap
  EXPECT_TRUE(check_strictly_serializable(b.h));
}

TEST(Checkers, ProgramOrderCheckIgnoresCrossThreadRealTime) {
  // The stale-read history again: fails strictness, but passes
  // serializability + program order (different threads).
  Builder b;
  auto& t1 = b.tx(1, 0);
  t1.writes.push_back({1, 10, 0});
  auto& t2 = b.tx(2, 1);
  t2.reads.push_back({1, 0});
  EXPECT_FALSE(check_strictly_serializable(b.h));
  EXPECT_TRUE(check_serializable_with_program_order(b.h));
}

TEST(Checkers, ProgramOrderCheckEnforcesSameThreadOrder) {
  // Same shape but on ONE thread: t2 (later in program order) wrote the
  // version t1 read — no serialization can respect both.
  Builder b;
  auto& t1 = b.tx(1, 0);
  auto& t2 = b.tx(2, 0);
  t2.writes.push_back({1, 10, 0});
  t1.reads.push_back({1, 10});
  EXPECT_FALSE(check_serializable_with_program_order(b.h));
  EXPECT_TRUE(check_serializable(b.h));
}

// --- z-linearizability -------------------------------------------------------

TEST(Checkers, ZLongsMustRespectRealTime) {
  // Two long transactions, L1 ends before L2 begins, but L2's effects are
  // read by L1 — impossible to order both ways.
  Builder b;
  auto& l2 = b.tx(2, 1, TxClass::kLong);  // begins/ends first in ticks
  l2.zone = 2;
  auto& l1 = b.tx(1, 0, TxClass::kLong);
  l1.zone = 1;
  // l2 (earlier in real time) reads the version l1 writes.
  l1.writes.push_back({1, 10, 0});
  l2.reads.push_back({1, 10});
  auto res = check_z_linearizable(b.h);
  EXPECT_FALSE(res);
  // Plain serializability is fine (order l1 → l2).
  EXPECT_TRUE(check_serializable(b.h));
}

TEST(Checkers, ZShortsInSameZoneMustRespectRealTime) {
  Builder b;
  auto& s1 = b.tx(1, 0);
  s1.zone = 3;
  auto& s2 = b.tx(2, 1);
  s2.zone = 3;
  // s1 ends before s2 begins, but s1 reads s2's write.
  s2.writes.push_back({1, 10, 0});
  s1.reads.push_back({1, 10});
  EXPECT_FALSE(check_z_linearizable(b.h));
}

TEST(Checkers, ZShortsInDifferentZonesMayReorder) {
  // Identical shape, but the shorts are in different zones: allowed — this
  // is precisely the relaxation z-linearizability grants (§5).
  Builder b;
  auto& s1 = b.tx(1, 0);
  s1.zone = 3;
  auto& s2 = b.tx(2, 1);
  s2.zone = 4;
  s2.writes.push_back({1, 10, 0});
  s1.reads.push_back({1, 10});
  EXPECT_TRUE(check_z_linearizable(b.h));
}

TEST(Checkers, ZProgramOrderWithinThreadIsEnforced) {
  // Same thread slot commits t1 then t2 (program order), but t1 reads
  // t2's write: serialization would have to put t2 first — violates (4).
  Builder b;
  auto& t1 = b.tx(1, 0);
  t1.zone = 1;
  auto& t2 = b.tx(2, 0);
  t2.zone = 2;  // different zones so clause (2) does not fire
  t2.writes.push_back({1, 10, 0});
  t1.reads.push_back({1, 10});
  EXPECT_FALSE(check_z_linearizable(b.h));
}

TEST(Checkers, ZWellFormedMixPasses) {
  Builder b;
  auto& l1 = b.tx(1, 0, TxClass::kLong);
  l1.zone = 1;
  l1.writes.push_back({1, 10, 0});
  auto& s1 = b.tx(2, 1);
  s1.zone = 1;
  s1.reads.push_back({1, 10});
  s1.writes.push_back({2, 20, 0});
  auto& l2 = b.tx(3, 0, TxClass::kLong);
  l2.zone = 2;
  l2.reads.push_back({1, 10});
  l2.reads.push_back({2, 20});
  auto& s2 = b.tx(4, 1);
  s2.zone = 2;
  s2.reads.push_back({2, 20});
  EXPECT_TRUE(check_z_linearizable(b.h));
  EXPECT_TRUE(check_serializable(b.h));
}

// --- causal conditions ----------------------------------------------------------

TxRecord& with_stamp(TxRecord& r, std::vector<std::uint64_t> s) {
  r.stamp = std::move(s);
  return r;
}

TEST(Checkers, CausalRequiresStamps) {
  Builder b;
  auto& t1 = b.tx(1, 0);
  t1.writes.push_back({1, 10, 0});
  EXPECT_FALSE(check_causal_conditions(b.h));
}

TEST(Checkers, CausalHappyPathPasses) {
  Builder b;
  auto& t1 = b.tx(1, 0);
  with_stamp(t1, {1, 0});
  t1.writes.push_back({1, 10, 0});
  auto& t2 = b.tx(2, 1);
  with_stamp(t2, {1, 1});  // dominates t1's stamp
  t2.reads.push_back({1, 10});
  t2.writes.push_back({1, 20, 10});
  EXPECT_TRUE(check_causal_conditions(b.h));
}

TEST(Checkers, CausalReaderMustDominateWriterStamp) {
  Builder b;
  auto& t1 = b.tx(1, 0);
  with_stamp(t1, {1, 0});
  t1.writes.push_back({1, 10, 0});
  auto& t2 = b.tx(2, 1);
  with_stamp(t2, {0, 1});  // concurrent with t1 although it read t1's write
  t2.reads.push_back({1, 10});
  t2.writes.push_back({2, 20, 0});
  auto res = check_causal_conditions(b.h);
  EXPECT_FALSE(res);
  EXPECT_NE(res.reason.find("causality"), std::string::npos);
}

TEST(Checkers, CausalReadOnlyMayEqualWriterStamp) {
  Builder b;
  auto& t1 = b.tx(1, 0);
  with_stamp(t1, {1, 0});
  t1.writes.push_back({1, 10, 0});
  auto& t2 = b.tx(2, 1);
  with_stamp(t2, {1, 0});  // read-only: no own increment (Algorithm 1)
  t2.reads.push_back({1, 10});
  EXPECT_TRUE(check_causal_conditions(b.h));
}

TEST(Checkers, CausalWriteOrderMustMatchStampOrder) {
  Builder b;
  auto& t1 = b.tx(1, 0);
  with_stamp(t1, {2, 0});
  t1.writes.push_back({1, 10, 0});
  auto& t2 = b.tx(2, 1);
  with_stamp(t2, {0, 1});  // concurrent with the parent writer: illegal ww
  t2.writes.push_back({1, 20, 10});
  auto res = check_causal_conditions(b.h);
  EXPECT_FALSE(res);
  EXPECT_NE(res.reason.find("write order"), std::string::npos);
}

TEST(Checkers, CausalValidationInvariantViolationDetected) {
  // t3 read v10; v10's successor v20 was committed *before* t3 with a
  // stamp strictly preceding t3's — Algorithm 1 would have aborted t3.
  Builder b;
  auto& t1 = b.tx(1, 0);
  with_stamp(t1, {1, 0, 0});
  t1.writes.push_back({1, 10, 0});
  auto& t2 = b.tx(2, 1);
  with_stamp(t2, {1, 1, 0});
  t2.reads.push_back({1, 10});
  t2.writes.push_back({1, 20, 10});
  auto& t3 = b.tx(3, 2);
  with_stamp(t3, {1, 1, 1});  // t2.stamp ≺ t3.stamp and t2 ended before t3
  t3.reads.push_back({1, 10});
  t3.writes.push_back({2, 30, 0});
  auto res = check_causal_conditions(b.h);
  EXPECT_FALSE(res);
  EXPECT_NE(res.reason.find("validation"), std::string::npos);
}

TEST(Checkers, CausalSuccessorConcurrentWithReaderIsAllowed) {
  // The Figure 1 essence: the long transaction's read version gets a
  // successor committed earlier whose stamp is *concurrent* with the
  // reader's — causally serializable, so the checker must accept it.
  Builder b;
  auto& t0 = b.tx(1, 0);
  with_stamp(t0, {1, 0, 0});
  t0.writes.push_back({1, 5, 0});  // the version TL will read
  auto& t1 = b.tx(2, 0);
  with_stamp(t1, {2, 0, 0});
  t1.reads.push_back({1, 5});
  t1.writes.push_back({1, 10, 5});  // successor of TL's read version
  auto& tl = b.tx(3, 2);
  with_stamp(tl, {1, 1, 1});  // concurrent with t1's {2,0,0}
  tl.reads.push_back({1, 5});
  tl.writes.push_back({4, 40, 0});
  EXPECT_TRUE(check_causal_conditions(b.h));
}

}  // namespace
}  // namespace zstm::history
