// Unit + stress tests for the epoch-integrated slab allocator
// (src/object/node_pool.hpp, DESIGN.md §7): same-thread reuse, the
// cross-thread MPSC return path, the slot-release drain that keeps pools
// alive across thread churn, inline (SBO) vs heap payload storage, and a
// TSan-targeted stress round mixing pooled allocation with concurrent
// prunes.
//
// CTest label: `unit` (DESIGN.md §6); the stress round scales with
// ZSTM_STRESS_ROUNDS and runs under the TSan CI job like every suite.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "lsa/lsa.hpp"
#include "object/node_pool.hpp"
#include "object/versioned.hpp"
#include "runtime/payload.hpp"
#include "stress_env.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/thread_registry.hpp"

namespace zstm::object {
namespace {

struct Node {
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

struct Rig {
  Rig() : registry(8), stats(registry), pool(registry, &stats) {}
  util::ThreadRegistry registry;
  util::StatsDomain stats;
  NodePool pool;
};

// The pool-mechanics tests are meaningless when ZSTM_POOL=0 forces the
// heap everywhere (e.g. an ASan run) — skip rather than fail.
#define ZSTM_REQUIRE_POOL()                                   \
  if (!NodePool::env_enabled()) {                             \
    GTEST_SKIP() << "ZSTM_POOL=0: slab pooling disabled";     \
  }                                                           \
  static_cast<void>(0)

TEST(NodePool, SameThreadReleaseIsReusedLifo) {
  ZSTM_REQUIRE_POOL();
  Rig rig;
  ASSERT_TRUE(rig.pool.enabled());
  auto reg = rig.registry.attach();
  const int s = reg.slot();

  Node* n1 = rig.pool.create<Node>(s);
  rig.pool.destroy(s, n1);
  Node* n2 = rig.pool.create<Node>(s);
  EXPECT_EQ(n1, n2);  // LIFO free list hands the same block back
  rig.pool.destroy(s, n2);

  const auto snap = rig.stats.snapshot();
  EXPECT_EQ(snap[util::Counter::kPoolMisses], 1u);  // one slab carve
  EXPECT_EQ(snap[util::Counter::kPoolHits], 1u);    // the reuse
  EXPECT_EQ(snap[util::Counter::kPoolReturns], 0u);
}

TEST(NodePool, DisabledPoolFallsBackToHeap) {
  util::ThreadRegistry registry(4);
  util::StatsDomain stats(registry);
  NodePool pool(registry, &stats, /*requested=*/false);
  EXPECT_FALSE(pool.enabled());
  auto reg = registry.attach();
  Node* n = pool.create<Node>(reg.slot());
  pool.destroy(reg.slot(), n);
  EXPECT_EQ(stats.snapshot()[util::Counter::kPoolMisses], 1u);
  EXPECT_EQ(stats.snapshot()[util::Counter::kPoolHits], 0u);
}

TEST(NodePool, CrossThreadReleaseReturnsToOwnerViaMpscStack) {
  ZSTM_REQUIRE_POOL();
  Rig rig;
  auto owner = rig.registry.attach();
  const int os = owner.slot();

  // Drain the slab stock so the next owner allocation must flush the
  // return stack.
  std::vector<Node*> stock;
  Node* n = rig.pool.create<Node>(os);
  while (rig.pool.local_free_count(os) > 0) {
    stock.push_back(rig.pool.create<Node>(os));
  }

  // Another thread (distinct slot) frees the owner's node: it must land on
  // the owner's MPSC return stack, not any local list.
  std::thread([&] {
    auto other = rig.registry.attach();
    ASSERT_NE(other.slot(), os);
    rig.pool.destroy(other.slot(), n);
  }).join();
  EXPECT_EQ(rig.pool.foreign_return_count(os), 1u);
  EXPECT_EQ(rig.stats.snapshot()[util::Counter::kPoolReturns], 1u);

  // Owner's next allocation misses locally, flushes the stack, and gets
  // the very same block back — no heap traffic.
  const std::uint64_t misses_before =
      rig.stats.snapshot()[util::Counter::kPoolMisses];
  Node* back = rig.pool.create<Node>(os);
  EXPECT_EQ(back, n);
  EXPECT_EQ(rig.pool.foreign_return_count(os), 0u);
  EXPECT_EQ(rig.stats.snapshot()[util::Counter::kPoolMisses], misses_before);

  rig.pool.destroy(os, back);
  for (Node* p : stock) rig.pool.destroy(os, p);
}

TEST(NodePool, SlotReleaseDrainsReturnStacksAndSurvivesChurn) {
  ZSTM_REQUIRE_POOL();
  Rig rig;
  Node* n = nullptr;
  int os = -1;
  {
    auto owner = rig.registry.attach();
    os = owner.slot();
    n = rig.pool.create<Node>(os);
    // A foreign thread returns the node while the owner is still attached.
    std::thread([&] {
      auto other = rig.registry.attach();
      rig.pool.destroy(other.slot(), n);
    }).join();
    EXPECT_EQ(rig.pool.foreign_return_count(os), 1u);
    // Registration release fires the drain hook.
  }
  EXPECT_EQ(rig.pool.foreign_return_count(os), 0u);
  EXPECT_GE(rig.pool.local_free_count(os), 1u);

  // A new thread claiming the same slot inherits the free list: the very
  // first allocation is a hit, no slab carve.
  const std::uint64_t misses_before =
      rig.stats.snapshot()[util::Counter::kPoolMisses];
  auto successor = rig.registry.attach();
  ASSERT_EQ(successor.slot(), os);  // lowest free slot
  Node* again = rig.pool.create<Node>(os);
  EXPECT_EQ(again, n);
  EXPECT_EQ(rig.stats.snapshot()[util::Counter::kPoolMisses], misses_before);
  rig.pool.destroy(os, again);
}

TEST(NodePool, OversizeAndSlotlessAllocationsBypassTheLists) {
  ZSTM_REQUIRE_POOL();
  Rig rig;
  auto reg = rig.registry.attach();
  const int s = reg.slot();

  struct Big {
    std::array<char, 1024> bytes{};
  };
  Big* big = rig.pool.create<Big>(s);  // > largest size class
  rig.pool.destroy(s, big);
  Node* unslotted = rig.pool.create<Node>(-1);  // unregistered caller
  rig.pool.destroy(-1, unslotted);
  EXPECT_EQ(rig.pool.local_free_count(s), 0u);  // neither touched the lists
}

// --- inline payload storage (SBO) ------------------------------------------

using TestVersion = Version<NoMeta>;

TEST(NodePool, SmallTriviallyCopyablePayloadIsStoredInline) {
  const runtime::TypedPayload<long> src(42);
  TestVersion v{runtime::ClonePayload{src}};
  EXPECT_TRUE(v.payload_inline());
  EXPECT_EQ(runtime::payload_as<long>(*v.data), 42);
  // The inline copy is independent storage, not a reference to the source.
  runtime::payload_as<long>(*v.data) = 43;
  EXPECT_EQ(src.value(), 42);
}

TEST(NodePool, NonTriviallyCopyablePayloadFallsBackToHeap) {
  const runtime::TypedPayload<std::string> src(
      std::string("a string long enough to defeat its own SSO buffer"));
  TestVersion v{runtime::ClonePayload{src}};
  EXPECT_FALSE(v.payload_inline());
  EXPECT_EQ(runtime::payload_as<std::string>(*v.data), src.value());
}

TEST(NodePool, OversizedTriviallyCopyablePayloadFallsBackToHeap) {
  struct Wide {
    std::array<char, 128> bytes{};
  };
  Wide w;
  w.bytes[0] = 'x';
  w.bytes[127] = 'y';
  const runtime::TypedPayload<Wide> src(w);
  static_assert(sizeof(runtime::TypedPayload<Wide>) > kPayloadSboBytes);
  TestVersion v{runtime::ClonePayload{src}};
  EXPECT_FALSE(v.payload_inline());
  EXPECT_EQ(runtime::payload_as<Wide>(*v.data).bytes[0], 'x');
  EXPECT_EQ(runtime::payload_as<Wide>(*v.data).bytes[127], 'y');
}

// --- stress: pooled allocation vs concurrent prunes (TSan target) ----------

// Aggressive single-version retention makes every commit prune, so pooled
// versions cycle allocate -> publish -> retire -> free list while other
// threads still read them through pinned epochs. Under TSan this checks the
// happens-before chain EBR previously inherited from malloc/free.
TEST(NodePool, StressPooledAllocationWithConcurrentPrunes) {
  constexpr int kThreads = 4;
  constexpr int kVars = 32;
  const int rounds = test_env::stress_rounds(2000);

  lsa::Config cfg;
  cfg.max_threads = kThreads + 1;
  cfg.versions_kept = 1;
  lsa::Runtime rt(cfg);
  std::vector<lsa::Var<long>> vars;
  for (int i = 0; i < kVars; ++i) vars.push_back(rt.make_var<long>(100));

  std::atomic<bool> failed{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      auto th = rt.attach();
      util::Xorshift rng(static_cast<std::uint64_t>(t) * 31 + 7);
      for (int i = 0; i < rounds; ++i) {
        if (t % 2 == 0) {
          const std::size_t a = rng.next_below(kVars);
          std::size_t b = rng.next_below(kVars);
          if (b == a) b = (b + 1) % kVars;
          rt.run(*th, [&](lsa::Tx& tx) {
            tx.write(vars[a]) -= 1;
            tx.write(vars[b]) += 1;
          });
        } else {
          long total = 0;
          rt.run(
              *th,
              [&](lsa::Tx& tx) {
                total = 0;
                for (auto& v : vars) total += tx.read(v);
              },
              /*read_only=*/true);
          if (total != 100L * kVars) failed.store(true);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_FALSE(failed.load());

  // Steady state reached: the storm ran out of a bounded node population.
  // (The workload itself is still worth running heap-mode under ZSTM_POOL=0;
  // only the hit-rate assertion is pool-specific.)
  if (NodePool::env_enabled()) {
    const auto snap = rt.stats();
    const std::uint64_t hits = snap[util::Counter::kPoolHits];
    const std::uint64_t misses = snap[util::Counter::kPoolMisses];
    ASSERT_GT(hits + misses, 0u);
    EXPECT_GT(static_cast<double>(hits) / static_cast<double>(hits + misses),
              0.9);
  }
}

}  // namespace
}  // namespace zstm::object
