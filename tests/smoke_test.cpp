// Smoke canary: instantiate each of the four runtimes (five entry points —
// CS-STM comes in vector-clock and plausible-clock flavours) and commit one
// transaction apiece. CTest labels this suite `smoke` so CI can gate on it
// before the slow stress suites run.
#include <gtest/gtest.h>

#include "core/stm.hpp"

namespace zstm {
namespace {

TEST(Smoke, LsaCommitsOneTransaction) {
  lsa::Runtime rt;
  auto x = rt.make_var<int>(1);
  auto th = rt.attach();
  rt.run(*th, [&](lsa::Tx& tx) { tx.write(x, tx.read(x) + 1); });
  rt.run(*th, [&](lsa::Tx& tx) { EXPECT_EQ(tx.read(x), 2); });
}

TEST(Smoke, CsVectorClockCommitsOneTransaction) {
  auto rt = cs::make_vc_runtime();
  auto x = rt->make_var<int>(1);
  auto th = rt->attach();
  rt->run(*th, [&](cs::VcRuntime::Tx& tx) { tx.write(x, tx.read(x) + 1); });
  rt->run(*th, [&](cs::VcRuntime::Tx& tx) { EXPECT_EQ(tx.read(x), 2); });
}

TEST(Smoke, CsPlausibleClockCommitsOneTransaction) {
  auto rt = cs::make_rev_runtime(/*entries=*/2);
  auto x = rt->make_var<int>(1);
  auto th = rt->attach();
  rt->run(*th, [&](cs::RevRuntime::Tx& tx) { tx.write(x, tx.read(x) + 1); });
  rt->run(*th, [&](cs::RevRuntime::Tx& tx) { EXPECT_EQ(tx.read(x), 2); });
}

TEST(Smoke, SstmCommitsOneTransaction) {
  sstm::Runtime rt;
  auto x = rt.make_var<int>(1);
  auto th = rt.attach();
  rt.run(*th, [&](sstm::Tx& tx) { tx.write(x, tx.read(x) + 1); });
  rt.run(*th, [&](sstm::Tx& tx) { EXPECT_EQ(tx.read(x), 2); });
}

TEST(Smoke, ZstmCommitsShortAndLongTransactions) {
  zl::Runtime rt;
  auto x = rt.make_var<int>(1);
  auto th = rt.attach();
  rt.run_short(*th, [&](zl::ShortTx& tx) { tx.write(x, tx.read(x) + 1); });
  rt.run_long(*th, [&](zl::LongTx& tx) { tx.write(x) = tx.read(x) + 1; });
  rt.run_short(*th, [&](zl::ShortTx& tx) { EXPECT_EQ(tx.read(x), 3); });
}

}  // namespace
}  // namespace zstm
