// Smoke canary: commit one transaction on every runtime variant through
// the unified façade — statically via api::Stm<R> (zero-cost adapters) and
// by name via api::AnyStm (all seven variant names, covering the six
// runtimes). CTest labels this suite `smoke` so CI can gate on it before
// the slow stress suites run.
#include <gtest/gtest.h>

#include "core/stm.hpp"

namespace zstm {
namespace {

using api::TxKind;

template <typename S>
void commit_one(S& stm) {
  auto x = stm.make_var(1);
  stm.run(TxKind::kUpdate, [&](auto& tx) { tx.write(x, tx.read(x) + 1); });
  stm.run(TxKind::kLongUpdate,
          [&](auto& tx) { tx.write(x) = tx.read(x) + 1; });
  stm.run(TxKind::kReadOnly, [&](auto& tx) { EXPECT_EQ(tx.read(x), 3); });
  stm.run(TxKind::kLong, [&](auto& tx) { EXPECT_EQ(tx.read(x), 3); });
}

TEST(Smoke, LsaCommitsThroughFacade) {
  api::LsaStm stm;
  commit_one(stm);
}

TEST(Smoke, CsVectorClockCommitsThroughFacade) {
  api::CsVcStm stm;
  commit_one(stm);
}

TEST(Smoke, CsPlausibleClockCommitsThroughFacade) {
  api::CommonConfig cfg;
  cfg.plausible_entries = 2;
  api::CsRevStm stm(cfg);
  commit_one(stm);
}

TEST(Smoke, SstmCommitsThroughFacade) {
  api::SStm stm;
  commit_one(stm);
}

TEST(Smoke, ZstmCommitsShortAndLongThroughFacade) {
  api::ZStm stm;
  commit_one(stm);
}

TEST(Smoke, Tl2CommitsThroughFacade) {
  api::Tl2Stm stm;
  commit_one(stm);
}

TEST(Smoke, EveryNamedVariantCommits) {
  for (const std::string& name : api::AnyStm::variant_names()) {
    SCOPED_TRACE(name);
    api::AnyStm stm = api::AnyStm::make(name);
    commit_one(stm);
    EXPECT_EQ(stm.name(), name);
    EXPECT_GE(stm.stats()[util::Counter::kCommits], 4u);
  }
}

// The raw per-runtime APIs stay public and unchanged underneath the
// façade; keep one raw-API commit in the canary.
TEST(Smoke, RawRuntimeApiStillWorks) {
  zl::Runtime rt;
  auto x = rt.make_var<int>(1);
  auto th = rt.attach();
  const runtime::RunResult r =
      rt.run_short(*th, [&](zl::ShortTx& tx) { tx.write(x, tx.read(x) + 1); });
  EXPECT_TRUE(r.committed);
  EXPECT_EQ(r.attempts, 1u);
  rt.run_long(*th, [&](zl::LongTx& tx) { EXPECT_EQ(tx.read(x), 2); });
}

}  // namespace
}  // namespace zstm
