// Unit tests for the shared workload utilities behind the KV service's
// load generator: util::Zipfian (determinism, range, skew shape) and
// util::LatencyHistogram (bucket geometry, quantile correctness against a
// sorted reference, merge).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include "util/latency_histogram.hpp"
#include "util/rng.hpp"
#include "util/zipfian.hpp"

namespace {

using zstm::util::LatencyHistogram;
using zstm::util::Zipfian;

TEST(Zipfian, DeterministicUnderFixedSeed) {
  Zipfian a(1024, 0.99, 42);
  Zipfian b(1024, 0.99, 42);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_EQ(a.next(), b.next()) << "diverged at draw " << i;
  }
  // A different seed produces a different sequence (overwhelmingly).
  Zipfian c(1024, 0.99, 43);
  Zipfian d(1024, 0.99, 42);
  int same = 0;
  for (int i = 0; i < 1000; ++i) same += (c.next() == d.next()) ? 1 : 0;
  EXPECT_LT(same, 1000);
}

TEST(Zipfian, StaysInRange) {
  for (std::uint64_t n : {1ULL, 2ULL, 7ULL, 4096ULL}) {
    for (double theta : {0.0, 0.5, 0.99}) {
      Zipfian z(n, theta, 7);
      for (int i = 0; i < 5000; ++i) ASSERT_LT(z.next(), n);
    }
  }
}

TEST(Zipfian, SkewConcentratesMass) {
  // theta = 0.99 over 1000 keys: the most frequent key should take far
  // more than the uniform share (~0.1%), and the top decile of keys a
  // clear majority of draws. Bounds are loose — this pins the shape, not
  // the exact distribution.
  constexpr std::uint64_t kN = 1000;
  constexpr int kDraws = 200000;
  Zipfian z(kN, 0.99, 1);
  std::map<std::uint64_t, int> freq;
  for (int i = 0; i < kDraws; ++i) ++freq[z.next()];

  std::vector<int> counts;
  counts.reserve(freq.size());
  for (const auto& [k, c] : freq) counts.push_back(c);
  std::sort(counts.rbegin(), counts.rend());

  EXPECT_GT(counts[0], kDraws / 50);  // hottest key >= 2% of all draws
  long top_decile = 0;
  for (std::size_t i = 0; i < counts.size() && i < kN / 10; ++i) {
    top_decile += counts[i];
  }
  EXPECT_GT(top_decile, kDraws / 2);
}

TEST(Zipfian, ThetaZeroIsRoughlyUniform) {
  constexpr std::uint64_t kN = 100;
  constexpr int kDraws = 100000;
  Zipfian z(kN, 0.0, 5);
  std::vector<int> freq(kN, 0);
  for (int i = 0; i < kDraws; ++i) ++freq[z.next()];
  const int expect = kDraws / static_cast<int>(kN);
  for (std::uint64_t k = 0; k < kN; ++k) {
    EXPECT_GT(freq[k], expect / 2) << "key " << k;
    EXPECT_LT(freq[k], expect * 2) << "key " << k;
  }
}

TEST(Zipfian, ScrambleSpreadsHotKeys) {
  // Unscrambled, ranks 0 and 1 are the two hottest keys and are adjacent;
  // scrambled, the two hottest keys should not be neighbours (pinned for
  // the default seed mix — adjacency would put them in one map bucket).
  Zipfian z(4096, 0.99, 9, /*scramble=*/true);
  std::map<std::uint64_t, int> freq;
  for (int i = 0; i < 100000; ++i) ++freq[z.next()];
  std::uint64_t hot1 = 0, hot2 = 0;
  int c1 = -1, c2 = -1;
  for (const auto& [k, c] : freq) {
    if (c > c1) {
      hot2 = hot1;
      c2 = c1;
      hot1 = k;
      c1 = c;
    } else if (c > c2) {
      hot2 = k;
      c2 = c;
    }
  }
  const std::uint64_t gap = hot1 > hot2 ? hot1 - hot2 : hot2 - hot1;
  EXPECT_GT(gap, 1u);
}

TEST(LatencyHistogram, BucketGeometry) {
  // Exact below kSubCount.
  for (std::uint64_t v = 0; v < LatencyHistogram::kSubCount; ++v) {
    EXPECT_EQ(LatencyHistogram::index_of(v), v);
    EXPECT_EQ(LatencyHistogram::upper_bound(v), v);
  }
  // Every value's bucket upper bound is >= the value and within 1/16.
  zstm::util::Xorshift rng(3);
  for (int i = 0; i < 100000; ++i) {
    const std::uint64_t v = rng.next() >> (i % 40);
    const std::size_t idx = LatencyHistogram::index_of(v);
    ASSERT_LT(idx, LatencyHistogram::kBuckets);
    const std::uint64_t ub = LatencyHistogram::upper_bound(idx);
    ASSERT_GE(ub, v);
    ASSERT_LE(ub - v, v / LatencyHistogram::kSubCount + 1);
    // Monotone: the next bucket's upper bound is strictly larger.
    if (idx + 1 < LatencyHistogram::kBuckets) {
      ASSERT_GT(LatencyHistogram::upper_bound(idx + 1), ub);
    }
  }
}

TEST(LatencyHistogram, QuantilesMatchSortedReference) {
  LatencyHistogram h;
  zstm::util::Xorshift rng(11);
  std::vector<std::uint64_t> ref;
  for (int i = 0; i < 20000; ++i) {
    // Log-uniform-ish spread over ~9 decades, like real latencies.
    const std::uint64_t v = rng.next() >> rng.next_below(50);
    ref.push_back(v);
    h.record(v);
  }
  std::sort(ref.begin(), ref.end());
  EXPECT_EQ(h.count(), ref.size());
  EXPECT_EQ(h.max(), ref.back());
  EXPECT_EQ(h.min(), ref.front());
  for (double q : {0.50, 0.90, 0.99, 0.999}) {
    const std::uint64_t exact =
        ref[static_cast<std::size_t>(q * (ref.size() - 1))];
    const std::uint64_t approx = h.quantile(q);
    // Upper bucket bound: >= a nearby exact rank, <= exact * (1 + 1/16)
    // plus rank slop from rounding. Compare in doubles — samples reach the
    // top of the u64 range, where `exact + exact / 8` would wrap.
    EXPECT_GE(static_cast<double>(approx),
              static_cast<double>(exact) * 0.875 - 2.0)
        << "q=" << q;
    EXPECT_LE(static_cast<double>(approx),
              static_cast<double>(exact) * 1.125 + 2.0)
        << "q=" << q;
  }
}

TEST(LatencyHistogram, MergeEqualsCombinedRecording) {
  LatencyHistogram a, b, all;
  zstm::util::Xorshift rng(17);
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t v = rng.next() >> 20;
    if (i % 2 == 0) {
      a.record(v);
    } else {
      b.record(v);
    }
    all.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_EQ(a.max(), all.max());
  EXPECT_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.mean(), all.mean());
  for (double q : {0.5, 0.99, 0.999}) {
    EXPECT_EQ(a.quantile(q), all.quantile(q));
  }
}

TEST(LatencyHistogram, EmptyAndReset) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.99), 0u);
  h.record(123);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.quantile(0.5), 123u);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0u);
}

}  // namespace
