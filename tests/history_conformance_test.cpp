// Randomized cross-runtime history conformance: the mechanical correctness
// argument for every backend, including the word-granularity tl2 runtime
// this harness was built to prove out.
//
// For each variant name the façade knows, a seeded multi-threaded workload
// (transfers, blind increments, read-only sums, long scans, voluntary
// aborts over a small set of accounts) runs with history recording on
// (src/history/recorder.*), and the recorded history is handed to the
// offline checker matching the criterion that runtime promises
// (DESIGN.md §5/§9):
//
//   lsa, lsa-nors, tl2  — check_strictly_serializable (MVSG + real time)
//   zl                  — check_z_linearizable (the §5 clauses)
//   cs-vc, cs-r         — check_causal_conditions (the §4.1 obligations)
//   sstm                — check_serializable
//
// The schedule is randomized but reproducible: the seed comes from
// ZSTM_HISTORY_SEED when set, otherwise std::random_device, and is printed
// on failure for replay. Rounds scale with ZSTM_STRESS_ROUNDS.
//
// CTest label: `history` — run in CI in release and under TSan.
#include <gtest/gtest.h>

#include <cstdlib>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "api/stm_api.hpp"
#include "fault/failpoint.hpp"
#include "history/checkers.hpp"
#include "stress_env.hpp"
#include "util/rng.hpp"

namespace zstm {
namespace {

using api::CommonConfig;
using api::TxKind;

std::uint64_t harness_seed() {
  static const std::uint64_t seed = [] {
    if (const char* s = std::getenv("ZSTM_HISTORY_SEED");
        s != nullptr && *s != '\0') {
      return static_cast<std::uint64_t>(std::strtoull(s, nullptr, 0));
    }
    std::random_device rd;
    return (static_cast<std::uint64_t>(rd()) << 32) | rd();
  }();
  return seed;
}

enum class Criterion { kSerializable, kStrict, kZLinearizable, kCausal };

Criterion criterion_for(const std::string& name) {
  if (name == "lsa" || name == "lsa-nors" || name == "tl2") {
    return Criterion::kStrict;
  }
  if (name == "zl") return Criterion::kZLinearizable;
  if (name == "cs-vc" || name == "cs-r") return Criterion::kCausal;
  return Criterion::kSerializable;  // sstm
}

history::CheckResult apply_checker(Criterion c, const history::History& h) {
  switch (c) {
    case Criterion::kStrict: return history::check_strictly_serializable(h);
    case Criterion::kZLinearizable: return history::check_z_linearizable(h);
    case Criterion::kCausal: return history::check_causal_conditions(h);
    case Criterion::kSerializable: break;
  }
  return history::check_serializable(h);
}

/// One randomized workload against a concrete Stm<S>: kThreads workers,
/// each running `rounds` transactions drawn from a seeded mix. Returns the
/// recorded history after the workers quiesce.
template <typename S>
history::History run_workload(S& stm, std::uint64_t seed, int rounds) {
  constexpr int kThreads = 4;
  constexpr int kAccounts = 6;
  constexpr long kInitial = 50;

  std::vector<typename S::template Var<long>> accounts;
  for (int i = 0; i < kAccounts; ++i) accounts.push_back(stm.make_var(kInitial));

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      util::Xorshift rng(seed ^ (0x9E3779B97F4A7C15ull * (t + 1)));
      for (int i = 0; i < rounds; ++i) {
        const std::uint64_t op = rng.next_below(10);
        const std::size_t a = rng.next_below(kAccounts);
        std::size_t b = rng.next_below(kAccounts);
        if (b == a) b = (b + 1) % kAccounts;
        if (op < 4) {
          // Transfer between two random accounts.
          stm.run(TxKind::kUpdate, [&](auto& tx) {
            const long amount = 1 + static_cast<long>(rng.next_below(3));
            tx.write(accounts[a]) -= amount;
            tx.write(accounts[b]) += amount;
          });
        } else if (op < 6) {
          // Write skew over two hot accounts: read one, write the other
          // (random direction), then yield before committing. The yield
          // deschedules the thread mid-transaction (essential on few-core
          // machines, where µs-scale transactions otherwise run back to
          // back inside one scheduler quantum and never overlap). Two
          // overlapping instances with opposite directions have disjoint
          // write sets but opposing read→write anti-dependencies, so the
          // only defense against a serialization cycle is commit-time
          // read-set (re)validation. This op is what gives the harness
          // teeth — with tl2's revalidation knocked out it produces MVSG
          // cycles the checker flags (verified by sabotage).
          const std::size_t rd = rng.next_below(2);
          stm.run(TxKind::kUpdate, [&](auto& tx) {
            const long seen = tx.read(accounts[rd]);
            tx.write(accounts[1 - rd]) += (seen & 1);
            std::this_thread::yield();
          });
        } else if (op < 8) {
          // Declared read-only scan of a random pair.
          stm.run(TxKind::kReadOnly, [&](auto& tx) {
            volatile long sum = tx.read(accounts[a]) + tx.read(accounts[b]);
            (void)sum;
          });
        } else if (op < 9) {
          // Long full scan (Z-STM's Algorithm 2 path; plain txs elsewhere).
          stm.run(TxKind::kLong, [&](auto& tx) {
            volatile long total = 0;
            for (auto& acc : accounts) total = total + tx.read(acc);
            (void)total;
          });
        } else {
          // Voluntary abort after a write: must leave a non-committed
          // record and no trace in anyone's reads.
          stm.run(
              TxKind::kUpdate,
              [&](auto& tx) {
                tx.write(accounts[a]) += 100;
                tx.abort();
              },
              /*max_attempts=*/1);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  return stm.runtime().collect_history();
}

TEST(HistoryConformance, EveryVariantSatisfiesItsCriterion) {
  const std::uint64_t seed = harness_seed();
  const int rounds = test_env::stress_rounds(250);

  for (const std::string& name : api::variant_names()) {
    SCOPED_TRACE(name + " seed=" + std::to_string(seed) +
                 " (replay: ZSTM_HISTORY_SEED=" + std::to_string(seed) + ")");
    CommonConfig cfg;
    cfg.max_threads = 8;
    cfg.record_history = true;
    if (name == "cs-r") cfg.plausible_entries = 2;  // exercise clock aliasing

    api::visit_variant(name, cfg, [&](auto tag, const char*, CommonConfig c) {
      using S = typename decltype(tag)::type;
      S stm(c);
      const history::History h = run_workload(stm, seed, rounds);
      // The workload must actually have produced a non-trivial history.
      EXPECT_GT(h.committed_count(), 0u);
      EXPECT_LT(h.committed_count(), h.txs.size());  // aborts recorded too
      const history::CheckResult res =
          apply_checker(criterion_for(name), h);
      EXPECT_TRUE(res.ok) << "criterion violated: " << res.reason;
    });
  }
}

TEST(HistoryConformance, EveryVariantSatisfiesItsCriterionUnderNewTimebases) {
  // PR 7 timebase matrix: rerun the full criterion battery with the
  // scalable-timebase options on — batched commit stamps for the scalar
  // runtimes (lsa, lsa-nors, zl; small batch so leases roll over and the
  // commit fence actually revokes them mid-run), the GV5-style CAS clock
  // for tl2 (small stride, adoption exercised by contention), and
  // topology-sharded ids everywhere. Every criterion must hold exactly as
  // under the default global counter — these options trade performance,
  // never admissible histories.
  const std::uint64_t seed = harness_seed() ^ 0xBA7C4ull;
  const int rounds = test_env::stress_rounds(250);

  for (const std::string& name : api::variant_names()) {
    SCOPED_TRACE(name + " [new timebases] seed=" + std::to_string(seed) +
                 " (replay: ZSTM_HISTORY_SEED=" + std::to_string(seed) + ")");
    CommonConfig cfg;
    cfg.max_threads = 8;
    cfg.record_history = true;
    if (name == "cs-r") cfg.plausible_entries = 2;
    cfg.sharded_tx_ids = true;
    cfg.time_base = timebase::TimeBaseKind::kBatchedCounter;
    cfg.timebase_batch = 4;
    cfg.tl2_clock_stride = 3;
    cfg.ebr_collect_period = 8;

    api::visit_variant(name, cfg, [&](auto tag, const char*, CommonConfig c) {
      using S = typename decltype(tag)::type;
      S stm(c);
      const history::History h = run_workload(stm, seed, rounds);
      EXPECT_GT(h.committed_count(), 0u);
      const history::CheckResult res =
          apply_checker(criterion_for(name), h);
      EXPECT_TRUE(res.ok) << "criterion violated under new timebase: "
                          << res.reason;
    });
  }
}

TEST(HistoryConformance, EveryVariantSatisfiesItsCriterionUnderChaos) {
  // Chaos mode (DESIGN.md §11): rerun the criterion battery with the
  // failpoint registry sabotaging every protocol hot spot — injected
  // aborts in the acquire/arbitrate loops and tl2 revalidation, spurious
  // CAS failures in settle/install and the stripe locks, and full-rate
  // delays at the delay-only sites to widen every race window. The
  // criteria must hold anyway: failpoints may slow or retry transactions,
  // never corrupt the histories they commit. The façade ladder runs with
  // the serial-irrevocable rung enabled so chaos cannot starve a
  // transaction forever (kExitThread and kOom stay out of the recipe —
  // they unwind through the workload body, which is a different test's
  // job: tests/exception_safety_test.cpp and fault_injection_test.cpp).
  const std::uint64_t seed = harness_seed() ^ 0xC4405ull;
  const int rounds = test_env::stress_rounds(150);

  struct Recipe {
    fault::Site site;
    double prob;
  };
  constexpr Recipe kRecipe[] = {
      {fault::Site::kStoreSettleCas, 0.2},
      {fault::Site::kStoreInstallCas, 0.2},
      {fault::Site::kLsaAcquire, 0.08},
      {fault::Site::kCsAcquire, 0.08},
      {fault::Site::kSstmAcquire, 0.08},
      {fault::Site::kZlAcquire, 0.08},
      {fault::Site::kTl2StripeLock, 0.2},
      {fault::Site::kTl2Revalidate, 0.08},
      {fault::Site::kTimebaseLeaseFence, 1.0},
      {fault::Site::kEbrRetire, 1.0},
  };

  for (const std::string& name : api::variant_names()) {
    SCOPED_TRACE(name + " [chaos] seed=" + std::to_string(seed) +
                 " (replay: ZSTM_HISTORY_SEED=" + std::to_string(seed) + ")");
    fault::registry().disarm_all();
    fault::registry().set_seed(seed);
    for (const Recipe& r : kRecipe) {
      ASSERT_TRUE(fault::registry().arm(r.site, r.prob));
    }

    CommonConfig cfg;
    cfg.max_threads = 8;
    cfg.record_history = true;
    cfg.retry.serial_after = 16;  // chaos must not starve anyone
    if (name == "cs-r") cfg.plausible_entries = 2;

    api::visit_variant(name, cfg, [&](auto tag, const char*, CommonConfig c) {
      using S = typename decltype(tag)::type;
      S stm(c);
      const history::History h = run_workload(stm, seed, rounds);
      EXPECT_GT(h.committed_count(), 0u);
      const history::CheckResult res = apply_checker(criterion_for(name), h);
      EXPECT_TRUE(res.ok) << "criterion violated under chaos: " << res.reason;
    });
    // The sabotage actually landed (the recipe covers every variant's
    // protocol path, so a zero count would mean dead failpoints).
    EXPECT_GT(fault::registry().triggers_total(), 0u);
    fault::registry().disarm_all();
  }
}

TEST(HistoryConformance, Tl2HistoriesAreAlsoSerializableUnderContention) {
  // A tighter screw for the new backend: two hot accounts, more threads
  // than accounts, so nearly every commit conflicts. Strict
  // serializability must survive the abort storm.
  const std::uint64_t seed = harness_seed() ^ 0xD1CEu;
  const int rounds = test_env::stress_rounds(400);
  SCOPED_TRACE("seed=" + std::to_string(seed));

  CommonConfig cfg;
  cfg.max_threads = 10;
  cfg.record_history = true;
  api::Tl2Stm stm(cfg);
  auto x = stm.make_var(0L);
  auto y = stm.make_var(0L);

  constexpr int kThreads = 6;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      util::Xorshift rng(seed + t);
      for (int i = 0; i < rounds; ++i) {
        if (rng.next_below(2) == 0) {
          stm.run(TxKind::kUpdate, [&](auto& tx) {
            tx.write(x) += 1;
            tx.write(y) -= 1;
          });
        } else {
          stm.run(TxKind::kReadOnly, [&](auto& tx) {
            volatile long s = tx.read(x) + tx.read(y);
            (void)s;
          });
        }
      }
    });
  }
  for (auto& w : workers) w.join();

  stm.run(TxKind::kReadOnly, [&](auto& tx) {
    EXPECT_EQ(tx.read(x) + tx.read(y), 0);
  });
  const history::History h = stm.runtime().collect_history();
  EXPECT_GE(h.committed_count(),
            static_cast<std::size_t>(kThreads) * rounds);
  const history::CheckResult res = history::check_strictly_serializable(h);
  EXPECT_TRUE(res.ok) << "tl2 strict serializability violated: "
                      << res.reason;
}

}  // namespace
}  // namespace zstm
