// Multi-threaded stress tests for LSA-STM: invariant preservation, torn-
// snapshot hunting, and machine-checked strict serializability of recorded
// histories, swept over time bases, contention managers and version depths.
//
// CTest label: `stress` — randomized multi-threaded rounds; run under TSan
// in CI (DESIGN.md §6).
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "history/checkers.hpp"
#include "lsa/lsa.hpp"
#include "stress_env.hpp"
#include "util/rng.hpp"

namespace zstm::lsa {
namespace {

struct StressParam {
  int threads;
  timebase::TimeBaseKind time_base;
  cm::Policy policy;
  int versions_kept;
  const char* label;
};

std::ostream& operator<<(std::ostream& os, const StressParam& p) {
  return os << p.label;
}

class LsaStress : public ::testing::TestWithParam<StressParam> {
 protected:
  Config make_config() const {
    const StressParam& p = GetParam();
    Config cfg;
    cfg.max_threads = 16;
    cfg.time_base = p.time_base;
    cfg.clock_deviation = std::chrono::nanoseconds(500);
    cfg.cm_policy = p.policy;
    cfg.versions_kept = p.versions_kept;
    return cfg;
  }
};

TEST_P(LsaStress, BankInvariantHolds) {
  constexpr int kAccounts = 32;
  constexpr long kInitial = 100;
  const int kTransfersPerThread = test_env::stress_rounds(2000);

  Runtime rt(make_config());
  std::vector<Var<long>> accounts;
  for (int i = 0; i < kAccounts; ++i) accounts.push_back(rt.make_var<long>(kInitial));

  std::vector<std::thread> workers;
  for (int t = 0; t < GetParam().threads; ++t) {
    workers.emplace_back([&, t] {
      auto th = rt.attach();
      util::Xorshift rng(static_cast<std::uint64_t>(t) + 1);
      for (int i = 0; i < kTransfersPerThread; ++i) {
        const auto from = rng.next_below(kAccounts);
        auto to = rng.next_below(kAccounts);
        if (to == from) to = (to + 1) % kAccounts;
        rt.run(*th, [&](Tx& tx) {
          const long amount = 1 + static_cast<long>(rng.next_below(5));
          tx.write(accounts[from]) -= amount;
          tx.write(accounts[to]) += amount;
        });
      }
    });
  }
  for (auto& w : workers) w.join();

  auto th = rt.attach();
  long total = 0;
  rt.run(*th, [&](Tx& tx) {
    total = 0;
    for (auto& a : accounts) total += tx.read(a);
  });
  EXPECT_EQ(total, kAccounts * kInitial);
  EXPECT_EQ(rt.stats()[util::Counter::kCommits],
            static_cast<std::uint64_t>(GetParam().threads) *
                    kTransfersPerThread +
                1);
}

TEST_P(LsaStress, ReadersNeverSeeTornSnapshots) {
  // Writers keep x + y == 0; readers (tracked and untracked read-only)
  // must never observe a violation.
  Runtime rt(make_config());
  auto x = rt.make_var<long>(0);
  auto y = rt.make_var<long>(0);
  std::atomic<bool> stop{false};
  std::atomic<long> violations{0};

  std::vector<std::thread> workers;
  const int writer_count = std::max(1, GetParam().threads - 1);
  for (int t = 0; t < writer_count; ++t) {
    workers.emplace_back([&, t] {
      auto th = rt.attach();
      util::Xorshift rng(static_cast<std::uint64_t>(t) + 77);
      for (int i = 0, n = test_env::stress_rounds(3000); i < n; ++i) {
        rt.run(*th, [&](Tx& tx) {
          const long delta = 1 + static_cast<long>(rng.next_below(9));
          tx.write(x) += delta;
          tx.write(y) -= delta;
        });
      }
      stop.store(true, std::memory_order_release);
    });
  }
  workers.emplace_back([&] {
    auto th = rt.attach();
    bool declared_ro = false;
    while (!stop.load(std::memory_order_acquire)) {
      declared_ro = !declared_ro;
      rt.run(
          *th,
          [&](Tx& tx) {
            const long sum = tx.read(x) + tx.read(y);
            if (sum != 0) violations.fetch_add(1);
          },
          declared_ro);
    }
  });
  for (auto& w : workers) w.join();
  EXPECT_EQ(violations.load(), 0);
}

TEST_P(LsaStress, RecordedHistoryIsStrictlySerializable) {
  Config cfg = make_config();
  cfg.record_history = true;
  Runtime rt(cfg);
  constexpr int kObjects = 8;
  std::vector<Var<long>> vars;
  for (int i = 0; i < kObjects; ++i) vars.push_back(rt.make_var<long>(0));

  std::vector<std::thread> workers;
  for (int t = 0; t < GetParam().threads; ++t) {
    workers.emplace_back([&, t] {
      auto th = rt.attach();
      util::Xorshift rng(static_cast<std::uint64_t>(t) + 31);
      for (int i = 0, n = test_env::stress_rounds(800); i < n; ++i) {
        if (rng.chance(0.3)) {
          rt.run(*th, [&](Tx& tx) {  // read-only scan of three objects
            long sink = 0;
            for (int k = 0; k < 3; ++k) {
              sink += tx.read(vars[rng.next_below(kObjects)]);
            }
            (void)sink;
          });
        } else {
          const auto a = rng.next_below(kObjects);
          auto b = rng.next_below(kObjects);
          if (b == a) b = (b + 1) % kObjects;
          rt.run(*th, [&](Tx& tx) {
            const long v = tx.read(vars[a]);
            tx.write(vars[b]) += v + 1;
          });
        }
      }
    });
  }
  for (auto& w : workers) w.join();

  const auto h = rt.collect_history();
  ASSERT_GT(h.committed_count(), 0u);
  auto serial = history::check_serializable(h);
  EXPECT_TRUE(serial) << serial.reason;
  if (GetParam().time_base == timebase::TimeBaseKind::kCounter) {
    // Full strictness needs a linearizable time base (§2); with skewed
    // clocks the guarantee weakens to serializability + program order.
    auto strict = history::check_strictly_serializable(h);
    EXPECT_TRUE(strict) << strict.reason;
  } else {
    auto po = history::check_serializable_with_program_order(h);
    EXPECT_TRUE(po) << po.reason;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, LsaStress,
    ::testing::Values(
        StressParam{2, timebase::TimeBaseKind::kCounter, cm::Policy::kPolite,
                    8, "t2_counter_polite_k8"},
        StressParam{4, timebase::TimeBaseKind::kCounter, cm::Policy::kPolite,
                    8, "t4_counter_polite_k8"},
        StressParam{4, timebase::TimeBaseKind::kCounter,
                    cm::Policy::kAggressive, 8, "t4_counter_aggressive_k8"},
        StressParam{4, timebase::TimeBaseKind::kCounter, cm::Policy::kKarma, 1,
                    "t4_counter_karma_k1"},
        StressParam{4, timebase::TimeBaseKind::kSyncClock, cm::Policy::kPolite,
                    8, "t4_syncclock_polite_k8"},
        StressParam{8, timebase::TimeBaseKind::kSyncClock,
                    cm::Policy::kTimestamp, 4, "t8_syncclock_timestamp_k4"}),
    [](const ::testing::TestParamInfo<StressParam>& info) {
      return info.param.label;
    });

}  // namespace
}  // namespace zstm::lsa
