// Unit tests for the util substrate: RNG, backoff, spin lock, thread
// registry, padding, statistics.
//
// CTest label: `smoke` — fast canary, gates CI before the stress suites
// (DESIGN.md §6).
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <set>
#include <thread>
#include <vector>

#include "util/align.hpp"
#include "util/backoff.hpp"
#include "util/rng.hpp"
#include "util/spin_lock.hpp"
#include "util/stats.hpp"
#include "util/thread_registry.hpp"

namespace zstm::util {
namespace {

// --- alignment -------------------------------------------------------------

TEST(Align, PaddedValueIsCacheLineAligned) {
  EXPECT_EQ(alignof(Padded<int>), kCacheLine);
  EXPECT_GE(sizeof(Padded<int>), kCacheLine);
  EXPECT_EQ(alignof(PaddedCounter), kCacheLine);
}

TEST(Align, PaddedArrayElementsDoNotShareCacheLines) {
  std::array<PaddedCounter, 4> counters;
  for (std::size_t i = 1; i < counters.size(); ++i) {
    auto a = reinterpret_cast<std::uintptr_t>(&counters[i - 1]);
    auto b = reinterpret_cast<std::uintptr_t>(&counters[i]);
    EXPECT_GE(b - a, kCacheLine);
  }
}

// --- rng ---------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Xorshift a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xorshift a(1), b(2);
  int same = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, NextBelowStaysInRange) {
  Xorshift rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowCoversAllResidues) {
  Xorshift rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextUnitInHalfOpenInterval) {
  Xorshift rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.next_unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ChanceApproximatesProbability) {
  Xorshift rng(13);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.2) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.2, 0.02);
}

TEST(Rng, ZeroSeedIsNotAbsorbing) {
  Xorshift rng(0);
  EXPECT_NE(rng.next(), 0u);
  EXPECT_NE(rng.next(), rng.next());
}

TEST(Rng, SplitMix64ExpandsDistinctValues) {
  std::uint64_t s = 0;
  std::set<std::uint64_t> vals;
  for (int i = 0; i < 100; ++i) vals.insert(splitmix64(s));
  EXPECT_EQ(vals.size(), 100u);
}

// --- backoff -----------------------------------------------------------------

TEST(Backoff, LimitDoublesUpToCap) {
  Backoff bo(4, 64);
  EXPECT_EQ(bo.current_limit(), 4u);
  bo.pause();
  EXPECT_EQ(bo.current_limit(), 8u);
  bo.pause();
  EXPECT_EQ(bo.current_limit(), 16u);
  for (int i = 0; i < 10; ++i) bo.pause();
  EXPECT_LE(bo.current_limit(), 128u);  // saturates around the cap
}

TEST(Backoff, ResetRestoresMinimum) {
  Backoff bo(4, 64);
  for (int i = 0; i < 5; ++i) bo.pause();
  bo.reset();
  EXPECT_EQ(bo.current_limit(), 4u);
}

// --- spin lock -----------------------------------------------------------------

TEST(SpinLock, MutualExclusionUnderContention) {
  SpinLock lock;
  long counter = 0;
  constexpr int kThreads = 4;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        std::lock_guard<SpinLock> lk(lock);
        ++counter;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, static_cast<long>(kThreads) * kIters);
}

TEST(SpinLock, TryLockFailsWhenHeld) {
  SpinLock lock;
  ASSERT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

// --- thread registry --------------------------------------------------------------

TEST(ThreadRegistry, AssignsLowestFreeSlot) {
  ThreadRegistry reg(8);
  auto a = reg.attach();
  auto b = reg.attach();
  EXPECT_EQ(a.slot(), 0);
  EXPECT_EQ(b.slot(), 1);
}

TEST(ThreadRegistry, ReleasedSlotIsReused) {
  ThreadRegistry reg(8);
  auto a = reg.attach();
  auto b = reg.attach();
  const int freed = a.slot();
  {
    ThreadRegistry::Registration tmp = std::move(a);
  }  // releases slot 0
  auto c = reg.attach();
  EXPECT_EQ(c.slot(), freed);
}

TEST(ThreadRegistry, ThrowsWhenFull) {
  ThreadRegistry reg(2);
  auto a = reg.attach();
  auto b = reg.attach();
  EXPECT_THROW(reg.attach(), std::runtime_error);
}

TEST(ThreadRegistry, HighWaterTracksMaxSlot) {
  ThreadRegistry reg(8);
  EXPECT_EQ(reg.high_water(), 0);
  auto a = reg.attach();
  auto b = reg.attach();
  auto c = reg.attach();
  EXPECT_EQ(reg.high_water(), 3);
  { auto drop = std::move(c); }
  EXPECT_EQ(reg.high_water(), 3);  // high water never recedes
}

TEST(ThreadRegistry, ActiveReflectsRegistrationState) {
  ThreadRegistry reg(4);
  auto a = reg.attach();
  EXPECT_TRUE(reg.active(0));
  { auto drop = std::move(a); }
  EXPECT_FALSE(reg.active(0));
}

TEST(ThreadRegistry, MoveTransfersOwnership) {
  ThreadRegistry reg(4);
  auto a = reg.attach();
  ThreadRegistry::Registration b = std::move(a);
  EXPECT_FALSE(a.attached());
  EXPECT_TRUE(b.attached());
  EXPECT_EQ(b.slot(), 0);
}

TEST(ThreadRegistry, RejectsInvalidCapacity) {
  EXPECT_THROW(ThreadRegistry(0), std::invalid_argument);
  EXPECT_THROW(ThreadRegistry(ThreadRegistry::kMaxThreads + 1),
               std::invalid_argument);
}

TEST(ThreadRegistry, ConcurrentAttachYieldsUniqueSlots) {
  ThreadRegistry reg(32);
  std::vector<std::thread> threads;
  std::array<int, 16> slots{};
  std::array<ThreadRegistry::Registration, 16> regs;
  for (int t = 0; t < 16; ++t) {
    threads.emplace_back([&, t] {
      // Keep the registration alive past all attaches so no slot is reused.
      regs[static_cast<std::size_t>(t)] = reg.attach();
      slots[static_cast<std::size_t>(t)] =
          regs[static_cast<std::size_t>(t)].slot();
    });
  }
  for (auto& th : threads) th.join();
  std::set<int> unique(slots.begin(), slots.end());
  EXPECT_EQ(unique.size(), slots.size());
}

// --- stats -----------------------------------------------------------------------

TEST(Stats, AddAndSnapshotAggregateAcrossSlots) {
  ThreadRegistry reg(4);
  StatsDomain stats(reg);
  stats.add(0, Counter::kCommits, 3);
  stats.add(1, Counter::kCommits, 4);
  stats.add(2, Counter::kAborts);
  auto snap = stats.snapshot();
  EXPECT_EQ(snap[Counter::kCommits], 7u);
  EXPECT_EQ(snap[Counter::kAborts], 1u);
  EXPECT_EQ(snap[Counter::kReads], 0u);
}

TEST(Stats, ResetClearsAllCounters) {
  ThreadRegistry reg(2);
  StatsDomain stats(reg);
  stats.add(0, Counter::kReads, 10);
  stats.reset();
  EXPECT_EQ(stats.snapshot()[Counter::kReads], 0u);
}

TEST(Stats, CounterNamesAreDistinct) {
  std::set<std::string> names;
  for (int c = 0; c < static_cast<int>(Counter::kCount); ++c) {
    names.insert(counter_name(static_cast<Counter>(c)));
  }
  EXPECT_EQ(names.size(), static_cast<std::size_t>(Counter::kCount));
}

TEST(Stats, SnapshotToStringListsNonZeroOnly) {
  ThreadRegistry reg(2);
  StatsDomain stats(reg);
  stats.add(0, Counter::kCommits, 2);
  const std::string s = stats.snapshot().to_string();
  EXPECT_NE(s.find("commits=2"), std::string::npos);
  EXPECT_EQ(s.find("aborts"), std::string::npos);
}

TEST(Stats, ConcurrentIncrementsAreNotLost) {
  ThreadRegistry reg(8);
  StatsDomain stats(reg);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 10000; ++i) stats.add(t, Counter::kReads);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(stats.snapshot()[Counter::kReads], 40000u);
}

}  // namespace
}  // namespace zstm::util
