// ZSTM_STRESS_ROUNDS — environment knob scaling the stress/adversarial
// suites' round counts (ROADMAP item; documented in README.md).
//
// The baked-in counts are tuned for a typical multi-core dev box. CI can
// scale them *up* on big runners to exercise more true concurrency, or
// *down* under ThreadSanitizer (~10x slower):
//
//   ZSTM_STRESS_ROUNDS=400 ctest -L stress   # 4x the rounds
//   ZSTM_STRESS_ROUNDS=25  ctest --preset tsan   # quarter rounds
//
// The value is a percentage of the default (100 = unchanged). Every scaled
// count stays >= 1, so no loop degenerates to zero work.
#pragma once

#include <cstdlib>

namespace zstm::test_env {

inline double stress_scale() {
  static const double scale = [] {
    const char* s = std::getenv("ZSTM_STRESS_ROUNDS");
    if (s == nullptr || *s == '\0') return 1.0;
    const double pct = std::atof(s);
    return pct > 0.0 ? pct / 100.0 : 1.0;
  }();
  return scale;
}

/// `base` rounds scaled by ZSTM_STRESS_ROUNDS (percent), floored at 1.
inline int stress_rounds(int base) {
  const double scaled = static_cast<double>(base) * stress_scale();
  return scaled < 1.0 ? 1 : static_cast<int>(scaled);
}

}  // namespace zstm::test_env
