// Adversarial round tests: many short, randomized multi-threaded rounds,
// each machine-checked against its STM's consistency criterion. These are
// the harnesses that found the concurrency bugs catalogued in DESIGN.md §5
// (zone-claim windows, reader-list compaction, transitive constraint
// absorption) — kept in the suite to guard the fixes.
//
// CTest label: `stress` — randomized multi-threaded rounds; run under TSan
// in CI (DESIGN.md §6).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/stm.hpp"
#include "stress_env.hpp"
#include "util/rng.hpp"

namespace zstm {
namespace {

TEST(Adversarial, SstmRoundsStaySerializable) {
  const int kSstmRounds = test_env::stress_rounds(30);
  for (int round = 0; round < kSstmRounds; ++round) {
    sstm::Config cfg;
    cfg.max_threads = 16;
    cfg.record_history = true;
    sstm::Runtime rt(cfg);
    constexpr int kObjects = 6;
    std::vector<sstm::Var<long>> vars;
    for (int i = 0; i < kObjects; ++i) vars.push_back(rt.make_var<long>(0));
    std::vector<std::thread> workers;
    for (int t = 0; t < 4; ++t) {
      workers.emplace_back([&, t] {
        auto th = rt.attach();
        util::Xorshift rng(static_cast<std::uint64_t>(t) + round * 131 + 7);
        for (int i = 0; i < 250; ++i) {
          const auto a = rng.next_below(kObjects);
          auto b = rng.next_below(kObjects);
          if (b == a) b = (b + 1) % kObjects;
          if (rng.chance(0.35)) {
            rt.run(*th, [&](sstm::Tx& tx) {
              (void)tx.read(vars[a]);
              (void)tx.read(vars[b]);
            });
          } else {
            rt.run(*th, [&](sstm::Tx& tx) {
              tx.write(vars[b]) += tx.read(vars[a]) + 1;
            });
          }
        }
      });
    }
    for (auto& w : workers) w.join();
    auto res = history::check_serializable(rt.collect_history());
    ASSERT_TRUE(res) << "round " << round << ": " << res.reason;
  }
}

TEST(Adversarial, ZStmRoundsStayZLinearizable) {
  const int kZRounds = test_env::stress_rounds(25);
  for (int round = 0; round < kZRounds; ++round) {
    zl::Config cfg;
    cfg.lsa.record_history = true;
    zl::Runtime rt(cfg);
    constexpr int kProducts = 8;
    std::vector<lsa::Var<long>> products;
    for (int i = 0; i < kProducts; ++i) products.push_back(rt.make_var<long>(100));
    auto sink = rt.make_var<long>(0);

    std::atomic<bool> stop{false};
    std::vector<std::thread> workers;
    for (int t = 0; t < 3; ++t) {
      workers.emplace_back([&, t] {
        auto th = rt.attach();
        util::Xorshift rng(static_cast<std::uint64_t>(t) + round * 91);
        while (!stop.load(std::memory_order_acquire)) {
          const std::size_t p = rng.next_below(kProducts);
          rt.run_short(*th, [&](zl::ShortTx& tx) {
            long& v = tx.write(products[p]);
            v = v >= 3 ? v - 3 : v + 50;
          });
        }
      });
    }
    auto th = rt.attach();
    for (int i = 0; i < 25; ++i) {
      rt.run_long(*th, [&](zl::LongTx& tx) {
        long total = 0;
        for (auto& p : products) total += tx.read(p);
        tx.write(sink, total);
      });
    }
    stop.store(true, std::memory_order_release);
    for (auto& w : workers) w.join();

    auto res = history::check_z_linearizable(rt.collect_history());
    ASSERT_TRUE(res) << "round " << round << ": " << res.reason;
  }
}

TEST(Adversarial, LsaRoundsStayStrictlySerializable) {
  const int kLsaRounds = test_env::stress_rounds(25);
  for (int round = 0; round < kLsaRounds; ++round) {
    lsa::Config cfg;
    cfg.max_threads = 16;
    cfg.record_history = true;
    // Alternate rounds exercise the synchronized-clock time base with a
    // sizeable deviation — the spurious-abort-prone configuration.
    if (round % 2 == 1) {
      cfg.time_base = timebase::TimeBaseKind::kSyncClock;
      cfg.clock_deviation = std::chrono::nanoseconds(2000);
      cfg.seed = static_cast<std::uint64_t>(round);
    }
    lsa::Runtime rt(cfg);
    constexpr int kObjects = 6;
    std::vector<lsa::Var<long>> vars;
    for (int i = 0; i < kObjects; ++i) vars.push_back(rt.make_var<long>(0));
    std::vector<std::thread> workers;
    for (int t = 0; t < 4; ++t) {
      workers.emplace_back([&, t] {
        auto th = rt.attach();
        util::Xorshift rng(static_cast<std::uint64_t>(t) + round * 17 + 3);
        for (int i = 0; i < 250; ++i) {
          const auto a = rng.next_below(kObjects);
          auto b = rng.next_below(kObjects);
          if (b == a) b = (b + 1) % kObjects;
          if (rng.chance(0.3)) {
            rt.run(
                *th,
                [&](lsa::Tx& tx) {
                  (void)tx.read(vars[a]);
                  (void)tx.read(vars[b]);
                },
                /*read_only=*/rng.chance(0.5));
          } else {
            rt.run(*th, [&](lsa::Tx& tx) {
              tx.write(vars[b]) += tx.read(vars[a]) + 1;
            });
          }
        }
      });
    }
    for (auto& w : workers) w.join();
    const auto h = rt.collect_history();
    if (round % 2 == 0) {
      // Linearizable counter time base: full strict serializability.
      auto res = history::check_strictly_serializable(h);
      ASSERT_TRUE(res) << "round " << round << ": " << res.reason;
    } else {
      // Skewed clocks are not a linearizable time base (§2): snapshots may
      // anchor up to the deviation in the past of other threads' commits.
      // The guarantee is serializability + per-thread program order.
      auto res = history::check_serializable_with_program_order(h);
      ASSERT_TRUE(res) << "round " << round << ": " << res.reason;
    }
  }
}

TEST(Adversarial, CsRoundsSatisfyCausalConditions) {
  const int kCsRounds = test_env::stress_rounds(20);
  for (int round = 0; round < kCsRounds; ++round) {
    cs::Config cfg;
    cfg.max_threads = 16;
    cfg.record_history = true;
    auto rt = cs::make_rev_runtime(1 + round % 4, cfg);
    constexpr int kObjects = 6;
    std::vector<cs::RevRuntime::Var<long>> vars;
    for (int i = 0; i < kObjects; ++i) vars.push_back(rt->make_var<long>(0));
    std::vector<std::thread> workers;
    for (int t = 0; t < 4; ++t) {
      workers.emplace_back([&, t] {
        auto th = rt->attach();
        util::Xorshift rng(static_cast<std::uint64_t>(t) + round * 53 + 11);
        for (int i = 0; i < 250; ++i) {
          const auto a = rng.next_below(kObjects);
          auto b = rng.next_below(kObjects);
          if (b == a) b = (b + 1) % kObjects;
          rt->run(*th, [&](cs::RevRuntime::Tx& tx) {
            if (rng.chance(0.4)) {
              (void)tx.read(vars[a]);
              (void)tx.read(vars[b]);
            } else {
              tx.write(vars[b]) += tx.read(vars[a]) + 1;
            }
          });
        }
      });
    }
    for (auto& w : workers) w.join();
    auto res = history::check_causal_conditions(rt->collect_history());
    ASSERT_TRUE(res) << "round " << round << " (r=" << 1 + round % 4
                     << "): " << res.reason;
  }
}

}  // namespace
}  // namespace zstm
