// Tests for the time bases: global counter, vector clocks (§4), plausible
// REV clocks (§4.3) including the four plausibility guarantees, and the
// simulated synchronized real-time clocks (§2/[9]).
//
// CTest label: `smoke` — fast canary, gates CI before the stress suites
// (DESIGN.md §6).
#include <gtest/gtest.h>

#include <chrono>
#include <set>
#include <thread>
#include <vector>

#include "timebase/global_counter.hpp"
#include "timebase/plausible_clock.hpp"
#include "timebase/scalar_timebase.hpp"
#include "timebase/sync_clock.hpp"
#include "timebase/vector_clock.hpp"
#include "util/rng.hpp"

namespace zstm::timebase {
namespace {

// --- global counter ----------------------------------------------------------

TEST(GlobalCounter, StartsAtZero) {
  GlobalCounter c;
  EXPECT_EQ(c.now(), 0u);
}

TEST(GlobalCounter, AcquireIncrementsAndReturnsNewValue) {
  GlobalCounter c;
  EXPECT_EQ(c.acquire_commit_time(), 1u);
  EXPECT_EQ(c.acquire_commit_time(), 2u);
  EXPECT_EQ(c.now(), 2u);
}

TEST(GlobalCounter, ConcurrentAcquiresAreUnique) {
  GlobalCounter c;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::vector<std::vector<std::uint64_t>> got(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      got[static_cast<std::size_t>(t)].reserve(kPerThread);
      for (int i = 0; i < kPerThread; ++i) {
        got[static_cast<std::size_t>(t)].push_back(c.acquire_commit_time());
      }
    });
  }
  for (auto& th : threads) th.join();
  std::set<std::uint64_t> all;
  for (auto& v : got) all.insert(v.begin(), v.end());
  EXPECT_EQ(all.size(), static_cast<std::size_t>(kThreads) * kPerThread);
  EXPECT_EQ(c.now(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

// --- vector clocks ------------------------------------------------------------

TEST(VectorClock, ZeroStampsAreEqual) {
  VcDomain dom(4);
  EXPECT_EQ(dom.zero().compare(dom.zero()), Order::kEqual);
}

TEST(VectorClock, BumpMakesStrictlyGreater) {
  VcDomain dom(3);
  VcStamp a = dom.zero();
  VcStamp b = a;
  b.bump(1);
  EXPECT_EQ(a.compare(b), Order::kBefore);
  EXPECT_EQ(b.compare(a), Order::kAfter);
  EXPECT_TRUE(a.strictly_precedes(b));
  EXPECT_FALSE(b.strictly_precedes(a));
}

TEST(VectorClock, DistinctComponentsAreConcurrent) {
  VcDomain dom(3);
  VcStamp a = dom.zero();
  VcStamp b = dom.zero();
  a.bump(0);
  b.bump(1);
  EXPECT_EQ(a.compare(b), Order::kConcurrent);
  EXPECT_TRUE(a.concurrent_with(b));
  EXPECT_FALSE(a.strictly_precedes(b));
}

TEST(VectorClock, MergeTakesElementwiseMax) {
  VcDomain dom(3);
  VcStamp a = dom.zero();
  VcStamp b = dom.zero();
  a[0] = 5;
  a[2] = 1;
  b[0] = 2;
  b[1] = 7;
  a.merge(b);
  EXPECT_EQ(a[0], 5u);
  EXPECT_EQ(a[1], 7u);
  EXPECT_EQ(a[2], 1u);
}

TEST(VectorClock, MergedStampDominatesBothInputs) {
  VcDomain dom(4);
  util::Xorshift rng(3);
  for (int iter = 0; iter < 100; ++iter) {
    VcStamp a = dom.zero();
    VcStamp b = dom.zero();
    for (int k = 0; k < 4; ++k) {
      a[k] = rng.next_below(10);
      b[k] = rng.next_below(10);
    }
    VcStamp m = a;
    m.merge(b);
    EXPECT_NE(a.compare(m), Order::kAfter);
    EXPECT_NE(b.compare(m), Order::kAfter);
    EXPECT_NE(a.compare(m), Order::kConcurrent);
    EXPECT_NE(b.compare(m), Order::kConcurrent);
  }
}

TEST(VectorClock, CompareMatchesPaperRules) {
  // Rules (1)-(3) of §4 on hand-picked stamps.
  VcDomain dom(2);
  VcStamp t1 = dom.zero(), t2 = dom.zero();
  t1[0] = 1;              // [1,0]
  t2[0] = 1, t2[1] = 1;   // [1,1]
  EXPECT_EQ(t1.compare(t2), Order::kBefore);  // t1 ≼ t2 ∧ t1 ≠ t2 ⇒ t1 ≺ t2
  t1[1] = 1;
  EXPECT_EQ(t1.compare(t2), Order::kEqual);
  t1[1] = 2;
  EXPECT_EQ(t1.compare(t2), Order::kAfter);
}

TEST(VectorClock, ToStringFormatsComponents) {
  VcDomain dom(3);
  VcStamp a = dom.zero();
  a[0] = 1;
  a[2] = 9;
  EXPECT_EQ(a.to_string(), "[1,0,9]");
}

TEST(VectorClock, FigureOneScenarioStampsAreConcurrent) {
  // §4.1's worked example: T1 on p0 commits [1,0,0]; T2 on p1 commits after
  // merging p2's observation, ending concurrent with T1; TL can commit.
  VcDomain dom(3);
  VcStamp t1 = dom.zero();
  dom.advance(0, t1);  // T1.ct = [1,0,0]
  VcStamp t2 = dom.zero();
  dom.advance(1, t2);  // T2.ct = [0,1,0]
  EXPECT_TRUE(t1.concurrent_with(t2));
  VcStamp tl = dom.zero();
  tl.merge(t2);  // TL reads T2's version of o3
  EXPECT_FALSE(t1.strictly_precedes(tl));  // validation passes (line 22)
}

// --- plausible clocks -----------------------------------------------------------

TEST(PlausibleClock, RejectsBadConfigurations) {
  EXPECT_THROW(RevDomain(0, 4), std::invalid_argument);
  EXPECT_THROW(RevDomain(8, 4), std::invalid_argument);
}

TEST(PlausibleClock, EntryMappingIsModuloR) {
  RevDomain dom(3, 8);
  EXPECT_EQ(dom.entry_of(0), 0);
  EXPECT_EQ(dom.entry_of(3), 0);
  EXPECT_EQ(dom.entry_of(4), 1);
  EXPECT_EQ(dom.entry_of(7), 1);
}

TEST(PlausibleClock, AdvanceYieldsUniqueValuesPerEntry) {
  RevDomain dom(1, 4);  // all four threads share one entry
  std::vector<std::vector<std::uint64_t>> got(4);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      RevStamp s = dom.zero();
      for (int i = 0; i < 10000; ++i) {
        dom.advance(t, s);
        got[static_cast<std::size_t>(t)].push_back(s[0]);
      }
    });
  }
  for (auto& th : threads) th.join();
  std::set<std::uint64_t> all;
  for (auto& v : got) all.insert(v.begin(), v.end());
  EXPECT_EQ(all.size(), 40000u);  // get-and-increment: no duplicates
}

TEST(PlausibleClock, AdvanceIsStrictlyIncreasingForOwnStamp) {
  RevDomain dom(2, 4);
  RevStamp s = dom.zero();
  std::uint64_t prev = 0;
  for (int i = 0; i < 100; ++i) {
    dom.advance(0, s);
    EXPECT_GT(s[0], prev);
    prev = s[0];
  }
}

TEST(PlausibleClock, AdvanceDominatesMergedObservations) {
  // A stamp that observed a large entry value must advance beyond it even
  // if the shared counter lags (the max-CAS in RevDomain::advance).
  RevDomain dom(2, 4);
  RevStamp a = dom.zero();
  a[0] = 1000;  // as if merged from a peer sharing entry 0
  dom.advance(0, a);
  EXPECT_GT(a[0], 1000u);
}

TEST(PlausibleClock, SingleEntryDegeneratesToScalarClock) {
  // r = 1: every commit is totally ordered — no two stamps concurrent.
  RevDomain dom(1, 4);
  RevStamp a = dom.zero(), b = dom.zero();
  dom.advance(0, a);
  dom.advance(1, b);
  EXPECT_NE(a.compare(b), Order::kConcurrent);
}

/// Simulates a shared-object system with both exact vector clocks and REV
/// plausible clocks side by side, then verifies the plausibility guarantees
/// of §4.3: causally related events are ordered identically; REV-concurrent
/// implies truly concurrent.
class PlausibilityProperty : public ::testing::TestWithParam<int> {};

TEST_P(PlausibilityProperty, RevNeverContradictsExactCausality) {
  const int r = GetParam();
  constexpr int kThreads = 6;
  constexpr int kObjects = 4;
  constexpr int kSteps = 400;
  VcDomain vc_dom(kThreads);
  RevDomain rev_dom(r, kThreads);

  struct Pair {
    VcStamp vc;
    RevStamp rev;
  };
  std::vector<Pair> thread_state;
  std::vector<Pair> object_state;
  for (int t = 0; t < kThreads; ++t) {
    thread_state.push_back({vc_dom.zero(), rev_dom.zero()});
  }
  for (int o = 0; o < kObjects; ++o) {
    object_state.push_back({vc_dom.zero(), rev_dom.zero()});
  }

  std::vector<Pair> events;
  util::Xorshift rng(static_cast<std::uint64_t>(r) * 977 + 5);
  for (int step = 0; step < kSteps; ++step) {
    const int t = static_cast<int>(rng.next_below(kThreads));
    const int o = static_cast<int>(rng.next_below(kObjects));
    auto& ts = thread_state[static_cast<std::size_t>(t)];
    auto& os = object_state[static_cast<std::size_t>(o)];
    // "Receive": observe the object's timestamp.
    ts.vc.merge(os.vc);
    ts.rev.merge(os.rev);
    // Local commit event.
    vc_dom.advance(t, ts.vc);
    rev_dom.advance(t, ts.rev);
    // "Send": publish to the object.
    os.vc = ts.vc;
    os.rev = ts.rev;
    events.push_back(ts);
  }

  for (std::size_t i = 0; i < events.size(); ++i) {
    for (std::size_t j = i + 1; j < events.size(); ++j) {
      const Order exact = events[i].vc.compare(events[j].vc);
      const Order plaus = events[i].rev.compare(events[j].rev);
      if (exact == Order::kBefore) {
        // (2): ei → ej must be reported as before (never reversed/equal).
        EXPECT_EQ(plaus, Order::kBefore);
      } else if (exact == Order::kAfter) {
        EXPECT_EQ(plaus, Order::kAfter);
      } else if (exact == Order::kConcurrent) {
        // (2)/(3): plausible clocks may order concurrent events but must
        // never call them equal.
        EXPECT_NE(plaus, Order::kEqual);
      }
      if (plaus == Order::kConcurrent) {
        // (4): REV-concurrent ⇒ truly concurrent.
        EXPECT_EQ(exact, Order::kConcurrent);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(EntryCounts, PlausibilityProperty,
                         ::testing::Values(1, 2, 3, 4, 6));

// --- synchronized real-time clocks ---------------------------------------------

TEST(SyncClock, ZeroDeviationHasZeroOffsets) {
  SyncRealTimeClock clock(4, std::chrono::nanoseconds(0));
  for (int s = 0; s < 4; ++s) EXPECT_EQ(clock.offset_ns(s), 0);
}

TEST(SyncClock, OffsetsBoundedByDeviation) {
  const auto dev = std::chrono::nanoseconds(5000);
  SyncRealTimeClock clock(16, dev, 99);
  bool some_nonzero = false;
  for (int s = 0; s < 16; ++s) {
    EXPECT_LE(std::abs(clock.offset_ns(s)), dev.count());
    some_nonzero |= clock.offset_ns(s) != 0;
  }
  EXPECT_TRUE(some_nonzero);
}

TEST(SyncClock, NowEncodesSlotInLowBits) {
  SyncRealTimeClock clock(4, std::chrono::nanoseconds(0));
  EXPECT_EQ(clock.now(2) & ((1u << SyncRealTimeClock::kSlotBits) - 1), 2u);
}

TEST(SyncClock, NowIsMonotonePerSlot) {
  SyncRealTimeClock clock(2, std::chrono::nanoseconds(0));
  std::uint64_t prev = 0;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t t = clock.now(0);
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST(SyncClock, CommitStampsStrictlyIncreasePerSlot) {
  SyncRealTimeClock clock(2, std::chrono::nanoseconds(1000), 5);
  std::uint64_t prev = 0;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t s = clock.acquire_commit_stamp(0, 0);
    EXPECT_GT(s, prev);
    prev = s;
  }
}

TEST(SyncClock, CommitStampRespectsFloor) {
  SyncRealTimeClock clock(2, std::chrono::nanoseconds(0));
  const std::uint64_t huge_floor = clock.now(0) + (1u << 20);
  EXPECT_GT(clock.acquire_commit_stamp(0, huge_floor), huge_floor);
}

TEST(SyncClock, StampsUniqueAcrossSlots) {
  SyncRealTimeClock clock(4, std::chrono::nanoseconds(0));
  std::set<std::uint64_t> stamps;
  for (int s = 0; s < 4; ++s) {
    for (int i = 0; i < 100; ++i) stamps.insert(clock.acquire_commit_stamp(s, 0));
  }
  EXPECT_EQ(stamps.size(), 400u);
}

// --- scalar time base facade -----------------------------------------------------

TEST(ScalarTimeBase, CounterModeBasics) {
  ScalarTimeBase tb;
  EXPECT_EQ(tb.kind(), TimeBaseKind::kCounter);
  EXPECT_EQ(tb.now_snapshot(0), 0u);
  EXPECT_EQ(tb.acquire_commit_stamp(0, 0), 1u);
  EXPECT_EQ(tb.now_snapshot(3), 1u);
  EXPECT_EQ(tb.sync_clock(), nullptr);
}

TEST(ScalarTimeBase, CounterStampAlwaysAboveEarlierSnapshots) {
  ScalarTimeBase tb;
  const std::uint64_t snap = tb.now_snapshot(0);
  EXPECT_GT(tb.acquire_commit_stamp(1, 0), snap);
}

TEST(ScalarTimeBase, SyncModeSnapshotLagsByMargin) {
  ScalarTimeBase tb(4, std::chrono::nanoseconds(1000), 7);
  EXPECT_EQ(tb.kind(), TimeBaseKind::kSyncClock);
  ASSERT_NE(tb.sync_clock(), nullptr);
  // A snapshot anchored now must precede any stamp issued afterwards from
  // any slot, even with maximal skew.
  for (int reader = 0; reader < 4; ++reader) {
    const std::uint64_t snap = tb.now_snapshot(reader);
    for (int writer = 0; writer < 4; ++writer) {
      EXPECT_GT(tb.acquire_commit_stamp(writer, 0), snap);
    }
  }
}

TEST(ScalarTimeBase, WaitUntilSafeReturnsOnceStampIsCovered) {
  ScalarTimeBase tb(2, std::chrono::nanoseconds(500), 3);
  const std::uint64_t ct = tb.acquire_commit_stamp(0, 0);
  tb.wait_until_safe(0, ct);  // must terminate quickly
  EXPECT_GE(tb.now_snapshot(0), ct);
}

}  // namespace
}  // namespace zstm::timebase
