// Tests for automatic long/short classification (§5.3's "automatic marking
// based on past behaviors of transactions").
//
// CTest label: `unit` (DESIGN.md §6).
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "util/rng.hpp"
#include "zstm/auto_class.hpp"

namespace zstm::zl {
namespace {

TEST(AutoClass, FreshSiteRunsShort) {
  AutoClassifier cls;
  for (int site = 0; site < 8; ++site) {
    EXPECT_FALSE(cls.classify_long(site));
  }
}

TEST(AutoClass, LargeOpenCountsPromoteToLong) {
  AutoClassifier::Config cfg;
  cfg.long_open_threshold = 10.0;
  cfg.ema_weight = 0.5;
  AutoClassifier cls(cfg);
  // EMA: 0 → 50 → 75 after two samples of 100; crosses 10 immediately.
  cls.record(0, 100, 0, false);
  EXPECT_TRUE(cls.classify_long(0));
  EXPECT_GT(cls.avg_opens(0), 10.0);
}

TEST(AutoClass, SmallTransactionsStayShort) {
  AutoClassifier cls;
  for (int i = 0; i < 100; ++i) cls.record(3, 2, 0, false);
  EXPECT_FALSE(cls.classify_long(3));
  EXPECT_NEAR(cls.avg_opens(3), 2.0, 0.1);
}

TEST(AutoClass, AbortPressurePromotesEvenSmallSites) {
  AutoClassifier::Config cfg;
  cfg.abort_promote_threshold = 3.0;
  cfg.ema_weight = 0.5;
  AutoClassifier cls(cfg);
  cls.record(1, 2, 8, false);  // 2 opens but 8 aborted attempts
  cls.record(1, 2, 8, false);
  EXPECT_TRUE(cls.classify_long(1));
}

TEST(AutoClass, PromotedSiteDecaysBackToShort) {
  AutoClassifier::Config cfg;
  cfg.abort_promote_threshold = 3.0;
  cfg.long_open_threshold = 1000.0;
  cfg.ema_weight = 0.5;
  AutoClassifier cls(cfg);
  cls.record(2, 4, 10, false);
  cls.record(2, 4, 10, false);
  ASSERT_TRUE(cls.classify_long(2));
  // Calm long-mode runs decay the abort average.
  for (int i = 0; i < 10; ++i) cls.record(2, 4, 0, true);
  EXPECT_FALSE(cls.classify_long(2));
}

TEST(AutoClass, SiteIdsWrapModuloTable) {
  AutoClassifier::Config cfg;
  cfg.max_sites = 4;
  cfg.long_open_threshold = 5.0;
  AutoClassifier cls(cfg);
  cls.record(1, 100, 0, false);
  EXPECT_TRUE(cls.classify_long(1 + 4));  // same bucket
}

TEST(AutoClass, CountersTrackExecutions) {
  AutoClassifier cls;
  cls.record(0, 5, 0, false);
  cls.record(0, 5, 0, true);
  EXPECT_EQ(cls.executions(0), 2u);
  EXPECT_EQ(cls.long_runs(0), 1u);
}

TEST(AutoClass, RunAutoLearnsToRunScansAsLong) {
  Runtime rt;
  AutoClassifier::Config ccfg;
  ccfg.long_open_threshold = 16.0;
  AutoClassifier cls(ccfg);
  constexpr int kAccounts = 64;
  std::vector<lsa::Var<long>> accounts;
  for (int i = 0; i < kAccounts; ++i) accounts.push_back(rt.make_var<long>(1));
  auto sink = rt.make_var<long>(0);
  auto th = rt.attach();

  constexpr int kScanSite = 0;
  for (int i = 0; i < 5; ++i) {
    run_auto(rt, *th, cls, kScanSite, [&](AutoTx& tx) {
      long total = 0;
      for (auto& a : accounts) total += tx.read(a);
      tx.write(sink, total);
    });
  }
  // The first execution ran short (no history); the opens average (64)
  // crossed the threshold immediately, so the rest ran long.
  EXPECT_EQ(cls.executions(kScanSite), 5u);
  EXPECT_GE(cls.long_runs(kScanSite), 4u);
  EXPECT_TRUE(cls.classify_long(kScanSite));

  // A transfer site stays on the short path.
  constexpr int kTransferSite = 1;
  for (int i = 0; i < 5; ++i) {
    run_auto(rt, *th, cls, kTransferSite, [&](AutoTx& tx) {
      tx.write(accounts[0]) -= 1;
      tx.write(accounts[1]) += 1;
    });
  }
  EXPECT_EQ(cls.long_runs(kTransferSite), 0u);
  EXPECT_FALSE(cls.classify_long(kTransferSite));
}

TEST(AutoClass, FacadeReportsMode) {
  Runtime rt;
  auto x = rt.make_var<int>(0);
  auto th = rt.attach();
  AutoClassifier cls;

  bool saw_long = false;
  rt.run_long(*th, [&](LongTx& tx) {
    AutoTx facade(tx);
    saw_long = facade.is_long();
    (void)facade.read(x);
  });
  EXPECT_TRUE(saw_long);

  bool saw_short = true;
  rt.run_short(*th, [&](ShortTx& tx) {
    AutoTx facade(tx);
    saw_short = !facade.is_long();
    facade.write(x, 1);
  });
  EXPECT_TRUE(saw_short);
  (void)cls;
}

TEST(AutoClass, ConcurrentMixedWorkloadConservesMoney) {
  Runtime rt;
  AutoClassifier cls;
  constexpr int kAccounts = 48;
  constexpr long kInitial = 30;
  std::vector<lsa::Var<long>> accounts;
  for (int i = 0; i < kAccounts; ++i) accounts.push_back(rt.make_var<long>(kInitial));
  auto sink = rt.make_var<long>(0);

  std::vector<std::thread> workers;
  for (int t = 0; t < 3; ++t) {
    workers.emplace_back([&, t] {
      auto th = rt.attach();
      util::Xorshift rng(static_cast<std::uint64_t>(t) + 1);
      for (int i = 0; i < 400; ++i) {
        if (t == 0 && rng.chance(0.15)) {
          run_auto(rt, *th, cls, /*site=*/0, [&](AutoTx& tx) {  // scan site
            long total = 0;
            for (auto& a : accounts) total += tx.read(a);
            tx.write(sink, total);
          });
        } else {
          const auto from = rng.next_below(kAccounts);
          auto to = rng.next_below(kAccounts);
          if (to == from) to = (to + 1) % kAccounts;
          run_auto(rt, *th, cls, /*site=*/1, [&](AutoTx& tx) {
            tx.write(accounts[from]) -= 1;
            tx.write(accounts[to]) += 1;
          });
        }
      }
    });
  }
  for (auto& w : workers) w.join();

  auto th = rt.attach();
  long total = 0;
  rt.run_long(*th, [&](LongTx& tx) {
    total = 0;
    for (auto& a : accounts) total += tx.read(a);
  });
  EXPECT_EQ(total, kAccounts * kInitial);
  // The scan site migrated to long transactions; transfers did not. On an
  // oversubscribed box (TSan CI) the abort-pressure heuristic may promote
  // the transfer site for an isolated execution before decaying back —
  // that is designed behavior, so only sustained migration fails here.
  EXPECT_GT(cls.long_runs(0), 0u);
  EXPECT_LT(cls.long_runs(1), cls.executions(1) / 10);
}

}  // namespace
}  // namespace zstm::zl
