// Networked KV front end battery (DESIGN.md §13): every protocol op over a
// real loopback socket for every runtime variant, pipelined concurrent
// clients, connection lifecycle (idle timeout, max-connections cap,
// graceful drain with in-flight requests), and the chaos recipe with the
// net.* failpoint sites armed.
//
// CTest label: `net`.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "api/stm_api.hpp"
#include "fault/failpoint.hpp"
#include "net/kv_client.hpp"
#include "net/tcp_server.hpp"
#include "net/wire.hpp"
#include "server/kv_service.hpp"
#include "stress_env.hpp"

namespace zstm::net {
namespace {

server::ServiceConfig small_config(const std::string& variant,
                                   int workers = 2) {
  server::ServiceConfig cfg;
  cfg.variant = variant;
  cfg.workers = workers;
  cfg.queue_capacity = 1 << 12;
  cfg.buckets = 64;
  cfg.stm.max_threads = workers + 6;
  return cfg;
}

/// Service + TCP server on an ephemeral loopback port, torn down in order.
struct Rig {
  server::KvService svc;
  TcpServer ts;

  explicit Rig(const std::string& variant, NetConfig ncfg = {},
               int workers = 2)
      : svc(small_config(variant, workers)), ts(svc, std::move(ncfg)) {
    svc.start();
    EXPECT_TRUE(ts.start());
  }
  ~Rig() {
    ts.stop();  // before the service: completions target live loops
    svc.stop();
  }
  KvClient client() {
    KvClient c;
    EXPECT_TRUE(c.connect("127.0.0.1", ts.port()));
    return c;
  }
};

void wait_active_conns(const TcpServer& ts, std::uint64_t want) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (ts.stats().conns_active != want &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(ts.stats().conns_active, want);
}

TEST(NetServer, EveryOpEveryVariant) {
  for (const std::string& variant : api::variant_names()) {
    SCOPED_TRACE(variant);
    Rig rig(variant);
    rig.svc.preload(0, 64, 100);
    KvClient c = rig.client();

    EXPECT_TRUE(c.ping(12345));

    // get hit + miss
    auto v = c.get(7);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 100);
    EXPECT_FALSE(c.get(9999).has_value());

    // put then read back
    EXPECT_TRUE(c.put(200, -5));
    v = c.get(200);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, -5);

    // del hit + miss
    EXPECT_TRUE(c.del(200));
    EXPECT_FALSE(c.del(200));

    // multi_get over the preloaded window: every key found, sum exact
    KvClient::Result mg = c.multi_get(0, 16);
    EXPECT_TRUE(mg.ok());
    EXPECT_EQ(mg.count, 16u);
    EXPECT_EQ(mg.value, 1600);

    // transfer conserves the scan sum
    const KvClient::Result before = c.scan();
    EXPECT_TRUE(before.ok());
    EXPECT_EQ(before.count, 64u);
    EXPECT_TRUE(c.transfer(1, 2, 30));
    const KvClient::Result after = c.scan();
    EXPECT_TRUE(after.ok());
    EXPECT_EQ(after.value, before.value);
    v = c.get(2);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 130);

    // transfer from a missing key fails as kNotFound, not an error
    const KvClient::Result bad =
        c.call(wire::Op::kTransfer, 424242, 1, 5);
    EXPECT_TRUE(bad.transport_ok);
    EXPECT_EQ(bad.status, wire::Status::kNotFound);

    // stats: completed requests so far, one active connection
    const KvClient::Result st = c.stats();
    EXPECT_TRUE(st.ok());
    EXPECT_GT(st.value, 0);
    EXPECT_EQ(st.count, 1u);
  }
}

TEST(NetServer, ConcurrentClients) {
  Rig rig("lsa", {}, 3);
  rig.svc.preload(0, 256, 100);
  const int kClients = 6;
  const int rounds = test_env::stress_rounds(200);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      KvClient c;
      if (!c.connect("127.0.0.1", rig.ts.port())) {
        failures.fetch_add(1);
        return;
      }
      for (int i = 0; i < rounds; ++i) {
        const std::uint64_t key =
            static_cast<std::uint64_t>((t * rounds + i) % 256);
        bool ok = true;
        switch (i % 5) {
          case 0: ok = c.put(key, i); break;
          case 1: ok = c.get(key).has_value() || true; break;
          case 2: ok = c.multi_get(key % 200, 8).transport_ok; break;
          case 3: ok = c.transfer(key, (key + 1) % 256, 1) || true; break;
          default: ok = c.ping(i); break;
        }
        if (!ok || !c.connected()) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  const NetStats ns = rig.ts.stats();
  EXPECT_EQ(ns.protocol_errors, 0u);
  // Every well-formed request got exactly one response (kShed responses
  // are responses too — the server never goes silent on a parsed frame).
  EXPECT_EQ(ns.requests, ns.responses);
}

TEST(NetServer, MultipleIoThreadsSpreadConnections) {
  NetConfig ncfg;
  ncfg.io_threads = 3;
  Rig rig("zl", ncfg);
  rig.svc.preload(0, 32, 1);
  std::vector<KvClient> clients;
  for (int i = 0; i < 9; ++i) clients.push_back(rig.client());
  for (auto& c : clients) EXPECT_TRUE(c.ping(7));
  wait_active_conns(rig.ts, 9);
  for (auto& c : clients) {
    auto v = c.get(3);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 1);
  }
}

TEST(NetServer, IdleTimeoutClosesConnection) {
  NetConfig ncfg;
  ncfg.idle_timeout = std::chrono::milliseconds(50);
  Rig rig("lsa", ncfg);
  KvClient c = rig.client();
  EXPECT_TRUE(c.ping(1));
  // Go quiet: the loop's idle scan must close us. recv_response then sees
  // EOF and the client reports transport failure.
  wire::Response resp;
  EXPECT_FALSE(c.recv_response(&resp));
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (rig.ts.stats().idle_closed == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(rig.ts.stats().idle_closed, 1u);
  wait_active_conns(rig.ts, 0);
}

TEST(NetServer, MaxConnectionsCapRejectsExcess) {
  NetConfig ncfg;
  ncfg.max_connections = 2;
  Rig rig("lsa", ncfg);
  KvClient c1 = rig.client();
  EXPECT_TRUE(c1.ping(1));
  KvClient c2 = rig.client();
  EXPECT_TRUE(c2.ping(2));
  // Third connect is accepted then closed at once; the ping round trip
  // fails on EOF.
  KvClient c3;
  ASSERT_TRUE(c3.connect("127.0.0.1", rig.ts.port()));
  EXPECT_FALSE(c3.ping(3));
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (rig.ts.stats().conns_rejected == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(rig.ts.stats().conns_rejected, 1u);
  // Survivors are unaffected.
  EXPECT_TRUE(c1.ping(4));
  EXPECT_TRUE(c2.ping(5));
}

TEST(NetServer, GracefulDrainFlushesInFlightResponses) {
  // Pipeline a burst, then stop() the server while responses are still in
  // flight: every request that reached the service must get its response
  // flushed before the close (the drain guarantee), then EOF.
  server::KvService svc(small_config("cs-vc"));
  svc.preload(0, 64, 1);
  svc.start();
  TcpServer ts(svc, {});
  ASSERT_TRUE(ts.start());

  KvClient c;
  ASSERT_TRUE(c.connect("127.0.0.1", ts.port()));
  const int kBurst = 64;
  std::vector<std::uint8_t> burst;
  for (int i = 0; i < kBurst; ++i) {
    wire::Request req;
    req.op = wire::Op::kGet;
    req.req_id = static_cast<std::uint64_t>(i) + 1;
    req.key = static_cast<std::uint64_t>(i % 64);
    std::uint8_t buf[wire::kReqFrame];
    wire::encode_request(req, buf);
    burst.insert(burst.end(), buf, buf + wire::kReqFrame);
  }
  ASSERT_TRUE(c.send_raw(burst.data(), burst.size()));

  // Wait until the server has parsed the whole burst (bytes that reach the
  // drain point unparsed are legitimately dropped), then stop: the drain
  // guarantee is that every parsed-and-submitted request answers before
  // the close.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (ts.stats().requests <
             static_cast<std::uint64_t>(kBurst) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(ts.stats().requests, static_cast<std::uint64_t>(kBurst));

  ts.stop();

  int got = 0;
  wire::Response resp;
  while (c.recv_response(&resp)) {
    EXPECT_NE(resp.status, wire::Status::kError);
    ++got;
  }
  EXPECT_EQ(got, kBurst);
  EXPECT_EQ(ts.stats().conns_active, 0u);
  svc.stop();
}

TEST(NetServer, StopWithNoClientsAndRestartPort) {
  // stop() is idempotent and a second server can bind a fresh port.
  server::KvService svc(small_config("sstm"));
  svc.start();
  {
    TcpServer ts(svc, {});
    ASSERT_TRUE(ts.start());
    EXPECT_NE(ts.port(), 0);
    ts.stop();
    ts.stop();
  }
  {
    TcpServer ts2(svc, {});
    ASSERT_TRUE(ts2.start());
    KvClient c;
    ASSERT_TRUE(c.connect("127.0.0.1", ts2.port()));
    EXPECT_TRUE(c.ping(9));
    ts2.stop();
  }
  svc.stop();
}

TEST(NetServer, AbruptClientDisconnectReclaimsSlot) {
  Rig rig("tl2");
  rig.svc.preload(0, 32, 1);
  const int rounds = test_env::stress_rounds(50);
  for (int i = 0; i < rounds; ++i) {
    KvClient c = rig.client();
    EXPECT_TRUE(c.put(static_cast<std::uint64_t>(i % 32), i));
    c.close();  // no goodbye — server must reclaim on EOF
  }
  wait_active_conns(rig.ts, 0);
  const NetStats ns = rig.ts.stats();
  EXPECT_EQ(ns.conns_accepted, ns.conns_closed);
  // The service is fully healthy afterwards.
  KvClient c = rig.client();
  EXPECT_TRUE(c.ping(1));
}

TEST(NetServer, ChaosNetFailpointsStayCorrect) {
  // The PR 8 chaos rail extended to the wire: short reads and short writes
  // are pure slowdowns (no request may be lost or corrupted); accept drops
  // and connection kills lose connections but never the server. Run the
  // full verb battery under all four sites and check exact semantics on
  // every successfully transported call.
  fault::registry().disarm_all();
  fault::registry().set_seed(0xC0FFEE);
  ASSERT_TRUE(fault::registry().arm(fault::Site::kNetRead, 0.2, 0,
                                    fault::Effect::kCasFail));
  ASSERT_TRUE(fault::registry().arm(fault::Site::kNetWrite, 0.2, 0,
                                    fault::Effect::kCasFail));
  ASSERT_TRUE(fault::registry().arm(fault::Site::kNetAccept, 0.2, 0,
                                    fault::Effect::kCasFail));
  ASSERT_TRUE(fault::registry().arm(fault::Site::kNetConnKill, 0.02, 0,
                                    fault::Effect::kAbort));

  {
    Rig rig("lsa");
    rig.svc.preload(0, 64, 100);
    const int rounds = test_env::stress_rounds(300);
    int transported = 0;
    KvClient c;
    for (int i = 0; i < rounds; ++i) {
      if (!c.connected() && !c.connect("127.0.0.1", rig.ts.port())) {
        continue;  // accept failpoint dropped us; try again
      }
      const std::uint64_t key = static_cast<std::uint64_t>(i % 64);
      switch (i % 4) {
        case 0: {
          const KvClient::Result r = c.call(wire::Op::kGet, key);
          if (r.transport_ok) {
            ++transported;
            EXPECT_EQ(r.status, wire::Status::kOk);
            EXPECT_EQ(r.value, 100);
          }
          break;
        }
        case 1: {
          const KvClient::Result r =
              c.call(wire::Op::kMultiGet, 0, 0, 0, 8);
          if (r.transport_ok) {
            ++transported;
            EXPECT_EQ(r.status, wire::Status::kOk);
            EXPECT_EQ(r.count, 8u);
            EXPECT_EQ(r.value, 800);
          }
          break;
        }
        case 2: {
          const KvClient::Result r =
              c.call(wire::Op::kTransfer, key, (key + 1) % 64, 0);
          if (r.transport_ok) {
            ++transported;
            EXPECT_EQ(r.status, wire::Status::kOk);
          }
          break;
        }
        default: {
          const KvClient::Result r = c.call(wire::Op::kPing, 0, 0, i);
          if (r.transport_ok) {
            ++transported;
            EXPECT_EQ(r.value, i);
          }
          break;
        }
      }
    }
    EXPECT_GT(transported, 0);

    fault::registry().disarm_all();
    // Post-chaos: sum conserved, server fully live.
    KvClient fresh = rig.client();
    const KvClient::Result scan = fresh.scan();
    EXPECT_TRUE(scan.ok());
    EXPECT_EQ(scan.count, 64u);
    EXPECT_EQ(scan.value, 64 * 100);
  }
  fault::registry().disarm_all();
}

}  // namespace
}  // namespace zstm::net
