// Unit tests for the shared versioned-object substrate (src/object/):
// chain walking, locator settling, prune-vs-pinned-reader interaction
// through EBR, and the adaptive-retention grow/decay transitions.
//
// CTest label: `unit` (DESIGN.md §6).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "object/object_store.hpp"
#include "runtime/payload.hpp"
#include "runtime/txdesc.hpp"
#include "util/ebr.hpp"
#include "util/stats.hpp"
#include "util/thread_registry.hpp"

namespace zstm::object {
namespace {

class TestDesc final : public runtime::TxDescBase {
 public:
  using TxDescBase::TxDescBase;
};

struct TestVersionMeta {
  std::uint64_t ts = 0;
};

struct TestTraits {
  using Desc = TestDesc;
  using VersionMeta = TestVersionMeta;
  using ObjectMeta = NoMeta;
};

using Store = ObjectStore<TestTraits>;
using Version = Store::Version;
using Locator = Store::Locator;
using Object = Store::Object;

/// Test rig: registry + stats + pool + EBR + a store with the given policy
/// (same member order as the runtimes: the pool outlives the EpochManager,
/// whose drain returns nodes to it).
struct Rig {
  explicit Rig(RetentionPolicy policy)
      : registry(8), stats(registry), pool(registry, &stats), epochs(registry),
        store(pool, epochs, stats, policy) {}

  util::ThreadRegistry registry;
  util::StatsDomain stats;
  NodePool pool;
  util::EpochManager epochs;
  Store store;
};

/// Commit one new version of `o` through the full locator protocol:
/// install a writer locator, flip the descriptor to committed, settle.
/// Returns the newly committed version. The descriptor must outlive any
/// use of the locator, so the caller provides it.
Version* commit_version(Rig& rig, Object& o, TestDesc& d, std::uint64_t ts,
                        int slot, long value) {
  Locator* l = o.loc.load(std::memory_order_acquire);
  EXPECT_EQ(l->writer, nullptr);
  const runtime::TypedPayload<long> pv(value);
  Version* tent = rig.store.clone_version(slot, pv);
  tent->prev.store(l->committed, std::memory_order_relaxed);
  EXPECT_TRUE(rig.store.install(o, l, &d, tent, slot));
  tent->ts = ts;
  d.finish_commit();
  Locator* owned = o.loc.load(std::memory_order_acquire);
  rig.store.settle(o, owned, slot);
  return tent;
}

int chain_length(Object& o) {
  Version* v = o.loc.load(std::memory_order_acquire)->committed;
  int n = 0;
  while (v != nullptr) {
    ++n;
    v = v->prev.load(std::memory_order_acquire);
  }
  return n;
}

RetentionPolicy fixed_policy(int kept) {
  return RetentionPolicy{RetentionMode::kFixed, kept, 1, 64, 64};
}

TEST(ObjectStore, AllocateCreatesSettledInitialState) {
  Rig rig(fixed_policy(4));
  Object* o = rig.store.allocate(new runtime::TypedPayload<long>(7));
  Locator* l = o->loc.load(std::memory_order_acquire);
  ASSERT_NE(l, nullptr);
  EXPECT_EQ(l->writer, nullptr);
  EXPECT_EQ(l->tentative, nullptr);
  ASSERT_NE(l->committed, nullptr);
  EXPECT_EQ(runtime::payload_as<long>(*l->committed->data), 7);
  EXPECT_EQ(o->oid, 1u);
  EXPECT_EQ(rig.store.kept_bound(*o), 4u);
}

TEST(ObjectStore, SettleCommittedWriterPublishesTentative) {
  Rig rig(fixed_policy(8));
  auto reg = rig.registry.attach();
  const int s = reg.slot();
  Object* o = rig.store.allocate(new runtime::TypedPayload<long>(0));

  TestDesc d(1, s, runtime::TxClass::kShort);
  Version* v1 = commit_version(rig, *o, d, 10, s, 42);

  Locator* l = o->loc.load(std::memory_order_acquire);
  EXPECT_EQ(l->writer, nullptr);       // settled
  EXPECT_EQ(l->committed, v1);         // tentative became current
  EXPECT_EQ(runtime::payload_as<long>(*l->committed->data), 42);
  EXPECT_EQ(chain_length(*o), 2);      // v1 -> initial
}

TEST(ObjectStore, SettleAbortedWriterKeepsCommittedAndRetiresTentative) {
  Rig rig(fixed_policy(8));
  auto reg = rig.registry.attach();
  const int s = reg.slot();
  Object* o = rig.store.allocate(new runtime::TypedPayload<long>(5));
  Locator* initial = o->loc.load(std::memory_order_acquire);
  Version* base = initial->committed;

  TestDesc d(1, s, runtime::TxClass::kShort);
  const runtime::TypedPayload<long> pv(6);
  Version* tent = rig.store.clone_version(s, pv);
  tent->prev.store(base, std::memory_order_relaxed);
  ASSERT_TRUE(rig.store.install(*o, initial, &d, tent, s));
  d.finish_abort();

  const std::uint64_t retired_before = rig.epochs.retired_count();
  rig.store.settle(*o, o->loc.load(std::memory_order_acquire), s);
  Locator* l = o->loc.load(std::memory_order_acquire);
  EXPECT_EQ(l->writer, nullptr);
  EXPECT_EQ(l->committed, base);  // the tentative version never published
  // Both the tentative version and the superseded locator were retired.
  EXPECT_GE(rig.epochs.retired_count(), retired_before + 2);
}

TEST(ObjectStore, InstallFailsOnStaleLocatorWithoutConsuming) {
  Rig rig(fixed_policy(8));
  auto reg = rig.registry.attach();
  const int s = reg.slot();
  Object* o = rig.store.allocate(new runtime::TypedPayload<long>(0));
  Locator* stale = o->loc.load(std::memory_order_acquire);

  TestDesc d1(1, s, runtime::TxClass::kShort);
  commit_version(rig, *o, d1, 5, s, 1);  // moves the locator on

  TestDesc d2(2, s, runtime::TxClass::kShort);
  const runtime::TypedPayload<long> pv(2);
  Version* tent = rig.store.clone_version(s, pv);
  EXPECT_FALSE(rig.store.install(*o, stale, &d2, tent, s));
  rig.store.discard_version(s, tent);  // caller still owns it on failure
}

TEST(ObjectStore, ResolveSkipsOwnLocatorToPreWriteVersion) {
  Rig rig(fixed_policy(8));
  auto reg = rig.registry.attach();
  const int s = reg.slot();
  Object* o = rig.store.allocate(new runtime::TypedPayload<long>(3));
  Locator* l = o->loc.load(std::memory_order_acquire);
  Version* base = l->committed;

  TestDesc d(1, s, runtime::TxClass::kShort);
  const runtime::TypedPayload<long> pv(4);
  Version* tent = rig.store.clone_version(s, pv);
  tent->prev.store(base, std::memory_order_relaxed);
  ASSERT_TRUE(rig.store.install(*o, l, &d, tent, s));

  // The owner resolves to its pre-write base; a stranger sees the same
  // because the writer is still active (invisible tentative state).
  EXPECT_EQ(rig.store.resolve(*o, &d, OnCommitting::kWait, s), base);
  EXPECT_EQ(rig.store.resolve(*o, nullptr, OnCommitting::kWait, s), base);

  d.finish_abort();
  rig.store.settle(*o, o->loc.load(std::memory_order_acquire), s);
}

TEST(ObjectStore, SuccessorOfWalksChain) {
  Rig rig(fixed_policy(8));
  auto reg = rig.registry.attach();
  const int s = reg.slot();
  Object* o = rig.store.allocate(new runtime::TypedPayload<long>(0));
  Version* v0 = o->loc.load(std::memory_order_acquire)->committed;

  TestDesc d1(1, s, runtime::TxClass::kShort);
  Version* v1 = commit_version(rig, *o, d1, 10, s, 1);
  TestDesc d2(2, s, runtime::TxClass::kShort);
  Version* v2 = commit_version(rig, *o, d2, 20, s, 2);
  TestDesc d3(3, s, runtime::TxClass::kShort);
  Version* v3 = commit_version(rig, *o, d3, 30, s, 3);

  EXPECT_EQ(Store::successor_of(v3, v2), v3);
  EXPECT_EQ(Store::successor_of(v3, v1), v2);
  EXPECT_EQ(Store::successor_of(v3, v0), v1);
  // A version not on the chain (pruned) yields nullptr.
  Version detached(new runtime::TypedPayload<long>(99));
  EXPECT_EQ(Store::successor_of(v3, &detached), nullptr);
}

TEST(ObjectStore, PruneBoundsChainAtFixedDepth) {
  Rig rig(fixed_policy(3));
  auto reg = rig.registry.attach();
  const int s = reg.slot();
  Object* o = rig.store.allocate(new runtime::TypedPayload<long>(0));

  std::vector<TestDesc*> descs;
  for (int i = 1; i <= 10; ++i) {
    auto* d = new TestDesc(static_cast<std::uint64_t>(i), s,
                           runtime::TxClass::kShort);
    descs.push_back(d);
    commit_version(rig, *o, *d, static_cast<std::uint64_t>(10 * i), s, i);
    EXPECT_LE(chain_length(*o), 3);
  }
  for (auto* d : descs) delete d;
}

TEST(ObjectStore, PrunedSuffixSurvivesWhileReaderIsPinned) {
  Rig rig(fixed_policy(1));  // aggressive pruning: single-version
  auto reader_reg = rig.registry.attach();
  auto writer_reg = rig.registry.attach();
  const int ws = writer_reg.slot();

  Object* o = rig.store.allocate(new runtime::TypedPayload<long>(123));
  Version* old_version = o->loc.load(std::memory_order_acquire)->committed;

  // A reader pins (as every transaction attempt does) and holds a pointer
  // to the current version.
  auto guard = rig.epochs.pin_guard(reader_reg.slot());

  // A writer commits over it; prune severs the old version off the chain.
  TestDesc d(1, ws, runtime::TxClass::kShort);
  commit_version(rig, *o, d, 10, ws, 124);
  EXPECT_EQ(chain_length(*o), 1);

  // The severed version was retired but must not be freed while the reader
  // is pinned: its payload stays dereferenceable.
  for (int i = 0; i < 10; ++i) rig.epochs.collect(ws);
  EXPECT_EQ(runtime::payload_as<long>(*old_version->data), 123);
  EXPECT_LT(rig.epochs.freed_count(), rig.epochs.retired_count());

  // After the reader unpins, collection may reclaim everything retired.
  guard = util::EpochManager::Guard();
  for (int i = 0; i < 10; ++i) rig.epochs.collect(ws);
  EXPECT_EQ(rig.epochs.freed_count(), rig.epochs.retired_count());
}

TEST(ObjectStore, AdaptiveBoundDoublesOnTooOldAborts) {
  RetentionPolicy p{RetentionMode::kAdaptive, /*initial=*/1, /*min=*/1,
                    /*max=*/8, /*decay_period=*/1000};
  Rig rig(p);
  auto reg = rig.registry.attach();
  const int s = reg.slot();
  Object* o = rig.store.allocate(new runtime::TypedPayload<long>(0));

  EXPECT_EQ(rig.store.kept_bound(*o), 1u);
  rig.store.note_too_old(*o, s);
  EXPECT_EQ(rig.store.kept_bound(*o), 2u);
  rig.store.note_too_old(*o, s);
  EXPECT_EQ(rig.store.kept_bound(*o), 4u);
  rig.store.note_too_old(*o, s);
  EXPECT_EQ(rig.store.kept_bound(*o), 8u);
  rig.store.note_too_old(*o, s);
  EXPECT_EQ(rig.store.kept_bound(*o), 8u);  // capped at max_kept
  EXPECT_EQ(rig.stats.snapshot()[util::Counter::kRetentionGrows], 3u);
}

TEST(ObjectStore, AdaptiveBoundDecaysAfterQuiescentPrunes) {
  RetentionPolicy p{RetentionMode::kAdaptive, /*initial=*/1, /*min=*/1,
                    /*max=*/8, /*decay_period=*/3};
  Rig rig(p);
  auto reg = rig.registry.attach();
  const int s = reg.slot();
  Object* o = rig.store.allocate(new runtime::TypedPayload<long>(0));

  rig.store.note_too_old(*o, s);
  rig.store.note_too_old(*o, s);
  EXPECT_EQ(rig.store.kept_bound(*o), 4u);

  // Each prune (triggered by every settle of a committed writer) counts
  // toward the quiescence streak; after decay_period of them the bound
  // shrinks by one.
  for (int i = 0; i < 3; ++i) rig.store.prune(*o, s);
  EXPECT_EQ(rig.store.kept_bound(*o), 3u);
  for (int i = 0; i < 3; ++i) rig.store.prune(*o, s);
  EXPECT_EQ(rig.store.kept_bound(*o), 2u);

  // A too-old abort resets the streak: two prunes, abort, two prunes — no
  // decay, and the abort doubled the bound again.
  for (int i = 0; i < 2; ++i) rig.store.prune(*o, s);
  rig.store.note_too_old(*o, s);
  EXPECT_EQ(rig.store.kept_bound(*o), 4u);
  for (int i = 0; i < 2; ++i) rig.store.prune(*o, s);
  EXPECT_EQ(rig.store.kept_bound(*o), 4u);

  EXPECT_EQ(rig.stats.snapshot()[util::Counter::kRetentionDecays], 2u);
}

TEST(ObjectStore, AdaptiveBoundNeverDecaysBelowFloor) {
  RetentionPolicy p{RetentionMode::kAdaptive, /*initial=*/2, /*min=*/2,
                    /*max=*/8, /*decay_period=*/1};
  Rig rig(p);
  auto reg = rig.registry.attach();
  const int s = reg.slot();
  Object* o = rig.store.allocate(new runtime::TypedPayload<long>(0));
  for (int i = 0; i < 10; ++i) rig.store.prune(*o, s);
  EXPECT_EQ(rig.store.kept_bound(*o), 2u);
}

TEST(ObjectStore, FixedModeIgnoresTooOldFeedback) {
  Rig rig(fixed_policy(4));
  auto reg = rig.registry.attach();
  const int s = reg.slot();
  Object* o = rig.store.allocate(new runtime::TypedPayload<long>(0));
  rig.store.note_too_old(*o, s);
  rig.store.note_too_old(*o, s);
  EXPECT_EQ(rig.store.kept_bound(*o), 4u);
  EXPECT_EQ(rig.stats.snapshot()[util::Counter::kRetentionGrows], 0u);
}

}  // namespace
}  // namespace zstm::object
