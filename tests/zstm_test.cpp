// Functional tests for Z-STM (Algorithms 2 and 3): zone assignment and
// crossing rules, long-transaction timestamp ordering, visible long writes,
// LZC thread-order protection, and z-linearizability of recorded histories.
//
// CTest label: `unit` (DESIGN.md §6).
#include <gtest/gtest.h>

#include <thread>

#include "history/checkers.hpp"
#include "zstm/zstm.hpp"

namespace zstm::zl {
namespace {

using util::Counter;

Config quiet_config() {
  Config cfg;
  cfg.lsa.max_threads = 8;
  return cfg;
}

TEST(ZShort, BehavesLikeLsaWithoutLongs) {
  Runtime rt(quiet_config());
  auto x = rt.make_var<int>(0);
  auto th = rt.attach();
  for (int i = 0; i < 10; ++i) {
    rt.run_short(*th, [&](ShortTx& tx) { tx.write(x, tx.read(x) + 1); });
  }
  rt.run_short(*th, [&](ShortTx& tx) { EXPECT_EQ(tx.read(x), 10); });
  EXPECT_EQ(rt.zone_counter(), 0u);
  EXPECT_EQ(rt.commit_time(), 0u);
}

TEST(ZLong, BasicLongTransactionCommits) {
  Runtime rt(quiet_config());
  auto x = rt.make_var<int>(1);
  auto y = rt.make_var<int>(2);
  auto th = rt.attach();
  int sum = 0;
  rt.run_long(*th, [&](LongTx& tx) { sum = tx.read(x) + tx.read(y); });
  EXPECT_EQ(sum, 3);
  EXPECT_EQ(rt.zone_counter(), 1u);
  EXPECT_EQ(rt.commit_time(), 1u);  // CT ← T.zc
  EXPECT_EQ(th->last_zone_committed(), 1u);  // LZCp ← T.zc
}

TEST(ZLong, ZoneNumbersAreUniqueAndIncreasing) {
  Runtime rt(quiet_config());
  auto x = rt.make_var<int>(0);
  auto th = rt.attach();
  std::uint64_t prev = 0;
  for (int i = 0; i < 5; ++i) {
    rt.run_long(*th, [&](LongTx& tx) {
      EXPECT_GT(tx.zone(), prev);
      prev = tx.zone();
      (void)tx.read(x);
    });
  }
  EXPECT_EQ(rt.zone_counter(), 5u);
  EXPECT_EQ(rt.commit_time(), 5u);
}

TEST(ZLong, LongWritesAreInvisibleUntilCommit) {
  Runtime rt(quiet_config());
  auto x = rt.make_var<int>(0);
  auto a = rt.attach();
  auto b = rt.attach();

  LongTx& tl = a->begin_long();
  tl.write(x, 42);
  // A short transaction on another context still sees the old value.
  int seen = -1;
  rt.run_short(*b, [&](ShortTx& tx) { seen = tx.read(x); });
  EXPECT_EQ(seen, 0);
  a->commit_long();
  rt.run_short(*b, [&](ShortTx& tx) { seen = tx.read(x); });
  EXPECT_EQ(seen, 42);
}

TEST(ZLong, PassedLongAbortsOnOpen) {
  // L1 (zc=1) opens o after L2 (zc=2) already stamped it: L1 was passed.
  Runtime rt(quiet_config());
  auto o = rt.make_var<int>(0);
  auto a = rt.attach();
  auto b = rt.attach();

  LongTx& l1 = a->begin_long();   // zc = 1
  LongTx& l2 = b->begin_long();   // zc = 2
  (void)l2.read(o);               // o.zc ← 2
  EXPECT_THROW((void)l1.read(o), TxAborted);
  EXPECT_GE(rt.stats()[Counter::kZonePassed], 1u);
  b->commit_long();
}

TEST(ZLong, LongsMustCommitInZoneOrder) {
  // Disjoint objects, but L2 (zc=2) commits before L1 (zc=1): CT jumps to
  // 2 and L1's commit check T.zc > CT fails.
  Runtime rt(quiet_config());
  auto o1 = rt.make_var<int>(0);
  auto o2 = rt.make_var<int>(0);
  auto a = rt.attach();
  auto b = rt.attach();

  LongTx& l1 = a->begin_long();
  (void)l1.read(o1);
  LongTx& l2 = b->begin_long();
  (void)l2.read(o2);
  b->commit_long();  // CT = 2
  EXPECT_THROW(a->commit_long(), TxAborted);
  EXPECT_EQ(rt.commit_time(), 2u);
}

TEST(ZLong, AbortDiscardsLongWrites) {
  Runtime rt(quiet_config());
  auto x = rt.make_var<int>(5);
  auto th = rt.attach();
  LongTx& tl = th->begin_long();
  tl.write(x, 6);
  EXPECT_THROW(tl.abort(), TxAborted);
  rt.run_short(*th, [&](ShortTx& tx) { EXPECT_EQ(tx.read(x), 5); });
}

TEST(ZLong, LongWriteConflictsArbitrated) {
  Config cfg = quiet_config();
  cfg.lsa.cm_policy = cm::Policy::kAggressive;
  Runtime rt(cfg);
  auto x = rt.make_var<int>(0);
  auto a = rt.attach();
  auto b = rt.attach();

  LongTx& l1 = a->begin_long();
  l1.write(x, 1);
  LongTx& l2 = b->begin_long();
  l2.write(x, 2);  // aggressive CM kills l1's ownership
  b->commit_long();
  EXPECT_THROW(a->commit_long(), TxAborted);
  rt.run_short(*a, [&](ShortTx& tx) { EXPECT_EQ(tx.read(x), 2); });
}

TEST(ZShort, FirstObjectDeterminesZone) {
  Runtime rt(quiet_config());
  auto o1 = rt.make_var<int>(0);
  auto a = rt.attach();
  auto b = rt.attach();

  LongTx& tl = a->begin_long();  // zc = 1
  (void)tl.read(o1);             // o1.zc = 1

  ShortTx& ts = b->begin_short();
  (void)ts.read(o1);
  EXPECT_EQ(ts.zone(), 1u);  // adopted the long transaction's zone
  b->commit_short();
  a->commit_long();
}

TEST(ZShort, CrossingActiveZoneAborts) {
  // The long transaction has opened o1 but not yet o2; a short transaction
  // touching both would cross its path (the T1/T2 situation of Figure 4).
  Runtime rt(quiet_config());
  auto o1 = rt.make_var<int>(0);
  auto o2 = rt.make_var<int>(0);
  auto a = rt.attach();
  auto b = rt.attach();

  LongTx& tl = a->begin_long();  // zc = 1
  (void)tl.read(o1);             // o1.zc = 1, o2 untouched (zone 0)

  ShortTx& ts = b->begin_short();
  (void)ts.read(o1);  // zone 1 (active)
  EXPECT_THROW((void)ts.read(o2), TxAborted);  // zone 0 ≠ zone 1, zone 1 active
  EXPECT_GE(rt.stats()[Counter::kZoneConflicts], 1u);
  a->commit_long();
}

TEST(ZShort, CrossingIsAllowedOnceZonesArePast) {
  Runtime rt(quiet_config());
  auto o1 = rt.make_var<int>(0);
  auto o2 = rt.make_var<int>(0);
  auto a = rt.attach();
  auto b = rt.attach();

  rt.run_long(*a, [&](LongTx& tx) { (void)tx.read(o1); });  // zone 1 done

  ShortTx& ts = b->begin_short();
  (void)ts.read(o1);  // zone 1 (≤ CT: in the past)
  EXPECT_NO_THROW((void)ts.read(o2));  // both zones past ⇒ zc ← CT
  EXPECT_EQ(ts.zone(), rt.commit_time());
  b->commit_short();
}

TEST(ZShort, CannotMoveToPastZone) {
  // Thread commits a short in the active zone 1, then starts a short whose
  // first object is from zone 0: LZC = 1 > CT = 0 ⇒ abort (property 4).
  Runtime rt(quiet_config());
  auto o1 = rt.make_var<int>(0);
  auto o2 = rt.make_var<int>(0);
  auto a = rt.attach();
  auto b = rt.attach();

  LongTx& tl = a->begin_long();  // zc = 1, stays active
  (void)tl.read(o1);

  rt.run_short(*b, [&](ShortTx& tx) { (void)tx.read(o1); });  // commits in zone 1
  EXPECT_EQ(b->last_zone_committed(), 1u);

  ShortTx& ts = b->begin_short();
  EXPECT_THROW((void)ts.read(o2), TxAborted);  // o2 from zone 0 < LZC, zone 1 active

  a->commit_long();  // CT = 1
  // Now the same open succeeds: LZC ≤ CT lets the short run at CT.
  ShortTx& ts2 = b->begin_short();
  EXPECT_NO_THROW((void)ts2.read(o2));
  EXPECT_EQ(ts2.zone(), 1u);
  b->commit_short();
}

TEST(ZShort, TransferUpdatesObjectRightAfterLongReadIt) {
  // The Figure 7 discussion: a short transaction may update an object as
  // soon as the long transaction has read it — no visible-read blocking.
  Runtime rt(quiet_config());
  auto o1 = rt.make_var<int>(10);
  auto o2 = rt.make_var<int>(10);
  auto a = rt.attach();
  auto b = rt.attach();

  LongTx& tl = a->begin_long();
  const int v1 = tl.read(o1);  // long reads o1 (invisible read)

  // Short updates o1 while the long transaction is still running.
  rt.run_short(*b, [&](ShortTx& tx) { tx.write(o1) += 5; });

  const int v2 = tl.read(o2);
  EXPECT_NO_THROW(a->commit_long());  // Z-STM long never validates reads
  EXPECT_EQ(v1 + v2, 20);  // pre-short snapshot — consistent

  int seen = 0;
  rt.run_short(*b, [&](ShortTx& tx) { seen = tx.read(o1); });
  EXPECT_EQ(seen, 15);
}

TEST(ZShort, ZoneWaitModeProceedsAfterLongCommits) {
  Config cfg = quiet_config();
  cfg.wait_on_zone_conflict = true;
  cfg.zone_wait_attempts = 1u << 20;
  Runtime rt(cfg);
  auto o1 = rt.make_var<int>(0);
  auto o2 = rt.make_var<int>(0);

  auto a = rt.attach();
  LongTx& tl = a->begin_long();
  (void)tl.read(o1);

  std::thread shorter([&] {
    auto b = rt.attach();
    rt.run_short(*b, [&](ShortTx& tx) {
      (void)tx.read(o1);
      (void)tx.read(o2);  // waits for the long transaction to finish
      tx.write(o2, 1);
    });
  });
  // Give the short a moment to hit the zone conflict, then release it.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  a->commit_long();
  shorter.join();

  auto th = rt.attach();
  int seen = 0;
  rt.run_short(*th, [&](ShortTx& tx) { seen = tx.read(o2); });
  EXPECT_EQ(seen, 1);
}

TEST(ZHistory, DeterministicMixIsZLinearizable) {
  Config cfg = quiet_config();
  cfg.lsa.record_history = true;
  Runtime rt(cfg);
  auto o1 = rt.make_var<long>(0);
  auto o2 = rt.make_var<long>(0);
  auto a = rt.attach();
  auto b = rt.attach();

  rt.run_short(*b, [&](ShortTx& tx) { tx.write(o1) += 1; });
  rt.run_long(*a, [&](LongTx& tx) {
    (void)tx.read(o1);
    (void)tx.read(o2);
  });
  rt.run_short(*b, [&](ShortTx& tx) { tx.write(o2) += 1; });
  rt.run_long(*a, [&](LongTx& tx) { tx.write(o1) = tx.read(o2); });
  rt.run_short(*b, [&](ShortTx& tx) {
    (void)tx.read(o1);
    (void)tx.read(o2);
  });

  const auto h = rt.collect_history();
  EXPECT_EQ(h.committed_count(), 5u);
  auto res = history::check_z_linearizable(h);
  EXPECT_TRUE(res) << res.reason;
  // Long transactions carry their zones in the history.
  for (const auto& t : h.txs) {
    if (t.tx_class == runtime::TxClass::kLong && t.committed) {
      EXPECT_GT(t.zone, 0u);
    }
  }
}

TEST(ZLong, UpdateLongTransactionWithPrivateStateCommits) {
  // The Figure 7 workload shape: compute-total writes private-but-
  // transactional state; Z-STM must sustain it effortlessly.
  Runtime rt(quiet_config());
  constexpr int kAccounts = 20;
  std::vector<lsa::Var<long>> accounts;
  for (int i = 0; i < kAccounts; ++i) accounts.push_back(rt.make_var<long>(5));
  auto result = rt.make_var<long>(0);
  auto th = rt.attach();

  const runtime::RunResult res = rt.run_long(*th, [&](LongTx& tx) {
    long total = 0;
    for (auto& acc : accounts) total += tx.read(acc);
    tx.write(result, total);
  });
  EXPECT_EQ(res.attempts, 1u);
  rt.run_short(*th, [&](ShortTx& tx) {
    EXPECT_EQ(tx.read(result), kAccounts * 5);
  });
}

}  // namespace
}  // namespace zstm::zl
