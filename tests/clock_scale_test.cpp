// Tests for the scalable-timebase layer (DESIGN.md §10): the batched lease
// counter, the topology-sharded clock, the cache-topology discovery
// helpers, and the ScalarTimeBase/registry wiring on top of them.
//
// CTest label: `unit`. Also runs under the tsan preset, which is the
// intended concurrency check for the lease/fence protocol.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "timebase/batched_counter.hpp"
#include "timebase/scalar_timebase.hpp"
#include "timebase/sharded_clock.hpp"
#include "util/cpu_topology.hpp"
#include "util/thread_registry.hpp"

namespace zstm::timebase {
namespace {

// --- BatchedCounter: single-thread lease mechanics ---------------------------

TEST(BatchedCounter, SingleThreadTicksAreStrictlyIncreasing) {
  BatchedCounter c(4, 8);
  std::uint64_t prev = 0;
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t t = c.acquire(0);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(BatchedCounter, LeaseExhaustionRollsOverToFreshBlock) {
  // k = 3: the first lease is block 0 = ticks {1, 2, 3}; the fourth
  // acquire must come from a later block, skipping nothing it issued.
  BatchedCounter c(2, 3);
  EXPECT_EQ(c.acquire(0), 1u);
  EXPECT_EQ(c.acquire(0), 2u);
  EXPECT_EQ(c.acquire(0), 3u);
  EXPECT_EQ(c.acquire(0), 4u);  // block 1 starts at 3*1 + 1
  EXPECT_EQ(c.provisioned(), 6u);
}

TEST(BatchedCounter, FloorForcesReleaseAboveIt) {
  BatchedCounter c(2, 64);
  const std::uint64_t a = c.acquire(0);  // 1, leases [1, 64] on slot 0
  EXPECT_EQ(a, 1u);
  // Slot 1 asks for a tick above a floor deep inside slot 0's lease: its
  // own fresh lease (block 1, base 64) already clears it.
  const std::uint64_t b = c.acquire(1, /*floor=*/40);
  EXPECT_GT(b, 40u);
  EXPECT_EQ(b, 65u);
}

TEST(BatchedCounter, FloorInsideOwnLeaseSkipsForward) {
  BatchedCounter c(1, 8);
  EXPECT_EQ(c.acquire(0), 1u);
  // The remaining lease [2, 8] is all <= 10, so the slot must re-lease.
  const std::uint64_t t = c.acquire(0, /*floor=*/10);
  EXPECT_GT(t, 10u);
  // And the next plain acquire continues above it.
  EXPECT_GT(c.acquire(0), t);
}

// --- BatchedCounter: now_floor / fence_after ---------------------------------

TEST(BatchedCounter, NowFloorIsZeroBeforeAnyLease) {
  BatchedCounter c(4, 16);
  EXPECT_EQ(c.now_floor(), 0u);
}

TEST(BatchedCounter, NowFloorNeverAtOrAboveAnOutstandingLeaseCursor) {
  // Deterministic two-slot schedule: slot 0 holds a low lease, so the
  // anchor must sit under slot 0's next issuable tick even after slot 1
  // provisions (and issues from) a much higher block.
  BatchedCounter c(2, 4);
  EXPECT_EQ(c.acquire(0), 1u);   // slot 0: lease [1,4], next = 2
  EXPECT_EQ(c.acquire(1), 5u);   // slot 1: lease [5,8], next = 6
  EXPECT_EQ(c.now_floor(), 1u);  // min(next) - 1 = 1, not blocks*k = 8
  EXPECT_EQ(c.acquire(0), 2u);
  EXPECT_EQ(c.now_floor(), 2u);
  c.release_slot(0);
  // Slot 0 idle: only slot 1's cursor pins the anchor now.
  EXPECT_EQ(c.now_floor(), 5u);
}

TEST(BatchedCounter, FenceRevokesUndercuttingLease) {
  BatchedCounter c(2, 8);
  EXPECT_EQ(c.acquire(0), 1u);  // slot 0 keeps [2, 8]
  EXPECT_EQ(c.acquire(1), 9u);  // slot 1's commit stamp
  c.fence_after(9);
  // Slot 0's remaining lease [2, 8] undercuts stamp 9 and must be gone:
  // every later acquire, from any slot, exceeds 9.
  const std::uint64_t t = c.acquire(0);
  EXPECT_GT(t, 9u);
}

TEST(BatchedCounter, FenceIsANoOpAboveEveryLease) {
  BatchedCounter c(2, 8);
  EXPECT_EQ(c.acquire(0), 1u);
  c.fence_after(1);  // next = 2 > stamp: the lease survives
  EXPECT_EQ(c.acquire(0), 2u);
}

// --- BatchedCounter: concurrency ---------------------------------------------

TEST(BatchedCounter, ConcurrentAcquiresAreUnique) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  BatchedCounter c(kThreads, 16);
  std::vector<std::vector<std::uint64_t>> got(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto& mine = got[static_cast<std::size_t>(t)];
      mine.reserve(kPerThread);
      for (int i = 0; i < kPerThread; ++i) mine.push_back(c.acquire(t));
    });
  }
  for (auto& th : threads) th.join();
  std::set<std::uint64_t> all;
  for (auto& v : got) {
    // Per-slot stamps are strictly increasing even across re-leases.
    EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
    all.insert(v.begin(), v.end());
  }
  EXPECT_EQ(all.size(), static_cast<std::size_t>(kThreads) * kPerThread);
}

TEST(BatchedCounter, ConcurrentFencesNeverAdmitUndercuttingStamps) {
  // Each thread alternates acquire and fence_after(own stamp), recording
  // (stamp, fence-done flag). The fence contract — an acquire STARTING
  // after fence_after(s) returns a tick > s — implies each thread's own
  // stamps keep increasing (trivially true) and, cross-thread, that a
  // stamp acquired after we observed a peer's fenced stamp exceeds it.
  constexpr int kThreads = 4;
  constexpr int kRounds = 5000;
  BatchedCounter c(kThreads, 8);
  std::atomic<std::uint64_t> fenced{0};  // max stamp with a completed fence
  std::atomic<bool> violation{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kRounds; ++i) {
        const std::uint64_t seen = fenced.load(std::memory_order_seq_cst);
        const std::uint64_t s = c.acquire(t);
        if (s <= seen) violation.store(true, std::memory_order_relaxed);
        c.fence_after(s);
        std::uint64_t cur = fenced.load(std::memory_order_relaxed);
        while (cur < s && !fenced.compare_exchange_weak(
                              cur, s, std::memory_order_seq_cst)) {
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(violation.load());
}

TEST(BatchedCounter, NowFloorIsAlwaysBelowLaterStamps) {
  // Reader threads interleave now_floor() with writer acquires; every
  // acquire a reader triggers after its anchor must exceed the anchor.
  constexpr int kRounds = 20000;
  BatchedCounter c(4, 16);
  std::atomic<bool> violation{false};
  std::thread writer([&] {
    for (int i = 0; i < kRounds; ++i) c.acquire(0);
  });
  std::thread reader([&] {
    for (int i = 0; i < kRounds; ++i) {
      const std::uint64_t anchor = c.now_floor();
      const std::uint64_t s = c.acquire(1);
      if (s <= anchor) violation.store(true, std::memory_order_relaxed);
    }
  });
  writer.join();
  reader.join();
  EXPECT_FALSE(violation.load());
}

// --- ScalarTimeBase in batched mode ------------------------------------------

TEST(ScalarTimeBase, BatchedModeHonorsSnapshotAndFloorContracts) {
  ScalarTimeBase tb(2, /*batch=*/8);
  ASSERT_EQ(tb.kind(), TimeBaseKind::kBatchedCounter);
  ASSERT_NE(tb.batched(), nullptr);
  const std::uint64_t snap = tb.now_snapshot(0);
  const std::uint64_t s1 = tb.acquire_commit_stamp(0, 0);
  EXPECT_GT(s1, snap);
  const std::uint64_t s2 = tb.acquire_commit_stamp(1, s1);
  EXPECT_GT(s2, s1);
  tb.wait_until_safe(1, s2);
  // After the fence, slot 0's acquire must exceed the fenced stamp even
  // though its old lease started below it.
  EXPECT_GT(tb.acquire_commit_stamp(0, 0), s2);
  tb.release_slot(0);
  tb.release_slot(1);
}

// --- ShardedClock ------------------------------------------------------------

TEST(ShardedClock, StampOrderSemantics) {
  const ShardStamp a{0, 1}, b{0, 2}, c{1, 1};
  EXPECT_EQ(a.compare(b), Order::kBefore);
  EXPECT_EQ(b.compare(a), Order::kAfter);
  EXPECT_EQ(a.compare(a), Order::kEqual);
  EXPECT_EQ(a.compare(c), Order::kConcurrent);
  EXPECT_EQ(c.compare(a), Order::kConcurrent);
}

TEST(ShardedClock, PerShardTicksAreStrictlyIncreasing) {
  ShardedClock clk(8, 2);
  std::uint64_t prev = 0;
  for (int i = 0; i < 50; ++i) {
    const ShardStamp s = clk.tick(0);
    EXPECT_GT(s.tick, prev);
    prev = s.tick;
  }
}

TEST(ShardedClock, ExclusiveLayoutIsIdentityMappedSingleWriterLanes) {
  // shards == slots selects the exclusive layout: identity slot→shard map
  // and the RMW-free single-writer increment.
  ShardedClock ex(4, 4);
  EXPECT_TRUE(ex.exclusive());
  for (int s = 0; s < 4; ++s) EXPECT_EQ(ex.shard_of(s), s);
  std::uint64_t prev = 0;
  for (int i = 0; i < 100; ++i) {
    const ShardStamp st = ex.tick(2);
    EXPECT_EQ(st.shard, 2u);
    EXPECT_GT(st.tick, prev);
    prev = st.tick;
  }
  // Fewer shards than slots: shared lanes, not exclusive.
  EXPECT_FALSE(ShardedClock(8, 2).exclusive());
}

TEST(ShardedClock, ExclusiveLaneIsVisibleToConcurrentReaders) {
  // One writer advancing its own lane; a reader polling now() on the same
  // shard must see a non-decreasing sequence that eventually reaches the
  // writer's last tick (release store → acquire-free relaxed load is fine
  // for monotonicity; coherence gives per-location order).
  ShardedClock clk(2, 2);
  ASSERT_TRUE(clk.exclusive());
  constexpr int kTicks = 50000;
  std::atomic<bool> done{false};
  std::atomic<bool> regressed{false};
  std::thread reader([&] {
    std::uint64_t prev = 0;
    while (!done.load(std::memory_order_acquire)) {
      const std::uint64_t t = clk.now(0).tick;
      if (t < prev) regressed.store(true, std::memory_order_relaxed);
      prev = t;
    }
  });
  std::uint64_t last = 0;
  for (int i = 0; i < kTicks; ++i) last = clk.tick(0).tick;
  done.store(true, std::memory_order_release);
  reader.join();
  EXPECT_FALSE(regressed.load());
  EXPECT_EQ(last, static_cast<std::uint64_t>(kTicks));
  EXPECT_EQ(clk.now(0).tick, static_cast<std::uint64_t>(kTicks));
}

TEST(ShardedClock, ShardCountClampsToSlotsAndMax) {
  EXPECT_EQ(ShardedClock(2, 8).shards(), 2);   // clamped to slots
  EXPECT_EQ(ShardedClock(4, 0).shards(), util::cpu_topology().groups > 4
                                             ? 4
                                             : util::cpu_topology().groups);
  EXPECT_EQ(ShardedClock(64, 1000).shards(), ShardedClock::kMaxShards);
}

TEST(ShardedClock, ConcurrentUniqueIdsNeverCollide) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  ShardedClock clk(kThreads, kThreads);  // one shard per slot
  std::vector<std::vector<std::uint64_t>> got(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto& mine = got[static_cast<std::size_t>(t)];
      mine.reserve(kPerThread);
      for (int i = 0; i < kPerThread; ++i) mine.push_back(clk.unique_id(t));
    });
  }
  for (auto& th : threads) th.join();
  std::set<std::uint64_t> all;
  for (auto& v : got) all.insert(v.begin(), v.end());
  EXPECT_EQ(all.size(), static_cast<std::size_t>(kThreads) * kPerThread);
  EXPECT_EQ(all.count(0), 0u);  // ids are non-zero
}

// --- topology helpers --------------------------------------------------------

TEST(CpuTopology, DiscoveryIsSane) {
  const util::CpuTopology& topo = util::cpu_topology();
  EXPECT_GE(topo.cpus, 1);
  EXPECT_GE(topo.groups, 1);
  EXPECT_LE(topo.groups, topo.cpus);
  ASSERT_EQ(topo.group_of_cpu.size(), static_cast<std::size_t>(topo.cpus));
  for (const int g : topo.group_of_cpu) {
    EXPECT_GE(g, 0);
    EXPECT_LT(g, topo.groups);
  }
  EXPECT_FALSE(topo.source.empty());
}

TEST(CpuTopology, SlotHomeGroupsPartitionSlotsContiguously) {
  const int groups = util::cpu_topology().groups;
  constexpr int kCapacity = 16;
  int prev = 0;
  for (int s = 0; s < kCapacity; ++s) {
    const int g = util::slot_home_group(s, kCapacity);
    EXPECT_GE(g, 0);
    EXPECT_LT(g, groups);
    EXPECT_GE(g, prev);  // monotone over slot ids = contiguous blocks
    prev = g;
  }
  // Out-of-range inputs stay valid group indices.
  EXPECT_EQ(util::slot_home_group(-1, kCapacity), 0);
  const int g = util::slot_home_group(kCapacity + 3, kCapacity);
  EXPECT_GE(g, 0);
  EXPECT_LT(g, groups);
}

TEST(ThreadRegistry, TopologyAttachStillClaimsEverySlot) {
  // Whatever the topology, attach must hand out all capacity slots
  // exactly once, and home_group must be consistent with the static map.
  util::ThreadRegistry reg(8);
  std::vector<util::ThreadRegistry::Registration> regs;
  std::set<int> seen;
  for (int i = 0; i < 8; ++i) {
    regs.push_back(reg.attach());
    EXPECT_TRUE(seen.insert(regs.back().slot()).second);
    EXPECT_EQ(reg.home_group(regs.back().slot()),
              util::slot_home_group(regs.back().slot(), 8));
  }
  EXPECT_EQ(static_cast<int>(seen.size()), 8);
  EXPECT_THROW(reg.attach(), std::runtime_error);
}

}  // namespace
}  // namespace zstm::timebase
