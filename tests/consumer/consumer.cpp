// External-consumer smoke test: commits one transaction on every runtime
// variant through the installed package (built against find_package(zstm)
// instead of the source tree). Exercises both façade flavours — AnyStm by
// name and a statically-typed Stm<R> — plus one raw-runtime call, so the
// installed header set covers the whole public surface.
#include <cstdio>
#include <string>

#include "core/stm.hpp"

int main() {
  using zstm::api::TxKind;

  // Every variant by name through the type-erased façade.
  for (const std::string& name : zstm::api::AnyStm::variant_names()) {
    zstm::api::AnyStm stm = zstm::api::AnyStm::make(name);
    auto v = stm.make_var<long>(1);
    stm.run(TxKind::kUpdate, [&](auto& tx) { tx.write(v) += 1; });
    long seen = 0;
    stm.run(TxKind::kLong, [&](auto& tx) { seen = tx.read(v); });
    if (seen != 2) {
      std::fprintf(stderr, "%s: unexpected value %ld\n", name.c_str(), seen);
      return 1;
    }
  }

  // The zero-cost adapter, statically typed.
  {
    zstm::api::ZStm stm;
    auto v = stm.make_var<long>(1);
    stm.run(TxKind::kUpdate, [&](auto& tx) { tx.write(v) += 1; });
  }

  // The raw per-runtime API stays public underneath the façade.
  {
    zstm::lsa::Runtime rt;
    auto v = rt.make_var<long>(1);
    auto th = rt.attach();
    const zstm::runtime::RunResult r =
        rt.run(*th, [&](zstm::lsa::Tx& tx) { tx.write(v) += 1; });
    if (!r.committed) return 1;
  }

  std::printf("zstm consumer smoke test passed\n");
  return 0;
}
