// External-consumer smoke test: commits one transaction on each runtime
// through the installed package (mirrors tests/smoke_test.cpp, but built
// against find_package(zstm) instead of the source tree).
#include <cstdio>

#include "core/stm.hpp"

int main() {
  // LSA
  {
    zstm::lsa::Runtime rt;
    auto v = rt.make_var<long>(1);
    auto th = rt.attach();
    rt.run(*th, [&](zstm::lsa::Tx& tx) { tx.write(v) += 1; });
  }
  // CS (vector clocks)
  {
    auto rt = zstm::cs::make_vc_runtime();
    auto v = rt->make_var<long>(1);
    auto th = rt->attach();
    rt->run(*th, [&](zstm::cs::VcRuntime::Tx& tx) { tx.write(v) += 1; });
  }
  // S-STM
  {
    zstm::sstm::Runtime rt;
    auto v = rt.make_var<long>(1);
    auto th = rt.attach();
    rt.run(*th, [&](zstm::sstm::Tx& tx) { tx.write(v) += 1; });
  }
  // Z-STM (short + long)
  {
    zstm::zl::Runtime rt;
    auto v = rt.make_var<long>(1);
    auto th = rt.attach();
    rt.run_short(*th, [&](zstm::zl::ShortTx& tx) { tx.write(v) += 1; });
    long seen = 0;
    rt.run_long(*th, [&](zstm::zl::LongTx& tx) { seen = tx.read(v); });
    if (seen != 2) {
      std::fprintf(stderr, "unexpected value %ld\n", seen);
      return 1;
    }
  }
  std::printf("zstm consumer smoke test passed\n");
  return 0;
}
