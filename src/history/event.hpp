// Transaction history records.
//
// Each STM can record, per transaction attempt: which object versions were
// read, which versions were created (and which version they superseded),
// the real-time interval, the zone (Z-STM), and the commit stamp (vector
// clock STMs). Offline checkers then verify the consistency criterion each
// algorithm promises. Version ids are globally unique and each write names
// its parent, so the per-object version order is recoverable for any STM
// regardless of its time base.
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/txdesc.hpp"

namespace zstm::history {

struct ReadAccess {
  std::uint64_t object;
  std::uint64_t version;  // 0 = the object's initial version
};

struct WriteAccess {
  std::uint64_t object;
  std::uint64_t version;  // id of the version this transaction created
  std::uint64_t parent;   // id of the version it superseded (0 = initial)
};

struct TxRecord {
  std::uint64_t tx_id = 0;
  int thread_slot = -1;
  runtime::TxClass tx_class = runtime::TxClass::kShort;
  bool committed = false;
  std::uint64_t begin_seq = 0;  // recorder tick taken at transaction begin
  std::uint64_t end_seq = 0;    // recorder tick taken after the commit point
  std::uint64_t zone = 0;       // Z-STM: T.zc at commit (0 = not zoned)
  std::vector<std::uint64_t> stamp;  // vector/plausible commit timestamp
  /// Timestamp at validation time (before the own-component bump of
  /// Algorithm 1 line 29). With exact vector clocks this is redundant, but
  /// with shared REV entries the bump can spuriously dominate a concurrent
  /// commit's stamp, so validation-order checks must use this one.
  std::vector<std::uint64_t> vstamp;
  std::vector<ReadAccess> reads;
  std::vector<WriteAccess> writes;
};

struct History {
  std::vector<TxRecord> txs;

  std::size_t committed_count() const {
    std::size_t n = 0;
    for (const auto& t : txs) n += t.committed ? 1 : 0;
    return n;
  }
};

}  // namespace zstm::history
