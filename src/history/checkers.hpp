// Offline consistency checkers.
//
// Given a recorded History, these verify the criterion each STM promises:
//
//  * check_serializable          — multiversion serialization graph (MVSG)
//    acyclicity over committed transactions: wr (reads-from), ww (version
//    order) and rw (anti-dependency) edges. Acyclicity is a sufficient
//    condition for serializability, so a passing verdict is sound; the
//    check is conservative in the other direction, which is what a test
//    suite wants.
//  * check_strictly_serializable — MVSG plus real-time precedence edges
//    between all committed transactions; this is linearizability at
//    transaction granularity, the guarantee of classic TBTMs (§1/§2).
//  * check_z_linearizable        — the four clauses of §5: (1) long
//    transactions linearizable, (2) short transactions of each zone
//    linearizable, (3) everything serializable, (4) the serialization
//    respects each thread's program order. Verified as acyclicity of the
//    MVSG augmented with long-set real-time edges, per-zone real-time
//    edges, and per-thread program-order edges — i.e. one serialization
//    witnesses all four clauses simultaneously.
//  * check_causal_conditions     — the §4.1 proof obligations for CS-STM
//    histories with recorded vector timestamps: (a) committed timestamps
//    dominate every version accessed, (b) per-object write order agrees
//    with timestamp order, (c) no committed transaction both causally
//    precedes and follows another (the validation invariant: no read
//    version has a previously-committed successor with stamp ≺ the
//    reader's stamp).
#pragma once

#include <string>

#include "history/event.hpp"

namespace zstm::history {

struct CheckResult {
  bool ok = true;
  std::string reason;

  static CheckResult pass() { return CheckResult{}; }
  static CheckResult fail(std::string why) { return CheckResult{false, std::move(why)}; }

  explicit operator bool() const { return ok; }
};

CheckResult check_serializable(const History& h);
CheckResult check_strictly_serializable(const History& h);
CheckResult check_z_linearizable(const History& h);
CheckResult check_causal_conditions(const History& h);

/// MVSG plus per-thread program-order edges, without cross-thread real-time
/// edges: the guarantee of LSA on *synchronized real-time clocks* with a
/// non-zero deviation bound. Such a time base is not linearizable (§2: LSA
/// "ensures linearizability if the time base is linearizable"), so
/// snapshots may anchor up to the deviation in the past of other threads'
/// commits; within a thread, order is still exact.
CheckResult check_serializable_with_program_order(const History& h);

}  // namespace zstm::history
