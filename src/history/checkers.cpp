#include "history/checkers.hpp"

#include <algorithm>
#include <cstddef>
#include <sstream>
#include <unordered_map>
#include <vector>

namespace zstm::history {

namespace {

/// Working view over the committed transactions of a history, with the
/// per-object version relationships resolved.
struct Committed {
  std::vector<const TxRecord*> txs;           // committed only
  std::unordered_map<std::uint64_t, int> index;  // tx_id → node
  std::unordered_map<std::uint64_t, int> writer_of;   // version → node
  std::unordered_map<std::uint64_t, std::uint64_t> child_of;  // version → child version
  std::string error;  // non-empty if the history itself is malformed

  explicit Committed(const History& h) {
    for (const auto& t : h.txs) {
      if (!t.committed) continue;
      if (!index.emplace(t.tx_id, static_cast<int>(txs.size())).second) {
        error = "duplicate transaction id in history";
        return;
      }
      txs.push_back(&t);
    }
    for (std::size_t i = 0; i < txs.size(); ++i) {
      for (const auto& w : txs[i]->writes) {
        if (!writer_of.emplace(w.version, static_cast<int>(i)).second) {
          error = "two committed transactions created the same version id";
          return;
        }
        if (w.parent != 0) {
          if (!child_of.emplace(w.parent, w.version).second) {
            // Two committed writers superseded the same version: the
            // single-writer / validation rules of every STM here forbid it.
            error = "version superseded by two committed writers";
            return;
          }
        }
      }
    }
    // Initial versions (id 0 per object) may have one committed child per
    // object; those parents are all recorded as 0 and are skipped above, so
    // detect duplicate initial-children per object separately.
    std::unordered_map<std::uint64_t, int> initial_child_count;
    for (const auto* t : txs) {
      for (const auto& w : t->writes) {
        if (w.parent == 0 && ++initial_child_count[w.object] > 1) {
          error = "initial version superseded by two committed writers";
          return;
        }
      }
    }
  }
};

class Graph {
 public:
  explicit Graph(std::size_t tx_nodes) : n_(tx_nodes), adj_(tx_nodes) {}

  int add_aux_node() {
    adj_.emplace_back();
    return static_cast<int>(adj_.size() - 1) - 0;
  }

  void add_edge(int from, int to) {
    if (from == to) return;
    adj_[static_cast<std::size_t>(from)].push_back(to);
  }

  /// Kahn's algorithm; on a cycle, reports some nodes left unprocessed.
  CheckResult check_acyclic(const Committed& c, const char* what) const {
    std::vector<int> indeg(adj_.size(), 0);
    for (const auto& out : adj_) {
      for (int v : out) ++indeg[static_cast<std::size_t>(v)];
    }
    std::vector<int> queue;
    for (std::size_t i = 0; i < adj_.size(); ++i) {
      if (indeg[i] == 0) queue.push_back(static_cast<int>(i));
    }
    std::size_t seen = 0;
    while (!queue.empty()) {
      const int u = queue.back();
      queue.pop_back();
      ++seen;
      for (int v : adj_[static_cast<std::size_t>(u)]) {
        if (--indeg[static_cast<std::size_t>(v)] == 0) queue.push_back(v);
      }
    }
    if (seen == adj_.size()) return CheckResult::pass();

    std::ostringstream os;
    os << what << ": precedence cycle among committed transactions; "
       << "transactions stuck in the cycle:";
    int listed = 0;
    for (std::size_t i = 0; i < adj_.size() && listed < 8; ++i) {
      if (indeg[i] > 0 && i < n_) {
        os << " tx" << c.txs[i]->tx_id;
        ++listed;
      }
    }
    return CheckResult::fail(os.str());
  }

  std::size_t tx_nodes() const { return n_; }
  const std::vector<std::vector<int>>& adjacency() const { return adj_; }

 private:
  std::size_t n_;
  std::vector<std::vector<int>> adj_;
};

/// MVSG edges: wr (writer → reader), ww (parent writer → child writer),
/// rw (reader of v → writer of v's committed successor).
void add_mvsg_edges(const Committed& c, Graph& g) {
  for (std::size_t i = 0; i < c.txs.size(); ++i) {
    const int me = static_cast<int>(i);
    for (const auto& r : c.txs[i]->reads) {
      if (r.version != 0) {
        auto w = c.writer_of.find(r.version);
        if (w != c.writer_of.end()) g.add_edge(w->second, me);  // wr
      }
      auto child = c.child_of.find(r.version);
      if (child != c.child_of.end()) {
        auto cw = c.writer_of.find(child->second);
        if (cw != c.writer_of.end()) g.add_edge(me, cw->second);  // rw
      }
    }
    for (const auto& w : c.txs[i]->writes) {
      if (w.parent != 0) {
        auto pw = c.writer_of.find(w.parent);
        if (pw != c.writer_of.end()) g.add_edge(pw->second, me);  // ww
      }
    }
  }
  // rw edges where the read version is an object's initial version (id 0)
  // and some committed transaction overwrote that initial version: reader
  // precedes that writer.
  std::unordered_map<std::uint64_t, int> initial_writer;  // object → node
  for (std::size_t i = 0; i < c.txs.size(); ++i) {
    for (const auto& w : c.txs[i]->writes) {
      if (w.parent == 0) initial_writer[w.object] = static_cast<int>(i);
    }
  }
  for (std::size_t i = 0; i < c.txs.size(); ++i) {
    for (const auto& r : c.txs[i]->reads) {
      if (r.version != 0) continue;
      auto it = initial_writer.find(r.object);
      if (it != initial_writer.end()) g.add_edge(static_cast<int>(i), it->second);
    }
  }
}

/// Encode "ends-before-begins ⇒ precedes" over the given subset of nodes in
/// O(k log k) using a barrier chain: one auxiliary node per distinct end
/// tick; each transaction feeds its barrier and hangs off the last barrier
/// whose end tick precedes its begin tick. Transitivity through the chain
/// covers all pairwise real-time edges.
void add_realtime_edges(const Committed& c, const std::vector<int>& subset,
                        Graph& g) {
  if (subset.size() < 2) return;
  std::vector<int> by_end(subset);
  std::sort(by_end.begin(), by_end.end(), [&](int a, int b) {
    return c.txs[static_cast<std::size_t>(a)]->end_seq <
           c.txs[static_cast<std::size_t>(b)]->end_seq;
  });
  std::vector<std::uint64_t> end_ticks;
  std::vector<int> barriers;
  end_ticks.reserve(by_end.size());
  barriers.reserve(by_end.size());
  for (std::size_t i = 0; i < by_end.size(); ++i) {
    const int barrier = g.add_aux_node();
    if (!barriers.empty()) g.add_edge(barriers.back(), barrier);
    g.add_edge(by_end[i], barrier);
    barriers.push_back(barrier);
    end_ticks.push_back(c.txs[static_cast<std::size_t>(by_end[i])]->end_seq);
  }
  for (int node : subset) {
    const std::uint64_t begin = c.txs[static_cast<std::size_t>(node)]->begin_seq;
    // Last end tick strictly below this begin.
    auto it = std::lower_bound(end_ticks.begin(), end_ticks.end(), begin);
    if (it == end_ticks.begin()) continue;
    const std::size_t k = static_cast<std::size_t>(it - end_ticks.begin()) - 1;
    g.add_edge(barriers[k], node);
  }
}

void add_program_order_edges(const Committed& c, Graph& g) {
  std::unordered_map<int, std::vector<int>> by_slot;
  for (std::size_t i = 0; i < c.txs.size(); ++i) {
    by_slot[c.txs[i]->thread_slot].push_back(static_cast<int>(i));
  }
  for (auto& [slot, nodes] : by_slot) {
    (void)slot;
    std::sort(nodes.begin(), nodes.end(), [&](int a, int b) {
      return c.txs[static_cast<std::size_t>(a)]->begin_seq <
             c.txs[static_cast<std::size_t>(b)]->begin_seq;
    });
    for (std::size_t i = 1; i < nodes.size(); ++i) {
      g.add_edge(nodes[i - 1], nodes[i]);
    }
  }
}

// Vector stamp helpers (stamps may be empty if the STM records none).
bool stamp_leq(const std::vector<std::uint64_t>& a,
               const std::vector<std::uint64_t>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t k = 0; k < a.size(); ++k) {
    if (a[k] > b[k]) return false;
  }
  return true;
}

bool stamp_less(const std::vector<std::uint64_t>& a,
                const std::vector<std::uint64_t>& b) {
  return stamp_leq(a, b) && a != b;
}

}  // namespace

CheckResult check_serializable(const History& h) {
  Committed c(h);
  if (!c.error.empty()) return CheckResult::fail(c.error);
  Graph g(c.txs.size());
  add_mvsg_edges(c, g);
  return g.check_acyclic(c, "serializability");
}

CheckResult check_serializable_with_program_order(const History& h) {
  Committed c(h);
  if (!c.error.empty()) return CheckResult::fail(c.error);
  Graph g(c.txs.size());
  add_mvsg_edges(c, g);
  add_program_order_edges(c, g);
  return g.check_acyclic(c, "serializability+program-order");
}

CheckResult check_strictly_serializable(const History& h) {
  Committed c(h);
  if (!c.error.empty()) return CheckResult::fail(c.error);
  Graph g(c.txs.size());
  add_mvsg_edges(c, g);
  std::vector<int> all(c.txs.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = static_cast<int>(i);
  add_realtime_edges(c, all, g);
  return g.check_acyclic(c, "strict serializability");
}

CheckResult check_z_linearizable(const History& h) {
  Committed c(h);
  if (!c.error.empty()) return CheckResult::fail(c.error);
  Graph g(c.txs.size());
  add_mvsg_edges(c, g);  // clause (3): everything serializable

  // Clause (1): real-time order among long transactions.
  std::vector<int> longs;
  for (std::size_t i = 0; i < c.txs.size(); ++i) {
    if (c.txs[i]->tx_class == runtime::TxClass::kLong) {
      longs.push_back(static_cast<int>(i));
    }
  }
  add_realtime_edges(c, longs, g);

  // Clause (2): real-time order among the short transactions of each zone.
  std::unordered_map<std::uint64_t, std::vector<int>> zones;
  for (std::size_t i = 0; i < c.txs.size(); ++i) {
    if (c.txs[i]->tx_class == runtime::TxClass::kShort) {
      zones[c.txs[i]->zone].push_back(static_cast<int>(i));
    }
  }
  for (auto& [zone, members] : zones) {
    (void)zone;
    add_realtime_edges(c, members, g);
  }

  // Clause (4): per-thread program order.
  add_program_order_edges(c, g);

  return g.check_acyclic(c, "z-linearizability");
}

CheckResult check_causal_conditions(const History& h) {
  Committed c(h);
  if (!c.error.empty()) return CheckResult::fail(c.error);
  for (std::size_t i = 0; i < c.txs.size(); ++i) {
    const TxRecord& t = *c.txs[i];
    if (t.stamp.empty()) {
      return CheckResult::fail("causal check requires recorded stamps");
    }
    const bool read_only = t.writes.empty();
    for (const auto& r : t.reads) {
      if (r.version == 0) continue;
      auto wit = c.writer_of.find(r.version);
      if (wit == c.writer_of.end()) continue;
      const TxRecord& w = *c.txs[static_cast<std::size_t>(wit->second)];
      if (w.tx_id == t.tx_id) continue;
      // (a) a transaction's timestamp dominates every version it accessed;
      //     strictly if it incremented its own component (update tx).
      const bool ok = read_only ? stamp_leq(w.stamp, t.stamp)
                                : stamp_less(w.stamp, t.stamp);
      if (!ok) {
        std::ostringstream os;
        os << "causality: tx" << t.tx_id << " read a version of object "
           << r.object << " whose writer stamp does not precede its own";
        return CheckResult::fail(os.str());
      }
      // (c) validation invariant: a successor committed before this reader
      //     must not causally precede the reader. Compare against the
      //     reader's *validation-time* stamp (pre-bump), exactly as the
      //     live algorithm did.
      auto child = c.child_of.find(r.version);
      if (child != c.child_of.end()) {
        auto cw = c.writer_of.find(child->second);
        if (cw != c.writer_of.end()) {
          const TxRecord& succ = *c.txs[static_cast<std::size_t>(cw->second)];
          const auto& reader_stamp = t.vstamp.empty() ? t.stamp : t.vstamp;
          // ≼, not ≺: equal stamps mean the reader absorbed the successor's
          // time through another object (see cs.hpp validation comment).
          if (succ.tx_id != t.tx_id && succ.end_seq < t.end_seq &&
              stamp_leq(succ.stamp, reader_stamp)) {
            std::ostringstream os;
            os << "validation invariant: tx" << t.tx_id
               << " committed although version of object " << r.object
               << " it read was superseded by causally preceding tx"
               << succ.tx_id;
            return CheckResult::fail(os.str());
          }
        }
      }
    }
    // (b) per-object write order agrees with timestamp order.
    for (const auto& w : t.writes) {
      if (w.parent == 0) continue;
      auto pw = c.writer_of.find(w.parent);
      if (pw == c.writer_of.end()) continue;
      const TxRecord& parent = *c.txs[static_cast<std::size_t>(pw->second)];
      if (parent.tx_id == t.tx_id) continue;
      if (!stamp_less(parent.stamp, t.stamp)) {
        std::ostringstream os;
        os << "write order: object " << w.object << " versions by tx"
           << parent.tx_id << " and tx" << t.tx_id
           << " are not timestamp-ordered";
        return CheckResult::fail(os.str());
      }
    }
  }
  return CheckResult::pass();
}

}  // namespace zstm::history
