#include "history/recorder.hpp"

namespace zstm::history {

Recorder::Recorder(bool enabled, int slots)
    : enabled_(enabled), buffers_(static_cast<std::size_t>(slots)) {}

void Recorder::record(int slot, TxRecord&& rec) {
  buffers_[static_cast<std::size_t>(slot)].value.push_back(std::move(rec));
}

History Recorder::collect() const {
  History h;
  std::size_t total = 0;
  for (const auto& b : buffers_) total += b.value.size();
  h.txs.reserve(total);
  for (const auto& b : buffers_) {
    h.txs.insert(h.txs.end(), b.value.begin(), b.value.end());
  }
  return h;
}

void Recorder::clear() {
  for (auto& b : buffers_) b.value.clear();
}

}  // namespace zstm::history
