// Low-overhead history recorder.
//
// Disabled by default (a single branch per event); when enabled, records go
// to per-thread-slot buffers (no cross-thread synchronization on the hot
// path) and are merged by collect() after workers quiesce.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "history/event.hpp"
#include "util/align.hpp"

namespace zstm::history {

class Recorder {
 public:
  Recorder(bool enabled, int slots);

  bool enabled() const { return enabled_; }

  /// Global sequence point. Two calls t1 < t2 imply the first call's
  /// linearization preceded the second's — used to derive real-time order
  /// between transactions (end tick < begin tick ⇒ precedes in real time).
  std::uint64_t tick() { return seq_.value.fetch_add(1, std::memory_order_acq_rel); }

  /// Globally unique id for a freshly created version.
  std::uint64_t new_version_id() {
    return version_ids_.value.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  void record(int slot, TxRecord&& rec);

  /// Merge all per-slot buffers. Callers must have quiesced the workers.
  History collect() const;

  void clear();

 private:
  bool enabled_;
  util::PaddedCounter seq_;
  util::PaddedCounter version_ids_;
  std::vector<util::Padded<std::vector<TxRecord>>> buffers_;
};

}  // namespace zstm::history
