#include "tl2/tl2.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <new>
#include <stdexcept>
#include <string_view>

#include "fault/failpoint.hpp"

namespace zstm::tl2 {

namespace {

constexpr std::uint64_t kLockedBit = 1;

inline bool locked(std::uint64_t lw) { return (lw & kLockedBit) != 0; }
inline std::uint64_t version_of(std::uint64_t lw) { return lw >> 1; }

}  // namespace

// ---------------------------------------------------------------------------
// Runtime
// ---------------------------------------------------------------------------

Runtime::Runtime(Config cfg)
    : cfg_(cfg),
      registry_(cfg.max_threads),
      stats_(registry_),
      pool_(registry_, &stats_, cfg.use_node_pool),
      recorder_(cfg.record_history, registry_.capacity()),
      id_clock_(cfg.max_threads, /*shards=*/cfg.max_threads),
      sharded_ids_(timebase::sharded_ids_enabled(cfg.sharded_tx_ids)) {
  int bits = cfg.lock_table_bits;
  if (bits < 6) bits = 6;
  if (bits > 24) bits = 24;
  const std::size_t n = std::size_t{1} << bits;
  stripe_mask_ = static_cast<std::uint32_t>(n - 1);
  locks_ = std::make_unique<std::atomic<std::uint64_t>[]>(n);
}

Runtime::~Runtime() = default;

std::unique_ptr<ThreadCtx> Runtime::attach() {
  return std::unique_ptr<ThreadCtx>(new ThreadCtx(*this, registry_.attach()));
}

Object* Runtime::allocate_object(runtime::Payload* initial) {
  std::unique_ptr<runtime::Payload> proto(initial);
  // Probe that the payload supports both paths tl2 relies on: placement-
  // cloning into a log-node buffer and the raw-bytes view of its value.
  alignas(runtime::Payload::kInlineAlign) unsigned char probe[kBufBytes];
  runtime::Payload* clone = proto->clone_into(probe, sizeof probe);
  const std::size_t bytes = clone != nullptr ? clone->raw_size() : 0;
  if (clone != nullptr) clone->~Payload();
  if (bytes == 0 || bytes > kMaxBytes) {
    throw std::invalid_argument(
        "tl2 objects must hold trivially copyable values of at most " +
        std::to_string(kMaxBytes) + " bytes");
  }

  auto obj = std::make_unique<Object>();
  obj->oid = oids_.value.fetch_add(1, std::memory_order_relaxed) + 1;
  obj->bytes = static_cast<std::uint32_t>(bytes);
  obj->word_count = static_cast<std::uint32_t>((bytes + 7) / 8);
  obj->words =
      std::make_unique<std::atomic<std::uint64_t>[]>(obj->word_count);
  const auto* src = static_cast<const unsigned char*>(proto->raw_bytes());
  for (std::uint32_t i = 0; i < obj->word_count; ++i) {
    std::uint64_t w = 0;
    const std::size_t n = std::min<std::size_t>(8, bytes - i * 8);
    std::memcpy(&w, src + i * 8, n);
    obj->words[i].store(w, std::memory_order_relaxed);
  }
  obj->prototype = std::move(proto);

  Object* raw = obj.get();
  std::lock_guard<std::mutex> lk(objects_mu_);
  objects_.push_back(std::move(obj));
  return raw;
}

void* Runtime::acquire_buf(int slot) {
  if (fault::poke(fault::Site::kPoolAlloc) == fault::Effect::kOom) {
    throw std::bad_alloc{};
  }
  if (pool_.enabled()) return pool_.allocate(slot, kBufBytes);
  return ::operator new(kBufBytes,
                        std::align_val_t{runtime::Payload::kInlineAlign});
}

void Runtime::release_buf(int slot, void* p) {
  if (pool_.enabled()) {
    object::NodePool::release_block(p, slot);
    return;
  }
  ::operator delete(p, std::align_val_t{runtime::Payload::kInlineAlign});
}

// ---------------------------------------------------------------------------
// ThreadCtx
// ---------------------------------------------------------------------------

ThreadCtx::ThreadCtx(Runtime& rt, util::ThreadRegistry::Registration reg)
    : rt_(rt), reg_(std::move(reg)), tx_(*this) {}

ThreadCtx::~ThreadCtx() {
  if (active_) abort_attempt();
}

Tx& ThreadCtx::begin(bool read_only) {
  if (active_) abort_attempt();  // leaked attempt (foreign exception)
  active_ = true;
  tx_.read_only_ = read_only;
  tx_.read_set_.clear();
  tx_.write_set_.clear();
  tx_.snaps_.clear();
  if (rt_.recorder_.enabled()) {
    tx_.rec_ = history::TxRecord{};
    tx_.rec_.tx_id = rt_.next_tx_id(slot());
    tx_.rec_.thread_slot = slot();
    tx_.rec_.tx_class = runtime::TxClass::kShort;
    tx_.rec_.begin_seq = rt_.recorder_.tick();
  }
  tx_.rv_ = rt_.clock_.now();
  return tx_;
}

void ThreadCtx::drop_logs() {
  const int s = slot();
  for (runtime::Payload* snap : tx_.snaps_) {
    void* mem = snap;
    snap->~Payload();
    rt_.release_buf(s, mem);
  }
  for (auto& w : tx_.write_set_) {
    void* mem = w.redo;
    w.redo->~Payload();
    rt_.release_buf(s, mem);
  }
  tx_.snaps_.clear();
  tx_.read_set_.clear();
  tx_.write_set_.clear();
}

void ThreadCtx::finish_attempt(bool committed) {
  if (rt_.recorder_.enabled()) {
    tx_.rec_.committed = committed;
    tx_.rec_.end_seq = rt_.recorder_.tick();
    rt_.recorder_.record(slot(), std::move(tx_.rec_));
  }
  drop_logs();
  active_ = false;
}

void ThreadCtx::abort_attempt() {
  rt_.stats_.add(slot(), util::Counter::kAborts);
  finish_attempt(false);
}

void ThreadCtx::fail(util::Counter reason) {
  rt_.stats_.add(slot(), reason);
  abort_attempt();
  throw TxAborted{};
}

bool ThreadCtx::try_read_words(Object& o, std::uint64_t rv, void* dst,
                               std::uint64_t* vid_out) {
  std::uint64_t pre[Runtime::kMaxWords];
  const std::uint32_t nw = o.word_count;
  for (std::uint32_t i = 0; i < nw; ++i) {
    const std::uint64_t lw =
        rt_.lockword(rt_.stripe_of(&o.words[i])).load(std::memory_order_acquire);
    if (locked(lw) || version_of(lw) > rv) return false;
    pre[i] = lw;
  }

  auto* out = static_cast<unsigned char*>(dst);
  for (std::uint32_t i = 0; i < nw; ++i) {
    const std::uint64_t w = o.words[i].load(std::memory_order_acquire);
    const std::size_t n = std::min<std::size_t>(8, o.bytes - i * 8);
    std::memcpy(out + i * 8, &w, n);
  }
  const std::uint64_t vid = o.vid.load(std::memory_order_acquire);

  // Post-check: any stripe that moved (locked or advanced) may have torn
  // the copy — the release/acquire pairing on master words guarantees a
  // reader of fresh data sees the fresh lock word here and lands in this
  // branch rather than keeping a stale-but-clean-looking copy.
  for (std::uint32_t i = 0; i < nw; ++i) {
    const std::uint64_t lw =
        rt_.lockword(rt_.stripe_of(&o.words[i])).load(std::memory_order_acquire);
    if (lw != pre[i]) return false;
  }
  *vid_out = vid;
  return true;
}

runtime::Payload* ThreadCtx::snapshot_object(Object& o, std::uint64_t rv,
                                             std::uint64_t* vid_out) {
  const int s = slot();
  void* mem = rt_.acquire_buf(s);
  // allocate_object proved clone_into succeeds for this payload.
  runtime::Payload* snap = o.prototype->clone_into(mem, Runtime::kBufBytes);
  if (!try_read_words(o, rv, snap->raw_bytes(), vid_out)) {
    snap->~Payload();
    rt_.release_buf(s, mem);
    fail(util::Counter::kValidationFails);
  }
  return snap;
}

void ThreadCtx::release_acquired(std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    rt_.lockword(stripes_[i]).store(stripe_old_[i], std::memory_order_release);
  }
}

void ThreadCtx::commit() {
  Tx& tx = tx_;
  const int s = slot();

  if (tx.write_set_.empty()) {
    // Read-only: every read was individually anchored at rv, so the
    // transaction serializes at its begin — nothing to validate.
    rt_.stats_.add(s, util::Counter::kCommits);
    finish_attempt(true);
    return;
  }

  // 1. The write set's stripes, sorted and deduped: a canonical global
  //    acquisition order makes committer deadlock impossible.
  stripes_.clear();
  stripe_old_.clear();
  for (const auto& w : tx.write_set_) {
    for (std::uint32_t i = 0; i < w.obj->word_count; ++i) {
      stripes_.push_back(rt_.stripe_of(&w.obj->words[i]));
    }
  }
  std::sort(stripes_.begin(), stripes_.end());
  stripes_.erase(std::unique(stripes_.begin(), stripes_.end()),
                 stripes_.end());

  // 2. Acquire each stripe with a bounded spin; on failure restore the
  //    ones already held and retry the whole transaction.
  std::size_t acquired = 0;
  for (const std::uint32_t st : stripes_) {
    auto& lw = rt_.lockword(st);
    bool ok = false;
    if (fault::poke(fault::Site::kTl2StripeLock) ==
        fault::Effect::kCasFail) {
      // Behave exactly like a stripe that stayed locked past the spin
      // budget: release what we hold and retry the whole transaction.
      release_acquired(acquired);
      fail(util::Counter::kValidationFails);
    }
    for (int spin = 0; spin <= rt_.cfg_.commit_spin; ++spin) {
      std::uint64_t cur = lw.load(std::memory_order_acquire);
      if (locked(cur)) {
        util::cpu_relax();
        continue;
      }
      if (version_of(cur) > tx.rv_) break;  // doomed: writes are also reads
      if (lw.compare_exchange_weak(cur, cur | kLockedBit,
                                   std::memory_order_acq_rel,
                                   std::memory_order_relaxed)) {
        stripe_old_.push_back(cur);
        ok = true;
        break;
      }
    }
    if (!ok) {
      release_acquired(acquired);
      fail(util::Counter::kValidationFails);
    }
    ++acquired;
  }

  // 3. Commit time.
  //
  //    kFetchAdd (GV1): one fetch_add; wv is exclusively ours and the
  //    wv == rv + 1 short-cut says nobody committed since begin.
  //
  //    kCasStride (GV4/GV5-style): read the clock *after* the stripes are
  //    locked, then make ONE CAS attempt to advance it by the stride. A
  //    loser adopts the winner's (strictly larger) value as its own commit
  //    time instead of retrying, so a cohort of racing committers writes
  //    the clock line once. Soundness:
  //      * wv > rv always — the post-lock read `cur` satisfies cur >= rv
  //        (gv is monotone and rv was sampled earlier), a CAS win yields
  //        wv = cur + stride > rv, and a CAS loss updates cur to a value
  //        another committer published, which is > the old cur >= rv.
  //      * Stripes release at wv > rv >= every acquired stripe's version
  //        (step 2 dooms any stripe newer than rv), so stripe versions
  //        still increase monotonically.
  //      * Two committers sharing an adopted wv have disjoint write sets
  //        (both hold their stripes), and readers order against each via
  //        the per-stripe seqlock, not the clock — same argument as TL2's
  //        published GV4 variant.
  //      * The post-lock read (not a CAS from rv itself) is what keeps the
  //        skip-revalidation short-cut sound below; see DESIGN.md §10.
  std::uint64_t wv;
  bool skip_revalidation;
  if (rt_.cfg_.clock_scheme == ClockScheme::kCasStride) {
    const std::uint64_t stride =
        rt_.cfg_.clock_stride > 0
            ? static_cast<std::uint64_t>(rt_.cfg_.clock_stride)
            : 1;
    std::uint64_t cur = rt_.clock_.now();
    if (rt_.clock_.try_advance_commit_time(cur, cur + stride)) {
      wv = cur + stride;
      // Safe to skip only when the clock still held rv at our CAS: then no
      // committer can have acquired a stamp <= rv after we sampled rv (any
      // adopter's post-lock read would have been >= rv with the clock
      // pinned at rv until our own CAS moved it).
      skip_revalidation = (cur == tx.rv_);
    } else {
      // Adoption: cur was reloaded by the failed CAS. Adopters never skip
      // revalidation — a same-wv peer may have committed writes we read.
      wv = cur;
      skip_revalidation = false;
      rt_.stats_.add(s, util::Counter::kClockAdopts);
    }
  } else {
    wv = rt_.clock_.acquire_commit_time();
    // Classic TL2 short-cut: wv == rv + 1 means no other transaction
    // committed since begin and the snapshot is trivially still current.
    skip_revalidation = (wv == tx.rv_ + 1);
  }

  // 4. Read-set revalidation.
  if (fault::poke(fault::Site::kTl2Revalidate) == fault::Effect::kAbort) {
    release_acquired(acquired);  // behave like a failed revalidation
    fail(util::Counter::kValidationFails);
  }
  if (!skip_revalidation) {
    for (const auto& r : tx.read_set_) {
      for (std::uint32_t i = 0; i < r.obj->word_count; ++i) {
        const std::uint32_t st = rt_.stripe_of(&r.obj->words[i]);
        const std::uint64_t cur =
            rt_.lockword(st).load(std::memory_order_acquire);
        // A locked stripe is fine iff we hold it; the version survives the
        // locked bit ((old | 1) >> 1 == old >> 1) so the rv check is
        // uniform.
        if (locked(cur) &&
            !std::binary_search(stripes_.begin(), stripes_.end(), st)) {
          release_acquired(acquired);
          fail(util::Counter::kValidationFails);
        }
        if (version_of(cur) > tx.rv_) {
          release_acquired(acquired);
          fail(util::Counter::kValidationFails);
        }
      }
    }
  }

  // 5. History bookkeeping, under the locks so readers' seqlock windows
  //    keep vid and value consistent.
  if (rt_.recorder_.enabled()) {
    for (const auto& w : tx.write_set_) {
      const std::uint64_t parent = w.obj->vid.load(std::memory_order_relaxed);
      const std::uint64_t vid = rt_.recorder_.new_version_id();
      tx.rec_.writes.push_back({w.obj->oid, vid, parent});
      w.obj->vid.store(vid, std::memory_order_release);
    }
  }

  // 6. Redo-log write-back (release stores; see the header's memory-order
  //    contract).
  for (const auto& w : tx.write_set_) {
    const auto* src =
        static_cast<const unsigned char*>(w.redo->raw_bytes());
    for (std::uint32_t i = 0; i < w.obj->word_count; ++i) {
      std::uint64_t word = 0;
      const std::size_t n = std::min<std::size_t>(8, w.obj->bytes - i * 8);
      std::memcpy(&word, src + i * 8, n);
      w.obj->words[i].store(word, std::memory_order_release);
    }
  }

  // 7. Release every stripe at the new version: the commit point.
  for (const std::uint32_t st : stripes_) {
    rt_.lockword(st).store(wv << 1, std::memory_order_release);
  }

  rt_.stats_.add(s, util::Counter::kCommits);
  finish_attempt(true);
}

// ---------------------------------------------------------------------------
// Tx
// ---------------------------------------------------------------------------

void Tx::abort() {
  ctx_.abort_attempt();
  throw TxAborted{};
}

void Tx::read_into(Object& o, void* dst) {
  ctx_.rt_.stats_.add(ctx_.slot(), util::Counter::kReads);
  std::uint64_t vid = 0;
  if (!ctx_.try_read_words(o, rv_, dst, &vid)) {
    ctx_.fail(util::Counter::kValidationFails);
  }
  read_set_.push_back({&o, vid});
  if (ctx_.rt_.recorder_.enabled()) rec_.reads.push_back({o.oid, vid});
}

const runtime::Payload& Tx::read_object(Object& o) {
  if (const runtime::Payload* redo = find_redo(o)) return *redo;
  ctx_.rt_.stats_.add(ctx_.slot(), util::Counter::kReads);
  std::uint64_t vid = 0;
  runtime::Payload* snap = ctx_.snapshot_object(o, rv_, &vid);
  snaps_.push_back(snap);
  read_set_.push_back({&o, vid});
  if (ctx_.rt_.recorder_.enabled()) rec_.reads.push_back({o.oid, vid});
  return *snap;
}

runtime::Payload& Tx::write_object(Object& o) {
  for (const auto& w : write_set_) {
    if (w.obj == &o) return *w.redo;
  }
  // Seed the redo copy with a validated read of the current value; the
  // object thereby joins the read set, so read-modify-write increments
  // are revalidated at commit (no lost updates). The copy lands directly
  // in the redo buffer — no intermediate snapshot.
  const int s = ctx_.slot();
  ctx_.rt_.stats_.add(s, util::Counter::kReads);
  void* mem = ctx_.rt_.acquire_buf(s);
  runtime::Payload* redo = o.prototype->clone_into(mem, Runtime::kBufBytes);
  std::uint64_t vid = 0;
  if (!ctx_.try_read_words(o, rv_, redo->raw_bytes(), &vid)) {
    redo->~Payload();
    ctx_.rt_.release_buf(s, mem);
    ctx_.fail(util::Counter::kValidationFails);
  }
  read_set_.push_back({&o, vid});
  if (ctx_.rt_.recorder_.enabled()) rec_.reads.push_back({o.oid, vid});
  write_set_.push_back({&o, redo});
  ctx_.rt_.stats_.add(s, util::Counter::kWrites);
  return *redo;
}

}  // namespace zstm::tl2
