// TL2-style word-granularity STM (Dice, Shalev & Shavit, DISC 2006) — the
// sixth backend, and the repo's only one that is *not* object-based.
//
// Everything the paper's five runtimes do with DSTM locators this runtime
// does with raw memory words and a striped array of versioned spin-locks:
//
//  * Each transactional object is a fixed run of `std::atomic<uint64_t>`
//    master words holding the committed value's bytes. There is no locator,
//    no version chain and no per-access heap allocation.
//  * A global table of 2^lock_table_bits versioned lock words covers all
//    words by address hash ("lock striping"). A lock word encodes
//    `version << 1 | locked`; version is the commit time (from the shared
//    `timebase::GlobalCounter`) of the last transaction that wrote any word
//    in the stripe.
//  * Reads are invisible AND allocation-free: at begin the transaction
//    samples the global clock (`rv`) and every read runs a seqlock-style
//    consistent copy — pre-check the covering lock words (unlocked,
//    version <= rv), copy the master words straight into caller storage
//    (a stack value for the typed fast path), post-check the lock words
//    are unchanged. The read set records only {object, version-id} for
//    commit-time revalidation; repeated reads of an object re-run the
//    seqlock and are forced consistent by the rv bound, so no lookup or
//    caching happens on the read path at all. (The type-erased façade
//    path still materializes pooled snapshot payloads for reference
//    stability; those ride in a separate cleanup list.)
//  * Writes go to a private redo log (one pooled buffer per object, seeded
//    from a validated snapshot, so read-modify-write patterns are protected
//    against lost updates by commit-time revalidation).
//  * Commit: acquire the write set's stripes in sorted order (bounded spin,
//    abort on contention — no deadlock, no contention manager needed),
//    fetch a commit time `wv`, revalidate the read set (skipped when
//    wv == rv + 1: nothing committed in between), write the redo log back
//    to the master words and release every stripe at version wv.
//
// The published algorithm's guarantee is strict serializability (opacity,
// even: the per-read post-check keeps doomed transactions from seeing
// inconsistent snapshots). tests/history_conformance_test.cpp checks the
// recorded histories with history::check_strictly_serializable.
//
// Memory-order contract (the part ThreadSanitizer holds us to): master
// words are written with release stores (under the stripe lock) and read
// with acquire loads. A reader that observes a writer's new word value
// therefore synchronizes with that writer, so the reader's program-order-
// later post-check load is forced (write-read coherence) to see at least
// the writer's lock acquisition — and aborts. Stale data with a clean
// post-check is thus impossible, which is the whole seqlock argument.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "history/recorder.hpp"
#include "object/node_pool.hpp"
#include "runtime/payload.hpp"
#include "runtime/run_result.hpp"
#include "runtime/txdesc.hpp"
#include "timebase/global_counter.hpp"
#include "timebase/sharded_clock.hpp"
#include "util/backoff.hpp"
#include "util/stats.hpp"
#include "util/thread_registry.hpp"

namespace zstm::tl2 {

/// Thrown internally when a transaction attempt must be retried. User code
/// inside Runtime::run must let it propagate (the façade contract).
struct TxAborted {};

/// How update commits advance the global version clock (DESIGN.md §10).
enum class ClockScheme {
  /// Classic TL2 / GV1: one fetch_add per update commit. Every committer
  /// serializes on the clock's cache line.
  kFetchAdd,
  /// GV4/GV5-style relaxed scheme: one CAS attempt advancing the clock by
  /// `clock_stride`; a committer that loses the race *adopts* the winner's
  /// value as its own commit time instead of retrying, so the clock line
  /// is written at most once per race cohort. Costs false aborts (adopters
  /// always revalidate, and larger strides age readers' rv faster) — never
  /// correctness; see the commit-path comment for the argument.
  kCasStride,
};

struct Config {
  int max_threads = 36;
  /// log2 of the versioned-lock table size. 2^16 * 8 bytes = 512 KiB.
  int lock_table_bits = 16;
  /// Bounded spin on a locked stripe during commit-time acquisition before
  /// the transaction gives up and retries (requester-aborts: no deadlock,
  /// no contention manager).
  int commit_spin = 64;
  /// Pooled log-node (snapshot/redo buffer) allocation; ZSTM_POOL=0
  /// overrides to false.
  bool use_node_pool = true;
  bool record_history = false;
  ClockScheme clock_scheme = ClockScheme::kFetchAdd;
  /// Clock increment per successful CAS under kCasStride (clamped >= 1).
  int clock_stride = 1;
  /// Draw history transaction ids from a topology-sharded clock (identity
  /// only — nothing orders by tx id). ZSTM_SHARDED_IDS=0 overrides.
  bool sharded_tx_ids = true;
};

class Runtime;
class ThreadCtx;
class Tx;

/// A transactional object: a fixed run of atomic master words plus the
/// immutable prototype payload that donates the value's type/layout when
/// snapshots are materialized. Values must be trivially copyable and at
/// most kMaxBytes bytes.
struct Object {
  std::uint64_t oid = 0;
  /// The initial payload; used only via clone_into (layout donor for
  /// snapshot/redo buffers), never mutated after construction.
  std::unique_ptr<runtime::Payload> prototype;
  std::unique_ptr<std::atomic<std::uint64_t>[]> words;
  std::uint32_t word_count = 0;
  std::uint32_t bytes = 0;
  /// History only: id of the currently committed version (0 = initial).
  /// Written under the stripe locks, sampled inside readers' seqlock
  /// windows, so it is always consistent with the value read.
  std::atomic<std::uint64_t> vid{0};
};

template <typename T>
class Var {
 public:
  Var() = default;
  Object* object() const { return obj_; }

 private:
  friend class Runtime;
  explicit Var(Object* o) : obj_(o) {}
  Object* obj_ = nullptr;
};

struct ReadEntry {
  Object* obj;
  std::uint64_t vid;  // version id sampled inside the seqlock window
};

struct WriteEntry {
  Object* obj;
  runtime::Payload* redo;  // pooled redo buffer (placement-constructed)
};

/// One in-flight transaction attempt. Obtained from ThreadCtx::begin();
/// reads throw TxAborted on a failed consistent snapshot,
/// ThreadCtx::commit() throws on validation failure. Runtime::run wraps
/// this in a retry loop.
class Tx {
 public:
  /// Value read — no allocation, no read-set lookup. Repeated reads re-run
  /// the seqlock copy; the rv anchoring makes them return identical values
  /// or abort, so opacity holds without caching.
  template <typename T>
  T read(const Var<T>& var) {
    Object& o = *var.object();
    if (const runtime::Payload* redo = find_redo(o)) {
      return runtime::payload_as<T>(*redo);  // read-own-writes
    }
    T out;
    read_into(o, &out);
    return out;
  }

  /// Open for writing and return the mutable private redo copy.
  template <typename T>
  T& write(Var<T>& var) {
    return runtime::payload_as<T>(write_object(*var.object()));
  }

  template <typename T>
  void write(Var<T>& var, T value) {
    write(var) = std::move(value);
  }

  /// Abort this attempt and throw TxAborted (retried by Runtime::run).
  [[noreturn]] void abort();

  std::uint64_t read_version() const { return rv_; }
  std::size_t read_set_size() const { return read_set_.size(); }
  std::size_t write_set_size() const { return write_set_.size(); }

  // Object-level API (the type-erased AnyStm handle calls these; the
  // payload-returning read materializes a pooled snapshot for reference
  // stability, unlike the typed value read above).
  const runtime::Payload& read_object(Object& o);
  runtime::Payload& write_object(Object& o);

 private:
  friend class ThreadCtx;
  friend class Runtime;
  explicit Tx(ThreadCtx& ctx) : ctx_(ctx) {}

  /// Redo-log hit for read-own-writes; null when `o` is unwritten.
  const runtime::Payload* find_redo(const Object& o) const {
    for (const auto& w : write_set_) {
      if (w.obj == &o) return w.redo;
    }
    return nullptr;
  }

  /// Seqlock-copy `o`'s committed value into `dst` (o.bytes bytes) and
  /// append the read to the read set. Throws TxAborted when the copy
  /// cannot be anchored at rv.
  void read_into(Object& o, void* dst);

  ThreadCtx& ctx_;
  std::uint64_t rv_ = 0;  // clock sample at begin; snapshot validity bound
  bool read_only_ = false;
  std::vector<ReadEntry> read_set_;
  std::vector<WriteEntry> write_set_;
  std::vector<runtime::Payload*> snaps_;  // AnyStm-path snapshot buffers
  history::TxRecord rec_;
};

/// Per-thread attachment to a Runtime (Runtime::attach()); claims a
/// registry slot for its lifetime.
class ThreadCtx {
 public:
  ~ThreadCtx();
  ThreadCtx(const ThreadCtx&) = delete;
  ThreadCtx& operator=(const ThreadCtx&) = delete;

  /// Start a transaction attempt (aborting a leaked previous one first).
  /// `read_only` is advisory: tl2 treats every commit with an empty write
  /// set as read-only automatically.
  Tx& begin(bool read_only = false);

  /// Commit the current attempt; throws TxAborted on lock contention or
  /// read-set revalidation failure (the attempt is already cleaned up).
  void commit();

  /// Abort the current attempt without throwing.
  void abort_attempt();

  bool in_transaction() const { return active_; }
  int slot() const { return reg_.slot(); }
  Runtime& runtime() { return rt_; }
  Tx& current() { return tx_; }

 private:
  friend class Runtime;
  friend class Tx;
  ThreadCtx(Runtime& rt, util::ThreadRegistry::Registration reg);

  /// Seqlock-consistent copy of `o`'s master words into `dst` (o.bytes
  /// bytes), sampling `o.vid` inside the window. Returns false when the
  /// copy cannot be anchored at `rv` (caller cleans up and aborts).
  bool try_read_words(Object& o, std::uint64_t rv, void* dst,
                      std::uint64_t* vid_out);

  /// try_read_words into a fresh pooled snapshot payload (the AnyStm
  /// path). Throws TxAborted (after cleanup) on validation failure.
  runtime::Payload* snapshot_object(Object& o, std::uint64_t rv,
                                    std::uint64_t* vid_out);

  void finish_attempt(bool committed);
  void drop_logs();
  [[noreturn]] void fail(util::Counter reason);
  void release_acquired(std::size_t count);

  Runtime& rt_;
  util::ThreadRegistry::Registration reg_;
  Tx tx_;
  bool active_ = false;
  // Commit scratch (capacity reused across attempts): the sorted, deduped
  // stripe indices of the write set and the lock words they held before
  // acquisition (restored on abort).
  std::vector<std::uint32_t> stripes_;
  std::vector<std::uint64_t> stripe_old_;
};

class Runtime {
 public:
  /// Largest value size (bytes) a tl2 object supports: one NodePool class-3
  /// block holds the snapshot payload (16-byte TypedPayload header + value).
  static constexpr std::size_t kBufBytes = 240;
  static constexpr std::size_t kMaxBytes =
      kBufBytes - runtime::Payload::kInlineAlign;
  static constexpr std::size_t kMaxWords = kBufBytes / 8;

  explicit Runtime(Config cfg = {});
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Create a transactional variable. The runtime owns the underlying
  /// object for its whole lifetime.
  template <typename T>
  Var<T> make_var(T initial) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "tl2 stores values as raw words; T must be trivially "
                  "copyable (use an object-based runtime otherwise)");
    return Var<T>(
        allocate_object(new runtime::TypedPayload<T>(std::move(initial))));
  }

  std::unique_ptr<ThreadCtx> attach();

  /// Run `body` (callable taking Tx&) as a transaction, retrying with
  /// backoff until it commits (runtime/run_result.hpp convention).
  template <typename F>
  runtime::RunResult run(ThreadCtx& ctx, F&& body, bool read_only = false) {
    util::Backoff bo;
    for (std::uint32_t attempt = 1;; ++attempt) {
      Tx& tx = ctx.begin(read_only);
      try {
        body(tx);
        ctx.commit();
        return {attempt, true};
      } catch (const TxAborted&) {
        bo.pause();
      } catch (...) {
        // Foreign exception out of the body: release every ownership the
        // attempt holds before letting it propagate.
        if (ctx.in_transaction()) ctx.abort_attempt();
        throw;
      }
    }
  }

  /// Validates that `initial` supports the raw-word representation
  /// (trivially copyable, <= kMaxBytes); throws std::invalid_argument
  /// otherwise. Takes ownership either way.
  Object* allocate_object(runtime::Payload* initial);

  const Config& config() const { return cfg_; }
  util::StatsSnapshot stats() const { return stats_.snapshot(); }
  void reset_stats() { stats_.reset(); }
  history::History collect_history() const { return recorder_.collect(); }

  util::ThreadRegistry& registry() { return registry_; }
  object::NodePool& node_pool() { return pool_; }
  history::Recorder& recorder() { return recorder_; }
  timebase::GlobalCounter& clock() { return clock_; }
  int lock_table_size() const { return static_cast<int>(stripe_mask_) + 1; }

 private:
  friend class ThreadCtx;
  friend class Tx;

  /// Stripe index covering the master word at `addr` (Fibonacci hash of
  /// the word address — adjacent objects land on unrelated stripes).
  std::uint32_t stripe_of(const void* addr) const {
    const auto a = reinterpret_cast<std::uintptr_t>(addr) >> 3;
    const std::uint64_t h =
        static_cast<std::uint64_t>(a) * 0x9E3779B97F4A7C15ull;
    return static_cast<std::uint32_t>(h >> 32) & stripe_mask_;
  }

  std::atomic<std::uint64_t>& lockword(std::uint32_t stripe) {
    return locks_[stripe];
  }

  /// Log-node (snapshot/redo buffer) storage: pooled when enabled, plain
  /// aligned heap otherwise (ZSTM_POOL=0 keeps ASan's heap poisoning).
  void* acquire_buf(int slot);
  void release_buf(int slot, void* p);

  std::uint64_t next_tx_id(int slot) {
    if (sharded_ids_) return id_clock_.unique_id(slot);
    return tx_ids_.value.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  Config cfg_;
  util::ThreadRegistry registry_;
  util::StatsDomain stats_;
  object::NodePool pool_;
  history::Recorder recorder_;
  timebase::GlobalCounter clock_;
  util::PaddedCounter tx_ids_;
  timebase::ShardedClock id_clock_;
  bool sharded_ids_;
  util::PaddedCounter oids_;
  std::uint32_t stripe_mask_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> locks_;
  std::mutex objects_mu_;
  std::vector<std::unique_ptr<Object>> objects_;
};

}  // namespace zstm::tl2
