// adt::TMap / adt::TSet — transactional hash map and set built on the
// zstm::api façade (ROADMAP: "transactional data-structure library").
// Promoted from examples/tset.cpp's sorted linked list; the example is now
// a thin client of adt::TSet.
//
// Structure: a fixed array of bucket sentinels, each heading a key-sorted
// singly-linked list of nodes. Every node is one transactional object (a
// Var<Node>), so conflict granularity is per node: operations on different
// buckets never conflict, and operations in one bucket conflict only on
// the nodes they traverse. All methods take the caller's transaction
// handle, so several map operations (or several maps) compose into one
// atomic transaction — the KV service's multi_get/transfer do exactly
// that.
//
// Works with any façade: `S` may be a concrete `api::Stm<R>` (zero-cost,
// the rewritten tset example) or `api::AnyStm` (runtime-selected variant,
// the KV service). Requirements on S: `make_var<T>`, `template Var<T>` (a
// default-constructible, trivially-copyable handle), and a transaction
// handle with `read(var)` / `write(var)`. K and V must be trivially
// copyable (the word-granularity tl2 backend stores payloads by words).
//
// Memory: nodes are allocated with `make_var` inside the inserting
// transaction. A node unlinked by erase() stays owned by the runtime
// (concurrent readers may still traverse it) and is reclaimed only at
// runtime teardown — the same lifecycle the original example had. An
// insert aborted mid-attempt would leak its fresh node to teardown too;
// the `Scratch` parameter lets a retrying caller reuse one pre-allocated
// node across attempts instead (the façade's retry loop re-runs the whole
// body, so the scratch must live outside `run`).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "util/rng.hpp"

namespace zstm::adt {

template <typename S, typename K = std::uint64_t, typename V = std::int64_t,
          typename Hash = std::hash<K>>
class TMap {
 public:
  struct Node;
  using NodeVar = typename S::template Var<Node>;

  /// One transactional object per element. `has_next` stands in for a null
  /// handle (the façades' Var types have no uniform null test).
  struct Node {
    K key{};
    V value{};
    NodeVar next{};
    bool has_next = false;
  };

  /// Optional insert scratch: lets a caller whose body retries reuse one
  /// pre-allocated node across attempts (see header comment).
  struct Scratch {
    NodeVar node{};
    bool allocated = false;
  };

  TMap(S& stm, std::size_t buckets) : stm_(&stm) {
    if (buckets == 0) buckets = 1;
    heads_.reserve(buckets);
    for (std::size_t i = 0; i < buckets; ++i) {
      heads_.push_back(stm.template make_var<Node>(Node{}));
    }
  }

  std::size_t buckets() const { return heads_.size(); }

  template <typename Tx>
  std::optional<V> get(Tx& tx, const K& key) const {
    Node cur = tx.read(heads_[bucket_of(key)]);
    while (cur.has_next) {
      const Node nxt = tx.read(cur.next);
      if (nxt.key == key) return nxt.value;
      if (key < nxt.key) return std::nullopt;
      cur = nxt;
    }
    return std::nullopt;
  }

  template <typename Tx>
  bool contains(Tx& tx, const K& key) const {
    return get(tx, key).has_value();
  }

  /// Insert or update. Returns true if the key was inserted, false if an
  /// existing value was overwritten.
  template <typename Tx>
  bool put(Tx& tx, const K& key, const V& value, Scratch* scratch = nullptr) {
    NodeVar prev_var = heads_[bucket_of(key)];
    Node prev = tx.read(prev_var);
    while (prev.has_next) {
      const Node nxt = tx.read(prev.next);
      if (nxt.key == key) {
        tx.write(prev.next).value = value;
        return false;
      }
      if (key < nxt.key) break;
      prev_var = prev.next;
      prev = nxt;
    }
    Node fresh_node;
    fresh_node.key = key;
    fresh_node.value = value;
    fresh_node.next = prev.next;
    fresh_node.has_next = prev.has_next;
    NodeVar fresh;
    if (scratch != nullptr && scratch->allocated) {
      fresh = scratch->node;
      tx.write(fresh, fresh_node);
    } else {
      fresh = stm_->template make_var<Node>(fresh_node);
      if (scratch != nullptr) {
        scratch->node = fresh;
        scratch->allocated = true;
      }
    }
    Node& p = tx.write(prev_var);
    p.next = fresh;
    p.has_next = true;
    return true;
  }

  /// Remove `key`. Returns true if it was present. The unlinked node is
  /// retained by the runtime (see header comment).
  template <typename Tx>
  bool erase(Tx& tx, const K& key) {
    NodeVar prev_var = heads_[bucket_of(key)];
    Node prev = tx.read(prev_var);
    while (prev.has_next) {
      const Node nxt = tx.read(prev.next);
      if (nxt.key == key) {
        Node& p = tx.write(prev_var);
        p.next = nxt.next;
        p.has_next = nxt.has_next;
        return true;
      }
      if (key < nxt.key) return false;
      prev_var = prev.next;
      prev = nxt;
    }
    return false;
  }

  /// Visit every element (bucket-major, key-sorted within a bucket):
  /// fn(key, value). Run under TxKind::kLong this is the long read-only
  /// scan the paper's weaker criteria are about.
  template <typename Tx, typename Fn>
  void for_each(Tx& tx, Fn&& fn) const {
    for (const NodeVar& head : heads_) {
      Node cur = tx.read(head);
      while (cur.has_next) {
        const Node nxt = tx.read(cur.next);
        fn(nxt.key, nxt.value);
        cur = nxt;
      }
    }
  }

  struct AuditResult {
    std::uint64_t size = 0;
    bool sorted = true;  // strictly increasing keys within every bucket
  };

  /// Full structural walk: element count plus the intra-bucket sortedness
  /// invariant (the example's long-transaction consistency check).
  template <typename Tx>
  AuditResult audit(Tx& tx) const {
    AuditResult r;
    for (const NodeVar& head : heads_) {
      Node cur = tx.read(head);
      bool first = true;
      K last{};
      while (cur.has_next) {
        const Node nxt = tx.read(cur.next);
        if (!first && !(last < nxt.key)) r.sorted = false;
        last = nxt.key;
        first = false;
        ++r.size;
        cur = nxt;
      }
    }
    return r;
  }

 private:
  std::size_t bucket_of(const K& key) const {
    // std::hash is identity for integers on common stdlibs; remix so that
    // adjacent keys spread across buckets.
    std::uint64_t h = static_cast<std::uint64_t>(Hash{}(key));
    return util::splitmix64(h) % heads_.size();
  }

  S* stm_;
  std::vector<NodeVar> heads_;
};

/// Transactional set: TMap with a unit value.
template <typename S, typename K = std::uint64_t, typename Hash = std::hash<K>>
class TSet {
 public:
  using Map = TMap<S, K, unsigned char, Hash>;
  using Scratch = typename Map::Scratch;
  using AuditResult = typename Map::AuditResult;

  TSet(S& stm, std::size_t buckets) : map_(stm, buckets) {}

  std::size_t buckets() const { return map_.buckets(); }

  template <typename Tx>
  bool insert(Tx& tx, const K& key, Scratch* scratch = nullptr) {
    return map_.put(tx, key, 0, scratch);
  }
  template <typename Tx>
  bool erase(Tx& tx, const K& key) {
    return map_.erase(tx, key);
  }
  template <typename Tx>
  bool contains(Tx& tx, const K& key) const {
    return map_.contains(tx, key);
  }
  template <typename Tx, typename Fn>
  void for_each(Tx& tx, Fn&& fn) const {
    map_.for_each(tx, [&fn](const K& k, unsigned char) { fn(k); });
  }
  template <typename Tx>
  AuditResult audit(Tx& tx) const {
    return map_.audit(tx);
  }

 private:
  Map map_;
};

}  // namespace zstm::adt
