// adt::TQueue — transactional MPMC FIFO built on the zstm::api façade
// (ROADMAP: "transactional data-structure library", alongside adt::TMap).
//
// Structure: a singly-linked list of one-Var-per-element nodes with two
// anchor Vars, `head_` and `tail_`, each an End{node, present} (the façades'
// Var handles have no uniform null test, so presence is an explicit flag —
// the same convention as TMap's Node::has_next). The FIFO invariant is the
// usual two-pointer one: empty ⟺ neither anchor present; otherwise head_
// names the oldest node and tail_ the newest.
//
// Conflict granularity: enqueue touches the tail anchor plus the last
// node's link; dequeue touches the head anchor plus the first node. With
// two or more elements the footprints are disjoint, so producers and
// consumers proceed without conflicting — they only collide on the
// empty/one-element transitions, where both anchors genuinely must move
// together. There is deliberately no size counter Var: it would re-couple
// every enqueue to every dequeue and erase exactly that independence
// (size() instead walks the list — O(n), a read-only audit tool).
//
// All methods take the caller's transaction handle, so queue ops compose
// with TMap ops (or several queues) in one atomic transaction. Retry
// safety: enqueue allocates its node with make_var inside the transaction;
// a body that the runtime retries would allocate again and leak the first
// node to runtime teardown, so — exactly like TMap::put — a caller running
// under a retrying façade loop passes a `Scratch` living outside `run` and
// the same pre-allocated node is reused across attempts. Dequeued nodes
// stay owned by the runtime (concurrent readers may still traverse them)
// and are reclaimed at teardown, TMap::erase's lifecycle.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>

namespace zstm::adt {

template <typename S, typename V = std::int64_t>
class TQueue {
 public:
  struct Node;
  using NodeVar = typename S::template Var<Node>;

  struct Node {
    V value{};
    NodeVar next{};
    bool has_next = false;
  };

  /// Anchor payload: a nullable node handle (see header comment).
  struct End {
    NodeVar node{};
    bool present = false;
  };
  using EndVar = typename S::template Var<End>;

  /// Enqueue scratch for retrying callers, TMap::Scratch's contract: the
  /// node is allocated once on the first attempt and reused by retries of
  /// the same body. After a commit the caller resets `allocated` before
  /// reusing the Scratch for a different enqueue.
  struct Scratch {
    NodeVar node{};
    bool allocated = false;
  };

  explicit TQueue(S& stm) : stm_(&stm) {
    head_ = stm.template make_var<End>(End{});
    tail_ = stm.template make_var<End>(End{});
  }

  template <typename Tx>
  bool empty(Tx& tx) const {
    return !tx.read(head_).present;
  }

  /// Append `value`. With a Scratch, the node allocated on the first
  /// attempt is reused by retries of the same body; the caller must reset
  /// `scratch->allocated = false` after the transaction commits before
  /// reusing the Scratch for a different enqueue.
  template <typename Tx>
  void enqueue(Tx& tx, const V& value, Scratch* scratch = nullptr) {
    Node fresh_node;
    fresh_node.value = value;
    NodeVar fresh;
    if (scratch != nullptr && scratch->allocated) {
      fresh = scratch->node;
      tx.write(fresh, fresh_node);
    } else {
      fresh = stm_->template make_var<Node>(fresh_node);
      if (scratch != nullptr) {
        scratch->node = fresh;
        scratch->allocated = true;
      }
    }
    End tail = tx.read(tail_);
    if (tail.present) {
      Node& last = tx.write(tail.node);
      last.next = fresh;
      last.has_next = true;
    } else {
      End& h = tx.write(head_);
      h.node = fresh;
      h.present = true;
    }
    End& t = tx.write(tail_);
    t.node = fresh;
    t.present = true;
  }

  /// Pop the oldest element, or nullopt when empty. The unlinked node is
  /// retained by the runtime (see header comment).
  template <typename Tx>
  std::optional<V> dequeue(Tx& tx) {
    const End head = tx.read(head_);
    if (!head.present) return std::nullopt;
    const Node first = tx.read(head.node);
    End& h = tx.write(head_);
    if (first.has_next) {
      h.node = first.next;
    } else {
      h.present = false;
      tx.write(tail_).present = false;
    }
    return first.value;
  }

  /// Oldest element without removing it.
  template <typename Tx>
  std::optional<V> front(Tx& tx) const {
    const End head = tx.read(head_);
    if (!head.present) return std::nullopt;
    return tx.read(head.node).value;
  }

  /// Element count by walking the list — O(n), for audits and tests; see
  /// the header comment for why there is no counter Var.
  template <typename Tx>
  std::uint64_t size(Tx& tx) const {
    std::uint64_t n = 0;
    const End head = tx.read(head_);
    if (!head.present) return 0;
    Node cur = tx.read(head.node);
    ++n;
    while (cur.has_next) {
      cur = tx.read(cur.next);
      ++n;
    }
    return n;
  }

  /// Visit every element oldest-first: fn(value). Run under TxKind::kLong
  /// this is a long read-only scan like TMap::for_each.
  template <typename Tx, typename Fn>
  void for_each(Tx& tx, Fn&& fn) const {
    const End head = tx.read(head_);
    if (!head.present) return;
    Node cur = tx.read(head.node);
    fn(cur.value);
    while (cur.has_next) {
      cur = tx.read(cur.next);
      fn(cur.value);
    }
  }

 private:
  S* stm_;
  EndVar head_{};
  EndVar tail_{};
};

}  // namespace zstm::adt
