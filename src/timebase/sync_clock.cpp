#include "timebase/sync_clock.hpp"

namespace zstm::timebase {

SyncRealTimeClock::SyncRealTimeClock(int slots,
                                     std::chrono::nanoseconds max_deviation,
                                     std::uint64_t seed)
    : max_deviation_(max_deviation),
      offsets_(static_cast<std::size_t>(slots), 0),
      last_issued_(static_cast<std::size_t>(slots)),
      origin_(std::chrono::steady_clock::now()) {
  util::Xorshift rng(seed);
  const std::int64_t dev = max_deviation.count();
  for (auto& off : offsets_) {
    if (dev > 0) {
      // Uniform in [-dev, +dev]: a fixed skew per simulated hardware clock.
      off = static_cast<std::int64_t>(rng.next_below(
                static_cast<std::uint64_t>(2 * dev + 1))) -
            dev;
    }
  }
}

std::uint64_t SyncRealTimeClock::now(int slot) const {
  const auto elapsed = std::chrono::duration_cast<std::chrono::nanoseconds>(
                           std::chrono::steady_clock::now() - origin_)
                           .count();
  std::int64_t t = elapsed + offsets_[static_cast<std::size_t>(slot)];
  if (t < 0) t = 0;
  // Shift leaves room for the slot id in the low bits, keeping stamps from
  // different slots distinct even at identical nanosecond readings.
  return (static_cast<std::uint64_t>(t) << kSlotBits) |
         static_cast<std::uint64_t>(slot);
}

std::uint64_t SyncRealTimeClock::acquire_commit_stamp(int slot,
                                                      std::uint64_t floor) {
  auto& last = last_issued_[static_cast<std::size_t>(slot)].value;
  std::uint64_t stamp = now(slot);
  const std::uint64_t prev = last.load(std::memory_order_relaxed);
  if (stamp <= prev) stamp = prev + 1;
  if (stamp <= floor) stamp = floor + 1;
  last.store(stamp, std::memory_order_relaxed);
  return stamp;
}

}  // namespace zstm::timebase
