// Simulated synchronized real-time clocks with bounded deviation (§2, [9]).
//
// The paper notes that a shared commit counter "does not scale well in
// larger systems because of contention and cache misses" and proposes
// per-processor real-time clocks, perfectly or internally synchronized, as a
// scalable time base. Commodity hosts do not expose per-core synchronized
// hardware clocks to us, so we *simulate* them (DESIGN.md §3, substitutions
// table): every thread slot reads std::chrono::steady_clock plus a fixed
// per-slot offset drawn uniformly from [-deviation, +deviation]. A zero
// deviation models the "perfectly synchronized" hardware the paper expects
// systems to have; larger deviations let tests reproduce the claim that
// "the probability of spurious aborts increases with the deviation".
//
// Commit stamps are made globally unique by reserving the low bits for the
// slot id and made per-thread monotone by never re-issuing a lower stamp.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <vector>

#include "util/align.hpp"
#include "util/rng.hpp"

namespace zstm::timebase {

class SyncRealTimeClock {
 public:
  /// Low bits of a stamp reserved for the issuing slot (64 slots max).
  static constexpr int kSlotBits = 6;

  SyncRealTimeClock(int slots, std::chrono::nanoseconds max_deviation,
                    std::uint64_t seed = 1);

  /// Current time as perceived by `slot` (includes its deviation offset).
  std::uint64_t now(int slot) const;

  /// A fresh, globally unique commit stamp for `slot`, strictly greater than
  /// `floor` (callers pass the largest stamp they must dominate, e.g. the
  /// newest version of each locked object) and than any stamp this slot
  /// issued before.
  std::uint64_t acquire_commit_stamp(int slot, std::uint64_t floor);

  std::chrono::nanoseconds max_deviation() const { return max_deviation_; }

  /// Offset applied to `slot`'s clock, exposed for tests.
  std::int64_t offset_ns(int slot) const {
    return offsets_[static_cast<std::size_t>(slot)];
  }

 private:
  std::chrono::nanoseconds max_deviation_;
  std::vector<std::int64_t> offsets_;
  std::vector<util::PaddedCounter> last_issued_;
  std::chrono::steady_clock::time_point origin_;
};

}  // namespace zstm::timebase
