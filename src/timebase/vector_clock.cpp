#include "timebase/vector_clock.hpp"

#include <sstream>

namespace zstm::timebase {

void VcStamp::merge(const VcStamp& other) {
  // Dimensions are fixed per domain; enforce in debug builds only since this
  // is a transaction hot path.
  for (std::size_t k = 0; k < components_.size(); ++k) {
    if (other.components_[k] > components_[k]) {
      components_[k] = other.components_[k];
    }
  }
}

Order VcStamp::compare(const VcStamp& other) const {
  bool le = true;  // this ≼ other
  bool ge = true;  // other ≼ this
  for (std::size_t k = 0; k < components_.size(); ++k) {
    if (components_[k] > other.components_[k]) le = false;
    if (components_[k] < other.components_[k]) ge = false;
  }
  if (le && ge) return Order::kEqual;
  if (le) return Order::kBefore;
  if (ge) return Order::kAfter;
  return Order::kConcurrent;
}

std::string VcStamp::to_string() const {
  std::ostringstream os;
  os << "[";
  for (std::size_t k = 0; k < components_.size(); ++k) {
    if (k > 0) os << ",";
    os << components_[k];
  }
  os << "]";
  return os.str();
}

}  // namespace zstm::timebase
