// Scalar time base used by LSA-STM and Z-STM's short transactions: the
// global shared counter of §2, the simulated synchronized real-time clocks
// of §2/[9], or the batched lease counter of DESIGN.md §10 (selected at
// runtime construction).
//
// The sync-clock mode implements the two corrections [9] requires:
//  * snapshot times are taken `2·deviation` in the past (now_snapshot), so
//    a commit stamp issued by any other clock after a snapshot was fixed is
//    guaranteed to exceed the snapshot time;
//  * a committer waits out the deviation window after acquiring its stamp
//    ("wait one clock tick" in §2) before validating and publishing, so no
//    later stamp anywhere in the system can fall below it.
// With the counter, both corrections are no-ops: fetch_add already yields a
// stamp strictly greater than every previously observed time.
//
// The batched counter needs both corrections too (its stamps are unique
// but not issued in order): now_snapshot anchors under every outstanding
// lease, and the commit-side correction is a lease *fence* instead of a
// wait — outstanding leases that could still undercut the stamp are
// revoked with bounded work (see batched_counter.hpp for why skipping this
// would break serializability, not just performance).
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>

#include "timebase/batched_counter.hpp"
#include "timebase/global_counter.hpp"
#include "timebase/sync_clock.hpp"
#include "util/backoff.hpp"

namespace zstm::timebase {

enum class TimeBaseKind { kCounter, kSyncClock, kBatchedCounter };

class ScalarTimeBase {
 public:
  /// Counter-based time base (the paper's default).
  ScalarTimeBase() : kind_(TimeBaseKind::kCounter) {}

  /// Synchronized-real-time-clock time base with the given per-clock
  /// deviation bound.
  ScalarTimeBase(int slots, std::chrono::nanoseconds max_deviation,
                 std::uint64_t seed = 1)
      : kind_(TimeBaseKind::kSyncClock),
        clock_(std::in_place, slots, max_deviation, seed) {
    // Stamps are nanoseconds shifted by kSlotBits; the safety margin covers
    // two full deviations (reader ahead + writer behind) plus one extra
    // nanosecond step so the slot-id low bits can never defeat strictness.
    margin_ = static_cast<std::uint64_t>(2 * max_deviation.count() + 1)
              << SyncRealTimeClock::kSlotBits;
  }

  /// Batched-lease time base: threads lease blocks of `batch` ticks.
  ScalarTimeBase(int slots, int batch)
      : kind_(TimeBaseKind::kBatchedCounter),
        batched_(std::make_unique<BatchedCounter>(slots, batch)) {}

  TimeBaseKind kind() const { return kind_; }

  /// A time at which it is safe to anchor a new snapshot: every commit
  /// stamp issued from now on is guaranteed to be strictly greater.
  std::uint64_t now_snapshot(int slot) const {
    switch (kind_) {
      case TimeBaseKind::kCounter:
        return counter_.now();
      case TimeBaseKind::kBatchedCounter:
        return batched_->now_floor();
      case TimeBaseKind::kSyncClock:
        break;
    }
    const std::uint64_t t = clock_->now(slot);
    return t > margin_ ? t - margin_ : 0;
  }

  /// Acquire a commit stamp strictly above `floor` (callers pass the newest
  /// timestamp of every object they are about to overwrite, keeping
  /// per-object version chains strictly increasing under clock skew).
  std::uint64_t acquire_commit_stamp(int slot, std::uint64_t floor) {
    switch (kind_) {
      case TimeBaseKind::kCounter:
        // Monotone and unique; floor is implied (floor came from committed
        // versions, whose stamps the counter has already passed).
        return counter_.acquire_commit_time();
      case TimeBaseKind::kBatchedCounter:
        return batched_->acquire(slot, floor);
      case TimeBaseKind::kSyncClock:
        break;
    }
    return clock_->acquire_commit_stamp(slot, floor);
  }

  /// Ensure no clock in the system can still issue a stamp <= `stamp` to a
  /// transaction that has not yet begun committing: the sync clocks wait
  /// out the deviation window, the batched counter revokes undercutting
  /// leases, the plain counter needs nothing.
  void wait_until_safe(int slot, std::uint64_t stamp) {
    switch (kind_) {
      case TimeBaseKind::kCounter:
        return;
      case TimeBaseKind::kBatchedCounter:
        batched_->fence_after(stamp);
        return;
      case TimeBaseKind::kSyncClock:
        break;
    }
    util::Backoff bo;
    while (now_snapshot(slot) < stamp) bo.pause();
  }

  /// Slot teardown hook (wired to ThreadRegistry release listeners): the
  /// batched counter abandons the slot's lease so now_floor() is not
  /// pinned by a dead thread. No-op for the other kinds.
  void release_slot(int slot) {
    if (kind_ == TimeBaseKind::kBatchedCounter) batched_->release_slot(slot);
  }

  const SyncRealTimeClock* sync_clock() const {
    return clock_ ? &*clock_ : nullptr;
  }
  const BatchedCounter* batched() const { return batched_.get(); }

 private:
  TimeBaseKind kind_;
  GlobalCounter counter_;
  std::optional<SyncRealTimeClock> clock_;
  // unique_ptr: BatchedCounter owns raw atomics and cannot move, but
  // ScalarTimeBase is returned by value from the runtimes' factories.
  std::unique_ptr<BatchedCounter> batched_;
  std::uint64_t margin_ = 0;
};

}  // namespace zstm::timebase
