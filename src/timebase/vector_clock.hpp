// Vector clocks (Fidge [3] / Mattern [6]) as an STM time base, per §4.
//
// A VcStamp is a value-type vector timestamp with one component per thread
// slot. A VcDomain fixes the dimension for a runtime. Each thread owns its
// component; perceived time is merged (element-wise max) whenever a
// transaction accesses a shared object version, exactly as in Algorithm 1
// line 8.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "object/pool_allocator.hpp"
#include "timebase/clock_order.hpp"

namespace zstm::timebase {

class VcStamp {
 public:
  using Alloc = object::PoolAllocator<std::uint64_t>;

  VcStamp() = default;
  explicit VcStamp(int dimension, const Alloc& alloc = Alloc())
      : components_(static_cast<std::size_t>(dimension), 0, alloc) {}

  int dimension() const { return static_cast<int>(components_.size()); }

  std::uint64_t operator[](int i) const {
    return components_[static_cast<std::size_t>(i)];
  }
  std::uint64_t& operator[](int i) {
    return components_[static_cast<std::size_t>(i)];
  }

  /// Element-wise maximum (the ⊔ of Algorithm 1, line 8: "dmax").
  void merge(const VcStamp& other);

  /// Increment this thread's own component (Algorithm 1, line 29).
  void bump(int slot) { ++components_[static_cast<std::size_t>(slot)]; }

  Order compare(const VcStamp& other) const;

  bool strictly_precedes(const VcStamp& other) const {
    return compare(other) == Order::kBefore;
  }
  bool concurrent_with(const VcStamp& other) const {
    return compare(other) == Order::kConcurrent;
  }
  bool operator==(const VcStamp& other) const {
    return components_ == other.components_;
  }

  std::string to_string() const;

 private:
  std::vector<std::uint64_t, Alloc> components_;
};

/// Per-runtime shared configuration for plain vector clocks. Vector clocks
/// need no shared mutable state — that is precisely their selling point in
/// §4 ("do not suffer from contention on the time base") — so the domain
/// only records the dimension.
class VcDomain {
 public:
  explicit VcDomain(int dimension) : dimension_(dimension) {}

  int dimension() const { return dimension_; }

  VcStamp zero() const { return VcStamp(dimension_); }

  /// zero() whose component storage draws from `pool` (slab-backed stamp
  /// for pooled nodes: written versions carry one of these per commit).
  /// A null pool degrades to the plain heap, matching zero().
  VcStamp zero_in(object::NodePool* pool, int slot) const {
    return VcStamp(dimension_, VcStamp::Alloc(pool, slot));
  }

  /// Advance thread `slot`'s logical time within `stamp` (commit step).
  /// Purely thread-local for true vector clocks.
  void advance(int slot, VcStamp& stamp) const { stamp.bump(slot); }

 private:
  int dimension_;
};

}  // namespace zstm::timebase
