// Batched commit counter: threads lease aligned blocks of k ticks from a
// global block counter, amortizing the contended fetch_add k× (DESIGN.md
// §10). The common-case commit-stamp acquisition is one CAS on the slot's
// own padded cache line.
//
// Tick space. Block b covers ticks [b*k + 1, (b+1)*k]; blocks are handed
// out by a single fetch_add on `blocks_`, so leases are disjoint and every
// issued tick is unique. Ticks are sparse (abandoned lease remainders are
// never reissued) — callers may only compare stamps, never count them.
//
// Per-slot state is ONE atomic word, `next`: the smallest tick the slot
// may still issue (kIdle when detached). Every transition is a CAS, which
// is what makes the two global operations sound:
//
//  * now_floor() — a snapshot anchor t such that every acquire() that
//    STARTS after now_floor() returns yields a tick > t. It reads the
//    block counter first (future leases start above it), then takes the
//    min over published `next` values (a slot never issues below its
//    published `next`; leasing publishes an intent lower bound before the
//    fetch_add, so an in-flight lease is never invisible to the scan).
//    All ops involved are seq_cst; the case analysis is over the seq_cst
//    total order.
//
//  * fence_after(stamp) — after it returns, every acquire() that STARTS
//    later yields a tick > stamp. It CAS-bumps any slot whose `next` could
//    still dip to stamp up to the first tick of the block after stamp's.
//    Bounded work, no waiting: a dormant leaseholder is simply robbed of
//    its lease remainder; its next acquire re-leases from the block
//    counter, which has already passed stamp's block. This is what lets
//    LSA/Z-STM keep their commit-time validation sound under out-of-order
//    stamps — a no-op "wait" here is NOT merely slower, it admits
//    non-serializable schedules (a three-transaction anti-dependency cycle;
//    see DESIGN.md §10), which the history battery would flag.
//
// An owner tracks its lease bounds (`lo`, `hi`) in plain fields beside the
// atomic: after a fence moved `next`, the owner's claim CAS fails or the
// reloaded value falls outside [lo, hi], and the owner re-leases. Lost
// races waste ticks, never duplicate them.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "fault/failpoint.hpp"
#include "util/align.hpp"

namespace zstm::timebase {

class BatchedCounter {
 public:
  /// `slots`: number of per-thread lanes (registry capacity). `batch`:
  /// ticks per lease (k), clamped to >= 1 (k == 1 degenerates to a
  /// fetch_add per stamp through the block counter).
  explicit BatchedCounter(int slots, int batch)
      : k_(batch > 0 ? static_cast<std::uint64_t>(batch) : 1),
        slots_(static_cast<std::size_t>(slots > 0 ? slots : 1)) {}

  int batch() const { return static_cast<int>(k_); }

  /// Unique tick, strictly greater than `floor`. `floor` must be 0 or a
  /// previously issued tick (callers pass the newest stamp of versions
  /// they supersede); one re-lease then always clears it, because issued
  /// ticks never exceed the block counter's ceiling.
  std::uint64_t acquire(int slot, std::uint64_t floor = 0) {
    Slot& s = slots_[static_cast<std::size_t>(slot)].value;
    std::uint64_t cur = s.next.load(std::memory_order_seq_cst);
    for (;;) {
      if (cur >= s.lo && cur <= s.hi && cur > floor) {
        // Common case: claim the next tick of the held lease.
        if (s.next.compare_exchange_weak(cur, cur + 1,
                                         std::memory_order_seq_cst,
                                         std::memory_order_seq_cst)) {
          return cur;
        }
        continue;  // a fence moved `next`; cur was reloaded
      }
      if (cur == kIdle) {
        // Publish an intent lower bound BEFORE touching the block counter,
        // so a now_floor() scan that misses the upcoming lease still
        // anchors below it (intent <= the lease's first tick, because the
        // counter only grows between this load and the fetch_add below).
        const std::uint64_t intent =
            blocks_.value.load(std::memory_order_seq_cst) * k_ + 1;
        if (!s.next.compare_exchange_strong(cur, intent,
                                            std::memory_order_seq_cst,
                                            std::memory_order_seq_cst)) {
          continue;  // defensive; fences skip idle slots
        }
        cur = intent;
      }
      // Lease a fresh block. Any published non-idle `next` is <= base + 1
      // for the block leased here (exhausted bound, fence target, and
      // intent are all bounded by the counter's past), so the published
      // value keeps now_floor() conservative while the lease is installed.
      const std::uint64_t base =
          blocks_.value.fetch_add(1, std::memory_order_seq_cst) * k_;
      s.lo = base + 1;
      s.hi = base + k_;
      if (base + 1 > floor &&
          s.next.compare_exchange_strong(cur, base + 2,
                                         std::memory_order_seq_cst,
                                         std::memory_order_seq_cst)) {
        return base + 1;
      }
      // Either the fresh block is still under `floor` (stale counter read
      // impossible — but floor from a *concurrent* chain may outrun one
      // lease) or a fence raced the installation; loop and retry with the
      // reloaded value. Abandoned blocks are wasted, never reissued.
      cur = s.next.load(std::memory_order_seq_cst);
    }
  }

  /// Snapshot anchor: every acquire() starting after this call returns a
  /// tick strictly greater than the returned value.
  std::uint64_t now_floor() const {
    std::uint64_t t = blocks_.value.load(std::memory_order_seq_cst) * k_;
    for (const auto& ps : slots_) {
      const std::uint64_t n = ps.value.next.load(std::memory_order_seq_cst);
      if (n != kIdle && n - 1 < t) t = n - 1;
    }
    return t;
  }

  /// After this returns, no acquire() that starts later can return a tick
  /// <= `stamp` — from ANY slot, including ones attached afterwards (their
  /// leases come from the block counter, which has passed stamp's block).
  /// `stamp` must be an issued tick (the caller's own commit stamp).
  void fence_after(std::uint64_t stamp) {
    if (stamp == 0) return;
    fault::poke(fault::Site::kTimebaseLeaseFence);  // delay-only site
    // First tick of the block after stamp's block.
    const std::uint64_t target = (((stamp - 1) / k_) + 1) * k_ + 1;
    for (auto& ps : slots_) {
      auto& n = ps.value.next;
      std::uint64_t cur = n.load(std::memory_order_seq_cst);
      while (cur != kIdle && cur <= stamp) {
        if (n.compare_exchange_weak(cur, target, std::memory_order_seq_cst,
                                    std::memory_order_seq_cst)) {
          break;
        }
      }
    }
  }

  /// Abandon the slot's lease (thread detach). Must be called by the
  /// owning thread; an idle slot never constrains now_floor() and never
  /// issues ticks until re-leased.
  void release_slot(int slot) {
    Slot& s = slots_[static_cast<std::size_t>(slot)].value;
    s.lo = 1;
    s.hi = 0;
    s.next.store(kIdle, std::memory_order_seq_cst);
  }

  /// Ticks the block counter has provisioned (diagnostics/bench only).
  std::uint64_t provisioned() const {
    return blocks_.value.load(std::memory_order_relaxed) * k_;
  }

 private:
  static constexpr std::uint64_t kIdle = ~std::uint64_t{0};

  struct Slot {
    /// Smallest tick this slot may still issue; kIdle when detached.
    /// CAS-only transitions (plus the owner's idle reset).
    std::atomic<std::uint64_t> next{kIdle};
    /// Owner-only lease bounds; [1, 0] (empty) when no lease is held.
    std::uint64_t lo = 1;
    std::uint64_t hi = 0;
  };

  std::uint64_t k_;
  util::Padded<std::atomic<std::uint64_t>> blocks_;  // next unleased block
  std::vector<util::Padded<Slot>> slots_;
};

}  // namespace zstm::timebase
