// Plausible clocks (Torres-Rojas & Ahamad [12]) as r-entry vectors (REV),
// per §4.3 of the paper.
//
// A plausible timestamp is a vector of r ≤ n entries; thread slot i uses
// entry i mod r (the paper's "modulo r mapping"). Because entries are shared
// between threads, advancing an entry uses an atomic get-and-increment on a
// shared per-entry counter "to avoid that two threads generate the same
// timestamp".
//
// Guarantees (§4.3): causally related events are always ordered correctly;
// concurrent events may be *falsely* reported as ordered, which in an STM
// manifests as unnecessary aborts — never as a consistency violation.
// r = 1 degenerates to a single scalar clock (the plain TBTM of §2);
// r = n gives exact vector clocks.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "object/pool_allocator.hpp"
#include "timebase/clock_order.hpp"
#include "util/align.hpp"

namespace zstm::timebase {

class RevStamp {
 public:
  using Alloc = object::PoolAllocator<std::uint64_t>;

  RevStamp() = default;
  explicit RevStamp(int entries, const Alloc& alloc = Alloc())
      : components_(static_cast<std::size_t>(entries), 0, alloc) {}

  int entries() const { return static_cast<int>(components_.size()); }

  std::uint64_t operator[](int i) const {
    return components_[static_cast<std::size_t>(i)];
  }
  std::uint64_t& operator[](int i) {
    return components_[static_cast<std::size_t>(i)];
  }

  void merge(const RevStamp& other);
  Order compare(const RevStamp& other) const;

  bool strictly_precedes(const RevStamp& other) const {
    return compare(other) == Order::kBefore;
  }
  bool concurrent_with(const RevStamp& other) const {
    return compare(other) == Order::kConcurrent;
  }
  bool operator==(const RevStamp& other) const {
    return components_ == other.components_;
  }

  std::string to_string() const;

 private:
  std::vector<std::uint64_t, Alloc> components_;
};

/// Shared state of an REV plausible-clock system: one atomic counter per
/// entry (padded apart), from which threads draw unique increasing values.
class RevDomain {
 public:
  /// `entries` = r; `dimension` = n (number of thread slots), kept for
  /// reporting only.
  RevDomain(int entries, int dimension);

  int entries() const { return entries_; }
  int dimension() const { return dimension_; }

  /// The entry thread `slot` writes to: slot mod r.
  int entry_of(int slot) const { return slot % entries_; }

  RevStamp zero() const { return RevStamp(entries_); }

  /// zero() whose component storage draws from `pool` (slab-backed stamp
  /// for pooled nodes). A null pool degrades to the plain heap.
  RevStamp zero_in(object::NodePool* pool, int slot) const {
    return RevStamp(entries_, RevStamp::Alloc(pool, slot));
  }

  /// Advance thread `slot`'s entry inside `stamp` (commit step): draws a
  /// value strictly greater than both the shared entry counter and the
  /// stamp's current entry, and publishes it to the shared counter, so no
  /// two commits ever carry the same timestamp (get-and-increment of §4.3).
  void advance(int slot, RevStamp& stamp);

 private:
  int entries_;
  int dimension_;
  std::vector<util::PaddedCounter> shared_;
};

}  // namespace zstm::timebase
