// Sharded clock: per-shard padded tick counters with a static thread→shard
// map, producing (shard, tick) stamps ordered through the clock_order.hpp
// machinery (DESIGN.md §10).
//
// This is the most aggressive relaxation in the timebase hierarchy: stamps
// from the same shard are totally ordered by tick; stamps from different
// shards are incomparable (Order::kConcurrent). That deliberately discards
// even the cross-shard causality a plausible REV clock (§4.3) retains, so a
// ShardedClock can NEVER replace the commit clock of a runtime whose
// criterion needs cross-thread ordering — using it there would admit
// schedules the paper's §4.1 conditions reject. What the total loss of
// cross-shard order buys is shard-local fetch_adds: commit-stamp
// acquisition scales with the shard count instead of serializing on one
// cache line (bench_clock_scale quantifies it).
//
// Safe productized uses, wired through the runtimes:
//  * unique_id(): globally unique ids that need no ordering at all —
//    transaction ids and object ids (Config::sharded_tx_ids). The shard
//    index rides in the low kShardBits of the id.
//  * Raw (shard, tick) stamps for harnesses/tests that only ever compare
//    within a shard.
//
// The default slot→shard map is cache-topology aware: slots map to their
// util::slot_home_group, so threads placed by the topology-aware
// ThreadRegistry bump a counter that lives in their own cache group.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <string_view>
#include <vector>

#include "timebase/clock_order.hpp"
#include "util/align.hpp"
#include "util/cpu_topology.hpp"

namespace zstm::timebase {

/// Shared Config::sharded_tx_ids env escape hatch: ZSTM_SHARDED_IDS=0
/// forces globally-counter ids (densely ordered, easier to eyeball in
/// debugging) regardless of the configuration.
inline bool sharded_ids_enabled(bool config_flag) {
  if (!config_flag) return false;
  const char* e = std::getenv("ZSTM_SHARDED_IDS");
  return e == nullptr || std::string_view(e) != "0";
}

/// A (shard, tick) pair. Same shard ⇒ ordered by tick; different shards ⇒
/// concurrent. Ticks start at 1 (a zero-tick stamp precedes every stamp of
/// its shard and is concurrent with every other shard, like an unwritten
/// vector-clock entry).
struct ShardStamp {
  std::uint32_t shard = 0;
  std::uint64_t tick = 0;

  Order compare(const ShardStamp& other) const {
    if (shard != other.shard) return Order::kConcurrent;
    if (tick == other.tick) return Order::kEqual;
    return tick < other.tick ? Order::kBefore : Order::kAfter;
  }
};

class ShardedClock {
 public:
  /// unique_id() packs the shard into this many low bits, so at most
  /// 2^kShardBits shards participate in id generation.
  static constexpr int kShardBits = 6;
  static constexpr int kMaxShards = 1 << kShardBits;

  /// `slots`: registry capacity the slot→shard map covers. `shards`: 0
  /// selects one shard per cache-topology group (>= 1); explicit values
  /// are clamped to [1, kMaxShards]. Requesting shards >= slots selects
  /// the *exclusive* layout: every slot gets its own single-writer lane
  /// (identity map), and tick() needs no atomic RMW at all — just a plain
  /// load and a release store, since the registry guarantees one thread
  /// per slot. That is the fastest configuration on every host (no lock
  /// prefix even uncontended) and the maximum-contention-relief one on
  /// multi-core parts; it is what the runtimes use for id generation.
  explicit ShardedClock(int slots, int shards = 0)
      : slots_(slots > 0 ? slots : 1) {
    if (shards <= 0) shards = util::cpu_topology().groups;
    if (shards < 1) shards = 1;
    if (shards > kMaxShards) shards = kMaxShards;
    if (shards > slots_) shards = slots_;
    shards_ = shards;
    exclusive_ = (shards_ == slots_);
    // vector(n), not resize: PaddedCounter holds an atomic and is not
    // move-insertable; the count constructor only default-constructs.
    counters_ = std::vector<util::PaddedCounter>(
        static_cast<std::size_t>(shards_));
    map_.resize(static_cast<std::size_t>(slots_));
    for (int s = 0; s < slots_; ++s) {
      map_[static_cast<std::size_t>(s)] =
          exclusive_ ? s : util::slot_home_group(s, slots_) % shards_;
    }
  }

  int shards() const { return shards_; }
  bool exclusive() const { return exclusive_; }

  int shard_of(int slot) const {
    if (slot < 0 || slot >= slots_) return 0;
    return map_[static_cast<std::size_t>(slot)];
  }

  /// Next stamp of the slot's shard: unique within the shard, strictly
  /// increasing per shard, concurrent with every other shard.
  ShardStamp tick(int slot) {
    const int sh = shard_of(slot);
    auto& c = counters_[static_cast<std::size_t>(sh)].value;
    std::uint64_t t;
    if (exclusive_) {
      // Single-writer lane: only this slot's thread ever advances it, so
      // a plain load + release store suffices (uniqueness and per-shard
      // monotonicity are trivial with one writer; concurrent now() readers
      // see a monotone sequence through the atomic).
      t = c.load(std::memory_order_relaxed) + 1;
      c.store(t, std::memory_order_release);
    } else {
      t = c.fetch_add(1, std::memory_order_relaxed) + 1;
    }
    return ShardStamp{static_cast<std::uint32_t>(sh), t};
  }

  /// Current shard time without advancing it.
  ShardStamp now(int slot) const {
    const int sh = shard_of(slot);
    return ShardStamp{static_cast<std::uint32_t>(sh),
                      counters_[static_cast<std::size_t>(sh)].value.load(
                          std::memory_order_relaxed)};
  }

  /// Globally unique, non-zero id: (tick << kShardBits) | shard. Ids carry
  /// no ordering across shards — use only where identity suffices
  /// (transaction ids, object ids), never as a commit stamp.
  std::uint64_t unique_id(int slot) {
    const ShardStamp s = tick(slot);
    return (s.tick << kShardBits) | s.shard;
  }

 private:
  int slots_;
  int shards_ = 1;
  bool exclusive_ = false;
  std::vector<int> map_;
  std::vector<util::PaddedCounter> counters_;
};

}  // namespace zstm::timebase
