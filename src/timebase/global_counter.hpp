// The simplest time base of §2: "a global shared linearizable integer
// counter. The current time is obtained by reading the counter. The counter
// is atomically incremented whenever a commit time is acquired."
//
// Padded to its own cache line; the contention this counter suffers under
// many committing threads is itself one of the paper's motivating
// observations (reproduced by bench_timebase).
#pragma once

#include <atomic>
#include <cstdint>

#include "util/align.hpp"

namespace zstm::timebase {

class GlobalCounter {
 public:
  /// Current global time (no side effect).
  std::uint64_t now() const { return time_.value.load(std::memory_order_acquire); }

  /// Acquire a fresh commit time: atomically increments global time and
  /// returns the new value, which this transaction exclusively owns.
  std::uint64_t acquire_commit_time() {
    return time_.value.fetch_add(1, std::memory_order_acq_rel) + 1;
  }

  /// GV4/GV5-style relaxed acquisition (TL2 Config::clock_scheme): one
  /// attempt to CAS the clock from `observed` to `desired`. On failure
  /// `observed` is updated to the current (larger) clock value, which the
  /// caller may *adopt* as its commit time instead of retrying — see
  /// tl2.cpp step 3 for why sharing a commit time this way is sound there.
  bool try_advance_commit_time(std::uint64_t& observed,
                               std::uint64_t desired) {
    return time_.value.compare_exchange_strong(observed, desired,
                                               std::memory_order_acq_rel,
                                               std::memory_order_acquire);
  }

 private:
  util::Padded<std::atomic<std::uint64_t>> time_{};
};

}  // namespace zstm::timebase
