#include "timebase/plausible_clock.hpp"

#include <sstream>
#include <stdexcept>

namespace zstm::timebase {

void RevStamp::merge(const RevStamp& other) {
  for (std::size_t k = 0; k < components_.size(); ++k) {
    if (other.components_[k] > components_[k]) {
      components_[k] = other.components_[k];
    }
  }
}

Order RevStamp::compare(const RevStamp& other) const {
  bool le = true;
  bool ge = true;
  for (std::size_t k = 0; k < components_.size(); ++k) {
    if (components_[k] > other.components_[k]) le = false;
    if (components_[k] < other.components_[k]) ge = false;
  }
  if (le && ge) return Order::kEqual;
  if (le) return Order::kBefore;
  if (ge) return Order::kAfter;
  return Order::kConcurrent;
}

std::string RevStamp::to_string() const {
  std::ostringstream os;
  os << "[";
  for (std::size_t k = 0; k < components_.size(); ++k) {
    if (k > 0) os << ",";
    os << components_[k];
  }
  os << "]";
  return os.str();
}

RevDomain::RevDomain(int entries, int dimension)
    : entries_(entries),
      dimension_(dimension),
      shared_(static_cast<std::size_t>(entries)) {
  if (entries < 1) throw std::invalid_argument("REV needs at least 1 entry");
  if (dimension < entries) {
    // r ≤ n by definition; r == n is exactly a vector clock.
    throw std::invalid_argument("REV entries must not exceed dimension");
  }
}

void RevDomain::advance(int slot, RevStamp& stamp) {
  const int e = entry_of(slot);
  auto& counter = shared_[static_cast<std::size_t>(e)].value;
  std::uint64_t cur = counter.load(std::memory_order_relaxed);
  std::uint64_t next;
  do {
    // Strictly above both the shared counter and anything this stamp already
    // observed for the entry: guarantees global uniqueness per entry and
    // that the commit timestamp dominates everything the transaction read.
    next = (cur > stamp[e] ? cur : stamp[e]) + 1;
  } while (!counter.compare_exchange_weak(cur, next, std::memory_order_acq_rel,
                                          std::memory_order_relaxed));
  stamp[e] = next;
}

}  // namespace zstm::timebase
