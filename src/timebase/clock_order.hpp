// Partial-order verdicts for (vector / plausible) timestamps.
//
// Matches the comparison rules of §4 of the paper:
//   (1) ti = tj  ⇔ ∀k ti[k] = tj[k]
//   (2) ti ≼ tj  ⇔ ∀k ti[k] ≤ tj[k]
//   (3) ti ≺ tj  ⇔ ti ≼ tj ∧ ti ≠ tj
// and events: ei → ej ⇔ ti ≺ tj; ei ∥ ej ⇔ ti ⊀ tj ∧ tj ⊀ ti.
#pragma once

namespace zstm::timebase {

enum class Order {
  kEqual,       // ti = tj
  kBefore,      // ti ≺ tj
  kAfter,       // tj ≺ ti
  kConcurrent,  // ti ∥ tj
};

inline const char* to_string(Order o) {
  switch (o) {
    case Order::kEqual: return "=";
    case Order::kBefore: return "<";
    case Order::kAfter: return ">";
    case Order::kConcurrent: return "||";
  }
  return "?";
}

}  // namespace zstm::timebase
