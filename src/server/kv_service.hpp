// KvService — the STM-backed key-value service (DESIGN.md §12): a worker
// pool draining a bounded MPMC request queue into a KvStore whose runtime
// variant is chosen by name, plus a housekeeping thread that drives the
// façade's maintain() hook (S-STM descriptor trim) and escalates to a
// forced stop-the-world trim when the retained gauge crosses a watermark.
//
// The service is the measurement harness the figure benches are not:
// requests carry their *scheduled* arrival time, workers record
// completion-minus-arrival into per-worker HDR histograms, so queueing
// delay — the thing an open-loop arrival process makes visible — lands in
// the latency tail where it belongs (no coordinated omission).
//
// Lifecycle: start() spawns workers + housekeeper; submit() enqueues (and
// sheds, returning false, when the ring is full — open-loop honesty);
// stop() stops accepting, waits for in-flight submits, closes the queue,
// lets the workers drain every accepted request, joins everything, and
// runs a final maintain. start() may be called again after stop() — the
// worker threads are new each time, which exercises registry-slot
// reclamation through the façade's thread-exit hook.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "api/stm_api.hpp"
#include "server/kv_store.hpp"
#include "server/mpmc_queue.hpp"
#include "util/align.hpp"
#include "util/latency_histogram.hpp"

namespace zstm::server {

enum class Op : std::uint8_t {
  kGet = 0,
  kPut,
  kDel,
  kMultiGet,
  kScan,
  kTransfer,
  kCount
};
constexpr std::size_t kOpCount = static_cast<std::size_t>(Op::kCount);
const char* op_name(Op op);

struct Response {
  bool ok = false;          ///< op-specific success (e.g. get: key found)
  Value value = 0;          ///< get result / multi_get found-sum / scan sum
  std::uint64_t count = 0;  ///< multi_get found count / scan element count
};

struct Request {
  Op op = Op::kGet;
  Key key = 0;
  Key key2 = 0;   ///< transfer destination
  Value value = 0;  ///< put value / transfer amount
  std::uint32_t fanout = 0;  ///< multi_get width (keys [key, key+fanout))
  /// Scheduled (open-loop) arrival, ProgressTracker::now_ns timebase.
  /// submit() stamps the current time when left 0.
  std::uint64_t arrival_ns = 0;
  /// Completion callback, invoked on the worker thread. Tests use it; the
  /// load generator leaves it empty (fire-and-forget, no allocation).
  std::function<void(const Response&)> on_done;
};

struct ServiceConfig {
  std::string variant = "zl";
  int workers = 2;
  std::size_t queue_capacity = 1 << 14;
  std::size_t buckets = 256;
  /// multi_get switches from kReadOnly to kLong at this fanout.
  std::uint32_t multi_get_long_threshold = 8;
  /// Housekeeping cadence; the thread also wakes immediately on stop().
  std::chrono::milliseconds maintain_interval{10};
  /// Retained gauge (S-STM descriptors) above which housekeeping escalates
  /// to maintain(force=true) — the serial-gate drain.
  std::size_t maintain_force_watermark = 1 << 14;
  /// Façade config. The service defaults differ from CommonConfig's: the
  /// serial-irrevocable rung is on (bounds the latency tail AND gives the
  /// forced trim its drain) and the every-N-commits maintain fallback is
  /// armed, so descriptor reclamation never depends on the housekeeper
  /// alone.
  api::CommonConfig stm = default_stm_config();

  static api::CommonConfig default_stm_config() {
    api::CommonConfig c;
    c.retry.serial_after = 64;
    c.maintain_every = 1024;
    return c;
  }
};

/// Merged post-run view (exact after stop(); racy-but-safe while running).
struct ServiceMetrics {
  std::uint64_t accepted = 0;
  std::uint64_t completed = 0;
  std::array<util::LatencyHistogram, kOpCount> per_op;
  util::LatencyHistogram all;
  std::uint64_t maintain_calls = 0;
  std::uint64_t maintain_forced = 0;
  std::uint64_t reclaimed_total = 0;
  std::size_t retained_last = 0;
  std::size_t retained_high_water = 0;
  util::ProgressTracker::Snapshot progress;
  util::StatsSnapshot stm;
};

class KvService {
 public:
  explicit KvService(ServiceConfig cfg);
  ~KvService();

  KvService(const KvService&) = delete;
  KvService& operator=(const KvService&) = delete;

  void start();
  /// Drain-and-join: every accepted request completes before this returns.
  void stop();
  bool running() const { return running_; }

  /// Enqueue. False = shed (not accepting, or the ring is full); the
  /// request then had no effect and on_done is not called.
  bool submit(Request req);

  /// Synchronous preload from the calling thread (service need not be
  /// started): keys [first, first+count) each set to `value`.
  void preload(Key first, std::uint64_t count, Value value);

  std::uint64_t completed() const;
  ServiceMetrics metrics();

  const ServiceConfig& config() const { return cfg_; }
  api::AnyStm& stm() { return stm_; }
  KvStore& store() { return store_; }

 private:
  struct WorkerState {
    std::array<util::LatencyHistogram, kOpCount> hist;
    std::atomic<std::uint64_t> completed{0};
  };

  void worker_loop(int idx);
  void housekeeper_loop();
  Response execute(const Request& req);
  void note_maintain(const api::MaintainResult& r, bool forced);

  ServiceConfig cfg_;
  api::AnyStm stm_;
  KvStore store_;
  std::unique_ptr<MpmcQueue<Request>> queue_;
  std::vector<std::thread> workers_;
  std::vector<WorkerState> wstate_;
  std::thread housekeeper_;

  std::atomic<bool> accepting_{false};
  std::atomic<bool> stopping_{false};
  bool running_ = false;
  std::atomic<std::uint64_t> submit_in_flight_{0};
  std::atomic<std::uint64_t> accepted_{0};

  std::mutex hk_mutex_;
  std::condition_variable hk_cv_;

  std::atomic<std::uint64_t> maintain_calls_{0};
  std::atomic<std::uint64_t> maintain_forced_{0};
  std::atomic<std::uint64_t> reclaimed_total_{0};
  std::atomic<std::size_t> retained_last_{0};
  std::atomic<std::size_t> retained_hw_{0};
};

}  // namespace zstm::server
