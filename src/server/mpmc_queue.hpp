// Bounded MPMC request queue for the KV service (DESIGN.md §12.2).
//
// Dmitry Vyukov's classic bounded MPMC ring: each cell carries a sequence
// number; producers and consumers claim cells with one CAS on their own
// cursor and synchronize through the cell's sequence (acquire on read,
// release on publish). No locks, no spurious blocking — a full queue fails
// try_push immediately, which is exactly what an open-loop load generator
// needs (a blocked producer would silently turn the workload closed-loop;
// shedding keeps the arrival process honest and is itself a measurement).
//
// Consumers use pop(): a bounded spin over try_pop that degrades to
// sched_yield and then to a short sleep, so idle workers cost ~nothing at
// low arrival rates while a 1-CPU box still makes progress. close() makes
// pop() return false once the ring has drained — the service's clean
// shutdown: producers stop, workers finish every accepted request, then
// exit.
#pragma once

#include <atomic>
#include <cassert>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

#include "util/align.hpp"

namespace zstm::server {

template <typename T>
class MpmcQueue {
 public:
  /// Capacity is rounded up to a power of two (min 2).
  explicit MpmcQueue(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    cells_ = std::vector<Cell>(cap);
    mask_ = cap - 1;
    for (std::size_t i = 0; i < cap; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  std::size_t capacity() const { return mask_ + 1; }

  /// False when the ring is full or the queue is closed.
  bool try_push(T&& item) {
    if (closed_.load(std::memory_order_acquire)) return false;
    std::size_t pos = tail_.value.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::size_t seq = cell.seq.load(std::memory_order_acquire);
      const std::intptr_t dif = static_cast<std::intptr_t>(seq) -
                                static_cast<std::intptr_t>(pos);
      if (dif == 0) {
        if (tail_.value.compare_exchange_weak(pos, pos + 1,
                                              std::memory_order_relaxed)) {
          cell.item = std::move(item);
          cell.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
        // pos reloaded by the failed CAS; retry.
      } else if (dif < 0) {
        return false;  // full
      } else {
        pos = tail_.value.load(std::memory_order_relaxed);
      }
    }
  }

  /// False when the ring is empty right now (does not mean closed).
  bool try_pop(T& out) {
    std::size_t pos = head_.value.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::size_t seq = cell.seq.load(std::memory_order_acquire);
      const std::intptr_t dif = static_cast<std::intptr_t>(seq) -
                                static_cast<std::intptr_t>(pos + 1);
      if (dif == 0) {
        if (head_.value.compare_exchange_weak(pos, pos + 1,
                                              std::memory_order_relaxed)) {
          out = std::move(cell.item);
          cell.seq.store(pos + mask_ + 1, std::memory_order_release);
          return true;
        }
      } else if (dif < 0) {
        return false;  // empty
      } else {
        pos = head_.value.load(std::memory_order_relaxed);
      }
    }
  }

  /// Blocking pop for worker threads: spins briefly, then yields, then
  /// dozes in short sleeps. Returns false only when the queue is closed
  /// AND drained — every accepted item is popped exactly once.
  bool pop(T& out) {
    int spins = 0;
    for (;;) {
      if (try_pop(out)) return true;
      if (closed_.load(std::memory_order_acquire)) {
        // Drain race: an in-flight push that won its cell before close()
        // may still be publishing; one more sweep after seeing closed.
        if (try_pop(out)) return true;
        return false;
      }
      ++spins;
      if (spins < 64) {
        // busy-spin
      } else if (spins < 256) {
        std::this_thread::yield();
      } else {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    }
  }

  /// Stop accepting new items; pending ones remain poppable. Idempotent.
  void close() { closed_.store(true, std::memory_order_release); }
  bool closed() const { return closed_.load(std::memory_order_acquire); }

  /// Approximate occupancy (racy; monitoring only).
  std::size_t size_approx() const {
    const std::size_t t = tail_.value.load(std::memory_order_relaxed);
    const std::size_t h = head_.value.load(std::memory_order_relaxed);
    return t >= h ? t - h : 0;
  }

 private:
  struct Cell {
    std::atomic<std::size_t> seq{0};
    T item{};
  };

  std::vector<Cell> cells_;
  std::size_t mask_ = 0;
  util::Padded<std::atomic<std::size_t>> tail_{};  // producers
  util::Padded<std::atomic<std::size_t>> head_{};  // consumers
  std::atomic<bool> closed_{false};
};

}  // namespace zstm::server
