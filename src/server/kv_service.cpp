// KvService implementation (DESIGN.md §12). The interesting parts are the
// shutdown protocol and the housekeeping escalation; the request loop
// itself is a thin dispatch onto KvStore.
#include "server/kv_service.hpp"

#include <cassert>
#include <utility>

namespace zstm::server {

const char* op_name(Op op) {
  switch (op) {
    case Op::kGet:      return "get";
    case Op::kPut:      return "put";
    case Op::kDel:      return "del";
    case Op::kMultiGet: return "multi_get";
    case Op::kScan:     return "scan";
    case Op::kTransfer: return "transfer";
    case Op::kCount:    break;
  }
  return "?";
}

KvService::KvService(ServiceConfig cfg)
    : cfg_(std::move(cfg)),
      stm_(api::AnyStm::make(cfg_.variant, cfg_.stm)),
      store_(stm_, cfg_.buckets, cfg_.multi_get_long_threshold) {}

KvService::~KvService() { stop(); }

void KvService::start() {
  if (running_) return;
  // A fresh ring per run: close() is one-way, and restart is part of the
  // service contract (thread-churn coverage for registry slot reuse).
  queue_ = std::make_unique<MpmcQueue<Request>>(cfg_.queue_capacity);
  wstate_ = std::vector<WorkerState>(static_cast<std::size_t>(cfg_.workers));
  stopping_.store(false, std::memory_order_release);
  workers_.reserve(static_cast<std::size_t>(cfg_.workers));
  for (int i = 0; i < cfg_.workers; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
  housekeeper_ = std::thread([this] { housekeeper_loop(); });
  accepting_.store(true, std::memory_order_release);
  running_ = true;
}

void KvService::stop() {
  if (!running_) return;
  // 1. Stop accepting, then wait out submits already past the gate — after
  //    this, no producer can touch the ring again.
  accepting_.store(false, std::memory_order_release);
  while (submit_in_flight_.load(std::memory_order_acquire) != 0) {
    std::this_thread::yield();
  }
  // 2. Close the ring. Workers drain every accepted request, then exit.
  queue_->close();
  for (auto& w : workers_) w.join();
  workers_.clear();
  // 3. Retire the housekeeper, then take one final (quiescent) trim so the
  //    retained gauge reported after stop() reflects a clean heap.
  {
    std::lock_guard<std::mutex> lk(hk_mutex_);
    stopping_.store(true, std::memory_order_release);
  }
  hk_cv_.notify_all();
  housekeeper_.join();
  note_maintain(stm_.maintain(), false);
  running_ = false;
}

bool KvService::submit(Request req) {
  // in_flight_ brackets the accepting_ check AND the push, so stop() can
  // wait for stragglers that saw accepting_==true just before it flipped.
  submit_in_flight_.fetch_add(1, std::memory_order_acquire);
  bool ok = false;
  if (accepting_.load(std::memory_order_acquire)) {
    if (req.arrival_ns == 0) req.arrival_ns = util::ProgressTracker::now_ns();
    ok = queue_->try_push(std::move(req));
  }
  submit_in_flight_.fetch_sub(1, std::memory_order_release);
  if (ok) accepted_.fetch_add(1, std::memory_order_relaxed);
  return ok;
}

void KvService::preload(Key first, std::uint64_t count, Value value) {
  for (std::uint64_t i = 0; i < count; ++i) {
    store_.put(first + i, value);
  }
}

std::uint64_t KvService::completed() const {
  std::uint64_t n = 0;
  for (const auto& w : wstate_) n += w.completed.load(std::memory_order_relaxed);
  return n;
}

ServiceMetrics KvService::metrics() {
  ServiceMetrics m;
  m.accepted = accepted_.load(std::memory_order_relaxed);
  for (auto& w : wstate_) {
    m.completed += w.completed.load(std::memory_order_relaxed);
    for (std::size_t op = 0; op < kOpCount; ++op) {
      m.per_op[op].merge(w.hist[op]);
      m.all.merge(w.hist[op]);
    }
  }
  m.maintain_calls = maintain_calls_.load(std::memory_order_relaxed);
  m.maintain_forced = maintain_forced_.load(std::memory_order_relaxed);
  m.reclaimed_total = reclaimed_total_.load(std::memory_order_relaxed);
  m.retained_last = retained_last_.load(std::memory_order_relaxed);
  m.retained_high_water = retained_hw_.load(std::memory_order_relaxed);
  m.progress = stm_.progress();
  m.stm = stm_.stats();
  return m;
}

void KvService::worker_loop(int idx) {
  WorkerState& st = wstate_[static_cast<std::size_t>(idx)];
  Request req;
  while (queue_->pop(req)) {
    const Response resp = execute(req);
    const std::uint64_t done_ns = util::ProgressTracker::now_ns();
    const std::uint64_t lat =
        done_ns > req.arrival_ns ? done_ns - req.arrival_ns : 0;
    st.hist[static_cast<std::size_t>(req.op)].record(lat);
    if (req.on_done) req.on_done(resp);
    req.on_done = nullptr;  // drop any captured state before the next pop
    st.completed.fetch_add(1, std::memory_order_relaxed);
  }
}

Response KvService::execute(const Request& req) {
  Response resp;
  switch (req.op) {
    case Op::kGet: {
      const std::optional<Value> v = store_.get(req.key);
      resp.ok = v.has_value();
      resp.value = v.value_or(0);
      break;
    }
    case Op::kPut: {
      const bool inserted = store_.put(req.key, req.value);
      resp.ok = true;
      resp.count = inserted ? 1 : 0;
      break;
    }
    case Op::kDel: {
      resp.ok = store_.del(req.key);
      break;
    }
    case Op::kMultiGet: {
      // Snapshot sum over the window: with transfers confined to the same
      // window this is an invariant the tests can pin.
      std::vector<Value> vals;
      resp.count = store_.multi_get(req.key, req.fanout, &vals);
      for (const Value v : vals) resp.value += v;
      resp.ok = true;
      break;
    }
    case Op::kScan: {
      const KvStore::ScanResult r = store_.scan();
      resp.ok = true;
      resp.count = r.count;
      resp.value = r.sum;
      break;
    }
    case Op::kTransfer: {
      resp.ok = store_.transfer(req.key, req.key2, req.value);
      break;
    }
    case Op::kCount:
      break;
  }
  return resp;
}

void KvService::housekeeper_loop() {
  std::unique_lock<std::mutex> lk(hk_mutex_);
  for (;;) {
    hk_cv_.wait_for(lk, cfg_.maintain_interval, [this] {
      return stopping_.load(std::memory_order_acquire);
    });
    if (stopping_.load(std::memory_order_acquire)) return;
    lk.unlock();
    // Opportunistic pass first (free when the runtime happens to be
    // quiescent — common in open-loop idle gaps); escalate to the
    // serial-gate drain only when the retained gauge says the
    // opportunistic passes are losing.
    api::MaintainResult r = stm_.maintain();
    bool forced = false;
    if (r.retained > cfg_.maintain_force_watermark) {
      r = stm_.maintain(/*force=*/true);
      forced = true;
    }
    note_maintain(r, forced);
    lk.lock();
  }
}

void KvService::note_maintain(const api::MaintainResult& r, bool forced) {
  maintain_calls_.fetch_add(1, std::memory_order_relaxed);
  if (forced) maintain_forced_.fetch_add(1, std::memory_order_relaxed);
  reclaimed_total_.fetch_add(r.reclaimed, std::memory_order_relaxed);
  retained_last_.store(r.retained, std::memory_order_relaxed);
  std::size_t hw = retained_hw_.load(std::memory_order_relaxed);
  while (r.retained > hw &&
         !retained_hw_.compare_exchange_weak(hw, r.retained,
                                             std::memory_order_relaxed)) {
  }
}

}  // namespace zstm::server
