// KvStore — the KV service's storage engine (DESIGN.md §12.1): an
// adt::TMap over the api:: façade, one transaction per service operation,
// with the TxKind chosen per operation class:
//
//   get                  TxKind::kReadOnly   (declared-read-only fast path)
//   put / del / transfer TxKind::kUpdate
//   multi_get (small k)  TxKind::kReadOnly
//   multi_get (k >= long_threshold) and scan
//                        TxKind::kLong       (Z-STM Algorithm 2; the
//                                             z-linearizability showcase)
//
// Transfer is the classic two-key invariant op (conservation of the value
// sum); multi_get reads k consecutive keys in ONE transaction, so the
// returned vector is a consistent snapshot; scan folds every element
// through a long read-only transaction, which under "zl" never validates a
// read set and can never be aborted by the short updates racing it.
//
// Generic over the façade type S: the service instantiates KvStore =
// KvStoreT<api::AnyStm> (variant picked by --runtime name); tests may use
// the zero-cost typed form.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "adt/tmap.hpp"
#include "api/stm_api.hpp"

namespace zstm::server {

using Key = std::uint64_t;
using Value = std::int64_t;

template <typename S>
class KvStoreT {
 public:
  using Map = adt::TMap<S, Key, Value>;

  KvStoreT(S& stm, std::size_t buckets, std::uint32_t long_threshold = 8)
      : stm_(&stm), map_(stm, buckets), long_threshold_(long_threshold) {}

  std::optional<Value> get(Key key) {
    std::optional<Value> out;
    stm_->run(api::TxKind::kReadOnly,
              [&](auto& tx) { out = map_.get(tx, key); });
    return out;
  }

  /// True if the key was newly inserted (false = overwritten).
  bool put(Key key, Value value) {
    bool inserted = false;
    typename Map::Scratch scratch;  // one node across the retry ladder
    stm_->run(api::TxKind::kUpdate, [&](auto& tx) {
      inserted = map_.put(tx, key, value, &scratch);
    });
    return inserted;
  }

  /// True if the key existed.
  bool del(Key key) {
    bool erased = false;
    stm_->run(api::TxKind::kUpdate,
              [&](auto& tx) { erased = map_.erase(tx, key); });
    return erased;
  }

  /// One consistent snapshot of keys [first, first + count). Missing keys
  /// yield no entry; `found` (the return) counts the present ones.
  std::size_t multi_get(Key first, std::uint32_t count,
                        std::vector<Value>* out) {
    const api::TxKind kind = count >= long_threshold_ ? api::TxKind::kLong
                                                      : api::TxKind::kReadOnly;
    std::size_t found = 0;
    stm_->run(kind, [&](auto& tx) {
      found = 0;
      if (out != nullptr) out->clear();
      for (std::uint32_t i = 0; i < count; ++i) {
        const std::optional<Value> v = map_.get(tx, first + i);
        if (v.has_value()) {
          ++found;
          if (out != nullptr) out->push_back(*v);
        }
      }
    });
    return found;
  }

  /// Move `amount` from `from` to `to` atomically. False (no effect) if
  /// either key is absent or from == to.
  bool transfer(Key from, Key to, Value amount) {
    if (from == to) return false;
    bool ok = false;
    stm_->run(api::TxKind::kUpdate, [&](auto& tx) {
      ok = false;
      const std::optional<Value> a = map_.get(tx, from);
      const std::optional<Value> b = map_.get(tx, to);
      if (!a.has_value() || !b.has_value()) return;
      map_.put(tx, from, *a - amount);
      map_.put(tx, to, *b + amount);
      ok = true;
    });
    return ok;
  }

  struct ScanResult {
    std::uint64_t count = 0;
    Value sum = 0;
  };

  /// Full long read-only scan: element count and value sum (the
  /// conservation invariant the tests pin). One walk — the structural
  /// audit is a separate call.
  ScanResult scan() {
    ScanResult r;
    stm_->run(api::TxKind::kLong, [&](auto& tx) {
      r = ScanResult{};
      map_.for_each(tx, [&](Key, Value v) {
        ++r.count;
        r.sum += v;
      });
    });
    return r;
  }

  /// Structural audit (size + intra-bucket sortedness), as one long
  /// read-only transaction.
  typename Map::AuditResult audit() {
    typename Map::AuditResult a;
    stm_->run(api::TxKind::kLong, [&](auto& tx) { a = map_.audit(tx); });
    return a;
  }

  S& stm() { return *stm_; }
  Map& map() { return map_; }

 private:
  S* stm_;
  Map map_;
  std::uint32_t long_threshold_;
};

using KvStore = KvStoreT<api::AnyStm>;

}  // namespace zstm::server
