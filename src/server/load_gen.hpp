// Open-loop load generator for the KV service (DESIGN.md §12.3).
//
// One pacer thread issues requests on a fixed schedule — deterministic
// 1/rate spacing by default, exponential (Poisson process) interarrivals on
// request — and stamps each request with its SCHEDULED arrival time, not
// the time the pacer got around to enqueueing it. Latency is therefore
// measured from when the request *should* have arrived, so pacer lateness
// and queueing delay both land in the recorded tail instead of being
// silently absorbed (the coordinated-omission trap of closed-loop
// harnesses). When the service ring is full the request is shed and
// counted: an overloaded open-loop system drops work, it does not slow the
// arrival process down.
//
// Key choice follows a Zipfian(theta) over [0, keyspace) with scrambled
// ranks (util::Zipfian); the op mix is a cumulative draw over the six
// service verbs. Everything is deterministic under a fixed seed.
#pragma once

#include <chrono>
#include <cmath>
#include <cstdint>
#include <thread>

#include "server/kv_service.hpp"
#include "util/rng.hpp"
#include "util/zipfian.hpp"

namespace zstm::server {

/// Operation mix as fractions; anything left after the named verbs goes to
/// get (so the mix never needs to sum to exactly 1).
struct LoadMix {
  double put = 0.15;
  double del = 0.02;
  double multi_get = 0.05;
  double scan = 0.01;
  double transfer = 0.07;
};

struct LoadGenConfig {
  double rate = 2000.0;  ///< target arrivals per second
  std::chrono::milliseconds duration{1000};
  std::uint64_t keyspace = 4096;
  double zipf_theta = 0.99;  ///< 0 = uniform
  LoadMix mix;
  std::uint32_t multi_fanout = 16;
  bool poisson = false;  ///< exponential interarrivals instead of fixed
  std::uint64_t seed = 1;
  Value put_value = 100;
  Value transfer_amount = 1;
};

struct LoadGenResult {
  std::uint64_t offered = 0;   ///< scheduled arrivals
  std::uint64_t accepted = 0;  ///< made it into the ring
  std::uint64_t shed = 0;      ///< rejected (ring full / not accepting)
  std::uint64_t elapsed_ns = 0;
};

/// Run the open-loop schedule against `svc` from the calling thread.
/// Blocks for ~cfg.duration. The service must be start()ed.
inline LoadGenResult run_open_loop(KvService& svc, const LoadGenConfig& cfg) {
  LoadGenResult res;
  if (cfg.rate <= 0.0 || cfg.keyspace == 0) return res;

  util::Xorshift rng(cfg.seed);
  util::Zipfian keys(cfg.keyspace, cfg.zipf_theta, cfg.seed ^ 0x5eedULL);
  const double interval_ns = 1e9 / cfg.rate;

  const std::uint64_t t0 = util::ProgressTracker::now_ns();
  const std::uint64_t end =
      t0 + static_cast<std::uint64_t>(
               std::chrono::duration_cast<std::chrono::nanoseconds>(
                   cfg.duration)
                   .count());
  double next = static_cast<double>(t0);

  while (static_cast<std::uint64_t>(next) < end) {
    const std::uint64_t scheduled = static_cast<std::uint64_t>(next);
    const std::uint64_t now = util::ProgressTracker::now_ns();
    if (scheduled > now) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(scheduled - now));
    }
    // Behind schedule: issue immediately (burst catch-up) — the scheduled
    // stamp keeps the accounting honest.

    Request req;
    req.arrival_ns = scheduled;
    const double roll = rng.next_unit();
    double acc = cfg.mix.put;
    if (roll < acc) {
      req.op = Op::kPut;
      req.key = keys.next();
      req.value = cfg.put_value;
    } else if (roll < (acc += cfg.mix.del)) {
      req.op = Op::kDel;
      req.key = keys.next();
    } else if (roll < (acc += cfg.mix.multi_get)) {
      req.op = Op::kMultiGet;
      const std::uint64_t span =
          cfg.keyspace > cfg.multi_fanout ? cfg.keyspace - cfg.multi_fanout : 1;
      req.key = rng.next_below(span);  // window start: uniform, not skewed
      req.fanout = cfg.multi_fanout;
    } else if (roll < (acc += cfg.mix.scan)) {
      req.op = Op::kScan;
    } else if (roll < (acc += cfg.mix.transfer)) {
      req.op = Op::kTransfer;
      req.key = keys.next();
      req.key2 = keys.next();
      if (req.key2 == req.key) req.key2 = (req.key + 1) % cfg.keyspace;
      req.value = cfg.transfer_amount;
    } else {
      req.op = Op::kGet;
      req.key = keys.next();
    }

    ++res.offered;
    if (svc.submit(std::move(req))) {
      ++res.accepted;
    } else {
      ++res.shed;
    }

    if (cfg.poisson) {
      // Exponential interarrival: -ln(U) scaled to the mean spacing.
      double u = rng.next_unit();
      if (u <= 1e-12) u = 1e-12;
      next += -std::log(u) * interval_ns;
    } else {
      next += interval_ns;
    }
  }
  res.elapsed_ns = util::ProgressTracker::now_ns() - t0;
  return res;
}

}  // namespace zstm::server
