// TcpServer implementation (DESIGN.md §13). Threading model in one line:
// every byte of per-connection state is owned by exactly one event-loop
// thread; KvService workers reach a loop only through its mutex-protected
// completion inbox + eventfd, and the acceptor only through the new-fd
// inbox. The graceful-drain handshake in stop() is the only subtle part
// and is commented where it happens.
#include "net/tcp_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <unordered_map>

#include "fault/failpoint.hpp"
#include "net/wire.hpp"

namespace zstm::net {
namespace {

// The wire op codes for service verbs are the service's own, by
// construction; dispatch() casts between them.
static_assert(static_cast<int>(wire::Op::kGet) ==
              static_cast<int>(server::Op::kGet));
static_assert(static_cast<int>(wire::Op::kPut) ==
              static_cast<int>(server::Op::kPut));
static_assert(static_cast<int>(wire::Op::kDel) ==
              static_cast<int>(server::Op::kDel));
static_assert(static_cast<int>(wire::Op::kMultiGet) ==
              static_cast<int>(server::Op::kMultiGet));
static_assert(static_cast<int>(wire::Op::kScan) ==
              static_cast<int>(server::Op::kScan));
static_assert(static_cast<int>(wire::Op::kTransfer) ==
              static_cast<int>(server::Op::kTransfer));

/// Widest multi_get the server will execute: a 4-byte field must not buy a
/// four-billion-iteration transaction (torture-tested).
constexpr std::uint32_t kMaxFanout = 1 << 16;

std::uint64_t mono_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

struct TcpServer::IoLoop {
  explicit IoLoop(TcpServer& s) : srv(s) {}

  TcpServer& srv;
  int epfd = -1;
  int evfd = -1;
  std::thread thread;

  std::atomic<bool> draining{false};    ///< stop parsing/submitting
  std::atomic<bool> drain_acked{false}; ///< loop has observed draining
  std::atomic<bool> stop_flag{false};   ///< exit, closing everything

  struct Completion {
    std::uint64_t conn_id;
    wire::Response resp;
  };
  std::mutex inbox_mu;
  std::vector<int> new_fds;
  std::vector<Completion> completions;

  struct Conn {
    int fd = -1;
    std::uint64_t id = 0;
    std::vector<std::uint8_t> in;
    std::size_t in_off = 0;
    std::vector<std::uint8_t> out;
    std::size_t out_off = 0;
    bool epollout = false;
    std::uint64_t last_active_ns = 0;
  };
  std::unordered_map<int, std::unique_ptr<Conn>> by_fd;
  std::unordered_map<std::uint64_t, Conn*> by_id;

  // Per-loop counters (owned by the loop thread; read via stats()).
  std::atomic<std::uint64_t> requests{0};
  std::atomic<std::uint64_t> responses{0};
  std::atomic<std::uint64_t> protocol_errors{0};
  std::atomic<std::uint64_t> idle_closed{0};
  std::atomic<std::uint64_t> slow_consumer_closed{0};
  std::atomic<std::uint64_t> killed_by_failpoint{0};
  std::atomic<std::uint64_t> shed_backpressure{0};
  std::atomic<std::uint64_t> shed_service{0};
  std::atomic<std::uint64_t> conns_closed{0};
  /// Bytes sitting in out-buffers, not yet written to the kernel — the
  /// flush gauge stop()'s drain phase watches.
  std::atomic<std::uint64_t> out_pending_bytes{0};

  void post_new_fd(int fd) {
    {
      std::lock_guard<std::mutex> lk(inbox_mu);
      new_fds.push_back(fd);
    }
    wake();
  }

  void post_completion(std::uint64_t conn_id, const wire::Response& resp) {
    {
      std::lock_guard<std::mutex> lk(inbox_mu);
      completions.push_back(Completion{conn_id, resp});
    }
    wake();
  }

  void wake() {
    const std::uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(evfd, &one, sizeof one);
  }

  void run();
  void process_inbox();
  void add_conn(int fd);
  void close_conn(Conn& c, std::atomic<std::uint64_t>* reason);
  void handle_readable(Conn& c);
  void parse(Conn& c);
  void dispatch(Conn& c, const wire::Request& req);
  void respond(Conn& c, const wire::Response& resp);
  bool try_flush(Conn& c);
  void idle_scan(std::uint64_t now);
};

void TcpServer::IoLoop::run() {
  epoll_event evs[64];
  for (;;) {
    int timeout = -1;
    if (srv.cfg_.idle_timeout.count() > 0) {
      const long t = srv.cfg_.idle_timeout.count() / 4;
      timeout = static_cast<int>(t < 10 ? 10 : (t > 500 ? 500 : t));
    }
    const int n = ::epoll_wait(epfd, evs, 64, timeout);
    if (n < 0 && errno != EINTR) break;  // epoll fd gone — bail out

    // Drain the eventfd BEFORE the inbox: a wake() posted after this drain
    // but before (or during) process_inbox leaves the counter set, so the
    // next epoll_wait returns immediately. The other order loses wakes — a
    // post landing between process_inbox and a later drain would have its
    // signal swallowed with the inbox entry still queued, and a quiet loop
    // would sleep on it indefinitely.
    for (int i = 0; i < n; ++i) {
      if (evs[i].data.fd == evfd) {
        std::uint64_t junk;
        while (::read(evfd, &junk, sizeof junk) > 0) {
        }
      }
    }

    if (draining.load(std::memory_order_acquire)) {
      // Drain handshake, step 2: once acked, this loop will never start
      // another parse, so it will never submit to the service again —
      // stop() may then trust pending_responses_ to only count down.
      drain_acked.store(true, std::memory_order_release);
    }
    process_inbox();

    if (stop_flag.load(std::memory_order_acquire)) break;

    for (int i = 0; i < n; ++i) {
      if (evs[i].data.fd == evfd) continue;
      auto it = by_fd.find(evs[i].data.fd);
      if (it == by_fd.end()) continue;  // closed earlier in this batch
      Conn& c = *it->second;
      const std::uint32_t flags = evs[i].events;
      if (flags & (EPOLLIN | EPOLLHUP | EPOLLERR)) {
        handle_readable(c);  // EOF/reset surfaces through recv()
        if (by_fd.find(evs[i].data.fd) == by_fd.end()) continue;
      }
      if (flags & EPOLLOUT) try_flush(c);
    }

    if (srv.cfg_.idle_timeout.count() > 0) idle_scan(mono_ns());
  }

  // Teardown: every remaining connection closes abruptly; completions
  // still queued are dropped (stop() only reaches this point once
  // pending_responses_ is 0, so inbox completions can only be stragglers
  // for already-dead connections — but account for them defensively).
  process_inbox();
  std::vector<Conn*> left;
  left.reserve(by_fd.size());
  for (auto& [fd, c] : by_fd) left.push_back(c.get());
  for (Conn* c : left) close_conn(*c, nullptr);
}

void TcpServer::IoLoop::process_inbox() {
  std::vector<int> fds;
  std::vector<Completion> comps;
  {
    std::lock_guard<std::mutex> lk(inbox_mu);
    fds.swap(new_fds);
    comps.swap(completions);
  }
  for (int fd : fds) add_conn(fd);
  for (const Completion& comp : comps) {
    auto it = by_id.find(comp.conn_id);
    if (it != by_id.end()) {
      respond(*it->second, comp.resp);
    }
    // Dropped (dead connection) or delivered — either way the response has
    // reached its terminal state.
    srv.pending_responses_.fetch_sub(1, std::memory_order_release);
  }
}

void TcpServer::IoLoop::add_conn(int fd) {
  if (stop_flag.load(std::memory_order_relaxed) ||
      draining.load(std::memory_order_relaxed)) {
    ::close(fd);
    srv.conns_active_.fetch_sub(1, std::memory_order_relaxed);
    conns_closed.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  auto c = std::make_unique<Conn>();
  c->fd = fd;
  static std::atomic<std::uint64_t> next_id{1};
  c->id = next_id.fetch_add(1, std::memory_order_relaxed);
  c->last_active_ns = mono_ns();
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = fd;
  if (::epoll_ctl(epfd, EPOLL_CTL_ADD, fd, &ev) != 0) {
    ::close(fd);
    srv.conns_active_.fetch_sub(1, std::memory_order_relaxed);
    conns_closed.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  by_id.emplace(c->id, c.get());
  by_fd.emplace(fd, std::move(c));
}

void TcpServer::IoLoop::close_conn(Conn& c,
                                   std::atomic<std::uint64_t>* reason) {
  if (reason != nullptr) reason->fetch_add(1, std::memory_order_relaxed);
  out_pending_bytes.fetch_sub(c.out.size() - c.out_off,
                              std::memory_order_relaxed);
  ::epoll_ctl(epfd, EPOLL_CTL_DEL, c.fd, nullptr);
  ::close(c.fd);
  conns_closed.fetch_add(1, std::memory_order_relaxed);
  srv.conns_active_.fetch_sub(1, std::memory_order_relaxed);
  by_id.erase(c.id);
  by_fd.erase(c.fd);  // destroys c — must be last
}

void TcpServer::IoLoop::handle_readable(Conn& c) {
  // One recv per readiness event: level-triggered epoll re-signals while
  // bytes remain, which keeps one chatty peer from starving the loop.
  std::size_t want = 4096;
  if (fault::poke(fault::Site::kNetRead) == fault::Effect::kCasFail) {
    want = 1;  // short read: the rest stays in the kernel buffer
  }
  const std::size_t old = c.in.size();
  c.in.resize(old + want);
  ssize_t n;
  do {
    n = ::recv(c.fd, c.in.data() + old, want, 0);
  } while (n < 0 && errno == EINTR);
  if (n < 0) {
    c.in.resize(old);
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    close_conn(c, nullptr);  // ECONNRESET and friends: abrupt disconnect
    return;
  }
  if (n == 0) {
    c.in.resize(old);
    close_conn(c, nullptr);  // orderly EOF
    return;
  }
  c.in.resize(old + static_cast<std::size_t>(n));
  c.last_active_ns = mono_ns();
  parse(c);
}

void TcpServer::IoLoop::parse(Conn& c) {
  if (draining.load(std::memory_order_acquire)) return;  // bytes keep
  for (;;) {
    wire::Request req;
    std::size_t consumed = 0;
    const wire::Decode d = wire::decode_request(
        c.in.data() + c.in_off, c.in.size() - c.in_off, &req, &consumed);
    if (d == wire::Decode::kNeedMore) break;
    if (d == wire::Decode::kBad) {
      close_conn(c, &protocol_errors);
      return;
    }
    c.in_off += consumed;
    if (fault::poke(fault::Site::kNetConnKill) == fault::Effect::kAbort) {
      close_conn(c, &killed_by_failpoint);
      return;
    }
    requests.fetch_add(1, std::memory_order_relaxed);
    const int fd = c.fd;  // dispatch may close (and free) the connection
    dispatch(c, req);
    if (by_fd.find(fd) == by_fd.end()) return;
  }
  if (c.in_off == c.in.size()) {
    c.in.clear();
    c.in_off = 0;
  } else if (c.in_off > 4096) {
    c.in.erase(c.in.begin(),
               c.in.begin() + static_cast<std::ptrdiff_t>(c.in_off));
    c.in_off = 0;
  }
}

void TcpServer::IoLoop::dispatch(Conn& c, const wire::Request& req) {
  wire::Response resp;
  resp.op = req.op;
  resp.req_id = req.req_id;

  // ping/stats answer on the loop thread: liveness must not queue behind
  // STM work.
  if (req.op == wire::Op::kPing) {
    resp.status = wire::Status::kOk;
    resp.value = req.value;
    respond(c, resp);
    return;
  }
  if (req.op == wire::Op::kStats) {
    resp.status = wire::Status::kOk;
    resp.value = static_cast<std::int64_t>(srv.svc_.completed());
    resp.count = srv.conns_active_.load(std::memory_order_relaxed);
    respond(c, resp);
    return;
  }
  if (req.op == wire::Op::kMultiGet && req.fanout > kMaxFanout) {
    resp.status = wire::Status::kError;
    respond(c, resp);
    return;
  }
  // Backpressure: a peer that is not draining responses does not get to
  // keep feeding the service (shed, never block — §13.3).
  if (c.out.size() - c.out_off > srv.cfg_.write_high_watermark) {
    shed_backpressure.fetch_add(1, std::memory_order_relaxed);
    resp.status = wire::Status::kShed;
    respond(c, resp);
    return;
  }

  server::Request s;
  s.op = static_cast<server::Op>(req.op);
  s.key = req.key;
  s.key2 = req.key2;
  s.value = req.value;
  s.fanout = req.fanout;
  IoLoop* loop = this;
  const std::uint64_t conn_id = c.id;
  const wire::Op op = req.op;
  const std::uint64_t rid = req.req_id;
  s.on_done = [loop, conn_id, op, rid](const server::Response& r) {
    wire::Response out;
    out.op = op;
    out.req_id = rid;
    out.status = r.ok ? wire::Status::kOk : wire::Status::kNotFound;
    out.value = r.value;
    out.count = r.count;
    loop->post_completion(conn_id, out);
  };
  srv.pending_responses_.fetch_add(1, std::memory_order_relaxed);
  if (!srv.svc_.submit(std::move(s))) {
    srv.pending_responses_.fetch_sub(1, std::memory_order_relaxed);
    shed_service.fetch_add(1, std::memory_order_relaxed);
    resp.status = wire::Status::kShed;
    respond(c, resp);
  }
}

void TcpServer::IoLoop::respond(Conn& c, const wire::Response& resp) {
  std::uint8_t buf[wire::kRespFrame];
  const std::size_t len = wire::encode_response(resp, buf);
  c.out.insert(c.out.end(), buf, buf + len);
  out_pending_bytes.fetch_add(len, std::memory_order_relaxed);
  responses.fetch_add(1, std::memory_order_relaxed);
  c.last_active_ns = mono_ns();
  try_flush(c);
}

bool TcpServer::IoLoop::try_flush(Conn& c) {
  while (c.out_off < c.out.size()) {
    std::size_t want = c.out.size() - c.out_off;
    if (fault::poke(fault::Site::kNetWrite) == fault::Effect::kCasFail) {
      want = 1;  // short write: remainder stays buffered, EPOLLOUT re-arms
    }
    ssize_t n;
    do {
      n = ::send(c.fd, c.out.data() + c.out_off, want, MSG_NOSIGNAL);
    } while (n < 0 && errno == EINTR);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      close_conn(c, nullptr);  // peer vanished mid-response
      return false;
    }
    c.out_off += static_cast<std::size_t>(n);
    out_pending_bytes.fetch_sub(static_cast<std::uint64_t>(n),
                                std::memory_order_relaxed);
  }

  const std::size_t left = c.out.size() - c.out_off;
  if (left == 0) {
    c.out.clear();
    c.out_off = 0;
  } else if (left > 4 * srv.cfg_.write_high_watermark) {
    // The peer has stopped reading entirely; holding its megabytes hostage
    // helps no one.
    close_conn(c, &slow_consumer_closed);
    return false;
  } else if (c.out_off > (1u << 16)) {
    c.out.erase(c.out.begin(),
                c.out.begin() + static_cast<std::ptrdiff_t>(c.out_off));
    c.out_off = 0;
  }

  const bool want_out = c.out_off < c.out.size();
  if (want_out != c.epollout) {
    epoll_event ev{};
    ev.events = EPOLLIN | (want_out ? EPOLLOUT : 0u);
    ev.data.fd = c.fd;
    if (::epoll_ctl(epfd, EPOLL_CTL_MOD, c.fd, &ev) == 0) {
      c.epollout = want_out;
    }
  }
  return true;
}

void TcpServer::IoLoop::idle_scan(std::uint64_t now) {
  const std::uint64_t limit =
      static_cast<std::uint64_t>(srv.cfg_.idle_timeout.count()) * 1000000ULL;
  std::vector<Conn*> idle;
  for (auto& [fd, c] : by_fd) {
    if (now - c->last_active_ns > limit) idle.push_back(c.get());
  }
  for (Conn* c : idle) close_conn(*c, &idle_closed);
}

// ---------------------------------------------------------------------------
// TcpServer proper
// ---------------------------------------------------------------------------

TcpServer::TcpServer(server::KvService& svc, NetConfig cfg)
    : svc_(svc), cfg_(std::move(cfg)) {}

TcpServer::~TcpServer() { stop(); }

bool TcpServer::start() {
  if (running_) return true;
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) {
    std::perror("net: socket");
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(cfg_.port);
  if (::inet_pton(AF_INET, cfg_.bind_addr.c_str(), &addr.sin_addr) != 1) {
    std::fprintf(stderr, "net: bad bind address %s\n",
                 cfg_.bind_addr.c_str());
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
          0 ||
      ::listen(listen_fd_, cfg_.listen_backlog) != 0) {
    std::perror("net: bind/listen");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  sockaddr_in bound{};
  socklen_t blen = sizeof bound;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &blen);
  port_ = ntohs(bound.sin_port);

  stop_event_fd_ = ::eventfd(0, EFD_CLOEXEC);
  if (stop_event_fd_ < 0) {
    std::perror("net: eventfd");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }

  const int nloops = cfg_.io_threads < 1 ? 1 : cfg_.io_threads;
  loops_.clear();
  for (int i = 0; i < nloops; ++i) {
    auto loop = std::make_unique<IoLoop>(*this);
    loop->epfd = ::epoll_create1(EPOLL_CLOEXEC);
    loop->evfd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = loop->evfd;
    ::epoll_ctl(loop->epfd, EPOLL_CTL_ADD, loop->evfd, &ev);
    loops_.push_back(std::move(loop));
  }
  pending_responses_.store(0, std::memory_order_relaxed);
  for (auto& loop : loops_) {
    loop->thread = std::thread([l = loop.get()] { l->run(); });
  }
  accepting_.store(true, std::memory_order_release);
  acceptor_ = std::thread([this] { acceptor_loop(); });
  running_ = true;
  return true;
}

void TcpServer::acceptor_loop() {
  std::size_t rr = 0;
  pollfd fds[2];
  fds[0].fd = listen_fd_;
  fds[0].events = POLLIN;
  fds[1].fd = stop_event_fd_;
  fds[1].events = POLLIN;
  while (accepting_.load(std::memory_order_acquire)) {
    fds[0].revents = fds[1].revents = 0;
    if (::poll(fds, 2, -1) < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0) break;  // stop() signalled
    for (;;) {
      const int cfd =
          ::accept4(listen_fd_, nullptr, nullptr,
                    SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (cfd < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        if (errno == EINTR) continue;
        accept_failures_.fetch_add(1, std::memory_order_relaxed);
        break;  // EMFILE etc: back to poll, do not spin
      }
      conns_accepted_.fetch_add(1, std::memory_order_relaxed);
      if (fault::poke(fault::Site::kNetAccept) == fault::Effect::kCasFail) {
        accept_failures_.fetch_add(1, std::memory_order_relaxed);
        ::close(cfd);
        continue;
      }
      if (conns_active_.load(std::memory_order_relaxed) >=
          cfg_.max_connections) {
        conns_rejected_.fetch_add(1, std::memory_order_relaxed);
        ::close(cfd);
        continue;
      }
      const int one = 1;
      ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      conns_active_.fetch_add(1, std::memory_order_relaxed);
      loops_[rr++ % loops_.size()]->post_new_fd(cfd);
    }
  }
}

void TcpServer::stop() {
  if (!running_) return;
  // 1. No new connections.
  accepting_.store(false, std::memory_order_release);
  const std::uint64_t one = 1;
  [[maybe_unused]] ssize_t w = ::write(stop_event_fd_, &one, sizeof one);
  acceptor_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;

  // 2. Drain handshake, step 1: tell every loop to stop parsing, then wait
  //    for each to acknowledge. After the ack, a loop can never submit
  //    another request, so pending_responses_ only counts down — waiting
  //    for 0 is then race-free (KvService drains every accepted request,
  //    so every pending on_done WILL fire; see §13.4).
  for (auto& loop : loops_) {
    loop->draining.store(true, std::memory_order_release);
    loop->wake();
  }
  for (auto& loop : loops_) {
    while (!loop->drain_acked.load(std::memory_order_acquire)) {
      loop->wake();
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  }
  while (pending_responses_.load(std::memory_order_acquire) != 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }

  // 3. Flush whatever peers are willing to read, bounded: a peer that
  //    stopped reading cannot hold shutdown hostage.
  const auto deadline = std::chrono::steady_clock::now() + cfg_.drain_timeout;
  for (;;) {
    std::uint64_t left = 0;
    for (auto& loop : loops_) {
      left += loop->out_pending_bytes.load(std::memory_order_relaxed);
    }
    if (left == 0 || std::chrono::steady_clock::now() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // 4. Tear the loops down (they close any remaining connections).
  for (auto& loop : loops_) {
    loop->stop_flag.store(true, std::memory_order_release);
    loop->wake();
  }
  for (auto& loop : loops_) {
    loop->thread.join();
    ::close(loop->epfd);
    ::close(loop->evfd);
  }
  // Fold the per-loop counters into retired_ so stats() keeps reporting
  // them after the loops are gone (the --net bench snapshots post-stop).
  for (const auto& loop : loops_) {
    retired_.requests += loop->requests.load(std::memory_order_relaxed);
    retired_.responses += loop->responses.load(std::memory_order_relaxed);
    retired_.protocol_errors +=
        loop->protocol_errors.load(std::memory_order_relaxed);
    retired_.idle_closed += loop->idle_closed.load(std::memory_order_relaxed);
    retired_.slow_consumer_closed +=
        loop->slow_consumer_closed.load(std::memory_order_relaxed);
    retired_.killed_by_failpoint +=
        loop->killed_by_failpoint.load(std::memory_order_relaxed);
    retired_.shed_backpressure +=
        loop->shed_backpressure.load(std::memory_order_relaxed);
    retired_.shed_service +=
        loop->shed_service.load(std::memory_order_relaxed);
    retired_.conns_closed += loop->conns_closed.load(std::memory_order_relaxed);
  }
  loops_.clear();
  ::close(stop_event_fd_);
  stop_event_fd_ = -1;
  running_ = false;
}

NetStats TcpServer::stats() const {
  NetStats s = retired_;
  s.conns_accepted = conns_accepted_.load(std::memory_order_relaxed);
  s.conns_rejected = conns_rejected_.load(std::memory_order_relaxed);
  s.accept_failures = accept_failures_.load(std::memory_order_relaxed);
  s.conns_active = conns_active_.load(std::memory_order_relaxed);
  for (const auto& loop : loops_) {
    s.requests += loop->requests.load(std::memory_order_relaxed);
    s.responses += loop->responses.load(std::memory_order_relaxed);
    s.protocol_errors +=
        loop->protocol_errors.load(std::memory_order_relaxed);
    s.idle_closed += loop->idle_closed.load(std::memory_order_relaxed);
    s.slow_consumer_closed +=
        loop->slow_consumer_closed.load(std::memory_order_relaxed);
    s.killed_by_failpoint +=
        loop->killed_by_failpoint.load(std::memory_order_relaxed);
    s.shed_backpressure +=
        loop->shed_backpressure.load(std::memory_order_relaxed);
    s.shed_service += loop->shed_service.load(std::memory_order_relaxed);
    s.conns_closed += loop->conns_closed.load(std::memory_order_relaxed);
  }
  return s;
}

}  // namespace zstm::net
