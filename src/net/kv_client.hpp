// KvClient — blocking client for the networked KV front end (DESIGN.md
// §13.2): one TCP connection, one outstanding request at a time, every
// protocol op as a typed method. The tests' workhorse; the loopback load
// generator (net_load_gen.hpp) pipelines over raw sockets instead and only
// shares the connect helper.
//
// Error model: transport problems (connect refused, connection closed,
// malformed response) surface as `ok() == false` / a kTransportError
// status in Result — never exceptions, so torture tests can hammer the
// error paths in a loop. A successfully transported response carries the
// server's wire::Status verbatim.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/wire.hpp"

namespace zstm::net {

/// Opens a blocking loopback-style TCP connection (TCP_NODELAY set).
/// Returns -1 on failure.
int connect_tcp(const std::string& host, std::uint16_t port);

class KvClient {
 public:
  /// A transported (or failed) call. `transport_ok == false` means the
  /// connection is dead; the client closes it and every later call fails
  /// fast until connect() is called again.
  struct Result {
    bool transport_ok = false;
    wire::Status status = wire::Status::kError;
    std::int64_t value = 0;
    std::uint64_t count = 0;

    bool ok() const { return transport_ok && status == wire::Status::kOk; }
  };

  KvClient() = default;
  ~KvClient();
  KvClient(const KvClient&) = delete;
  KvClient& operator=(const KvClient&) = delete;
  KvClient(KvClient&& other) noexcept;
  KvClient& operator=(KvClient&& other) noexcept;

  bool connect(const std::string& host, std::uint16_t port);
  void close();
  bool connected() const { return fd_ >= 0; }

  /// The generic round trip every typed method lowers onto.
  Result call(wire::Op op, std::uint64_t key = 0, std::uint64_t key2 = 0,
              std::int64_t value = 0, std::uint32_t fanout = 0);

  // Typed verbs (names and semantics mirror server::KvStoreT).
  std::optional<std::int64_t> get(std::uint64_t key);
  bool put(std::uint64_t key, std::int64_t value);  ///< true = transported ok
  bool del(std::uint64_t key);                      ///< true = key existed
  /// found-count and found-sum of keys [first, first+fanout).
  Result multi_get(std::uint64_t first, std::uint32_t fanout);
  Result scan();
  bool transfer(std::uint64_t from, std::uint64_t to, std::int64_t amount);
  bool ping(std::int64_t echo = 0);
  /// value = requests the service completed, count = active connections.
  Result stats();

  /// Raw bytes onto the wire, for torture tests (malformed frames, partial
  /// writes). Returns false when the connection died.
  bool send_raw(const void* data, std::size_t len);
  /// Blocking read of one response frame off the wire (shared by call()).
  bool recv_response(wire::Response* out);

 private:
  int fd_ = -1;
  std::uint64_t next_req_id_ = 1;
  std::vector<std::uint8_t> rbuf_;
  std::size_t rbuf_off_ = 0;
};

}  // namespace zstm::net
