// Wire protocol for the networked KV front end (DESIGN.md §13.1).
//
// Length-prefixed fixed-size binary frames, explicit little-endian byte
// order (encode/decode never type-puns, so the layout is identical on any
// host):
//
//   frame    := u32 len | body[len]
//   request  := u8 magic(0x5A) | u8 op | u64 req_id | u64 key | u64 key2
//               | i64 value | u32 fanout                      (38 bytes)
//   response := u8 magic(0xA5) | u8 op | u8 status | u64 req_id
//               | i64 value | u64 count                       (27 bytes)
//
// Every service verb (get/put/del/multi_get/scan/transfer) plus `ping`
// (liveness echo: value is returned unchanged) and `stats` (server-level
// counters: value = requests completed, count = active connections) fits
// the one fixed request shape; unused fields are zero. `req_id` is echoed
// verbatim — the server may complete pipelined requests out of order
// (responses come from whichever service worker finishes first), so the id
// is the client's only correlation handle. The loopback load generator
// exploits this by storing the *scheduled arrival time* in req_id: latency
// is then `now - req_id` at receipt with no outstanding-request table.
//
// Robustness contract (the `net` torture suite pins it): a frame whose
// length prefix is not exactly the request body size, whose magic or op is
// unknown, is a *protocol error* — the server closes the connection without
// allocating `len` bytes (an adversarial 0xFFFFFFFF prefix costs nothing)
// and without disturbing any other connection. Truncated frames are not
// errors: the incremental parser simply waits for the rest.
//
// Status values: kNotFound doubles as "op-specific false" (get miss, del of
// an absent key, failed transfer) mirroring server::Response::ok; kShed
// means the service ring or the connection's write buffer shed the request
// (open-loop honesty travels the wire: an overloaded server says so rather
// than silently dropping or blocking); kError is a decodable-but-
// unserviceable request.
#pragma once

#include <cstddef>
#include <cstdint>

namespace zstm::net::wire {

constexpr std::uint8_t kReqMagic = 0x5A;
constexpr std::uint8_t kRespMagic = 0xA5;

enum class Op : std::uint8_t {
  kGet = 0,
  kPut,
  kDel,
  kMultiGet,
  kScan,
  kTransfer,
  kPing,
  kStats,
  kCount
};

enum class Status : std::uint8_t {
  kNotFound = 0,  ///< op-specific false (get miss / del miss / bad transfer)
  kOk = 1,
  kShed = 2,   ///< service ring full or write-buffer high-watermark
  kError = 3,  ///< decodable but unserviceable
};

struct Request {
  Op op = Op::kPing;
  std::uint64_t req_id = 0;
  std::uint64_t key = 0;
  std::uint64_t key2 = 0;
  std::int64_t value = 0;
  std::uint32_t fanout = 0;
};

struct Response {
  Op op = Op::kPing;
  Status status = Status::kError;
  std::uint64_t req_id = 0;
  std::int64_t value = 0;
  std::uint64_t count = 0;
};

constexpr std::size_t kLenBytes = 4;
constexpr std::size_t kReqBody = 1 + 1 + 8 + 8 + 8 + 8 + 4;   // 38
constexpr std::size_t kRespBody = 1 + 1 + 1 + 8 + 8 + 8;      // 27
constexpr std::size_t kReqFrame = kLenBytes + kReqBody;
constexpr std::size_t kRespFrame = kLenBytes + kRespBody;
/// Largest length prefix the parser will ever consider sane. Anything
/// larger is rejected before any buffering happens.
constexpr std::uint32_t kMaxFrame = 512;

inline void put_u32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

inline std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

inline void put_u64(std::uint8_t* p, std::uint64_t v) {
  put_u32(p, static_cast<std::uint32_t>(v));
  put_u32(p + 4, static_cast<std::uint32_t>(v >> 32));
}

inline std::uint64_t get_u64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(get_u32(p)) |
         (static_cast<std::uint64_t>(get_u32(p + 4)) << 32);
}

/// Encodes into `buf` (>= kReqFrame bytes). Returns bytes written.
inline std::size_t encode_request(const Request& r, std::uint8_t* buf) {
  put_u32(buf, static_cast<std::uint32_t>(kReqBody));
  std::uint8_t* p = buf + kLenBytes;
  p[0] = kReqMagic;
  p[1] = static_cast<std::uint8_t>(r.op);
  put_u64(p + 2, r.req_id);
  put_u64(p + 10, r.key);
  put_u64(p + 18, r.key2);
  put_u64(p + 26, static_cast<std::uint64_t>(r.value));
  put_u32(p + 34, r.fanout);
  return kReqFrame;
}

/// Encodes into `buf` (>= kRespFrame bytes). Returns bytes written.
inline std::size_t encode_response(const Response& r, std::uint8_t* buf) {
  put_u32(buf, static_cast<std::uint32_t>(kRespBody));
  std::uint8_t* p = buf + kLenBytes;
  p[0] = kRespMagic;
  p[1] = static_cast<std::uint8_t>(r.op);
  p[2] = static_cast<std::uint8_t>(r.status);
  put_u64(p + 3, r.req_id);
  put_u64(p + 11, static_cast<std::uint64_t>(r.value));
  put_u64(p + 19, r.count);
  return kRespFrame;
}

enum class Decode {
  kNeedMore,  ///< not a full frame yet; nothing consumed
  kFrame,     ///< one frame decoded; *consumed bytes eaten
  kBad,       ///< protocol error; close the connection
};

/// Incremental request decode over [buf, buf+len). On kFrame, *consumed is
/// the whole frame (prefix + body). Strict: the length prefix must be
/// exactly kReqBody (the protocol has one request shape) and magic/op must
/// be valid — anything else, including an adversarially huge prefix, is
/// kBad immediately.
inline Decode decode_request(const std::uint8_t* buf, std::size_t len,
                             Request* out, std::size_t* consumed) {
  if (len < kLenBytes) return Decode::kNeedMore;
  const std::uint32_t body = get_u32(buf);
  if (body != kReqBody) return Decode::kBad;  // also rejects > kMaxFrame
  if (len < kLenBytes + body) return Decode::kNeedMore;
  const std::uint8_t* p = buf + kLenBytes;
  if (p[0] != kReqMagic) return Decode::kBad;
  if (p[1] >= static_cast<std::uint8_t>(Op::kCount)) return Decode::kBad;
  out->op = static_cast<Op>(p[1]);
  out->req_id = get_u64(p + 2);
  out->key = get_u64(p + 10);
  out->key2 = get_u64(p + 18);
  out->value = static_cast<std::int64_t>(get_u64(p + 26));
  out->fanout = get_u32(p + 34);
  *consumed = kLenBytes + body;
  return Decode::kFrame;
}

/// Incremental response decode (client side), same contract.
inline Decode decode_response(const std::uint8_t* buf, std::size_t len,
                              Response* out, std::size_t* consumed) {
  if (len < kLenBytes) return Decode::kNeedMore;
  const std::uint32_t body = get_u32(buf);
  if (body != kRespBody) return Decode::kBad;
  if (len < kLenBytes + body) return Decode::kNeedMore;
  const std::uint8_t* p = buf + kLenBytes;
  if (p[0] != kRespMagic) return Decode::kBad;
  if (p[1] >= static_cast<std::uint8_t>(Op::kCount)) return Decode::kBad;
  if (p[2] > static_cast<std::uint8_t>(Status::kError)) return Decode::kBad;
  out->op = static_cast<Op>(p[1]);
  out->status = static_cast<Status>(p[2]);
  out->req_id = get_u64(p + 3);
  out->value = static_cast<std::int64_t>(get_u64(p + 11));
  out->count = get_u64(p + 19);
  *consumed = kLenBytes + body;
  return Decode::kFrame;
}

inline const char* op_name(Op op) {
  switch (op) {
    case Op::kGet:      return "get";
    case Op::kPut:      return "put";
    case Op::kDel:      return "del";
    case Op::kMultiGet: return "multi_get";
    case Op::kScan:     return "scan";
    case Op::kTransfer: return "transfer";
    case Op::kPing:     return "ping";
    case Op::kStats:    return "stats";
    case Op::kCount:    break;
  }
  return "?";
}

}  // namespace zstm::net::wire
