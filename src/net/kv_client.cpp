#include "net/kv_client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace zstm::net {

int connect_tcp(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return -1;
  }
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return fd;
}

KvClient::~KvClient() { close(); }

KvClient::KvClient(KvClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      next_req_id_(other.next_req_id_),
      rbuf_(std::move(other.rbuf_)),
      rbuf_off_(other.rbuf_off_) {}

KvClient& KvClient::operator=(KvClient&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    next_req_id_ = other.next_req_id_;
    rbuf_ = std::move(other.rbuf_);
    rbuf_off_ = other.rbuf_off_;
  }
  return *this;
}

bool KvClient::connect(const std::string& host, std::uint16_t port) {
  close();
  fd_ = connect_tcp(host, port);
  return fd_ >= 0;
}

void KvClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  rbuf_.clear();
  rbuf_off_ = 0;
}

bool KvClient::send_raw(const void* data, std::size_t len) {
  if (fd_ < 0) return false;
  const std::uint8_t* p = static_cast<const std::uint8_t*>(data);
  std::size_t sent = 0;
  while (sent < len) {
    ssize_t n;
    do {
      n = ::send(fd_, p + sent, len - sent, MSG_NOSIGNAL);
    } while (n < 0 && errno == EINTR);
    if (n <= 0) {
      close();
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool KvClient::recv_response(wire::Response* out) {
  if (fd_ < 0) return false;
  for (;;) {
    std::size_t consumed = 0;
    const wire::Decode d = wire::decode_response(
        rbuf_.data() + rbuf_off_, rbuf_.size() - rbuf_off_, out, &consumed);
    if (d == wire::Decode::kFrame) {
      rbuf_off_ += consumed;
      if (rbuf_off_ == rbuf_.size()) {
        rbuf_.clear();
        rbuf_off_ = 0;
      }
      return true;
    }
    if (d == wire::Decode::kBad) {
      close();
      return false;
    }
    const std::size_t old = rbuf_.size();
    rbuf_.resize(old + 4096);
    ssize_t n;
    do {
      n = ::recv(fd_, rbuf_.data() + old, 4096, 0);
    } while (n < 0 && errno == EINTR);
    if (n <= 0) {
      rbuf_.resize(old);
      close();
      return false;
    }
    rbuf_.resize(old + static_cast<std::size_t>(n));
  }
}

KvClient::Result KvClient::call(wire::Op op, std::uint64_t key,
                                std::uint64_t key2, std::int64_t value,
                                std::uint32_t fanout) {
  Result res;
  if (fd_ < 0) return res;
  wire::Request req;
  req.op = op;
  req.req_id = next_req_id_++;
  req.key = key;
  req.key2 = key2;
  req.value = value;
  req.fanout = fanout;
  std::uint8_t buf[wire::kReqFrame];
  const std::size_t len = wire::encode_request(req, buf);
  if (!send_raw(buf, len)) return res;
  wire::Response resp;
  // One outstanding request per client: responses arrive in submission
  // order, but verify the id anyway — a mismatch means the stream is
  // corrupt and the connection is useless.
  if (!recv_response(&resp) || resp.req_id != req.req_id) {
    close();
    return res;
  }
  res.transport_ok = true;
  res.status = resp.status;
  res.value = resp.value;
  res.count = resp.count;
  return res;
}

std::optional<std::int64_t> KvClient::get(std::uint64_t key) {
  const Result r = call(wire::Op::kGet, key);
  if (!r.ok()) return std::nullopt;
  return r.value;
}

bool KvClient::put(std::uint64_t key, std::int64_t value) {
  return call(wire::Op::kPut, key, 0, value).ok();
}

bool KvClient::del(std::uint64_t key) {
  return call(wire::Op::kDel, key).ok();
}

KvClient::Result KvClient::multi_get(std::uint64_t first,
                                     std::uint32_t fanout) {
  return call(wire::Op::kMultiGet, first, 0, 0, fanout);
}

KvClient::Result KvClient::scan() { return call(wire::Op::kScan); }

bool KvClient::transfer(std::uint64_t from, std::uint64_t to,
                        std::int64_t amount) {
  return call(wire::Op::kTransfer, from, to, amount).ok();
}

bool KvClient::ping(std::int64_t echo) {
  const Result r = call(wire::Op::kPing, 0, 0, echo);
  return r.ok() && r.value == echo;
}

KvClient::Result KvClient::stats() { return call(wire::Op::kStats); }

}  // namespace zstm::net
