// TcpServer — the epoll-based network front end for the KV service
// (DESIGN.md §13): one acceptor thread plus N event-loop threads, each loop
// owning its connections outright (all per-connection state is touched only
// by the owning loop thread; the single cross-thread structure is a
// mutex-protected completion inbox fed by the KvService workers and drained
// after an eventfd wakeup).
//
// Data path: loop reads → incremental wire::decode_request over the
// connection's in-buffer (partial frames simply wait; protocol errors close
// the connection) → service verbs are submitted to KvService with an
// on_done that encodes the response and posts it to the owning loop's
// inbox → loop appends it to the connection's out-buffer and flushes,
// arming EPOLLOUT only while bytes remain. ping/stats are answered inline
// on the loop thread (they exist so liveness checks don't queue behind STM
// work).
//
// Backpressure sheds, never blocks (the MPMC ring's policy extended to the
// wire): a request arriving while the connection's out-buffer is above
// `write_high_watermark` is not submitted — a kShed response (31 bytes) is
// queued instead; if the buffer grows past 4x the watermark the peer is not
// reading at all and the connection is closed (slow-consumer policy). A
// full service ring likewise turns into a kShed response.
//
// Lifecycle: accept (with a max_connections cap — excess accepts are closed
// immediately), per-connection idle timeout (loop tick scans last-activity
// stamps), abrupt-disconnect reclamation (EOF/ECONNRESET closes and frees
// the slot; responses still in flight for a dead connection are dropped by
// generation-checked connection ids — an fd number is reusable, an id never
// is), and graceful drain on stop(): stop accepting, stop *parsing* (bytes
// already buffered stay buffered), wait until every submitted request has
// come back and every response byte that can be flushed has been flushed
// (bounded by drain_timeout for peers that stopped reading), then close.
//
// Failpoint sites (§13.5): net.accept (drop fresh connection), net.read
// (short read), net.write (short write), net.conn_kill (hard-close at
// request parse). All four have ordinary recovery paths; the chaos net
// suite runs the full client battery with them armed.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "server/kv_service.hpp"

namespace zstm::net {

struct NetConfig {
  std::string bind_addr = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral; see TcpServer::port()
  int io_threads = 1;
  /// 0 disables idle closing.
  std::chrono::milliseconds idle_timeout{0};
  /// Above this many buffered out-bytes, new requests on the connection are
  /// shed; above 4x, the connection is closed (slow consumer).
  std::size_t write_high_watermark = 1 << 18;
  /// Cap on concurrently open connections; excess accepts close at once.
  std::size_t max_connections = 1024;
  /// stop() waits at most this long for out-buffers to flush to peers.
  std::chrono::milliseconds drain_timeout{2000};
  int listen_backlog = 128;
};

/// Monotonic counters (relaxed; exact after stop()).
struct NetStats {
  std::uint64_t conns_accepted = 0;
  std::uint64_t conns_closed = 0;       ///< all causes below + client EOF
  std::uint64_t conns_active = 0;       ///< gauge
  std::uint64_t conns_rejected = 0;     ///< max_connections cap
  std::uint64_t idle_closed = 0;
  std::uint64_t protocol_errors = 0;    ///< bad frame -> connection closed
  std::uint64_t slow_consumer_closed = 0;
  std::uint64_t killed_by_failpoint = 0;
  std::uint64_t requests = 0;           ///< well-formed frames parsed
  std::uint64_t responses = 0;          ///< response frames fully written
  std::uint64_t shed_backpressure = 0;  ///< out-buffer over high watermark
  std::uint64_t shed_service = 0;       ///< KvService ring shed
  std::uint64_t accept_failures = 0;    ///< accept() errors + failpoint drops
};

class TcpServer {
 public:
  TcpServer(server::KvService& svc, NetConfig cfg);
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Bind + listen + spawn acceptor and io threads. False on bind/listen
  /// failure (errno on stderr). The service must already be start()ed.
  bool start();

  /// Graceful drain (see header comment). Idempotent. Must be called
  /// BEFORE KvService::stop() — in-flight service requests complete into
  /// live event loops.
  void stop();

  bool running() const { return running_; }
  /// The bound port (resolves an ephemeral request after start()).
  std::uint16_t port() const { return port_; }
  NetStats stats() const;

 private:
  struct IoLoop;

  void acceptor_loop();
  IoLoop& pick_loop(std::size_t n);

  server::KvService& svc_;
  NetConfig cfg_;
  int listen_fd_ = -1;
  int stop_event_fd_ = -1;  ///< wakes the acceptor's poll
  std::uint16_t port_ = 0;
  bool running_ = false;
  std::atomic<bool> accepting_{false};

  std::vector<std::unique_ptr<IoLoop>> loops_;
  std::thread acceptor_;

  /// Per-loop counters folded in by stop() before the loops are destroyed,
  /// so stats() stays truthful after shutdown (the bench reads it then).
  NetStats retired_{};

  /// Requests submitted to the service whose responses have not yet been
  /// appended to an out-buffer (or dropped for a dead connection).
  std::atomic<std::uint64_t> pending_responses_{0};

  // Shared counters (per-loop hot ones live in the loops; these are the
  // cross-thread ones).
  std::atomic<std::uint64_t> conns_accepted_{0};
  std::atomic<std::uint64_t> conns_rejected_{0};
  std::atomic<std::uint64_t> accept_failures_{0};
  std::atomic<std::uint64_t> conns_active_{0};
};

}  // namespace zstm::net
