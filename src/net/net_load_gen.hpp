// Open-loop load generator for the networked KV front end (DESIGN.md
// §13.6): the same scheduled-arrival discipline as server/load_gen.hpp —
// same Zipfian key choice, same op mix, same LoadGenConfig — but driven
// across TCP, pipelined over `conns` connections, so BENCH_kv_net rows are
// directly comparable to the in-process BENCH_kv rows (identical knobs,
// one extra hop).
//
// Open-loop honesty across a socket:
//   * The pacer never blocks on the wire. Sends are MSG_DONTWAIT; a frame
//     the kernel won't take is buffered per-connection, and once a
//     connection's backlog passes kPendingCap the *new* frame is shed
//     client-side (never a partially-written one — that would corrupt the
//     stream) and counted, exactly like the service ring sheds.
//   * req_id carries the request's SCHEDULED arrival time; the server
//     echoes it, so a receiver computes latency as now − req_id with no
//     outstanding-request table, and every source of delay — pacer
//     lateness, client buffering, kernel queues, server queueing, STM
//     retries, the response path — lands in the recorded tail.
//   * The server responds to every request, including ones it sheds
//     (wire::Status::kShed), so server-side shedding is visible and
//     counted at the client rather than inferred from silence.
//
// One receiver thread per connection records into private histograms,
// merged after join — the LatencyHistogram threading contract.
#pragma once

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "net/kv_client.hpp"
#include "net/wire.hpp"
#include "server/load_gen.hpp"
#include "util/latency_histogram.hpp"

namespace zstm::net {

struct NetLoadResult {
  std::uint64_t offered = 0;      ///< scheduled arrivals
  std::uint64_t sent = 0;         ///< handed to the kernel (or buffered+flushed)
  std::uint64_t client_shed = 0;  ///< dropped: connection backlog over cap
  std::uint64_t responses = 0;    ///< response frames received (all statuses)
  std::uint64_t server_shed = 0;  ///< wire::Status::kShed responses
  std::uint64_t io_errors = 0;    ///< connections that died mid-run
  std::uint64_t unflushed = 0;    ///< frames stuck in client buffers at end
  std::uint64_t elapsed_ns = 0;
  util::LatencyHistogram all;     ///< non-shed responses, scheduled→receipt
  util::LatencyHistogram per_op[static_cast<int>(wire::Op::kCount)];
};

namespace detail {

/// Per-connection pacer-side send state. `pending` holds bytes the kernel
/// would not take; a frame is either fully sent, fully buffered, or fully
/// shed — never split between sent and dropped.
struct ConnSend {
  int fd = -1;
  std::vector<std::uint8_t> pending;
  std::size_t off = 0;
  bool dead = false;
};

constexpr std::size_t kPendingCap = 64 * 1024;

inline void flush_pending(ConnSend& cs) {
  while (cs.off < cs.pending.size()) {
    ssize_t n;
    do {
      n = ::send(cs.fd, cs.pending.data() + cs.off,
                 cs.pending.size() - cs.off, MSG_DONTWAIT | MSG_NOSIGNAL);
    } while (n < 0 && errno == EINTR);
    if (n < 0) {
      if (errno != EAGAIN && errno != EWOULDBLOCK) cs.dead = true;
      return;
    }
    cs.off += static_cast<std::size_t>(n);
  }
  cs.pending.clear();
  cs.off = 0;
}

/// True = the frame is on its way (sent or buffered); false = shed or dead.
inline bool submit_frame(ConnSend& cs, const std::uint8_t* buf,
                         std::size_t len) {
  if (cs.dead) return false;
  flush_pending(cs);
  if (cs.dead) return false;
  if (!cs.pending.empty()) {
    if (cs.pending.size() - cs.off > kPendingCap) return false;  // shed
    cs.pending.insert(cs.pending.end(), buf, buf + len);
    return true;
  }
  std::size_t sent = 0;
  while (sent < len) {
    ssize_t n;
    do {
      n = ::send(cs.fd, buf + sent, len - sent,
                 MSG_DONTWAIT | MSG_NOSIGNAL);
    } while (n < 0 && errno == EINTR);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        cs.pending.assign(buf + sent, buf + len);  // keep the frame whole
        return true;
      }
      cs.dead = true;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace detail

/// Drives cfg's open-loop schedule against host:port over `conns`
/// pipelined connections. Blocks for ~cfg.duration plus drain.
inline NetLoadResult run_net_open_loop(const std::string& host,
                                       std::uint16_t port,
                                       const server::LoadGenConfig& cfg,
                                       int conns) {
  NetLoadResult res;
  if (cfg.rate <= 0.0 || cfg.keyspace == 0 || conns < 1) return res;

  std::vector<detail::ConnSend> senders(static_cast<std::size_t>(conns));
  for (auto& cs : senders) {
    cs.fd = connect_tcp(host, port);
    if (cs.fd < 0) {
      for (auto& c2 : senders) {
        if (c2.fd >= 0) ::close(c2.fd);
      }
      res.io_errors = static_cast<std::uint64_t>(conns);
      return res;
    }
  }

  // Receivers: blocking recv per connection (MSG_DONTWAIT on the send side
  // never flips the fd to non-blocking), private histograms, exit on EOF /
  // shutdown().
  struct RecvState {
    // The drain loop below polls this while the receiver is still running;
    // everything else in here is read only after join().
    std::atomic<std::uint64_t> responses{0};
    std::uint64_t server_shed = 0;
    util::LatencyHistogram all;
    util::LatencyHistogram per_op[static_cast<int>(wire::Op::kCount)];
  };
  std::vector<RecvState> rstates(static_cast<std::size_t>(conns));
  std::vector<std::thread> receivers;
  receivers.reserve(static_cast<std::size_t>(conns));
  for (int i = 0; i < conns; ++i) {
    receivers.emplace_back([fd = senders[static_cast<std::size_t>(i)].fd,
                            st = &rstates[static_cast<std::size_t>(i)]] {
      std::vector<std::uint8_t> buf;
      std::size_t off = 0;
      for (;;) {
        wire::Response resp;
        std::size_t consumed = 0;
        const wire::Decode d = wire::decode_response(
            buf.data() + off, buf.size() - off, &resp, &consumed);
        if (d == wire::Decode::kFrame) {
          off += consumed;
          if (off == buf.size()) {
            buf.clear();
            off = 0;
          }
          st->responses.fetch_add(1, std::memory_order_relaxed);
          if (resp.status == wire::Status::kShed) {
            ++st->server_shed;
          } else {
            const std::uint64_t now = util::ProgressTracker::now_ns();
            const std::uint64_t lat = now > resp.req_id ? now - resp.req_id : 0;
            st->all.record(lat);
            st->per_op[static_cast<int>(resp.op)].record(lat);
          }
          continue;
        }
        if (d == wire::Decode::kBad) return;
        const std::size_t old = buf.size();
        buf.resize(old + 4096);
        ssize_t n;
        do {
          n = ::recv(fd, buf.data() + old, 4096, 0);
        } while (n < 0 && errno == EINTR);
        if (n <= 0) return;  // EOF or shutdown()
        buf.resize(old + static_cast<std::size_t>(n));
      }
    });
  }

  // The pacer: identical schedule/mix/key machinery to run_open_loop.
  util::Xorshift rng(cfg.seed);
  util::Zipfian keys(cfg.keyspace, cfg.zipf_theta, cfg.seed ^ 0x5eedULL);
  const double interval_ns = 1e9 / cfg.rate;
  const std::uint64_t t0 = util::ProgressTracker::now_ns();
  const std::uint64_t end =
      t0 + static_cast<std::uint64_t>(
               std::chrono::duration_cast<std::chrono::nanoseconds>(
                   cfg.duration)
                   .count());
  double next = static_cast<double>(t0);
  std::size_t rr = 0;

  while (static_cast<std::uint64_t>(next) < end) {
    const std::uint64_t scheduled = static_cast<std::uint64_t>(next);
    const std::uint64_t now = util::ProgressTracker::now_ns();
    if (scheduled > now) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(scheduled - now));
    }

    wire::Request req;
    req.req_id = scheduled;  // latency = receipt − req_id at the receiver
    const double roll = rng.next_unit();
    double acc = cfg.mix.put;
    if (roll < acc) {
      req.op = wire::Op::kPut;
      req.key = keys.next();
      req.value = cfg.put_value;
    } else if (roll < (acc += cfg.mix.del)) {
      req.op = wire::Op::kDel;
      req.key = keys.next();
    } else if (roll < (acc += cfg.mix.multi_get)) {
      req.op = wire::Op::kMultiGet;
      const std::uint64_t span =
          cfg.keyspace > cfg.multi_fanout ? cfg.keyspace - cfg.multi_fanout : 1;
      req.key = rng.next_below(span);
      req.fanout = cfg.multi_fanout;
    } else if (roll < (acc += cfg.mix.scan)) {
      req.op = wire::Op::kScan;
    } else if (roll < (acc += cfg.mix.transfer)) {
      req.op = wire::Op::kTransfer;
      req.key = keys.next();
      req.key2 = keys.next();
      if (req.key2 == req.key) req.key2 = (req.key + 1) % cfg.keyspace;
      req.value = cfg.transfer_amount;
    } else {
      req.op = wire::Op::kGet;
      req.key = keys.next();
    }

    ++res.offered;
    std::uint8_t buf[wire::kReqFrame];
    const std::size_t len = wire::encode_request(req, buf);
    detail::ConnSend& cs = senders[rr++ % senders.size()];
    if (detail::submit_frame(cs, buf, len)) {
      ++res.sent;
    } else if (cs.dead) {
      ++res.io_errors;
    } else {
      ++res.client_shed;
    }

    if (cfg.poisson) {
      double u = rng.next_unit();
      if (u <= 1e-12) u = 1e-12;
      next += -std::log(u) * interval_ns;
    } else {
      next += interval_ns;
    }
  }

  // Flush client buffers (bounded), then wait for the responses to the
  // frames that actually went out, then release the receivers.
  const std::uint64_t flush_deadline =
      util::ProgressTracker::now_ns() + 1000000000ULL;
  for (;;) {
    bool left = false;
    for (auto& cs : senders) {
      if (cs.dead) continue;
      detail::flush_pending(cs);
      left = left || !cs.pending.empty();
    }
    if (!left || util::ProgressTracker::now_ns() > flush_deadline) break;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  for (auto& cs : senders) {
    const std::size_t stuck = cs.pending.size() - cs.off;
    res.unflushed += stuck / wire::kReqFrame;  // whole frames never delivered
  }

  const std::uint64_t expect = res.sent - res.unflushed;
  const std::uint64_t drain_deadline =
      util::ProgressTracker::now_ns() + 3000000000ULL;
  for (;;) {
    std::uint64_t got = 0;
    for (const auto& st : rstates) {
      got += st.responses.load(std::memory_order_relaxed);
    }
    if (got >= expect || util::ProgressTracker::now_ns() > drain_deadline) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  for (auto& cs : senders) ::shutdown(cs.fd, SHUT_RDWR);
  for (auto& t : receivers) t.join();
  for (auto& cs : senders) ::close(cs.fd);

  for (int i = 0; i < conns; ++i) {
    const RecvState& st = rstates[static_cast<std::size_t>(i)];
    res.responses += st.responses.load(std::memory_order_relaxed);
    res.server_shed += st.server_shed;
    res.all.merge(st.all);
    for (int op = 0; op < static_cast<int>(wire::Op::kCount); ++op) {
      res.per_op[op].merge(st.per_op[op]);
    }
  }
  res.elapsed_ns = util::ProgressTracker::now_ns() - t0;
  return res;
}

}  // namespace zstm::net
