// Transaction descriptors and the single-CAS commit discipline.
//
// Every STM in this repository publishes a transaction's writes atomically
// the DSTM way ([4], as prescribed by the paper's "atomicity is implemented
// with the help of compare-and-swap operations and indirect accesses to
// shared objects"): tentative versions become visible the instant the
// writer's status word changes to kCommitted. The status word is therefore
// the linearization point of every update transaction.
//
// Status protocol:
//   kActive     — executing; enemies may abort it (CAS kActive → kAborted).
//   kCommitting — commit in progress; immune to enemy aborts; observers
//                 treat its tentative versions as not-yet-visible.
//   kCommitted  — all tentative versions are logically current.
//   kAborted    — tentative versions are garbage.
#pragma once

#include <atomic>
#include <cstdint>

namespace zstm::runtime {

enum class TxStatus : std::uint32_t {
  kActive = 0,
  kCommitting,
  kCommitted,
  kAborted,
};

inline const char* to_string(TxStatus s) {
  switch (s) {
    case TxStatus::kActive: return "active";
    case TxStatus::kCommitting: return "committing";
    case TxStatus::kCommitted: return "committed";
    case TxStatus::kAborted: return "aborted";
  }
  return "?";
}

enum class TxClass : std::uint8_t { kShort = 0, kLong = 1 };

class TxDescBase {
 public:
  TxDescBase(std::uint64_t id, int slot, TxClass cls)
      : id_(id), slot_(slot), class_(cls) {}

  virtual ~TxDescBase() = default;

  std::uint64_t id() const { return id_; }
  int slot() const { return slot_; }
  TxClass tx_class() const { return class_; }

  TxStatus status(std::memory_order mo = std::memory_order_acquire) const {
    return status_.load(mo);
  }

  /// Enemy abort: only legal while the victim is still kActive.
  bool abort_by_enemy() {
    TxStatus expected = TxStatus::kActive;
    return status_.compare_exchange_strong(expected, TxStatus::kAborted,
                                           std::memory_order_acq_rel);
  }

  /// Self transition kActive → kCommitting; fails if an enemy won the race.
  bool begin_commit() {
    TxStatus expected = TxStatus::kActive;
    return status_.compare_exchange_strong(expected, TxStatus::kCommitting,
                                           std::memory_order_acq_rel);
  }

  /// The linearization point: release-publishes every field written during
  /// kCommitting (commit stamps, tentative version timestamps).
  void finish_commit() {
    status_.store(TxStatus::kCommitted, std::memory_order_release);
  }

  /// Self abort from kActive or kCommitting.
  void finish_abort() {
    TxStatus cur = status_.load(std::memory_order_relaxed);
    while (cur == TxStatus::kActive || cur == TxStatus::kCommitting) {
      if (status_.compare_exchange_weak(cur, TxStatus::kAborted,
                                        std::memory_order_acq_rel)) {
        return;
      }
    }
  }

  // --- contention-management inputs ------------------------------------
  std::uint64_t start_ticks() const { return start_ticks_; }
  void set_start_ticks(std::uint64_t t) { start_ticks_ = t; }

  /// "Karma": amount of work invested (opens performed across retries).
  std::uint64_t work() const { return work_.load(std::memory_order_relaxed); }
  void add_work(std::uint64_t n = 1) {
    work_.fetch_add(n, std::memory_order_relaxed);
  }

  std::uint32_t retries() const { return retries_; }
  void set_retries(std::uint32_t r) { retries_ = r; }

  /// "Greedy": set by the owner thread while it backs off waiting on a
  /// conflict; a waiting transaction forfeits its priority and may be
  /// killed by any requester.
  bool waiting() const { return waiting_.load(std::memory_order_relaxed); }
  void set_waiting(bool w) { waiting_.store(w, std::memory_order_relaxed); }

 private:
  std::atomic<TxStatus> status_{TxStatus::kActive};
  std::uint64_t id_;
  int slot_;
  TxClass class_;
  std::uint64_t start_ticks_ = 0;
  std::atomic<std::uint64_t> work_{0};
  std::uint32_t retries_ = 0;
  std::atomic<bool> waiting_{false};
};

}  // namespace zstm::runtime
