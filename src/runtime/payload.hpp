// Type-erased, immutable-after-publication object payloads.
//
// The STMs manage versions generically; user data enters through
// TypedPayload<T>. A committed version's payload is never mutated again
// (readers share it without synchronization); writers always clone
// ("Duplicate" in the paper's pseudo-code) and mutate the private copy.
//
// Cloning has two paths (DESIGN.md §7): clone_into placement-constructs the
// copy into a caller-provided small buffer (the Version's inline payload
// storage) when the payload is trivially copyable and fits — no heap
// allocation at all — and clone() is the type-erased heap fallback for
// everything else.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace zstm::runtime {

class Payload {
 public:
  /// Alignment guaranteed by every buffer handed to clone_into.
  static constexpr std::size_t kInlineAlign = 16;

  virtual ~Payload() = default;
  /// Deep copy — the paper's Duplicate(v). Returns an owning raw pointer;
  /// lifetime is managed by the enclosing Version via EBR.
  virtual Payload* clone() const = 0;
  /// Placement-clone into `buf` (`cap` bytes, kInlineAlign-aligned) when
  /// this payload qualifies for inline storage (trivially copyable value,
  /// fits in cap); returns nullptr otherwise and the caller falls back to
  /// clone(). An inline copy is destroyed with ~Payload(), never delete.
  virtual Payload* clone_into(void* buf, std::size_t cap) const = 0;

  /// Raw view of the value bytes, non-null only for trivially copyable
  /// values (whose object representation fully determines them). Word-
  /// granularity runtimes (tl2) use it to move value bytes between payload
  /// buffers and raw memory words without knowing T.
  virtual const void* raw_bytes() const { return nullptr; }
  virtual void* raw_bytes() { return nullptr; }
  /// Size of the raw_bytes() view; 0 when raw_bytes() is null.
  virtual std::size_t raw_size() const { return 0; }

 protected:
  Payload() = default;
  Payload(const Payload&) = default;
  Payload& operator=(const Payload&) = default;
};

template <typename T>
class TypedPayload final : public Payload {
 public:
  explicit TypedPayload(T value) : value_(std::move(value)) {}

  Payload* clone() const override { return new TypedPayload<T>(value_); }

  Payload* clone_into(void* buf, std::size_t cap) const override {
    if constexpr (std::is_trivially_copyable_v<T> &&
                  alignof(TypedPayload<T>) <= kInlineAlign) {
      if (sizeof(TypedPayload<T>) <= cap) {
        return ::new (buf) TypedPayload<T>(value_);
      }
      return nullptr;
    } else {
      (void)buf;
      (void)cap;
      return nullptr;
    }
  }

  const void* raw_bytes() const override {
    if constexpr (std::is_trivially_copyable_v<T>) return &value_;
    return nullptr;
  }
  void* raw_bytes() override {
    if constexpr (std::is_trivially_copyable_v<T>) return &value_;
    return nullptr;
  }
  std::size_t raw_size() const override {
    if constexpr (std::is_trivially_copyable_v<T>) return sizeof(T);
    return 0;
  }

  const T& value() const { return value_; }
  T& value() { return value_; }

 private:
  T value_;
};

/// Tag for Version's clone-constructing constructor: build the new
/// version's payload as a copy of `src` (inline when it fits).
struct ClonePayload {
  const Payload& src;
};

/// Downcasts are safe by construction: a Var<T> only ever stores
/// TypedPayload<T>. static_cast avoids RTTI on the read hot path.
template <typename T>
const T& payload_as(const Payload& p) {
  return static_cast<const TypedPayload<T>&>(p).value();
}

template <typename T>
T& payload_as(Payload& p) {
  return static_cast<TypedPayload<T>&>(p).value();
}

}  // namespace zstm::runtime
