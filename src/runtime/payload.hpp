// Type-erased, immutable-after-publication object payloads.
//
// The STMs manage versions generically; user data enters through
// TypedPayload<T>. A committed version's payload is never mutated again
// (readers share it without synchronization); writers always clone
// ("Duplicate" in the paper's pseudo-code) and mutate the private copy.
#pragma once

#include <memory>
#include <utility>

namespace zstm::runtime {

class Payload {
 public:
  virtual ~Payload() = default;
  /// Deep copy — the paper's Duplicate(v). Returns an owning raw pointer;
  /// lifetime is managed by the enclosing Version via EBR.
  virtual Payload* clone() const = 0;

 protected:
  Payload() = default;
  Payload(const Payload&) = default;
  Payload& operator=(const Payload&) = default;
};

template <typename T>
class TypedPayload final : public Payload {
 public:
  explicit TypedPayload(T value) : value_(std::move(value)) {}

  Payload* clone() const override { return new TypedPayload<T>(value_); }

  const T& value() const { return value_; }
  T& value() { return value_; }

 private:
  T value_;
};

/// Downcasts are safe by construction: a Var<T> only ever stores
/// TypedPayload<T>. static_cast avoids RTTI on the read hot path.
template <typename T>
const T& payload_as(const Payload& p) {
  return static_cast<const TypedPayload<T>&>(p).value();
}

template <typename T>
T& payload_as(Payload& p) {
  return static_cast<TypedPayload<T>&>(p).value();
}

}  // namespace zstm::runtime
