// The uniform retry-loop return convention shared by every `run` entry
// point in this library (lsa/cs/sstm `Runtime::run`, zl `run_short`/
// `run_long`, `zl::run_auto`, and the `zstm::api` façade).
//
// A `run` call executes its body inside a transaction attempt and retries
// with backoff on abort. Unbounded loops always return `committed == true`
// (they retry until the body commits); budgeted entry points (the façade's
// `run(kind, body, max_attempts)`) report `committed == false` when the
// attempt budget was exhausted — the caller decides whether the episode
// counts as failed (the bank benchmark's abandoned Compute-Total) or is
// retried later. `attempts` counts every attempt including the final one.
//
// The abort-exception contract itself (TxAborted must propagate out of the
// body) is documented once in api/stm_api.hpp.
#pragma once

#include <cstdint>

namespace zstm::runtime {

struct RunResult {
  /// Attempts used, including the committing (or final failed) one.
  std::uint32_t attempts = 0;
  /// True iff the last attempt committed.
  bool committed = false;
};

}  // namespace zstm::runtime
