// Umbrella header for the z-linearizable transactional memory library.
//
// The library reproduces "From Causal to z-Linearizable Transactional
// Memory" (Riegel, Sturzrehm, Felber, Fetzer — PODC 2007) and exposes four
// STM runtimes plus their shared substrates:
//
//   zstm::lsa::Runtime       — LSA-STM baseline (linearizable TBTM, §2/[8])
//   zstm::cs::VcRuntime      — CS-STM, causal serializability, vector
//                              clocks (Algorithm 1)
//   zstm::cs::RevRuntime     — CS-STM over r-entry plausible clocks (§4.3)
//   zstm::sstm::Runtime      — S-STM, serializability (§4.2)
//   zstm::zl::Runtime        — Z-STM, z-linearizability (Algorithms 2 & 3)
//
// Common usage pattern (see examples/quickstart.cpp):
//
//   zstm::zl::Runtime rt;
//   auto acc = rt.make_var<long>(100);
//   auto th = rt.attach();                      // per worker thread
//   rt.run_short(*th, [&](zstm::zl::ShortTx& tx) {
//     tx.write(acc, tx.read(acc) + 1);
//   });
//   rt.run_long(*th, [&](zstm::zl::LongTx& tx) {
//     long total = tx.read(acc);
//     ...
//   });
#pragma once

#include "cs/cs.hpp"             // IWYU pragma: export
#include "history/checkers.hpp"  // IWYU pragma: export
#include "lsa/lsa.hpp"           // IWYU pragma: export
#include "sstm/sstm.hpp"         // IWYU pragma: export
#include "zstm/auto_class.hpp"   // IWYU pragma: export
#include "zstm/zstm.hpp"         // IWYU pragma: export
