// Umbrella header for the z-linearizable transactional memory library.
//
// The library reproduces "From Causal to z-Linearizable Transactional
// Memory" (Riegel, Sturzrehm, Felber, Fetzer — PODC 2007) and exposes four
// STM runtimes plus their shared substrates:
//
//   zstm::lsa::Runtime       — LSA-STM baseline (linearizable TBTM, §2/[8])
//   zstm::cs::VcRuntime      — CS-STM, causal serializability, vector
//                              clocks (Algorithm 1)
//   zstm::cs::RevRuntime     — CS-STM over r-entry plausible clocks (§4.3)
//   zstm::sstm::Runtime      — S-STM, serializability (§4.2)
//   zstm::zl::Runtime        — Z-STM, z-linearizability (Algorithms 2 & 3)
//
// The recommended entry point is the unified façade (api/stm_api.hpp):
// every variant behind one interface, selected statically or by name, with
// implicit per-thread attachment (see examples/quickstart.cpp):
//
//   auto stm = zstm::api::AnyStm::make("zl");   // or api::Stm<R> statically
//   auto acc = stm.make_var<long>(100);
//   stm.run(zstm::api::TxKind::kUpdate, [&](auto& tx) {
//     tx.write(acc, tx.read(acc) + 1);
//   });
//   stm.run(zstm::api::TxKind::kLong, [&](auto& tx) {
//     long total = tx.read(acc);
//     ...
//   });
//
// The per-runtime raw APIs (explicit attach(), native Tx types) remain
// public and unchanged underneath.
#pragma once

#include "api/stm_api.hpp"       // IWYU pragma: export
#include "cs/cs.hpp"             // IWYU pragma: export
#include "history/checkers.hpp"  // IWYU pragma: export
#include "lsa/lsa.hpp"           // IWYU pragma: export
#include "sstm/sstm.hpp"         // IWYU pragma: export
#include "zstm/auto_class.hpp"   // IWYU pragma: export
#include "zstm/zstm.hpp"         // IWYU pragma: export
