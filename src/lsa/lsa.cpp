#include "lsa/lsa.hpp"

#include <cstdlib>
#include <string_view>

#include "fault/failpoint.hpp"

namespace zstm::lsa {

namespace {

timebase::ScalarTimeBase make_time_base(const Config& cfg) {
  timebase::TimeBaseKind kind = cfg.time_base;
  // Experiment escape hatch: override the configured timebase globally
  // without touching call sites (same spirit as ZSTM_POOL=0).
  if (const char* e = std::getenv("ZSTM_TIMEBASE")) {
    const std::string_view v(e);
    if (v == "global") {
      kind = timebase::TimeBaseKind::kCounter;
    } else if (v == "sync") {
      kind = timebase::TimeBaseKind::kSyncClock;
    } else if (v == "batched") {
      kind = timebase::TimeBaseKind::kBatchedCounter;
    }
  }
  switch (kind) {
    case timebase::TimeBaseKind::kSyncClock:
      return timebase::ScalarTimeBase(cfg.max_threads, cfg.clock_deviation,
                                      cfg.seed);
    case timebase::TimeBaseKind::kBatchedCounter:
      return timebase::ScalarTimeBase(cfg.max_threads, cfg.timebase_batch);
    case timebase::TimeBaseKind::kCounter:
      break;
  }
  return timebase::ScalarTimeBase();
}

}  // namespace

// ---------------------------------------------------------------------------
// Runtime
// ---------------------------------------------------------------------------

Runtime::Runtime(Config cfg)
    : cfg_(cfg),
      registry_(cfg.max_threads),
      stats_(registry_),
      pool_(registry_, &stats_, cfg.use_node_pool),
      epochs_(registry_, cfg.ebr_collect_period),
      recorder_(cfg.record_history, cfg.max_threads),
      timebase_(make_time_base(cfg)),
      cm_(cm::make_manager(cfg.cm_policy)),
      id_clock_(cfg.max_threads, /*shards=*/cfg.max_threads),
      sharded_ids_(timebase::sharded_ids_enabled(cfg.sharded_tx_ids)),
      store_(pool_, epochs_, stats_, object::retention_policy(cfg)) {
  // A detaching thread abandons its timebase lease (batched counter);
  // otherwise a dead slot's low lease would pin now_floor() forever.
  timebase_listener_ = registry_.add_release_listener(
      [this](int slot) { timebase_.release_slot(slot); });
}

// All worker threads must be detached by now; the store tears down the live
// objects single-threaded, and the EpochManager's destructor (drain_all)
// frees retired locators/versions/descriptors — disjoint sets.
Runtime::~Runtime() {
  if (timebase_listener_ >= 0) {
    registry_.remove_release_listener(timebase_listener_);
  }
}

std::unique_ptr<ThreadCtx> Runtime::attach() {
  return std::unique_ptr<ThreadCtx>(new ThreadCtx(*this, registry_.attach()));
}

// ---------------------------------------------------------------------------
// ThreadCtx
// ---------------------------------------------------------------------------

ThreadCtx::ThreadCtx(Runtime& rt, util::ThreadRegistry::Registration reg)
    : rt_(rt), reg_(std::move(reg)), tx_(*this), next_tx_id_(0) {}

ThreadCtx::~ThreadCtx() {
  if (in_transaction()) abort_attempt();
}

Tx& ThreadCtx::begin(bool read_only) {
  if (in_transaction()) abort_attempt();  // defensive: drop a leaked attempt
  Tx& tx = tx_;
  next_tx_id_ = rt_.next_tx_id(slot());
  tx.desc_ = rt_.pool_.create<TxDesc>(slot(), next_tx_id_, slot(),
                                      runtime::TxClass::kShort);
  tx.desc_->set_start_ticks(rt_.next_tick());
  epoch_guard_ = rt_.epochs_.pin_guard(slot());
  tx.lb_ = 0;
  tx.ub_ = rt_.timebase_.now_snapshot(slot());
  // Program order: never snapshot before this thread's last serialization
  // point (safe: both bounds are ones no future commit stamp can undercut).
  if (last_serialization_ > tx.ub_) tx.ub_ = last_serialization_;
  tx.publish_zone_ = 0;
  tx.declared_read_only_ = read_only;
  tx.track_reads_ = rt_.cfg_.track_readonly_readsets || !read_only ||
                    force_track_reads_once_;
  force_track_reads_once_ = false;
  tx.read_set_.clear();
  tx.write_set_.clear();
  if (rt_.recorder_.enabled()) {
    tx.rec_ = history::TxRecord{};
    tx.rec_.tx_id = next_tx_id_;
    tx.rec_.thread_slot = slot();
    tx.rec_.tx_class = runtime::TxClass::kShort;
    tx.rec_.begin_seq = rt_.recorder_.tick();
  }
  return tx;
}

void ThreadCtx::release_ownerships() {
  for (auto& w : tx_.write_set_) {
    rt_.release(*w.obj, tx_.desc_, slot());
  }
}

void ThreadCtx::finish_attempt(bool committed) {
  if (rt_.recorder_.enabled()) {
    tx_.rec_.committed = committed;
    tx_.rec_.end_seq = rt_.recorder_.tick();
    rt_.recorder_.record(slot(), std::move(tx_.rec_));
  }
  // Nothing references the descriptor through a live locator any more
  // (committed/aborted locators were settled above); stale readers may
  // still hold the pointer, so retire through EBR rather than free.
  rt_.retire_desc(slot(), tx_.desc_);
  tx_.desc_ = nullptr;
  epoch_guard_ = util::EpochManager::Guard();
}

void ThreadCtx::abort_attempt() {
  tx_.desc_->finish_abort();
  release_ownerships();
  rt_.stats_.add(slot(), util::Counter::kAborts);
  rt_.stats_.add(slot(), util::Counter::kShortAborts);
  finish_attempt(false);
}

void ThreadCtx::commit() {
  Tx& tx = tx_;
  TxDesc* d = tx.desc_;
  Runtime& rt = rt_;
  const int s = slot();

  if (!d->begin_commit()) {
    // An enemy aborted us between the last open and the commit.
    abort_attempt();
    throw TxAborted{};
  }

  if (!tx.write_set_.empty()) {
    // Commit stamp strictly above every version we are superseding, so the
    // per-object chains stay monotone even under clock skew.
    std::uint64_t floor = 0;
    for (const auto& w : tx.write_set_) {
      const Version* base = w.tentative->prev.load(std::memory_order_relaxed);
      if (base->ts > floor) floor = base->ts;
    }
    const std::uint64_t ct = rt.timebase_.acquire_commit_stamp(s, floor);
    // Sync-clock mode: wait out the deviation window so no later stamp
    // anywhere can undercut ct ("wait one clock tick", §2).
    rt.timebase_.wait_until_safe(s, ct);

    // Validate the read set: every version read must still be current.
    for (const auto& r : tx.read_set_) {
      if (r.valid_until != kOpenEnded) {
        // We read in the past; an update transaction serializes at ct and
        // its snapshot cannot be valid there any more.
        rt.stats_.add(s, util::Counter::kValidationFails);
        abort_attempt();
        throw TxAborted{};
      }
      Version* cur = rt.resolve(*r.obj, d, OnCommitting::kFail, s);
      if (cur != r.version) {
        rt.stats_.add(s, util::Counter::kValidationFails);
        abort_attempt();
        throw TxAborted{};
      }
    }

    // Publish: stamp the tentative versions, then flip the status word —
    // the single CAS that makes every write visible at once.
    for (auto& w : tx.write_set_) {
      w.tentative->ts = ct;
      w.tentative->zone = tx.publish_zone_;
      if (rt.recorder_.enabled()) {
        const Version* base = w.tentative->prev.load(std::memory_order_relaxed);
        tx.rec_.writes.push_back({w.obj->oid, w.tentative->vid, base->vid});
      }
    }
    d->commit_ts = ct;
    d->finish_commit();
    // Eagerly settle our own locators to shorten other threads' waits.
    for (auto& w : tx.write_set_) {
      rt.release(*w.obj, d, s);
    }
    if (ct > last_serialization_) last_serialization_ = ct;
  } else {
    // Read-only: the snapshot was kept consistent at every step (each read
    // version valid throughout [lb, ub]); commit in the past at ub.
    d->finish_commit();
    if (tx.ub_ > last_serialization_) last_serialization_ = tx.ub_;
  }

  rt.stats_.add(s, util::Counter::kCommits);
  rt.stats_.add(s, util::Counter::kShortCommits);
  finish_attempt(true);
}

// ---------------------------------------------------------------------------
// Tx
// ---------------------------------------------------------------------------

void Tx::abort() {
  ctx_.abort_attempt();
  throw TxAborted{};
}

void Tx::fail(util::Counter reason) {
  ctx_.rt_.stats_.add(ctx_.slot(), reason);
  ctx_.abort_attempt();
  throw TxAborted{};
}

WriteEntry* Tx::find_write(const Object& o) {
  for (auto& w : write_set_) {
    if (w.obj == &o) return &w;
  }
  return nullptr;
}

const runtime::Payload& Tx::read_object(Object& o) {
  if (WriteEntry* we = find_write(o)) return *we->tentative->data;

  Runtime& rt = ctx_.rt_;
  const int s = ctx_.slot();
  desc_->add_work();
  rt.stats_.add(s, util::Counter::kReads);

  Version* v = rt.resolve(o, desc_, OnCommitting::kWait, s);
  if (v->ts > ub_ && track_reads_ && try_extend()) {
    v = rt.resolve(o, desc_, OnCommitting::kWait, s);
  }
  std::uint64_t valid_until = kOpenEnded;
  if (v->ts > ub_) {
    // The newest version postdates our snapshot and the snapshot cannot be
    // extended over it: fall back to an older version valid at ub. Update
    // transactions cannot use the past (they serialize at commit time).
    if (!write_set_.empty()) fail(util::Counter::kValidationFails);
    while (v != nullptr && v->ts > ub_) {
      valid_until = v->ts;
      v = v->prev.load(std::memory_order_acquire);
    }
    if (v == nullptr) {
      // The version valid at ub was pruned (retention bound exceeded).
      rt.store().note_too_old(o, s);
      fail(util::Counter::kValidationFails);
    }
  }
  if (v->ts > lb_) lb_ = v->ts;
  if (track_reads_) read_set_.push_back({&o, v, valid_until});
  if (rt.recorder_.enabled()) rec_.reads.push_back({o.oid, v->vid});
  return *v->data;
}

runtime::Payload& Tx::write_object(Object& o) {
  if (WriteEntry* we = find_write(o)) return *we->tentative->data;

  Runtime& rt = ctx_.rt_;
  const int s = ctx_.slot();

  if (declared_read_only_ && !track_reads_) {
    // A declared read-only transaction took the no-readsets fast path but
    // turned out to write: retry once with read tracking enabled.
    ctx_.force_track_reads_once_ = true;
    fail(util::Counter::kAborts);
  }

  util::Backoff bo;
  std::uint32_t attempt = 0;
  for (;;) {
    if (fault::poke(fault::Site::kLsaAcquire) == fault::Effect::kAbort) {
      fail(util::Counter::kAborts);
    }
    Locator* l = o.loc.load(std::memory_order_acquire);
    if (l->writer != nullptr && l->writer != desc_) {
      switch (l->writer->status()) {
        case runtime::TxStatus::kCommitted:
        case runtime::TxStatus::kAborted:
          rt.settle(o, l, s);
          continue;
        case runtime::TxStatus::kCommitting:
          bo.pause();  // short window; its outcome decides our base version
          continue;
        case runtime::TxStatus::kActive: {
          const cm::Decision d =
              rt.cm_->arbitrate(*desc_, *l->writer, attempt++);
          if (d == cm::Decision::kAbortOther) {
            if (l->writer->abort_by_enemy()) {
              rt.stats_.add(s, util::Counter::kCmKills);
              rt.settle(o, l, s);
            }
            continue;
          }
          if (d == cm::Decision::kAbortSelf) fail(util::Counter::kAborts);
          rt.stats_.add(s, util::Counter::kCmWaits);
          desc_->set_waiting(true);
          bo.pause();
          desc_->set_waiting(false);
          continue;
        }
      }
      continue;
    }

    Version* base = l->committed;
    if (base->ts > ub_) {
      if (!(track_reads_ && try_extend())) fail(util::Counter::kValidationFails);
      continue;  // re-resolve after extension
    }
    Version* tent = rt.store_.clone_version(s, *base->data);
    tent->prev.store(base, std::memory_order_relaxed);
    if (rt.recorder_.enabled()) tent->vid = rt.recorder_.new_version_id();
    // seq_cst: Z-STM's zone protocol requires this install to be globally
    // ordered against long transactions' zone-stamp writes (Dekker pair
    // with zl::LongTx::claim_zone; see zl::ShortTx::verify_zone_after_write).
    if (rt.store_.install(o, l, desc_, tent, s, std::memory_order_seq_cst)) {
      write_set_.push_back({&o, tent});
      if (base->ts > lb_) lb_ = base->ts;
      desc_->add_work();
      rt.stats_.add(s, util::Counter::kWrites);
      return *tent->data;
    }
    rt.store_.discard_version(s, tent);
  }
}

bool Tx::try_extend() {
  Runtime& rt = ctx_.rt_;
  const int s = ctx_.slot();
  std::uint64_t new_ub = rt.timebase_.now_snapshot(s);
  for (const auto& r : read_set_) {
    if (r.valid_until != kOpenEnded && r.valid_until - 1 < new_ub) {
      new_ub = r.valid_until - 1;
    }
  }
  if (new_ub <= ub_) {
    rt.stats_.add(s, util::Counter::kExtensionFails);
    return false;
  }
  for (auto& r : read_set_) {
    if (r.valid_until != kOpenEnded) continue;
    Version* cur = rt.resolve(*r.obj, desc_, OnCommitting::kWait, s);
    if (cur == r.version) continue;
    // Find the direct successor of the version we read to learn when its
    // validity ended.
    Version* succ = Store::successor_of(cur, r.version);
    if (succ == nullptr) {
      // Chain pruned past our version; cannot bound its validity.
      rt.store().note_too_old(*r.obj, s);
      rt.stats_.add(s, util::Counter::kExtensionFails);
      return false;
    }
    r.valid_until = succ->ts;
    if (succ->ts - 1 < new_ub) new_ub = succ->ts - 1;
    if (new_ub <= ub_) {
      rt.stats_.add(s, util::Counter::kExtensionFails);
      return false;
    }
  }
  ub_ = new_ub;
  rt.stats_.add(s, util::Counter::kExtensions);
  return true;
}

}  // namespace zstm::lsa
