// LSA-STM — the Lazy Snapshot Algorithm ([8]), the paper's baseline TBTM and
// the substrate for Z-STM's short transactions (§2, §3, §5).
//
// Model (object-based, DSTM-style [4], as the paper prescribes):
//  * Every transactional object points to an immutable Locator
//    {writer, tentative, committed}: the logically current version is
//    `tentative` iff the writer's status is kCommitted, else `committed`.
//    Installing a locator is a single CAS, and a transaction's whole write
//    set becomes visible atomically when its status word flips to
//    kCommitted — the single-CAS commit.
//  * Committed versions form a chain (newest first), each stamped with the
//    scalar commit time at which it became visible. Up to
//    Config::versions_kept versions are retained ("a TBTM typically needs
//    old object versions to construct a consistent snapshot", §4.4).
//  * Writers acquire objects at open time (encounter-time write/write
//    detection, single writer per object; conflicts go to the contention
//    manager) and prepare a private duplicate of the current version.
//  * Reads are invisible. A transaction maintains a snapshot validity
//    interval [lb, ub]; reading a version narrows it, and when the newest
//    version lies beyond ub the snapshot is *extended* (re-validated at the
//    current time) or an older version inside the interval is returned, so
//    read-only transactions can commit "in the past".
//  * Update transactions validate at commit that every read version is
//    still current, acquire a commit stamp from the scalar time base
//    (shared counter, or simulated synchronized real-time clocks), and
//    publish. This is the "first committer wins" rule whose effect on long
//    transactions motivates the whole paper.
//
// The "LSA-STM (no readsets)" variant of Figure 6 is selected with
// Config::track_readonly_readsets = false: declared read-only transactions
// then fix their snapshot time up front, never validate or extend, and pay
// no read-set maintenance cost.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

#include "cm/contention_manager.hpp"
#include "history/recorder.hpp"
#include "object/object_store.hpp"
#include "runtime/payload.hpp"
#include "runtime/run_result.hpp"
#include "runtime/txdesc.hpp"
#include "timebase/scalar_timebase.hpp"
#include "timebase/sharded_clock.hpp"
#include "util/backoff.hpp"
#include "util/ebr.hpp"
#include "util/stats.hpp"
#include "util/thread_registry.hpp"

namespace zstm::lsa {

/// Thrown internally when a transaction attempt must be retried. User code
/// inside Runtime::run must let it propagate.
struct TxAborted {};

struct Config {
  int max_threads = 36;
  /// Committed versions retained per object (K). 1 = single-version (TL2
  /// style); larger values let read-only transactions commit in the past.
  /// In adaptive retention mode this is the per-object starting bound.
  int versions_kept = 8;
  /// Version retention (paper §4.4): kFixed keeps versions_kept everywhere;
  /// kAdaptive gives each object its own bound that doubles on too-old-
  /// version aborts and decays while quiescent.
  object::RetentionMode retention_mode = object::RetentionMode::kFixed;
  int retention_min = 1;
  int retention_max = 64;
  int retention_decay_period = 64;
  /// Commit timebase (DESIGN.md §10). kCounter is the paper's shared
  /// counter; kBatchedCounter leases blocks of `timebase_batch` ticks per
  /// thread (same serializability guarantees — commit pays a lease fence
  /// instead of a wait). The ZSTM_TIMEBASE environment variable
  /// (global|sync|batched) overrides this for experiments.
  timebase::TimeBaseKind time_base = timebase::TimeBaseKind::kCounter;
  std::chrono::nanoseconds clock_deviation{0};
  /// Ticks per lease when time_base == kBatchedCounter (k: the contended
  /// fetch_add is amortized k×).
  int timebase_batch = 64;
  cm::Policy cm_policy = cm::Policy::kPolite;
  /// false ⇒ the Figure 6 "LSA-STM (no readsets)" variant for transactions
  /// declared read-only.
  bool track_readonly_readsets = true;
  /// Slab-pool node allocation (DESIGN.md §7). The ZSTM_POOL=0 environment
  /// escape hatch overrides this to false (debugging/ASan).
  bool use_node_pool = true;
  bool record_history = false;
  /// Draw transaction/object ids from a topology-sharded clock instead of
  /// one global counter. Ids are identity-only (no code orders by them),
  /// so this is safe under every criterion; ZSTM_SHARDED_IDS=0 overrides
  /// to false (debugging: densely ordered ids).
  bool sharded_tx_ids = true;
  /// EBR: a slot attempts a global epoch advance every Nth retire.
  int ebr_collect_period = 64;
  std::uint64_t seed = 1;
};

class Runtime;
class ThreadCtx;
class Tx;

class TxDesc final : public runtime::TxDescBase {
 public:
  using TxDescBase::TxDescBase;
  /// Scalar commit stamp; meaningful once status() == kCommitted.
  std::uint64_t commit_ts = 0;
};

/// Per-version metadata on the shared substrate (object/versioned.hpp):
/// the scalar commit stamp and the publishing transaction's zone.
struct VersionMeta {
  /// Commit time at which this version became visible; written by the
  /// owning transaction before its commit CAS and read by others only
  /// after they observe kCommitted.
  std::uint64_t ts = 0;
  /// Zone (T.zc) of the transaction that published this version; 0 for
  /// plain LSA. Z-STM long transactions use it to recover the pre-claim
  /// state of an object: versions carrying the long transaction's own zone
  /// were committed by shorts serialized *after* it (they adopted its zone
  /// between the zone claim and the version read) and must be skipped.
  std::uint64_t zone = 0;
};

/// Per-object metadata: the zone stamp `zc` used by Z-STM (§5.1; plain LSA
/// ignores it).
struct ObjectMeta {
  std::atomic<std::uint64_t> zc{0};
};

struct StoreTraits {
  using Desc = TxDesc;
  using VersionMeta = lsa::VersionMeta;
  using ObjectMeta = lsa::ObjectMeta;
};

using Store = object::ObjectStore<StoreTraits>;
using Version = Store::Version;
using Locator = Store::Locator;
using Object = Store::Object;
using object::OnCommitting;

/// Typed handle to a transactional object (shared substrate Var).
template <typename T>
using Var = Store::Var<T>;

inline constexpr std::uint64_t kOpenEnded = ~std::uint64_t{0};

struct ReadEntry {
  Object* obj;
  Version* version;
  /// Commit stamp of the version's known successor (exclusive validity
  /// bound) or kOpenEnded while it was the newest when read.
  std::uint64_t valid_until;
};

struct WriteEntry {
  Object* obj;
  Version* tentative;
};

/// One in-flight transaction attempt. Obtained from ThreadCtx::begin();
/// reads/writes throw TxAborted on conflict, ThreadCtx::commit() throws on
/// validation failure. Runtime::run wraps this in a retry loop.
class Tx {
 public:
  template <typename T>
  const T& read(const Var<T>& var) {
    return runtime::payload_as<T>(read_object(*var.object()));
  }

  /// Open for writing and return the mutable private copy.
  template <typename T>
  T& write(Var<T>& var) {
    return runtime::payload_as<T>(write_object(*var.object()));
  }

  template <typename T>
  void write(Var<T>& var, T value) {
    write(var) = std::move(value);
  }

  /// Abort this attempt and throw TxAborted (retried by Runtime::run).
  [[noreturn]] void abort();

  /// Tag the history record with a Z-STM zone (set by zl::ShortTx).
  void set_history_zone(std::uint64_t zone) { rec_.zone = zone; }

  /// Zone stamped onto every version this transaction publishes (set by
  /// zl::ShortTx just before commit; stays 0 for plain LSA).
  void set_publish_zone(std::uint64_t zone) { publish_zone_ = zone; }

  bool read_only_declared() const { return declared_read_only_; }
  std::uint64_t snapshot_lb() const { return lb_; }
  std::uint64_t snapshot_ub() const { return ub_; }
  TxDesc* descriptor() const { return desc_; }
  std::size_t read_set_size() const { return read_set_.size(); }
  std::size_t write_set_size() const { return write_set_.size(); }

  // Object-level API (used by Z-STM's wrappers and by tests).
  const runtime::Payload& read_object(Object& o);
  runtime::Payload& write_object(Object& o);

 private:
  friend class ThreadCtx;
  friend class Runtime;
  explicit Tx(ThreadCtx& ctx) : ctx_(ctx) {}

  [[noreturn]] void fail(util::Counter reason);
  bool try_extend();
  WriteEntry* find_write(const Object& o);

  ThreadCtx& ctx_;
  TxDesc* desc_ = nullptr;
  std::uint64_t lb_ = 0;
  std::uint64_t ub_ = 0;
  std::uint64_t publish_zone_ = 0;
  bool declared_read_only_ = false;
  bool track_reads_ = true;
  std::vector<ReadEntry> read_set_;
  std::vector<WriteEntry> write_set_;
  history::TxRecord rec_;
};

/// Per-thread attachment to a Runtime. Create one per worker thread via
/// Runtime::attach(); it claims a registry slot for its lifetime.
class ThreadCtx {
 public:
  ~ThreadCtx();
  ThreadCtx(const ThreadCtx&) = delete;
  ThreadCtx& operator=(const ThreadCtx&) = delete;

  /// Start a transaction attempt. `read_only` enables the no-readsets fast
  /// path when the runtime is configured for it.
  Tx& begin(bool read_only = false);

  /// Commit the current attempt; throws TxAborted on validation failure
  /// (the attempt is already cleaned up when it throws).
  void commit();

  /// Abort the current attempt without throwing (for explicit control in
  /// tests and schedulers).
  void abort_attempt();

  bool in_transaction() const { return tx_.desc_ != nullptr; }
  int slot() const { return reg_.slot(); }
  Runtime& runtime() { return rt_; }
  Tx& current() { return tx_; }

 private:
  friend class Runtime;
  friend class Tx;
  ThreadCtx(Runtime& rt, util::ThreadRegistry::Registration reg);

  void release_ownerships();
  void finish_attempt(bool committed);

  Runtime& rt_;
  util::ThreadRegistry::Registration reg_;
  util::EpochManager::Guard epoch_guard_;
  Tx tx_;
  std::uint64_t next_tx_id_;
  /// Serialization point of this thread's last committed transaction.
  /// Snapshots never anchor below it, so a thread always reads its own
  /// writes and its transactions serialize in program order even when the
  /// sync-clock snapshot margin would otherwise anchor in the past.
  std::uint64_t last_serialization_ = 0;
  bool force_track_reads_once_ = false;
};

class Runtime {
 public:
  explicit Runtime(Config cfg = {});
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Create a transactional variable with the given initial value. The
  /// runtime owns the underlying object for its whole lifetime.
  template <typename T>
  Var<T> make_var(T initial) {
    return store_.template make_var<T>(std::move(initial));
  }

  std::unique_ptr<ThreadCtx> attach();

  /// Run `body` (callable taking Tx&) as a transaction, retrying with
  /// backoff until it commits. Returns {attempts used, committed = true}
  /// (the retry-loop convention of runtime/run_result.hpp).
  template <typename F>
  runtime::RunResult run(ThreadCtx& ctx, F&& body, bool read_only = false) {
    util::Backoff bo;
    for (std::uint32_t attempt = 1;; ++attempt) {
      Tx& tx = ctx.begin(read_only);
      try {
        body(tx);
        ctx.commit();
        return {attempt, true};
      } catch (const TxAborted&) {
        bo.pause();
      } catch (...) {
        // Foreign exception out of the body: release every ownership the
        // attempt holds before letting it propagate.
        if (ctx.in_transaction()) ctx.abort_attempt();
        throw;
      }
    }
  }

  const Config& config() const { return cfg_; }
  util::StatsSnapshot stats() const { return stats_.snapshot(); }
  void reset_stats() { stats_.reset(); }
  history::History collect_history() const { return recorder_.collect(); }

  // --- internals shared with Z-STM (stable within this library) ---------

  /// Resolve the logically current committed version of `o`, settling
  /// finished writers' locators along the way. Returns nullptr only in
  /// OnCommitting::kFail mode when a foreign writer is mid-commit.
  /// `self` (may be null) marks the caller's descriptor: an object whose
  /// locator the caller owns resolves to its pre-write committed version.
  Version* resolve(Object& o, const TxDesc* self, OnCommitting mode,
                   int slot) {
    return store_.resolve(o, self, mode, slot);
  }

  /// Replace a finished (committed/aborted) writer's locator with a settled
  /// one. Safe to call concurrently; no-op if the locator moved on.
  void settle(Object& o, Locator* seen, int slot) {
    store_.settle(o, seen, slot);
  }

  /// Ownership release at transaction finish: settles until the locator no
  /// longer references `writer` (see ObjectStore::release for why a single
  /// settle is not enough under the settle-CAS failpoint).
  void release(Object& o, const TxDesc* writer, int slot) {
    store_.release(o, writer, slot);
  }

  Object* allocate_object(runtime::Payload* initial) {
    return store_.allocate(initial);
  }

  /// The shared versioned-object substrate (object/object_store.hpp).
  Store& store() { return store_; }

  util::ThreadRegistry& registry() { return registry_; }
  util::EpochManager& epochs() { return epochs_; }
  util::StatsDomain& stats_domain() { return stats_; }
  object::NodePool& node_pool() { return pool_; }
  /// Retire a transaction descriptor through EBR, returning it to the pool
  /// once the grace period passes (shared with Z-STM's long transactions).
  void retire_desc(int slot, TxDesc* d) {
    if (pool_.enabled()) {
      epochs_.retire_raw(slot, d, &object::NodePool::ebr_destroy<TxDesc>);
    } else {
      epochs_.retire(slot, d);
    }
  }
  history::Recorder& recorder() { return recorder_; }
  timebase::ScalarTimeBase& time_base() { return timebase_; }
  cm::ContentionManager& contention_manager() { return *cm_; }
  std::uint64_t next_tick() {
    return ticks_.value.fetch_add(1, std::memory_order_relaxed);
  }
  /// Globally unique transaction id (shared with Z-STM's long transactions
  /// so ids never collide across transaction classes). Ids are identity
  /// only — nothing orders by them — so under Config::sharded_tx_ids they
  /// come from the slot's shard of a topology-sharded clock instead of one
  /// globally contended counter.
  std::uint64_t next_tx_id(int slot) {
    if (sharded_ids_) return id_clock_.unique_id(slot);
    return tx_ids_.value.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  bool sharded_ids() const { return sharded_ids_; }

 private:
  friend class ThreadCtx;
  friend class Tx;

  Config cfg_;
  util::ThreadRegistry registry_;
  util::StatsDomain stats_;
  // Declared before the EpochManager: EBR's destructor drains deleters
  // that return nodes to the pool, so the pool must be destroyed after it.
  object::NodePool pool_;
  util::EpochManager epochs_;
  history::Recorder recorder_;
  timebase::ScalarTimeBase timebase_;
  std::unique_ptr<cm::ContentionManager> cm_;
  util::PaddedCounter ticks_;  // CM start-time ordering
  util::PaddedCounter tx_ids_;
  timebase::ShardedClock id_clock_;
  bool sharded_ids_;
  /// Registry release-listener id for the timebase slot-teardown hook
  /// (batched leases must not pin now_floor() after a thread detaches).
  int timebase_listener_ = -1;
  Store store_;
};

}  // namespace zstm::lsa
