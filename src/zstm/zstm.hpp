// Z-STM — the z-linearizable STM of §5, Algorithms 2 and 3.
//
// Z-STM classifies transactions as *long* or *short* at start (§5.3). Long
// transactions are ordered by an optimistic timestamp-ordering scheme [11]
// over a logical *zone counter*; short transactions run on LSA and are
// partitioned into zones by the long transactions. The result is
// z-linearizability: (1) the long transactions are linearizable, (2) the
// short transactions of each zone are linearizable, (3) everything is
// serializable, (4) the serialization respects each thread's order.
//
// Long transactions (Algorithm 2):
//  * Startlong:  T.zc ← ++ZC — a unique logical time (line 3).
//  * Openlong:   the object's zone stamp o.zc is raised to T.zc; if a long
//    transaction with a higher zc already touched the object, we were
//    "passed" and abort (lines 6, 19-21). Any current writer is arbitrated
//    away by the contention manager (lines 8-11). Writes are visible
//    (locator install); reads take the current committed version — no read
//    set, no write-set validation ever.
//  * Commitlong: commit iff T.zc > CT, then CT ← T.zc (lines 24-26) —
//    implemented as an atomic max-CAS so racing long transactions decide
//    the order exactly once. Publication is the usual single status CAS.
//
// Short transactions (Algorithm 3): the first opened object determines the
// transaction's zone (lines 6-15); every later open checks for a zone
// crossing (lines 16-22) — crossing an *active* zone (one whose long
// transaction may still be live, i.e. zone id in (CT, ZC]) is a conflict
// that the contention manager resolves by delaying or aborting the short
// transaction. The thread-local LZC forbids moving backwards past an
// active long transaction (property 4). Everything else — snapshots,
// validation, commit — is plain LSA (line 23's OpenLSA).
//
// Deviation noted in DESIGN.md §4: our long transactions keep a private list
// of written objects purely to stamp published versions with an LSA commit
// time and to release locators; the paper's claim "no read set nor write
// set" concerns validation work, which is preserved (commit validates
// nothing). Zone 0 (objects never touched by a long transaction) is
// treated as a real zone, which closes a corner the pseudo-code leaves
// open when a short transaction spans zone-0 and active-zone objects.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "lsa/lsa.hpp"

namespace zstm::zl {

using lsa::TxAborted;  // shared abort/retry token with the LSA substrate

struct Config {
  lsa::Config lsa{};
  /// Zone-crossing conflicts: true = delay the short transaction until the
  /// zones quiesce (bounded by zone_wait_attempts), false = abort it
  /// immediately ("the contention manager ... would typically abort T").
  bool wait_on_zone_conflict = false;
  std::uint32_t zone_wait_attempts = 256;
};

class Runtime;
class ThreadCtx;

/// A long transaction attempt (Algorithm 2).
class LongTx {
 public:
  template <typename T>
  const T& read(const lsa::Var<T>& var) {
    return runtime::payload_as<T>(read_object(*var.object()));
  }
  template <typename T>
  T& write(lsa::Var<T>& var) {
    return runtime::payload_as<T>(write_object(*var.object()));
  }
  template <typename T>
  void write(lsa::Var<T>& var, T value) {
    write(var) = std::move(value);
  }

  [[noreturn]] void abort();

  std::uint64_t zone() const { return zc_; }
  lsa::TxDesc* descriptor() const { return desc_; }

  const runtime::Payload& read_object(lsa::Object& o);
  runtime::Payload& write_object(lsa::Object& o);

 private:
  friend class ThreadCtx;
  friend class Runtime;
  explicit LongTx(ThreadCtx& ctx) : ctx_(ctx) {}

  /// Openlong lines 6-7 and 19-21: raise o.zc to T.zc or abort if passed.
  void claim_zone(lsa::Object& o);
  /// Openlong lines 8-11: arbitrate away any current writer; returns a
  /// locator whose writer is null or ourselves.
  lsa::Locator* acquire_ready_locator(lsa::Object& o);
  lsa::WriteEntry* find_write(const lsa::Object& o);

  ThreadCtx& ctx_;
  lsa::TxDesc* desc_ = nullptr;
  std::uint64_t zc_ = 0;
  /// True once claim_zone stamped any object with zc_. An aborting attempt
  /// that claimed objects must retire its zone (ThreadCtx::
  /// abort_long_attempt), or the zone stays "active" forever and every
  /// short transaction crossing it livelocks.
  bool zone_claimed_ = false;
  std::vector<lsa::WriteEntry> write_set_;
  history::TxRecord rec_;
};

/// A short transaction attempt (Algorithm 3): LSA plus zone checks.
class ShortTx {
 public:
  template <typename T>
  const T& read(const lsa::Var<T>& var) {
    check_zone(*var.object());
    return inner_->read(var);
  }
  template <typename T>
  T& write(lsa::Var<T>& var) {
    check_zone(*var.object());
    T& ref = inner_->write(var);
    // Close the zone-check/install race against a concurrent long
    // transaction: our locator is now installed (seq_cst), so either the
    // long transaction's open sees it and arbitrates, or we see its zone
    // stamp here and resolve the crossing (see verify_zone_after_write).
    verify_zone_after_write(*var.object());
    return ref;
  }
  template <typename T>
  void write(lsa::Var<T>& var, T value) {
    write(var) = std::move(value);
  }

  [[noreturn]] void abort() { inner_->abort(); }

  std::uint64_t zone() const { return zc_; }
  bool zone_assigned() const { return !first_open_pending_; }
  lsa::Tx& inner() { return *inner_; }

  // Object-level API (used by the zstm::api façade and by tests); same
  // zone-check/open/verify sequence as the typed read/write above.
  const runtime::Payload& read_object(lsa::Object& o);
  runtime::Payload& write_object(lsa::Object& o);

 private:
  friend class ThreadCtx;
  explicit ShortTx(ThreadCtx& ctx) : ctx_(ctx) {}

  void check_zone(lsa::Object& o);
  void verify_zone_after_write(lsa::Object& o);

  ThreadCtx& ctx_;
  lsa::Tx* inner_ = nullptr;
  std::uint64_t zc_ = 0;
  bool first_open_pending_ = true;
};

class ThreadCtx {
 public:
  ~ThreadCtx();
  ThreadCtx(const ThreadCtx&) = delete;
  ThreadCtx& operator=(const ThreadCtx&) = delete;

  // --- short transactions (Algorithm 3) --------------------------------
  ShortTx& begin_short(bool read_only = false);
  void commit_short();

  // --- long transactions (Algorithm 2) ---------------------------------
  LongTx& begin_long();
  void commit_long();
  void abort_long_attempt();

  /// Abort a half-finished short attempt without throwing (foreign-
  /// exception unwind in the façade; the inner LSA attempt is the whole
  /// short-transaction state).
  void abort_short_attempt() { inner_->abort_attempt(); }

  bool in_short_transaction() const { return inner_->in_transaction(); }
  bool in_long_transaction() const { return long_tx_.descriptor() != nullptr; }

  int slot() const { return inner_->slot(); }
  Runtime& runtime() { return rt_; }
  /// LZCp: last zone this thread committed in (long or short).
  std::uint64_t last_zone_committed() const;

 private:
  friend class Runtime;
  friend class LongTx;
  friend class ShortTx;
  ThreadCtx(Runtime& rt, std::unique_ptr<lsa::ThreadCtx> inner);

  void release_long_ownerships();
  void finish_long_attempt(bool committed);

  Runtime& rt_;
  std::unique_ptr<lsa::ThreadCtx> inner_;
  util::EpochManager::Guard long_epoch_guard_;
  ShortTx short_tx_;
  LongTx long_tx_;
};

class Runtime {
 public:
  explicit Runtime(Config cfg = {});

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  template <typename T>
  lsa::Var<T> make_var(T initial) {
    return lsa_.make_var(std::move(initial));
  }

  std::unique_ptr<ThreadCtx> attach();

  /// Retry loop for short transactions; returns {attempts, committed =
  /// true} (see runtime/run_result.hpp for the convention).
  template <typename F>
  runtime::RunResult run_short(ThreadCtx& ctx, F&& body,
                               bool read_only = false) {
    util::Backoff bo;
    for (std::uint32_t attempt = 1;; ++attempt) {
      ShortTx& tx = ctx.begin_short(read_only);
      try {
        body(tx);
        ctx.commit_short();
        return {attempt, true};
      } catch (const TxAborted&) {
        bo.pause();
      } catch (...) {
        // Foreign exception out of the body: release every ownership the
        // attempt holds before letting it propagate.
        if (ctx.in_short_transaction()) ctx.abort_short_attempt();
        throw;
      }
    }
  }

  /// Retry loop for long transactions; returns {attempts, committed = true}.
  template <typename F>
  runtime::RunResult run_long(ThreadCtx& ctx, F&& body) {
    util::Backoff bo;
    for (std::uint32_t attempt = 1;; ++attempt) {
      LongTx& tx = ctx.begin_long();
      try {
        body(tx);
        ctx.commit_long();
        return {attempt, true};
      } catch (const TxAborted&) {
        bo.pause();
      } catch (...) {
        // Foreign exception out of the body: release every ownership the
        // attempt holds (locators, the zone claim, the epoch pin) before
        // letting it propagate.
        if (ctx.in_long_transaction()) ctx.abort_long_attempt();
        throw;
      }
    }
  }

  /// Type-erased variable creation hook for the zstm::api façade.
  lsa::Object* allocate_object(runtime::Payload* initial) {
    return lsa_.allocate_object(initial);
  }

  /// ZC, the global zone counter (last zone number handed out).
  std::uint64_t zone_counter() const {
    return zc_.value.load(std::memory_order_acquire);
  }
  /// CT, the global commit counter (last zone committed).
  std::uint64_t commit_time() const {
    return ct_.value.load(std::memory_order_acquire);
  }

  const Config& config() const { return cfg_; }
  lsa::Runtime& substrate() { return lsa_; }
  util::StatsSnapshot stats() const { return lsa_.stats(); }
  void reset_stats() { lsa_.reset_stats(); }
  history::History collect_history() const { return lsa_.collect_history(); }

 private:
  friend class ThreadCtx;
  friend class LongTx;
  friend class ShortTx;

  std::uint64_t lzc(int slot) const {
    return lzc_[static_cast<std::size_t>(slot)].value.load(
        std::memory_order_acquire);
  }
  void set_lzc(int slot, std::uint64_t z) {
    lzc_[static_cast<std::size_t>(slot)].value.store(
        z, std::memory_order_release);
  }

  Config cfg_;
  lsa::Runtime lsa_;
  util::PaddedCounter zc_;  // ZC: zone numbers handed to long transactions
  util::PaddedCounter ct_;  // CT: highest committed zone
  std::vector<util::PaddedCounter> lzc_;  // per-slot LZC
};

}  // namespace zstm::zl
