// Automatic long/short classification (§5.3).
//
// "The class must be known at the start of a transaction. In the simplest
// case, the programmer might need to mark explicitly transactions that are
// long. However, an automatic marking based on past behaviors of
// transactions would be a viable alternative."
//
// This module implements that alternative. Call sites are identified by a
// small integer (one per static transaction site, like the paper's
// transaction types); the classifier keeps per-site exponential averages of
// opens-per-execution and of recent short-mode aborts, and routes each
// execution:
//
//  * sites whose transactions open many objects run as long transactions
//    (they are exactly the ones first-committer-wins starves, §1);
//  * sites that keep aborting in short mode get temporarily promoted, then
//    demoted again once the average decays — so a burst of contention does
//    not pin a small transaction to the long path forever;
//  * everything else runs as a short transaction on the LSA fast path.
//
// AutoTx is the common facade the user body programs against, so one body
// serves both modes.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "util/align.hpp"
#include "zstm/zstm.hpp"

namespace zstm::zl {

/// Uniform transaction facade over ShortTx / LongTx for auto-routed bodies.
class AutoTx {
 public:
  explicit AutoTx(ShortTx& tx) : short_(&tx) {}
  explicit AutoTx(LongTx& tx) : long_(&tx) {}

  template <typename T>
  const T& read(const lsa::Var<T>& var) {
    return short_ != nullptr ? short_->read(var) : long_->read(var);
  }
  template <typename T>
  T& write(lsa::Var<T>& var) {
    return short_ != nullptr ? short_->write(var) : long_->write(var);
  }
  template <typename T>
  void write(lsa::Var<T>& var, T value) {
    write(var) = std::move(value);
  }
  [[noreturn]] void abort() {
    if (short_ != nullptr) short_->abort();
    long_->abort();
  }

  bool is_long() const { return long_ != nullptr; }

 private:
  ShortTx* short_ = nullptr;
  LongTx* long_ = nullptr;
};

/// Tuning knobs for AutoClassifier (namespace scope: default member
/// initializers of a nested class cannot be used for an in-class default
/// argument of the enclosing class).
struct AutoClassifierConfig {
  /// Opens-per-execution average above which a site runs long.
  double long_open_threshold = 48.0;
  /// Recent short-mode aborts-per-execution average above which a site
  /// is promoted even if small.
  double abort_promote_threshold = 3.0;
  /// Exponential-moving-average weight for new samples (0..1).
  double ema_weight = 0.25;
  int max_sites = 64;
};

class AutoClassifier {
 public:
  using Config = AutoClassifierConfig;

  explicit AutoClassifier(Config cfg = {})
      : cfg_(cfg), sites_(static_cast<std::size_t>(cfg.max_sites)) {}

  AutoClassifier(const AutoClassifier&) = delete;
  AutoClassifier& operator=(const AutoClassifier&) = delete;

  int max_sites() const { return cfg_.max_sites; }

  /// Should the next execution of `site` run as a long transaction?
  bool classify_long(int site) const {
    const SiteStats& s = stats_for(site);
    if (ema_load(s.avg_opens) >= cfg_.long_open_threshold) return true;
    return ema_load(s.avg_short_aborts) >= cfg_.abort_promote_threshold;
  }

  /// Record a completed execution: how many objects it opened, how many
  /// aborted attempts it burned, and the mode it ran in.
  void record(int site, std::uint64_t opens, std::uint32_t aborted_attempts,
              bool ran_long) {
    SiteStats& s = stats_for(site);
    ema_update(s.avg_opens, static_cast<double>(opens));
    if (ran_long) {
      // Long-mode runs say nothing about short-mode abort pressure, but
      // decaying it lets a promoted site earn its way back to the fast
      // path once the workload calms down.
      ema_update(s.avg_short_aborts, 0.0);
    } else {
      ema_update(s.avg_short_aborts, static_cast<double>(aborted_attempts));
    }
    s.executions.fetch_add(1, std::memory_order_relaxed);
    if (ran_long) s.long_runs.fetch_add(1, std::memory_order_relaxed);
  }

  std::uint64_t executions(int site) const {
    return stats_for(site).executions.load(std::memory_order_relaxed);
  }
  std::uint64_t long_runs(int site) const {
    return stats_for(site).long_runs.load(std::memory_order_relaxed);
  }
  double avg_opens(int site) const {
    return ema_load(stats_for(site).avg_opens);
  }
  double avg_short_aborts(int site) const {
    return ema_load(stats_for(site).avg_short_aborts);
  }

 private:
  struct alignas(util::kCacheLine) SiteStats {
    /// EMAs stored as doubles behind a bit-cast atomic (no atomic<double>
    /// RMW needed — a lost update just delays the estimate by one sample).
    std::atomic<std::uint64_t> avg_opens{0};
    std::atomic<std::uint64_t> avg_short_aborts{0};
    std::atomic<std::uint64_t> executions{0};
    std::atomic<std::uint64_t> long_runs{0};
  };

  static double ema_load(const std::atomic<std::uint64_t>& cell) {
    const std::uint64_t bits = cell.load(std::memory_order_relaxed);
    double v;
    static_assert(sizeof v == sizeof bits);
    __builtin_memcpy(&v, &bits, sizeof v);
    return v;
  }

  void ema_update(std::atomic<std::uint64_t>& cell, double sample) const {
    const double old = ema_load(cell);
    const double fresh = old + cfg_.ema_weight * (sample - old);
    std::uint64_t bits;
    __builtin_memcpy(&bits, &fresh, sizeof bits);
    cell.store(bits, std::memory_order_relaxed);
  }

  SiteStats& stats_for(int site) {
    return sites_[static_cast<std::size_t>(site) %
                  static_cast<std::size_t>(cfg_.max_sites)];
  }
  const SiteStats& stats_for(int site) const {
    return sites_[static_cast<std::size_t>(site) %
                  static_cast<std::size_t>(cfg_.max_sites)];
  }

  Config cfg_;
  std::vector<SiteStats> sites_;
};

/// Measures the number of opens a transaction performed via the
/// descriptor's work counter (maintained for contention management).
class CountingProbe {
 public:
  CountingProbe(std::uint64_t* out, const runtime::TxDescBase* desc)
      : out_(out), desc_(desc), base_(desc->work()) {}
  std::uint64_t opens() const { return desc_->work() - base_; }
  ~CountingProbe() { *out_ = desc_->work() - base_; }

 private:
  std::uint64_t* out_;
  const runtime::TxDescBase* desc_;
  std::uint64_t base_;
};

/// Run `body` (callable taking AutoTx&) at `site`, letting the classifier
/// pick the transaction class from the site's history. Returns {attempts,
/// committed = true} (the retry-loop convention of runtime/run_result.hpp).
template <typename F>
runtime::RunResult run_auto(Runtime& rt, ThreadCtx& ctx, AutoClassifier& cls,
                            int site, F&& body) {
  const bool as_long = cls.classify_long(site);
  std::uint64_t opens = 0;
  runtime::RunResult result;
  if (as_long) {
    result = rt.run_long(ctx, [&](LongTx& tx) {
      opens = 0;
      AutoTx facade(tx);
      CountingProbe probe(&opens, tx.descriptor());
      body(facade);
      opens = probe.opens();
    });
  } else {
    result = rt.run_short(ctx, [&](ShortTx& tx) {
      opens = 0;
      AutoTx facade(tx);
      CountingProbe probe(&opens, tx.inner().descriptor());
      body(facade);
      opens = probe.opens();
    });
  }
  cls.record(site, opens, result.attempts - 1, as_long);
  return result;
}

}  // namespace zstm::zl
