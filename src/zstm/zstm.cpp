#include "zstm/zstm.hpp"

#include "fault/failpoint.hpp"

namespace zstm::zl {

// ---------------------------------------------------------------------------
// Runtime
// ---------------------------------------------------------------------------

Runtime::Runtime(Config cfg)
    : cfg_(cfg),
      lsa_(cfg.lsa),
      lzc_(static_cast<std::size_t>(cfg.lsa.max_threads)) {}

std::unique_ptr<ThreadCtx> Runtime::attach() {
  return std::unique_ptr<ThreadCtx>(new ThreadCtx(*this, lsa_.attach()));
}

// ---------------------------------------------------------------------------
// ThreadCtx
// ---------------------------------------------------------------------------

ThreadCtx::ThreadCtx(Runtime& rt, std::unique_ptr<lsa::ThreadCtx> inner)
    : rt_(rt), inner_(std::move(inner)), short_tx_(*this), long_tx_(*this) {}

ThreadCtx::~ThreadCtx() {
  if (long_tx_.desc_ != nullptr) abort_long_attempt();
}

std::uint64_t ThreadCtx::last_zone_committed() const {
  return rt_.lzc(inner_->slot());
}

// --- short transactions ----------------------------------------------------

ShortTx& ThreadCtx::begin_short(bool read_only) {
  short_tx_.inner_ = &inner_->begin(read_only);
  short_tx_.zc_ = 0;
  short_tx_.first_open_pending_ = true;  // Startshort: T.zc ← 0 (line 2)
  return short_tx_;
}

void ThreadCtx::commit_short() {
  // Record the zone before CommitLSA so the history carries it, and stamp
  // it onto published versions so long transactions can recognize commits
  // from their own zone (see LongTx::read_object).
  short_tx_.inner_->set_history_zone(short_tx_.zc_);
  short_tx_.inner_->set_publish_zone(short_tx_.zc_);
  inner_->commit();  // throws TxAborted on validation failure
  // Commitshort lines 27-28: remember the zone we committed in.
  if (!short_tx_.first_open_pending_) {
    rt_.set_lzc(inner_->slot(), short_tx_.zc_);
  }
}

void ShortTx::check_zone(lsa::Object& o) {
  Runtime& rt = ctx_.rt_;
  lsa::Runtime& sub = rt.lsa_;
  const int s = ctx_.slot();

  std::uint64_t ozc = o.zc.load(std::memory_order_acquire);
  if (first_open_pending_) {
    // Openshort lines 6-15: the first object determines the zone.
    const std::uint64_t lzc = rt.lzc(s);
    if (ozc < lzc) {
      // The object belongs to an older zone than the last one this thread
      // committed in.
      if (lzc > rt.commit_time()) {
        // That zone's long transaction may still be active: committing
        // here would cross it backwards (violates property 4) — abort.
        sub.stats_domain().add(s, util::Counter::kZoneConflicts);
        inner_->abort();
      }
      zc_ = rt.commit_time();  // line 11
    } else {
      zc_ = ozc;  // line 14
    }
    first_open_pending_ = false;
    return;
  }

  if (zc_ == ozc) return;  // same zone: proceed (line 16 false)

  // Lines 17-21: different zones.
  util::Backoff bo;
  std::uint32_t attempts = 0;
  for (;;) {
    const std::uint64_t ct = rt.commit_time();
    if (zc_ <= ct && ozc <= ct) {
      // Both zones are in the past; serialize at the current commit time
      // (line 20).
      zc_ = ct;
      return;
    }
    // conflict(T, oi.zc): the contention manager delays or aborts T.
    sub.stats_domain().add(s, util::Counter::kZoneConflicts);
    if (!rt.cfg_.wait_on_zone_conflict ||
        ++attempts > rt.cfg_.zone_wait_attempts) {
      inner_->abort();
    }
    bo.pause();
    ozc = o.zc.load(std::memory_order_acquire);
  }
}

const runtime::Payload& ShortTx::read_object(lsa::Object& o) {
  check_zone(o);
  return inner_->read_object(o);
}

runtime::Payload& ShortTx::write_object(lsa::Object& o) {
  check_zone(o);
  runtime::Payload& p = inner_->write_object(o);
  // Same zone-check/install race closure as the typed write() path.
  verify_zone_after_write(o);
  return p;
}

void ShortTx::verify_zone_after_write(lsa::Object& o) {
  Runtime& rt = ctx_.rt_;
  // seq_cst load after our seq_cst locator install (in lsa::Tx::
  // write_object): pairs with LongTx::claim_zone + acquire_ready_locator.
  const std::uint64_t ozc = o.zc.load(std::memory_order_seq_cst);
  if (ozc == zc_) return;
  // A long transaction claimed this object between our zone check and our
  // locator install. If every involved zone is already committed we can
  // slide to the current commit time (Algorithm 3 line 20 semantics);
  // otherwise we must not keep a write the long transaction may have
  // already read past — abort.
  const std::uint64_t ct = rt.commit_time();
  if (zc_ <= ct && ozc <= ct) {
    zc_ = ct;
    return;
  }
  rt.lsa_.stats_domain().add(ctx_.slot(), util::Counter::kZoneConflicts);
  inner_->abort();
}

// --- long transactions -------------------------------------------------------

LongTx& ThreadCtx::begin_long() {
  // A previous attempt abandoned mid-body (foreign exception escaping the
  // user code) must be aborted first, like every short-transaction begin()
  // does — otherwise its still-active descriptor and installed locators
  // leak (the run-entry-point contract in api/stm_api.hpp).
  if (long_tx_.desc_ != nullptr) abort_long_attempt();
  LongTx& tx = long_tx_;
  lsa::Runtime& sub = rt_.lsa_;
  const int s = slot();
  const std::uint64_t id = sub.next_tx_id(s);
  tx.desc_ = sub.node_pool().create<lsa::TxDesc>(s, id, s,
                                                 runtime::TxClass::kLong);
  tx.desc_->set_start_ticks(sub.next_tick());
  long_epoch_guard_ = sub.epochs().pin_guard(s);
  // Startlong line 3: T.zc ← ++ZC — a fresh, unique zone number.
  tx.zc_ = rt_.zc_.value.fetch_add(1, std::memory_order_acq_rel) + 1;
  tx.zone_claimed_ = false;
  tx.write_set_.clear();
  if (sub.recorder().enabled()) {
    tx.rec_ = history::TxRecord{};
    tx.rec_.tx_id = tx.desc_->id();
    tx.rec_.thread_slot = s;
    tx.rec_.tx_class = runtime::TxClass::kLong;
    tx.rec_.zone = tx.zc_;
    tx.rec_.begin_seq = sub.recorder().tick();
  }
  return tx;
}

void ThreadCtx::release_long_ownerships() {
  for (auto& w : long_tx_.write_set_) {
    rt_.lsa_.release(*w.obj, long_tx_.desc_, slot());
  }
}

void ThreadCtx::finish_long_attempt(bool committed) {
  lsa::Runtime& sub = rt_.lsa_;
  if (sub.recorder().enabled()) {
    long_tx_.rec_.committed = committed;
    long_tx_.rec_.end_seq = sub.recorder().tick();
    sub.recorder().record(slot(), std::move(long_tx_.rec_));
  }
  sub.retire_desc(slot(), long_tx_.desc_);
  long_tx_.desc_ = nullptr;
  long_epoch_guard_ = util::EpochManager::Guard();
}

void ThreadCtx::abort_long_attempt() {
  long_tx_.desc_->finish_abort();
  release_long_ownerships();
  if (long_tx_.zone_claimed_) {
    // Retire the claimed zone as a committed no-op. Objects we opened keep
    // o.zc = T.zc forever, and short transactions treat every zone in
    // (CT, ZC] as active — without this bump a dead long transaction's
    // zone stays active until some *other* long transaction commits past
    // it, livelocking any short transaction that crosses it. Aborting is
    // equivalent to committing the empty transaction at our slot in zone
    // order, and CT ← max(CT, T.zc) imposes on older in-flight long
    // transactions exactly the penalty an overtaking commit already does
    // (Commitlong's "the one whose zone number was overtaken aborts").
    std::uint64_t cur = rt_.ct_.value.load(std::memory_order_acquire);
    while (cur < long_tx_.zc_ &&
           !rt_.ct_.value.compare_exchange_weak(cur, long_tx_.zc_,
                                                std::memory_order_acq_rel)) {
    }
  }
  rt_.lsa_.stats_domain().add(slot(), util::Counter::kAborts);
  rt_.lsa_.stats_domain().add(slot(), util::Counter::kLongAborts);
  finish_long_attempt(false);
}

void ThreadCtx::commit_long() {
  LongTx& tx = long_tx_;
  lsa::TxDesc* d = tx.desc_;
  lsa::Runtime& sub = rt_.lsa_;
  const int s = slot();

  if (!d->begin_commit()) {  // an enemy aborted us (Commitlong line 24's state check)
    abort_long_attempt();
    throw TxAborted{};
  }

  // Commitlong lines 24-26: commit iff T.zc > CT, then CT ← T.zc. The
  // max-CAS makes check-and-set atomic, so two racing long transactions
  // resolve their order exactly once; the one whose zone number was
  // overtaken aborts ("long transactions need to commit in the order of
  // their unique timestamps").
  std::uint64_t cur = rt_.ct_.value.load(std::memory_order_acquire);
  for (;;) {
    if (cur >= tx.zc_) {
      rt_.lsa_.stats_domain().add(s, util::Counter::kZonePassed);
      abort_long_attempt();
      throw TxAborted{};
    }
    if (rt_.ct_.value.compare_exchange_weak(cur, tx.zc_,
                                            std::memory_order_acq_rel)) {
      break;
    }
  }

  // Give the published versions an LSA timestamp so short transactions'
  // snapshots order correctly against them. No validation happens here —
  // that is Z-STM's point: "long transactions can commit with a very
  // simple and efficient validation test".
  std::uint64_t floor = 0;
  for (const auto& w : tx.write_set_) {
    const lsa::Version* base = w.tentative->prev.load(std::memory_order_relaxed);
    if (base->ts > floor) floor = base->ts;
  }
  const std::uint64_t ct = sub.time_base().acquire_commit_stamp(s, floor);
  sub.time_base().wait_until_safe(s, ct);

  for (auto& w : tx.write_set_) {
    w.tentative->ts = ct;
    w.tentative->zone = tx.zc_;
    if (sub.recorder().enabled()) {
      const lsa::Version* base =
          w.tentative->prev.load(std::memory_order_relaxed);
      tx.rec_.writes.push_back({w.obj->oid, w.tentative->vid, base->vid});
    }
  }
  d->commit_ts = ct;
  d->finish_commit();  // the single CAS/store that publishes everything
  for (auto& w : tx.write_set_) {
    sub.release(*w.obj, d, s);
  }

  rt_.set_lzc(s, tx.zc_);  // line 27: LZCp ← T.zc
  sub.stats_domain().add(s, util::Counter::kCommits);
  sub.stats_domain().add(s, util::Counter::kLongCommits);
  finish_long_attempt(true);
}

// ---------------------------------------------------------------------------
// LongTx
// ---------------------------------------------------------------------------

void LongTx::abort() {
  ctx_.abort_long_attempt();
  throw TxAborted{};
}

void LongTx::claim_zone(lsa::Object& o) {
  // seq_cst: this store and the subsequent locator load in
  // acquire_ready_locator form one half of a Dekker pair with short
  // transactions' locator-install + zone-re-check (ShortTx::
  // verify_zone_after_write). At least one side must observe the other or
  // a short could commit writes that straddle our snapshot frontier.
  std::uint64_t cur = o.zc.load(std::memory_order_seq_cst);
  for (;;) {
    if (cur == zc_) return;  // we already claimed this object
    if (cur > zc_) {
      // Openlong lines 19-20: a long transaction with a higher zone number
      // beat us to the object — we were passed and must abort.
      ctx_.rt_.lsa_.stats_domain().add(ctx_.slot(),
                                       util::Counter::kZonePassed);
      ctx_.abort_long_attempt();
      throw TxAborted{};
    }
    if (o.zc.compare_exchange_weak(cur, zc_, std::memory_order_seq_cst)) {
      zone_claimed_ = true;
      return;  // line 7: oi.zc ← T.zc
    }
  }
}

lsa::Locator* LongTx::acquire_ready_locator(lsa::Object& o) {
  lsa::Runtime& sub = ctx_.rt_.lsa_;
  const int s = ctx_.slot();
  util::Backoff bo;
  std::uint32_t attempt = 0;
  for (;;) {
    if (fault::poke(fault::Site::kZlAcquire) == fault::Effect::kAbort) {
      ctx_.abort_long_attempt();
      throw TxAborted{};
    }
    // seq_cst: second half of the Dekker pair started in claim_zone.
    lsa::Locator* l = o.loc.load(std::memory_order_seq_cst);
    if (l->writer == nullptr || l->writer == desc_) return l;
    switch (l->writer->status()) {
      case runtime::TxStatus::kCommitted:
      case runtime::TxStatus::kAborted:
        sub.settle(o, l, s);
        continue;
      case runtime::TxStatus::kCommitting:
        bo.pause();
        continue;
      case runtime::TxStatus::kActive: {
        // Openlong lines 8-11: arbitrate with the current writer. A long
        // transaction must not leave active writers behind on objects it
        // reads — a short transaction that already owns the object could
        // otherwise commit writes serialized both before and after us.
        const cm::Decision dec =
            sub.contention_manager().arbitrate(*desc_, *l->writer, attempt++);
        if (dec == cm::Decision::kAbortOther) {
          if (l->writer->abort_by_enemy()) {
            sub.stats_domain().add(s, util::Counter::kCmKills);
            sub.settle(o, l, s);
          }
          continue;
        }
        if (dec == cm::Decision::kAbortSelf) {
          ctx_.abort_long_attempt();
          throw TxAborted{};
        }
        sub.stats_domain().add(s, util::Counter::kCmWaits);
        desc_->set_waiting(true);
        bo.pause();
        desc_->set_waiting(false);
        continue;
      }
    }
  }
}

lsa::WriteEntry* LongTx::find_write(const lsa::Object& o) {
  for (auto& w : write_set_) {
    if (w.obj == &o) return &w;
  }
  return nullptr;
}

const runtime::Payload& LongTx::read_object(lsa::Object& o) {
  if (lsa::WriteEntry* we = find_write(o)) return *we->tentative->data;
  lsa::Runtime& sub = ctx_.rt_.lsa_;
  const int s = ctx_.slot();
  desc_->add_work();
  sub.stats_domain().add(s, util::Counter::kReads);

  claim_zone(o);
  lsa::Locator* l = acquire_ready_locator(o);
  // The paper's Openlong is one atomic step; in our implementation a short
  // transaction can adopt our zone (it read o.zc after our claim), commit
  // a write to o, and only then do we load the version — returning state
  // that is serialized *after* us. Versions carry their writer's zone, so
  // the pre-claim state is the newest version not from our own zone.
  lsa::Version* v = l->committed;
  while (v != nullptr && v->zone == zc_) {
    v = v->prev.load(std::memory_order_acquire);
  }
  if (v == nullptr || v->zone > zc_) {
    // Pruned underneath us, or a later long transaction's write is already
    // current: we cannot recover a consistent pre-claim state.
    if (v == nullptr) sub.store().note_too_old(o, s);
    sub.stats_domain().add(s, util::Counter::kZonePassed);
    ctx_.abort_long_attempt();
    throw TxAborted{};
  }
  if (sub.recorder().enabled()) rec_.reads.push_back({o.oid, v->vid});
  return *v->data;
}

runtime::Payload& LongTx::write_object(lsa::Object& o) {
  if (lsa::WriteEntry* we = find_write(o)) return *we->tentative->data;
  lsa::Runtime& sub = ctx_.rt_.lsa_;
  const int s = ctx_.slot();

  claim_zone(o);
  for (;;) {
    lsa::Locator* l = acquire_ready_locator(o);
    lsa::Version* base = l->committed;
    if (base->zone >= zc_) {
      // A commit from our own zone (serialized after us) or a later long
      // is already current: our write can no longer be inserted before it.
      sub.stats_domain().add(s, util::Counter::kZoneConflicts);
      ctx_.abort_long_attempt();
      throw TxAborted{};
    }
    lsa::Version* tent = sub.store().clone_version(s, *base->data);
    tent->prev.store(base, std::memory_order_relaxed);
    if (sub.recorder().enabled()) tent->vid = sub.recorder().new_version_id();
    if (sub.store().install(o, l, desc_, tent, s)) {
      write_set_.push_back({&o, tent});
      desc_->add_work();
      sub.stats_domain().add(s, util::Counter::kWrites);
      return *tent->data;
    }
    sub.store().discard_version(s, tent);
  }
}

}  // namespace zstm::zl
