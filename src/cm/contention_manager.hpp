// Contention-manager framework.
//
// "Conflict arbitration is performed by a configurable module called
// contention manager, which is responsible for the liveness of the system"
// (§4.1, following DSTM [4]). Every STM here consults one when a
// transaction finds an object write-owned by another live transaction.
//
// The manager only *decides*; the caller performs the decision (enemy abort
// via TxDescBase::abort_by_enemy, waiting via Backoff, or self-abort), so a
// policy can never corrupt protocol state.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "runtime/txdesc.hpp"

namespace zstm::cm {

enum class Decision {
  kAbortOther,  // kill the current owner and take over
  kAbortSelf,   // abort the requesting transaction
  kWait,        // back off and re-examine the conflict
};

inline const char* to_string(Decision d) {
  switch (d) {
    case Decision::kAbortOther: return "abort-other";
    case Decision::kAbortSelf: return "abort-self";
    case Decision::kWait: return "wait";
  }
  return "?";
}

class ContentionManager {
 public:
  virtual ~ContentionManager() = default;

  /// Arbitrate a write/write (or open-time) conflict between `me` (the
  /// requester) and `other` (the current owner). `attempt` counts how many
  /// times this same conflict has already been re-examined after kWait
  /// decisions, letting politeness-style policies escalate.
  virtual Decision arbitrate(const runtime::TxDescBase& me,
                             const runtime::TxDescBase& other,
                             std::uint32_t attempt) = 0;

  virtual std::string name() const = 0;
};

enum class Policy {
  kAggressive,  // always abort the other transaction
  kSuicide,     // always abort self
  kPolite,      // bounded waiting, then abort the other
  kKarma,       // transaction with more invested work wins
  kTimestamp,   // older transaction wins (greedy-style)
  kGreedy,      // older-or-waiting owner loses (Guerraoui et al. Greedy)
  kPolka,       // Karma with exponentially growing patience (Polite+Karma)
};

std::unique_ptr<ContentionManager> make_manager(Policy policy);

const char* policy_name(Policy policy);

}  // namespace zstm::cm
