#include "cm/contention_manager.hpp"

namespace zstm::cm {

namespace {

/// Always kill the owner. Maximum progress for the requester; can livelock
/// under symmetric contention (pair it with retry backoff).
class Aggressive final : public ContentionManager {
 public:
  Decision arbitrate(const runtime::TxDescBase&, const runtime::TxDescBase&,
                     std::uint32_t) override {
    return Decision::kAbortOther;
  }
  std::string name() const override { return "aggressive"; }
};

/// Always kill self. Never disturbs the owner; prone to starvation of the
/// requester (useful as a worst-case reference in bench_cm).
class Suicide final : public ContentionManager {
 public:
  Decision arbitrate(const runtime::TxDescBase&, const runtime::TxDescBase&,
                     std::uint32_t) override {
    return Decision::kAbortSelf;
  }
  std::string name() const override { return "suicide"; }
};

/// Wait politely (caller backs off exponentially between attempts) for a
/// bounded number of episodes, then kill the owner.
class Polite final : public ContentionManager {
 public:
  static constexpr std::uint32_t kMaxEpisodes = 8;

  Decision arbitrate(const runtime::TxDescBase&, const runtime::TxDescBase&,
                     std::uint32_t attempt) override {
    return attempt < kMaxEpisodes ? Decision::kWait : Decision::kAbortOther;
  }
  std::string name() const override { return "polite"; }
};

/// Karma: the transaction that has invested more work (opens across
/// retries) wins; the loser waits, accumulating attempts until its
/// accumulated patience exceeds the work gap.
class Karma final : public ContentionManager {
 public:
  Decision arbitrate(const runtime::TxDescBase& me,
                     const runtime::TxDescBase& other,
                     std::uint32_t attempt) override {
    if (me.work() + attempt >= other.work()) return Decision::kAbortOther;
    return Decision::kWait;
  }
  std::string name() const override { return "karma"; }
};

/// Timestamp (greedy-style): the older transaction wins; a younger
/// requester waits briefly for the elder to finish and then aborts itself.
class Timestamp final : public ContentionManager {
 public:
  static constexpr std::uint32_t kMaxEpisodes = 16;

  Decision arbitrate(const runtime::TxDescBase& me,
                     const runtime::TxDescBase& other,
                     std::uint32_t attempt) override {
    if (me.start_ticks() < other.start_ticks()) return Decision::kAbortOther;
    return attempt < kMaxEpisodes ? Decision::kWait : Decision::kAbortSelf;
  }
  std::string name() const override { return "timestamp"; }
};

/// Greedy (Guerraoui, Herlihy, Pochon, DISC'05): priority = start time
/// (older is higher). The requester kills the owner when the owner has
/// lower priority *or* is itself waiting on somebody (the `waiting` flag
/// every runtime sets around its contention back-off); otherwise the
/// requester waits. Pending-commit owners are left alone — killing a
/// transaction that has reached kCommitting is impossible anyway, and the
/// decide-only framework lets the caller discover that.
class Greedy final : public ContentionManager {
 public:
  Decision arbitrate(const runtime::TxDescBase& me,
                     const runtime::TxDescBase& other,
                     std::uint32_t) override {
    if (me.start_ticks() < other.start_ticks() || other.waiting()) {
      return Decision::kAbortOther;
    }
    return Decision::kWait;
  }
  std::string name() const override { return "greedy"; }
};

/// Polka (Scherer & Scott): Karma's work-based priorities with Polite's
/// exponentially growing patience — the requester backs off attempt times
/// with exponentially increasing accumulated patience (2^attempt) and
/// kills the owner once that patience covers the work gap.
class Polka final : public ContentionManager {
 public:
  static constexpr std::uint32_t kMaxDoublings = 16;  // patience cap 2^16

  Decision arbitrate(const runtime::TxDescBase& me,
                     const runtime::TxDescBase& other,
                     std::uint32_t attempt) override {
    const std::uint64_t patience =
        std::uint64_t{1} << (attempt < kMaxDoublings ? attempt : kMaxDoublings);
    if (me.work() + patience > other.work()) return Decision::kAbortOther;
    return Decision::kWait;
  }
  std::string name() const override { return "polka"; }
};

}  // namespace

std::unique_ptr<ContentionManager> make_manager(Policy policy) {
  switch (policy) {
    case Policy::kAggressive: return std::make_unique<Aggressive>();
    case Policy::kSuicide: return std::make_unique<Suicide>();
    case Policy::kPolite: return std::make_unique<Polite>();
    case Policy::kKarma: return std::make_unique<Karma>();
    case Policy::kTimestamp: return std::make_unique<Timestamp>();
    case Policy::kGreedy: return std::make_unique<Greedy>();
    case Policy::kPolka: return std::make_unique<Polka>();
  }
  return std::make_unique<Polite>();
}

const char* policy_name(Policy policy) {
  switch (policy) {
    case Policy::kAggressive: return "aggressive";
    case Policy::kSuicide: return "suicide";
    case Policy::kPolite: return "polite";
    case Policy::kKarma: return "karma";
    case Policy::kTimestamp: return "timestamp";
    case Policy::kGreedy: return "greedy";
    case Policy::kPolka: return "polka";
  }
  return "?";
}

}  // namespace zstm::cm
