#include "sstm/sstm.hpp"

#include <algorithm>

#include "fault/failpoint.hpp"

namespace zstm::sstm {

// ---------------------------------------------------------------------------
// Runtime
// ---------------------------------------------------------------------------

Runtime::Runtime(Config cfg)
    : cfg_(cfg),
      domain_(cfg.max_threads),
      registry_(cfg.max_threads),
      stats_(registry_),
      pool_(registry_, &stats_, cfg.use_node_pool),
      epochs_(registry_, cfg.ebr_collect_period),
      recorder_(cfg.record_history, cfg.max_threads),
      cm_(cm::make_manager(cfg.cm_policy)),
      id_clock_(cfg.max_threads, /*shards=*/cfg.max_threads),
      sharded_ids_(timebase::sharded_ids_enabled(cfg.sharded_tx_ids)),
      store_(pool_, epochs_, stats_, object::retention_policy(cfg)) {}

// The store tears down the live objects; runtime-retained descriptors are
// freed with descs_.
Runtime::~Runtime() = default;

TxDesc* Runtime::allocate_desc(int slot) {
  // Ids are identity only (ordering lives in the vector clocks), so the
  // topology-sharded clock may serve them.
  const std::uint64_t id =
      sharded_ids_ ? id_clock_.unique_id(slot)
                   : tx_ids_.value.fetch_add(1, std::memory_order_relaxed) + 1;
  TxDesc* raw = pool_.create<TxDesc>(slot, id, slot, domain_.zero());
  {
    std::lock_guard<std::mutex> lk(descs_mutex_);
    descs_.live.push_back(raw);
  }
  return raw;
}

std::size_t Runtime::descriptor_count() {
  std::lock_guard<std::mutex> lk(descs_mutex_);
  return descs_.live.size();
}

std::size_t Runtime::trim_descriptors() {
  std::scoped_lock lk(descs_mutex_, commit_mutex_);
  // Failpoints stay out of maintenance: an injected settle-CAS failure
  // here would leave a locator referencing a descriptor we free below.
  fault::SuppressGuard suppress;

  // Quiescence check. Every attempt holds an epoch pin from begin() to
  // finish_attempt(), and begin() allocates its descriptor (blocking on
  // descs_mutex_, which we hold) *before* pinning — so "nothing pinned and
  // every retained descriptor final" cannot be invalidated while we work.
  // The descriptor scan additionally covers a thread inside allocate_desc's
  // pre-pin window: its descriptor is already kActive.
  for (int s = 0; s < cfg_.max_threads; ++s) {
    if (epochs_.pinned(s)) return 0;
  }
  for (TxDesc* d : descs_.live) {
    const runtime::TxStatus st = d->status();
    if (st != runtime::TxStatus::kCommitted &&
        st != runtime::TxStatus::kAborted) {
      return 0;
    }
  }

  // Fold every reader-list reference into per-version stamps. At
  // quiescence a committed reader's predecessor closure is all-final, so
  // its whole constraint reduces to a stamp merge (exactly
  // note_predecessor's committed case); aborted readers carry none.
  // Folding readers and past readers into one stamp is conservative for
  // future *readers* of the version (they inherit reader-vs-reader
  // constraints that never existed), which can only inflate timestamps and
  // cause false aborts — never admit a non-serializable history.
  std::vector<TxDesc*> work;
  std::vector<TxDesc*> visited;
  auto fold_into = [&](timebase::VcStamp& folded, TxDesc* r) {
    work.clear();
    visited.clear();
    work.push_back(r);
    while (!work.empty()) {
      TxDesc* cur = work.back();
      work.pop_back();
      bool seen = false;
      for (TxDesc* q : visited) seen |= (q == cur);
      if (seen) continue;
      visited.push_back(cur);
      if (cur->status() != runtime::TxStatus::kCommitted) continue;
      if (folded.dimension() == 0) {
        folded = cur->ct;
      } else {
        folded.merge(cur->ct);
      }
      for (TxDesc* q : cur->preds_snapshot()) work.push_back(q);
    }
  };
  store_.for_each_object([&](Object& o) {
    // Settle any leftover locator first (a racing settle CAS may have been
    // lost — or failpoint-suppressed — on the final attempt touching o),
    // so no locator keeps a writer pointer into the freed descriptors.
    Locator* l = o.loc.load(std::memory_order_acquire);
    if (l->writer != nullptr) {
      store_.settle(o, l, /*slot=*/0);
      l = o.loc.load(std::memory_order_acquire);
    }
    for (Version* v = l->committed; v != nullptr;
         v = v->prev.load(std::memory_order_acquire)) {
      for (TxDesc* r : v->readers) fold_into(v->folded, r);
      for (TxDesc* pr : v->past_readers) fold_into(v->folded, pr);
      v->readers.clear();
      v->readers.shrink_to_fit();
      v->past_readers.clear();
      v->past_readers.shrink_to_fit();
    }
  });

  const std::size_t freed = descs_.live.size();
  for (TxDesc* d : descs_.live) pool_.destroy(-1, d);
  descs_.live.clear();
  return freed;
}

std::unique_ptr<ThreadCtx> Runtime::attach() {
  return std::unique_ptr<ThreadCtx>(new ThreadCtx(*this, registry_.attach()));
}

bool Runtime::reaches(TxDesc* from, const TxDesc* target, int max_nodes) {
  // Iterative search with an explicit visited set: predecessor graphs can
  // contain cycles (that is exactly what this function detects), and a
  // depth-bounded DFS without memoization goes exponential on them — while
  // holding the commit mutex. Linear-scan membership is fine: the live
  // transaction population is bounded by the thread count.
  std::vector<TxDesc*> work{from};
  std::vector<const TxDesc*> visited;
  while (!work.empty()) {
    TxDesc* cur = work.back();
    work.pop_back();
    if (cur == target) return true;
    bool seen = false;
    for (const TxDesc* q : visited) seen |= (q == cur);
    if (seen) continue;
    visited.push_back(cur);
    if (static_cast<int>(visited.size()) > max_nodes) return false;
    // Only live transactions are expanded: a committed predecessor's
    // ordering constraints were folded into timestamps by the merge rules.
    const runtime::TxStatus st = cur->status();
    if (st != runtime::TxStatus::kActive &&
        st != runtime::TxStatus::kCommitting) {
      continue;
    }
    for (TxDesc* p : cur->preds_snapshot()) work.push_back(p);
  }
  return false;
}

// ---------------------------------------------------------------------------
// ThreadCtx
// ---------------------------------------------------------------------------

ThreadCtx::ThreadCtx(Runtime& rt, util::ThreadRegistry::Registration reg)
    : rt_(rt), reg_(std::move(reg)), tx_(*this), vcp_(rt.domain_.zero()) {}

ThreadCtx::~ThreadCtx() {
  if (in_transaction()) abort_attempt();
}

Tx& ThreadCtx::begin() {
  if (in_transaction()) abort_attempt();
  tx_.desc_ = rt_.allocate_desc(slot());
  tx_.desc_->ct = vcp_;  // T.ct starts from the thread's last committed stamp
  tx_.desc_->set_start_ticks(
      rt_.ticks_.value.fetch_add(1, std::memory_order_relaxed));
  epoch_guard_ = rt_.epochs_.pin_guard(slot());
  tx_.read_set_.clear();
  tx_.write_set_.clear();
  if (rt_.recorder_.enabled()) {
    tx_.rec_ = history::TxRecord{};
    tx_.rec_.tx_id = tx_.desc_->id();
    tx_.rec_.thread_slot = slot();
    tx_.rec_.begin_seq = rt_.recorder_.tick();
  }
  return tx_;
}

void ThreadCtx::release_ownerships() {
  for (auto& w : tx_.write_set_) {
    rt_.store_.release(*w.obj, tx_.desc_, slot());
  }
}

void ThreadCtx::finish_attempt(bool committed) {
  if (rt_.recorder_.enabled()) {
    tx_.rec_.committed = committed;
    tx_.rec_.end_seq = rt_.recorder_.tick();
    if (committed) {
      tx_.rec_.stamp.clear();
      for (int k = 0; k < tx_.desc_->ct.dimension(); ++k) {
        tx_.rec_.stamp.push_back(tx_.desc_->ct[k]);
      }
    }
    rt_.recorder_.record(slot(), std::move(tx_.rec_));
  }
  tx_.desc_ = nullptr;  // retained until a quiescent trim, not freed here
  epoch_guard_ = util::EpochManager::Guard();
}

void ThreadCtx::abort_attempt() {
  tx_.desc_->finish_abort();
  release_ownerships();
  rt_.stats_.add(slot(), util::Counter::kAborts);
  finish_attempt(false);
}

void ThreadCtx::commit() {
  Tx& tx = tx_;
  TxDesc* d = tx.desc_;
  const int s = slot();

  if (!d->begin_commit()) {
    abort_attempt();
    throw TxAborted{};
  }

  {
    std::lock_guard<std::mutex> commit_lock(rt_.commit_mutex_);

    // Anti-dependencies: scan the visible readers of every version we are
    // superseding. Committed readers order themselves before us via
    // timestamp merge; live readers become predecessor edges and are
    // carried on the new version as its past readers.
    for (auto& w : tx.write_set_) {
      Version* base = w.tentative->prev.load(std::memory_order_relaxed);
      std::vector<TxDesc*> snapshot;
      {
        std::lock_guard<util::SpinLock> lk(base->readers_lock);
        auto& rs = base->readers;
        snapshot.assign(rs.begin(), rs.end());
        // Drop only *aborted* readers here. Committed readers must stay on
        // the list until a successor commit actually captures their stamp:
        // if we compacted them now and then failed validation, the next
        // writer of this version would never merge their timestamps and
        // could commit a non-serializable anti-dependency cycle.
        rs.erase(std::remove_if(rs.begin(), rs.end(),
                                [](TxDesc* r) {
                                  return r->status() ==
                                         runtime::TxStatus::kAborted;
                                }),
                 rs.end());
      }
      // Readers of the superseded version must precede us; the version's
      // carried past readers too (§4.2: "information about past readers is
      // carried along causal chains"). note_predecessor folds committed
      // ones (and their pending constraints, transitively) into our stamp
      // and records live ones as predecessor edges.
      for (TxDesc* r : snapshot) tx.note_predecessor(r);
      for (TxDesc* pr : base->past_readers) tx.note_predecessor(pr);
      // Readers freed by a quiescent trim live on as the version's folded
      // stamp (see absorb_past_readers for the dimension guard).
      if (base->folded.dimension() != 0) d->ct.merge(base->folded);
    }

    // Re-process predecessors recorded earlier (at open time): any that
    // committed meanwhile fold into the timestamp now.
    for (TxDesc* p : d->preds_snapshot()) tx.note_predecessor(p);

    // CS-STM validation (Algorithm 1, lines 20-26) on the merged stamp.
    bool valid = true;
    for (const auto& r : tx.read_set_) {
      Version* cur = rt_.resolve(*r.obj, d, OnCommitting::kFail, s);
      if (cur == nullptr) {
        valid = false;
        break;
      }
      if (cur == r.version) continue;
      Version* succ = Store::successor_of(cur, r.version);
      if (succ == nullptr) {
        // Pruned: conservative abort.
        rt_.store_.note_too_old(*r.obj, s);
        valid = false;
        break;
      }
      // ≼, not ≺: see the matching comment in cs.hpp — equality means we
      // observed the successor's effects through another object.
      const timebase::Order ord = succ->ct.compare(d->ct);
      if (ord == timebase::Order::kBefore || ord == timebase::Order::kEqual) {
        valid = false;
        break;
      }
    }
    if (!valid) {
      rt_.stats_.add(s, util::Counter::kValidationFails);
      abort_attempt();
      throw TxAborted{};
    }

    // Precedence-cycle check among live transactions: if any live
    // predecessor transitively requires *us* before *it*, the two orders
    // are contradictory — "a conflict occurs if we detect a cycle". The
    // first committer wins: kill the still-active cycle partner, falling
    // back to self-abort if it is already mid-commit.
    for (TxDesc* p : d->preds_snapshot()) {
      const auto st = p->status();
      if (st != runtime::TxStatus::kActive &&
          st != runtime::TxStatus::kCommitting) {
        continue;
      }
      if (p != d && Runtime::reaches(p, d, 4096)) {
        if (p->abort_by_enemy()) {
          rt_.stats_.add(s, util::Counter::kCmKills);
          continue;  // the edge through p is now dead
        }
        rt_.stats_.add(s, util::Counter::kValidationFails);
        abort_attempt();
        throw TxAborted{};
      }
    }

    if (rt_.recorder_.enabled()) {
      tx.rec_.vstamp.clear();
      for (int k = 0; k < d->ct.dimension(); ++k) {
        tx.rec_.vstamp.push_back(d->ct[k]);  // pre-bump stamp
      }
    }
    if (!tx.write_set_.empty()) {
      rt_.domain_.advance(s, d->ct);
      // Every ordering obligation we still carry against live transactions
      // travels on the published versions as their past-readers list, so
      // later accessors inherit it (whether those transactions end up
      // committing before or after us).
      std::vector<TxDesc*> live_preds;
      for (TxDesc* p : d->preds_snapshot()) {
        const auto st = p->status();
        if (st == runtime::TxStatus::kActive ||
            st == runtime::TxStatus::kCommitting) {
          live_preds.push_back(p);
        }
      }
      for (auto& w : tx.write_set_) {
        w.tentative->ct = d->ct;
        w.tentative->past_readers = live_preds;
        if (rt_.recorder_.enabled()) {
          const Version* base = w.tentative->prev.load(std::memory_order_relaxed);
          tx.rec_.writes.push_back({w.obj->oid, w.tentative->vid, base->vid});
        }
      }
      // The commit is now certain: every committed reader of the versions
      // we supersede has been folded into our stamp, so their list entries
      // are no longer needed (their constraint travels with the new
      // version's timestamp from here on).
      for (auto& w : tx.write_set_) {
        Version* base = w.tentative->prev.load(std::memory_order_relaxed);
        std::lock_guard<util::SpinLock> lk(base->readers_lock);
        auto& rs = base->readers;
        rs.erase(std::remove_if(rs.begin(), rs.end(),
                                [](TxDesc* r) {
                                  const auto st = r->status();
                                  return st == runtime::TxStatus::kCommitted ||
                                         st == runtime::TxStatus::kAborted;
                                }),
                 rs.end());
      }
    }
    d->finish_commit();
    for (auto& w : tx.write_set_) {
      rt_.store_.release(*w.obj, d, s);
    }
  }

  vcp_ = d->ct;
  rt_.stats_.add(s, util::Counter::kCommits);
  finish_attempt(true);
}

// ---------------------------------------------------------------------------
// Tx
// ---------------------------------------------------------------------------

void Tx::abort() {
  ctx_.abort_attempt();
  throw TxAborted{};
}

void Tx::fail(util::Counter reason) {
  ctx_.rt_.stats_.add(ctx_.slot(), reason);
  ctx_.abort_attempt();
  throw TxAborted{};
}

void Tx::note_predecessor(TxDesc* p) {
  if (p == desc_) return;
  // Worklist over committed transactions: absorbing a committed
  // predecessor means taking its stamp AND inheriting every ordering
  // constraint it was still carrying (predecessors that were live when it
  // committed). Without the transitive part, a chain
  //   R (live) ≺ W1 (committed) ≺ W2 (committed) ≺ us
  // would lose the "R before us" obligation and admit a cycle once R
  // commits.
  std::vector<TxDesc*> work;
  std::vector<TxDesc*> visited;
  work.push_back(p);
  while (!work.empty()) {
    TxDesc* cur = work.back();
    work.pop_back();
    if (cur == desc_) continue;
    bool seen = false;
    for (TxDesc* q : visited) seen |= (q == cur);
    if (seen) continue;
    visited.push_back(cur);
    switch (cur->status()) {
      case runtime::TxStatus::kAborted:
        break;
      case runtime::TxStatus::kCommitted:
        // "Make sure that the new version ... has a timestamp strictly
        // greater than that of the committed reading transaction."
        desc_->ct.merge(cur->ct);
        for (TxDesc* q : cur->preds_snapshot()) work.push_back(q);
        break;
      default:
        desc_->add_pred(cur);
        break;
    }
  }
}

void Tx::absorb_past_readers(Version* v) {
  // Stamps folded by a quiescent trim stand in for freed readers'
  // descriptors (dimension 0 = no trim has touched this version; merge
  // indexes `other` by our dimension, so the guard is load-bearing).
  if (v->folded.dimension() != 0) desc_->ct.merge(v->folded);
  for (TxDesc* pr : v->past_readers) note_predecessor(pr);
}

const runtime::Payload& Tx::read_object(Object& o) {
  for (auto& w : write_set_) {
    if (w.obj == &o) return *w.tentative->data;
  }
  for (auto& r : read_set_) {
    if (r.obj == &o) return *r.version->data;  // repeat read: same version
  }
  Runtime& rt = ctx_.rt_;
  const int s = ctx_.slot();
  desc_->add_work();
  rt.stats_.add(s, util::Counter::kReads);

  for (;;) {
    Version* v = rt.resolve(o, desc_, OnCommitting::kWait, s);
    desc_->ct.merge(v->ct);
    absorb_past_readers(v);
    {
      std::lock_guard<util::SpinLock> lk(v->readers_lock);
      v->readers.push_back(desc_);
    }
    // Visibility handshake: a writer that scanned v's readers before our
    // insertion must have published a successor by now; re-checking the
    // current version guarantees either the writer saw us or we see its
    // version and retry.
    Version* recheck = rt.resolve(o, desc_, OnCommitting::kWait, s);
    if (recheck == v) {
      read_set_.push_back({&o, v});
      if (rt.recorder_.enabled()) rec_.reads.push_back({o.oid, v->vid});
      return *v->data;
    }
    std::lock_guard<util::SpinLock> lk(v->readers_lock);
    auto& rs = v->readers;
    rs.erase(std::remove(rs.begin(), rs.end(), desc_), rs.end());
  }
}

runtime::Payload& Tx::write_object(Object& o) {
  for (auto& w : write_set_) {
    if (w.obj == &o) return *w.tentative->data;
  }
  Runtime& rt = ctx_.rt_;
  const int s = ctx_.slot();

  util::Backoff bo;
  std::uint32_t attempt = 0;
  for (;;) {
    if (fault::poke(fault::Site::kSstmAcquire) == fault::Effect::kAbort) {
      fail(util::Counter::kAborts);
    }
    Locator* l = o.loc.load(std::memory_order_acquire);
    if (l->writer != nullptr && l->writer != desc_) {
      switch (l->writer->status()) {
        case runtime::TxStatus::kCommitted:
        case runtime::TxStatus::kAborted:
          rt.settle(o, l, s);
          continue;
        case runtime::TxStatus::kCommitting:
          bo.pause();
          continue;
        case runtime::TxStatus::kActive: {
          const cm::Decision dec =
              rt.cm_->arbitrate(*desc_, *l->writer, attempt++);
          if (dec == cm::Decision::kAbortOther) {
            if (l->writer->abort_by_enemy()) {
              rt.stats_.add(s, util::Counter::kCmKills);
              rt.settle(o, l, s);
            }
            continue;
          }
          if (dec == cm::Decision::kAbortSelf) fail(util::Counter::kAborts);
          rt.stats_.add(s, util::Counter::kCmWaits);
          desc_->set_waiting(true);
          bo.pause();
          desc_->set_waiting(false);
          continue;
        }
      }
      continue;
    }
    Version* base = l->committed;
    desc_->ct.merge(base->ct);
    absorb_past_readers(base);
    // Pool-backed stamp storage, mirroring cs.hpp: keeps the update path
    // free of hidden per-commit heap mallocs.
    Version* tent = rt.store_.clone_version(
        s, *base->data,
        rt.domain_.zero_in(rt.pool_.enabled() ? &rt.pool_ : nullptr, s));
    tent->prev.store(base, std::memory_order_relaxed);
    if (rt.recorder_.enabled()) tent->vid = rt.recorder_.new_version_id();
    if (rt.store_.install(o, l, desc_, tent, s)) {
      write_set_.push_back({&o, tent});
      desc_->add_work();
      rt.stats_.add(s, util::Counter::kWrites);
      return *tent->data;
    }
    rt.store_.discard_version(s, tent);
  }
}

}  // namespace zstm::sstm
