// S-STM — the serializable STM of §4.2.
//
// S-STM extends CS-STM so that *all* update transactions are perceived in
// the same order by all processors, not only those updating the same
// object. The paper specifies the ingredients but omits its implementation
// details ("quite intricate"); we implement the stated specification:
//
//  * Visible reads: a reading transaction atomically inserts itself into a
//    reader list attached to the version it read.
//  * When an update transaction commits, it scans the reader lists of the
//    versions it supersedes: committed readers' final timestamps are merged
//    into its own (the new version's timestamp becomes strictly greater
//    than that of any committed past reader); still-active readers are
//    recorded as predecessor edges and carried on the new version as its
//    "past readers" list, propagating anti-dependency information along
//    causal chains.
//  * A transaction that reads (or overwrites) a version merges the final
//    timestamps of that version's committed past readers and records
//    still-active ones as predecessors.
//  * At commit, after merging, CS-STM's validation runs (a read version
//    with a committed successor whose stamp strictly precedes T.ct ⇒
//    abort), plus a cycle check over the active-transaction precedence
//    graph: two active transactions that must each precede the other
//    conflict, and one aborts.
//
// Deviations from the paper's (unpublished) implementation, recorded in
// DESIGN.md §4: update-commit validation+publication runs under a global
// commit mutex instead of a CAS+helping protocol (publication itself is
// still the single status CAS), reader lists are guarded by per-version
// spin locks, and transaction descriptors are retained until a quiescent
// trim (Runtime::trim_descriptors) folds every reader-list reference into
// per-version stamps, so the lists never dangle. These are exactly the
// kind of costs the paper attributes to S-STM ("the runtime overhead ...
// can be deemed prohibitive"), which bench_cs_overhead quantifies.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "cm/contention_manager.hpp"
#include "history/recorder.hpp"
#include "object/object_store.hpp"
#include "runtime/payload.hpp"
#include "runtime/run_result.hpp"
#include "runtime/txdesc.hpp"
#include "timebase/sharded_clock.hpp"
#include "timebase/vector_clock.hpp"
#include "util/backoff.hpp"
#include "util/ebr.hpp"
#include "util/spin_lock.hpp"
#include "util/stats.hpp"
#include "util/thread_registry.hpp"

namespace zstm::sstm {

struct TxAborted {};

struct Config {
  int max_threads = 36;
  /// Committed versions retained per object (starting bound in adaptive
  /// mode).
  int versions_kept = 4;
  /// Version retention (paper §4.4); see lsa::Config for the semantics.
  object::RetentionMode retention_mode = object::RetentionMode::kFixed;
  int retention_min = 1;
  int retention_max = 64;
  int retention_decay_period = 64;
  cm::Policy cm_policy = cm::Policy::kPolite;
  /// Slab-pool node allocation (DESIGN.md §7); ZSTM_POOL=0 overrides.
  /// Descriptors are pool-backed and retained until a quiescent
  /// Runtime::trim_descriptors() proves no reader list references them.
  bool use_node_pool = true;
  bool record_history = false;
  /// Topology-sharded transaction ids (identity only; serializability
  /// order lives in the vector clocks). ZSTM_SHARDED_IDS=0 overrides.
  bool sharded_tx_ids = true;
  /// EBR: a slot attempts a global epoch advance every Nth retire.
  int ebr_collect_period = 64;
};

class Runtime;
class ThreadCtx;
class Tx;

class TxDesc final : public runtime::TxDescBase {
 public:
  TxDesc(std::uint64_t id, int slot, timebase::VcStamp initial)
      : TxDescBase(id, slot, runtime::TxClass::kShort), ct(std::move(initial)) {}

  /// Tentative commit timestamp; immutable once status() == kCommitted.
  timebase::VcStamp ct;

  /// Transactions that must serialize before this one (recorded while they
  /// were active). Guarded by `preds_lock`.
  util::SpinLock preds_lock;
  std::vector<TxDesc*> preds;

  void add_pred(TxDesc* p) {
    std::lock_guard<util::SpinLock> lk(preds_lock);
    for (TxDesc* q : preds) {
      if (q == p) return;
    }
    preds.push_back(p);
  }
  std::vector<TxDesc*> preds_snapshot() {
    std::lock_guard<util::SpinLock> lk(preds_lock);
    return preds;
  }
};

/// Per-version metadata on the shared substrate: the vector-clock commit
/// stamp plus S-STM's visible-reader machinery.
struct VersionMeta {
  explicit VersionMeta(timebase::VcStamp stamp) : ct(std::move(stamp)) {}

  timebase::VcStamp ct;  // written pre-publication by the committing writer

  /// Active transactions that had read the *previous* version(s) when this
  /// version's writer committed (§4.2). Written pre-publication; immutable
  /// afterwards.
  std::vector<TxDesc*> past_readers;

  /// Visible readers of this version. Guarded by `readers_lock`.
  util::SpinLock readers_lock;
  std::vector<TxDesc*> readers;

  /// Ordering constraints of finished readers, folded into a single stamp
  /// by Runtime::trim_descriptors() before their descriptors are freed.
  /// Dimension 0 until the first trim touches this version (VcStamp::merge
  /// indexes `other` by *this* stamp's dimension, so consumers must guard
  /// on dimension() != 0). Written only at quiescence; read without
  /// locking by transactions, which is safe because trims only run when no
  /// transaction is in flight.
  timebase::VcStamp folded;
};

struct StoreTraits {
  using Desc = TxDesc;
  using VersionMeta = sstm::VersionMeta;
  using ObjectMeta = object::NoMeta;
};

using Store = object::ObjectStore<StoreTraits>;
using Version = Store::Version;
using Locator = Store::Locator;
using Object = Store::Object;
using object::OnCommitting;

template <typename T>
using Var = Store::Var<T>;

struct ReadEntry {
  Object* obj;
  Version* version;
};
struct WriteEntry {
  Object* obj;
  Version* tentative;
};

class Tx {
 public:
  template <typename T>
  const T& read(const Var<T>& var) {
    return runtime::payload_as<T>(read_object(*var.object()));
  }
  template <typename T>
  T& write(Var<T>& var) {
    return runtime::payload_as<T>(write_object(*var.object()));
  }
  template <typename T>
  void write(Var<T>& var, T value) {
    write(var) = std::move(value);
  }

  [[noreturn]] void abort();

  TxDesc* descriptor() const { return desc_; }
  const timebase::VcStamp& tentative_ct() const { return desc_->ct; }

  const runtime::Payload& read_object(Object& o);
  runtime::Payload& write_object(Object& o);

 private:
  friend class ThreadCtx;
  friend class Runtime;
  explicit Tx(ThreadCtx& ctx) : ctx_(ctx) {}

  [[noreturn]] void fail(util::Counter reason);
  /// Merge committed past readers of `v`, record active ones as preds.
  void absorb_past_readers(Version* v);
  /// Record that `p` must serialize before this transaction: live `p`
  /// becomes a predecessor edge; committed `p` is absorbed transitively
  /// (its stamp, plus the pending constraints of every committed
  /// transaction reachable through its predecessor edges — a committed
  /// transaction's order may hinge on predecessors that were still active
  /// when it committed, so its stamp alone does not carry them).
  void note_predecessor(TxDesc* p);

  ThreadCtx& ctx_;
  TxDesc* desc_ = nullptr;
  std::vector<ReadEntry> read_set_;
  std::vector<WriteEntry> write_set_;
  history::TxRecord rec_;
};

class ThreadCtx {
 public:
  ~ThreadCtx();
  ThreadCtx(const ThreadCtx&) = delete;
  ThreadCtx& operator=(const ThreadCtx&) = delete;

  Tx& begin();
  void commit();
  void abort_attempt();

  bool in_transaction() const { return tx_.desc_ != nullptr; }
  int slot() const { return reg_.slot(); }
  const timebase::VcStamp& last_committed() const { return vcp_; }

 private:
  friend class Runtime;
  friend class Tx;
  ThreadCtx(Runtime& rt, util::ThreadRegistry::Registration reg);

  void release_ownerships();
  void finish_attempt(bool committed);

  Runtime& rt_;
  util::ThreadRegistry::Registration reg_;
  util::EpochManager::Guard epoch_guard_;
  Tx tx_;
  timebase::VcStamp vcp_;
};

class Runtime {
 public:
  explicit Runtime(Config cfg = {});
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  template <typename T>
  Var<T> make_var(T initial) {
    return store_.template make_var<T>(std::move(initial), domain_.zero());
  }

  std::unique_ptr<ThreadCtx> attach();

  /// Retry loop; returns {attempts, committed = true} (see
  /// runtime/run_result.hpp for the convention).
  template <typename F>
  runtime::RunResult run(ThreadCtx& ctx, F&& body) {
    util::Backoff bo;
    for (std::uint32_t attempt = 1;; ++attempt) {
      Tx& tx = ctx.begin();
      try {
        body(tx);
        ctx.commit();
        return {attempt, true};
      } catch (const TxAborted&) {
        bo.pause();
      } catch (...) {
        // Foreign exception out of the body: release every ownership the
        // attempt holds before letting it propagate.
        if (ctx.in_transaction()) ctx.abort_attempt();
        throw;
      }
    }
  }

  /// Type-erased variable creation hook for the zstm::api façade.
  Object* allocate_object(runtime::Payload* initial) {
    return store_.allocate(initial, domain_.zero());
  }

  const Config& config() const { return cfg_; }
  util::StatsSnapshot stats() const { return stats_.snapshot(); }
  void reset_stats() { stats_.reset(); }
  history::History collect_history() const { return recorder_.collect(); }

  /// Quiescence-based descriptor trim (the carried-over S-STM leak,
  /// DESIGN.md §11): when no transaction is in flight, fold every finished
  /// reader's ordering constraint into its version's `folded` stamp, clear
  /// the reader/past-reader lists, settle any leftover locators, and
  /// return the descriptors to the node pool. Returns the number of
  /// descriptors freed; 0 if the runtime was not quiescent (an attempt was
  /// live — the call is then a safe no-op and may be retried later).
  std::size_t trim_descriptors();
  /// Retained (not yet trimmed) descriptor count — test introspection.
  std::size_t descriptor_count();

 private:
  friend class ThreadCtx;
  friend class Tx;

  void settle(Object& o, Locator* seen, int slot) {
    store_.settle(o, seen, slot);
  }
  Version* resolve(Object& o, const TxDesc* self, OnCommitting mode,
                   int slot) {
    return store_.resolve(o, self, mode, slot);
  }

  TxDesc* allocate_desc(int slot);

  /// True if `target` is reachable from `from` along predecessor edges of
  /// live (active/committing) transactions.
  static bool reaches(TxDesc* from, const TxDesc* target, int max_nodes);

  Config cfg_;
  timebase::VcDomain domain_;
  util::ThreadRegistry registry_;
  util::StatsDomain stats_;
  // Before the EpochManager: its drain returns nodes to the pool.
  object::NodePool pool_;
  util::EpochManager epochs_;
  history::Recorder recorder_;
  std::unique_ptr<cm::ContentionManager> cm_;
  util::PaddedCounter tx_ids_;
  util::PaddedCounter ticks_;
  timebase::ShardedClock id_clock_;
  bool sharded_ids_;

  /// Pool-backed descriptor storage. Reader and past-reader lists may
  /// reference a descriptor long after its transaction finished, so
  /// descriptors are retained until a quiescent trim_descriptors() folds
  /// every such reference into per-version stamps (or until teardown).
  struct DescArena {
    explicit DescArena(object::NodePool& p) : pool(&p) {}
    ~DescArena() {
      for (TxDesc* d : live) pool->destroy(-1, d);
    }
    object::NodePool* pool;
    std::deque<TxDesc*> live;
  };

  std::mutex descs_mutex_;
  /// Declared after pool_ (frees into it) and before store_ (the store's
  /// destructor reads locator writers' status, so the descriptors must
  /// still be alive when it runs).
  DescArena descs_{pool_};

  /// Serializes update-commit validation + publication (see header).
  std::mutex commit_mutex_;

  Store store_;
};

}  // namespace zstm::sstm
