// The versioned-object substrate shared by every runtime in this library.
//
// DESIGN.md §1 prescribes one object model for all four STMs (DSTM-style
// locators [4], as the paper requires): a transactional object points to an
// immutable Locator {writer, tentative, committed}; the logically current
// version is `tentative` iff the writer's status is kCommitted, and a
// transaction's whole write set becomes visible atomically when its status
// word flips — the single-CAS commit. Committed versions form a newest-first
// chain whose retention is bounded by an ObjectStore policy (paper §4.4).
//
// The structures here are parameterized over per-runtime metadata instead of
// being re-declared per runtime:
//
//   * Version<Meta>       — chain node; Meta carries the runtime's stamp
//                           (LSA scalar ts + Z-STM zone, CS-STM clock-domain
//                           ct, S-STM ct + reader lists).
//   * Locator<Desc, Ver>  — the immutable DSTM locator triple.
//   * Object<Meta, Loc>   — one atomic locator pointer, the object id, the
//                           adaptive-retention state, and per-runtime object
//                           metadata (Z-STM's zone stamp `zc`).
//   * Var<T, Obj>         — the typed user-facing handle.
//
// ObjectStore (object_store.hpp) owns the objects and implements the
// install/settle/resolve/prune protocol over these types.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>

#include "runtime/payload.hpp"

namespace zstm::object {

/// Inline payload capacity of a Version: a vtable pointer plus one cache
/// line of value, so any trivially-copyable T up to 64 bytes is stored
/// inside the Version and the virtual clone() heap allocation is bypassed
/// entirely (DESIGN.md §7).
inline constexpr std::size_t kPayloadSboBytes = 64 + sizeof(void*);

/// A committed (or tentative) object version. `vid` and the Meta fields are
/// written by the owning transaction before its commit CAS and read by
/// others only after they observe kCommitted (release/acquire through the
/// writer's status word).
template <typename Meta>
struct Version : Meta {
  /// Adopt a heap payload (ownership transfers; freed with delete).
  template <typename... MetaArgs>
  explicit Version(runtime::Payload* payload, MetaArgs&&... meta_args)
      : Meta(std::forward<MetaArgs>(meta_args)...), data(payload) {}

  /// Clone `c.src`: into the inline buffer when it qualifies (trivially
  /// copyable, fits), else the type-erased heap fallback.
  template <typename... MetaArgs>
  explicit Version(runtime::ClonePayload c, MetaArgs&&... meta_args)
      : Meta(std::forward<MetaArgs>(meta_args)...) {
    data = c.src.clone_into(sbo_, sizeof sbo_);
    if (data == nullptr) data = c.src.clone();
  }

  ~Version() {
    if (payload_inline()) {
      data->~Payload();
    } else {
      delete data;
    }
  }

  Version(const Version&) = delete;
  Version& operator=(const Version&) = delete;

  bool payload_inline() const {
    return static_cast<const void*>(data) == static_cast<const void*>(sbo_);
  }

  runtime::Payload* data;
  std::uint64_t vid = 0;  // history version id (0 when recording disabled)
  /// Next-older committed version; atomically severed when pruning.
  std::atomic<Version*> prev{nullptr};

 private:
  alignas(runtime::Payload::kInlineAlign) unsigned char sbo_[kPayloadSboBytes];
};

/// Immutable locator (DSTM [4]). The logically current committed version is
/// `tentative` if `writer` is non-null and committed, otherwise `committed`.
template <typename Desc, typename Ver>
struct Locator {
  Desc* writer = nullptr;
  Ver* tentative = nullptr;
  Ver* committed = nullptr;
};

/// Transactional object: one atomic locator pointer, the object id, the
/// per-object retention state (ObjectStore's adaptive mode), and whatever
/// per-runtime metadata Meta adds (e.g. Z-STM's zone stamp `zc`).
template <typename Meta, typename Loc>
struct Object : Meta {
  Object() = default;
  Object(const Object&) = delete;
  Object& operator=(const Object&) = delete;

  std::atomic<Loc*> loc{nullptr};
  std::uint64_t oid = 0;

  /// Current version-retention bound (adaptive mode; fixed mode ignores
  /// it). Initialized by ObjectStore::allocate.
  std::atomic<std::uint32_t> keep{0};
  /// Prunes since the last too-old abort; drives adaptive decay.
  std::atomic<std::uint32_t> quiet{0};
};

/// Empty per-runtime metadata (runtimes that need nothing extra).
struct NoMeta {};

/// Typed handle to a transactional object. Cheap to copy; the object is
/// owned by the ObjectStore (and thus the Runtime) that created it.
template <typename T, typename Obj>
class Var {
 public:
  Var() = default;
  Obj* object() const { return obj_; }

 private:
  template <typename Traits>
  friend class ObjectStore;
  explicit Var(Obj* obj) : obj_(obj) {}
  Obj* obj_ = nullptr;
};

}  // namespace zstm::object
