// ObjectStore — ownership and protocol core of the versioned-object
// substrate (versioned.hpp), shared by all four runtimes.
//
// One store per runtime owns every transactional object for the runtime's
// lifetime and centralizes the logic that used to be copy-pasted per
// runtime:
//
//   * allocate / make_var  — object + initial version + settled locator.
//   * resolve              — settle-on-open: find the logically current
//                            committed version, settling finished writers'
//                            locators along the way.
//   * settle               — replace a finished writer's locator with a
//                            settled one (CAS; loser frees its copy).
//   * install              — CAS a fresh writer locator in (encounter-time
//                            ownership acquisition); memory order is a
//                            parameter because Z-STM's zone protocol needs
//                            the install globally ordered (seq_cst Dekker
//                            pair, DESIGN.md §5.1).
//   * prune                — bound the committed chain, retiring detached
//                            suffixes through EBR.
//   * successor_of         — chain walking: the immediate successor of a
//                            read version (validation / snapshot-extension
//                            helper).
//
// All version/locator retirement flows through the one EpochManager passed
// at construction — the single EBR integration point (DESIGN.md §3,
// substitutions table: EBR stands in for the paper's JVM garbage
// collector).
//
// Memory (DESIGN.md §7): every Version and Locator is carved from the
// NodePool passed at construction, and retirement returns nodes to the
// pool's per-slot free lists instead of the global heap. Speculative
// locators (settle/install CAS candidates) additionally bounce through a
// per-slot spare cache so a failed CAS costs a field rewrite, not a
// delete+new. With the pool disabled (ZSTM_POOL=0) everything degrades to
// plain new/delete.
//
// Version retention (paper §4.4) is a per-store policy. kFixed keeps the
// classic global bound (Config::versions_kept). kAdaptive replaces it with
// a *per-object* bound that doubles when a transaction aborts because the
// version it needed was already pruned (note_too_old) and decays by one
// after `decay_period` consecutive prunes without such an abort — objects
// that long transactions scan grow deep histories, write-only hot spots
// shrink to nearly single-version storage.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "fault/failpoint.hpp"
#include "object/node_pool.hpp"
#include "object/versioned.hpp"
#include "runtime/payload.hpp"
#include "runtime/txdesc.hpp"
#include "util/backoff.hpp"
#include "util/ebr.hpp"
#include "util/stats.hpp"

namespace zstm::object {

/// How to treat an object whose writer is mid-commit (kCommitting): reads
/// wait (the window is short and its stamp may already be drawn); commit
/// validation fails fast instead, which prevents two committing
/// transactions from waiting on each other.
enum class OnCommitting { kWait, kFail };

enum class RetentionMode {
  kFixed,     ///< global bound: Config::versions_kept
  kAdaptive,  ///< per-object bound; grows on too-old aborts, decays when quiet
};

struct RetentionPolicy {
  RetentionMode mode = RetentionMode::kFixed;
  /// Bound in kFixed mode; initial per-object bound in kAdaptive mode.
  int initial = 8;
  /// Adaptive floor/ceiling for the per-object bound.
  int min_kept = 1;
  int max_kept = 64;
  /// Adaptive decay: consecutive prunes without a too-old abort before the
  /// bound shrinks by one.
  int decay_period = 64;
};

/// Builds the store policy from the retention knobs every runtime Config in
/// this library shares (versions_kept, retention_mode, retention_min/max,
/// retention_decay_period).
template <typename Cfg>
RetentionPolicy retention_policy(const Cfg& cfg) {
  return RetentionPolicy{cfg.retention_mode, cfg.versions_kept,
                         cfg.retention_min, cfg.retention_max,
                         cfg.retention_decay_period};
}

/// Traits must provide:
///   Desc        — the runtime's transaction descriptor (derives
///                 runtime::TxDescBase; only status() is used here).
///   VersionMeta — per-version metadata (aggregate; brace-initialized from
///                 the trailing arguments of allocate/make_var).
///   ObjectMeta  — per-object metadata (default-constructed).
template <typename Traits>
class ObjectStore {
 public:
  using Desc = typename Traits::Desc;
  using Version = object::Version<typename Traits::VersionMeta>;
  using Locator = object::Locator<Desc, Version>;
  using Object = object::Object<typename Traits::ObjectMeta, Locator>;
  template <typename T>
  using Var = object::Var<T, Object>;

  ObjectStore(NodePool& pool, util::EpochManager& epochs,
              util::StatsDomain& stats, RetentionPolicy retention)
      : pool_(pool),
        epochs_(epochs),
        stats_(stats),
        retention_(retention),
        spare_(static_cast<std::size_t>(pool.capacity())) {
    // Normalize so the unsigned bound arithmetic below stays sane: at least
    // one version is always kept (matching the old per-runtime prune loops,
    // which degraded to single-version for versions_kept <= 0).
    if (retention_.min_kept < 1) retention_.min_kept = 1;
    if (retention_.initial < retention_.min_kept) {
      retention_.initial = retention_.min_kept;
    }
    if (retention_.max_kept < retention_.initial) {
      retention_.max_kept = retention_.initial;
    }
    if (retention_.decay_period < 1) retention_.decay_period = 1;
  }

  ObjectStore(const ObjectStore&) = delete;
  ObjectStore& operator=(const ObjectStore&) = delete;

  /// Single-threaded teardown: all worker threads must be detached. Retired
  /// locators/versions are freed by the EpochManager's destructor
  /// (drain_all) — disjoint from the live structures destroyed here. The
  /// NodePool outlives both (declared before the EpochManager in every
  /// runtime), so returning nodes here is safe.
  ~ObjectStore() {
    for (auto& padded : spare_) {
      if (padded.value != nullptr) pool_.destroy(-1, padded.value);
    }
    for (auto& obj : objects_) {
      Locator* l = obj->loc.load(std::memory_order_relaxed);
      if (l == nullptr) continue;
      if (l->writer != nullptr && l->tentative != nullptr) {
        if (l->writer->status(std::memory_order_relaxed) ==
            runtime::TxStatus::kCommitted) {
          // The tentative version heads the chain (its prev is `committed`).
          free_chain_now(l->tentative);
        } else {
          pool_.destroy(-1, l->tentative);
          free_chain_now(l->committed);
        }
      } else {
        free_chain_now(l->committed);
      }
      pool_.destroy(-1, l);
    }
  }

  /// Create an object whose initial version holds `initial` and whose
  /// version metadata is brace-initialized from `meta_args`. Callers are
  /// typically not attached to a slot, so the nodes are individually
  /// allocated (cold path) but still pool-tagged for uniform release.
  template <typename... MetaArgs>
  Object* allocate(runtime::Payload* initial, MetaArgs&&... meta_args) {
    // ts/ct = zero-state, vid = 0: the initial state.
    auto* version =
        pool_.create<Version>(-1, initial, std::forward<MetaArgs>(meta_args)...);
    auto* locator = pool_.create<Locator>(-1);
    locator->committed = version;
    auto obj = std::make_unique<Object>();
    obj->loc.store(locator, std::memory_order_release);
    obj->oid = object_ids_.value.fetch_add(1, std::memory_order_relaxed) + 1;
    obj->keep.store(static_cast<std::uint32_t>(retention_.initial),
                    std::memory_order_relaxed);
    Object* raw = obj.get();
    {
      std::lock_guard<std::mutex> lk(objects_mutex_);
      objects_.push_back(std::move(obj));
    }
    return raw;
  }

  /// Visit every object ever allocated by this store (quiescence hooks:
  /// S-STM's descriptor trim settles all locators through here). Holds the
  /// allocation mutex for the duration — callers must be off the hot path.
  template <typename F>
  void for_each_object(F&& fn) {
    std::lock_guard<std::mutex> lk(objects_mutex_);
    for (auto& obj : objects_) fn(*obj);
  }

  template <typename T, typename... MetaArgs>
  Var<T> make_var(T initial, MetaArgs&&... meta_args) {
    Object* o = allocate(new runtime::TypedPayload<T>(std::move(initial)),
                         std::forward<MetaArgs>(meta_args)...);
    return Var<T>(o);
  }

  /// Resolve the logically current committed version of `o`, settling
  /// finished writers' locators along the way. Returns nullptr only in
  /// OnCommitting::kFail mode when a foreign writer is mid-commit.
  /// `self` (may be null) marks the caller's descriptor: an object whose
  /// locator the caller owns resolves to its pre-write committed version.
  Version* resolve(Object& o, const Desc* self, OnCommitting mode, int slot) {
    util::Backoff bo;
    for (;;) {
      Locator* l = o.loc.load(std::memory_order_acquire);
      if (l->writer == nullptr || l->writer == self) return l->committed;
      switch (l->writer->status()) {
        case runtime::TxStatus::kActive:
          // Tentative writes are invisible until the writer commits.
          return l->committed;
        case runtime::TxStatus::kCommitting:
          // Its commit stamp may already be drawn; the pending version
          // could be valid at our snapshot time, so we cannot just take
          // l->committed. Wait out the short commit window (reads) or
          // report the hazard (commit-time validation).
          if (mode == OnCommitting::kFail) return nullptr;
          bo.pause();
          continue;
        case runtime::TxStatus::kCommitted:
        case runtime::TxStatus::kAborted:
          settle(o, l, slot);
          continue;
      }
    }
  }

  /// Clone the current payload into a fresh pooled Version for slot's
  /// thread (the writer's private duplicate). Inline payload when it fits;
  /// type-erased heap clone as fallback.
  template <typename... MetaArgs>
  Version* clone_version(int slot, const runtime::Payload& src,
                         MetaArgs&&... meta_args) {
    return pool_.create<Version>(slot, runtime::ClonePayload{src},
                                 std::forward<MetaArgs>(meta_args)...);
  }

  /// Return a never-published version (failed install, aborted before
  /// install) straight to the pool — no grace period needed.
  void discard_version(int slot, Version* v) { pool_.destroy(slot, v); }

  /// Replace a finished (committed/aborted) writer's locator with a settled
  /// one. Safe to call concurrently; no-op if the locator moved on.
  void settle(Object& o, Locator* seen, int slot) {
    if (seen->writer == nullptr) return;
    const runtime::TxStatus st = seen->writer->status();
    if (st != runtime::TxStatus::kCommitted &&
        st != runtime::TxStatus::kAborted) {
      return;
    }
    Version* current = (st == runtime::TxStatus::kCommitted)
                           ? seen->tentative
                           : seen->committed;
    Locator* settled = take_spare_locator(slot);
    settled->writer = nullptr;
    settled->tentative = nullptr;
    settled->committed = current;
    if (fault::poke(fault::Site::kStoreSettleCas) ==
        fault::Effect::kCasFail) {
      put_spare_locator(slot, settled);  // behave exactly like a lost CAS
      return;
    }
    Locator* expected = seen;
    if (o.loc.compare_exchange_strong(expected, settled,
                                      std::memory_order_acq_rel)) {
      if (st == runtime::TxStatus::kAborted) {
        // The tentative version never became visible; only the settling
        // winner retires it, so it is retired exactly once.
        retire_version(slot, seen->tentative);
      }
      retire_locator(slot, seen);
      prune(o, slot);
    } else {
      put_spare_locator(slot, settled);
    }
  }

  /// Release an ownership at transaction finish: settle until the locator
  /// no longer references `writer`. One settle() suffices against real
  /// races (a lost CAS means another thread already replaced the locator),
  /// but the settle-CAS failpoint fails the CAS with the locator left in
  /// place — and the finishing transaction's descriptor is retired (and
  /// pool-reused) right after release, so a locator still pointing at it
  /// would let a later settler read the *reused* descriptor's status and
  /// resurrect a superseded version. The loop, not any single CAS attempt,
  /// is the invariant the retirement relies on.
  void release(Object& o, const Desc* writer, int slot) {
    for (;;) {
      Locator* l = o.loc.load(std::memory_order_acquire);
      if (l->writer != writer) return;
      settle(o, l, slot);
    }
  }

  /// Acquire write ownership: CAS `{writer, tentative, seen->committed}`
  /// over `seen`. On success the superseded locator is retired; on failure
  /// nothing is consumed (the caller still owns `tentative`, and the
  /// speculative locator goes back to the slot's spare cache for the next
  /// retry). `order` lets Z-STM make the install seq_cst (Dekker pair with
  /// zone claims).
  bool install(Object& o, Locator* seen, Desc* writer, Version* tentative,
               int slot, std::memory_order order = std::memory_order_acq_rel) {
    Locator* nl = take_spare_locator(slot);
    nl->writer = writer;
    nl->tentative = tentative;
    nl->committed = seen->committed;
    if (fault::poke(fault::Site::kStoreInstallCas) ==
        fault::Effect::kCasFail) {
      put_spare_locator(slot, nl);  // behave exactly like a lost CAS
      return false;
    }
    Locator* expected = seen;
    if (o.loc.compare_exchange_strong(expected, nl, order)) {
      retire_locator(slot, seen);
      return true;
    }
    put_spare_locator(slot, nl);
    return false;
  }

  /// Bound the committed chain at the object's current retention bound and
  /// retire any detached suffix. Concurrent pruners obtain disjoint
  /// suffixes because the severing exchange hands out each link exactly
  /// once.
  void prune(Object& o, int slot) {
    note_quiescent(o, slot);
    Locator* l = o.loc.load(std::memory_order_acquire);
    Version* v = l->committed;
    if (v == nullptr) return;
    const std::uint32_t bound = kept_bound(o);
    for (std::uint32_t depth = 1; depth < bound && v != nullptr; ++depth) {
      v = v->prev.load(std::memory_order_acquire);
    }
    if (v == nullptr) return;
    Version* suffix = v->prev.exchange(nullptr, std::memory_order_acq_rel);
    if (suffix == nullptr) return;
    // Retire the whole detached suffix as one unit.
    if (pool_.enabled()) {
      epochs_.retire_raw(slot, suffix, [](void* p, int s) {
        Version* v2 = static_cast<Version*>(p);
        while (v2 != nullptr) {
          Version* older = v2->prev.load(std::memory_order_relaxed);
          v2->~Version();
          NodePool::release_block(v2, s);
          v2 = older;
        }
      });
    } else {
      epochs_.retire_raw(slot, suffix, [](void* p, int) {
        destroy_chain(static_cast<Version*>(p));
      });
    }
  }

  /// Walk newest-first from `cur` to the immediate successor of `read`.
  /// Returns nullptr when `read` is no longer on the chain (pruned) — the
  /// caller cannot bound the read version's validity and must abort
  /// conservatively (and should report note_too_old).
  static Version* successor_of(Version* cur, const Version* read) {
    Version* succ = cur;
    Version* below = succ->prev.load(std::memory_order_acquire);
    while (below != nullptr && below != read) {
      succ = below;
      below = succ->prev.load(std::memory_order_acquire);
    }
    return below == nullptr ? nullptr : succ;
  }

  /// A transaction aborted because a version of `o` it needed was already
  /// pruned. Adaptive mode doubles the object's retention bound (up to
  /// max_kept) and resets its quiet streak; fixed mode is a no-op.
  void note_too_old(Object& o, int slot) {
    if (retention_.mode != RetentionMode::kAdaptive) return;
    o.quiet.store(0, std::memory_order_relaxed);
    const std::uint32_t k = o.keep.load(std::memory_order_relaxed);
    const std::uint32_t grown =
        std::min<std::uint32_t>(static_cast<std::uint32_t>(retention_.max_kept),
                                std::max<std::uint32_t>(k, 1) * 2);
    if (grown > k) {
      o.keep.store(grown, std::memory_order_relaxed);
      stats_.add(slot, util::Counter::kRetentionGrows);
    }
  }

  /// Current retention bound of `o` (fixed: the policy constant).
  std::uint32_t kept_bound(const Object& o) const {
    return retention_.mode == RetentionMode::kAdaptive
               ? o.keep.load(std::memory_order_relaxed)
               : static_cast<std::uint32_t>(retention_.initial);
  }

  const RetentionPolicy& retention() const { return retention_; }
  NodePool& pool() { return pool_; }

  static void destroy_chain(Version* v) {
    while (v != nullptr) {
      Version* p = v->prev.load(std::memory_order_relaxed);
      delete v;
      v = p;
    }
  }

  /// Retire a version/locator through EBR with the matching free path
  /// (pool return or delete). Exposed for runtimes retiring descriptors
  /// alongside (lsa/cs pool those through the same NodePool).
  void retire_version(int slot, Version* v) {
    if (pool_.enabled()) {
      epochs_.retire_raw(slot, v, &NodePool::ebr_destroy<Version>);
    } else {
      epochs_.retire(slot, v);
    }
  }
  void retire_locator(int slot, Locator* l) {
    if (pool_.enabled()) {
      epochs_.retire_raw(slot, l, &NodePool::ebr_destroy<Locator>);
    } else {
      epochs_.retire(slot, l);
    }
  }

 private:
  /// One more prune without a too-old abort; after decay_period of them the
  /// adaptive bound shrinks by one (floor min_kept). The counters race
  /// benignly: both are bounded and monotone between resets.
  void note_quiescent(Object& o, int slot) {
    if (retention_.mode != RetentionMode::kAdaptive) return;
    const std::uint32_t q = o.quiet.fetch_add(1, std::memory_order_relaxed) + 1;
    if (q < static_cast<std::uint32_t>(retention_.decay_period)) return;
    o.quiet.store(0, std::memory_order_relaxed);
    const std::uint32_t k = o.keep.load(std::memory_order_relaxed);
    if (k > static_cast<std::uint32_t>(retention_.min_kept)) {
      o.keep.store(k - 1, std::memory_order_relaxed);
      stats_.add(slot, util::Counter::kRetentionDecays);
    }
  }

  /// One cached speculative locator per slot: a failed settle/install CAS
  /// parks its locator here and the next attempt reuses it, so retry churn
  /// costs three field stores instead of an allocate/free round trip.
  Locator* take_spare_locator(int slot) {
    if (slot < 0) return pool_.create<Locator>(slot);
    Locator*& sp = spare_[static_cast<std::size_t>(slot)].value;
    if (sp != nullptr) {
      Locator* l = sp;
      sp = nullptr;
      return l;
    }
    return pool_.create<Locator>(slot);
  }
  void put_spare_locator(int slot, Locator* l) {
    if (slot >= 0) {
      Locator*& sp = spare_[static_cast<std::size_t>(slot)].value;
      if (sp == nullptr) {
        sp = l;
        return;
      }
    }
    pool_.destroy(slot, l);
  }

  void free_chain_now(Version* v) {
    while (v != nullptr) {
      Version* p = v->prev.load(std::memory_order_relaxed);
      pool_.destroy(-1, v);
      v = p;
    }
  }

  NodePool& pool_;
  util::EpochManager& epochs_;
  util::StatsDomain& stats_;
  RetentionPolicy retention_;
  std::vector<util::Padded<Locator*>> spare_;
  util::PaddedCounter object_ids_;
  std::mutex objects_mutex_;
  std::deque<std::unique_ptr<Object>> objects_;
};

}  // namespace zstm::object
