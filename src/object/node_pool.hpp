// NodePool — epoch-integrated slab allocation for the object substrate.
//
// Every open-for-write used to perform three or more global heap
// allocations (locator, version, payload clone, plus a throwaway locator
// per settle/CAS retry), and EBR then `delete`d those nodes from whichever
// thread happened to flush its retire list — a cross-thread malloc/free
// ping-pong on the per-access hot path. The pool replaces that traffic
// with per-thread, cache-line-aware slab free lists (DESIGN.md §7):
//
//  * Blocks are carved from 64-byte-aligned slabs in cache-line-multiple
//    strides, one size class per stride. Each block carries a 16-byte
//    header {pool, class, owner slot}; the owner is the slot whose slab the
//    block was carved from and never changes.
//  * allocate(slot) pops the slot's local free list — single-owner, no
//    atomics. On a local miss it flushes the slot's MPSC return stack; only
//    when that is empty too does it touch the global heap (one slab per
//    kSlabNodes allocations — the pool-miss counter).
//  * release_block(p, slot) pushes back to the local list when the freeing
//    slot owns the block, else onto the owner's MPSC return stack (Treiber
//    push; the owner steals the whole stack with one exchange).
//  * EBR integration: retirement uses ebr_destroy<T> as the epoch deleter,
//    so a node goes retire → grace period → free list instead of retire →
//    grace period → ::operator delete. The happens-before chain that makes
//    reuse safe is EBR's own (unpin release → epoch advance → collect).
//  * Thread churn: pool state is keyed by registry slot, not by thread, so
//    a new thread reusing a slot inherits its predecessor's free lists; a
//    ThreadRegistry release hook drains the slot's return stacks on detach
//    so nothing idles in the MPSC stacks while the slot is vacant.
//
// `ZSTM_POOL=0` (environment) or Config::use_node_pool = false disables
// pooling: create/destroy degrade to plain new/delete (for debugging and
// ASan, whose heap poisoning the pool would defeat). Allocation hit/miss
// accounting runs in both modes so benches can compare them.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "fault/failpoint.hpp"
#include "util/align.hpp"
#include "util/stats.hpp"
#include "util/thread_registry.hpp"

namespace zstm::object {

class NodePool {
 public:
  /// Strongest alignment a pooled node may require.
  static constexpr std::size_t kNodeAlign = 16;
  /// Size classes: stride 64·(c+1) bytes, user capacity stride − 16.
  static constexpr int kClassCount = 8;
  /// Nodes carved per slab (one global allocation amortized over this many
  /// pool allocations even before any node is ever reused).
  static constexpr int kSlabNodes = 32;

  /// `stats` may be null (no accounting). `requested` is the runtime's
  /// Config knob; the ZSTM_POOL environment escape hatch overrides it.
  NodePool(util::ThreadRegistry& registry, util::StatsDomain* stats,
           bool requested = true);
  ~NodePool();

  NodePool(const NodePool&) = delete;
  NodePool& operator=(const NodePool&) = delete;

  /// False iff the environment sets ZSTM_POOL=0.
  static bool env_enabled();

  bool enabled() const { return enabled_; }
  int capacity() const { return static_cast<int>(local_.size()); }

  /// Construct a T from the slot's pool (plain `new` when disabled).
  /// `slot` may be −1 (unregistered thread): the node then bypasses the
  /// free lists as an individually-allocated block.
  template <typename T, typename... Args>
  T* create(int slot, Args&&... args) {
    static_assert(alignof(T) <= kNodeAlign,
                  "pooled node type over-aligned for the slab layout");
    if (fault::poke(fault::Site::kPoolAlloc) == fault::Effect::kOom) {
      throw std::bad_alloc{};
    }
    if (!enabled_) {
      count_miss(slot);
      return new T(std::forward<Args>(args)...);
    }
    void* mem = allocate(slot, sizeof(T));
    try {
      return ::new (mem) T(std::forward<Args>(args)...);
    } catch (...) {
      release_block(mem, slot);
      throw;
    }
  }

  /// Destroy and return a node obtained from create() on this pool.
  template <typename T>
  void destroy(int slot, T* p) {
    if (!enabled_) {
      delete p;
      return;
    }
    p->~T();
    release_block(p, slot);
  }

  /// EBR deleter for pooled nodes: the epoch manager calls it with the
  /// freeing thread's slot once the grace period has passed.
  template <typename T>
  static void ebr_destroy(void* p, int slot) {
    static_cast<T*>(p)->~T();
    release_block(p, slot);
  }

  /// Raw-block interface (create/destroy/ebr_destroy are the typed front).
  void* allocate(int slot, std::size_t size);
  static void release_block(void* p, int slot);

  /// Splice the slot's cross-thread return stacks into its local free
  /// lists. Runs automatically on ThreadRegistry slot release.
  void drain_slot(int slot);

  // --- test introspection (owner thread or quiesced state only) ---------
  std::size_t local_free_count(int slot) const;
  std::size_t foreign_return_count(int slot) const;

 private:
  /// Precedes every pooled block. `cls == kOversizeClass` marks an
  /// individually-allocated block (too big for any class, or allocated
  /// without a slot) that release_block frees directly.
  struct Header {
    NodePool* pool;
    std::uint32_t cls;
    std::uint32_t owner_slot;
  };
  static_assert(sizeof(Header) == 16, "header must keep blocks 16-aligned");
  static constexpr std::size_t kHeaderBytes = sizeof(Header);
  static constexpr std::uint32_t kOversizeClass = ~std::uint32_t{0};

  /// Lives in the user area of a free block.
  struct FreeNode {
    FreeNode* next;
  };

  /// Per-slot local heads: one cache line, owner-thread only.
  struct alignas(util::kCacheLine) LocalLists {
    FreeNode* head[kClassCount] = {};
  };
  /// Per-slot MPSC return stacks (any thread pushes, owner steals all).
  struct alignas(util::kCacheLine) ReturnStacks {
    std::atomic<FreeNode*> head[kClassCount] = {};
  };

  static constexpr std::size_t stride_of(int cls) {
    return util::kCacheLine * (static_cast<std::size_t>(cls) + 1);
  }
  /// Smallest class whose user area holds `size` bytes; −1 when none does.
  static constexpr int class_for(std::size_t size) {
    const std::size_t stride = size + kHeaderBytes;
    const int cls =
        static_cast<int>((stride + util::kCacheLine - 1) / util::kCacheLine) -
        1;
    return cls < kClassCount ? cls : -1;
  }

  static Header* header_of(void* user) {
    return reinterpret_cast<Header*>(static_cast<char*>(user) - kHeaderBytes);
  }

  void* carve_slab(int slot, int cls);
  void* allocate_oversize(int slot, std::size_t size);

  void count_hit(int slot) {
    if (stats_ != nullptr && slot >= 0) {
      stats_->add(slot, util::Counter::kPoolHits);
    }
  }
  void count_miss(int slot) {
    if (stats_ != nullptr && slot >= 0) {
      stats_->add(slot, util::Counter::kPoolMisses);
    }
  }
  void count_return(int slot) {
    if (stats_ != nullptr && slot >= 0) {
      stats_->add(slot, util::Counter::kPoolReturns);
    }
  }

  util::ThreadRegistry& registry_;
  util::StatsDomain* stats_;
  bool enabled_;
  int listener_id_ = -1;
  std::vector<LocalLists> local_;
  std::vector<ReturnStacks> returns_;
  std::mutex slabs_mutex_;
  std::vector<void*> slabs_;
};

}  // namespace zstm::object
