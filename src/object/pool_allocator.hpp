// PoolAllocator — a std::allocator-compatible front over NodePool, so
// standard containers embedded in pooled nodes (e.g. the vector-clock
// storage inside a written version's stamp, cs.hpp's last hidden
// per-commit malloc) draw their storage from the slab pool instead of the
// global heap.
//
// Semantics:
//
//  * A default-constructed (null-pool) allocator is a plain heap
//    passthrough — value types stay usable in tests and in runtimes built
//    with pooling disabled.
//  * allocate() goes through NodePool::allocate with the slot captured at
//    construction; blocks too large for any size class degrade to
//    individually-allocated oversize blocks inside the pool (still freed
//    through release_block), so no size bookkeeping leaks into callers.
//  * deallocate() uses the static NodePool::release_block with slot −1:
//    pooled blocks are self-describing (header carries pool + owner), and
//    −1 routes the block to its owner's MPSC return stack, which is safe
//    from ANY thread — required because pooled nodes are reclaimed by EBR
//    from whichever thread flushes its retire list.
//  * Propagation traits are all false and copies share the source's pool
//    binding: a container's allocator identity is fixed at construction,
//    so memory is always freed by an allocator equal to the one that
//    allocated it (heap memory by a null-pool copy, pool memory by a
//    bound copy). Copy-assignment between containers with different
//    allocators therefore reuses the target's existing storage — exactly
//    what the cs commit path's `tentative->ct = desc->ct` wants.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>

#include "object/node_pool.hpp"

namespace zstm::object {

template <typename T>
class PoolAllocator {
 public:
  using value_type = T;
  using propagate_on_container_copy_assignment = std::false_type;
  using propagate_on_container_move_assignment = std::false_type;
  using propagate_on_container_swap = std::false_type;
  using is_always_equal = std::false_type;

  static_assert(alignof(T) <= NodePool::kNodeAlign,
                "pooled element type over-aligned for the slab layout");

  PoolAllocator() noexcept = default;
  PoolAllocator(NodePool* pool, int slot) noexcept
      : pool_(pool), slot_(slot) {}
  template <typename U>
  PoolAllocator(const PoolAllocator<U>& other) noexcept
      : pool_(other.pool()), slot_(other.slot()) {}

  T* allocate(std::size_t n) {
    const std::size_t bytes = n * sizeof(T);
    if (pool_ != nullptr) {
      return static_cast<T*>(pool_->allocate(slot_, bytes));
    }
    return static_cast<T*>(::operator new(bytes));
  }

  void deallocate(T* p, std::size_t) noexcept {
    if (pool_ != nullptr) {
      // Slot −1: never touches a local free list, safe from any thread.
      NodePool::release_block(p, -1);
      return;
    }
    ::operator delete(p);
  }

  NodePool* pool() const noexcept { return pool_; }
  int slot() const noexcept { return slot_; }

  template <typename U>
  bool operator==(const PoolAllocator<U>& other) const noexcept {
    return pool_ == other.pool();
  }
  template <typename U>
  bool operator!=(const PoolAllocator<U>& other) const noexcept {
    return !(*this == other);
  }

 private:
  NodePool* pool_ = nullptr;
  int slot_ = -1;
};

}  // namespace zstm::object
