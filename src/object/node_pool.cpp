#include "object/node_pool.hpp"

#include <cstdlib>
#include <cstring>

namespace zstm::object {

NodePool::NodePool(util::ThreadRegistry& registry, util::StatsDomain* stats,
                   bool requested)
    : registry_(registry),
      stats_(stats),
      enabled_(requested && env_enabled()),
      local_(static_cast<std::size_t>(registry.capacity())),
      returns_(static_cast<std::size_t>(registry.capacity())) {
  if (enabled_) {
    listener_id_ =
        registry_.add_release_listener([this](int slot) { drain_slot(slot); });
  }
}

NodePool::~NodePool() {
  if (listener_id_ >= 0) registry_.remove_release_listener(listener_id_);
  // Every node must be back in a free list by now (runtime teardown frees
  // live structures and drains EBR first); the slabs own all their memory.
  for (void* slab : slabs_) {
    ::operator delete(slab, std::align_val_t{util::kCacheLine});
  }
}

bool NodePool::env_enabled() {
  const char* v = std::getenv("ZSTM_POOL");
  return v == nullptr || std::strcmp(v, "0") != 0;
}

void* NodePool::allocate(int slot, std::size_t size) {
  const int cls = class_for(size);
  if (cls < 0 || slot < 0) return allocate_oversize(slot, size);
  FreeNode*& head = local_[static_cast<std::size_t>(slot)]
                        .head[static_cast<std::size_t>(cls)];
  FreeNode* n = head;
  if (n == nullptr) {
    // Local miss: steal the whole cross-thread return stack first.
    n = returns_[static_cast<std::size_t>(slot)]
            .head[static_cast<std::size_t>(cls)]
            .exchange(nullptr, std::memory_order_acquire);
    if (n == nullptr) return carve_slab(slot, cls);
    head = n;
  }
  head = n->next;
  count_hit(slot);
  return n;
}

void NodePool::release_block(void* p, int slot) {
  Header* h = header_of(p);
  if (h->cls == kOversizeClass) {
    ::operator delete(static_cast<void*>(h),
                      std::align_val_t{util::kCacheLine});
    return;
  }
  NodePool* pool = h->pool;
  const auto cls = static_cast<std::size_t>(h->cls);
  const int owner = static_cast<int>(h->owner_slot);
  auto* fn = static_cast<FreeNode*>(p);
  if (slot == owner) {
    FreeNode*& head = pool->local_[static_cast<std::size_t>(owner)].head[cls];
    fn->next = head;
    head = fn;
    return;
  }
  pool->count_return(slot);
  auto& head = pool->returns_[static_cast<std::size_t>(owner)].head[cls];
  FreeNode* cur = head.load(std::memory_order_relaxed);
  do {
    fn->next = cur;
  } while (!head.compare_exchange_weak(cur, fn, std::memory_order_release,
                                       std::memory_order_relaxed));
}

void* NodePool::carve_slab(int slot, int cls) {
  const std::size_t stride = stride_of(cls);
  char* slab = static_cast<char*>(::operator new(
      stride * static_cast<std::size_t>(kSlabNodes),
      std::align_val_t{util::kCacheLine}));
  {
    std::lock_guard<std::mutex> lk(slabs_mutex_);
    slabs_.push_back(slab);
  }
  // Node 0 is handed out; the rest stock the (empty) local free list.
  FreeNode* head = nullptr;
  for (int i = kSlabNodes - 1; i >= 0; --i) {
    char* block = slab + stride * static_cast<std::size_t>(i);
    auto* h = reinterpret_cast<Header*>(block);
    h->pool = this;
    h->cls = static_cast<std::uint32_t>(cls);
    h->owner_slot = static_cast<std::uint32_t>(slot);
    if (i == 0) continue;
    auto* fn = reinterpret_cast<FreeNode*>(block + kHeaderBytes);
    fn->next = head;
    head = fn;
  }
  local_[static_cast<std::size_t>(slot)].head[static_cast<std::size_t>(cls)] =
      head;
  count_miss(slot);
  return slab + kHeaderBytes;
}

void* NodePool::allocate_oversize(int slot, std::size_t size) {
  char* block = static_cast<char*>(::operator new(
      kHeaderBytes + size, std::align_val_t{util::kCacheLine}));
  auto* h = reinterpret_cast<Header*>(block);
  h->pool = this;
  h->cls = kOversizeClass;
  h->owner_slot = 0;
  count_miss(slot);
  return block + kHeaderBytes;
}

void NodePool::drain_slot(int slot) {
  if (!enabled_ || slot < 0) return;
  auto& local = local_[static_cast<std::size_t>(slot)];
  auto& returns = returns_[static_cast<std::size_t>(slot)];
  for (int cls = 0; cls < kClassCount; ++cls) {
    FreeNode* n = returns.head[static_cast<std::size_t>(cls)].exchange(
        nullptr, std::memory_order_acquire);
    while (n != nullptr) {
      FreeNode* next = n->next;
      n->next = local.head[static_cast<std::size_t>(cls)];
      local.head[static_cast<std::size_t>(cls)] = n;
      n = next;
    }
  }
}

std::size_t NodePool::local_free_count(int slot) const {
  std::size_t n = 0;
  const auto& local = local_[static_cast<std::size_t>(slot)];
  for (int cls = 0; cls < kClassCount; ++cls) {
    for (const FreeNode* fn = local.head[static_cast<std::size_t>(cls)];
         fn != nullptr; fn = fn->next) {
      ++n;
    }
  }
  return n;
}

std::size_t NodePool::foreign_return_count(int slot) const {
  std::size_t n = 0;
  const auto& returns = returns_[static_cast<std::size_t>(slot)];
  for (int cls = 0; cls < kClassCount; ++cls) {
    for (const FreeNode* fn = returns.head[static_cast<std::size_t>(cls)].load(
             std::memory_order_acquire);
         fn != nullptr; fn = fn->next) {
      ++n;
    }
  }
  return n;
}

}  // namespace zstm::object
