#include "util/cpu_topology.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <thread>

#if defined(__linux__)
#include <sched.h>
#include <unistd.h>
#endif

namespace zstm::util {

namespace {

#if defined(__linux__)
/// First line of a sysfs file, stripped of the trailing newline; empty on
/// any failure (missing file, unreadable, etc.).
std::string read_sysfs_line(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return {};
  char buf[256];
  std::string out;
  if (std::fgets(buf, sizeof buf, f) != nullptr) {
    out = buf;
    while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) {
      out.pop_back();
    }
  }
  std::fclose(f);
  return out;
}

std::string cpu_dir(int cpu) {
  return "/sys/devices/system/cpu/cpu" + std::to_string(cpu);
}

/// shared_cpu_list of the largest cache level this CPU reports (L3 first,
/// then L2); empty when the cache directories are absent.
std::string llc_shared_list(int cpu) {
  for (int index = 3; index >= 2; --index) {
    const std::string line = read_sysfs_line(
        cpu_dir(cpu) + "/cache/index" + std::to_string(index) +
        "/shared_cpu_list");
    if (!line.empty()) return line;
  }
  return {};
}
#endif  // __linux__

CpuTopology discover() {
  CpuTopology topo;
  const unsigned hc = std::thread::hardware_concurrency();
  topo.cpus = hc > 0 ? static_cast<int>(hc) : 1;
  topo.group_of_cpu.assign(static_cast<std::size_t>(topo.cpus), 0);
  topo.groups = 1;
  topo.source = "fallback";

#if defined(__linux__)
  // Group CPUs by the identity of their largest shared cache (the
  // shared_cpu_list string is canonical per cache instance), falling back
  // to the physical package id when cacheinfo is not exposed.
  std::map<std::string, int> group_ids;
  std::vector<int> groups(static_cast<std::size_t>(topo.cpus), -1);
  bool llc_ok = true;
  for (int cpu = 0; cpu < topo.cpus; ++cpu) {
    const std::string key = llc_shared_list(cpu);
    if (key.empty()) {
      llc_ok = false;
      break;
    }
    auto [it, inserted] = group_ids.try_emplace(key, static_cast<int>(group_ids.size()));
    groups[static_cast<std::size_t>(cpu)] = it->second;
    (void)inserted;
  }
  if (llc_ok && !group_ids.empty()) {
    topo.group_of_cpu = std::move(groups);
    topo.groups = static_cast<int>(group_ids.size());
    topo.source = "sysfs-llc";
    return topo;
  }

  group_ids.clear();
  groups.assign(static_cast<std::size_t>(topo.cpus), -1);
  bool pkg_ok = true;
  for (int cpu = 0; cpu < topo.cpus; ++cpu) {
    const std::string key =
        read_sysfs_line(cpu_dir(cpu) + "/topology/physical_package_id");
    if (key.empty()) {
      pkg_ok = false;
      break;
    }
    auto [it, inserted] = group_ids.try_emplace(key, static_cast<int>(group_ids.size()));
    groups[static_cast<std::size_t>(cpu)] = it->second;
    (void)inserted;
  }
  if (pkg_ok && !group_ids.empty()) {
    topo.group_of_cpu = std::move(groups);
    topo.groups = static_cast<int>(group_ids.size());
    topo.source = "sysfs-package";
  }
#endif  // __linux__
  return topo;
}

}  // namespace

const CpuTopology& cpu_topology() {
  static const CpuTopology topo = discover();
  return topo;
}

int current_cpu() {
#if defined(__linux__)
  const int cpu = sched_getcpu();
  return cpu >= 0 ? cpu : -1;
#else
  return -1;
#endif
}

int current_cache_group() {
  const CpuTopology& topo = cpu_topology();
  const int cpu = current_cpu();
  if (cpu < 0 || cpu >= topo.cpus) return 0;
  return topo.group_of_cpu[static_cast<std::size_t>(cpu)];
}

int slot_home_group(int slot, int capacity) {
  const int groups = cpu_topology().groups;
  if (groups <= 1 || capacity <= 0) return 0;
  if (slot < 0) return 0;
  if (slot >= capacity) return (slot % groups + groups) % groups;
  // Contiguous blocks: slots [g*capacity/groups, (g+1)*capacity/groups).
  return std::min(groups - 1,
                  static_cast<int>((static_cast<long long>(slot) * groups) /
                                   capacity));
}

}  // namespace zstm::util
