#include "util/stats.hpp"

#include <chrono>
#include <sstream>

namespace zstm::util {

const char* counter_name(Counter c) {
  switch (c) {
    case Counter::kCommits: return "commits";
    case Counter::kAborts: return "aborts";
    case Counter::kShortCommits: return "short_commits";
    case Counter::kShortAborts: return "short_aborts";
    case Counter::kLongCommits: return "long_commits";
    case Counter::kLongAborts: return "long_aborts";
    case Counter::kReads: return "reads";
    case Counter::kWrites: return "writes";
    case Counter::kExtensions: return "extensions";
    case Counter::kExtensionFails: return "extension_fails";
    case Counter::kValidationFails: return "validation_fails";
    case Counter::kZoneConflicts: return "zone_conflicts";
    case Counter::kZonePassed: return "zone_passed";
    case Counter::kCmWaits: return "cm_waits";
    case Counter::kCmKills: return "cm_kills";
    case Counter::kFalseConflicts: return "false_conflicts";
    case Counter::kRetentionGrows: return "retention_grows";
    case Counter::kRetentionDecays: return "retention_decays";
    case Counter::kPoolHits: return "pool_hits";
    case Counter::kPoolMisses: return "pool_misses";
    case Counter::kPoolReturns: return "pool_returns";
    case Counter::kClockAdopts: return "clock_adopts";
    case Counter::kCount: break;
  }
  return "?";
}

StatsDomain::StatsDomain(const ThreadRegistry& registry)
    : registry_(registry),
      cells_(static_cast<std::size_t>(registry.capacity())) {}

StatsSnapshot StatsDomain::snapshot() const {
  StatsSnapshot snap;
  for (std::size_t s = 0; s < cells_.size(); ++s) {
    for (std::size_t c = 0; c < static_cast<std::size_t>(Counter::kCount); ++c) {
      snap.totals[c] += cells_[s].value[c].load(std::memory_order_relaxed);
    }
  }
  return snap;
}

void StatsDomain::reset() {
  for (auto& cell : cells_) {
    for (auto& counter : cell.value) {
      counter.store(0, std::memory_order_relaxed);
    }
  }
}

ProgressTracker::ProgressTracker(int max_slots)
    : cells_(static_cast<std::size_t>(max_slots > 0 ? max_slots : 1)) {}

std::uint64_t ProgressTracker::now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

ProgressTracker::Snapshot ProgressTracker::snapshot() const {
  Snapshot snap;
  const std::uint64_t now = now_ns();
  std::uint64_t oldest_since = 0;
  for (std::size_t s = 0; s < cells_.size(); ++s) {
    const Cell& c = cells_[s].value;
    const std::uint32_t high = c.max_attempts.load(std::memory_order_relaxed);
    if (high > snap.max_attempts) {
      snap.max_attempts = high;
      snap.max_attempts_slot = static_cast<int>(s);
    }
    const std::uint64_t since =
        c.active_since_ns.load(std::memory_order_relaxed);
    if (since != 0 && (oldest_since == 0 || since < oldest_since)) {
      oldest_since = since;
      snap.oldest_active_slot = static_cast<int>(s);
      snap.oldest_active_attempts =
          c.attempts.load(std::memory_order_relaxed);
    }
    snap.serial_entries +=
        c.serial_entries.load(std::memory_order_relaxed);
  }
  if (oldest_since != 0 && now > oldest_since) {
    snap.oldest_active_ns = now - oldest_since;
  }
  return snap;
}

void ProgressTracker::reset() {
  for (auto& cell : cells_) {
    cell.value.active_since_ns.store(0, std::memory_order_relaxed);
    cell.value.attempts.store(0, std::memory_order_relaxed);
    cell.value.max_attempts.store(0, std::memory_order_relaxed);
    cell.value.serial_entries.store(0, std::memory_order_relaxed);
  }
}

std::string StatsSnapshot::to_string() const {
  std::ostringstream os;
  for (std::size_t c = 0; c < totals.size(); ++c) {
    if (totals[c] == 0) continue;
    os << counter_name(static_cast<Counter>(c)) << "=" << totals[c] << " ";
  }
  return os.str();
}

}  // namespace zstm::util
