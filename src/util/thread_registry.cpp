#include "util/thread_registry.hpp"

#include "util/cpu_topology.hpp"

namespace zstm::util {

ThreadRegistry::ThreadRegistry(int capacity)
    : capacity_(capacity), slots_(static_cast<std::size_t>(capacity)) {
  if (capacity <= 0 || capacity > kMaxThreads) {
    throw std::invalid_argument("ThreadRegistry capacity out of range");
  }
}

ThreadRegistry::Registration ThreadRegistry::attach() {
  // Pass 0 only considers slots homed in the caller's cache group, so
  // threads sharing an LLC claim adjacent slots and the per-slot arrays
  // they index (EBR announcements, stats cells, timebase lanes) stay in
  // their own group's lines. Pass 1 takes anything free — a full home
  // group never fails an attach that would have succeeded before. With a
  // single topology group, pass 0 already scans every slot in order, which
  // is bit-for-bit the old lowest-free-slot behavior.
  const int group = current_cache_group();
  for (int pass = 0; pass < 2; ++pass) {
    for (int i = 0; i < capacity_; ++i) {
      if (pass == 0 && slot_home_group(i, capacity_) != group) continue;
      bool expected = false;
      if (slots_[static_cast<std::size_t>(i)].value.compare_exchange_strong(
              expected, true, std::memory_order_acq_rel)) {
        // Raise the high-water mark so per-slot scans cover this slot.
        int hw = high_water_.load(std::memory_order_relaxed);
        while (hw < i + 1 && !high_water_.compare_exchange_weak(
                                 hw, i + 1, std::memory_order_acq_rel)) {
        }
        return Registration(this, i);
      }
    }
  }
  throw std::runtime_error("ThreadRegistry: no free thread slots");
}

int ThreadRegistry::home_group(int slot) const {
  return slot_home_group(slot, capacity_);
}

int ThreadRegistry::add_release_listener(std::function<void(int)> fn) {
  std::lock_guard<std::mutex> lk(listeners_mutex_);
  const int id = next_listener_id_++;
  listeners_.emplace_back(id, std::move(fn));
  return id;
}

void ThreadRegistry::remove_release_listener(int id) {
  std::lock_guard<std::mutex> lk(listeners_mutex_);
  for (auto it = listeners_.begin(); it != listeners_.end(); ++it) {
    if (it->first == id) {
      listeners_.erase(it);
      return;
    }
  }
}

void ThreadRegistry::release_slot(int slot) {
  // Run the hooks before the slot is marked free: the releasing thread
  // still owns the slot's single-owner state (EBR lists, pool free lists).
  std::vector<std::function<void(int)>> fns;
  {
    std::lock_guard<std::mutex> lk(listeners_mutex_);
    fns.reserve(listeners_.size());
    for (const auto& [id, fn] : listeners_) fns.push_back(fn);
  }
  for (const auto& fn : fns) fn(slot);
  slots_[static_cast<std::size_t>(slot)].value.store(false,
                                                     std::memory_order_release);
}

void ThreadRegistry::Registration::release() {
  if (owner_ != nullptr) {
    owner_->release_slot(slot_);
    owner_ = nullptr;
    slot_ = -1;
  }
}

}  // namespace zstm::util
