#include "util/thread_registry.hpp"

namespace zstm::util {

ThreadRegistry::ThreadRegistry(int capacity)
    : capacity_(capacity), slots_(static_cast<std::size_t>(capacity)) {
  if (capacity <= 0 || capacity > kMaxThreads) {
    throw std::invalid_argument("ThreadRegistry capacity out of range");
  }
}

ThreadRegistry::Registration ThreadRegistry::attach() {
  for (int i = 0; i < capacity_; ++i) {
    bool expected = false;
    if (slots_[static_cast<std::size_t>(i)].value.compare_exchange_strong(
            expected, true, std::memory_order_acq_rel)) {
      // Raise the high-water mark so per-slot scans cover this slot.
      int hw = high_water_.load(std::memory_order_relaxed);
      while (hw < i + 1 && !high_water_.compare_exchange_weak(
                               hw, i + 1, std::memory_order_acq_rel)) {
      }
      return Registration(this, i);
    }
  }
  throw std::runtime_error("ThreadRegistry: no free thread slots");
}

int ThreadRegistry::add_release_listener(std::function<void(int)> fn) {
  std::lock_guard<std::mutex> lk(listeners_mutex_);
  const int id = next_listener_id_++;
  listeners_.emplace_back(id, std::move(fn));
  return id;
}

void ThreadRegistry::remove_release_listener(int id) {
  std::lock_guard<std::mutex> lk(listeners_mutex_);
  for (auto it = listeners_.begin(); it != listeners_.end(); ++it) {
    if (it->first == id) {
      listeners_.erase(it);
      return;
    }
  }
}

void ThreadRegistry::release_slot(int slot) {
  // Run the hooks before the slot is marked free: the releasing thread
  // still owns the slot's single-owner state (EBR lists, pool free lists).
  std::vector<std::function<void(int)>> fns;
  {
    std::lock_guard<std::mutex> lk(listeners_mutex_);
    fns.reserve(listeners_.size());
    for (const auto& [id, fn] : listeners_) fns.push_back(fn);
  }
  for (const auto& fn : fns) fn(slot);
  slots_[static_cast<std::size_t>(slot)].value.store(false,
                                                     std::memory_order_release);
}

void ThreadRegistry::Registration::release() {
  if (owner_ != nullptr) {
    owner_->release_slot(slot_);
    owner_ = nullptr;
    slot_ = -1;
  }
}

}  // namespace zstm::util
