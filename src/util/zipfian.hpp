// Zipfian key generator for skewed workloads (ROADMAP: "Zipfian/uniform
// key skew" macro-workloads; used by the KV service's open-loop load
// generator and the adt workload harness).
//
// Implements Gray et al.'s O(1)-per-sample rejection-free formula ("Quickly
// Generating Billion-Record Synthetic Databases", SIGMOD '94), the same
// scheme YCSB uses: a one-time O(n) zeta(n, theta) precomputation, then
// each sample costs one PRNG draw and one pow(). theta in [0, 1) controls
// the skew (0 = uniform, 0.99 = the YCSB default where ~10% of keys draw
// ~90% of accesses). Determinism: the sequence is a pure function of
// (n, theta, seed) — pinned by a unit test so recorded workloads replay.
//
// Raw Zipfian ranks cluster the hot keys at 0, 1, 2, ... — adjacent, so
// they'd share hash-map buckets and cache lines, confusing skew effects
// with collision effects. By default the rank is scrambled through a
// splitmix64-style bijection-ish mix (mod n), scattering the hot set across
// the keyspace while preserving the frequency distribution.
#pragma once

#include <cmath>
#include <cstdint>

#include "util/rng.hpp"

namespace zstm::util {

class Zipfian {
 public:
  /// Keys are drawn from [0, n). theta in [0, 1): 0 = uniform; values are
  /// clamped to [0, 0.999]. `scramble` spreads the hot ranks across the
  /// keyspace (see header comment).
  Zipfian(std::uint64_t n, double theta, std::uint64_t seed,
          bool scramble = true)
      : n_(n > 0 ? n : 1), rng_(seed), scramble_(scramble) {
    if (theta < 0.0) theta = 0.0;
    if (theta > 0.999) theta = 0.999;
    theta_ = theta;
    if (theta_ > 0.0) {
      zetan_ = zeta(n_, theta_);
      const double zeta2 = zeta(2, theta_);
      alpha_ = 1.0 / (1.0 - theta_);
      eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
             (1.0 - zeta2 / zetan_);
    }
  }

  std::uint64_t n() const { return n_; }
  double theta() const { return theta_; }

  /// Next key in [0, n).
  std::uint64_t next() {
    std::uint64_t rank;
    if (theta_ == 0.0) {
      // Uniform draws stay unscrambled: the mix below is a hash mod n, not
      // a permutation, and its collisions would leave some keys unreachable
      // — harmless under a heavy tail, visibly wrong under uniformity.
      return rng_.next_below(n_);
    } else {
      const double u = rng_.next_unit();
      const double uz = u * zetan_;
      if (uz < 1.0) {
        rank = 0;
      } else if (uz < 1.0 + std::pow(0.5, theta_)) {
        rank = 1;
      } else {
        rank = static_cast<std::uint64_t>(
            static_cast<double>(n_) *
            std::pow(eta_ * u - eta_ + 1.0, alpha_));
        if (rank >= n_) rank = n_ - 1;
      }
    }
    if (!scramble_) return rank;
    // Mix (not a strict mod-n bijection; collisions merge a few ranks'
    // masses, which preserves the heavy-tail shape the workloads need).
    std::uint64_t s = rank + 0x2545f4914f6cdd1dULL;
    return splitmix64(s) % n_;
  }

 private:
  static double zeta(std::uint64_t n, double theta) {
    double sum = 0.0;
    for (std::uint64_t i = 1; i <= n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    return sum;
  }

  std::uint64_t n_;
  double theta_ = 0.0;
  double zetan_ = 0.0;
  double alpha_ = 0.0;
  double eta_ = 0.0;
  Xorshift rng_;
  bool scramble_ = true;
};

}  // namespace zstm::util
