// HDR-style latency histogram (ROADMAP: "p50/p99/p999 latency" for the KV
// service under open-loop load).
//
// Log-linear bucketing: each power-of-two octave is split into
// 2^kSubBits = 16 linear sub-buckets, so any recorded value lands in a
// bucket whose width is at most value/16 — every quantile is reported with
// <= 6.25% relative error, over the full uint64 nanosecond range, from a
// fixed 8 KB table. record() is two shifts, a clz and one increment (no
// allocation, no floating point), cheap enough for a per-request hot path.
//
// Threading: instances are NOT thread-safe. The intended pattern (the one
// KvService uses) is one histogram per worker thread, merge()d by the
// coordinator after the workers quiesce.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

namespace zstm::util {

class LatencyHistogram {
 public:
  static constexpr int kSubBits = 4;
  static constexpr std::uint64_t kSubCount = 1u << kSubBits;
  // Octaves kSubBits..63 plus the exact [0, kSubCount) range.
  static constexpr std::size_t kBuckets =
      kSubCount + (64 - kSubBits) * kSubCount;

  LatencyHistogram() : counts_(kBuckets, 0) {}

  void record(std::uint64_t v) {
    ++counts_[index_of(v)];
    ++count_;
    sum_ += v;
    if (v > max_) max_ = v;
    if (v < min_ || count_ == 1) min_ = v;
  }

  void merge(const LatencyHistogram& other) {
    for (std::size_t i = 0; i < kBuckets; ++i) counts_[i] += other.counts_[i];
    if (other.count_ > 0) {
      if (count_ == 0 || other.min_ < min_) min_ = other.min_;
      if (other.max_ > max_) max_ = other.max_;
    }
    count_ += other.count_;
    sum_ += other.sum_;
  }

  std::uint64_t count() const { return count_; }
  std::uint64_t max() const { return max_; }
  std::uint64_t min() const { return count_ > 0 ? min_ : 0; }
  double mean() const {
    return count_ > 0 ? static_cast<double>(sum_) / static_cast<double>(count_)
                      : 0.0;
  }

  /// Value at quantile q in [0, 1]: the upper bound of the bucket holding
  /// the ceil(q * count)-th smallest sample (so the true sample value is
  /// <= the returned one, within the bucket's 1/16 relative width).
  /// 0 when empty.
  std::uint64_t quantile(double q) const {
    if (count_ == 0) return 0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    std::uint64_t target =
        static_cast<std::uint64_t>(q * static_cast<double>(count_) + 0.5);
    if (target < 1) target = 1;
    if (target > count_) target = count_;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      seen += counts_[i];
      if (seen >= target) {
        const std::uint64_t hi = upper_bound(i);
        return hi < max_ ? hi : max_;
      }
    }
    return max_;
  }

  void reset() {
    counts_.assign(kBuckets, 0);
    count_ = sum_ = max_ = min_ = 0;
  }

  /// Bucket index of v (exposed for the unit tests).
  static std::size_t index_of(std::uint64_t v) {
    if (v < kSubCount) return static_cast<std::size_t>(v);
    const int msb = 63 - std::countl_zero(v);  // >= kSubBits
    const int shift = msb - kSubBits;
    const std::uint64_t sub = (v >> shift) - kSubCount;  // [0, kSubCount)
    return kSubCount + static_cast<std::size_t>(shift) * kSubCount +
           static_cast<std::size_t>(sub);
  }

  /// Largest value mapping to bucket i.
  static std::uint64_t upper_bound(std::size_t i) {
    if (i < kSubCount) return static_cast<std::uint64_t>(i);
    const int shift = static_cast<int>((i - kSubCount) / kSubCount);
    const std::uint64_t sub = (i - kSubCount) % kSubCount;
    const std::uint64_t lo = (kSubCount + sub) << shift;
    return lo + ((1ULL << shift) - 1);
  }

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t max_ = 0;
  std::uint64_t min_ = 0;
};

}  // namespace zstm::util
