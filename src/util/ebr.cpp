#include "util/ebr.hpp"

#include "fault/failpoint.hpp"

namespace zstm::util {

EpochManager::EpochManager(ThreadRegistry& registry, int collect_period)
    : registry_(registry),
      collect_period_(collect_period > 0 ? collect_period : 1),
      slots_(static_cast<std::size_t>(registry.capacity())),
      garbage_(static_cast<std::size_t>(registry.capacity())) {
  // Epochs start at 2 so `epoch + 2 <= global` can never be satisfied by
  // wraparound arithmetic on the initial value.
  global_epoch_.value.store(2, std::memory_order_relaxed);
}

EpochManager::~EpochManager() { drain_all(); }

void EpochManager::pin(int slot) {
  auto& st = slots_[static_cast<std::size_t>(slot)];
  if (st.nesting++ > 0) return;  // already pinned by an outer guard
  // seq_cst: the announcement must be globally visible before this thread
  // dereferences any shared version pointer, otherwise a concurrent
  // try_advance() could free memory this thread is about to read.
  st.announced.store(global_epoch_.value.load(std::memory_order_seq_cst),
                     std::memory_order_seq_cst);
}

void EpochManager::unpin(int slot) {
  auto& st = slots_[static_cast<std::size_t>(slot)];
  if (--st.nesting > 0) return;
  st.announced.store(kQuiescent, std::memory_order_release);
}

bool EpochManager::pinned(int slot) const {
  return slots_[static_cast<std::size_t>(slot)].announced.load(
             std::memory_order_acquire) != kQuiescent;
}

void EpochManager::retire_raw(int slot, void* p, Deleter deleter) {
  fault::poke(fault::Site::kEbrRetire);  // delay-only site
  auto& st = slots_[static_cast<std::size_t>(slot)];
  garbage_[static_cast<std::size_t>(slot)].value.push_back(
      Retired{p, deleter, global_epoch_.value.load(std::memory_order_acquire)});
  retired_total_.value.fetch_add(1, std::memory_order_relaxed);
  if (++st.since_collect >= collect_period_) {
    st.since_collect = 0;
    collect(slot);
  }
}

void EpochManager::flush(int slot) {
  // Each collect() attempts one epoch advance before freeing; with no
  // straggler pinned in an old epoch, three rounds walk the global epoch
  // past retire_epoch + 2 for everything retired before this call.
  for (int i = 0; i < 3; ++i) collect(slot);
  slots_[static_cast<std::size_t>(slot)].since_collect = 0;
}

bool EpochManager::try_advance() {
  const std::uint64_t e = global_epoch_.value.load(std::memory_order_seq_cst);
  const int hw = registry_.high_water();
  for (int i = 0; i < hw; ++i) {
    const std::uint64_t a =
        slots_[static_cast<std::size_t>(i)].announced.load(
            std::memory_order_seq_cst);
    if (a != kQuiescent && a != e) return false;  // straggler in an old epoch
  }
  std::uint64_t expected = e;
  global_epoch_.value.compare_exchange_strong(expected, e + 1,
                                              std::memory_order_seq_cst);
  return true;
}

void EpochManager::collect(int slot) {
  try_advance();
  const std::uint64_t e = global_epoch_.value.load(std::memory_order_acquire);
  auto& list = garbage_[static_cast<std::size_t>(slot)].value;
  std::size_t kept = 0;
  for (std::size_t i = 0; i < list.size(); ++i) {
    // Retired in epoch r: reclaimable once the global epoch reached r+2,
    // because every thread pinned then has announced an epoch >= r+1 and so
    // started after the retire was published.
    if (list[i].epoch + 2 <= e) {
      list[i].deleter(list[i].ptr, slot);
      freed_total_.value.fetch_add(1, std::memory_order_relaxed);
    } else {
      list[kept++] = list[i];
    }
  }
  list.resize(kept);
}

void EpochManager::drain_all() {
  for (std::size_t s = 0; s < garbage_.size(); ++s) {
    for (auto& item : garbage_[s].value) {
      // Single-threaded teardown: free on behalf of the retiring slot so
      // pooled nodes land back on their owner's free list.
      item.deleter(item.ptr, static_cast<int>(s));
      freed_total_.value.fetch_add(1, std::memory_order_relaxed);
    }
    garbage_[s].value.clear();
  }
}

}  // namespace zstm::util
