// Cache-line alignment helpers.
//
// Hot shared atomics (time-base counters, per-slot epochs, statistics) are
// padded to a cache line so that logically independent words do not contend
// through false sharing. 64 bytes is correct for every x86-64 and most ARM
// parts; std::hardware_destructive_interference_size is avoided because GCC
// warns that its value is ABI-fragile across translation units.
#pragma once

#include <atomic>
#include <cstddef>

namespace zstm::util {

inline constexpr std::size_t kCacheLine = 64;

/// A value of type T alone on its own cache line.
template <typename T>
struct alignas(kCacheLine) Padded {
  T value{};

  Padded() = default;
  explicit Padded(T v) : value(std::move(v)) {}
};

/// An atomic counter alone on its own cache line.
struct alignas(kCacheLine) PaddedCounter {
  std::atomic<std::uint64_t> value{0};
};

}  // namespace zstm::util
