// Epoch-based reclamation (EBR).
//
// The STMs in this repository publish immutable object versions through
// atomic pointers and retire superseded versions without blocking readers.
// The paper's prototypes ran on a JVM and delegated this to the garbage
// collector; EBR is the standard C++ substitute (see DESIGN.md §3,
// substitutions table).
//
// Protocol (classic 3-epoch scheme):
//  * A thread *pins* before touching shared version chains, announcing the
//    global epoch it observed; it unpins afterwards.
//  * retire(p) tags p with the current global epoch and queues it on the
//    retiring thread's local list (no synchronization on the list itself —
//    it is single-owner).
//  * The global epoch can advance from E to E+1 once every pinned thread
//    has announced E. A node retired in epoch E is unreachable from any
//    thread pinned in epoch >= E+2, so it is freed once the global epoch
//    reaches E+2.
//
// A transaction pins for its whole attempt, so any version pointer it reads
// remains valid until it commits or aborts.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "util/align.hpp"
#include "util/thread_registry.hpp"

namespace zstm::util {

class EpochManager {
 public:
  /// `collect_period`: a slot attempts a global epoch advance (and frees
  /// its safe garbage) every Nth retire. Larger values amortize the
  /// all-slots announcement scan at the cost of more deferred garbage;
  /// clamped to >= 1. Runtimes expose it as Config::ebr_collect_period.
  explicit EpochManager(ThreadRegistry& registry, int collect_period = 64);
  ~EpochManager();

  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  /// RAII pin. Re-entrant per slot (nested guards share one announcement).
  class Guard {
   public:
    Guard() = default;
    Guard(EpochManager* mgr, int slot) : mgr_(mgr), slot_(slot) {
      mgr_->pin(slot_);
    }
    Guard(Guard&& other) noexcept { swap(other); }
    Guard& operator=(Guard&& other) noexcept {
      release();
      swap(other);
      return *this;
    }
    ~Guard() { release(); }

   private:
    void swap(Guard& other) {
      std::swap(mgr_, other.mgr_);
      std::swap(slot_, other.slot_);
    }
    void release() {
      if (mgr_ != nullptr) {
        mgr_->unpin(slot_);
        mgr_ = nullptr;
      }
    }
    EpochManager* mgr_ = nullptr;
    int slot_ = -1;
  };

  Guard pin_guard(int slot) { return Guard(this, slot); }

  void pin(int slot);
  void unpin(int slot);
  bool pinned(int slot) const;

  /// Deleters receive the node and the slot of the thread that is freeing
  /// it (the collecting slot, not necessarily the retiring one) — pooled
  /// allocators use it to pick the thread-local return path.
  using Deleter = void (*)(void* p, int freeing_slot);

  /// Queue p for deletion once no pinned thread can still reach it.
  /// Must be called by the thread owning `slot`.
  template <typename T>
  void retire(int slot, T* p) {
    retire_raw(slot, p, [](void* q, int) { delete static_cast<T*>(q); });
  }

  void retire_raw(int slot, void* p, Deleter deleter);

  /// Opportunistically advance the global epoch and free this slot's safe
  /// garbage. Called automatically every `collect_period` retirements;
  /// callable manually.
  void collect(int slot);

  /// Quiescence hook: bounded effort to advance the epoch far enough to
  /// free everything this slot retired before the call (three advances
  /// cover the retire→epoch+2 window when no straggler is pinned). Use at
  /// natural pauses — thread detach, end of a benchmark phase — where a
  /// large collect_period would otherwise leave garbage stranded.
  void flush(int slot);

  int collect_period() const { return collect_period_; }

  /// Free *everything*. Caller must guarantee no thread is pinned (e.g.
  /// runtime destructor after joining workers).
  void drain_all();

  std::uint64_t global_epoch() const {
    return global_epoch_.value.load(std::memory_order_acquire);
  }
  std::uint64_t retired_count() const {
    return retired_total_.value.load(std::memory_order_relaxed);
  }
  std::uint64_t freed_count() const {
    return freed_total_.value.load(std::memory_order_relaxed);
  }

 private:
  struct Retired {
    void* ptr;
    Deleter deleter;
    std::uint64_t epoch;
  };

  struct alignas(kCacheLine) SlotState {
    /// kQuiescent when not pinned, else the epoch announced at pin time.
    std::atomic<std::uint64_t> announced{kQuiescent};
    /// Nesting depth; only touched by the owning thread.
    int nesting = 0;
    /// Retire counter since the last collect(); owner-only.
    int since_collect = 0;
  };

  static constexpr std::uint64_t kQuiescent = ~std::uint64_t{0};

  bool try_advance();

  ThreadRegistry& registry_;
  int collect_period_;
  // Padded, not just alignas: alignas only anchors the *start* of the
  // member, so the vector headers declared next would otherwise share the
  // epoch's contended line (PR 7 padding audit).
  Padded<std::atomic<std::uint64_t>> global_epoch_;
  std::vector<SlotState> slots_;
  // Garbage lists are single-owner; one vector per slot, padded apart.
  std::vector<Padded<std::vector<Retired>>> garbage_;
  // Every retire/free touches these; padded so the two write-hot words do
  // not share a line with each other or with neighbors.
  PaddedCounter retired_total_;
  PaddedCounter freed_total_;
};

}  // namespace zstm::util
