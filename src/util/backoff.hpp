// Bounded exponential backoff for retry loops and "Polite" contention
// management. Spins with pause hints first, then yields, so that on
// oversubscribed machines (threads > cores, as in the paper's 32-thread runs
// on 8 cores) waiting transactions release the CPU instead of starving the
// transaction they are waiting for.
#pragma once

#include <cstdint>
#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace zstm::util {

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#else
  // Fallback: a compiler barrier keeps the loop from being optimized into a
  // pure busy-load of the same cache line.
  asm volatile("" ::: "memory");
#endif
}

class Backoff {
 public:
  /// `jitter_seed != 0` randomizes each episode uniformly over
  /// (limit/2, limit] — randomized-exponential backoff, so two transactions
  /// aborting each other don't wake in lockstep and re-collide forever.
  /// The default (0) keeps the exact deterministic spin counts.
  explicit Backoff(std::uint32_t min_spins = 4, std::uint32_t max_spins = 1024,
                   std::uint64_t jitter_seed = 0)
      : limit_(min_spins), min_(min_spins), max_(max_spins),
        rng_(jitter_seed) {}

  /// One backoff episode; doubles the next episode up to the cap.
  void pause() {
    if (limit_ >= max_) {
      // Past the spin budget: assume the other party needs our core.
      std::this_thread::yield();
      return;
    }
    std::uint32_t spins = limit_;
    if (rng_ != 0) {
      // xorshift64: cheap, and private state means no sharing between
      // backoff instances.
      rng_ ^= rng_ << 13;
      rng_ ^= rng_ >> 7;
      rng_ ^= rng_ << 17;
      spins = limit_ / 2 + 1 +
              static_cast<std::uint32_t>(rng_ % (limit_ / 2 + 1));
    }
    for (std::uint32_t i = 0; i < spins; ++i) cpu_relax();
    limit_ *= 2;
  }

  void reset() { limit_ = min_; }

  std::uint32_t current_limit() const { return limit_; }

 private:
  std::uint32_t limit_;
  std::uint32_t min_;
  std::uint32_t max_;
  std::uint64_t rng_;
};

}  // namespace zstm::util
