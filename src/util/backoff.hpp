// Bounded exponential backoff for retry loops and "Polite" contention
// management. Spins with pause hints first, then yields, so that on
// oversubscribed machines (threads > cores, as in the paper's 32-thread runs
// on 8 cores) waiting transactions release the CPU instead of starving the
// transaction they are waiting for.
#pragma once

#include <cstdint>
#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace zstm::util {

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#else
  // Fallback: a compiler barrier keeps the loop from being optimized into a
  // pure busy-load of the same cache line.
  asm volatile("" ::: "memory");
#endif
}

class Backoff {
 public:
  explicit Backoff(std::uint32_t min_spins = 4, std::uint32_t max_spins = 1024)
      : limit_(min_spins), max_(max_spins) {}

  /// One backoff episode; doubles the next episode up to the cap.
  void pause() {
    if (limit_ >= max_) {
      // Past the spin budget: assume the other party needs our core.
      std::this_thread::yield();
      return;
    }
    for (std::uint32_t i = 0; i < limit_; ++i) cpu_relax();
    limit_ *= 2;
  }

  void reset() { limit_ = 4; }

  std::uint32_t current_limit() const { return limit_; }

 private:
  std::uint32_t limit_;
  std::uint32_t max_;
};

}  // namespace zstm::util
