// Tiny test-and-test-and-set spin lock with RAII guard.
//
// Used only for short, bounded critical sections on cold metadata paths
// (S-STM reader-list mutation). Hot paths use CAS protocols directly.
// Satisfies the Lockable named requirements so std::lock_guard /
// std::scoped_lock work with it (CP.20: RAII, never plain lock/unlock).
#pragma once

#include <atomic>

#include "util/backoff.hpp"

namespace zstm::util {

class SpinLock {
 public:
  void lock() {
    Backoff bo;
    for (;;) {
      // Test-and-test-and-set: spin on the (shared) cached value and only
      // attempt the RMW when the lock looks free.
      if (!locked_.load(std::memory_order_relaxed) &&
          !locked_.exchange(true, std::memory_order_acquire)) {
        return;
      }
      bo.pause();
    }
  }

  bool try_lock() {
    return !locked_.load(std::memory_order_relaxed) &&
           !locked_.exchange(true, std::memory_order_acquire);
  }

  void unlock() { locked_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> locked_{false};
};

}  // namespace zstm::util
