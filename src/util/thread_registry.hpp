// Thread slot registry.
//
// Every runtime (LSA, CS, S, Z) owns one ThreadRegistry. A worker thread
// attaches before executing transactions and receives a small dense slot id
// in [0, capacity). Slots index into vector-clock components, EBR epoch
// slots, and per-thread statistics, exactly matching the paper's model of
// "each thread has its own component in a vector clock".
//
// Registration is RAII: destroying the Registration releases the slot for
// reuse by later threads, so short-lived worker pools do not exhaust slots.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <utility>
#include <vector>

#include "util/align.hpp"

namespace zstm::util {

class ThreadRegistry {
 public:
  /// Maximum threads a registry will ever track; sized for the paper's
  /// largest experiment (32 threads) with headroom.
  static constexpr int kMaxThreads = 64;

  explicit ThreadRegistry(int capacity = kMaxThreads);

  ThreadRegistry(const ThreadRegistry&) = delete;
  ThreadRegistry& operator=(const ThreadRegistry&) = delete;

  class Registration {
   public:
    Registration() = default;
    Registration(ThreadRegistry* owner, int slot) : owner_(owner), slot_(slot) {}
    Registration(Registration&& other) noexcept { swap(other); }
    Registration& operator=(Registration&& other) noexcept {
      release();
      swap(other);
      return *this;
    }
    ~Registration() { release(); }

    int slot() const { return slot_; }
    bool attached() const { return owner_ != nullptr; }

   private:
    void swap(Registration& other) {
      std::swap(owner_, other.owner_);
      std::swap(slot_, other.slot_);
    }
    void release();

    ThreadRegistry* owner_ = nullptr;
    int slot_ = -1;
  };

  /// Claim a free slot, preferring one whose static home group matches the
  /// cache group of the CPU the calling thread runs on (so per-slot arrays
  /// indexed by slot id stay clustered per cache group); falls back to the
  /// lowest free slot, and degenerates to exactly that on single-group
  /// machines. Throws std::runtime_error if full.
  Registration attach();

  /// Static cache-group home of a slot (util::slot_home_group over this
  /// registry's capacity).
  int home_group(int slot) const;

  int capacity() const { return capacity_; }

  /// Highest slot ever claimed + 1; bounds iteration over per-slot state.
  int high_water() const { return high_water_.load(std::memory_order_acquire); }

  /// True if the slot is currently claimed by a live thread.
  bool active(int slot) const {
    return slots_[static_cast<std::size_t>(slot)].value.load(
        std::memory_order_acquire);
  }

  /// Slot-release hooks: `fn(slot)` runs on the releasing thread just
  /// before the slot is marked free (it still owns the slot's per-thread
  /// state). The NodePool uses this to drain a dying thread's cross-thread
  /// return stacks so pooled memory survives thread churn. Returns an id
  /// for remove_release_listener.
  int add_release_listener(std::function<void(int)> fn);
  void remove_release_listener(int id);

 private:
  friend class Registration;
  void release_slot(int slot);

  int capacity_;
  std::atomic<int> high_water_{0};
  std::vector<Padded<std::atomic<bool>>> slots_;
  std::mutex listeners_mutex_;
  int next_listener_id_ = 0;
  std::vector<std::pair<int, std::function<void(int)>>> listeners_;
};

}  // namespace zstm::util
