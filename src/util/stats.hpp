// Per-thread statistics, aggregated on demand.
//
// Counters are bumped on transaction hot paths, so each thread slot gets a
// cache-line-padded block and increments are relaxed (only aggregate totals
// matter, and they are read after workers quiesce or as monotone progress
// indicators).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "util/align.hpp"
#include "util/thread_registry.hpp"

namespace zstm::util {

enum class Counter : int {
  kCommits = 0,
  kAborts,
  kShortCommits,
  kShortAborts,
  kLongCommits,
  kLongAborts,
  kReads,
  kWrites,
  kExtensions,       // LSA snapshot extensions
  kExtensionFails,
  kValidationFails,  // commit-time validation aborts
  kZoneConflicts,    // Z-STM short transactions hitting an active zone edge
  kZonePassed,       // Z-STM long transactions passed by a higher zc
  kCmWaits,          // contention-manager imposed delays
  kCmKills,          // contention-manager aborts of the enemy
  kFalseConflicts,   // plausible-clock-induced aborts (vs. exact VC verdict)
  kRetentionGrows,   // adaptive retention: per-object bound doubled
  kRetentionDecays,  // adaptive retention: per-object bound shrank by one
  kPoolHits,         // node allocations served from a slab free list
  kPoolMisses,       // node allocations that hit the global heap (slab carve)
  kPoolReturns,      // cross-thread node releases routed via an MPSC stack
  kClockAdopts,      // TL2 GV5: commit-time CAS lost, winner's value adopted
  kCount
};

const char* counter_name(Counter c);

struct StatsSnapshot {
  std::array<std::uint64_t, static_cast<std::size_t>(Counter::kCount)> totals{};

  std::uint64_t operator[](Counter c) const {
    return totals[static_cast<std::size_t>(c)];
  }
  std::string to_string() const;
};

class StatsDomain {
 public:
  explicit StatsDomain(const ThreadRegistry& registry);

  void add(int slot, Counter c, std::uint64_t n = 1) {
    cells_[static_cast<std::size_t>(slot)]
        .value[static_cast<std::size_t>(c)]
        .fetch_add(n, std::memory_order_relaxed);
  }

  StatsSnapshot snapshot() const;
  void reset();

 private:
  using Cell =
      std::array<std::atomic<std::uint64_t>, static_cast<std::size_t>(Counter::kCount)>;

  const ThreadRegistry& registry_;
  std::vector<Padded<Cell>> cells_;
};

}  // namespace zstm::util
