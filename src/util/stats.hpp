// Per-thread statistics, aggregated on demand.
//
// Counters are bumped on transaction hot paths, so each thread slot gets a
// cache-line-padded block and increments are relaxed (only aggregate totals
// matter, and they are read after workers quiesce or as monotone progress
// indicators).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "util/align.hpp"
#include "util/thread_registry.hpp"

namespace zstm::util {

enum class Counter : int {
  kCommits = 0,
  kAborts,
  kShortCommits,
  kShortAborts,
  kLongCommits,
  kLongAborts,
  kReads,
  kWrites,
  kExtensions,       // LSA snapshot extensions
  kExtensionFails,
  kValidationFails,  // commit-time validation aborts
  kZoneConflicts,    // Z-STM short transactions hitting an active zone edge
  kZonePassed,       // Z-STM long transactions passed by a higher zc
  kCmWaits,          // contention-manager imposed delays
  kCmKills,          // contention-manager aborts of the enemy
  kFalseConflicts,   // plausible-clock-induced aborts (vs. exact VC verdict)
  kRetentionGrows,   // adaptive retention: per-object bound doubled
  kRetentionDecays,  // adaptive retention: per-object bound shrank by one
  kPoolHits,         // node allocations served from a slab free list
  kPoolMisses,       // node allocations that hit the global heap (slab carve)
  kPoolReturns,      // cross-thread node releases routed via an MPSC stack
  kClockAdopts,      // TL2 GV5: commit-time CAS lost, winner's value adopted
  kCount
};

const char* counter_name(Counter c);

struct StatsSnapshot {
  std::array<std::uint64_t, static_cast<std::size_t>(Counter::kCount)> totals{};

  std::uint64_t operator[](Counter c) const {
    return totals[static_cast<std::size_t>(c)];
  }
  std::string to_string() const;
};

class StatsDomain {
 public:
  explicit StatsDomain(const ThreadRegistry& registry);

  void add(int slot, Counter c, std::uint64_t n = 1) {
    cells_[static_cast<std::size_t>(slot)]
        .value[static_cast<std::size_t>(c)]
        .fetch_add(n, std::memory_order_relaxed);
  }

  StatsSnapshot snapshot() const;
  void reset();

 private:
  using Cell =
      std::array<std::atomic<std::uint64_t>, static_cast<std::size_t>(Counter::kCount)>;

  const ThreadRegistry& registry_;
  std::vector<Padded<Cell>> cells_;
};

/// Starvation watchdog: per-slot progress cells the façade's retry loop
/// stamps on transaction begin/attempt/end, cheap enough to be always on
/// (two relaxed stores per transaction, padded per slot). `snapshot()` is
/// the monitoring hook: the slot with the highest attempt count ever seen,
/// the currently longest-running transaction, and how often the serial
/// fallback fired. All reads are advisory — a snapshot races with live
/// transactions by design.
class ProgressTracker {
 public:
  explicit ProgressTracker(int max_slots);

  /// Monotonic nanoseconds (steady clock) — exposed so tests and snapshots
  /// share one timebase.
  static std::uint64_t now_ns();

  void tx_begin(int slot) {
    auto& c = cells_[static_cast<std::size_t>(slot)].value;
    c.active_since_ns.store(now_ns(), std::memory_order_relaxed);
    c.attempts.store(0, std::memory_order_relaxed);
  }
  void note_attempt(int slot, std::uint32_t attempt) {
    auto& c = cells_[static_cast<std::size_t>(slot)].value;
    c.attempts.store(attempt, std::memory_order_relaxed);
  }
  void note_serial(int slot) {
    cells_[static_cast<std::size_t>(slot)].value.serial_entries.fetch_add(
        1, std::memory_order_relaxed);
  }
  void tx_end(int slot, std::uint32_t attempts) {
    auto& c = cells_[static_cast<std::size_t>(slot)].value;
    c.active_since_ns.store(0, std::memory_order_relaxed);
    c.attempts.store(0, std::memory_order_relaxed);
    std::uint32_t prev = c.max_attempts.load(std::memory_order_relaxed);
    while (attempts > prev &&
           !c.max_attempts.compare_exchange_weak(prev, attempts,
                                                 std::memory_order_relaxed)) {
    }
  }

  struct Snapshot {
    /// Highest attempt count any finished transaction needed, and where.
    std::uint32_t max_attempts = 0;
    int max_attempts_slot = -1;
    /// Age of the oldest transaction active at snapshot time (0 = none).
    std::uint64_t oldest_active_ns = 0;
    int oldest_active_slot = -1;
    /// Attempt count the oldest active transaction has reached so far.
    std::uint32_t oldest_active_attempts = 0;
    /// Times the serial-irrevocable fallback was entered.
    std::uint64_t serial_entries = 0;
  };
  Snapshot snapshot() const;
  void reset();

 private:
  struct Cell {
    std::atomic<std::uint64_t> active_since_ns{0};  // 0 = slot idle
    std::atomic<std::uint32_t> attempts{0};
    std::atomic<std::uint32_t> max_attempts{0};
    std::atomic<std::uint64_t> serial_entries{0};
  };
  std::vector<Padded<Cell>> cells_;
};

}  // namespace zstm::util
