// Cache-topology discovery for NUMA/cluster-aware slot and shard layout.
//
// The scalable-timebase work (DESIGN.md §10) wants logically related
// per-thread state — registry slots, timebase shards, stats cells — placed
// so threads sharing a last-level cache also share a group id, while
// threads on different packages/clusters land in different groups. Linux
// exposes this through sysfs; everywhere else (or when sysfs is absent,
// e.g. in minimal containers) the helpers degrade to a single group, which
// reproduces the pre-topology behavior exactly.
//
// Discovery runs once per process and is immutable afterwards, so all
// accessors are cheap and thread-safe.
#pragma once

#include <string>
#include <vector>

namespace zstm::util {

struct CpuTopology {
  /// Online CPUs (>= 1).
  int cpus = 1;
  /// Distinct last-level-cache groups (>= 1).
  int groups = 1;
  /// group_of_cpu[cpu] in [0, groups); sized `cpus`.
  std::vector<int> group_of_cpu;
  /// Where the grouping came from: "sysfs-llc" (shared_cpu_list of the
  /// largest cache level), "sysfs-package" (physical_package_id), or
  /// "fallback" (single group).
  std::string source;
};

/// The process-wide topology snapshot (discovered on first use).
const CpuTopology& cpu_topology();

/// CPU the calling thread is currently running on; -1 when unknown.
int current_cpu();

/// Cache group of the calling thread's current CPU (0 when unknown —
/// always a valid group index).
int current_cache_group();

/// Static home group of a registry slot: slots are split into `groups`
/// contiguous blocks so per-slot arrays indexed by slot id stay clustered
/// per cache group. Matches ThreadRegistry's topology-aware attach and
/// timebase::ShardedClock's default shard map.
int slot_home_group(int slot, int capacity);

}  // namespace zstm::util
