// Small, fast, seedable PRNGs for workloads and tests.
//
// Benchmarks need a per-thread generator with no shared state (CP.3) and a
// period far exceeding any run length. splitmix64 seeds xoshiro-style
// xorshift128+ state so that small consecutive seeds yield uncorrelated
// streams.
#pragma once

#include <cstdint>

namespace zstm::util {

/// splitmix64: used to expand a 64-bit seed into generator state.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xorshift128+ — fast non-cryptographic PRNG, one instance per thread.
class Xorshift {
 public:
  explicit Xorshift(std::uint64_t seed = 0x853c49e6748fea9bULL) {
    std::uint64_t sm = seed;
    s0_ = splitmix64(sm);
    s1_ = splitmix64(sm);
    if (s0_ == 0 && s1_ == 0) s1_ = 1;  // the all-zero state is absorbing
  }

  std::uint64_t next() {
    std::uint64_t x = s0_;
    const std::uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) { return next() % bound; }

  /// Uniform double in [0, 1).
  double next_unit() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli trial with probability p.
  bool chance(double p) { return next_unit() < p; }

 private:
  std::uint64_t s0_;
  std::uint64_t s1_;
};

}  // namespace zstm::util
