#include "fault/failpoint.hpp"

#include <cstdlib>
#include <cstring>
#include <string>

namespace zstm::fault {
namespace {

thread_local int t_suppress_depth = 0;

// splitmix64 finalizer: whether hit #n of site s fires is a pure function
// of (seed, s, n), independent of scheduling.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double unit_from(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

struct SiteInfo {
  const char* name;
  std::uint32_t allowed;
  Effect deflt;
};

constexpr std::uint32_t kDelayBit = effect_bit(Effect::kDelay);
constexpr std::uint32_t kAbortDelayExit =
    effect_bit(Effect::kAbort) | kDelayBit | effect_bit(Effect::kExitThread);
constexpr std::uint32_t kCasDelay = effect_bit(Effect::kCasFail) | kDelayBit;

// Allowed-effect rationale (see DESIGN.md §11 for the full table):
//  - settle/install run with a tentative version already linked into a
//    locator the caller must recycle on failure — unwinding out of them
//    (abort/exit) leaks it, so only CasFail/Delay are legal.
//  - the acquire/arbitrate loops sit at the top of write_object where the
//    runtimes' own abort paths (and the ThreadCtx unwind) already clean up
//    everything, so Abort/Delay/ExitThread are all fair game.
//  - tl2 stripe-lock is mid-acquisition: the caller's failure path releases
//    what it holds, so CasFail is safe but unwinding would strand stripes.
//  - revalidation happens with stripes held but has an abort path that
//    releases them, so Abort is legal there (ExitThread is not: the throw
//    would bypass release_acquired).
//  - lease fence / EBR retire have no failure path at all — Delay only.
//  - pool alloc may throw bad_alloc by contract — Oom/Delay.
const SiteInfo kSites[static_cast<int>(Site::kCount)] = {
    {"store.settle_cas", kCasDelay, Effect::kCasFail},
    {"store.install_cas", kCasDelay, Effect::kCasFail},
    {"lsa.acquire", kAbortDelayExit, Effect::kAbort},
    {"cs.acquire", kAbortDelayExit, Effect::kAbort},
    {"sstm.acquire", kAbortDelayExit, Effect::kAbort},
    {"zl.acquire", kAbortDelayExit, Effect::kAbort},
    {"tl2.stripe_lock", kCasDelay, Effect::kCasFail},
    {"tl2.revalidate", effect_bit(Effect::kAbort) | kDelayBit, Effect::kAbort},
    {"timebase.lease_fence", kDelayBit, Effect::kDelay},
    {"ebr.retire", kDelayBit, Effect::kDelay},
    {"pool.alloc", effect_bit(Effect::kOom) | kDelayBit, Effect::kOom},
    // Net-layer sites (DESIGN.md §13.5): CasFail = "this I/O step fails".
    // The connection state machine has a recovery path for every one of
    // them (short reads re-enter the incremental parser, short writes stay
    // in the out-buffer, a dropped accept is just a closed fd), so no
    // effect here can corrupt server state — that is what the torture and
    // chaos `net` suites pin.
    {"net.accept", kCasDelay, Effect::kCasFail},
    {"net.read", kCasDelay, Effect::kCasFail},
    {"net.write", kCasDelay, Effect::kCasFail},
    {"net.conn_kill", effect_bit(Effect::kAbort) | kDelayBit, Effect::kAbort},
};

void bounded_spin(std::uint64_t h) {
  // 64..4159 dependent no-op iterations — long enough to widen a CAS race
  // window, short enough to never look like a hang under TSan.
  volatile std::uint64_t sink = 0;
  const std::uint64_t n = 64 + (h & 0xfff);
  for (std::uint64_t i = 0; i < n; ++i) sink = sink + i;
}

Effect parse_effect(const std::string& tok, bool* ok) {
  *ok = true;
  if (tok == "abort") return Effect::kAbort;
  if (tok == "casfail") return Effect::kCasFail;
  if (tok == "delay") return Effect::kDelay;
  if (tok == "exit") return Effect::kExitThread;
  if (tok == "oom") return Effect::kOom;
  *ok = false;
  return Effect::kNone;
}

}  // namespace

namespace detail {
std::atomic<int> g_armed_sites{0};

Effect on_hit(Site s) {
  if (t_suppress_depth > 0) return Effect::kNone;
  return registry().evaluate(s);
}
}  // namespace detail

const char* site_name(Site s) { return kSites[static_cast<int>(s)].name; }

const char* effect_name(Effect e) {
  switch (e) {
    case Effect::kNone:
      return "none";
    case Effect::kAbort:
      return "abort";
    case Effect::kCasFail:
      return "casfail";
    case Effect::kDelay:
      return "delay";
    case Effect::kExitThread:
      return "exit";
    case Effect::kOom:
      return "oom";
  }
  return "?";
}

std::uint32_t allowed_effects(Site s) {
  return kSites[static_cast<int>(s)].allowed;
}

Effect default_effect(Site s) { return kSites[static_cast<int>(s)].deflt; }

SuppressGuard::SuppressGuard() { ++t_suppress_depth; }
SuppressGuard::~SuppressGuard() { --t_suppress_depth; }

Registry::Registry() {
  if (const char* seed = std::getenv("ZSTM_FAILPOINT_SEED")) {
    seed_ = std::strtoull(seed, nullptr, 0);
  }
  if (const char* spec = std::getenv("ZSTM_FAILPOINTS")) {
    load_spec(spec);
  }
}

bool Registry::arm(Site s, double prob, std::uint64_t after, Effect effect) {
  if (!(prob >= 0.0 && prob <= 1.0)) return false;
  if (effect == Effect::kNone) effect = default_effect(s);
  if (!(allowed_effects(s) & effect_bit(effect))) return false;
  SiteState& st = sites_[static_cast<int>(s)];
  // Publish the parameters before the armed flag: evaluate() acquires the
  // flag, so a poke that observes armed also observes prob/after/effect.
  // (Re-arming a site while other threads are poking it is not supported.)
  st.prob = prob;
  st.after = after;
  st.effect = effect;
  if (!st.armed.exchange(true, std::memory_order_release)) {
    detail::g_armed_sites.fetch_add(1, std::memory_order_relaxed);
  }
  return true;
}

void Registry::disarm(Site s) {
  SiteState& st = sites_[static_cast<int>(s)];
  if (st.armed.exchange(false, std::memory_order_release)) {
    detail::g_armed_sites.fetch_sub(1, std::memory_order_relaxed);
  }
}

void Registry::disarm_all() {
  for (int i = 0; i < static_cast<int>(Site::kCount); ++i) {
    disarm(static_cast<Site>(i));
  }
  reset_counts();
}

void Registry::arm_all_abort() {
  for (int i = 0; i < static_cast<int>(Site::kCount); ++i) {
    const Site s = static_cast<Site>(i);
    if (allowed_effects(s) & effect_bit(Effect::kAbort)) {
      arm(s, 1.0, 0, Effect::kAbort);
    }
  }
}

bool Registry::armed(Site s) const {
  return sites_[static_cast<int>(s)].armed.load(std::memory_order_acquire);
}

std::uint64_t Registry::hits(Site s) const {
  return sites_[static_cast<int>(s)].hits.load(std::memory_order_relaxed);
}

std::uint64_t Registry::triggers(Site s) const {
  return sites_[static_cast<int>(s)].triggers.load(std::memory_order_relaxed);
}

std::uint64_t Registry::triggers_total() const {
  std::uint64_t total = 0;
  for (int i = 0; i < static_cast<int>(Site::kCount); ++i) {
    total += triggers(static_cast<Site>(i));
  }
  return total;
}

void Registry::reset_counts() {
  for (auto& st : sites_) {
    st.hits.store(0, std::memory_order_relaxed);
    st.triggers.store(0, std::memory_order_relaxed);
  }
}

void Registry::set_seed(std::uint64_t seed) { seed_ = seed; }

Effect Registry::evaluate(Site s) {
  SiteState& st = sites_[static_cast<int>(s)];
  if (!st.armed.load(std::memory_order_acquire)) return Effect::kNone;
  const std::uint64_t ordinal =
      st.hits.fetch_add(1, std::memory_order_relaxed);
  if (ordinal < st.after) return Effect::kNone;
  const std::uint64_t h = mix(
      seed_ + 0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(s) + 1) +
      ordinal);
  if (st.prob < 1.0 && unit_from(h) >= st.prob) return Effect::kNone;
  st.triggers.fetch_add(1, std::memory_order_relaxed);
  switch (st.effect) {
    case Effect::kDelay:
      bounded_spin(mix(h));
      return Effect::kNone;  // delay is self-contained; caller proceeds
    case Effect::kExitThread:
      throw ThreadExit{};
    default:
      return st.effect;
  }
}

bool Registry::load_spec(const char* spec) {
  if (spec == nullptr) return false;
  bool all_ok = true;
  const std::string text(spec);
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    const std::string entry = text.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) continue;

    // entry := site:prob[:after[:effect]]
    std::string parts[4];
    int nparts = 0;
    std::size_t p = 0;
    while (nparts < 4) {
      std::size_t colon = entry.find(':', p);
      if (colon == std::string::npos) {
        parts[nparts++] = entry.substr(p);
        break;
      }
      parts[nparts++] = entry.substr(p, colon - p);
      p = colon + 1;
    }
    if (nparts < 2) {
      all_ok = false;
      continue;
    }

    int site_idx = -1;
    for (int i = 0; i < static_cast<int>(Site::kCount); ++i) {
      if (parts[0] == kSites[i].name) {
        site_idx = i;
        break;
      }
    }
    if (site_idx < 0) {
      all_ok = false;
      continue;
    }

    char* end = nullptr;
    const double prob = std::strtod(parts[1].c_str(), &end);
    if (end == parts[1].c_str() || *end != '\0') {
      all_ok = false;
      continue;
    }
    std::uint64_t after = 0;
    if (nparts >= 3 && !parts[2].empty()) {
      after = std::strtoull(parts[2].c_str(), &end, 0);
      if (end == parts[2].c_str() || *end != '\0') {
        all_ok = false;
        continue;
      }
    }
    Effect effect = Effect::kNone;
    if (nparts >= 4 && !parts[3].empty()) {
      bool ok = false;
      effect = parse_effect(parts[3], &ok);
      if (!ok) {
        all_ok = false;
        continue;
      }
    }
    if (!arm(static_cast<Site>(site_idx), prob, after, effect)) {
      all_ok = false;
    }
  }
  return all_ok;
}

Registry& registry() {
  static Registry r;
  return r;
}

}  // namespace zstm::fault
