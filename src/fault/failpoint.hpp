// Deterministic failpoint injection for the STM protocol hot spots
// (DESIGN.md §11).
//
// A *failpoint site* is a named place in a protocol where the rare
// interleaving lives: the settle/install CAS races in the object substrate,
// the per-runtime acquire/arbitrate loops, tl2's stripe-lock acquisition
// and commit revalidation, the timebase lease fence, EBR retirement, and
// node-pool allocation. Each site calls `fault::poke(Site)`; the registry
// decides — deterministically, from a seed and the site's hit ordinal —
// whether to inject an *effect*:
//
//   kAbort      the caller aborts the current transaction attempt
//   kCasFail    the caller takes its CAS-failed / lock-busy path
//   kDelay      a bounded spin executed inside poke() to widen race windows
//   kExitThread poke() throws fault::ThreadExit (thread dies mid-transaction
//               by exception unwind; cleanup is the unwinder's job)
//   kOom        the caller reports allocation failure (std::bad_alloc)
//
// Each site carries a compile-time *allowed-effect mask*: effects that would
// corrupt protocol state at that site (e.g. unwinding out of the middle of
// ObjectStore::install, which would leak the caller's tentative version, or
// exiting while holding tl2 stripe locks) cannot be armed there. A site's
// default effect is its most interesting allowed one.
//
// Cost when disabled: `poke` is one relaxed load of a cold global atomic
// plus a statically-predicted-untaken branch — no registry access, no per
// site state touched (the `FaultDisabledCostsNothing` test pins the
// zero-hit behaviour; bench_fig6 vs the committed baseline pins the cost).
//
// Arming: programmatic (`registry().arm(...)`) or via the environment,
// parsed once at first use:
//
//   ZSTM_FAILPOINTS=site:prob[:after[:effect]],...   e.g.
//   ZSTM_FAILPOINTS=lsa.acquire:0.05,tl2.stripe_lock:0.2:100:casfail
//   ZSTM_FAILPOINT_SEED=42
//
// `prob` ∈ [0,1]; `after` skips the first N hits of the site; `effect`
// defaults per site. Determinism: whether hit #n of site s triggers is a
// pure function of (seed, s, n), so a single-threaded run replays exactly
// and a multi-threaded run is reproducible up to hit-ordinal interleaving.
//
// Irrevocable sections (the façade's serial fallback) suppress injection
// with a thread-local `SuppressGuard` — a transaction that must commit is
// never sabotaged.
#pragma once

#include <atomic>
#include <cstdint>

namespace zstm::fault {

enum class Site : int {
  kStoreSettleCas = 0,  ///< ObjectStore::settle, before the locator CAS
  kStoreInstallCas,     ///< ObjectStore::install, before the locator CAS
  kLsaAcquire,          ///< lsa::Tx::write_object arbitrate loop
  kCsAcquire,           ///< cs RuntimeT::Tx::write_object arbitrate loop
  kSstmAcquire,         ///< sstm::Tx::write_object arbitrate loop
  kZlAcquire,           ///< zl::LongTx::acquire_ready_locator loop
  kTl2StripeLock,       ///< tl2 commit: per-stripe lock acquisition
  kTl2Revalidate,       ///< tl2 commit: read-set revalidation
  kTimebaseLeaseFence,  ///< BatchedCounter::fence_after (delay only)
  kEbrRetire,           ///< EpochManager::retire_raw (delay only)
  kPoolAlloc,           ///< NodePool::create / tl2 snapshot buffers (OOM)
  // Networked front end (src/net/, DESIGN.md §13). In this layer the
  // effects are reinterpreted against the wire, not a transaction:
  // kCasFail means "take the failure path of this I/O step".
  kNetAccept,    ///< acceptor: casfail = drop the fresh connection
  kNetRead,      ///< event loop recv: casfail = short read (1 byte kept)
  kNetWrite,     ///< event loop send: casfail = short write (1 byte sent)
  kNetConnKill,  ///< per parsed request: abort = hard-close the connection
  kCount
};

enum class Effect : std::uint8_t {
  kNone = 0,
  kAbort,
  kCasFail,
  kDelay,
  kExitThread,
  kOom,
};

constexpr std::uint32_t effect_bit(Effect e) {
  return 1u << static_cast<unsigned>(e);
}

/// Thrown by the kExitThread effect: simulates a worker dying
/// mid-transaction via exception unwind. Test threads catch it and return;
/// the runtimes' unwind paths must leave no locator/stripe/lease behind.
struct ThreadExit {};

const char* site_name(Site s);
const char* effect_name(Effect e);
/// Effects `arm` accepts at `s` (a bitmask of effect_bit values). The mask
/// excludes effects that would corrupt protocol state at that site.
std::uint32_t allowed_effects(Site s);
/// The effect used when none is given (env spec without `:effect`).
Effect default_effect(Site s);

namespace detail {
/// Number of armed sites; 0 keeps poke() on its branch-free-ish fast path.
extern std::atomic<int> g_armed_sites;
Effect on_hit(Site s);
}  // namespace detail

/// The hot-path check every site compiles down to: one relaxed load and an
/// untaken branch when nothing is armed anywhere.
inline Effect poke(Site s) {
  if (__builtin_expect(
          detail::g_armed_sites.load(std::memory_order_relaxed) == 0, 1)) {
    return Effect::kNone;
  }
  return detail::on_hit(s);
}

/// Thread-local injection suppression (re-entrant). Held by the façade's
/// serial-irrevocable mode: an irrevocable attempt must not be sabotaged.
class SuppressGuard {
 public:
  SuppressGuard();
  ~SuppressGuard();
  SuppressGuard(const SuppressGuard&) = delete;
  SuppressGuard& operator=(const SuppressGuard&) = delete;
};

class Registry {
 public:
  /// Arm `s`: hits beyond the first `after` trigger `effect` with
  /// probability `prob`. `effect == kNone` selects the site's default.
  /// Returns false (and leaves the site disarmed) if the effect is not in
  /// the site's allowed mask or prob is not in [0, 1].
  bool arm(Site s, double prob, std::uint64_t after = 0,
           Effect effect = Effect::kNone);
  void disarm(Site s);
  /// Disarm every site and zero all hit/trigger counts (test isolation).
  void disarm_all();

  /// Arm every site whose allowed mask includes kAbort at probability 1.
  /// (Sites that only support kCasFail are deliberately excluded: a CAS
  /// that spuriously fails 100% of the time livelocks the retry loop by
  /// construction instead of aborting — see DESIGN.md §11.)
  void arm_all_abort();

  bool armed(Site s) const;
  /// Times an armed site was evaluated / times an effect actually fired.
  std::uint64_t hits(Site s) const;
  std::uint64_t triggers(Site s) const;
  std::uint64_t triggers_total() const;
  void reset_counts();

  void set_seed(std::uint64_t seed);
  std::uint64_t seed() const { return seed_; }

  /// Parse a ZSTM_FAILPOINTS-style spec and arm accordingly. Returns false
  /// on any malformed entry (valid entries before it stay armed).
  bool load_spec(const char* spec);

 private:
  friend Registry& registry();
  friend Effect detail::on_hit(Site s);
  Registry();

  struct SiteState {
    std::atomic<bool> armed{false};
    double prob = 0.0;
    Effect effect = Effect::kNone;
    std::uint64_t after = 0;
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> triggers{0};
  };

  Effect evaluate(Site s);

  std::uint64_t seed_ = 0x5eedfa17u;
  SiteState sites_[static_cast<int>(Site::kCount)];
};

/// The process-wide registry. First call parses ZSTM_FAILPOINTS /
/// ZSTM_FAILPOINT_SEED from the environment.
Registry& registry();

}  // namespace zstm::fault
