// CS-STM — the causally serializable STM of §4.1, a line-by-line
// implementation of Algorithm 1 on top of DSTM-style locators.
//
//  * The time base is a vector clock (VcDomain) or an REV plausible clock
//    (RevDomain, §4.3) — the template parameter. The paper's observation
//    that plausible clocks drop in "with almost no modifications" holds
//    literally here: both domains expose zero()/advance() and stamps with
//    merge()/compare().
//  * Start:  T.ct ← VCp, the committing thread's last committed timestamp
//            (Algorithm 1 line 3).
//  * Open:   T.ct ← element-wise max(T.ct, v.ct) for the current version v
//            (line 8); writes install a locator (single writer per object,
//            conflicts arbitrated by the contention manager, lines 10-13)
//            and duplicate the current version (line 14). Reads are
//            invisible.
//  * Validate (lines 20-26): abort iff some read version has a committed
//            successor whose timestamp strictly precedes T.ct — i.e. the
//            transaction would both causally precede and follow another.
//            Successors with concurrent timestamps are tolerated; that is
//            exactly where causal serializability admits more schedules
//            than serializability (Figure 1's long transaction commits).
//  * Commit: increment own component (line 29; skipped for read-only
//            transactions), publish with the single status CAS, remember
//            VCp (line 31).
//
// Old versions (deviation recorded in DESIGN.md §4): the paper keeps only
// the last committed version per object (footnote 1). We retain a short
// chain purely to *find* the immediate
// successor of a read version during validation; a transaction whose read
// version was pruned out aborts conservatively, matching the paper's
// single-version semantics.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "cm/contention_manager.hpp"
#include "history/recorder.hpp"
#include "runtime/payload.hpp"
#include "runtime/txdesc.hpp"
#include "timebase/plausible_clock.hpp"
#include "timebase/vector_clock.hpp"
#include "util/backoff.hpp"
#include "util/ebr.hpp"
#include "util/stats.hpp"
#include "util/thread_registry.hpp"

namespace zstm::cs {

struct TxAborted {};

struct Config {
  int max_threads = 36;
  /// Committed versions retained per object for successor lookup.
  int versions_kept = 4;
  cm::Policy cm_policy = cm::Policy::kPolite;
  bool record_history = false;
};

/// Causally serializable STM templated over the clock system.
/// ClockDomain = timebase::VcDomain (exact) or timebase::RevDomain
/// (plausible, r entries).
template <typename ClockDomain>
class RuntimeT {
 public:
  using Stamp = decltype(std::declval<const ClockDomain&>().zero());

  struct Version {
    explicit Version(runtime::Payload* payload, Stamp stamp)
        : data(payload), ct(std::move(stamp)) {}
    ~Version() { delete data; }
    Version(const Version&) = delete;
    Version& operator=(const Version&) = delete;

    runtime::Payload* data;
    /// Commit timestamp of the writing transaction; written before the
    /// writer's commit CAS, read by others only after observing kCommitted.
    Stamp ct;
    std::uint64_t vid = 0;
    std::atomic<Version*> prev{nullptr};
  };

  class TxDesc final : public runtime::TxDescBase {
   public:
    TxDesc(std::uint64_t id, int slot, Stamp initial)
        : TxDescBase(id, slot, runtime::TxClass::kShort),
          ct(std::move(initial)) {}
    /// The evolving tentative commit timestamp T.ct; owned by the
    /// transaction's thread until commit, then immutable.
    Stamp ct;
  };

  struct Locator {
    TxDesc* writer = nullptr;
    Version* tentative = nullptr;
    Version* committed = nullptr;
  };

  struct Object {
    Object() = default;
    Object(const Object&) = delete;
    Object& operator=(const Object&) = delete;
    std::atomic<Locator*> loc{nullptr};
    std::uint64_t oid = 0;
  };

  template <typename T>
  class Var {
   public:
    Var() = default;
    Object* object() const { return obj_; }

   private:
    friend class RuntimeT;
    explicit Var(Object* obj) : obj_(obj) {}
    Object* obj_ = nullptr;
  };

  struct ReadEntry {
    Object* obj;
    Version* version;
  };
  struct WriteEntry {
    Object* obj;
    Version* tentative;
  };

  class ThreadCtx;

  class Tx {
   public:
    template <typename T>
    const T& read(const Var<T>& var) {
      return runtime::payload_as<T>(read_object(*var.object()));
    }
    template <typename T>
    T& write(Var<T>& var) {
      return runtime::payload_as<T>(write_object(*var.object()));
    }
    template <typename T>
    void write(Var<T>& var, T value) {
      write(var) = std::move(value);
    }

    [[noreturn]] void abort() {
      ctx_.abort_attempt();
      throw TxAborted{};
    }

    const Stamp& tentative_ct() const { return desc_->ct; }
    TxDesc* descriptor() const { return desc_; }

    const runtime::Payload& read_object(Object& o);
    runtime::Payload& write_object(Object& o);

   private:
    friend class ThreadCtx;
    friend class RuntimeT;
    explicit Tx(ThreadCtx& ctx) : ctx_(ctx) {}

    [[noreturn]] void fail(util::Counter reason) {
      ctx_.rt_.stats_.add(ctx_.slot(), reason);
      ctx_.abort_attempt();
      throw TxAborted{};
    }

    ThreadCtx& ctx_;
    TxDesc* desc_ = nullptr;
    std::vector<ReadEntry> read_set_;
    std::vector<WriteEntry> write_set_;
    history::TxRecord rec_;
  };

  class ThreadCtx {
   public:
    ~ThreadCtx() {
      if (tx_.desc_ != nullptr) abort_attempt();
    }
    ThreadCtx(const ThreadCtx&) = delete;
    ThreadCtx& operator=(const ThreadCtx&) = delete;

    Tx& begin();
    void commit();
    void abort_attempt();

    bool in_transaction() const { return tx_.desc_ != nullptr; }
    int slot() const { return reg_.slot(); }
    /// VCp: the timestamp of this thread's last committed transaction.
    const Stamp& last_committed() const { return vcp_; }

   private:
    friend class RuntimeT;
    friend class Tx;
    ThreadCtx(RuntimeT& rt, util::ThreadRegistry::Registration reg)
        : rt_(rt), reg_(std::move(reg)), tx_(*this), vcp_(rt.domain_.zero()) {}

    void release_ownerships();
    void finish_attempt(bool committed);

    RuntimeT& rt_;
    util::ThreadRegistry::Registration reg_;
    util::EpochManager::Guard epoch_guard_;
    Tx tx_;
    Stamp vcp_;
  };

  RuntimeT(Config cfg, ClockDomain domain)
      : cfg_(cfg),
        domain_(std::move(domain)),
        registry_(cfg.max_threads),
        epochs_(registry_),
        stats_(registry_),
        recorder_(cfg.record_history, cfg.max_threads),
        cm_(cm::make_manager(cfg.cm_policy)) {}

  ~RuntimeT() {
    for (auto& obj : objects_) {
      Locator* l = obj->loc.load(std::memory_order_relaxed);
      if (l == nullptr) continue;
      if (l->writer != nullptr && l->tentative != nullptr) {
        if (l->writer->status(std::memory_order_relaxed) ==
            runtime::TxStatus::kCommitted) {
          destroy_chain(l->tentative);
        } else {
          delete l->tentative;
          destroy_chain(l->committed);
        }
      } else {
        destroy_chain(l->committed);
      }
      delete l;
    }
  }

  RuntimeT(const RuntimeT&) = delete;
  RuntimeT& operator=(const RuntimeT&) = delete;

  template <typename T>
  Var<T> make_var(T initial) {
    auto* version = new Version(new runtime::TypedPayload<T>(std::move(initial)),
                                domain_.zero());
    auto* locator = new Locator{nullptr, nullptr, version};
    auto obj = std::make_unique<Object>();
    obj->loc.store(locator, std::memory_order_release);
    obj->oid = object_ids_.value.fetch_add(1, std::memory_order_relaxed) + 1;
    Object* raw = obj.get();
    {
      std::lock_guard<std::mutex> lk(objects_mutex_);
      objects_.push_back(std::move(obj));
    }
    return Var<T>(raw);
  }

  std::unique_ptr<ThreadCtx> attach() {
    return std::unique_ptr<ThreadCtx>(
        new ThreadCtx(*this, registry_.attach()));
  }

  template <typename F>
  std::uint32_t run(ThreadCtx& ctx, F&& body) {
    util::Backoff bo;
    for (std::uint32_t attempt = 1;; ++attempt) {
      Tx& tx = ctx.begin();
      try {
        body(tx);
        ctx.commit();
        return attempt;
      } catch (const TxAborted&) {
        bo.pause();
      }
    }
  }

  const Config& config() const { return cfg_; }
  const ClockDomain& domain() const { return domain_; }
  util::StatsSnapshot stats() const { return stats_.snapshot(); }
  void reset_stats() { stats_.reset(); }
  history::History collect_history() const { return recorder_.collect(); }

 private:
  friend class ThreadCtx;
  friend class Tx;

  enum class OnCommitting { kWait, kFail };

  static void destroy_chain(Version* v) {
    while (v != nullptr) {
      Version* p = v->prev.load(std::memory_order_relaxed);
      delete v;
      v = p;
    }
  }

  void settle(Object& o, Locator* seen, int slot) {
    if (seen->writer == nullptr) return;
    const runtime::TxStatus st = seen->writer->status();
    if (st != runtime::TxStatus::kCommitted &&
        st != runtime::TxStatus::kAborted) {
      return;
    }
    Version* current = (st == runtime::TxStatus::kCommitted)
                           ? seen->tentative
                           : seen->committed;
    auto* settled = new Locator{nullptr, nullptr, current};
    Locator* expected = seen;
    if (o.loc.compare_exchange_strong(expected, settled,
                                      std::memory_order_acq_rel)) {
      if (st == runtime::TxStatus::kAborted) {
        epochs_.retire(slot, seen->tentative);
      }
      epochs_.retire(slot, seen);
      prune(o, slot);
    } else {
      delete settled;
    }
  }

  Version* resolve(Object& o, const TxDesc* self, OnCommitting mode,
                   int slot) {
    util::Backoff bo;
    for (;;) {
      Locator* l = o.loc.load(std::memory_order_acquire);
      if (l->writer == nullptr || l->writer == self) return l->committed;
      switch (l->writer->status()) {
        case runtime::TxStatus::kActive:
          return l->committed;
        case runtime::TxStatus::kCommitting:
          if (mode == OnCommitting::kFail) return nullptr;
          bo.pause();
          continue;
        case runtime::TxStatus::kCommitted:
        case runtime::TxStatus::kAborted:
          settle(o, l, slot);
          continue;
      }
    }
  }

  void prune(Object& o, int slot) {
    Locator* l = o.loc.load(std::memory_order_acquire);
    Version* v = l->committed;
    if (v == nullptr) return;
    for (int depth = 1; depth < cfg_.versions_kept && v != nullptr; ++depth) {
      v = v->prev.load(std::memory_order_acquire);
    }
    if (v == nullptr) return;
    Version* suffix = v->prev.exchange(nullptr, std::memory_order_acq_rel);
    if (suffix == nullptr) return;
    epochs_.retire_raw(slot, suffix, [](void* p) {
      destroy_chain(static_cast<Version*>(p));
    });
  }

  /// Validation core (Algorithm 1 lines 20-26): returns false if some read
  /// version has a committed successor whose stamp strictly precedes ct.
  bool validate(Tx& tx, int slot) {
    for (const auto& r : tx.read_set_) {
      Version* cur = resolve(*r.obj, tx.desc_, OnCommitting::kFail, slot);
      if (cur == nullptr) return false;  // mid-commit writer: conservative
      if (cur == r.version) continue;
      // Locate the immediate successor v_{i+1} of the version we read.
      Version* succ = cur;
      Version* below = succ->prev.load(std::memory_order_acquire);
      while (below != nullptr && below != r.version) {
        succ = below;
        below = succ->prev.load(std::memory_order_acquire);
      }
      if (below == nullptr) return false;  // pruned: conservative abort
      // Successor timestamps grow along the chain, so checking the
      // immediate successor suffices: if succ.ct ⋠ T.ct then every later
      // successor (whose stamp dominates succ's) is ⋠ T.ct as well.
      // Note ≼, not the paper's ≺: a read-only transaction never bumps its
      // own component, so T.ct can *equal* the successor's stamp after
      // merging it through another object — the transaction has then seen
      // the successor's effects elsewhere and must not also read the past.
      const timebase::Order ord = succ->ct.compare(tx.desc_->ct);
      if (ord == timebase::Order::kBefore || ord == timebase::Order::kEqual) {
        return false;
      }
    }
    return true;
  }

  static std::vector<std::uint64_t> stamp_to_vector(const Stamp& s) {
    std::vector<std::uint64_t> out;
    const int n = stamp_size(s);
    out.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) out.push_back(s[i]);
    return out;
  }
  static int stamp_size(const timebase::VcStamp& s) { return s.dimension(); }
  static int stamp_size(const timebase::RevStamp& s) { return s.entries(); }

  Config cfg_;
  ClockDomain domain_;
  util::ThreadRegistry registry_;
  util::EpochManager epochs_;
  util::StatsDomain stats_;
  history::Recorder recorder_;
  std::unique_ptr<cm::ContentionManager> cm_;
  util::PaddedCounter object_ids_;
  util::PaddedCounter tx_ids_;
  util::PaddedCounter ticks_;
  std::mutex objects_mutex_;
  std::deque<std::unique_ptr<Object>> objects_;
};

// ---------------------------------------------------------------------------
// ThreadCtx
// ---------------------------------------------------------------------------

template <typename D>
typename RuntimeT<D>::Tx& RuntimeT<D>::ThreadCtx::begin() {
  if (in_transaction()) abort_attempt();
  const std::uint64_t id =
      rt_.tx_ids_.value.fetch_add(1, std::memory_order_relaxed) + 1;
  // T.ct starts from VCp, the last committed timestamp of this thread
  // (Algorithm 1 line 3).
  tx_.desc_ = new TxDesc(id, slot(), vcp_);
  tx_.desc_->set_start_ticks(
      rt_.ticks_.value.fetch_add(1, std::memory_order_relaxed));
  epoch_guard_ = rt_.epochs_.pin_guard(slot());
  tx_.read_set_.clear();
  tx_.write_set_.clear();
  if (rt_.recorder_.enabled()) {
    tx_.rec_ = history::TxRecord{};
    tx_.rec_.tx_id = id;
    tx_.rec_.thread_slot = slot();
    tx_.rec_.begin_seq = rt_.recorder_.tick();
  }
  return tx_;
}

template <typename D>
void RuntimeT<D>::ThreadCtx::release_ownerships() {
  for (auto& w : tx_.write_set_) {
    Locator* l = w.obj->loc.load(std::memory_order_acquire);
    if (l->writer == tx_.desc_) rt_.settle(*w.obj, l, slot());
  }
}

template <typename D>
void RuntimeT<D>::ThreadCtx::finish_attempt(bool committed) {
  if (rt_.recorder_.enabled()) {
    tx_.rec_.committed = committed;
    tx_.rec_.end_seq = rt_.recorder_.tick();
    if (committed) tx_.rec_.stamp = RuntimeT::stamp_to_vector(tx_.desc_->ct);
    rt_.recorder_.record(slot(), std::move(tx_.rec_));
  }
  rt_.epochs_.retire(slot(), tx_.desc_);
  tx_.desc_ = nullptr;
  epoch_guard_ = util::EpochManager::Guard();
}

template <typename D>
void RuntimeT<D>::ThreadCtx::abort_attempt() {
  tx_.desc_->finish_abort();
  release_ownerships();
  rt_.stats_.add(slot(), util::Counter::kAborts);
  finish_attempt(false);
}

template <typename D>
void RuntimeT<D>::ThreadCtx::commit() {
  Tx& tx = tx_;
  TxDesc* d = tx.desc_;
  const int s = slot();

  if (!d->begin_commit()) {
    abort_attempt();
    throw TxAborted{};
  }
  if (!rt_.validate(tx, s)) {
    rt_.stats_.add(s, util::Counter::kValidationFails);
    abort_attempt();
    throw TxAborted{};
  }
  if (rt_.recorder_.enabled()) {
    tx.rec_.vstamp = RuntimeT::stamp_to_vector(d->ct);  // pre-bump stamp
  }
  if (!tx.write_set_.empty()) {
    // Increment own component (Algorithm 1 line 29); not needed for
    // read-only transactions.
    rt_.domain_.advance(s, d->ct);
    for (auto& w : tx.write_set_) {
      w.tentative->ct = d->ct;
      if (rt_.recorder_.enabled()) {
        const Version* base =
            w.tentative->prev.load(std::memory_order_relaxed);
        tx.rec_.writes.push_back({w.obj->oid, w.tentative->vid, base->vid});
      }
    }
  }
  d->finish_commit();
  for (auto& w : tx.write_set_) {
    Locator* l = w.obj->loc.load(std::memory_order_acquire);
    if (l->writer == d) rt_.settle(*w.obj, l, s);
  }
  vcp_ = d->ct;  // VCp ← T.ct (line 31)
  rt_.stats_.add(s, util::Counter::kCommits);
  finish_attempt(true);
}

// ---------------------------------------------------------------------------
// Tx
// ---------------------------------------------------------------------------

template <typename D>
const runtime::Payload& RuntimeT<D>::Tx::read_object(Object& o) {
  for (auto& w : write_set_) {
    if (w.obj == &o) return *w.tentative->data;
  }
  RuntimeT& rt = ctx_.rt_;
  const int s = ctx_.slot();
  desc_->add_work();
  rt.stats_.add(s, util::Counter::kReads);

  Version* v = rt.resolve(o, desc_, OnCommitting::kWait, s);
  desc_->ct.merge(v->ct);  // line 8
  read_set_.push_back({&o, v});
  if (rt.recorder_.enabled()) rec_.reads.push_back({o.oid, v->vid});
  return *v->data;
}

template <typename D>
runtime::Payload& RuntimeT<D>::Tx::write_object(Object& o) {
  for (auto& w : write_set_) {
    if (w.obj == &o) return *w.tentative->data;
  }
  RuntimeT& rt = ctx_.rt_;
  const int s = ctx_.slot();

  util::Backoff bo;
  std::uint32_t attempt = 0;
  for (;;) {
    Locator* l = o.loc.load(std::memory_order_acquire);
    if (l->writer != nullptr && l->writer != desc_) {
      switch (l->writer->status()) {
        case runtime::TxStatus::kCommitted:
        case runtime::TxStatus::kAborted:
          rt.settle(o, l, s);
          continue;
        case runtime::TxStatus::kCommitting:
          bo.pause();
          continue;
        case runtime::TxStatus::kActive: {
          // Lines 10-12: a single writer per object; the contention
          // manager resolves the conflict.
          const cm::Decision dec =
              rt.cm_->arbitrate(*desc_, *l->writer, attempt++);
          if (dec == cm::Decision::kAbortOther) {
            if (l->writer->abort_by_enemy()) {
              rt.stats_.add(s, util::Counter::kCmKills);
              rt.settle(o, l, s);
            }
            continue;
          }
          if (dec == cm::Decision::kAbortSelf) fail(util::Counter::kAborts);
          rt.stats_.add(s, util::Counter::kCmWaits);
          bo.pause();
          continue;
        }
      }
      continue;
    }
    Version* base = l->committed;
    desc_->ct.merge(base->ct);  // line 8 applies to writes as well
    auto* tent = new Version(base->data->clone(), rt.domain_.zero());
    tent->prev.store(base, std::memory_order_relaxed);
    if (rt.recorder_.enabled()) tent->vid = rt.recorder_.new_version_id();
    auto* nl = new Locator{desc_, tent, base};
    Locator* expected = l;
    if (o.loc.compare_exchange_strong(expected, nl,
                                      std::memory_order_acq_rel)) {
      rt.epochs_.retire(s, l);
      write_set_.push_back({&o, tent});
      desc_->add_work();
      rt.stats_.add(s, util::Counter::kWrites);
      return *tent->data;
    }
    delete tent;
    delete nl;
  }
}

using VcRuntime = RuntimeT<timebase::VcDomain>;
using RevRuntime = RuntimeT<timebase::RevDomain>;

/// CS-STM with exact vector clocks sized to the runtime's thread capacity.
inline std::unique_ptr<VcRuntime> make_vc_runtime(Config cfg = {}) {
  return std::make_unique<VcRuntime>(cfg, timebase::VcDomain(cfg.max_threads));
}

/// CS-STM with r-entry plausible clocks (modulo mapping). r = 1 degenerates
/// to a scalar clock; r = max_threads to exact vector clocks.
inline std::unique_ptr<RevRuntime> make_rev_runtime(int entries,
                                                    Config cfg = {}) {
  return std::make_unique<RevRuntime>(
      cfg, timebase::RevDomain(entries, cfg.max_threads));
}

}  // namespace zstm::cs
