// CS-STM — the causally serializable STM of §4.1, a line-by-line
// implementation of Algorithm 1 on top of DSTM-style locators.
//
//  * The time base is a vector clock (VcDomain) or an REV plausible clock
//    (RevDomain, §4.3) — the template parameter. The paper's observation
//    that plausible clocks drop in "with almost no modifications" holds
//    literally here: both domains expose zero()/advance() and stamps with
//    merge()/compare().
//  * Start:  T.ct ← VCp, the committing thread's last committed timestamp
//            (Algorithm 1 line 3).
//  * Open:   T.ct ← element-wise max(T.ct, v.ct) for the current version v
//            (line 8); writes install a locator (single writer per object,
//            conflicts arbitrated by the contention manager, lines 10-13)
//            and duplicate the current version (line 14). Reads are
//            invisible.
//  * Validate (lines 20-26): abort iff some read version has a committed
//            successor whose timestamp strictly precedes T.ct — i.e. the
//            transaction would both causally precede and follow another.
//            Successors with concurrent timestamps are tolerated; that is
//            exactly where causal serializability admits more schedules
//            than serializability (Figure 1's long transaction commits).
//  * Commit: increment own component (line 29; skipped for read-only
//            transactions), publish with the single status CAS, remember
//            VCp (line 31).
//
// Old versions (deviation recorded in DESIGN.md §4): the paper keeps only
// the last committed version per object (footnote 1). We retain a short
// chain purely to *find* the immediate
// successor of a read version during validation; a transaction whose read
// version was pruned out aborts conservatively, matching the paper's
// single-version semantics.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "cm/contention_manager.hpp"
#include "fault/failpoint.hpp"
#include "history/recorder.hpp"
#include "object/object_store.hpp"
#include "runtime/payload.hpp"
#include "runtime/run_result.hpp"
#include "runtime/txdesc.hpp"
#include "timebase/plausible_clock.hpp"
#include "timebase/sharded_clock.hpp"
#include "timebase/vector_clock.hpp"
#include "util/align.hpp"
#include "util/backoff.hpp"
#include "util/ebr.hpp"
#include "util/stats.hpp"
#include "util/thread_registry.hpp"

namespace zstm::cs {

struct TxAborted {};

struct Config {
  int max_threads = 36;
  /// Committed versions retained per object for successor lookup (starting
  /// bound in adaptive mode).
  int versions_kept = 4;
  /// Version retention (paper §4.4); see lsa::Config for the semantics.
  object::RetentionMode retention_mode = object::RetentionMode::kFixed;
  int retention_min = 1;
  int retention_max = 64;
  int retention_decay_period = 64;
  cm::Policy cm_policy = cm::Policy::kPolite;
  /// Slab-pool node allocation (DESIGN.md §7); ZSTM_POOL=0 overrides.
  bool use_node_pool = true;
  bool record_history = false;
  /// Topology-sharded transaction ids (identity only; ids never order
  /// anything — causal order lives in the vector clocks). ZSTM_SHARDED_IDS=0
  /// overrides.
  bool sharded_tx_ids = true;
  /// EBR: a slot attempts a global epoch advance every Nth retire.
  int ebr_collect_period = 64;
};

/// Causally serializable STM templated over the clock system.
/// ClockDomain = timebase::VcDomain (exact) or timebase::RevDomain
/// (plausible, r entries).
template <typename ClockDomain>
class RuntimeT {
 public:
  using Stamp = decltype(std::declval<const ClockDomain&>().zero());

  class TxDesc final : public runtime::TxDescBase {
   public:
    TxDesc(std::uint64_t id, int slot, Stamp initial)
        : TxDescBase(id, slot, runtime::TxClass::kShort),
          ct(std::move(initial)) {}
    /// The evolving tentative commit timestamp T.ct. Owner-thread-only for
    /// the descriptor's whole lifetime: other threads must never read it
    /// (versions carry their own stamp copies; the CM sees only
    /// TxDescBase). finish_attempt moves the backing vector out into the
    /// slot's spare buffer before retiring the descriptor (see
    /// take_spare_stamp), so it is NOT immutable after commit.
    Stamp ct;
  };

  /// Per-version metadata on the shared substrate: the commit timestamp of
  /// the writing transaction; written before the writer's commit CAS, read
  /// by others only after observing kCommitted.
  struct VersionMeta {
    Stamp ct;
  };

  struct StoreTraits {
    using Desc = TxDesc;
    using VersionMeta = RuntimeT::VersionMeta;
    using ObjectMeta = object::NoMeta;
  };

  using Store = object::ObjectStore<StoreTraits>;
  using Version = typename Store::Version;
  using Locator = typename Store::Locator;
  using Object = typename Store::Object;
  using OnCommitting = object::OnCommitting;

  template <typename T>
  using Var = typename Store::template Var<T>;

  struct ReadEntry {
    Object* obj;
    Version* version;
  };
  struct WriteEntry {
    Object* obj;
    Version* tentative;
  };

  class ThreadCtx;

  class Tx {
   public:
    template <typename T>
    const T& read(const Var<T>& var) {
      return runtime::payload_as<T>(read_object(*var.object()));
    }
    template <typename T>
    T& write(Var<T>& var) {
      return runtime::payload_as<T>(write_object(*var.object()));
    }
    template <typename T>
    void write(Var<T>& var, T value) {
      write(var) = std::move(value);
    }

    [[noreturn]] void abort() {
      ctx_.abort_attempt();
      throw TxAborted{};
    }

    const Stamp& tentative_ct() const { return desc_->ct; }
    TxDesc* descriptor() const { return desc_; }

    const runtime::Payload& read_object(Object& o);
    runtime::Payload& write_object(Object& o);

   private:
    friend class ThreadCtx;
    friend class RuntimeT;
    explicit Tx(ThreadCtx& ctx) : ctx_(ctx) {}

    [[noreturn]] void fail(util::Counter reason) {
      ctx_.rt_.stats_.add(ctx_.slot(), reason);
      ctx_.abort_attempt();
      throw TxAborted{};
    }

    ThreadCtx& ctx_;
    TxDesc* desc_ = nullptr;
    std::vector<ReadEntry> read_set_;
    std::vector<WriteEntry> write_set_;
    history::TxRecord rec_;
  };

  class ThreadCtx {
   public:
    ~ThreadCtx() {
      if (tx_.desc_ != nullptr) abort_attempt();
    }
    ThreadCtx(const ThreadCtx&) = delete;
    ThreadCtx& operator=(const ThreadCtx&) = delete;

    Tx& begin();
    void commit();
    void abort_attempt();

    bool in_transaction() const { return tx_.desc_ != nullptr; }
    int slot() const { return reg_.slot(); }
    /// VCp: the timestamp of this thread's last committed transaction.
    const Stamp& last_committed() const { return vcp_; }

   private:
    friend class RuntimeT;
    friend class Tx;
    ThreadCtx(RuntimeT& rt, util::ThreadRegistry::Registration reg)
        : rt_(rt), reg_(std::move(reg)), tx_(*this), vcp_(rt.domain_.zero()) {}

    void release_ownerships();
    void finish_attempt(bool committed);

    RuntimeT& rt_;
    util::ThreadRegistry::Registration reg_;
    util::EpochManager::Guard epoch_guard_;
    Tx tx_;
    Stamp vcp_;
  };

  RuntimeT(Config cfg, ClockDomain domain)
      : cfg_(cfg),
        domain_(std::move(domain)),
        registry_(cfg.max_threads),
        stats_(registry_),
        pool_(registry_, &stats_, cfg.use_node_pool),
        epochs_(registry_, cfg.ebr_collect_period),
        recorder_(cfg.record_history, cfg.max_threads),
        cm_(cm::make_manager(cfg.cm_policy)),
        id_clock_(cfg.max_threads, /*shards=*/cfg.max_threads),
        sharded_ids_(timebase::sharded_ids_enabled(cfg.sharded_tx_ids)),
        spare_ct_(static_cast<std::size_t>(registry_.capacity())),
        store_(pool_, epochs_, stats_, object::retention_policy(cfg)) {}

  RuntimeT(const RuntimeT&) = delete;
  RuntimeT& operator=(const RuntimeT&) = delete;

  template <typename T>
  Var<T> make_var(T initial) {
    return store_.template make_var<T>(std::move(initial), domain_.zero());
  }

  std::unique_ptr<ThreadCtx> attach() {
    return std::unique_ptr<ThreadCtx>(
        new ThreadCtx(*this, registry_.attach()));
  }

  /// Retry loop; returns {attempts, committed = true} (see
  /// runtime/run_result.hpp for the convention).
  template <typename F>
  runtime::RunResult run(ThreadCtx& ctx, F&& body) {
    util::Backoff bo;
    for (std::uint32_t attempt = 1;; ++attempt) {
      Tx& tx = ctx.begin();
      try {
        body(tx);
        ctx.commit();
        return {attempt, true};
      } catch (const TxAborted&) {
        bo.pause();
      } catch (...) {
        // Foreign exception out of the body: release every ownership the
        // attempt holds before letting it propagate.
        if (ctx.in_transaction()) ctx.abort_attempt();
        throw;
      }
    }
  }

  /// Type-erased variable creation hook for the zstm::api façade (the
  /// typed make_var above remains the primary path).
  Object* allocate_object(runtime::Payload* initial) {
    return store_.allocate(initial, domain_.zero());
  }

  const Config& config() const { return cfg_; }
  const ClockDomain& domain() const { return domain_; }
  util::StatsSnapshot stats() const { return stats_.snapshot(); }
  void reset_stats() { stats_.reset(); }
  history::History collect_history() const { return recorder_.collect(); }

 private:
  friend class ThreadCtx;
  friend class Tx;

  Version* resolve(Object& o, const TxDesc* self, OnCommitting mode,
                   int slot) {
    return store_.resolve(o, self, mode, slot);
  }

  void settle(Object& o, Locator* seen, int slot) {
    store_.settle(o, seen, slot);
  }

  /// Validation core (Algorithm 1 lines 20-26): returns false if some read
  /// version has a committed successor whose stamp strictly precedes ct.
  bool validate(Tx& tx, int slot) {
    for (const auto& r : tx.read_set_) {
      Version* cur = resolve(*r.obj, tx.desc_, OnCommitting::kFail, slot);
      if (cur == nullptr) return false;  // mid-commit writer: conservative
      if (cur == r.version) continue;
      // Locate the immediate successor v_{i+1} of the version we read.
      Version* succ = Store::successor_of(cur, r.version);
      if (succ == nullptr) {
        // Pruned: conservative abort (paper's single-version semantics).
        store_.note_too_old(*r.obj, slot);
        return false;
      }
      // Successor timestamps grow along the chain, so checking the
      // immediate successor suffices: if succ.ct ⋠ T.ct then every later
      // successor (whose stamp dominates succ's) is ⋠ T.ct as well.
      // Note ≼, not the paper's ≺: a read-only transaction never bumps its
      // own component, so T.ct can *equal* the successor's stamp after
      // merging it through another object — the transaction has then seen
      // the successor's effects elsewhere and must not also read the past.
      const timebase::Order ord = succ->ct.compare(tx.desc_->ct);
      if (ord == timebase::Order::kBefore || ord == timebase::Order::kEqual) {
        return false;
      }
    }
    return true;
  }

  /// Per-slot recycled stamp storage (ROADMAP: pool cs::TxDesc's inner
  /// vector-clock allocation). A descriptor's `ct` vector is moved back
  /// here when the transaction finishes — before the descriptor is retired
  /// through EBR, which is safe because `ct` is only ever accessed by the
  /// owning thread (versions carry their own stamp copies; the CM sees only
  /// TxDescBase) — and the next begin() on the slot moves it out again and
  /// copy-assigns VCp into the retained capacity. Steady state: zero heap
  /// allocations per transaction for descriptor clock storage. Slot-keyed,
  /// so the buffers survive thread churn like the NodePool's free lists.
  /// Transaction ids are identity only (causal order lives in the vector
  /// clocks), so they may come from the topology-sharded clock.
  std::uint64_t next_tx_id(int slot) {
    if (sharded_ids_) return id_clock_.unique_id(slot);
    return tx_ids_.value.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  Stamp take_spare_stamp(int slot) {
    return std::move(spare_ct_[static_cast<std::size_t>(slot)].value);
  }
  void put_spare_stamp(int slot, Stamp&& s) {
    spare_ct_[static_cast<std::size_t>(slot)].value = std::move(s);
  }

  static std::vector<std::uint64_t> stamp_to_vector(const Stamp& s) {
    std::vector<std::uint64_t> out;
    const int n = stamp_size(s);
    out.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) out.push_back(s[i]);
    return out;
  }
  static int stamp_size(const timebase::VcStamp& s) { return s.dimension(); }
  static int stamp_size(const timebase::RevStamp& s) { return s.entries(); }

  Config cfg_;
  ClockDomain domain_;
  util::ThreadRegistry registry_;
  util::StatsDomain stats_;
  // Before the EpochManager: its drain returns nodes to the pool.
  object::NodePool pool_;
  util::EpochManager epochs_;
  history::Recorder recorder_;
  std::unique_ptr<cm::ContentionManager> cm_;
  util::PaddedCounter tx_ids_;
  util::PaddedCounter ticks_;
  timebase::ShardedClock id_clock_;
  bool sharded_ids_;
  /// Recycled per-slot TxDesc stamp buffers (see take_spare_stamp).
  std::vector<util::Padded<Stamp>> spare_ct_;
  Store store_;
};

// ---------------------------------------------------------------------------
// ThreadCtx
// ---------------------------------------------------------------------------

template <typename D>
typename RuntimeT<D>::Tx& RuntimeT<D>::ThreadCtx::begin() {
  if (in_transaction()) abort_attempt();
  const std::uint64_t id = rt_.next_tx_id(slot());
  // T.ct starts from VCp, the last committed timestamp of this thread
  // (Algorithm 1 line 3). The stamp's backing vector is recycled through
  // the slot's spare buffer: the copy-assign below reuses its capacity, so
  // steady state performs no heap allocation here.
  Stamp ct = rt_.take_spare_stamp(slot());
  ct = vcp_;
  tx_.desc_ =
      rt_.pool_.template create<TxDesc>(slot(), id, slot(), std::move(ct));
  tx_.desc_->set_start_ticks(
      rt_.ticks_.value.fetch_add(1, std::memory_order_relaxed));
  epoch_guard_ = rt_.epochs_.pin_guard(slot());
  tx_.read_set_.clear();
  tx_.write_set_.clear();
  if (rt_.recorder_.enabled()) {
    tx_.rec_ = history::TxRecord{};
    tx_.rec_.tx_id = id;
    tx_.rec_.thread_slot = slot();
    tx_.rec_.begin_seq = rt_.recorder_.tick();
  }
  return tx_;
}

template <typename D>
void RuntimeT<D>::ThreadCtx::release_ownerships() {
  for (auto& w : tx_.write_set_) {
    rt_.store_.release(*w.obj, tx_.desc_, slot());
  }
}

template <typename D>
void RuntimeT<D>::ThreadCtx::finish_attempt(bool committed) {
  if (rt_.recorder_.enabled()) {
    tx_.rec_.committed = committed;
    tx_.rec_.end_seq = rt_.recorder_.tick();
    if (committed) tx_.rec_.stamp = RuntimeT::stamp_to_vector(tx_.desc_->ct);
    rt_.recorder_.record(slot(), std::move(tx_.rec_));
  }
  // Reclaim the descriptor's stamp storage before the descriptor goes
  // through EBR (only this thread ever reads desc->ct; see
  // take_spare_stamp). The retired descriptor destructs an empty vector.
  rt_.put_spare_stamp(slot(), std::move(tx_.desc_->ct));
  if (rt_.pool_.enabled()) {
    rt_.epochs_.retire_raw(slot(), tx_.desc_,
                           &object::NodePool::template ebr_destroy<TxDesc>);
  } else {
    rt_.epochs_.retire(slot(), tx_.desc_);
  }
  tx_.desc_ = nullptr;
  epoch_guard_ = util::EpochManager::Guard();
}

template <typename D>
void RuntimeT<D>::ThreadCtx::abort_attempt() {
  tx_.desc_->finish_abort();
  release_ownerships();
  rt_.stats_.add(slot(), util::Counter::kAborts);
  finish_attempt(false);
}

template <typename D>
void RuntimeT<D>::ThreadCtx::commit() {
  Tx& tx = tx_;
  TxDesc* d = tx.desc_;
  const int s = slot();

  if (!d->begin_commit()) {
    abort_attempt();
    throw TxAborted{};
  }
  if (!rt_.validate(tx, s)) {
    rt_.stats_.add(s, util::Counter::kValidationFails);
    abort_attempt();
    throw TxAborted{};
  }
  if (rt_.recorder_.enabled()) {
    tx.rec_.vstamp = RuntimeT::stamp_to_vector(d->ct);  // pre-bump stamp
  }
  if (!tx.write_set_.empty()) {
    // Increment own component (Algorithm 1 line 29); not needed for
    // read-only transactions.
    rt_.domain_.advance(s, d->ct);
    for (auto& w : tx.write_set_) {
      w.tentative->ct = d->ct;
      if (rt_.recorder_.enabled()) {
        const Version* base =
            w.tentative->prev.load(std::memory_order_relaxed);
        tx.rec_.writes.push_back({w.obj->oid, w.tentative->vid, base->vid});
      }
    }
  }
  d->finish_commit();
  for (auto& w : tx.write_set_) {
    rt_.store_.release(*w.obj, d, s);
  }
  vcp_ = d->ct;  // VCp ← T.ct (line 31)
  rt_.stats_.add(s, util::Counter::kCommits);
  finish_attempt(true);
}

// ---------------------------------------------------------------------------
// Tx
// ---------------------------------------------------------------------------

template <typename D>
const runtime::Payload& RuntimeT<D>::Tx::read_object(Object& o) {
  for (auto& w : write_set_) {
    if (w.obj == &o) return *w.tentative->data;
  }
  RuntimeT& rt = ctx_.rt_;
  const int s = ctx_.slot();
  desc_->add_work();
  rt.stats_.add(s, util::Counter::kReads);

  Version* v = rt.resolve(o, desc_, OnCommitting::kWait, s);
  desc_->ct.merge(v->ct);  // line 8
  read_set_.push_back({&o, v});
  if (rt.recorder_.enabled()) rec_.reads.push_back({o.oid, v->vid});
  return *v->data;
}

template <typename D>
runtime::Payload& RuntimeT<D>::Tx::write_object(Object& o) {
  for (auto& w : write_set_) {
    if (w.obj == &o) return *w.tentative->data;
  }
  RuntimeT& rt = ctx_.rt_;
  const int s = ctx_.slot();

  util::Backoff bo;
  std::uint32_t attempt = 0;
  for (;;) {
    if (fault::poke(fault::Site::kCsAcquire) == fault::Effect::kAbort) {
      fail(util::Counter::kAborts);
    }
    Locator* l = o.loc.load(std::memory_order_acquire);
    if (l->writer != nullptr && l->writer != desc_) {
      switch (l->writer->status()) {
        case runtime::TxStatus::kCommitted:
        case runtime::TxStatus::kAborted:
          rt.settle(o, l, s);
          continue;
        case runtime::TxStatus::kCommitting:
          bo.pause();
          continue;
        case runtime::TxStatus::kActive: {
          // Lines 10-12: a single writer per object; the contention
          // manager resolves the conflict.
          const cm::Decision dec =
              rt.cm_->arbitrate(*desc_, *l->writer, attempt++);
          if (dec == cm::Decision::kAbortOther) {
            if (l->writer->abort_by_enemy()) {
              rt.stats_.add(s, util::Counter::kCmKills);
              rt.settle(o, l, s);
            }
            continue;
          }
          if (dec == cm::Decision::kAbortSelf) fail(util::Counter::kAborts);
          rt.stats_.add(s, util::Counter::kCmWaits);
          desc_->set_waiting(true);
          bo.pause();
          desc_->set_waiting(false);
          continue;
        }
      }
      continue;
    }
    Version* base = l->committed;
    desc_->ct.merge(base->ct);  // line 8 applies to writes as well
    // The written version's stamp storage comes from the slab pool too
    // (PoolAllocator): this was the last hidden per-commit heap malloc on
    // the update path — see bench_cs_alloc.
    Version* tent = rt.store_.clone_version(
        s, *base->data,
        rt.domain_.zero_in(rt.pool_.enabled() ? &rt.pool_ : nullptr, s));
    tent->prev.store(base, std::memory_order_relaxed);
    if (rt.recorder_.enabled()) tent->vid = rt.recorder_.new_version_id();
    if (rt.store_.install(o, l, desc_, tent, s)) {
      write_set_.push_back({&o, tent});
      desc_->add_work();
      rt.stats_.add(s, util::Counter::kWrites);
      return *tent->data;
    }
    rt.store_.discard_version(s, tent);
  }
}

using VcRuntime = RuntimeT<timebase::VcDomain>;
using RevRuntime = RuntimeT<timebase::RevDomain>;

/// CS-STM with exact vector clocks sized to the runtime's thread capacity.
inline std::unique_ptr<VcRuntime> make_vc_runtime(Config cfg = {}) {
  return std::make_unique<VcRuntime>(cfg, timebase::VcDomain(cfg.max_threads));
}

/// CS-STM with r-entry plausible clocks (modulo mapping). r = 1 degenerates
/// to a scalar clock; r = max_threads to exact vector clocks.
inline std::unique_ptr<RevRuntime> make_rev_runtime(int entries,
                                                    Config cfg = {}) {
  return std::make_unique<RevRuntime>(
      cfg, timebase::RevDomain(entries, cfg.max_threads));
}

}  // namespace zstm::cs
