// AnyStm: name resolution and the type-erased runtime wrappers. The five
// Stm<R> instantiations behind the six variant names live in this TU so the
// header stays light for zero-cost (template) users.
#include "api/stm_api.hpp"

#include <stdexcept>

namespace zstm::api {
namespace {

/// Erased wrapper: AnyStm ops over a concrete Stm<R>. Each access crosses
/// one function pointer (the price of run-time runtime selection).
template <typename R>
class AnyStmOf final : public detail::AnyStmBase {
 public:
  using Adapter = detail::Adapter<R>;
  using NativeHandle = typename Adapter::Tx;

  explicit AnyStmOf(const CommonConfig& cfg) : stm_(cfg) {}

  void* make_object(runtime::Payload* initial) override {
    return Adapter::make_object(stm_.runtime(), initial);
  }

  RunResult run(TxKind kind, FunctionRef<void(TxHandle&)> body,
                std::uint32_t max_attempts) override {
    return stm_.run(
        kind,
        [&](NativeHandle& native) {
          TxHandle handle(&native, ops());
          body(handle);
        },
        max_attempts);
  }

  util::StatsSnapshot stats() const override { return stm_.stats(); }
  void reset_stats() override { stm_.reset_stats(); }
  MaintainResult maintain(bool force) override { return stm_.maintain(force); }
  util::ProgressTracker::Snapshot progress() const override {
    return stm_.progress();
  }
  const CommonConfig& config() const override { return stm_.config(); }

 private:
  static const TxHandle::Ops* ops() {
    static const TxHandle::Ops kOps{
        [](void* tx, void* obj) -> const runtime::Payload& {
          return static_cast<NativeHandle*>(tx)->read_object(obj);
        },
        [](void* tx, void* obj) -> runtime::Payload& {
          return static_cast<NativeHandle*>(tx)->write_object(obj);
        },
        [](void* tx) { static_cast<NativeHandle*>(tx)->abort(); },
    };
    return &kOps;
  }

  Stm<R> stm_;
};

}  // namespace

AnyStm AnyStm::make(std::string_view name, CommonConfig cfg) {
  // One dispatch table for the whole library: visit_variant (stm_api.hpp).
  return visit_variant(
      name, cfg,
      [](auto tag, const char* canonical, const CommonConfig& lowered) {
        using S = typename decltype(tag)::type;  // Stm<R>
        using R = typename S::Runtime;
        return AnyStm(std::make_unique<AnyStmOf<R>>(lowered), canonical);
      });
}

}  // namespace zstm::api
