// zstm::api — the unified front-end over all six runtime variants.
//
// The paper's whole point is comparing one workload across consistency
// criteria (LSA vs CS vs S vs Z), yet the raw runtimes expose five different
// front doors (`lsa::Runtime::run(ctx, body, read_only)`,
// `cs::RuntimeT::run(ctx, body)`, `sstm::Runtime::run(ctx, body)`,
// `zl::Runtime::run_short/run_long`), each with its own Config and manual
// `attach()` discipline. This header gives them one interface, in two
// flavours:
//
//   * `Stm<R>` — a zero-cost adapter template. `Stm<lsa::Runtime>`,
//     `Stm<cs::VcRuntime>`, `Stm<cs::RevRuntime>`, `Stm<sstm::Runtime>` and
//     `Stm<zl::Runtime>` all expose `make_var<T>`, `run(TxKind, body)` and
//     a uniform transaction-handle interface (`read`/`write`/`abort`); the
//     handle type is runtime-specific, so generic callers take it as
//     `auto&` and the calls compile down to the native ones.
//   * `AnyStm` — a type-erased runtime selected *by name* at run time:
//     `AnyStm::make("lsa" | "lsa-nors" | "cs-vc" | "cs-r" | "sstm" | "zl" |
//     "tl2", CommonConfig)`. Bodies receive the concrete `TxHandle`; variables are
//     `AnyVar<T>`. One indirect call per access — the price of a
//     `--runtime=` flag instead of a compiled-in benchmark matrix.
//
// TxKind × runtime mapping (DESIGN.md §8 has the full table): `kUpdate` and
// `kReadOnly` run ordinary (short) transactions; `kLong`/`kLongUpdate` map
// onto `zl::Runtime::run_long` and, on every other runtime, onto its
// ordinary transactions (LSA additionally treats `kReadOnly`/`kLong` as
// declared-read-only, enabling its no-readsets fast path). A body run under
// `kReadOnly` or `kLong` must not write on runtimes that specialize the
// read-only path.
//
// Implicit attachment: user code never calls `attach()`. Each thread's
// first transaction against a given `Stm` attaches it and caches the
// `ThreadCtx` in thread-local storage; the cache entry is destroyed when
// the thread exits (releasing the registry slot — the same slot-release
// hook that drains the NodePool's return stacks then fires, so pooled
// memory survives thread churn) or when the `Stm` itself is destroyed.
// Lifetime contract (unchanged from the raw runtimes): worker threads must
// be finished with an `Stm` before it is destroyed.
//
// THE ABORT-EXCEPTION CONTRACT (the one place it is documented): every
// runtime signals an aborted attempt by throwing its `TxAborted` token out
// of the user body. Bodies must let it propagate — catching it (or a
// blanket `catch (...)` without rethrow) inside a transaction body leaves
// the attempt half-finished and the retry loop blind. The façade's retry
// loops catch exactly that token, clean up the attempt, and either retry
// (backoff) or — when an attempt budget is given — return
// `RunResult{attempts, committed = false}`. Any other exception escaping
// the body propagates to the caller; the next `run` on the same thread
// aborts the abandoned attempt first.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cs/cs.hpp"
#include "fault/failpoint.hpp"
#include "lsa/lsa.hpp"
#include "runtime/run_result.hpp"
#include "sstm/sstm.hpp"
#include "tl2/tl2.hpp"
#include "util/backoff.hpp"
#include "util/stats.hpp"
#include "zstm/zstm.hpp"

namespace zstm::api {

using runtime::RunResult;

/// What one `maintain()` call did (DESIGN.md §12.4). `reclaimed` counts
/// resources freed by this call; `retained` is a gauge of deferred
/// resources still held afterwards (S-STM: transaction descriptors awaiting
/// a quiescent trim; 0 on runtimes with nothing to defer). A long-running
/// service watches `retained` to confirm the automatic trim keeps it
/// bounded.
struct MaintainResult {
  std::size_t reclaimed = 0;
  std::size_t retained = 0;
};

/// Transaction kind, declared at start (the paper's §5.3 requirement that
/// the class be known up front). Long kinds select Z-STM's Algorithm 2;
/// read-only kinds select LSA's declared-read-only path.
enum class TxKind {
  kUpdate,      ///< ordinary (short) update transaction
  kReadOnly,    ///< ordinary (short) transaction, declared read-only
  kLong,        ///< long transaction, read-only body
  kLongUpdate,  ///< long transaction that also writes
};

inline const char* to_string(TxKind k) {
  switch (k) {
    case TxKind::kUpdate: return "update";
    case TxKind::kReadOnly: return "read-only";
    case TxKind::kLong: return "long";
    case TxKind::kLongUpdate: return "long-update";
  }
  return "?";
}

/// The façade's progress policy: how `run` spaces retries and when it
/// escalates (DESIGN.md §11.3). The ladder, in order:
///
///   1. Randomized-exponential backoff between attempts (util::Backoff with
///      per-thread jitter, so rivals that abort each other don't wake in
///      lockstep and re-collide).
///   2. From `cm_escalate_after` aborted attempts on, CM-aware escalation:
///      the attempt count is credited as contention-manager karma
///      (TxDescBase::add_work) on each fresh descriptor — work-based
///      policies (Karma/Polka) then increasingly favor the starved
///      transaction. Backoff is deliberately NOT shortened: priority
///      comes from the CM decision, never from out-spinning rivals (see
///      the note in run_impl — hot retries starve the very owner the
///      transaction is waiting on when threads outnumber cores).
///   3. From `serial_after` aborted attempts on, the final rung: the
///      transaction takes the Stm's global serial-irrevocable token
///      (HTM-fallback style). Acquiring the token exclusively waits out
///      every in-flight attempt; ordinary attempts share the token, so they
///      proceed concurrently when no one holds it exclusively. The holder
///      runs without façade rivals and with fault injection suppressed, so
///      it eventually commits — the façade-level guarantee that no
///      transaction starves forever.
///
/// `serial_after == 0` disables rung 3 unless the ZSTM_SERIAL_FALLBACK env
/// var enables it with the default threshold (8). A per-call attempt budget
/// (`run(kind, body, max_attempts)`) always wins over escalation: a
/// transaction that exhausts its budget returns `committed == false`
/// instead of escalating past it.
///
/// Not supported (unchanged from before): nested `run` calls on the same
/// Stm — with serialization enabled they would self-deadlock on the token.
struct RetryPolicy {
  /// Give up (committed == false) after this many aborted attempts;
  /// 0 = retry until commit. A nonzero per-call budget overrides this.
  std::uint32_t max_attempts = 0;
  /// Backoff window, in cpu_relax spins: first episode, and the doubling
  /// cap after which episodes become sched_yield.
  std::uint32_t backoff_min_spins = 4;
  std::uint32_t backoff_max_spins = 1024;
  /// Rung 2 threshold; 0 disables CM-aware escalation.
  std::uint32_t cm_escalate_after = 16;
  /// Rung 3 threshold; 0 = disabled unless ZSTM_SERIAL_FALLBACK is set.
  std::uint32_t serial_after = 0;
};

/// One configuration that lowers into every runtime's native Config.
/// Fields a runtime has no use for are ignored by its adapter (the
/// lowering table lives in DESIGN.md §8).
struct CommonConfig {
  int max_threads = 36;
  /// Committed versions retained per object (starting bound in adaptive
  /// retention mode).
  int versions_kept = 8;
  object::RetentionMode retention_mode = object::RetentionMode::kFixed;
  int retention_min = 1;
  int retention_max = 64;
  int retention_decay_period = 64;
  cm::Policy cm_policy = cm::Policy::kPolite;
  /// Slab-pool node allocation (DESIGN.md §7); ZSTM_POOL=0 overrides.
  bool use_node_pool = true;
  bool record_history = false;
  /// LSA (and the Z-STM substrate) only: false selects the Figure 6
  /// "LSA-STM (no readsets)" variant — that is what the name "lsa-nors"
  /// resolves to.
  bool track_readonly_readsets = true;
  /// "cs-r" only: r, the number of plausible-clock entries (§4.3).
  int plausible_entries = 4;
  /// lsa/lsa-nors/zl only: the scalar commit timebase (DESIGN.md §10).
  /// kBatchedCounter leases blocks of `timebase_batch` ticks per thread;
  /// the ZSTM_TIMEBASE env var overrides either setting.
  timebase::TimeBaseKind time_base = timebase::TimeBaseKind::kCounter;
  int timebase_batch = 64;
  /// All runtimes: topology-sharded transaction/object ids (identity only).
  /// ZSTM_SHARDED_IDS=0 overrides.
  bool sharded_tx_ids = true;
  /// Object runtimes: EBR attempts a global epoch advance every Nth retire.
  int ebr_collect_period = 64;
  /// tl2 only: 0 keeps the classic fetch_add commit clock (GV1); >= 1
  /// selects the GV4/GV5-style single-CAS scheme with this stride
  /// (documented false-abort cost, never correctness).
  int tl2_clock_stride = 0;
  /// Façade-level: every N commits a thread makes, it also runs
  /// `maintain()` (S-STM's quiescent descriptor trim; a no-op elsewhere).
  /// This is the fallback trigger for callers without a housekeeping
  /// thread — the KV server uses both. 0 (default) disables it and keeps
  /// the commit path free of the counter update.
  std::uint32_t maintain_every = 0;
  /// Façade-level only (not lowered): the retry/escalation ladder.
  RetryPolicy retry;
};

// ---------------------------------------------------------------------------
// Per-runtime adapters (detail): the uniform shape Stm<R> is built from.
// ---------------------------------------------------------------------------

namespace detail {

/// ZSTM_SERIAL_FALLBACK=1 turns on the serial-irrevocable rung for every
/// Stm whose policy leaves `serial_after` at 0 (threshold 8).
inline bool serial_fallback_env() {
  static const bool on = [] {
    const char* v = std::getenv("ZSTM_SERIAL_FALLBACK");
    return v != nullptr && std::strcmp(v, "0") != 0;
  }();
  return on;
}

inline std::uint32_t resolve_serial_after(const RetryPolicy& pol) {
  if (pol.serial_after != 0) return pol.serial_after;
  return serial_fallback_env() ? 8u : 0u;
}

/// Per-slot jitter seed for the retry loop's randomized backoff (nonzero,
/// distinct per slot — rivals never share a spin sequence).
inline std::uint64_t backoff_seed(int slot) {
  return 0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(slot) + 2) | 1u;
}

/// The knobs every native Config shares, copied by field name (one place
/// to extend when CommonConfig grows).
template <typename Cfg>
Cfg lower_common(const CommonConfig& c) {
  Cfg cfg;
  cfg.max_threads = c.max_threads;
  cfg.versions_kept = c.versions_kept;
  cfg.retention_mode = c.retention_mode;
  cfg.retention_min = c.retention_min;
  cfg.retention_max = c.retention_max;
  cfg.retention_decay_period = c.retention_decay_period;
  cfg.cm_policy = c.cm_policy;
  cfg.use_node_pool = c.use_node_pool;
  cfg.record_history = c.record_history;
  cfg.sharded_tx_ids = c.sharded_tx_ids;
  cfg.ebr_collect_period = c.ebr_collect_period;
  return cfg;
}

inline lsa::Config lower_lsa(const CommonConfig& c) {
  lsa::Config cfg = lower_common<lsa::Config>(c);
  cfg.track_readonly_readsets = c.track_readonly_readsets;
  cfg.time_base = c.time_base;
  cfg.timebase_batch = c.timebase_batch;
  return cfg;
}

/// Uniform handle over a native Tx that already exposes
/// read/write/abort/read_object/write_object (lsa, cs, sstm). Zero-cost:
/// every call forwards directly.
template <typename NativeTx, typename Object>
class BasicTx {
 public:
  explicit BasicTx(NativeTx& n) : n_(&n) {}
  template <typename VarT>
  decltype(auto) read(const VarT& v) {
    return n_->read(v);
  }
  template <typename VarT>
  decltype(auto) write(VarT& v) {
    return n_->write(v);
  }
  template <typename VarT, typename T>
  void write(VarT& v, T value) {
    n_->write(v) = std::move(value);
  }
  [[noreturn]] void abort() { n_->abort(); }

  const runtime::Payload& read_object(void* o) {
    return n_->read_object(*static_cast<Object*>(o));
  }
  runtime::Payload& write_object(void* o) {
    return n_->write_object(*static_cast<Object*>(o));
  }
  /// The wrapped native transaction (advanced use).
  NativeTx& native() { return *n_; }

 private:
  NativeTx* n_;
};

/// Shared single-attempt body for BasicTx runtimes: begin (adapter maps
/// the kind), run, commit; the runtime's abort token means "retry". Any
/// OTHER exception out of the body (including fault::ThreadExit) aborts
/// the attempt — releasing every locator/stripe/lease it holds — before
/// propagating to the caller.
template <typename Adapter, typename AbortToken, typename Ctx, typename F>
bool basic_attempt(Ctx& ctx, TxKind kind, F&& body) {
  auto& native = Adapter::begin_native(ctx, kind);
  try {
    typename Adapter::Tx handle(native);
    body(handle);
    ctx.commit();
    return true;
  } catch (const AbortToken&) {
    return false;
  } catch (...) {
    if (ctx.in_transaction()) ctx.abort_attempt();
    throw;
  }
}

/// Adapter<R>: the per-runtime glue. Each specialization provides
///   Runtime, Ctx, Var<T>, Object, Tx (the uniform handle),
///   name(), create(CommonConfig), attach(), make_object(),
///   attempt(rt, ctx, kind, body) -> bool (one attempt; false = aborted),
///   and optionally maintain(rt) (periodic housekeeping; defaulted to a
///   no-op by maintain_or_default below).
template <typename R>
struct Adapter;

/// Runs Adapter<R>::maintain when the specialization provides one (S-STM's
/// descriptor trim); every other runtime's maintenance is fully handled by
/// EBR + the node pool already, so the default is an empty report.
template <typename A, typename Rt>
MaintainResult maintain_or_default(Rt& rt) {
  if constexpr (requires { A::maintain(rt); }) {
    return A::maintain(rt);
  } else {
    (void)rt;
    return {};
  }
}

template <>
struct Adapter<lsa::Runtime> {
  using Runtime = lsa::Runtime;
  using Ctx = lsa::ThreadCtx;
  template <typename T>
  using Var = lsa::Var<T>;
  using Object = lsa::Object;
  using Tx = BasicTx<lsa::Tx, Object>;

  static const char* name() { return "lsa"; }

  static std::unique_ptr<Runtime> create(const CommonConfig& c) {
    return std::make_unique<Runtime>(lower_lsa(c));
  }
  static std::unique_ptr<Ctx> attach(Runtime& rt) { return rt.attach(); }
  static void* make_object(Runtime& rt, runtime::Payload* initial) {
    return rt.allocate_object(initial);
  }

  /// Read-only kinds run LSA's declared-read-only path (the no-readsets
  /// fast path when the runtime is configured for it).
  static lsa::Tx& begin_native(Ctx& ctx, TxKind kind) {
    return ctx.begin(kind == TxKind::kReadOnly || kind == TxKind::kLong);
  }

  template <typename F>
  static bool attempt(Runtime&, Ctx& ctx, TxKind kind, F&& body) {
    return basic_attempt<Adapter, lsa::TxAborted>(ctx, kind, body);
  }

  /// CM-aware escalation hook: credit a starved transaction's attempt
  /// count as contention-manager karma on the fresh descriptor.
  static void credit_work(Tx& handle, std::uint64_t n) {
    handle.native().descriptor()->add_work(n);
  }
};

template <typename D>
struct Adapter<cs::RuntimeT<D>> {
  using Runtime = cs::RuntimeT<D>;
  using Ctx = typename Runtime::ThreadCtx;
  template <typename T>
  using Var = typename Runtime::template Var<T>;
  using Object = typename Runtime::Object;
  using Tx = BasicTx<typename Runtime::Tx, Object>;

  static const char* name() {
    return std::is_same_v<D, timebase::VcDomain> ? "cs-vc" : "cs-r";
  }

  static std::unique_ptr<Runtime> create(const CommonConfig& c) {
    if constexpr (std::is_same_v<D, timebase::VcDomain>) {
      return cs::make_vc_runtime(lower_common<cs::Config>(c));
    } else {
      // REV requires r <= n (and at least one entry); clamp so one
      // CommonConfig works across thread counts.
      int entries = c.plausible_entries;
      if (entries > c.max_threads) entries = c.max_threads;
      if (entries < 1) entries = 1;
      return cs::make_rev_runtime(entries, lower_common<cs::Config>(c));
    }
  }
  static std::unique_ptr<Ctx> attach(Runtime& rt) { return rt.attach(); }
  static void* make_object(Runtime& rt, runtime::Payload* initial) {
    return rt.allocate_object(initial);
  }

  /// CS-STM has one transaction class; all kinds run it (read-only bodies
  /// simply never bump their own clock component at commit).
  static typename Runtime::Tx& begin_native(Ctx& ctx, TxKind) {
    return ctx.begin();
  }

  template <typename F>
  static bool attempt(Runtime&, Ctx& ctx, TxKind kind, F&& body) {
    return basic_attempt<Adapter, cs::TxAborted>(ctx, kind, body);
  }

  static void credit_work(Tx& handle, std::uint64_t n) {
    handle.native().descriptor()->add_work(n);
  }
};

template <>
struct Adapter<sstm::Runtime> {
  using Runtime = sstm::Runtime;
  using Ctx = sstm::ThreadCtx;
  template <typename T>
  using Var = sstm::Var<T>;
  using Object = sstm::Object;
  using Tx = BasicTx<sstm::Tx, Object>;

  static const char* name() { return "sstm"; }

  static std::unique_ptr<Runtime> create(const CommonConfig& c) {
    return std::make_unique<Runtime>(lower_common<sstm::Config>(c));
  }
  static std::unique_ptr<Ctx> attach(Runtime& rt) { return rt.attach(); }
  static void* make_object(Runtime& rt, runtime::Payload* initial) {
    return rt.allocate_object(initial);
  }

  /// One transaction class; S-STM's serializability machinery does not
  /// distinguish declared-read-only transactions.
  static sstm::Tx& begin_native(Ctx& ctx, TxKind) { return ctx.begin(); }

  /// Housekeeping hook: the quiescent descriptor trim (DESIGN.md §11.5).
  /// Safe from any thread, attached or not; a no-op returning reclaimed=0
  /// whenever an attempt is in flight.
  static MaintainResult maintain(Runtime& rt) {
    const std::size_t reclaimed = rt.trim_descriptors();
    return {reclaimed, rt.descriptor_count()};
  }

  template <typename F>
  static bool attempt(Runtime&, Ctx& ctx, TxKind kind, F&& body) {
    return basic_attempt<Adapter, sstm::TxAborted>(ctx, kind, body);
  }

  static void credit_work(Tx& handle, std::uint64_t n) {
    handle.native().descriptor()->add_work(n);
  }
};

template <>
struct Adapter<zl::Runtime> {
  using Runtime = zl::Runtime;
  using Ctx = zl::ThreadCtx;
  template <typename T>
  using Var = lsa::Var<T>;
  using Object = lsa::Object;

  static const char* name() { return "zl"; }

  /// Dispatching handle: a Z-STM transaction is either short or long, with
  /// different native types; one branch per access is the whole cost.
  class Tx {
   public:
    explicit Tx(zl::ShortTx& s) : short_(&s) {}
    explicit Tx(zl::LongTx& l) : long_(&l) {}
    template <typename T>
    const T& read(const Var<T>& v) {
      return short_ != nullptr ? short_->read(v) : long_->read(v);
    }
    template <typename T>
    T& write(Var<T>& v) {
      return short_ != nullptr ? short_->write(v) : long_->write(v);
    }
    template <typename T>
    void write(Var<T>& v, T value) {
      write(v) = std::move(value);
    }
    [[noreturn]] void abort() {
      if (short_ != nullptr) short_->abort();
      long_->abort();
    }

    const runtime::Payload& read_object(void* o) {
      Object& obj = *static_cast<Object*>(o);
      return short_ != nullptr ? short_->read_object(obj)
                               : long_->read_object(obj);
    }
    runtime::Payload& write_object(void* o) {
      Object& obj = *static_cast<Object*>(o);
      return short_ != nullptr ? short_->write_object(obj)
                               : long_->write_object(obj);
    }
    bool is_long() const { return long_ != nullptr; }

    /// CM-aware escalation (façade retry loop): karma credit lands on
    /// whichever native descriptor this attempt runs under.
    void credit_work(std::uint64_t n) {
      if (long_ != nullptr) {
        long_->descriptor()->add_work(n);
      } else {
        short_->inner().descriptor()->add_work(n);
      }
    }

   private:
    zl::ShortTx* short_ = nullptr;
    zl::LongTx* long_ = nullptr;
  };

  static std::unique_ptr<Runtime> create(const CommonConfig& c) {
    zl::Config cfg;
    cfg.lsa = lower_lsa(c);
    return std::make_unique<Runtime>(cfg);
  }
  static std::unique_ptr<Ctx> attach(Runtime& rt) { return rt.attach(); }
  static void* make_object(Runtime& rt, runtime::Payload* initial) {
    return rt.allocate_object(initial);
  }

  template <typename F>
  static bool attempt(Runtime&, Ctx& ctx, TxKind kind, F&& body) {
    if (kind == TxKind::kLong || kind == TxKind::kLongUpdate) {
      zl::LongTx& n = ctx.begin_long();
      try {
        Tx handle(n);
        body(handle);
        ctx.commit_long();
        return true;
      } catch (const zl::TxAborted&) {
        return false;
      } catch (...) {
        if (ctx.in_long_transaction()) ctx.abort_long_attempt();
        throw;
      }
    }
    zl::ShortTx& n = ctx.begin_short(kind == TxKind::kReadOnly);
    try {
      Tx handle(n);
      body(handle);
      ctx.commit_short();
      return true;
    } catch (const zl::TxAborted&) {
      return false;
    } catch (...) {
      if (ctx.in_short_transaction()) ctx.abort_short_attempt();
      throw;
    }
  }

  static void credit_work(Tx& handle, std::uint64_t n) {
    handle.credit_work(n);
  }
};

template <>
struct Adapter<tl2::Runtime> {
  using Runtime = tl2::Runtime;
  using Ctx = tl2::ThreadCtx;
  template <typename T>
  using Var = tl2::Var<T>;
  using Object = tl2::Object;
  using Tx = BasicTx<tl2::Tx, Object>;

  static const char* name() { return "tl2"; }

  /// tl2 is word-granularity with no versions, retention, or contention
  /// manager; only the threading/pool/history knobs lower.
  static std::unique_ptr<Runtime> create(const CommonConfig& c) {
    tl2::Config cfg;
    cfg.max_threads = c.max_threads;
    cfg.use_node_pool = c.use_node_pool;
    cfg.record_history = c.record_history;
    cfg.sharded_tx_ids = c.sharded_tx_ids;
    if (c.tl2_clock_stride > 0) {
      cfg.clock_scheme = tl2::ClockScheme::kCasStride;
      cfg.clock_stride = c.tl2_clock_stride;
    }
    return std::make_unique<Runtime>(cfg);
  }
  static std::unique_ptr<Ctx> attach(Runtime& rt) { return rt.attach(); }
  static void* make_object(Runtime& rt, runtime::Payload* initial) {
    return rt.allocate_object(initial);
  }

  /// One transaction class; an empty write set makes a commit read-only
  /// automatically, so the kind only passes the advisory flag through.
  static tl2::Tx& begin_native(Ctx& ctx, TxKind kind) {
    return ctx.begin(kind == TxKind::kReadOnly || kind == TxKind::kLong);
  }

  template <typename F>
  static bool attempt(Runtime&, Ctx& ctx, TxKind kind, F&& body) {
    return basic_attempt<Adapter, tl2::TxAborted>(ctx, kind, body);
  }

  /// tl2 has no contention manager; karma credit has nowhere to go.
  static void credit_work(Tx&, std::uint64_t) {}
};

}  // namespace detail

// ---------------------------------------------------------------------------
// Stm<R>: the zero-cost adapter.
// ---------------------------------------------------------------------------

/// One façade instance owns one runtime. Movable, not copyable. Worker
/// threads must be finished with it before it is destroyed (see header
/// comment for the implicit-attachment lifetime contract).
template <typename R>
class Stm {
 public:
  using Adapter = detail::Adapter<R>;
  using Runtime = R;
  using Ctx = typename Adapter::Ctx;
  /// The uniform transaction handle bodies receive (runtime-specific type,
  /// uniform interface — take it as `auto&` in generic code).
  using Tx = typename Adapter::Tx;
  template <typename T>
  using Var = typename Adapter::template Var<T>;

  explicit Stm(CommonConfig cfg = {})
      : cfg_(cfg),
        rt_(Adapter::create(cfg)),
        shared_(std::make_shared<Shared>()),
        progress_(std::make_unique<util::ProgressTracker>(cfg.max_threads)),
        maint_counters_(cfg.maintain_every != 0
                            ? static_cast<std::size_t>(cfg.max_threads)
                            : 0),
        serial_after_(detail::resolve_serial_after(cfg.retry)),
        id_(next_id()) {}

  ~Stm() { invalidate_cached_ctxs(); }

  Stm(const Stm&) = delete;
  Stm& operator=(const Stm&) = delete;
  Stm(Stm&& other) noexcept
      : cfg_(other.cfg_),
        rt_(std::move(other.rt_)),
        shared_(std::move(other.shared_)),
        progress_(std::move(other.progress_)),
        maint_counters_(std::move(other.maint_counters_)),
        serial_after_(other.serial_after_),
        id_(other.id_) {
    other.id_ = 0;  // the id travels with the runtime; the husk is inert
  }
  Stm& operator=(Stm&& other) noexcept {
    if (this != &other) {
      invalidate_cached_ctxs();
      cfg_ = other.cfg_;
      rt_ = std::move(other.rt_);
      shared_ = std::move(other.shared_);
      progress_ = std::move(other.progress_);
      maint_counters_ = std::move(other.maint_counters_);
      serial_after_ = other.serial_after_;
      id_ = other.id_;
      other.id_ = 0;
    }
    return *this;
  }

  static const char* runtime_name() { return Adapter::name(); }

  template <typename T>
  Var<T> make_var(T initial) {
    return rt_->make_var(std::move(initial));
  }

  /// Run `body` as a transaction of the given kind, retrying with backoff
  /// until it commits. The calling thread attaches implicitly on first use.
  template <typename F>
  RunResult run(TxKind kind, F&& body) {
    return run_impl(kind, body, 0);
  }

  /// Budgeted variant: gives up after `max_attempts` aborted attempts and
  /// returns `committed == false` (0 = unbounded). This is how callers
  /// express the paper's abandoned long-transaction episodes.
  template <typename F>
  RunResult run(TxKind kind, F&& body, std::uint32_t max_attempts) {
    return run_impl(kind, body, max_attempts);
  }

  /// Drop the calling thread's cached ThreadCtx now (releasing its registry
  /// slot) instead of at thread exit. The next `run` re-attaches.
  void detach_thread() {
    TlsCache& c = tls();
    if (c.fast_id == id_) {
      c.fast_id = 0;
      c.fast_ctx = nullptr;
    }
    c.entries.erase(id_);
  }

  /// The underlying runtime (advanced / test use; the raw API stays public).
  R& runtime() { return *rt_; }
  const R& runtime() const { return *rt_; }

  const CommonConfig& config() const { return cfg_; }
  util::StatsSnapshot stats() const { return rt_->stats(); }
  void reset_stats() { rt_->reset_stats(); }

  /// Starvation watchdog: per-slot max-attempt high-water, the oldest
  /// transaction currently in flight, and serial-fallback entries.
  util::ProgressTracker::Snapshot progress() const {
    return progress_->snapshot();
  }
  void reset_progress() { progress_->reset(); }

  /// Periodic/idle housekeeping (DESIGN.md §12.4): on S-STM this is the
  /// quiescent descriptor trim; on every other runtime a cheap no-op.
  /// Callable from any thread — including one that never ran a
  /// transaction, like a server's housekeeping thread — but never from
  /// inside a transaction body.
  ///
  /// The plain call is opportunistic: S-STM's trim only succeeds at
  /// quiescence, so under continuous load it may keep returning
  /// reclaimed=0 while `retained` grows. `force = true` escalates exactly
  /// like RetryPolicy rung 3: it takes the serial-irrevocable token
  /// exclusively, draining every in-flight façade attempt, and trims in
  /// the resulting quiet window. The drain guarantee needs the serial gate
  /// active (`retry.serial_after != 0` or ZSTM_SERIAL_FALLBACK); with the
  /// gate disabled a forced call degrades to the opportunistic one.
  MaintainResult maintain(bool force = false) {
    if (force && serial_after_ != 0) {
      std::unique_lock<std::shared_mutex> drain(shared_->serial_gate);
      return detail::maintain_or_default<Adapter>(*rt_);
    }
    return detail::maintain_or_default<Adapter>(*rt_);
  }

 private:
  struct Entry;

  /// Control block shared between the Stm and every thread's cached ctx
  /// entry: lets whichever dies first (thread or Stm) clean up safely.
  struct Shared {
    std::mutex mu;
    std::atomic<bool> dead{false};
    std::vector<Entry*> entries;
    /// The serial-irrevocable token (RetryPolicy rung 3). Ordinary attempts
    /// hold it shared (only taken when the rung is enabled — an uncontended
    /// shared_mutex op per attempt); an escalated transaction holds it
    /// exclusive, which drains every in-flight attempt first.
    std::shared_mutex serial_gate;
  };

  struct Entry {
    std::shared_ptr<Shared> shared;
    std::unique_ptr<Ctx> ctx;

    Entry() = default;
    Entry(const Entry&) = delete;
    Entry& operator=(const Entry&) = delete;

    ~Entry() {
      if (shared == nullptr) return;
      std::lock_guard<std::mutex> lk(shared->mu);
      if (ctx != nullptr) {
        ctx.reset();  // releases the registry slot on this (owning) thread
        auto& v = shared->entries;
        for (std::size_t i = 0; i < v.size(); ++i) {
          if (v[i] == this) {
            v[i] = v.back();
            v.pop_back();
            break;
          }
        }
      }
    }

    bool dead() const {
      return shared != nullptr && shared->dead.load(std::memory_order_acquire);
    }
  };

  struct TlsCache {
    /// One-element fast path: ids are never reused, so a stale fast_id can
    /// never alias a new Stm (no ABA).
    std::uint64_t fast_id = 0;
    Ctx* fast_ctx = nullptr;
    std::unordered_map<std::uint64_t, Entry> entries;
  };

  static TlsCache& tls() {
    thread_local TlsCache cache;
    return cache;
  }

  static std::uint64_t next_id() {
    static std::atomic<std::uint64_t> counter{0};
    return counter.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  Ctx& thread_ctx() {
    TlsCache& c = tls();
    if (c.fast_id == id_) return *c.fast_ctx;
    // Slow path: sweep entries whose Stm died, then find-or-attach.
    for (auto it = c.entries.begin(); it != c.entries.end();) {
      it = it->second.dead() ? c.entries.erase(it) : std::next(it);
    }
    Entry& e = c.entries[id_];
    if (e.ctx == nullptr) {
      e.shared = shared_;
      std::unique_ptr<Ctx> ctx = Adapter::attach(*rt_);
      std::lock_guard<std::mutex> lk(shared_->mu);
      e.ctx = std::move(ctx);
      shared_->entries.push_back(&e);
    }
    c.fast_id = id_;
    c.fast_ctx = e.ctx.get();
    return *e.ctx;
  }

  /// Destroy every cached ctx still registered against this Stm (runs in
  /// the destructor, before the runtime member is destroyed). Entries left
  /// in other threads' TLS keep only the Shared block alive; they are swept
  /// on those threads' next slow-path lookup or at their exit.
  void invalidate_cached_ctxs() {
    if (shared_ == nullptr) return;  // moved-from
    detach_thread();                 // own thread first: clears fast cache
    std::lock_guard<std::mutex> lk(shared_->mu);
    shared_->dead.store(true, std::memory_order_release);
    for (Entry* e : shared_->entries) e->ctx.reset();
    shared_->entries.clear();
  }

  /// One attempt, with the carried karma (RetryPolicy rung 2) credited to
  /// the fresh descriptor as the first action inside the transaction.
  template <typename F>
  bool attempt_once(Ctx& ctx, TxKind kind, F& body, std::uint64_t carried) {
    if (carried == 0) return Adapter::attempt(*rt_, ctx, kind, body);
    auto wrapped = [&](typename Adapter::Tx& handle) {
      Adapter::credit_work(handle, carried);
      body(handle);
    };
    return Adapter::attempt(*rt_, ctx, kind, wrapped);
  }

  /// The retry/escalation ladder (see RetryPolicy). A per-call budget
  /// overrides the policy's and always wins over escalation.
  template <typename F>
  RunResult run_impl(TxKind kind, F& body, std::uint32_t max_attempts) {
    Ctx& ctx = thread_ctx();
    const RetryPolicy& pol = cfg_.retry;
    if (max_attempts == 0) max_attempts = pol.max_attempts;
    const int slot = ctx.slot();
    util::ProgressTracker& watch = *progress_;
    watch.tx_begin(slot);
    std::uint32_t attempt = 1;
    struct EndGuard {  // tx_end even when a foreign exception unwinds run()
      util::ProgressTracker& watch;
      int slot;
      const std::uint32_t& attempt;
      ~EndGuard() { watch.tx_end(slot, attempt); }
    } end_guard{watch, slot, attempt};

    util::Backoff bo(pol.backoff_min_spins > 0 ? pol.backoff_min_spins : 1,
                     pol.backoff_max_spins, detail::backoff_seed(slot));
    std::uint64_t carried = 0;
    for (;; ++attempt) {
      watch.note_attempt(slot, attempt);
      if (serial_after_ != 0 && attempt > serial_after_) {
        // Rung 3: take the token exclusively (drains all in-flight shared
        // attempts), suppress fault injection, and retry under the token
        // until commit. With no façade rival running and no injection, an
        // attempt can only abort through raw-runtime users outside the
        // façade — and those cannot do so forever, since each such abort
        // consumes one of THEIR protocol steps; in the common all-façade
        // case the first serial attempt commits.
        std::unique_lock<std::shared_mutex> serial(shared_->serial_gate);
        fault::SuppressGuard suppress;
        watch.note_serial(slot);
        for (;; ++attempt) {
          watch.note_attempt(slot, attempt);
          if (attempt_once(ctx, kind, body, carried)) {
            serial.unlock();
            after_commit(slot);
            return {attempt, true};
          }
          if (max_attempts != 0 && attempt >= max_attempts) {
            return {attempt, false};
          }
        }
      }
      bool committed;
      if (serial_after_ != 0) {
        std::shared_lock<std::shared_mutex> gate(shared_->serial_gate);
        committed = attempt_once(ctx, kind, body, carried);
      } else {
        committed = attempt_once(ctx, kind, body, carried);
      }
      if (committed) {
        after_commit(slot);
        return {attempt, true};
      }
      if (max_attempts != 0 && attempt >= max_attempts) {
        return {attempt, false};
      }
      if (pol.cm_escalate_after != 0 && attempt >= pol.cm_escalate_after) {
        carried = attempt;  // rung 2: karma credit for the next attempt
      }
      // Deliberately NO backoff reset on escalation: past the spin cap the
      // episodes are sched_yield, and a starved transaction's rivals are
      // usually *mid-transaction on this core* (threads > cores). Hot
      // retries here would burn whole scheduler quanta that the owner
      // needs to finish — measured as a ~1000x slowdown of the history
      // workload on the 1-CPU CI box. Priority comes from the karma
      // credit (the CM favors the starved side), not from retry rate.
      bo.pause();
    }
  }

  /// The every-N-commits maintenance fallback (CommonConfig::maintain_every,
  /// DESIGN.md §12.4). Counters are per registry slot — only the slot's
  /// owner thread touches its cell between attach and release, so the
  /// relaxed ordering is about slot reuse across thread churn, not
  /// concurrent increments.
  void after_commit(int slot) {
    if (maint_counters_.empty()) return;
    auto& n = maint_counters_[static_cast<std::size_t>(slot)].value;
    if (n.fetch_add(1, std::memory_order_relaxed) + 1 >=
        cfg_.maintain_every) {
      n.store(0, std::memory_order_relaxed);
      maintain();
    }
  }

  CommonConfig cfg_;
  std::unique_ptr<R> rt_;
  std::shared_ptr<Shared> shared_;
  std::unique_ptr<util::ProgressTracker> progress_;
  /// Sized max_threads when maintain_every != 0; empty (hook disabled and
  /// commit path untouched) otherwise.
  std::vector<util::Padded<std::atomic<std::uint32_t>>> maint_counters_;
  std::uint32_t serial_after_ = 0;
  std::uint64_t id_ = 0;
};

using LsaStm = Stm<lsa::Runtime>;
using CsVcStm = Stm<cs::VcRuntime>;
using CsRevStm = Stm<cs::RevRuntime>;
using SStm = Stm<sstm::Runtime>;
using ZStm = Stm<zl::Runtime>;
using Tl2Stm = Stm<tl2::Runtime>;

// ---------------------------------------------------------------------------
// By-name variant dispatch — THE one mapping from names to runtimes.
// AnyStm::make, the bench harness's compile-time dispatch, and
// variant_names() below all drive off this visitor; adding a variant means
// adding exactly one branch here (and its name to kVariantNames).
// ---------------------------------------------------------------------------

/// The canonical variant names, in the order the paper's figures use.
inline const std::vector<std::string>& variant_names() {
  static const std::vector<std::string> kVariantNames{
      "lsa", "lsa-nors", "cs-vc", "cs-r", "sstm", "zl", "tl2"};
  return kVariantNames;
}

/// Resolve `name` to a façade type at compile time: invokes
/// `fn(std::type_identity<Stm<R>>{}, canonical_name, lowered_cfg)` for the
/// matching variant. Throws std::invalid_argument for unknown names.
template <typename Fn>
decltype(auto) visit_variant(std::string_view name, CommonConfig cfg,
                             Fn&& fn) {
  if (name == "lsa") {
    return fn(std::type_identity<LsaStm>{}, "lsa", cfg);
  }
  if (name == "lsa-nors" || name == "lsa-no-readsets") {
    cfg.track_readonly_readsets = false;
    return fn(std::type_identity<LsaStm>{}, "lsa-nors", cfg);
  }
  if (name == "cs-vc") {
    return fn(std::type_identity<CsVcStm>{}, "cs-vc", cfg);
  }
  if (name == "cs-r") {
    return fn(std::type_identity<CsRevStm>{}, "cs-r", cfg);
  }
  if (name == "sstm") {
    return fn(std::type_identity<SStm>{}, "sstm", cfg);
  }
  if (name == "zl") {
    return fn(std::type_identity<ZStm>{}, "zl", cfg);
  }
  if (name == "tl2") {
    return fn(std::type_identity<Tl2Stm>{}, "tl2", cfg);
  }
  throw std::invalid_argument(
      "unknown STM variant '" + std::string(name) +
      "' (expected lsa | lsa-nors | cs-vc | cs-r | sstm | zl | tl2)");
}

// ---------------------------------------------------------------------------
// AnyStm: the type-erased façade (runtime selected by name).
// ---------------------------------------------------------------------------

/// Non-owning callable reference (no allocation; the callee must outlive
/// the call — always true for transaction bodies).
template <typename Sig>
class FunctionRef;

template <typename Ret, typename... Args>
class FunctionRef<Ret(Args...)> {
 public:
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef>>>
  FunctionRef(F&& f)  // NOLINT(google-explicit-constructor)
      : obj_(const_cast<void*>(
            static_cast<const void*>(std::addressof(f)))),
        call_([](void* o, Args... a) -> Ret {
          return (*static_cast<std::remove_reference_t<F>*>(o))(
              std::forward<Args>(a)...);
        }) {}

  Ret operator()(Args... a) const {
    return call_(obj_, std::forward<Args>(a)...);
  }

 private:
  void* obj_;
  Ret (*call_)(void*, Args...);
};

/// Type-erased transactional variable (created by AnyStm::make_var). Only
/// valid with the AnyStm that created it.
template <typename T>
class AnyVar {
 public:
  AnyVar() = default;
  void* raw() const { return obj_; }

 private:
  friend class AnyStm;
  explicit AnyVar(void* obj) : obj_(obj) {}
  void* obj_ = nullptr;
};

/// The uniform type-erased transaction handle AnyStm bodies receive.
class TxHandle {
 public:
  struct Ops {
    const runtime::Payload& (*read)(void* tx, void* obj);
    runtime::Payload& (*write)(void* tx, void* obj);
    void (*abort)(void* tx);  // always throws the runtime's TxAborted
  };

  TxHandle(void* tx, const Ops* ops) : tx_(tx), ops_(ops) {}

  template <typename T>
  const T& read(const AnyVar<T>& v) {
    return runtime::payload_as<T>(ops_->read(tx_, v.raw()));
  }
  template <typename T>
  T& write(AnyVar<T>& v) {
    return runtime::payload_as<T>(ops_->write(tx_, v.raw()));
  }
  template <typename T>
  void write(AnyVar<T>& v, T value) {
    write(v) = std::move(value);
  }
  [[noreturn]] void abort() {
    ops_->abort(tx_);  // throws
    __builtin_unreachable();
  }

 private:
  void* tx_;
  const Ops* ops_;
};

namespace detail {

struct AnyStmBase {
  virtual ~AnyStmBase() = default;
  virtual void* make_object(runtime::Payload* initial) = 0;
  virtual RunResult run(TxKind kind, FunctionRef<void(TxHandle&)> body,
                        std::uint32_t max_attempts) = 0;
  virtual util::StatsSnapshot stats() const = 0;
  virtual void reset_stats() = 0;
  virtual util::ProgressTracker::Snapshot progress() const = 0;
  virtual const CommonConfig& config() const = 0;
  virtual MaintainResult maintain(bool force) = 0;
};

}  // namespace detail

class AnyStm {
 public:
  using Tx = TxHandle;
  template <typename T>
  using Var = AnyVar<T>;

  /// Resolve a runtime variant by name (the visit_variant mapping):
  ///   "lsa" | "lsa-nors" (alias "lsa-no-readsets") | "cs-vc" | "cs-r" |
  ///   "sstm" | "zl" | "tl2"
  /// Throws std::invalid_argument for unknown names.
  static AnyStm make(std::string_view name, CommonConfig cfg = {});

  /// The canonical variant names (api::variant_names re-exported).
  static const std::vector<std::string>& variant_names() {
    return api::variant_names();
  }

  AnyStm(AnyStm&&) noexcept = default;
  AnyStm& operator=(AnyStm&&) noexcept = default;

  template <typename T>
  AnyVar<T> make_var(T initial) {
    return AnyVar<T>(impl_->make_object(
        new runtime::TypedPayload<T>(std::move(initial))));
  }

  template <typename F>
  RunResult run(TxKind kind, F&& body) {
    return impl_->run(kind, FunctionRef<void(TxHandle&)>(body), 0);
  }
  template <typename F>
  RunResult run(TxKind kind, F&& body, std::uint32_t max_attempts) {
    return impl_->run(kind, FunctionRef<void(TxHandle&)>(body), max_attempts);
  }

  const std::string& name() const { return name_; }
  const CommonConfig& config() const { return impl_->config(); }
  util::StatsSnapshot stats() const { return impl_->stats(); }
  void reset_stats() { impl_->reset_stats(); }
  /// Starvation-watchdog snapshot (see Stm<R>::progress).
  util::ProgressTracker::Snapshot progress() const {
    return impl_->progress();
  }
  /// Periodic/idle housekeeping (see Stm<R>::maintain).
  MaintainResult maintain(bool force = false) {
    return impl_->maintain(force);
  }

 private:
  AnyStm(std::unique_ptr<detail::AnyStmBase> impl, std::string name)
      : impl_(std::move(impl)), name_(std::move(name)) {}

  std::unique_ptr<detail::AnyStmBase> impl_;
  std::string name_;
};

}  // namespace zstm::api
