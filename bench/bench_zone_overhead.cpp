// Figure 6 claim: "the overhead of updating and checking the per-object
// zone counters is negligible on our system."
//
// Transfer-only workload (no long transactions ever started), LSA-STM vs
// Z-STM short transactions: the difference is exactly Z-STM's zone checks.
// `--json` additionally writes BENCH_zone_overhead.json (see bench_json.hpp).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "lsa/lsa.hpp"
#include "util/rng.hpp"
#include "zstm/zstm.hpp"

namespace {

constexpr int kAccounts = 256;
constexpr auto kDuration = std::chrono::milliseconds(200);

template <typename MakeCtx, typename Transfer>
double trial(int threads, MakeCtx&& make_ctx, Transfer&& transfer) {
  std::atomic<std::uint64_t> commits{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      auto th = make_ctx();
      zstm::util::Xorshift rng(static_cast<std::uint64_t>(t) + 13);
      std::uint64_t my = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const std::size_t a = rng.next_below(kAccounts);
        std::size_t b = rng.next_below(kAccounts);
        if (b == a) b = (b + 1) % kAccounts;
        transfer(*th, a, b);
        ++my;
      }
      commits.fetch_add(my);
    });
  }
  const auto t0 = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(kDuration);
  stop.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return static_cast<double>(commits.load()) / secs;
}

}  // namespace

int main(int argc, char** argv) {
  const bool json = zstm::benchjson::json_requested(argc, argv);
  std::printf("Zone-counter overhead (Figure 6 claim): transfer-only "
              "workload, no long transactions\n\n");
  std::printf("%8s %14s %14s %12s\n", "threads", "LSA [tx/s]", "Z-STM [tx/s]",
              "Z/LSA");
  struct Row {
    int threads;
    double lsa, z;
  };
  std::vector<Row> rows;
  for (int threads : {1, 2, 4, 8}) {
    double lsa_rate;
    {
      zstm::lsa::Config cfg;
      cfg.max_threads = threads + 2;
      zstm::lsa::Runtime rt(cfg);
      std::vector<zstm::lsa::Var<long>> vars;
      for (int i = 0; i < kAccounts; ++i) vars.push_back(rt.make_var<long>(50));
      lsa_rate = trial(
          threads, [&] { return rt.attach(); },
          [&](zstm::lsa::ThreadCtx& th, std::size_t a, std::size_t b) {
            rt.run(th, [&](zstm::lsa::Tx& tx) {
              tx.write(vars[a]) -= 1;
              tx.write(vars[b]) += 1;
            });
          });
    }
    double z_rate;
    {
      zstm::zl::Config cfg;
      cfg.lsa.max_threads = threads + 2;
      zstm::zl::Runtime rt(cfg);
      std::vector<zstm::lsa::Var<long>> vars;
      for (int i = 0; i < kAccounts; ++i) vars.push_back(rt.make_var<long>(50));
      z_rate = trial(
          threads, [&] { return rt.attach(); },
          [&](zstm::zl::ThreadCtx& th, std::size_t a, std::size_t b) {
            rt.run_short(th, [&](zstm::zl::ShortTx& tx) {
              tx.write(vars[a]) -= 1;
              tx.write(vars[b]) += 1;
            });
          });
    }
    rows.push_back(Row{threads, lsa_rate, z_rate});
    std::printf("%8d %14.0f %14.0f %11.2f%%\n", threads, lsa_rate, z_rate,
                100.0 * z_rate / lsa_rate);
  }
  std::printf("\nExpected: Z/LSA close to 100%% — zone checks are two loads\n"
              "and a branch per open when no long transaction is active.\n");

  if (json) {
    zstm::benchjson::Doc doc("zone_overhead");
    for (const Row& r : rows) {
      doc.row()
          .num("threads", r.threads)
          .num("lsa_tx_per_s", r.lsa)
          .num("zstm_tx_per_s", r.z)
          .num("z_over_lsa", r.lsa > 0 ? r.z / r.lsa : 0.0);
    }
    if (!doc.write()) return 1;
  }
  return 0;
}
