// The paper's bank micro-benchmark (§5.5), shared by bench_fig6/bench_fig7
// and the bank example.
//
// Setup, following the paper exactly:
//  * 1,000 accounts.
//  * Transfer: withdraw from one account, deposit to another (small update
//    transaction).
//  * Compute-Total: sum of all account balances (long transaction), in two
//    variants — read-only, or an update writing "private but transactional
//    state" (a sink object only Compute-Total touches).
//  * Thread 0 runs transfers with 80% probability and Compute-Total with
//    20%; all other threads run only transfers.
//
// Long transactions that cannot commit within an attempt budget are
// abandoned and counted as failed episodes — under LSA with update
// Compute-Total this is the common case (the Figure 7 collapse); retrying
// forever would wedge the thread instead of measuring the starvation.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "lsa/lsa.hpp"
#include "util/rng.hpp"
#include "zstm/zstm.hpp"

namespace zstm::bench {

struct BankParams {
  int accounts = 1000;
  int threads = 1;
  std::chrono::milliseconds duration{200};
  bool update_total = false;
  double long_probability = 0.2;
  std::uint32_t long_attempt_budget = 24;
  std::uint64_t seed = 9;
};

struct BankResult {
  double compute_total_per_s = 0;
  double transfer_per_s = 0;
  std::uint64_t compute_total_commits = 0;
  std::uint64_t compute_total_failures = 0;  // budget-exhausted episodes
  std::uint64_t transfer_commits = 0;
};

/// LSA-STM bank (baseline). `track_ro_readsets = false` gives the paper's
/// "LSA-STM (no readsets)" variant.
class LsaBank {
 public:
  LsaBank(const BankParams& p, bool track_ro_readsets) {
    lsa::Config cfg;
    cfg.max_threads = p.threads + 2;
    cfg.track_readonly_readsets = track_ro_readsets;
    rt_ = std::make_unique<lsa::Runtime>(cfg);
    for (int i = 0; i < p.accounts; ++i) {
      accounts_.push_back(rt_->make_var<long>(1000));
    }
    sink_ = rt_->make_var<long>(0);
  }

  using Ctx = std::unique_ptr<lsa::ThreadCtx>;
  Ctx attach() { return rt_->attach(); }

  void transfer(lsa::ThreadCtx& th, std::size_t from, std::size_t to,
                long amount) {
    rt_->run(th, [&](lsa::Tx& tx) {
      tx.write(accounts_[from]) -= amount;
      tx.write(accounts_[to]) += amount;
    });
  }

  bool compute_total(lsa::ThreadCtx& th, bool update,
                     std::uint32_t attempt_budget) {
    for (std::uint32_t a = 0; a < attempt_budget; ++a) {
      lsa::Tx& tx = th.begin(/*read_only=*/!update);
      try {
        long total = 0;
        for (auto& acc : accounts_) total += tx.read(acc);
        if (update) tx.write(sink_, total);
        th.commit();
        return true;
      } catch (const lsa::TxAborted&) {
        // retry within budget
      }
    }
    return false;
  }

 private:
  std::unique_ptr<lsa::Runtime> rt_;
  std::vector<lsa::Var<long>> accounts_;
  lsa::Var<long> sink_;
};

/// Z-STM bank: transfers are short transactions, Compute-Total is long.
class ZBank {
 public:
  explicit ZBank(const BankParams& p) {
    zl::Config cfg;
    cfg.lsa.max_threads = p.threads + 2;
    rt_ = std::make_unique<zl::Runtime>(cfg);
    for (int i = 0; i < p.accounts; ++i) {
      accounts_.push_back(rt_->make_var<long>(1000));
    }
    sink_ = rt_->make_var<long>(0);
  }

  using Ctx = std::unique_ptr<zl::ThreadCtx>;
  Ctx attach() { return rt_->attach(); }

  void transfer(zl::ThreadCtx& th, std::size_t from, std::size_t to,
                long amount) {
    rt_->run_short(th, [&](zl::ShortTx& tx) {
      tx.write(accounts_[from]) -= amount;
      tx.write(accounts_[to]) += amount;
    });
  }

  bool compute_total(zl::ThreadCtx& th, bool update,
                     std::uint32_t attempt_budget) {
    for (std::uint32_t a = 0; a < attempt_budget; ++a) {
      zl::LongTx& tx = th.begin_long();
      try {
        long total = 0;
        for (auto& acc : accounts_) total += tx.read(acc);
        if (update) tx.write(sink_, total);
        th.commit_long();
        return true;
      } catch (const zl::TxAborted&) {
      }
    }
    return false;
  }

 private:
  std::unique_ptr<zl::Runtime> rt_;
  std::vector<lsa::Var<long>> accounts_;
  lsa::Var<long> sink_;
};

template <typename Bank>
BankResult run_bank(Bank& bank, const BankParams& p) {
  std::atomic<std::uint64_t> ct_commits{0};
  std::atomic<std::uint64_t> ct_failures{0};
  std::atomic<std::uint64_t> tr_commits{0};
  std::atomic<bool> stop{false};

  std::vector<std::thread> workers;
  for (int t = 0; t < p.threads; ++t) {
    workers.emplace_back([&, t] {
      auto th = bank.attach();
      util::Xorshift rng(p.seed + static_cast<std::uint64_t>(t) * 1609);
      std::uint64_t my_ct = 0, my_ct_fail = 0, my_tr = 0;
      const auto n = static_cast<std::uint64_t>(p.accounts);
      while (!stop.load(std::memory_order_acquire)) {
        if (t == 0 && rng.chance(p.long_probability)) {
          if (bank.compute_total(*th, p.update_total, p.long_attempt_budget)) {
            ++my_ct;
          } else {
            ++my_ct_fail;
          }
        } else {
          const std::size_t from = rng.next_below(n);
          std::size_t to = rng.next_below(n);
          if (to == from) to = (to + 1) % n;
          bank.transfer(*th, from, to, 1 + static_cast<long>(rng.next_below(90)));
          ++my_tr;
        }
      }
      ct_commits.fetch_add(my_ct);
      ct_failures.fetch_add(my_ct_fail);
      tr_commits.fetch_add(my_tr);
    });
  }

  const auto t0 = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(p.duration);
  stop.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  BankResult r;
  r.compute_total_commits = ct_commits.load();
  r.compute_total_failures = ct_failures.load();
  r.transfer_commits = tr_commits.load();
  r.compute_total_per_s = static_cast<double>(r.compute_total_commits) / secs;
  r.transfer_per_s = static_cast<double>(r.transfer_commits) / secs;
  return r;
}

}  // namespace zstm::bench
