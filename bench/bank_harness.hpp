// The paper's bank micro-benchmark (§5.5), shared by bench_fig6/bench_fig7
// and the bank example.
//
// Setup, following the paper exactly:
//  * 1,000 accounts.
//  * Transfer: withdraw from one account, deposit to another (small update
//    transaction).
//  * Compute-Total: sum of all account balances (long transaction), in two
//    variants — read-only, or an update writing "private but transactional
//    state" (a sink object only Compute-Total touches).
//  * Thread 0 runs transfers with 80% probability and Compute-Total with
//    20%; all other threads run only transfers.
//
// The harness is one generic `Bank<S>` over the zstm::api façade: S is
// `api::Stm<R>` (compiled-in runtime, zero-cost) or `api::AnyStm` (runtime
// picked by name — how bench_fig6/fig7 cover all five variants and
// examples/bank.cpp grows a --runtime flag). Transfers run as
// TxKind::kUpdate, Compute-Total as kLong / kLongUpdate — Z-STM maps those
// onto Algorithm 2, every other runtime onto its ordinary transactions.
//
// Long transactions that cannot commit within an attempt budget are
// abandoned and counted as failed episodes — under LSA with update
// Compute-Total this is the common case (the Figure 7 collapse); retrying
// forever would wedge the thread instead of measuring the starvation.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "api/stm_api.hpp"
#include "util/rng.hpp"

namespace zstm::bench {

struct BankParams {
  int accounts = 1000;
  int threads = 1;
  std::chrono::milliseconds duration{200};
  bool update_total = false;
  double long_probability = 0.2;
  std::uint32_t long_attempt_budget = 24;
  std::uint64_t seed = 9;
};

struct BankResult {
  double compute_total_per_s = 0;
  double transfer_per_s = 0;
  std::uint64_t compute_total_commits = 0;
  std::uint64_t compute_total_failures = 0;  // budget-exhausted episodes
  std::uint64_t transfer_commits = 0;
};

/// Config sized for a bank run: the workload's threads plus headroom for
/// the main thread and stragglers.
inline api::CommonConfig bank_config(const BankParams& p) {
  api::CommonConfig cfg;
  cfg.max_threads = p.threads + 2;
  return cfg;
}

/// The paper's bank over any façade (api::Stm<R> or api::AnyStm). Threads
/// attach implicitly on their first transaction.
template <typename S>
class Bank {
 public:
  Bank(S stm, const BankParams& p) : stm_(std::move(stm)) {
    for (int i = 0; i < p.accounts; ++i) {
      accounts_.push_back(stm_.make_var(1000L));
    }
    sink_ = stm_.make_var(0L);
  }

  S& stm() { return stm_; }

  void transfer(std::size_t from, std::size_t to, long amount) {
    stm_.run(api::TxKind::kUpdate, [&](auto& tx) {
      tx.write(accounts_[from]) -= amount;
      tx.write(accounts_[to]) += amount;
    });
  }

  /// One Compute-Total episode; false = attempt budget exhausted.
  bool compute_total(bool update, std::uint32_t attempt_budget) {
    const api::RunResult r = stm_.run(
        update ? api::TxKind::kLongUpdate : api::TxKind::kLong,
        [&](auto& tx) {
          long total = 0;
          for (auto& acc : accounts_) total += tx.read(acc);
          if (update) tx.write(sink_, total);
        },
        attempt_budget);
    return r.committed;
  }

  /// Conservation check: the committed sum of all accounts.
  long total_balance() {
    long total = 0;
    stm_.run(api::TxKind::kReadOnly, [&](auto& tx) {
      total = 0;
      for (auto& acc : accounts_) total += tx.read(acc);
    });
    return total;
  }

 private:
  S stm_;
  std::vector<typename S::template Var<long>> accounts_;
  typename S::template Var<long> sink_;
};

template <typename S>
BankResult run_bank(Bank<S>& bank, const BankParams& p) {
  std::atomic<std::uint64_t> ct_commits{0};
  std::atomic<std::uint64_t> ct_failures{0};
  std::atomic<std::uint64_t> tr_commits{0};
  std::atomic<bool> stop{false};

  std::vector<std::thread> workers;
  for (int t = 0; t < p.threads; ++t) {
    workers.emplace_back([&, t] {
      util::Xorshift rng(p.seed + static_cast<std::uint64_t>(t) * 1609);
      std::uint64_t my_ct = 0, my_ct_fail = 0, my_tr = 0;
      const auto n = static_cast<std::uint64_t>(p.accounts);
      while (!stop.load(std::memory_order_acquire)) {
        if (t == 0 && rng.chance(p.long_probability)) {
          if (bank.compute_total(p.update_total, p.long_attempt_budget)) {
            ++my_ct;
          } else {
            ++my_ct_fail;
          }
        } else {
          const std::size_t from = rng.next_below(n);
          std::size_t to = rng.next_below(n);
          if (to == from) to = (to + 1) % n;
          bank.transfer(from, to, 1 + static_cast<long>(rng.next_below(90)));
          ++my_tr;
        }
      }
      ct_commits.fetch_add(my_ct);
      ct_failures.fetch_add(my_ct_fail);
      tr_commits.fetch_add(my_tr);
    });
  }

  const auto t0 = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(p.duration);
  stop.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  BankResult r;
  r.compute_total_commits = ct_commits.load();
  r.compute_total_failures = ct_failures.load();
  r.transfer_commits = tr_commits.load();
  r.compute_total_per_s = static_cast<double>(r.compute_total_commits) / secs;
  r.transfer_per_s = static_cast<double>(r.transfer_commits) / secs;
  return r;
}

/// Build a bank over a by-name runtime and run it — the one-call form the
/// figure benches and the example share. Dispatches at compile time to the
/// zero-cost api::Stm<R> adapters (a switch over the six variant names),
/// so the figure numbers measure the native access path, not AnyStm's
/// erased-handle indirection. `conserved_total`, when given, receives the
/// post-run sum of all accounts (the §5.5 conservation invariant).
/// Throws std::invalid_argument for unknown names (like AnyStm::make).
template <typename S>
BankResult run_stm_bank(S stm, const BankParams& p, long* conserved_total) {
  Bank<S> bank(std::move(stm), p);
  BankResult r = run_bank(bank, p);
  if (conserved_total != nullptr) *conserved_total = bank.total_balance();
  return r;
}

inline BankResult run_named_bank(const std::string& runtime_name,
                                 const BankParams& p,
                                 long* conserved_total = nullptr) {
  return api::visit_variant(
      runtime_name, bank_config(p),
      [&](auto tag, const char*, const api::CommonConfig& cfg) {
        using S = typename decltype(tag)::type;
        return run_stm_bank(S(cfg), p, conserved_total);
      });
}

}  // namespace zstm::bench
