// Figure 6 reproduction: bank benchmark with READ-ONLY Compute-Total
// transactions.
//
//   Left panel:  Compute-Total throughput (long read-only transactions)
//   Right panel: Transfer throughput (short update transactions)
//   Systems:     all variants behind the zstm::api façade — LSA-STM,
//                LSA-STM (no readsets), CS-STM (vector clocks), CS-STM
//                (plausible clocks), S-STM, Z-STM. The paper plots the
//                first two and Z-STM; the CS/S rows locate causal
//                serializability and full serializability on the same axes.
//   Threads:     1, 2, 8, 16, 32 (as plotted in the paper)
//
// Expected shape (paper): the LSA variants and Z-STM sustain similar
// transfer throughput; Z-STM executes Compute-Total faster than plain
// LSA-STM because "the latter always maintains read sets"; LSA-STM without
// read sets matches Z-STM. S-STM pays for visible reads and the commit
// lock on both panels (the §4.2 "prohibitive" overhead). Absolute numbers
// depend on the host (the paper used an 8-core UltraSPARC T1); see
// EXPERIMENTS.md.
// `--json` additionally writes BENCH_fig6.json (see bench_json.hpp).
#include "fig_common.hpp"

int main(int argc, char** argv) {
  const zstm::bench::FigureSpec spec{
      "fig6",
      "Figure 6 — Bank benchmark, read-only Compute-Total",
      "(1000 accounts; thread 0: 80% transfers / 20% Compute-Total; "
      "others: transfers)",
      "Compute-Total transactions (read-only)  [tx/s]",
      /*update_total=*/false,
  };
  return zstm::bench::run_figure(spec, argc, argv);
}
