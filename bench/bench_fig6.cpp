// Figure 6 reproduction: bank benchmark with READ-ONLY Compute-Total
// transactions.
//
//   Left panel:  Compute-Total throughput (long read-only transactions)
//   Right panel: Transfer throughput (short update transactions)
//   Systems:     LSA-STM, LSA-STM (no readsets), Z-STM
//   Threads:     1, 2, 8, 16, 32 (as plotted in the paper)
//
// Expected shape (paper): all three systems sustain similar transfer
// throughput; Z-STM executes Compute-Total faster than plain LSA-STM
// because "the latter always maintains read sets"; LSA-STM without read
// sets matches Z-STM. Absolute numbers depend on the host (the paper used
// an 8-core UltraSPARC T1); see EXPERIMENTS.md.
// `--json` additionally writes BENCH_fig6.json (see bench_json.hpp).
#include <cstdio>

#include "bank_harness.hpp"
#include "bench_json.hpp"

namespace {

using zstm::bench::BankParams;
using zstm::bench::BankResult;
using zstm::bench::LsaBank;
using zstm::bench::ZBank;

struct Row {
  int threads;
  BankResult lsa;
  BankResult lsa_nrs;
  BankResult z;
};

Row run_row(int threads) {
  BankParams p;
  p.threads = threads;
  p.duration = std::chrono::milliseconds(250);
  p.update_total = false;
  Row row;
  row.threads = threads;
  {
    LsaBank bank(p, /*track_ro_readsets=*/true);
    row.lsa = run_bank(bank, p);
  }
  {
    LsaBank bank(p, /*track_ro_readsets=*/false);
    row.lsa_nrs = run_bank(bank, p);
  }
  {
    ZBank bank(p);
    row.z = run_bank(bank, p);
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const bool json = zstm::benchjson::json_requested(argc, argv);
  std::printf("Figure 6 — Bank benchmark, read-only Compute-Total\n");
  std::printf("(1000 accounts; thread 0: 80%% transfers / 20%% Compute-Total; "
              "others: transfers)\n\n");

  std::vector<Row> rows;
  for (int threads : {1, 2, 8, 16, 32}) rows.push_back(run_row(threads));

  std::printf("Compute-Total transactions (read-only)  [tx/s]\n");
  std::printf("%8s %14s %20s %14s\n", "threads", "LSA-STM",
              "LSA-STM(no-readsets)", "Z-STM");
  for (const auto& r : rows) {
    std::printf("%8d %14.1f %20.1f %14.1f\n", r.threads,
                r.lsa.compute_total_per_s, r.lsa_nrs.compute_total_per_s,
                r.z.compute_total_per_s);
  }

  std::printf("\nTransfer transactions  [tx/s]\n");
  std::printf("%8s %14s %20s %14s\n", "threads", "LSA-STM",
              "LSA-STM(no-readsets)", "Z-STM");
  for (const auto& r : rows) {
    std::printf("%8d %14.0f %20.0f %14.0f\n", r.threads, r.lsa.transfer_per_s,
                r.lsa_nrs.transfer_per_s, r.z.transfer_per_s);
  }

  std::printf("\nCompute-Total failed episodes (attempt budget exhausted):\n");
  std::printf("%8s %14s %20s %14s\n", "threads", "LSA-STM",
              "LSA-STM(no-readsets)", "Z-STM");
  for (const auto& r : rows) {
    std::printf("%8d %14llu %20llu %14llu\n", r.threads,
                static_cast<unsigned long long>(r.lsa.compute_total_failures),
                static_cast<unsigned long long>(
                    r.lsa_nrs.compute_total_failures),
                static_cast<unsigned long long>(r.z.compute_total_failures));
  }

  if (json) {
    zstm::benchjson::Doc doc("fig6");
    const auto emit = [&doc](const char* system, int threads,
                             const BankResult& b) {
      doc.row()
          .str("system", system)
          .num("threads", threads)
          .num("compute_total_per_s", b.compute_total_per_s)
          .num("transfer_per_s", b.transfer_per_s)
          .num("compute_total_failures", b.compute_total_failures);
    };
    for (const auto& r : rows) {
      emit("lsa", r.threads, r.lsa);
      emit("lsa_no_readsets", r.threads, r.lsa_nrs);
      emit("zstm", r.threads, r.z);
    }
    if (!doc.write()) return 1;
  }
  return 0;
}
