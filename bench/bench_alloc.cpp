// Allocation-path microbench (DESIGN.md §7): the cost of open-for-write
// node management, pooled (NodePool slab free lists + inline payloads)
// versus global-heap mode (Config::use_node_pool = false — the same path
// ZSTM_POOL=0 forces).
//
// Workload: the paper's bank transfer storm (two writes per transaction)
// on LSA-STM. Each trial warms up, resets the counters, then measures a
// steady-state window, reporting
//
//   ns/write          — wall thread-time per committed write
//   allocs/write      — global heap allocations per write (pool misses;
//                       in heap mode every node allocation is a miss)
//   hit rate          — pool allocations served without touching the heap
//   returns           — cross-thread releases routed via the MPSC stacks
//
// Steady-state expectation: allocs/write < 1 and hit rate > 90% in pooled
// mode (every node a transaction needs comes back out of a free list), and
// ns/write below the heap-mode baseline.
//
// `--json` additionally writes BENCH_alloc.json (see bench_json.hpp);
// scripts/bench_compare.py diffs it against bench/baselines/.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "lsa/lsa.hpp"
#include "util/rng.hpp"

namespace {

constexpr int kAccounts = 1000;
constexpr auto kWarmup = std::chrono::milliseconds(100);
constexpr auto kMeasure = std::chrono::milliseconds(300);

struct Row {
  const char* mode;
  int threads;
  double tx_per_s = 0;
  double ns_per_write = 0;
  double allocs_per_write = 0;
  double hit_rate = 0;
  std::uint64_t writes = 0;
  std::uint64_t pool_returns = 0;
};

Row trial(bool pooled, int threads) {
  zstm::lsa::Config cfg;
  cfg.max_threads = threads + 2;
  cfg.use_node_pool = pooled;
  zstm::lsa::Runtime rt(cfg);
  std::vector<zstm::lsa::Var<long>> accounts;
  for (int i = 0; i < kAccounts; ++i) accounts.push_back(rt.make_var<long>(1000));

  std::atomic<std::uint64_t> commits{0};
  std::atomic<bool> stop{false};
  std::atomic<bool> measuring{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      auto th = rt.attach();
      zstm::util::Xorshift rng(static_cast<std::uint64_t>(t) * 977 + 11);
      std::uint64_t my = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const std::size_t a = rng.next_below(kAccounts);
        std::size_t b = rng.next_below(kAccounts);
        if (b == a) b = (b + 1) % kAccounts;
        rt.run(*th, [&](zstm::lsa::Tx& tx) {
          tx.write(accounts[a]) -= 1;
          tx.write(accounts[b]) += 1;
        });
        if (measuring.load(std::memory_order_relaxed)) ++my;
      }
      commits.fetch_add(my);
    });
  }

  // Warm the pools (slabs carved, free lists stocked), then measure a
  // steady-state window with fresh counters.
  std::this_thread::sleep_for(kWarmup);
  rt.reset_stats();
  measuring.store(true, std::memory_order_release);
  const auto t0 = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(kMeasure);
  stop.store(true, std::memory_order_release);
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  for (auto& w : workers) w.join();

  const auto stats = rt.stats();
  const std::uint64_t writes = stats[zstm::util::Counter::kWrites];
  const std::uint64_t hits = stats[zstm::util::Counter::kPoolHits];
  const std::uint64_t misses = stats[zstm::util::Counter::kPoolMisses];

  Row r;
  r.mode = pooled ? "pooled" : "heap";
  r.threads = threads;
  r.writes = writes;
  r.tx_per_s = static_cast<double>(commits.load()) / secs;
  if (writes > 0) {
    r.ns_per_write = threads * secs * 1e9 / static_cast<double>(writes);
    r.allocs_per_write =
        static_cast<double>(misses) / static_cast<double>(writes);
  }
  if (hits + misses > 0) {
    r.hit_rate =
        static_cast<double>(hits) / static_cast<double>(hits + misses);
  }
  r.pool_returns = stats[zstm::util::Counter::kPoolReturns];
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const bool json = zstm::benchjson::json_requested(argc, argv);
  std::printf("Allocation-path microbench: bank transfer storm on LSA-STM,\n"
              "%d accounts, NodePool slabs vs global heap (DESIGN.md §7)\n\n",
              kAccounts);
  if (!zstm::object::NodePool::env_enabled()) {
    std::printf("note: ZSTM_POOL=0 is set — the \"pooled\" rows run on the "
                "heap too.\n\n");
  }
  std::printf("%8s %8s %12s %12s %14s %10s %10s\n", "mode", "threads", "tx/s",
              "ns/write", "allocs/write", "hit rate", "returns");

  std::vector<Row> rows;
  for (int threads : {1, 2, 4}) {
    rows.push_back(trial(/*pooled=*/false, threads));
    rows.push_back(trial(/*pooled=*/true, threads));
  }
  for (const Row& r : rows) {
    std::printf("%8s %8d %12.0f %12.1f %14.3f %9.1f%% %10llu\n", r.mode,
                r.threads, r.tx_per_s, r.ns_per_write, r.allocs_per_write,
                100.0 * r.hit_rate,
                static_cast<unsigned long long>(r.pool_returns));
  }
  std::printf("\nExpected: pooled rows show allocs/write < 1 (hit rate > 90%%\n"
              "after warmup — nodes cycle retire -> grace period -> free list)\n"
              "and lower ns/write than the heap rows, which pay one malloc and\n"
              "one cross-thread free per locator/version/descriptor.\n");

  if (json) {
    zstm::benchjson::Doc doc("alloc");
    for (const Row& r : rows) {
      doc.row()
          .str("mode", r.mode)
          .num("threads", r.threads)
          .num("tx_per_s", r.tx_per_s)
          .num("ns_per_write", r.ns_per_write)
          .num("allocs_per_write", r.allocs_per_write)
          .num("pool_hit_rate", r.hit_rate)
          .num("writes", r.writes)
          .num("pool_returns", r.pool_returns);
    }
    if (!doc.write()) return 1;
  }
  return 0;
}
