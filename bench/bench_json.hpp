// Shared JSON emission for the self-contained bench harnesses (ROADMAP
// baseline item): `--json` makes a bench write BENCH_<name>.json next to
// its stdout tables so CI can archive the perf trajectory. Host topology is
// recorded alongside the numbers because the 1-CPU CI box is not
// representative of the multi-core boxes the figures were tuned on.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/utsname.h>
#endif

#include "util/cpu_topology.hpp"

namespace zstm::benchjson {

/// True when argv contains `--json`.
inline bool json_requested(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) return true;
  }
  return false;
}

/// One benchmark result row: ordered key → already-encoded JSON value.
class Row {
 public:
  Row& num(const char* key, double v) {
    // JSON has no NaN/Inf tokens; emit null so the document stays parseable.
    if (!std::isfinite(v)) {
      fields_.emplace_back(key, "null");
      return *this;
    }
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    fields_.emplace_back(key, buf);
    return *this;
  }
  Row& num(const char* key, std::uint64_t v) {
    fields_.emplace_back(key, std::to_string(v));
    return *this;
  }
  Row& num(const char* key, int v) {
    fields_.emplace_back(key, std::to_string(v));
    return *this;
  }
  Row& str(const char* key, const std::string& v) {
    fields_.emplace_back(key, "\"" + v + "\"");
    return *this;
  }

 private:
  friend class Doc;
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Accumulates rows and writes `BENCH_<name>.json`:
///   { "bench": ..., "host": {...}, "rows": [ {...}, ... ] }
class Doc {
 public:
  explicit Doc(std::string name) : name_(std::move(name)) {}

  Row& row() {
    rows_.emplace_back();
    return rows_.back();
  }

  /// Writes BENCH_<name>.json into the working directory. Returns false
  /// (with a message on stderr) if the file cannot be opened.
  bool write() const {
    const std::string path = "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return false;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n", name_.c_str());
    write_host(f);
    std::fprintf(f, "  \"rows\": [\n");
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      std::fprintf(f, "    {");
      const auto& fields = rows_[i].fields_;
      for (std::size_t k = 0; k < fields.size(); ++k) {
        std::fprintf(f, "\"%s\": %s%s", fields[k].first.c_str(),
                     fields[k].second.c_str(),
                     k + 1 < fields.size() ? ", " : "");
      }
      std::fprintf(f, "}%s\n", i + 1 < rows_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s (%zu rows)\n", path.c_str(), rows_.size());
    return true;
  }

 private:
  static void write_host(std::FILE* f) {
    std::fprintf(f, "  \"host\": {\"hardware_concurrency\": %u",
                 std::thread::hardware_concurrency());
    // Cache topology matters for interpreting clock-scalability numbers:
    // on a 1-CPU / 1-group host no cache-line contention ever materializes,
    // so contention-relief schemes can only show their uncontended cost.
    const auto& topo = util::cpu_topology();
    std::fprintf(f, ", \"cpus\": %d, \"cache_groups\": %d, \"topology\": \"%s\"",
                 topo.cpus, topo.groups, topo.source.c_str());
#if defined(__unix__) || defined(__APPLE__)
    struct utsname u{};
    if (uname(&u) == 0) {
      std::fprintf(f, ", \"os\": \"%s %s\", \"machine\": \"%s\"", u.sysname,
                   u.release, u.machine);
    }
#endif
#if defined(NDEBUG)
    std::fprintf(f, ", \"build\": \"release\"");
#else
    std::fprintf(f, ", \"build\": \"debug\"");
#endif
    std::fprintf(f, "},\n");
  }

  std::string name_;
  std::vector<Row> rows_;
};

}  // namespace zstm::benchjson
