// bench_clock_scale: commit-timebase scalability sweep (DESIGN.md §10).
//
// Two sections, both emitted into BENCH_clock_scale.json with --json:
//
//  * "stamp" — raw commit-stamp acquisition throughput for the four
//    timebase schemes, threads × scheme:
//      global      GlobalCounter::acquire_commit_time (one fetch_add on a
//                  single shared line — the §2 baseline every runtime
//                  defaults to)
//      cas-stride  GV5-style: read clock, one CAS to +stride, adopt the
//                  winner's value on failure (tl2 Config::clock_scheme)
//      batched     BatchedCounter: leases of k ticks, common case one CAS
//                  on the slot's OWN padded line (lsa Config::time_base)
//      sharded     ShardedClock exclusive layout: one single-writer lane
//                  per slot — plain load + release store, no atomic RMW
//                  at all (the runtimes' id generator)
//    Each row also reports shared_rmws_per_op: atomic RMWs issued on
//    SHARED cache lines per stamp. That is the host-independent signal —
//    on a 1-CPU/1-group box (see the host stanza) wall-clock contention
//    never materializes, so the uncontended instruction cost dominates;
//    on multi-core parts the shared-line RMW rate is what serializes.
//
//  * "bank" — the paper's §5.5 bank across all façade variants, baseline
//    config vs "scaled" (batched timebase for the scalar runtimes, CAS
//    clock for tl2, sharded ids everywhere), to show the options do not
//    regress end-to-end behavior where the criterion forbids exploiting
//    them fully.
//
// CLI: --json, --threads=1,2,4 (comma list), --duration-ms=150 (bank
// cells), --skip-bank (stamp section only; CI uses the full run).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bank_harness.hpp"
#include "bench_json.hpp"
#include "timebase/batched_counter.hpp"
#include "timebase/global_counter.hpp"
#include "timebase/sharded_clock.hpp"

namespace zstm::bench {
namespace {

constexpr int kBatch = 64;
constexpr int kStride = 2;
constexpr std::uint64_t kOpsPerThread = 4'000'000;

struct StampResult {
  double mops = 0;
  double shared_rmws_per_op = 0;
  std::uint64_t ops = 0;
  double seconds = 0;
};

/// Runs `threads` workers, each performing kOpsPerThread stamp
/// acquisitions through `op(thread_index)`; `op` returns the stamp (folded
/// into a checksum so the loop cannot be optimized away).
template <typename Op>
StampResult run_stamp_loop(int threads, Op op) {
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::atomic<std::uint64_t> checksum{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      ready.fetch_add(1, std::memory_order_acq_rel);
      while (!go.load(std::memory_order_acquire)) {}
      std::uint64_t sum = 0;
      for (std::uint64_t i = 0; i < kOpsPerThread; ++i) sum += op(t);
      checksum.fetch_add(sum, std::memory_order_relaxed);
    });
  }
  while (ready.load(std::memory_order_acquire) != threads) {}
  const auto t0 = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  StampResult r;
  r.ops = kOpsPerThread * static_cast<std::uint64_t>(threads);
  r.seconds = secs;
  r.mops = static_cast<double>(r.ops) / secs / 1e6;
  // Keep the checksum observable.
  if (checksum.load() == 0) std::fprintf(stderr, "checksum zero?\n");
  return r;
}

std::vector<int> parse_threads(int argc, char** argv) {
  std::vector<int> out;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      const char* p = argv[i] + 10;
      while (*p != '\0') {
        char* end = nullptr;
        const long v = std::strtol(p, &end, 10);
        if (end == p) break;
        if (v > 0) out.push_back(static_cast<int>(v));
        p = (*end == ',') ? end + 1 : end;
      }
    }
  }
  if (out.empty()) out = {1, 2, 4};
  return out;
}

int parse_duration_ms(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--duration-ms=", 14) == 0) {
      const int v = std::atoi(argv[i] + 14);
      if (v > 0) return v;
    }
  }
  return 150;
}

bool flag_present(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

int run(int argc, char** argv) {
  const bool json = benchjson::json_requested(argc, argv);
  const std::vector<int> thread_counts = parse_threads(argc, argv);
  const int bank_ms = parse_duration_ms(argc, argv);
  const bool skip_bank = flag_present(argc, argv, "--skip-bank");
  benchjson::Doc doc("clock_scale");

  std::printf("Commit-timebase scalability (stamp acquisition)\n");
  std::printf("%8s %-12s %10s %8s %20s\n", "threads", "timebase", "Mops/s",
              "ops", "shared RMWs per op");

  for (int threads : thread_counts) {
    // --- global: one fetch_add on THE shared line per stamp.
    {
      timebase::GlobalCounter gc;
      StampResult r =
          run_stamp_loop(threads, [&](int) { return gc.acquire_commit_time(); });
      r.shared_rmws_per_op = 1.0;
      std::printf("%8d %-12s %10.1f %8llu %20.4f\n", threads, "global", r.mops,
                  static_cast<unsigned long long>(r.ops), r.shared_rmws_per_op);
      doc.row()
          .str("section", "stamp")
          .str("timebase", "global")
          .num("threads", threads)
          .num("batch", 0)
          .num("shards", 0)
          .num("stride", 0)
          .num("ops", r.ops)
          .num("seconds", r.seconds)
          .num("mops", r.mops)
          .num("shared_rmws_per_op", r.shared_rmws_per_op);
    }
    // --- cas-stride: load + one CAS per stamp on the shared line; losers
    // adopt the winner's value instead of retrying (tl2 GV5).
    {
      timebase::GlobalCounter gc;
      StampResult r = run_stamp_loop(threads, [&](int) {
        std::uint64_t cur = gc.now();
        if (gc.try_advance_commit_time(cur, cur + kStride)) {
          return cur + kStride;
        }
        return cur;  // adopt
      });
      r.shared_rmws_per_op = 1.0;  // one CAS per stamp (plus a shared load)
      std::printf("%8d %-12s %10.1f %8llu %20.4f\n", threads, "cas-stride",
                  r.mops, static_cast<unsigned long long>(r.ops),
                  r.shared_rmws_per_op);
      doc.row()
          .str("section", "stamp")
          .str("timebase", "cas-stride")
          .num("threads", threads)
          .num("batch", 0)
          .num("shards", 0)
          .num("stride", kStride)
          .num("ops", r.ops)
          .num("seconds", r.seconds)
          .num("mops", r.mops)
          .num("shared_rmws_per_op", r.shared_rmws_per_op);
    }
    // --- batched: one CAS on the slot's OWN line per stamp; the SHARED
    // block counter is touched once per k stamps. provisioned()/k counts
    // exactly those shared fetch_adds.
    {
      timebase::BatchedCounter bc(threads, kBatch);
      StampResult r =
          run_stamp_loop(threads, [&](int t) { return bc.acquire(t); });
      const double shared_rmws =
          static_cast<double>(bc.provisioned()) / kBatch;
      r.shared_rmws_per_op = shared_rmws / static_cast<double>(r.ops);
      std::printf("%8d %-12s %10.1f %8llu %20.4f\n", threads, "batched",
                  r.mops, static_cast<unsigned long long>(r.ops),
                  r.shared_rmws_per_op);
      doc.row()
          .str("section", "stamp")
          .str("timebase", "batched")
          .num("threads", threads)
          .num("batch", kBatch)
          .num("shards", 0)
          .num("stride", 0)
          .num("ops", r.ops)
          .num("seconds", r.seconds)
          .num("mops", r.mops)
          .num("shared_rmws_per_op", r.shared_rmws_per_op);
    }
    // --- sharded (exclusive): single-writer lane per thread — no atomic
    // RMW anywhere, no shared line ever written by two threads.
    {
      timebase::ShardedClock clk(threads, threads);
      StampResult r =
          run_stamp_loop(threads, [&](int t) { return clk.tick(t).tick; });
      r.shared_rmws_per_op = 0.0;
      std::printf("%8d %-12s %10.1f %8llu %20.4f\n", threads, "sharded",
                  r.mops, static_cast<unsigned long long>(r.ops),
                  r.shared_rmws_per_op);
      doc.row()
          .str("section", "stamp")
          .str("timebase", "sharded")
          .num("threads", threads)
          .num("batch", 0)
          .num("shards", clk.shards())
          .num("stride", 0)
          .num("ops", r.ops)
          .num("seconds", r.seconds)
          .num("mops", r.mops)
          .num("shared_rmws_per_op", r.shared_rmws_per_op);
    }
  }

  if (!skip_bank) {
    std::printf("\nBank end-to-end, baseline vs scaled timebase options\n");
    std::printf("%8s %-10s %-9s %14s %14s\n", "threads", "system", "config",
                "transfer/s", "compute-tot/s");
    for (int threads : thread_counts) {
      BankParams p;
      p.threads = threads;
      p.duration = std::chrono::milliseconds(bank_ms);
      for (const std::string& name : api::variant_names()) {
        for (const bool scaled : {false, true}) {
          api::CommonConfig cfg = bank_config(p);
          if (scaled) {
            cfg.time_base = timebase::TimeBaseKind::kBatchedCounter;
            cfg.timebase_batch = kBatch;
            cfg.tl2_clock_stride = kStride;
            cfg.sharded_tx_ids = true;
          } else {
            cfg.sharded_tx_ids = false;  // pre-§10 behavior end to end
          }
          long conserved = 0;
          const BankResult b = api::visit_variant(
              name, cfg,
              [&](auto tag, const char*, const api::CommonConfig& c) {
                using S = typename decltype(tag)::type;
                return run_stm_bank(S(c), p, &conserved);
              });
          if (conserved != static_cast<long>(p.accounts) * 1000L) {
            std::fprintf(stderr, "conservation violated: %s\n", name.c_str());
            return 1;
          }
          const char* label = scaled ? "scaled" : "baseline";
          std::printf("%8d %-10s %-9s %14.0f %14.1f\n", threads, name.c_str(),
                      label, b.transfer_per_s, b.compute_total_per_s);
          doc.row()
              .str("section", "bank")
              .str("system", name)
              .str("config", label)
              .num("threads", threads)
              .num("batch", scaled ? kBatch : 0)
              .num("shards", 0)
              .num("stride", scaled ? kStride : 0)
              .num("transfer_per_s", b.transfer_per_s)
              .num("compute_total_per_s", b.compute_total_per_s)
              .num("compute_total_failures", b.compute_total_failures);
        }
      }
    }
  }

  if (json && !doc.write()) return 1;
  return 0;
}

}  // namespace
}  // namespace zstm::bench

int main(int argc, char** argv) { return zstm::bench::run(argc, argv); }
