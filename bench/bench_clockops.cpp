// Clock-operation costs (§4.3): "storing, updating, and comparing vector
// timestamps is significantly costlier than managing a single counter",
// and REV plausible clocks interpolate between the two.
#include <benchmark/benchmark.h>

#include "timebase/plausible_clock.hpp"
#include "timebase/vector_clock.hpp"
#include "util/rng.hpp"

namespace {

using zstm::timebase::RevDomain;
using zstm::timebase::RevStamp;
using zstm::timebase::VcDomain;
using zstm::timebase::VcStamp;

VcStamp random_vc(VcDomain& dom, zstm::util::Xorshift& rng) {
  VcStamp s = dom.zero();
  for (int k = 0; k < s.dimension(); ++k) s[k] = rng.next_below(1000);
  return s;
}

void BM_ScalarCompare(benchmark::State& state) {
  zstm::util::Xorshift rng(1);
  const std::uint64_t a = rng.next();
  const std::uint64_t b = rng.next();
  for (auto _ : state) {
    benchmark::DoNotOptimize(a < b);
  }
}
BENCHMARK(BM_ScalarCompare);

void BM_VcCompare(benchmark::State& state) {
  VcDomain dom(static_cast<int>(state.range(0)));
  zstm::util::Xorshift rng(2);
  const VcStamp a = random_vc(dom, rng);
  const VcStamp b = random_vc(dom, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.compare(b));
  }
}
BENCHMARK(BM_VcCompare)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_VcMerge(benchmark::State& state) {
  VcDomain dom(static_cast<int>(state.range(0)));
  zstm::util::Xorshift rng(3);
  VcStamp a = random_vc(dom, rng);
  const VcStamp b = random_vc(dom, rng);
  for (auto _ : state) {
    a.merge(b);
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_VcMerge)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_VcCopy(benchmark::State& state) {
  // Every version carries a stamp: copying is the dominant storage cost.
  VcDomain dom(static_cast<int>(state.range(0)));
  zstm::util::Xorshift rng(4);
  const VcStamp a = random_vc(dom, rng);
  for (auto _ : state) {
    VcStamp copy = a;
    benchmark::DoNotOptimize(copy);
  }
}
BENCHMARK(BM_VcCopy)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_VcAdvance(benchmark::State& state) {
  // Vector-clock advance is thread-local: no shared state at all.
  VcDomain dom(32);
  VcStamp s = dom.zero();
  for (auto _ : state) {
    dom.advance(0, s);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_VcAdvance);

void BM_RevCompare(benchmark::State& state) {
  RevDomain dom(static_cast<int>(state.range(0)), 64);
  RevStamp a = dom.zero();
  RevStamp b = dom.zero();
  zstm::util::Xorshift rng(5);
  for (int k = 0; k < a.entries(); ++k) {
    a[k] = rng.next_below(1000);
    b[k] = rng.next_below(1000);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.compare(b));
  }
}
BENCHMARK(BM_RevCompare)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_RevAdvance(benchmark::State& state) {
  // REV advance hits a shared per-entry counter (get-and-increment);
  // contention grows as r shrinks.
  static RevDomain dom(4, 64);
  RevStamp s = dom.zero();
  const int slot = state.thread_index();
  for (auto _ : state) {
    dom.advance(slot, s);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_RevAdvance)->ThreadRange(1, 8)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
