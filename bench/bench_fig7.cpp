// Figure 7 reproduction: bank benchmark with UPDATE Compute-Total
// transactions (they write "private but transactional state").
//
//   Left panel:  Compute-Total throughput — "LSA-STM is not able to execute
//                them anymore because the probability that an account is
//                updated during the runtime of the long transaction is very
//                high. In contrast, Z-STM is able to sustain the
//                throughput."
//   Right panel: Transfer throughput — "the transfer throughput does not
//                decrease as compared to LSA-STM."
//   Systems:     LSA-STM, Z-STM; threads 1, 2, 8, 16, 32.
// `--json` additionally writes BENCH_fig7.json (see bench_json.hpp).
#include <cstdio>

#include "bank_harness.hpp"
#include "bench_json.hpp"

namespace {

using zstm::bench::BankParams;
using zstm::bench::BankResult;
using zstm::bench::LsaBank;
using zstm::bench::ZBank;

struct Row {
  int threads;
  BankResult lsa;
  BankResult z;
};

Row run_row(int threads) {
  BankParams p;
  p.threads = threads;
  p.duration = std::chrono::milliseconds(250);
  p.update_total = true;
  Row row;
  row.threads = threads;
  {
    LsaBank bank(p, /*track_ro_readsets=*/true);
    row.lsa = run_bank(bank, p);
  }
  {
    ZBank bank(p);
    row.z = run_bank(bank, p);
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const bool json = zstm::benchjson::json_requested(argc, argv);
  std::printf("Figure 7 — Bank benchmark, update Compute-Total\n");
  std::printf("(Compute-Total additionally writes a private transactional "
              "sink object)\n\n");

  std::vector<Row> rows;
  for (int threads : {1, 2, 8, 16, 32}) rows.push_back(run_row(threads));

  std::printf("Compute-Total transactions (update)  [tx/s]\n");
  std::printf("%8s %14s %14s %22s\n", "threads", "LSA-STM", "Z-STM",
              "LSA failed episodes");
  for (const auto& r : rows) {
    std::printf("%8d %14.1f %14.1f %22llu\n", r.threads,
                r.lsa.compute_total_per_s, r.z.compute_total_per_s,
                static_cast<unsigned long long>(r.lsa.compute_total_failures));
  }

  std::printf("\nTransfer transactions  [tx/s]\n");
  std::printf("%8s %14s %14s\n", "threads", "LSA-STM", "Z-STM");
  for (const auto& r : rows) {
    std::printf("%8d %14.0f %14.0f\n", r.threads, r.lsa.transfer_per_s,
                r.z.transfer_per_s);
  }

  if (json) {
    zstm::benchjson::Doc doc("fig7");
    const auto emit = [&doc](const char* system, int threads,
                             const BankResult& b) {
      doc.row()
          .str("system", system)
          .num("threads", threads)
          .num("compute_total_per_s", b.compute_total_per_s)
          .num("transfer_per_s", b.transfer_per_s)
          .num("compute_total_failures", b.compute_total_failures);
    };
    for (const auto& r : rows) {
      emit("lsa", r.threads, r.lsa);
      emit("zstm", r.threads, r.z);
    }
    if (!doc.write()) return 1;
  }
  return 0;
}
