// Figure 7 reproduction: bank benchmark with UPDATE Compute-Total
// transactions (they write "private but transactional state").
//
//   Left panel:  Compute-Total throughput — "LSA-STM is not able to execute
//                them anymore because the probability that an account is
//                updated during the runtime of the long transaction is very
//                high. In contrast, Z-STM is able to sustain the
//                throughput."
//   Right panel: Transfer throughput — "the transfer throughput does not
//                decrease as compared to LSA-STM."
//   Systems:     all variants behind the zstm::api façade (the paper plots
//                LSA-STM and Z-STM; CS-STM's causal admissibility and
//                S-STM's serializable overhead frame them); threads 1, 2,
//                8, 16, 32.
// `--json` additionally writes BENCH_fig7.json (see bench_json.hpp).
#include "fig_common.hpp"

int main(int argc, char** argv) {
  const zstm::bench::FigureSpec spec{
      "fig7",
      "Figure 7 — Bank benchmark, update Compute-Total",
      "(Compute-Total additionally writes a private transactional sink "
      "object)",
      "Compute-Total transactions (update)  [tx/s]",
      /*update_total=*/true,
  };
  return zstm::bench::run_figure(spec, argc, argv);
}
