// §4.3 ablation: REV plausible clocks trade size (r entries) for accuracy.
//
// Two measurements:
//  1. Clock-level accuracy: fraction of truly-concurrent commit pairs that
//     REV falsely orders, per r (deterministic replay, exact-VC oracle).
//  2. STM-level effect: CS-STM throughput and validation-abort counts for a
//     scan-heavy workload per r.
//
// Note on the STM-level numbers: false orderings convert into unnecessary
// aborts only when the falsely-"preceding" successor is merged into the
// reader's timestamp; with r = 1 a fresh commit stamp dominates everything
// a reader merged earlier, which *suppresses* the validation inequality.
// The accuracy loss is therefore best read from measurement 1; the paper's
// "unnecessary aborts" materialize for workloads whose readers absorb many
// third-party stamps (the r=2..8 band below).
// `--json` additionally writes BENCH_plausible_r.json (see bench_json.hpp).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "cs/cs.hpp"
#include "timebase/vector_clock.hpp"
#include "util/rng.hpp"

namespace {

constexpr int kThreads = 4;
constexpr int kObjects = 16;
constexpr auto kDuration = std::chrono::milliseconds(150);

struct AccuracyRow {
  int r;
  std::uint64_t concurrent_pairs;
  std::uint64_t false_orderings;
};

AccuracyRow accuracy_for(int r) {
  constexpr int kSimThreads = 8;
  constexpr int kSimObjects = 6;
  constexpr int kSteps = 400;
  zstm::timebase::VcDomain vc_dom(kSimThreads);
  zstm::timebase::RevDomain rev_dom(r, kSimThreads);
  struct Pair {
    zstm::timebase::VcStamp vc;
    zstm::timebase::RevStamp rev;
  };
  std::vector<Pair> threads_state;
  std::vector<Pair> objects_state;
  for (int t = 0; t < kSimThreads; ++t) {
    threads_state.push_back({vc_dom.zero(), rev_dom.zero()});
  }
  for (int o = 0; o < kSimObjects; ++o) {
    objects_state.push_back({vc_dom.zero(), rev_dom.zero()});
  }
  zstm::util::Xorshift rng(777);
  std::vector<Pair> events;
  for (int s = 0; s < kSteps; ++s) {
    const int t = static_cast<int>(rng.next_below(kSimThreads));
    const int o = static_cast<int>(rng.next_below(kSimObjects));
    auto& ts = threads_state[static_cast<std::size_t>(t)];
    auto& os = objects_state[static_cast<std::size_t>(o)];
    ts.vc.merge(os.vc);
    ts.rev.merge(os.rev);
    vc_dom.advance(t, ts.vc);
    rev_dom.advance(t, ts.rev);
    os = ts;
    events.push_back(ts);
  }
  AccuracyRow row{r, 0, 0};
  for (std::size_t i = 0; i < events.size(); ++i) {
    for (std::size_t j = i + 1; j < events.size(); ++j) {
      if (events[i].vc.compare(events[j].vc) !=
          zstm::timebase::Order::kConcurrent) {
        continue;
      }
      ++row.concurrent_pairs;
      if (events[i].rev.compare(events[j].rev) !=
          zstm::timebase::Order::kConcurrent) {
        ++row.false_orderings;
      }
    }
  }
  return row;
}

struct StmRow {
  int r;
  double tx_per_s;
  std::uint64_t validation_aborts;
};

StmRow stm_for(int r) {
  zstm::cs::Config cfg;
  cfg.max_threads = kThreads + 2;
  auto rt = zstm::cs::make_rev_runtime(r, cfg);
  std::vector<zstm::cs::RevRuntime::Var<long>> vars;
  for (int i = 0; i < kObjects; ++i) vars.push_back(rt->make_var<long>(0));

  std::atomic<std::uint64_t> commits{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      auto th = rt->attach();
      zstm::util::Xorshift rng(static_cast<std::uint64_t>(t) + 31);
      std::uint64_t my = 0;
      while (!stop.load(std::memory_order_acquire)) {
        rt->run(*th, [&](zstm::cs::RevRuntime::Tx& tx) {
          long sum = 0;
          for (int k = 0; k < 6; ++k) {
            sum += tx.read(vars[rng.next_below(kObjects)]);
          }
          tx.write(vars[rng.next_below(kObjects)]) += sum % 5 + 1;
        });
        ++my;
      }
      commits.fetch_add(my);
    });
  }
  const auto t0 = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(kDuration);
  stop.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return StmRow{r, static_cast<double>(commits.load()) / secs,
                rt->stats()[zstm::util::Counter::kValidationFails]};
}

}  // namespace

int main(int argc, char** argv) {
  const bool json = zstm::benchjson::json_requested(argc, argv);
  std::printf("Plausible clocks: accuracy vs size (§4.3)\n\n");
  std::printf("1) Clock-level accuracy (exact-VC oracle, fixed history):\n");
  std::printf("%6s %18s %18s %10s\n", "r", "concurrent pairs",
              "falsely ordered", "rate");
  std::vector<AccuracyRow> acc_rows;
  for (int r : {1, 2, 4, 8}) {
    acc_rows.push_back(accuracy_for(r));
    const auto& row = acc_rows.back();
    std::printf("%6d %18llu %18llu %9.1f%%\n", row.r,
                static_cast<unsigned long long>(row.concurrent_pairs),
                static_cast<unsigned long long>(row.false_orderings),
                100.0 * static_cast<double>(row.false_orderings) /
                    static_cast<double>(row.concurrent_pairs));
  }

  std::printf("\n2) CS-STM with REV(r): scan-then-write workload, %d threads:\n",
              kThreads);
  std::printf("%6s %14s %20s\n", "r", "tx/s", "validation aborts");
  std::vector<StmRow> stm_rows;
  for (int r : {1, 2, 4, 6}) {
    stm_rows.push_back(stm_for(r));
    const auto& row = stm_rows.back();
    std::printf("%6d %14.0f %20llu\n", row.r, row.tx_per_s,
                static_cast<unsigned long long>(row.validation_aborts));
  }

  if (json) {
    zstm::benchjson::Doc doc("plausible_r");
    for (const auto& row : acc_rows) {
      doc.row()
          .str("measurement", "clock_accuracy")
          .num("r", row.r)
          .num("concurrent_pairs", row.concurrent_pairs)
          .num("false_orderings", row.false_orderings);
    }
    for (const auto& row : stm_rows) {
      doc.row()
          .str("measurement", "stm_throughput")
          .num("r", row.r)
          .num("tx_per_s", row.tx_per_s)
          .num("validation_aborts", row.validation_aborts);
    }
    if (!doc.write()) return 1;
  }
  return 0;
}
