// Contention-manager ablation: "conflict arbitration is performed by a
// configurable module called contention manager, which is responsible for
// the liveness of the system" (§4.1).
//
// Hot-spot workload (few objects, many writers) under each policy:
// throughput and abort/kill traffic.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "lsa/lsa.hpp"
#include "util/rng.hpp"

namespace {

constexpr int kObjects = 4;  // deliberately tiny: maximal contention
constexpr int kThreads = 4;
constexpr auto kDuration = std::chrono::milliseconds(150);

struct Row {
  zstm::cm::Policy policy;
  double tx_per_s;
  std::uint64_t aborts;
  std::uint64_t cm_kills;
  std::uint64_t cm_waits;
};

Row trial(zstm::cm::Policy policy) {
  zstm::lsa::Config cfg;
  cfg.max_threads = kThreads + 2;
  cfg.cm_policy = policy;
  zstm::lsa::Runtime rt(cfg);
  std::vector<zstm::lsa::Var<long>> vars;
  for (int i = 0; i < kObjects; ++i) vars.push_back(rt.make_var<long>(0));

  std::atomic<std::uint64_t> commits{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      auto th = rt.attach();
      zstm::util::Xorshift rng(static_cast<std::uint64_t>(t) + 3);
      std::uint64_t my = 0;
      while (!stop.load(std::memory_order_acquire)) {
        rt.run(*th, [&](zstm::lsa::Tx& tx) {
          // Two writes: enough to create write/write arbitration cycles.
          tx.write(vars[rng.next_below(kObjects)]) += 1;
          tx.write(vars[rng.next_below(kObjects)]) -= 1;
        });
        ++my;
      }
      commits.fetch_add(my);
    });
  }
  const auto t0 = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(kDuration);
  stop.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const auto stats = rt.stats();
  return Row{policy, static_cast<double>(commits.load()) / secs,
             stats[zstm::util::Counter::kAborts],
             stats[zstm::util::Counter::kCmKills],
             stats[zstm::util::Counter::kCmWaits]};
}

}  // namespace

int main(int argc, char** argv) {
  const bool json = zstm::benchjson::json_requested(argc, argv);
  std::printf("Contention-manager ablation: %d threads over %d hot objects\n\n",
              kThreads, kObjects);
  std::printf("%12s %12s %12s %12s %12s\n", "policy", "tx/s", "aborts",
              "cm kills", "cm waits");
  std::vector<Row> rows;
  for (auto policy :
       {zstm::cm::Policy::kAggressive, zstm::cm::Policy::kSuicide,
        zstm::cm::Policy::kPolite, zstm::cm::Policy::kKarma,
        zstm::cm::Policy::kTimestamp, zstm::cm::Policy::kGreedy,
        zstm::cm::Policy::kPolka}) {
    const Row r = trial(policy);
    rows.push_back(r);
    std::printf("%12s %12.0f %12llu %12llu %12llu\n",
                zstm::cm::policy_name(r.policy), r.tx_per_s,
                static_cast<unsigned long long>(r.aborts),
                static_cast<unsigned long long>(r.cm_kills),
                static_cast<unsigned long long>(r.cm_waits));
  }
  if (json) {
    zstm::benchjson::Doc doc("cm");
    for (const Row& r : rows) {
      doc.row()
          .str("policy", zstm::cm::policy_name(r.policy))
          .num("tx_per_s", r.tx_per_s)
          .num("aborts", r.aborts)
          .num("cm_kills", r.cm_kills)
          .num("cm_waits", r.cm_waits);
    }
    if (!doc.write()) return 1;
  }
  return 0;
}
