// §4.4 / conclusion ablation: "the runtime overhead for managing vector
// time can be quite significant" and S-STM "is hard and costly to fully
// support".
//
// Same short-transaction workload (random transfer over 64 objects) run on
// every STM in the library; throughput differences isolate the cost of the
// time base and of the serializability machinery (visible reads, commit
// serialization).
// `--json` additionally writes BENCH_cs_overhead.json (see bench_json.hpp).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "cs/cs.hpp"
#include "lsa/lsa.hpp"
#include "sstm/sstm.hpp"
#include "util/rng.hpp"
#include "zstm/zstm.hpp"

namespace {

constexpr int kObjects = 64;
constexpr auto kDuration = std::chrono::milliseconds(200);

template <typename MakeCtx, typename RunTransfer>
double run_trial(int threads, MakeCtx&& make_ctx, RunTransfer&& run_transfer) {
  std::atomic<std::uint64_t> commits{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      auto th = make_ctx();
      zstm::util::Xorshift rng(static_cast<std::uint64_t>(t) + 5);
      std::uint64_t my = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const std::size_t a = rng.next_below(kObjects);
        std::size_t b = rng.next_below(kObjects);
        if (b == a) b = (b + 1) % kObjects;
        run_transfer(*th, a, b);
        ++my;
      }
      commits.fetch_add(my);
    });
  }
  const auto t0 = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(kDuration);
  stop.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return static_cast<double>(commits.load()) / secs;
}

double lsa_trial(int threads) {
  zstm::lsa::Config cfg;
  cfg.max_threads = threads + 2;
  zstm::lsa::Runtime rt(cfg);
  std::vector<zstm::lsa::Var<long>> vars;
  for (int i = 0; i < kObjects; ++i) vars.push_back(rt.make_var<long>(100));
  return run_trial(
      threads, [&] { return rt.attach(); },
      [&](zstm::lsa::ThreadCtx& th, std::size_t a, std::size_t b) {
        rt.run(th, [&](zstm::lsa::Tx& tx) {
          tx.write(vars[a]) -= 1;
          tx.write(vars[b]) += 1;
        });
      });
}

double z_trial(int threads) {
  zstm::zl::Config cfg;
  cfg.lsa.max_threads = threads + 2;
  zstm::zl::Runtime rt(cfg);
  std::vector<zstm::lsa::Var<long>> vars;
  for (int i = 0; i < kObjects; ++i) vars.push_back(rt.make_var<long>(100));
  return run_trial(
      threads, [&] { return rt.attach(); },
      [&](zstm::zl::ThreadCtx& th, std::size_t a, std::size_t b) {
        rt.run_short(th, [&](zstm::zl::ShortTx& tx) {
          tx.write(vars[a]) -= 1;
          tx.write(vars[b]) += 1;
        });
      });
}

double cs_vc_trial(int threads) {
  zstm::cs::Config cfg;
  cfg.max_threads = threads + 2;
  auto rt = zstm::cs::make_vc_runtime(cfg);
  std::vector<zstm::cs::VcRuntime::Var<long>> vars;
  for (int i = 0; i < kObjects; ++i) vars.push_back(rt->make_var<long>(100));
  return run_trial(
      threads, [&] { return rt->attach(); },
      [&](zstm::cs::VcRuntime::ThreadCtx& th, std::size_t a, std::size_t b) {
        rt->run(th, [&](zstm::cs::VcRuntime::Tx& tx) {
          tx.write(vars[a]) -= 1;
          tx.write(vars[b]) += 1;
        });
      });
}

double cs_rev_trial(int threads, int r) {
  zstm::cs::Config cfg;
  cfg.max_threads = threads + 2;
  auto rt = zstm::cs::make_rev_runtime(r, cfg);
  std::vector<zstm::cs::RevRuntime::Var<long>> vars;
  for (int i = 0; i < kObjects; ++i) vars.push_back(rt->make_var<long>(100));
  return run_trial(
      threads, [&] { return rt->attach(); },
      [&](zstm::cs::RevRuntime::ThreadCtx& th, std::size_t a, std::size_t b) {
        rt->run(th, [&](zstm::cs::RevRuntime::Tx& tx) {
          tx.write(vars[a]) -= 1;
          tx.write(vars[b]) += 1;
        });
      });
}

double sstm_trial(int threads) {
  zstm::sstm::Config cfg;
  cfg.max_threads = threads + 2;
  zstm::sstm::Runtime rt(cfg);
  std::vector<zstm::sstm::Var<long>> vars;
  for (int i = 0; i < kObjects; ++i) vars.push_back(rt.make_var<long>(100));
  return run_trial(
      threads, [&] { return rt.attach(); },
      [&](zstm::sstm::ThreadCtx& th, std::size_t a, std::size_t b) {
        rt.run(th, [&](zstm::sstm::Tx& tx) {
          tx.write(vars[a]) -= 1;
          tx.write(vars[b]) += 1;
        });
      });
}

}  // namespace

int main(int argc, char** argv) {
  const bool json = zstm::benchjson::json_requested(argc, argv);
  std::printf("Vector-time / serializability overhead ablation (§4.4)\n");
  std::printf("Transfer workload over %d objects  [tx/s]\n\n", kObjects);
  std::printf("%8s %12s %12s %12s %12s %12s\n", "threads", "LSA", "Z-STM",
              "CS(VC)", "CS(REV r=2)", "S-STM");
  struct Row {
    int threads;
    double lsa, z, cs_vc, cs_rev2, sstm;
  };
  std::vector<Row> rows;
  for (int threads : {1, 2, 4}) {
    rows.push_back(Row{threads, lsa_trial(threads), z_trial(threads),
                       cs_vc_trial(threads), cs_rev_trial(threads, 2),
                       sstm_trial(threads)});
    const Row& r = rows.back();
    std::printf("%8d %12.0f %12.0f %12.0f %12.0f %12.0f\n", r.threads, r.lsa,
                r.z, r.cs_vc, r.cs_rev2, r.sstm);
  }
  std::printf("\nExpected shape: LSA ≈ Z-STM (scalar time base) above CS\n"
              "(vector timestamps on every version) above S-STM (visible\n"
              "reads + serialized commit validation).\n");

  if (json) {
    zstm::benchjson::Doc doc("cs_overhead");
    for (const Row& r : rows) {
      doc.row()
          .num("threads", r.threads)
          .num("lsa_tx_per_s", r.lsa)
          .num("zstm_tx_per_s", r.z)
          .num("cs_vc_tx_per_s", r.cs_vc)
          .num("cs_rev2_tx_per_s", r.cs_rev2)
          .num("sstm_tx_per_s", r.sstm);
    }
    if (!doc.write()) return 1;
  }
  return 0;
}
