// CS-STM allocation-path microbench (ROADMAP PR 3 follow-up): counts real
// global-heap allocations per committed transaction on the cs runtime, the
// bench_alloc-style check that pooling cs::TxDesc's inner vector-clock
// storage actually removed the hidden per-transaction std::vector malloc.
//
// This binary replaces global operator new/delete with counting versions
// (which is why it is a separate bench: the interposition would perturb
// every other harness's numbers). Workloads, on cs-vc (exact vector
// clocks):
//
//   read-only  — two reads per transaction. With the node pool on and the
//                per-slot spare-stamp recycling, steady state performs ~0
//                heap allocations per transaction (descriptor + its clock
//                both come from recycled storage).
//   update     — two writes per transaction. Written versions' stamp
//                vectors draw from the slab pool too (PoolAllocator), so
//                pooled updates are also ~0 allocs/txn in steady state;
//                the bench exits nonzero if they regress above
//                kMaxPooledUpdateAllocs.
//
// Modes: pooled (Config defaults) vs heap (use_node_pool = false, the
// ZSTM_POOL=0 path) — the heap rows also pay one malloc per
// locator/version/descriptor node.
//
// `--json` additionally writes BENCH_cs_alloc.json (see bench_json.hpp).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string_view>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "cs/cs.hpp"
#include "util/rng.hpp"

// --- counting global allocator ---------------------------------------------

namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

// ---------------------------------------------------------------------------

namespace {

constexpr int kVars = 256;
constexpr auto kWarmup = std::chrono::milliseconds(100);
constexpr auto kMeasure = std::chrono::milliseconds(250);

struct Row {
  const char* workload;
  const char* mode;
  int threads;
  double tx_per_s = 0;
  double allocs_per_txn = 0;
  std::uint64_t commits = 0;
};

Row trial(bool update, bool pooled, int threads) {
  zstm::cs::Config cfg;
  cfg.max_threads = threads + 2;
  cfg.use_node_pool = pooled;
  auto rt = zstm::cs::make_vc_runtime(cfg);
  std::vector<zstm::cs::VcRuntime::Var<long>> vars;
  for (int i = 0; i < kVars; ++i) vars.push_back(rt->make_var<long>(100));

  std::atomic<std::uint64_t> commits{0};
  std::atomic<bool> stop{false};
  std::atomic<bool> measuring{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      auto th = rt->attach();
      zstm::util::Xorshift rng(static_cast<std::uint64_t>(t) * 271 + 3);
      std::uint64_t my = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const std::size_t a = rng.next_below(kVars);
        std::size_t b = rng.next_below(kVars);
        if (b == a) b = (b + 1) % kVars;
        rt->run(*th, [&](zstm::cs::VcRuntime::Tx& tx) {
          if (update) {
            tx.write(vars[a]) -= 1;
            tx.write(vars[b]) += 1;
          } else {
            volatile long sum = tx.read(vars[a]) + tx.read(vars[b]);
            (void)sum;
          }
        });
        if (measuring.load(std::memory_order_relaxed)) ++my;
      }
      commits.fetch_add(my);
    });
  }

  // Warm up (slabs carved, spare stamps grown to capacity), then measure a
  // steady-state window with a fresh allocation counter.
  std::this_thread::sleep_for(kWarmup);
  const std::uint64_t allocs_before =
      g_heap_allocs.load(std::memory_order_relaxed);
  measuring.store(true, std::memory_order_release);
  const auto t0 = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(kMeasure);
  stop.store(true, std::memory_order_release);
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  for (auto& w : workers) w.join();
  const std::uint64_t allocs =
      g_heap_allocs.load(std::memory_order_relaxed) - allocs_before;

  Row r;
  r.workload = update ? "update" : "read-only";
  r.mode = pooled ? "pooled" : "heap";
  r.threads = threads;
  r.commits = commits.load();
  r.tx_per_s = static_cast<double>(r.commits) / secs;
  if (r.commits > 0) {
    r.allocs_per_txn =
        static_cast<double>(allocs) / static_cast<double>(r.commits);
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const bool json = zstm::benchjson::json_requested(argc, argv);
  std::printf("CS-STM allocation microbench: global operator-new calls per\n"
              "committed transaction, cs-vc, %d vars (spare-stamp recycling\n"
              "of cs::TxDesc's vector-clock storage)\n\n",
              kVars);
  if (!zstm::object::NodePool::env_enabled()) {
    std::printf("note: ZSTM_POOL=0 is set — the \"pooled\" rows run on the "
                "heap too.\n\n");
  }
  std::printf("%10s %8s %8s %12s %16s %12s\n", "workload", "mode", "threads",
              "tx/s", "allocs/txn", "commits");

  std::vector<Row> rows;
  for (int threads : {1, 2}) {
    for (const bool update : {false, true}) {
      rows.push_back(trial(update, /*pooled=*/false, threads));
      rows.push_back(trial(update, /*pooled=*/true, threads));
    }
  }
  for (const Row& r : rows) {
    std::printf("%10s %8s %8d %12.0f %16.3f %12llu\n", r.workload, r.mode,
                r.threads, r.tx_per_s, r.allocs_per_txn,
                static_cast<unsigned long long>(r.commits));
  }
  std::printf(
      "\nExpected: pooled rows show allocs/txn ~= 0 — descriptor and\n"
      "locator/version nodes come from the slab pool, their vector-clock\n"
      "storage from the per-slot spare buffer (read path) or the\n"
      "PoolAllocator-backed stamp (write path). Heap rows pay one malloc\n"
      "per locator/version/descriptor node plus one per stamp vector.\n");

  // Gate: the PoolAllocator change took pooled updates from ~2 stamp
  // mallocs per transaction to ~0; fail loudly if that regresses. The
  // threshold leaves headroom for slab carving and warmup stragglers.
  // Skipped when ZSTM_POOL=0 forces every row onto the heap.
  constexpr double kMaxPooledUpdateAllocs = 0.75;
  bool regressed = false;
  if (zstm::object::NodePool::env_enabled()) {
    for (const Row& r : rows) {
      if (std::string_view(r.mode) == "pooled" &&
          std::string_view(r.workload) == "update" &&
          r.allocs_per_txn > kMaxPooledUpdateAllocs) {
        std::printf("FAIL: pooled update threads=%d allocs/txn=%.3f > %.2f\n",
                    r.threads, r.allocs_per_txn, kMaxPooledUpdateAllocs);
        regressed = true;
      }
    }
  }

  if (json) {
    zstm::benchjson::Doc doc("cs_alloc");
    for (const Row& r : rows) {
      doc.row()
          .str("workload", r.workload)
          .str("mode", r.mode)
          .num("threads", r.threads)
          .num("tx_per_s", r.tx_per_s)
          .num("allocs_per_txn", r.allocs_per_txn)
          .num("commits", r.commits);
    }
    if (!doc.write()) return 1;
  }
  return regressed ? 1 : 0;
}
