// Figure 6 explanation bench: "Z-STM performs Compute-Total faster than
// LSA-STM because the latter always maintains read sets. An optimized
// version of LSA-STM that detects when read sets are not required is as
// fast as Z-STM."
//
// Measures a single-threaded read-only scan of N accounts with read-set
// tracking on vs. off, plus the Z-STM long-transaction scan (no read set
// by construction).
#include <benchmark/benchmark.h>

#include <vector>

#include "lsa/lsa.hpp"
#include "zstm/zstm.hpp"

namespace {

void BM_LsaScanWithReadset(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  zstm::lsa::Config cfg;
  cfg.max_threads = 4;
  cfg.track_readonly_readsets = true;
  zstm::lsa::Runtime rt(cfg);
  std::vector<zstm::lsa::Var<long>> vars;
  for (int i = 0; i < n; ++i) vars.push_back(rt.make_var<long>(i));
  auto th = rt.attach();
  for (auto _ : state) {
    long total = 0;
    rt.run(
        *th,
        [&](zstm::lsa::Tx& tx) {
          total = 0;
          for (auto& v : vars) total += tx.read(v);
        },
        /*read_only=*/true);
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_LsaScanWithReadset)->Arg(100)->Arg(1000);

void BM_LsaScanNoReadset(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  zstm::lsa::Config cfg;
  cfg.max_threads = 4;
  cfg.track_readonly_readsets = false;  // the Figure 6 variant
  zstm::lsa::Runtime rt(cfg);
  std::vector<zstm::lsa::Var<long>> vars;
  for (int i = 0; i < n; ++i) vars.push_back(rt.make_var<long>(i));
  auto th = rt.attach();
  for (auto _ : state) {
    long total = 0;
    rt.run(
        *th,
        [&](zstm::lsa::Tx& tx) {
          total = 0;
          for (auto& v : vars) total += tx.read(v);
        },
        /*read_only=*/true);
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_LsaScanNoReadset)->Arg(100)->Arg(1000);

void BM_ZLongScan(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  zstm::zl::Config cfg;
  cfg.lsa.max_threads = 4;
  zstm::zl::Runtime rt(cfg);
  std::vector<zstm::lsa::Var<long>> vars;
  for (int i = 0; i < n; ++i) vars.push_back(rt.make_var<long>(i));
  auto th = rt.attach();
  for (auto _ : state) {
    long total = 0;
    rt.run_long(*th, [&](zstm::zl::LongTx& tx) {
      total = 0;
      for (auto& v : vars) total += tx.read(v);
    });
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ZLongScan)->Arg(100)->Arg(1000);

}  // namespace

BENCHMARK_MAIN();
