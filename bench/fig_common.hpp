// Shared driver for the Figure 6/7 bank reproductions: runs the paper's
// §5.5 bank across every façade variant (api::variant_names, dispatched at
// compile time to Bank<Stm<R>> by run_named_bank) × the paper's thread
// counts, prints the three panels, and optionally writes
// BENCH_<name>.json. bench_fig6.cpp / bench_fig7.cpp supply only the
// figure-specific headline and the update_total flag.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "bank_harness.hpp"
#include "bench_json.hpp"

namespace zstm::bench {

struct FigureSpec {
  const char* doc_name;   // bench_json document name, e.g. "fig6"
  const char* headline;   // first printed line
  const char* subtitle;   // second printed line
  const char* ct_panel;   // Compute-Total panel title
  bool update_total;      // Compute-Total writes the sink object
};

inline int run_figure(const FigureSpec& spec, int argc, char** argv) {
  const bool json = benchjson::json_requested(argc, argv);
  const std::vector<std::string>& systems = api::variant_names();
  std::printf("%s\n%s\n\n", spec.headline, spec.subtitle);

  struct FigRow {
    int threads;
    std::vector<BankResult> results;  // one per variant, in variant order
  };
  std::vector<FigRow> rows;
  for (int threads : {1, 2, 8, 16, 32}) {
    BankParams p;
    p.threads = threads;
    p.duration = std::chrono::milliseconds(250);
    p.update_total = spec.update_total;
    FigRow row;
    row.threads = threads;
    for (const std::string& name : systems) {
      row.results.push_back(run_named_bank(name, p));
    }
    rows.push_back(std::move(row));
  }

  const auto print_header = [&systems] {
    std::printf("%8s", "threads");
    for (const std::string& name : systems) {
      std::printf(" %10s", name.c_str());
    }
    std::printf("\n");
  };

  std::printf("%s\n", spec.ct_panel);
  print_header();
  for (const auto& r : rows) {
    std::printf("%8d", r.threads);
    for (const auto& b : r.results) {
      std::printf(" %10.1f", b.compute_total_per_s);
    }
    std::printf("\n");
  }

  std::printf("\nTransfer transactions  [tx/s]\n");
  print_header();
  for (const auto& r : rows) {
    std::printf("%8d", r.threads);
    for (const auto& b : r.results) std::printf(" %10.0f", b.transfer_per_s);
    std::printf("\n");
  }

  std::printf("\nCompute-Total failed episodes (attempt budget exhausted):\n");
  print_header();
  for (const auto& r : rows) {
    std::printf("%8d", r.threads);
    for (const auto& b : r.results) {
      std::printf(" %10llu",
                  static_cast<unsigned long long>(b.compute_total_failures));
    }
    std::printf("\n");
  }

  if (json) {
    benchjson::Doc doc(spec.doc_name);
    for (const auto& r : rows) {
      for (std::size_t i = 0; i < systems.size(); ++i) {
        const BankResult& b = r.results[i];
        doc.row()
            .str("system", systems[i].c_str())
            .num("threads", r.threads)
            .num("compute_total_per_s", b.compute_total_per_s)
            .num("transfer_per_s", b.transfer_per_s)
            .num("compute_total_failures", b.compute_total_failures);
      }
    }
    if (!doc.write()) return 1;
  }
  return 0;
}

}  // namespace zstm::bench
