// §4.4 ablation: "a TBTM typically needs old object versions to construct a
// consistent snapshot for a long transaction when objects are being updated
// concurrently. Keeping multiple copies does not only increase the memory
// overhead but also the runtime overhead."
//
// Long read-only scans (LSA) against a transfer storm, sweeping the number
// of versions kept per object: deeper histories let the scan commit in the
// past instead of retrying.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "lsa/lsa.hpp"
#include "util/rng.hpp"

namespace {

constexpr int kAccounts = 512;
constexpr int kWriterThreads = 2;
constexpr auto kDuration = std::chrono::milliseconds(200);

struct Row {
  int versions_kept;
  double scans_per_s;
  double attempts_per_scan;
  double transfers_per_s;
};

Row trial(int versions_kept) {
  zstm::lsa::Config cfg;
  cfg.max_threads = kWriterThreads + 3;
  cfg.versions_kept = versions_kept;
  zstm::lsa::Runtime rt(cfg);
  std::vector<zstm::lsa::Var<long>> vars;
  for (int i = 0; i < kAccounts; ++i) vars.push_back(rt.make_var<long>(10));

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> transfers{0};
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriterThreads; ++t) {
    writers.emplace_back([&, t] {
      auto th = rt.attach();
      zstm::util::Xorshift rng(static_cast<std::uint64_t>(t) + 37);
      std::uint64_t my = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const std::size_t a = rng.next_below(kAccounts);
        std::size_t b = rng.next_below(kAccounts);
        if (b == a) b = (b + 1) % kAccounts;
        rt.run(*th, [&](zstm::lsa::Tx& tx) {
          tx.write(vars[a]) -= 1;
          tx.write(vars[b]) += 1;
        });
        ++my;
      }
      transfers.fetch_add(my);
    });
  }

  std::uint64_t scans = 0;
  std::uint64_t attempts = 0;
  volatile long sink = 0;  // keep the scan's result observable
  auto th = rt.attach();
  const auto t0 = std::chrono::steady_clock::now();
  const auto deadline = t0 + kDuration;
  while (std::chrono::steady_clock::now() < deadline) {
    long total = 0;
    attempts += rt.run(
        *th,
        [&](zstm::lsa::Tx& tx) {
          total = 0;
          for (auto& v : vars) total += tx.read(v);
        },
        /*read_only=*/true);
    ++scans;
    sink = total;
  }
  (void)sink;
  stop.store(true, std::memory_order_release);
  for (auto& w : writers) w.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return Row{versions_kept, static_cast<double>(scans) / secs,
             static_cast<double>(attempts) / static_cast<double>(scans),
             static_cast<double>(transfers.load()) / secs};
}

}  // namespace

int main() {
  std::printf("Multi-version depth ablation (§4.4): %d-account read-only\n"
              "scans against %d transfer threads\n\n",
              kAccounts, kWriterThreads);
  std::printf("%10s %14s %20s %16s\n", "versions", "scans/s",
              "attempts per scan", "transfers/s");
  for (int k : {1, 2, 4, 8, 16}) {
    const Row r = trial(k);
    std::printf("%10d %14.1f %20.2f %16.0f\n", r.versions_kept, r.scans_per_s,
                r.attempts_per_scan, r.transfers_per_s);
  }
  std::printf("\nExpected: attempts per scan fall sharply as more versions\n"
              "are kept — the scan finds a consistent snapshot in the past\n"
              "instead of restarting.\n");
  return 0;
}
