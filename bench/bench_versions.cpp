// §4.4 ablation: "a TBTM typically needs old object versions to construct a
// consistent snapshot for a long transaction when objects are being updated
// concurrently. Keeping multiple copies does not only increase the memory
// overhead but also the runtime overhead."
//
// Long read-only scans (LSA) against a transfer storm, sweeping the number
// of versions kept per object: deeper histories let the scan commit in the
// past instead of retrying. The final rows run the *adaptive* per-object
// retention mode (object::RetentionMode::kAdaptive, ROADMAP item): the
// bound starts at 1 everywhere, doubles on too-old-version aborts and
// decays while quiescent, so hot-scanned objects grow deep histories on
// their own.
//
// `--json` additionally writes BENCH_versions.json (see bench_json.hpp).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "lsa/lsa.hpp"
#include "util/rng.hpp"

namespace {

constexpr int kAccounts = 512;
constexpr int kWriterThreads = 2;
constexpr auto kDuration = std::chrono::milliseconds(200);

struct Row {
  const char* mode;
  int versions_kept;  // fixed bound, or the adaptive starting bound
  double scans_per_s;
  double attempts_per_scan;
  double transfers_per_s;
  std::uint64_t retention_grows;
  std::uint64_t retention_decays;
};

Row trial(zstm::object::RetentionMode mode, int versions_kept) {
  zstm::lsa::Config cfg;
  cfg.max_threads = kWriterThreads + 3;
  cfg.versions_kept = versions_kept;
  cfg.retention_mode = mode;
  zstm::lsa::Runtime rt(cfg);
  std::vector<zstm::lsa::Var<long>> vars;
  for (int i = 0; i < kAccounts; ++i) vars.push_back(rt.make_var<long>(10));

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> transfers{0};
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriterThreads; ++t) {
    writers.emplace_back([&, t] {
      auto th = rt.attach();
      zstm::util::Xorshift rng(static_cast<std::uint64_t>(t) + 37);
      std::uint64_t my = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const std::size_t a = rng.next_below(kAccounts);
        std::size_t b = rng.next_below(kAccounts);
        if (b == a) b = (b + 1) % kAccounts;
        rt.run(*th, [&](zstm::lsa::Tx& tx) {
          tx.write(vars[a]) -= 1;
          tx.write(vars[b]) += 1;
        });
        ++my;
      }
      transfers.fetch_add(my);
    });
  }

  std::uint64_t scans = 0;
  std::uint64_t attempts = 0;
  volatile long sink = 0;  // keep the scan's result observable
  auto th = rt.attach();
  const auto t0 = std::chrono::steady_clock::now();
  const auto deadline = t0 + kDuration;
  while (std::chrono::steady_clock::now() < deadline) {
    long total = 0;
    attempts += rt.run(
                      *th,
                      [&](zstm::lsa::Tx& tx) {
                        total = 0;
                        for (auto& v : vars) total += tx.read(v);
                      },
                      /*read_only=*/true)
                    .attempts;
    ++scans;
    sink = total;
  }
  (void)sink;
  stop.store(true, std::memory_order_release);
  for (auto& w : writers) w.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const auto stats = rt.stats();
  const char* label =
      mode == zstm::object::RetentionMode::kAdaptive ? "adaptive" : "fixed";
  return Row{label,
             versions_kept,
             static_cast<double>(scans) / secs,
             scans == 0 ? 0.0
                        : static_cast<double>(attempts) /
                              static_cast<double>(scans),
             static_cast<double>(transfers.load()) / secs,
             stats[zstm::util::Counter::kRetentionGrows],
             stats[zstm::util::Counter::kRetentionDecays]};
}

}  // namespace

int main(int argc, char** argv) {
  const bool json = zstm::benchjson::json_requested(argc, argv);
  std::printf("Multi-version depth ablation (§4.4): %d-account read-only\n"
              "scans against %d transfer threads\n\n",
              kAccounts, kWriterThreads);
  std::printf("%10s %10s %14s %20s %16s %8s %8s\n", "mode", "versions",
              "scans/s", "attempts per scan", "transfers/s", "grows",
              "decays");

  std::vector<Row> rows;
  for (int k : {1, 2, 4, 8, 16}) {
    rows.push_back(trial(zstm::object::RetentionMode::kFixed, k));
  }
  // Adaptive retention: start every object at bound 1 and let the too-old
  // abort feedback find the depth the scan workload actually needs.
  rows.push_back(trial(zstm::object::RetentionMode::kAdaptive, 1));

  for (const Row& r : rows) {
    std::printf("%10s %10d %14.1f %20.2f %16.0f %8llu %8llu\n", r.mode,
                r.versions_kept, r.scans_per_s, r.attempts_per_scan,
                r.transfers_per_s,
                static_cast<unsigned long long>(r.retention_grows),
                static_cast<unsigned long long>(r.retention_decays));
  }
  std::printf("\nExpected: attempts per scan fall sharply as more versions\n"
              "are kept — the scan finds a consistent snapshot in the past\n"
              "instead of restarting. The adaptive row should approach the\n"
              "deep-fixed rows' scan rate without paying their per-object\n"
              "memory cost on unscanned objects.\n");

  if (json) {
    zstm::benchjson::Doc doc("versions");
    for (const Row& r : rows) {
      doc.row()
          .str("mode", r.mode)
          .num("versions_kept", r.versions_kept)
          .num("scans_per_s", r.scans_per_s)
          .num("attempts_per_scan", r.attempts_per_scan)
          .num("transfers_per_s", r.transfers_per_s)
          .num("retention_grows", r.retention_grows)
          .num("retention_decays", r.retention_decays);
    }
    if (!doc.write()) return 1;
  }
  return 0;
}
