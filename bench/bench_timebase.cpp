// Time-base ablation (§2): the shared commit counter "does not scale well
// in larger systems because of contention and cache misses", while
// synchronized real-time clocks are uncontended.
//
// Google-benchmark, multi-threaded: acquiring commit stamps from the shared
// counter vs. from per-thread simulated synchronized clocks.
#include <benchmark/benchmark.h>

#include "timebase/global_counter.hpp"
#include "timebase/scalar_timebase.hpp"
#include "timebase/sync_clock.hpp"

namespace {

using zstm::timebase::GlobalCounter;
using zstm::timebase::ScalarTimeBase;
using zstm::timebase::SyncRealTimeClock;

void BM_CounterAcquireCommitTime(benchmark::State& state) {
  static GlobalCounter counter;
  for (auto _ : state) {
    benchmark::DoNotOptimize(counter.acquire_commit_time());
  }
}
BENCHMARK(BM_CounterAcquireCommitTime)->ThreadRange(1, 8)->UseRealTime();

void BM_CounterRead(benchmark::State& state) {
  static GlobalCounter counter;
  for (auto _ : state) {
    benchmark::DoNotOptimize(counter.now());
  }
}
BENCHMARK(BM_CounterRead)->ThreadRange(1, 8)->UseRealTime();

void BM_SyncClockNow(benchmark::State& state) {
  static SyncRealTimeClock clock(64, std::chrono::nanoseconds(200), 7);
  const int slot = state.thread_index();
  for (auto _ : state) {
    benchmark::DoNotOptimize(clock.now(slot));
  }
}
BENCHMARK(BM_SyncClockNow)->ThreadRange(1, 8)->UseRealTime();

void BM_SyncClockAcquireStamp(benchmark::State& state) {
  static SyncRealTimeClock clock(64, std::chrono::nanoseconds(200), 7);
  const int slot = state.thread_index();
  for (auto _ : state) {
    benchmark::DoNotOptimize(clock.acquire_commit_stamp(slot, 0));
  }
}
BENCHMARK(BM_SyncClockAcquireStamp)->ThreadRange(1, 8)->UseRealTime();

void BM_ScalarTimeBaseCounterSnapshot(benchmark::State& state) {
  static ScalarTimeBase tb;
  const int slot = state.thread_index();
  for (auto _ : state) {
    benchmark::DoNotOptimize(tb.now_snapshot(slot));
  }
}
BENCHMARK(BM_ScalarTimeBaseCounterSnapshot)->ThreadRange(1, 8)->UseRealTime();

void BM_ScalarTimeBaseSyncSnapshot(benchmark::State& state) {
  static ScalarTimeBase tb(64, std::chrono::nanoseconds(200), 7);
  const int slot = state.thread_index();
  for (auto _ : state) {
    benchmark::DoNotOptimize(tb.now_snapshot(slot));
  }
}
BENCHMARK(BM_ScalarTimeBaseSyncSnapshot)->ThreadRange(1, 8)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
